package repro

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	db.MustExec(`CREATE TABLE word_data (name VARCHAR, id INT)`)
	db.MustExec(`CREATE INDEX trie_idx ON word_data USING spgist (name spgist_trie)`)
	db.MustExec(`INSERT INTO word_data VALUES ('random', 1), ('spade', 2)`)
	res, err := db.Exec(`SELECT * FROM word_data WHERE name ?= 'r?nd?m'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].I != 1 {
		t.Fatalf("quickstart query: %+v", res.Rows)
	}
}

func TestCatalogExposure(t *testing.T) {
	ams := AccessMethods()
	names := map[string]bool{}
	for _, am := range ams {
		names[am.Name] = true
	}
	for _, want := range []string{"spgist", "btree", "rtree"} {
		if !names[want] {
			t.Errorf("access method %q missing", want)
		}
	}
	ocs := OperatorClasses()
	ocNames := map[string]bool{}
	for _, oc := range ocs {
		ocNames[oc.Name] = true
	}
	for _, want := range []string{"spgist_trie", "spgist_suffix", "spgist_kdtree",
		"spgist_pquadtree", "spgist_pmr", "btree_text", "rtree_point", "rtree_segment"} {
		if !ocNames[want] {
			t.Errorf("operator class %q missing", want)
		}
	}
}

func TestFacadeOnDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (name VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES ('persisted')`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// The persistent catalog rediscovers the table; no re-declaration.
	res := db2.MustExec(`SELECT * FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "persisted" {
		t.Fatalf("reopen: %v", res.Rows)
	}
}
