// Package repro is the public facade of this reproduction of
// "Space-partitioning Trees in PostgreSQL: Realization and Performance"
// (Eltabakh, Eltarras, Aref; ICDE 2006).
//
// It exposes a small embedded database whose extensible access-method
// layer realizes SP-GiST — the paper's framework for disk-based
// space-partitioning trees — alongside the B+-tree and R-tree baselines
// the paper compares against. Five SP-GiST instantiations ship in the
// box, selected per CREATE INDEX through operator classes exactly as in
// the paper's Tables 5–6:
//
//	spgist_trie       patricia trie over VARCHAR   (=, #=, ?=, @@)
//	spgist_suffix     suffix tree over VARCHAR     (@=, @@)
//	spgist_kdtree     kd-tree over POINT           (@, ^, @@)
//	spgist_pquadtree  point quadtree over POINT    (@, ^, @@)
//	spgist_pmr        PMR quadtree over SEGMENT    (=, &&, @@)
//
// Quick start:
//
//	db := repro.OpenMemory()
//	defer db.Close()
//	db.MustExec(`CREATE TABLE word_data (name VARCHAR, id INT)`)
//	db.MustExec(`CREATE INDEX trie_idx ON word_data USING spgist (name spgist_trie)`)
//	db.MustExec(`INSERT INTO word_data VALUES ('random', 1), ('spade', 2)`)
//	res, _ := db.Exec(`SELECT * FROM word_data WHERE name ?= 'r?nd?m'`)
//
// On-disk databases (Options.Dir) carry a persistent system catalog:
// reopening one rediscovers every table and index with no schema
// re-declaration, DROP TABLE / DROP INDEX remove relations, and SHOW
// TABLES / SHOW INDEXES introspect the catalog in SQL. With Options.WAL
// all DDL is crash-atomic — in particular, a crash during CREATE INDEX
// is detected at the next open and the index is rebuilt, never left
// partial.
//
// The deeper layers are available for direct use: repro/internal/core is
// the SP-GiST framework itself (OpClass external methods, generic
// internal methods, node-to-page clustering, incremental NN search), and
// the instantiations live in repro/internal/{trie,kdtree,pquad,pmr,
// suffix}.
package repro

import (
	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/sqlmini"
)

// Datum is a typed value (re-exported for programmatic inserts).
type Datum = catalog.Datum

// Typed datum constructors, re-exported from the catalog.
var (
	NewInt     = catalog.NewInt
	NewFloat   = catalog.NewFloat
	NewText    = catalog.NewText
	NewPoint   = catalog.NewPoint
	NewBox     = catalog.NewBox
	NewSegment = catalog.NewSegment
)

// DB is an embedded database speaking the mini SQL dialect of the
// paper's Table 6.
type DB struct {
	inner   *executor.DB
	session *sqlmini.Session
}

// Result is the outcome of one SQL statement (see sqlmini.Result).
type Result = sqlmini.Result

// Options configure storage.
type Options = executor.Options

// Open creates or opens a database over a directory; an empty Dir means
// in-memory.
func Open(opts Options) (*DB, error) {
	inner, err := executor.Open(opts)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, session: sqlmini.NewSession(inner)}, nil
}

// OpenMemory opens an in-memory database.
func OpenMemory() *DB {
	db, _ := Open(Options{})
	return db
}

// Exec runs one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) { return db.session.Exec(sql) }

// MustExec runs one SQL statement and panics on error (examples, tests).
func (db *DB) MustExec(sql string) *Result {
	res, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return res
}

// Engine exposes the underlying executor database for programmatic use
// (bulk loads, statistics, benchmark harnesses).
func (db *DB) Engine() *executor.DB { return db.inner }

// Close flushes and closes all storage.
func (db *DB) Close() error { return db.inner.Close() }

// AccessMethods lists the registered access methods (the mini pg_am, cf.
// the paper's Table 2).
func AccessMethods() []*catalog.AccessMethod { return catalog.AMs() }

// OperatorClasses lists the registered operator classes (the mini
// pg_opclass, cf. the paper's Table 5).
func OperatorClasses() []*catalog.OperatorClass { return catalog.OpClasses() }
