// Server: the multi-session SQL server under concurrent load. The
// program starts spgist-server's serving core in-process on a random
// local port over an in-memory database, seeds a table with an SP-GiST
// trie index, and then drives it from many concurrent TCP clients
// running exact-match and prefix SELECTs while one client keeps
// inserting. It prints the aggregate statement throughput — the number
// the engine's sharded buffer pool and shared/exclusive statement lock
// exist to scale — then scrapes the STATS protocol verb and exits
// non-zero if the server-side counters undercount the issued traffic
// (CI runs this as its server smoke test).
//
// To run the same workload against a standalone server instead:
//
//	$ go run ./cmd/spgist-server -addr :5433 &
//	$ printf 'SHOW TABLES\n' | nc localhost 5433
package main

import (
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/server"
)

func main() {
	db := executor.OpenMemory()
	defer db.Close()
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(db)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	addr := l.Addr().String()
	fmt.Println("spgist-server listening on", addr)

	// Seed: one table, one trie index, 5000 words.
	seed, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	mustExec(seed, "CREATE TABLE words (name VARCHAR, id INT)")
	mustExec(seed, "CREATE INDEX wix ON words USING spgist (name spgist_trie)")
	const rows = 5000
	for i := 0; i < rows; i += 50 {
		stmt := "INSERT INTO words VALUES "
		for j := 0; j < 50; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("('word%04d', %d)", i+j, i+j)
		}
		mustExec(seed, stmt)
	}
	seed.Close()
	fmt.Printf("seeded %d rows\n", rows)

	// Load: one writer session inserting, N reader sessions running
	// exact-match and prefix scans, for a fixed wall-clock window.
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	const window = 2 * time.Second
	var stop atomic.Bool
	var reads, writes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			for i := 0; !stop.Load(); i++ {
				var stmt string
				if i%2 == 0 {
					stmt = fmt.Sprintf("SELECT * FROM words WHERE name = 'word%04d'", (g*911+i)%rows)
				} else {
					stmt = fmt.Sprintf("SELECT * FROM words WHERE name #= 'word%02d'", (g+i)%50)
				}
				if _, err := c.Exec(stmt); err != nil {
					log.Fatalf("reader %d: %v", g, err)
				}
				reads.Add(1)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := server.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		for i := 0; !stop.Load(); i++ {
			stmt := fmt.Sprintf("INSERT INTO words VALUES ('extra%05d', %d)", i, rows+i)
			if _, err := c.Exec(stmt); err != nil {
				log.Fatalf("writer: %v", err)
			}
			writes.Add(1)
		}
	}()
	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	r, w := reads.Load(), writes.Load()
	fmt.Printf("%d reader sessions + 1 writer session over %v:\n", readers, elapsed.Round(time.Millisecond))
	fmt.Printf("  %8d SELECTs   (%.0f/s aggregate)\n", r, float64(r)/elapsed.Seconds())
	fmt.Printf("  %8d INSERTs   (%.0f/s)\n", w, float64(w)/elapsed.Seconds())

	// Scrape the STATS protocol verb and cross-check it against the
	// client-side tallies: the server must have counted every statement.
	scraper, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := scraper.Stats()
	scraper.Close()
	if err != nil {
		log.Fatalf("STATS scrape: %v", err)
	}
	fmt.Printf("STATS scrape: server_queries_total=%d server_sessions_total=%d p99=%s pool hit ratio=%.1f%%\n",
		stats["server_queries_total"], stats["server_sessions_total"],
		time.Duration(stats["server_query_latency_p99_ns"]),
		100*float64(stats["pool_hits_total"])/float64(stats["pool_hits_total"]+stats["pool_misses_total"]))
	if q := stats["server_queries_total"]; q < r+w {
		log.Fatalf("STATS undercounts: server_queries_total=%d, clients issued >= %d", q, r+w)
	}

	srv.Shutdown()
	l.Close()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
}

func mustExec(c *server.Client, stmt string) {
	if _, err := c.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
