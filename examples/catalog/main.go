// Catalog: the persistent system catalog in action. The program creates
// an on-disk database with two tables and two SP-GiST indexes, closes
// it, and reopens it: the catalog (stored in its own heap file,
// syscat.dat) rediscovers every relation — no schema re-declaration, the
// property PostgreSQL's pg_class/pg_index give the paper's realization
// for free. The session then introspects the schema with SHOW TABLES /
// SHOW INDEXES and drops a relation to show DDL round-tripping.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "spgist-catalog-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("database directory:", dir)

	// First session: declare schema, load data, close cleanly.
	db, err := repro.Open(repro.Options{Dir: dir, WAL: true})
	if err != nil {
		log.Fatal(err)
	}
	db.MustExec(`CREATE TABLE word_data (name VARCHAR(50), id INT)`)
	db.MustExec(`CREATE INDEX words_trie ON word_data USING spgist (name spgist_trie)`)
	db.MustExec(`CREATE TABLE pts (loc POINT, id INT)`)
	db.MustExec(`CREATE INDEX pts_kd ON pts USING spgist (loc spgist_kdtree)`)
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO word_data VALUES ('word%04d', %d)`, i, i))
		db.MustExec(fmt.Sprintf(`INSERT INTO pts VALUES ('(%d,%d)', %d)`, i%20, (i*7)%20, i))
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session 1: declared 2 tables + 2 indexes, loaded 400 rows, closed")

	// Second session: reopen. No CREATE TABLE, no CREATE INDEX — the
	// system catalog is the single source of the schema.
	db, err = repro.Open(repro.Options{Dir: dir, WAL: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	show := db.MustExec(`SHOW TABLES`)
	fmt.Println("\nSHOW TABLES after reopen (zero re-declaration):")
	for _, row := range show.Rows {
		fmt.Printf("  %-10s  %-28s  rows=%-4s file=%s\n", row[0].S, row[1].S, row[2].String(), row[3].S)
	}
	show = db.MustExec(`SHOW INDEXES`)
	fmt.Println("SHOW INDEXES:")
	for _, row := range show.Rows {
		var cells []string
		for _, d := range row {
			cells = append(cells, d.String())
		}
		fmt.Println("  " + strings.Join(cells, " | "))
	}

	// The rediscovered indexes serve queries immediately.
	res := db.MustExec(`EXPLAIN SELECT * FROM word_data WHERE name #= 'word01'`)
	fmt.Println("\nEXPLAIN prefix query:", res.Plan)
	rows := db.MustExec(`SELECT * FROM word_data WHERE name #= 'word01'`)
	pt := db.MustExec(`SELECT * FROM pts WHERE loc ^ '(0,0,5,5)'`)
	fmt.Printf("prefix query: %d rows; point range query: %d rows\n", len(rows.Rows), len(pt.Rows))
	if len(rows.Rows) != 100 { // word0100 .. word0199
		log.Fatalf("prefix query found %d rows, want 100", len(rows.Rows))
	}

	// DDL round-trip: drop an index and a table; the catalog (and the
	// files) follow.
	db.MustExec(`DROP INDEX pts_kd`)
	db.MustExec(`DROP TABLE pts`)
	show = db.MustExec(`SHOW TABLES`)
	fmt.Printf("\nafter DROP TABLE pts: %d table(s) remain\n", len(show.Rows))
	fmt.Println("persistent catalog OK: reopen served indexed queries with no schema re-declaration")
}
