// Stats: persisted planner statistics in action. The program loads a
// skewed word table, runs ANALYZE (block-sampled, PostgreSQL-style),
// and shows the planner flipping between a sequential scan for the
// common value (selectivity ≈ 0.7, straight from the MCV list) and an
// index scan for a rare one. It then closes and reopens the database:
// the statistics load from the system catalog with the schema, so the
// first plan of the new session touches no heap data page and chooses
// exactly the same access paths.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "spgist-stats-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("database directory:", dir)

	db, err := repro.Open(repro.Options{Dir: dir, WAL: true})
	if err != nil {
		log.Fatal(err)
	}
	db.MustExec(`CREATE TABLE word_data (name VARCHAR, id INT)`)
	db.MustExec(`CREATE INDEX wd_trie ON word_data USING spgist (name spgist_trie)`)
	for i := 0; i < 1400; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO word_data VALUES ('common', %d)`, i))
	}
	for i := 0; i < 600; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO word_data VALUES ('w%04d', %d)`, i, 1400+i))
	}

	fmt.Println("\n-- ANALYZE word_data (block sample, persisted in the catalog)")
	db.MustExec(`ANALYZE word_data`)
	tb, err := db.Engine().Table("word_data")
	if err != nil {
		log.Fatal(err)
	}
	st, _ := db.Engine().Catalog().GetStats(tb.OID())
	fmt.Printf("persisted: rows=%d sampled=%d name.ndistinct=%d mcv[0]=%s@%.2f histogram=%d bounds\n",
		st.Rows, st.SampleRows, st.Cols[0].NDistinct,
		st.Cols[0].MCVals[0], st.Cols[0].MCFreqs[0], len(st.Cols[0].Histogram))

	explain := func(q string) {
		fmt.Printf("EXPLAIN %s\n  -> %s\n", q, db.MustExec("EXPLAIN "+q).Plan)
	}
	fmt.Println("\n-- plan choice from the statistics")
	explain(`SELECT * FROM word_data WHERE name = 'common'`)
	explain(`SELECT * FROM word_data WHERE name = 'w0042'`)

	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- reopen: statistics load with the catalog, no heap scan")
	db, err = repro.Open(repro.Options{Dir: dir, WAL: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tb, err = db.Engine().Table("word_data")
	if err != nil {
		log.Fatal(err)
	}
	tb.Heap.Pool().ResetStats()
	explain(`SELECT * FROM word_data WHERE name = 'common'`)
	explain(`SELECT * FROM word_data WHERE name = 'w0042'`)
	fmt.Printf("heap pages read while planning: %d\n", tb.Heap.Pool().Stats().Accesses)
}
