// Bulkload: the batched write pipeline end to end through the TCP
// server. The program starts spgist-server's serving core in-process on
// a random local port, creates a word table with an SP-GiST trie index,
// and loads 100,000 rows through ordinary SQL — multi-row
// `INSERT INTO ... VALUES (...), (...), ...` statements of 1000 rows
// each, every statement one crash-atomic batch: the parser hands the
// whole row list to Table.InsertBatch, the heap fills each page under a
// single pin and logs one batch record per page, index maintenance is
// grouped, and the statement commits under one WAL marker and one
// fsync. A short per-row warm-up load is timed first so the printed
// rows/sec make the amortization visible (mirrors examples/server).
//
// To aim the same load at a standalone server:
//
//	$ go run ./cmd/spgist-server -addr :5433 &
//	$ go run ./examples/bulkload -addr localhost:5433
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"repro/internal/executor"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "", "server address (default: start one in-process)")
	flag.Parse()

	if *addr == "" {
		db := executor.OpenMemory()
		defer db.Close()
		l, err := net.Listen("tcp", "localhost:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := server.New(db)
		go srv.Serve(l)
		defer func() { srv.Shutdown(); l.Close() }()
		*addr = l.Addr().String()
		fmt.Println("spgist-server listening on", *addr)
	}

	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	mustExec(c, "CREATE TABLE words (name VARCHAR, id INT)")
	mustExec(c, "CREATE INDEX wix ON words USING spgist (name spgist_trie)")

	// Baseline: 2000 rows as single-row INSERT statements — one
	// statement lock window, one commit marker, one fsync per row.
	const perRowRows = 2000
	start := time.Now()
	for i := 0; i < perRowRows; i++ {
		mustExec(c, fmt.Sprintf("INSERT INTO words VALUES ('warm%06d', %d)", i, i))
	}
	perRowRate := float64(perRowRows) / time.Since(start).Seconds()
	fmt.Printf("per-row : %7d rows as %d statements  %10.0f rows/s\n", perRowRows, perRowRows, perRowRate)

	// The bulk load: 100k rows as 1000-row multi-row INSERTs.
	const totalRows, batchRows = 100000, 1000
	start = time.Now()
	var sb strings.Builder
	for base := 0; base < totalRows; base += batchRows {
		sb.Reset()
		sb.WriteString("INSERT INTO words VALUES ")
		for j := 0; j < batchRows; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			id := perRowRows + base + j
			fmt.Fprintf(&sb, "('word%06d', %d)", id, id)
		}
		res, err := c.Exec(sb.String())
		if err != nil {
			log.Fatalf("batch at %d: %v", base, err)
		}
		if want := fmt.Sprintf("INSERT %d", batchRows); res.OK != want {
			log.Fatalf("batch at %d: got %q, want %q", base, res.OK, want)
		}
	}
	elapsed := time.Since(start)
	batchRate := float64(totalRows) / elapsed.Seconds()
	fmt.Printf("batched : %7d rows as %d statements    %10.0f rows/s  (%.1fx per-row)\n",
		totalRows, totalRows/batchRows, batchRate, batchRate/perRowRate)

	// Prove the load is queryable through the index.
	res, err := c.Exec("SELECT * FROM words WHERE name #= 'word0999'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefix probe word0999 -> %d rows via %s\n", len(res.Rows), res.Plan)
	res, err = c.Exec("SELECT * FROM words WHERE name = 'word099999'")
	if err != nil || len(res.Rows) != 1 {
		log.Fatalf("exact probe: %d rows, err=%v", len(res.Rows), err)
	}
	fmt.Println("exact probe word099999 -> 1 row")
}

func mustExec(c *server.Client, stmt string) {
	if _, err := c.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
