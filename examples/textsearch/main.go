// Text search: the paper's string workloads at example scale. Builds a
// dictionary of random words (the paper's distribution: length uniform in
// [1,15] over a-z), indexes it twice — a patricia trie and a suffix tree —
// and contrasts:
//
//   - wildcard search through the trie against the B+-tree, including the
//     leading-wildcard patterns the paper highlights as the B+-tree's
//     weakness (a leading '?' forces it into a full scan);
//   - substring search through the suffix tree against a sequential scan
//     (no other access method supports it).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/datagen"
)

func main() {
	db := repro.OpenMemory()
	defer db.Close()

	db.MustExec(`CREATE TABLE dict (word VARCHAR, id INT)`)

	const n = 20000
	words := datagen.Words(n, 7)
	fmt.Printf("loading %d words...\n", n)
	tb, err := db.Engine().Table("dict")
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range words {
		if _, err := tb.Insert(tupleText(w, i)); err != nil {
			log.Fatal(err)
		}
	}

	db.MustExec(`CREATE INDEX dict_trie ON dict USING spgist (word spgist_trie)`)
	db.MustExec(`CREATE INDEX dict_sfx  ON dict USING spgist (word spgist_suffix)`)
	db.MustExec(`CREATE INDEX dict_bt   ON dict USING btree  (word)`)

	timeQ := func(sql string) (int, time.Duration) {
		start := time.Now()
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		return len(res.Rows), time.Since(start)
	}

	// A pattern with a LEADING wildcard: the trie still navigates by the
	// later literals; the B+-tree can only scan.
	seed := words[0]
	pattern := "?" + seed[1:]
	rows, d := timeQ(fmt.Sprintf(`SELECT * FROM dict WHERE word ?= '%s'`, pattern))
	fmt.Printf("\nwildcard %-18q -> %4d rows in %8v (SP-GiST trie navigates every literal)\n",
		pattern, rows, d)

	res := db.MustExec(fmt.Sprintf(`EXPLAIN SELECT * FROM dict WHERE word ?= '%s'`, pattern))
	fmt.Println("plan:", res.Plan)

	// Substring search through the suffix tree.
	sub := seed[:3]
	rows, d = timeQ(fmt.Sprintf(`SELECT * FROM dict WHERE word @= '%s'`, sub))
	fmt.Printf("\nsubstring %-17q -> %4d rows in %8v (suffix tree)\n", sub, rows, d)

	// Prefix search: this one the B+-tree wins (sorted leaves).
	rows, d = timeQ(fmt.Sprintf(`SELECT * FROM dict WHERE word #= '%s'`, seed[:2]))
	fmt.Printf("\nprefix %-20q -> %4d rows in %8v\n", seed[:2], rows, d)

	// Approximate dictionary lookup: nearest words by Hamming distance.
	fmt.Printf("\nnearest neighbors of %q by Hamming-style distance:\n", seed)
	nn := db.MustExec(fmt.Sprintf(`SELECT * FROM dict ORDER BY word <-> '%s' LIMIT 5`, seed))
	for i, row := range nn.Rows {
		fmt.Printf("  %-16s distance %.0f\n", row[0].S, nn.Distances[i])
	}
}

func tupleText(w string, id int) []repro.Datum {
	return []repro.Datum{repro.NewText(w), repro.NewInt(int64(id))}
}
