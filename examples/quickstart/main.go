// Quickstart: the paper's Table 6 session end to end — create a table,
// build an SP-GiST trie index on it through the operator-class machinery,
// and run the equality / prefix / regular-expression / NN queries the
// trie's operators provide. EXPLAIN shows the cost-based choice between
// the sequential scan and the index scan.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db := repro.OpenMemory()
	defer db.Close()

	// The statements of the paper's Table 6.
	db.MustExec(`CREATE TABLE word_data (name VARCHAR(50), id INT)`)
	db.MustExec(`CREATE INDEX sp_trie_index ON word_data USING spgist (name spgist_trie)`)

	words := []string{
		"random", "rondom", "rainbow", "spade", "spark", "space", "star",
		"database", "datum", "index", "quadtree", "trie", "tree",
	}
	for i, w := range words {
		db.MustExec(fmt.Sprintf(`INSERT INTO word_data VALUES ('%s', %d)`, w, i+1))
	}

	show := func(sql string) {
		fmt.Println("\n=>", sql)
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		if res.Plan != "" {
			fmt.Println("   plan:", res.Plan)
		}
		for i, row := range res.Rows {
			line := fmt.Sprintf("   %s (id %s)", row[0], row[1])
			if res.Distances != nil {
				line += fmt.Sprintf("  distance=%.0f", res.Distances[i])
			}
			fmt.Println(line)
		}
	}

	// Equality query (paper Table 6, left).
	show(`SELECT * FROM word_data WHERE name = 'random'`)

	// Regular-expression query with the '?' wildcard (Table 6): matches
	// both 'random' and 'rondom'.
	show(`SELECT * FROM word_data WHERE name ?= 'r?nd?m'`)

	// Prefix query.
	show(`SELECT * FROM word_data WHERE name #= 'spa'`)

	// Incremental nearest-neighbor search by Hamming-style distance.
	show(`SELECT * FROM word_data ORDER BY name <-> 'strie' LIMIT 3`)

	// The planner picks the access path by cost.
	show(`EXPLAIN SELECT * FROM word_data WHERE name = 'random'`)
}
