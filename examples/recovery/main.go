// Recovery: crash-and-recover on a file-backed database. The program
// opens a database with write-ahead logging, loads words and points
// under two SP-GiST indexes, then simulates a crash: every unflushed
// buffer-pool frame is discarded, so the data files hold only what
// happened to be evicted. Reopening with WAL enabled runs the redo pass,
// and the indexed queries return exactly what a clean shutdown would
// have preserved.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "spgist-recovery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("database directory:", dir)

	db, err := repro.Open(repro.Options{Dir: dir, WAL: true})
	if err != nil {
		log.Fatal(err)
	}
	db.MustExec(`CREATE TABLE word_data (name VARCHAR(50), id INT)`)
	db.MustExec(`CREATE INDEX words_trie ON word_data USING spgist (name spgist_trie)`)
	db.MustExec(`CREATE TABLE pts (loc POINT, id INT)`)
	db.MustExec(`CREATE INDEX pts_kd ON pts USING spgist (loc spgist_kdtree)`)
	for i := 0; i < 500; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO word_data VALUES ('word%04d', %d)`, i, i))
		db.MustExec(fmt.Sprintf(`INSERT INTO pts VALUES ('(%d,%d)', %d)`, i%100, (i*37)%100, i))
	}
	before := db.MustExec(`SELECT * FROM word_data WHERE name #= 'word012'`)
	fmt.Printf("before crash: prefix query finds %d rows\n", len(before.Rows))

	// Crash: drop all unflushed buffer-pool frames. Nothing that only
	// lived in memory reaches the data files — only the log has it.
	if err := db.Engine().Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated crash (unflushed pages discarded)")

	// Reopen: the redo pass replays the log into the heap and index
	// files, then the persistent system catalog rediscovers the schema —
	// nothing is re-declared.
	db, err = repro.Open(repro.Options{Dir: dir, WAL: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	rs := db.Engine().RecoveryStats()
	fmt.Printf("recovered: %d log records (%d page images, %d heap inserts) -> %d pages across %d files\n",
		rs.Records, rs.PageImages, rs.HeapInserts, rs.PagesWritten, rs.FilesTouched)

	after := db.MustExec(`SELECT * FROM word_data WHERE name #= 'word012'`)
	pt := db.MustExec(`SELECT * FROM pts WHERE loc @ '(12,44)'`)
	fmt.Printf("after recovery: prefix query finds %d rows (want %d), point query finds %d rows\n",
		len(after.Rows), len(before.Rows), len(pt.Rows))
	if len(after.Rows) != len(before.Rows) {
		log.Fatal("recovery lost rows")
	}
	fmt.Println("crash recovery OK: indexed queries match the pre-crash state")
}
