// Observability: the wait-event profile of a concurrent workload, end
// to end. The program starts the serving core with its HTTP sidecar
// in-process, seeds a trie-indexed table, then runs the same client mix
// twice — first read-only, then with a writer churning the table — and
// prints the wait-event profile of each phase (STATS RESET between
// them), showing lock_table and wal-class waits appear only once
// writers join. While the load runs, it scrapes ACTIVITY over the wire
// and /metrics + /activity + /healthz over HTTP, and exits non-zero if
// any surface fails to answer — CI runs this as the observability smoke
// test.
//
// The same surfaces on a standalone server:
//
//	$ go run ./cmd/spgist-server -addr :5433 -http :9187 &
//	$ curl -s localhost:9187/metrics | grep wait_
//	$ printf 'ACTIVITY\n' | nc localhost 5433
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/server"
)

const rows = 5000

func main() {
	db := executor.OpenMemory()
	defer db.Close()
	srv := server.New(db)

	sqlL, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(sqlL) }()
	addr := sqlL.Addr().String()

	httpL, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(httpL, srv.HTTPHandler())
	httpAddr := httpL.Addr().String()
	fmt.Printf("SQL on %s, observability HTTP on %s\n", addr, httpAddr)

	// Seed: one table, one trie index.
	seed := dial(addr)
	mustExec(seed, "CREATE TABLE words (name VARCHAR, id INT)")
	mustExec(seed, "CREATE INDEX wix ON words USING spgist (name spgist_trie)")
	for i := 0; i < rows; i += 50 {
		var vals []string
		for j := 0; j < 50; j++ {
			vals = append(vals, fmt.Sprintf("('word%04d', %d)", i+j, i+j))
		}
		mustExec(seed, "INSERT INTO words VALUES "+strings.Join(vals, ", "))
	}
	// ANALYZE so the exact-match reads go through the trie index: fast
	// reads that pile up behind the writer's batches are what makes the
	// second phase's lock_table waits visible.
	mustExec(seed, "ANALYZE words")
	seed.Close()
	fmt.Printf("seeded %d rows\n\n", rows)

	// Phase 1: readers only. Phase 2: same readers plus a writer. The
	// STATS RESET between phases is what makes the two profiles
	// comparable deltas rather than one cumulative smear.
	profileBefore := runPhase(addr, httpAddr, false)
	reset := dial(addr)
	if err := reset.StatsReset(); err != nil {
		log.Fatalf("STATS RESET: %v", err)
	}
	reset.Close()
	profileAfter := runPhase(addr, httpAddr, true)

	fmt.Println("wait-event profile, readers only vs readers + writer:")
	fmt.Printf("  %-18s %12s %12s\n", "event", "readers", "+writer")
	names := make([]string, 0)
	for name := range profileAfter {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-18s %12d %12d\n", name, profileBefore[name], profileAfter[name])
	}
	if profileAfter["lock_table"] == 0 {
		fmt.Println("note: no table-lock waits observed; the writer never collided with a reader this run")
	}

	srv.Shutdown()
	sqlL.Close()
	httpL.Close()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
}

// runPhase drives the client mix for a fixed window, scrapes ACTIVITY
// and the HTTP surfaces mid-flight, and returns the phase's wait-event
// counts (wait_<event>_total) from STATS.
func runPhase(addr, httpAddr string, withWriter bool) map[string]int64 {
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	const window = 1500 * time.Millisecond
	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := dial(addr)
			defer c.Close()
			for i := 0; !stop.Load(); i++ {
				stmt := fmt.Sprintf("SELECT * FROM words WHERE name = 'word%04d'", (g*911+i)%rows)
				if _, err := c.Exec(stmt); err != nil {
					log.Fatalf("reader %d: %v", g, err)
				}
				ops.Add(1)
			}
		}(g)
	}
	if withWriter {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(addr)
			defer c.Close()
			// Batched inserts hold the table's write lock long enough for
			// readers to actually pile up on it — single-row inserts
			// release it faster than a TCP round trip, and the profile
			// would show nothing. The batch is sized to hold the lock past
			// the Go scheduler's preemption interval so the collision is
			// observable even on a single-CPU host.
			for i := 0; !stop.Load(); i += 2000 {
				var vals []string
				for j := 0; j < 2000; j++ {
					vals = append(vals, fmt.Sprintf("('extra%07d', %d)", i+j, rows+i+j))
				}
				if _, err := c.Exec("INSERT INTO words VALUES " + strings.Join(vals, ", ")); err != nil {
					log.Fatalf("writer: %v", err)
				}
				ops.Add(1)
			}
		}()
	}

	// Mid-flight, every observability surface must answer.
	scraper := dial(addr)
	time.Sleep(window / 3)
	snap, err := scraper.Activity()
	if err != nil {
		log.Fatalf("ACTIVITY scrape: %v", err)
	}
	want := readers + 1 // readers + this scraper
	if withWriter {
		want++
	}
	if len(snap) != want {
		log.Fatalf("ACTIVITY shows %d sessions, want %d", len(snap), want)
	}
	for _, path := range []string{"/metrics", "/activity", "/healthz"} {
		resp, err := http.Get("http://" + httpAddr + path)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			log.Fatalf("GET %s: status %d, %d bytes", path, resp.StatusCode, len(body))
		}
		if path == "/metrics" && !strings.Contains(string(body), "wait_buf_shard_total") {
			log.Fatalf("/metrics missing wait-event families")
		}
	}

	time.Sleep(window - window/3)
	stop.Store(true)
	wg.Wait()

	stats, err := scraper.Stats()
	if err != nil {
		log.Fatalf("STATS scrape: %v", err)
	}
	scraper.Close()

	label := "readers only"
	if withWriter {
		label = "readers + writer"
	}
	fmt.Printf("phase %-16s: %d statements, %d sessions seen in ACTIVITY\n", label, ops.Load(), len(snap))

	profile := make(map[string]int64)
	for name, v := range stats {
		if event, ok := strings.CutPrefix(name, "wait_"); ok {
			if event, ok := strings.CutSuffix(event, "_total"); ok && !strings.HasSuffix(event, "_ns") {
				profile[event] = v
			}
		}
	}
	return profile
}

func dial(addr string) *server.Client {
	c, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func mustExec(c *server.Client, stmt string) {
	if _, err := c.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
