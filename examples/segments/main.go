// Segments: the paper's line-segment workload as an application — a road
// network indexed with the SP-GiST PMR quadtree, answering window queries
// ("which road segments cross this map tile?"), exact segment lookups,
// and nearest-road queries, with an R-tree over MBRs for comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/geom"
)

func main() {
	db := repro.OpenMemory()
	defer db.Close()

	db.MustExec(`CREATE TABLE roads (seg SEGMENT, id INT)`)

	// Synthetic road network: 20K short segments in [0,100]^2.
	const n = 20000
	segs := datagen.Segments(n, 13, geom.MakeBox(0, 0, 100, 100), 5)
	tb, err := db.Engine().Table("roads")
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range segs {
		if _, err := tb.Insert([]repro.Datum{repro.NewSegment(s), repro.NewInt(int64(i))}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d road segments\n", n)

	// The PMR quadtree: space-driven 4-way decomposition, split threshold
	// 8, one copy of a segment per leaf cell it crosses, results
	// deduplicated by row.
	db.MustExec(`CREATE INDEX roads_pmr ON roads USING spgist (seg spgist_pmr)`)

	show := func(sql string) {
		start := time.Now()
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=> %s\n   %d rows in %v\n", sql, len(res.Rows), time.Since(start))
		for i, row := range res.Rows {
			if i >= 4 {
				fmt.Printf("   ... (%d more)\n", len(res.Rows)-4)
				break
			}
			line := fmt.Sprintf("   %s id=%s", row[0], row[1])
			if res.Distances != nil {
				line += fmt.Sprintf("  dist=%.3f", res.Distances[i])
			}
			fmt.Println(line)
		}
	}

	// Map-tile (window) query.
	show(`SELECT * FROM roads WHERE seg && '(30,30,36,36)'`)

	// Exact segment lookup.
	s := segs[77]
	show(fmt.Sprintf(`SELECT * FROM roads WHERE seg = '(%g,%g,%g,%g)'`,
		s.A.X, s.A.Y, s.B.X, s.B.Y))

	// Nearest roads to a point (point-to-segment distance).
	show(`SELECT * FROM roads ORDER BY seg <-> '(50,50)' LIMIT 5`)

	// The R-tree baseline indexes segment MBRs; its window hits are lossy
	// and the executor rechecks true intersection against the heap tuple.
	db.MustExec(`CREATE TABLE roads_rt (seg SEGMENT, id INT)`)
	tb2, _ := db.Engine().Table("roads_rt")
	for i, s := range segs {
		tb2.Insert([]repro.Datum{repro.NewSegment(s), repro.NewInt(int64(i))})
	}
	db.MustExec(`CREATE INDEX roads_rt_ix ON roads_rt USING rtree (seg)`)
	show(`SELECT * FROM roads_rt WHERE seg && '(30,30,36,36)'`)
	res := db.MustExec(`EXPLAIN SELECT * FROM roads_rt WHERE seg && '(30,30,36,36)'`)
	fmt.Println("\nR-tree plan:", res.Plan)
}
