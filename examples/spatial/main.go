// Spatial search: the paper's point workloads as an application — a city
// amenity directory indexed with the SP-GiST kd-tree and point quadtree,
// queried with point-equality, window (range), and incremental
// nearest-neighbor searches, with the R-tree baseline alongside.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/geom"
)

func main() {
	db := repro.OpenMemory()
	defer db.Close()

	db.MustExec(`CREATE TABLE amenities (loc POINT, id INT)`)

	// Synthetic city: 30K uniform amenity locations in [0,100]^2 (the
	// paper's experiment space).
	const n = 30000
	pts := datagen.Points(n, 11, geom.MakeBox(0, 0, 100, 100))
	tb, err := db.Engine().Table("amenities")
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range pts {
		if _, err := tb.Insert([]repro.Datum{repro.NewPoint(p), repro.NewInt(int64(i))}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d amenity locations\n", n)

	// Three indexes on the same column: the two SP-GiST instantiations
	// and the R-tree baseline (the planner will pick by cost; with equal
	// support the first wins, so query each through its own table in a
	// real app — here we show the catalog accepts all three).
	db.MustExec(`CREATE INDEX am_kd ON amenities USING spgist (loc spgist_kdtree)`)

	show := func(sql string) {
		start := time.Now()
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=> %s\n   %d rows in %v\n", sql, len(res.Rows), time.Since(start))
		for i, row := range res.Rows {
			if i >= 5 {
				fmt.Printf("   ... (%d more)\n", len(res.Rows)-5)
				break
			}
			line := fmt.Sprintf("   %s  id=%s", row[0], row[1])
			if res.Distances != nil {
				line += fmt.Sprintf("  dist=%.3f", res.Distances[i])
			}
			fmt.Println(line)
		}
	}

	// Point-equality: is there an amenity exactly here?
	q := pts[123]
	show(fmt.Sprintf(`SELECT * FROM amenities WHERE loc @ '(%g,%g)'`, q.X, q.Y))

	// Window query: everything in a 5x5 neighborhood.
	show(`SELECT * FROM amenities WHERE loc ^ '(40,40,45,45)'`)

	// Incremental NN: the 8 closest amenities to the city center. The
	// cursor underneath is the paper's section-5 algorithm: a priority
	// queue over partitions ordered by minimum Euclidean distance.
	show(`SELECT * FROM amenities ORDER BY loc <-> '(50,50)' LIMIT 8`)

	// The same data under a point quadtree behaves identically (4-way
	// data-driven decomposition instead of binary).
	db.MustExec(`CREATE TABLE amenities_pq (loc POINT, id INT)`)
	tb2, _ := db.Engine().Table("amenities_pq")
	for i, p := range pts[:5000] {
		tb2.Insert([]repro.Datum{repro.NewPoint(p), repro.NewInt(int64(i))})
	}
	db.MustExec(`CREATE INDEX am_pq ON amenities_pq USING spgist (loc spgist_pquadtree)`)
	show(`SELECT * FROM amenities_pq ORDER BY loc <-> '(50,50)' LIMIT 3`)

	// EXPLAIN shows the NN plan using the index's ordering operator.
	res := db.MustExec(`EXPLAIN SELECT * FROM amenities ORDER BY loc <-> '(50,50)' LIMIT 8`)
	fmt.Println("\nNN plan:", res.Plan)
}
