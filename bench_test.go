// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation, at a fixed moderate size. The full parameter sweeps that
// regenerate the figures' series live in cmd/spgist-bench; these targets
// give quick per-operation numbers (ns/op, B/op) for regression tracking.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/kdtree"
	"repro/internal/pmr"
	"repro/internal/pquad"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/suffix"
	"repro/internal/trie"
	"repro/internal/wal"
)

const (
	benchWords  = 50000
	benchPoints = 50000
	benchSegs   = 20000
)

func benchRID(i int) heap.RID {
	return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)}
}

func newPool() *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMem(storage.DefaultPageSize), 4096)
}

// Shared fixtures, built once.
var fixtures struct {
	once sync.Once

	words    []string
	patterns []string
	prefixes []string
	subs     []string
	trie     *core.Tree
	sfx      *core.Tree
	bt       *btree.Tree

	points []geom.Point
	kd     *core.Tree
	pq     *core.Tree
	rtPt   *rtree.Tree

	segs  []geom.Segment
	pmrT  *core.Tree
	rtSeg *rtree.Tree
}

func setup(b *testing.B) {
	b.Helper()
	defer b.ResetTimer() // keep one-time fixture construction out of the timings
	fixtures.once.Do(func() {
		f := &fixtures
		f.words = datagen.Words(benchWords, 42)
		f.patterns = datagen.Patterns(f.words, 512, 0.3, 43)
		f.prefixes = datagen.Prefixes(f.words, 512, 44)
		f.subs = datagen.Substrings(f.words, 512, 45)

		f.trie, _ = core.Create(newPool(), trie.New())
		f.bt, _ = btree.Create(newPool())
		for i, w := range f.words {
			f.trie.Insert(w, benchRID(i))
			f.bt.Insert([]byte(w), benchRID(i))
		}
		f.trie, _ = f.trie.Repack(newPool())

		f.sfx, _ = core.Create(newPool(), suffix.New())
		for i, w := range f.words[:benchWords/5] {
			suffix.InsertWord(f.sfx, w, benchRID(i))
		}
		f.sfx, _ = f.sfx.Repack(newPool())

		world := geom.MakeBox(0, 0, 100, 100)
		f.points = datagen.Points(benchPoints, 46, world)
		f.kd, _ = core.Create(newPool(), kdtree.New())
		f.pq, _ = core.Create(newPool(), pquad.New())
		f.rtPt, _ = rtree.Create(newPool())
		for i, p := range f.points {
			f.kd.Insert(p, benchRID(i))
			f.pq.Insert(p, benchRID(i))
			f.rtPt.Insert(geom.Box{Min: p, Max: p}, benchRID(i))
		}
		f.kd, _ = f.kd.Repack(newPool())
		f.pq, _ = f.pq.Repack(newPool())

		f.segs = datagen.Segments(benchSegs, 47, world, 5)
		f.pmrT, _ = core.Create(newPool(), pmr.New())
		f.rtSeg, _ = rtree.Create(newPool())
		for i, s := range f.segs {
			f.pmrT.Insert(s, benchRID(i))
			f.rtSeg.Insert(s.MBR(), benchRID(i))
		}
		f.pmrT, _ = f.pmrT.Repack(newPool())
	})
}

var sink int

func emitCore(_ core.Value, _ heap.RID) bool { sink++; return true }

// --- Table 7 has no runtime component (line counting); see cmd/spgist-loc.

// --- Figure 6: exact and prefix match, trie vs B+-tree.

func BenchmarkFig6ExactMatchTrie(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		w := fixtures.words[i%benchWords]
		fixtures.trie.Scan(&core.Query{Op: "=", Arg: w}, emitCore)
	}
}

func BenchmarkFig6ExactMatchBTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		w := fixtures.words[i%benchWords]
		fixtures.bt.Search([]byte(w), func(heap.RID) bool { sink++; return true })
	}
}

func BenchmarkFig6PrefixMatchTrie(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		p := fixtures.prefixes[i%len(fixtures.prefixes)]
		fixtures.trie.Scan(&core.Query{Op: "#=", Arg: p}, emitCore)
	}
}

func BenchmarkFig6PrefixMatchBTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		p := fixtures.prefixes[i%len(fixtures.prefixes)]
		fixtures.bt.PrefixScan([]byte(p), func(_ []byte, _ heap.RID) bool { sink++; return true })
	}
}

// --- Figure 7: regular-expression ('?' wildcard) match.

func BenchmarkFig7RegexTrie(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		p := fixtures.patterns[i%len(fixtures.patterns)]
		fixtures.trie.Scan(&core.Query{Op: "?=", Arg: p}, emitCore)
	}
}

func BenchmarkFig7RegexBTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		p := fixtures.patterns[i%len(fixtures.patterns)]
		fixtures.bt.MatchScan(p, trie.MatchPattern, func(_ []byte, _ heap.RID) bool { sink++; return true })
	}
}

// --- Figures 8-9: trie insert vs B+-tree insert (fresh trees per run).

func BenchmarkFig9InsertTrie(b *testing.B) {
	setup(b)
	t, _ := core.Create(newPool(), trie.New())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(fixtures.words[i%benchWords], benchRID(i))
	}
}

func BenchmarkFig9InsertBTree(b *testing.B) {
	setup(b)
	t, _ := btree.Create(newPool())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert([]byte(fixtures.words[i%benchWords]), benchRID(i))
	}
}

// --- Figures 10-12 are structural (size, heights): measured in
// cmd/spgist-bench; here a cheap stats walk keeps them regression-tested.

func BenchmarkFig12StatsWalkTrie(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixtures.trie.Stats(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 13: point match / range search, kd-tree vs R-tree.

func BenchmarkFig13PointMatchKD(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		p := fixtures.points[i%benchPoints]
		fixtures.kd.Scan(&core.Query{Op: "@", Arg: p}, emitCore)
	}
}

func BenchmarkFig13PointMatchRTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		p := fixtures.points[i%benchPoints]
		fixtures.rtPt.SearchPoint(p, func(heap.RID) bool { sink++; return true })
	}
}

var benchBoxes = datagen.Boxes(512, 48, geom.MakeBox(0, 0, 100, 100), 3)

func BenchmarkFig13RangeKD(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		fixtures.kd.Scan(&core.Query{Op: "^", Arg: benchBoxes[i%len(benchBoxes)]}, emitCore)
	}
}

func BenchmarkFig13RangeRTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		fixtures.rtPt.SearchContained(benchBoxes[i%len(benchBoxes)],
			func(_ geom.Box, _ heap.RID) bool { sink++; return true })
	}
}

func BenchmarkFig13InsertKD(b *testing.B) {
	setup(b)
	t, _ := core.Create(newPool(), kdtree.New())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(fixtures.points[i%benchPoints], benchRID(i))
	}
}

func BenchmarkFig13InsertRTree(b *testing.B) {
	setup(b)
	t, _ := rtree.Create(newPool())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := fixtures.points[i%benchPoints]
		t.Insert(geom.Box{Min: p, Max: p}, benchRID(i))
	}
}

// --- Figure 15: segment workloads, PMR quadtree vs R-tree.

func BenchmarkFig15ExactPMR(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		s := fixtures.segs[i%benchSegs]
		fixtures.pmrT.Scan(&core.Query{Op: "=", Arg: s}, emitCore)
	}
}

func BenchmarkFig15ExactRTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		s := fixtures.segs[i%benchSegs]
		fixtures.rtSeg.Search(s.MBR(), func(_ geom.Box, rd heap.RID) bool {
			idx := (int(rd.Page)-1)*1000 + int(rd.Slot)
			if fixtures.segs[idx].Eq(s) {
				sink++
			}
			return true
		})
	}
}

func BenchmarkFig15WindowPMR(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		fixtures.pmrT.Scan(&core.Query{Op: "&&", Arg: benchBoxes[i%len(benchBoxes)]}, emitCore)
	}
}

func BenchmarkFig15WindowRTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		w := benchBoxes[i%len(benchBoxes)]
		fixtures.rtSeg.Search(w, func(_ geom.Box, rd heap.RID) bool {
			idx := (int(rd.Page)-1)*1000 + int(rd.Slot)
			if fixtures.segs[idx].IntersectsBox(w) {
				sink++
			}
			return true
		})
	}
}

// --- Figure 16: substring match, suffix tree vs sequential scan.

func BenchmarkFig16SubstringSuffixTree(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		q := fixtures.subs[i%len(fixtures.subs)]
		fixtures.sfx.Scan(suffix.SubstringQuery(q), emitCore)
	}
}

func BenchmarkFig16SubstringSeqScan(b *testing.B) {
	setup(b)
	words := fixtures.words[:benchWords/5]
	for i := 0; i < b.N; i++ {
		q := fixtures.subs[i%len(fixtures.subs)]
		for _, w := range words {
			if strings.Contains(w, q) {
				sink++
			}
		}
	}
}

// --- Figure 17: incremental NN across instantiations.

func benchNN(b *testing.B, t *core.Tree, k int, q func(i int) core.Value) {
	b.Helper()
	setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := t.NN(q(i), k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17NN8KD(b *testing.B) {
	benchNN(b, fixturesKD(b), 8, func(i int) core.Value { return fixtures.points[i%benchPoints] })
}

func BenchmarkFig17NN128KD(b *testing.B) {
	benchNN(b, fixturesKD(b), 128, func(i int) core.Value { return fixtures.points[i%benchPoints] })
}

func BenchmarkFig17NN8PQuad(b *testing.B) {
	benchNN(b, fixturesPQ(b), 8, func(i int) core.Value { return fixtures.points[i%benchPoints] })
}

func BenchmarkFig17NN8Trie(b *testing.B) {
	benchNN(b, fixturesTrie(b), 8, func(i int) core.Value { return fixtures.words[i%benchWords] })
}

func fixturesKD(b *testing.B) *core.Tree   { setup(b); return fixtures.kd }
func fixturesPQ(b *testing.B) *core.Tree   { setup(b); return fixtures.pq }
func fixturesTrie(b *testing.B) *core.Tree { setup(b); return fixtures.trie }

// --- Substrate micro-benchmarks.

func BenchmarkSubstrateBufferPoolFetch(b *testing.B) {
	bp := newPool()
	var ids []storage.PageID
	for i := 0; i < 64; i++ {
		p, _ := bp.NewPage()
		ids = append(ids, p.ID)
		bp.Unpin(p, false)
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := bp.Fetch(ids[r.Intn(len(ids))])
		bp.Unpin(p, false)
	}
}

func BenchmarkSubstrateHeapInsert(b *testing.B) {
	hf, _ := heap.Create(newPool())
	rec := []byte("a modest forty-byte tuple for the bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hf.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard against accidental fixture-size drift.
func TestBenchFixturesSane(t *testing.T) {
	if benchWords < 1000 || benchPoints < 1000 || benchSegs < 1000 {
		t.Fatal("bench fixtures too small to be meaningful")
	}
	_ = fmt.Sprintf
}

// BenchmarkWALAppend measures the write-ahead-log append path that every
// mutating statement pays when logging is on: buffered appends alone
// (what group-commit batching reduces commits to), an fsync per commit
// (the durable worst case), and parallel committers sharing fsyncs
// through the leader/follower group commit.
func BenchmarkWALAppend(b *testing.B) {
	rec := make([]byte, 200)
	for i := range rec {
		rec[i] = byte(i)
	}
	b.Run("buffered", func(b *testing.B) {
		w, err := wal.OpenWriter(b.TempDir(), wal.Options{Mode: wal.SyncLazy})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		b.SetBytes(int64(len(rec)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.AppendHeapInsert("t.tbl", uint32(i), 0, rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sync-every-commit", func(b *testing.B) {
		w, err := wal.OpenWriter(b.TempDir(), wal.Options{Mode: wal.SyncCommit})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		b.SetBytes(int64(len(rec)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.AppendHeapInsert("t.tbl", uint32(i), 0, rec); err != nil {
				b.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("group-commit-parallel", func(b *testing.B) {
		w, err := wal.OpenWriter(b.TempDir(), wal.Options{Mode: wal.SyncCommit})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		b.SetBytes(int64(len(rec)))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				lsn, err := w.AppendHeapInsert("t.tbl", 1, 0, rec)
				if err != nil {
					b.Error(err)
					return
				}
				if err := w.Sync(lsn); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkWALPageImage measures the page-image record path the buffer
// pool takes on every dirty unpin of an index page, for a sparse
// (mostly-zero, heavily truncated) and a full page image.
func BenchmarkWALPageImage(b *testing.B) {
	for _, bc := range []struct {
		name string
		fill int
	}{{"sparse", 64}, {"full", storage.DefaultPageSize}} {
		b.Run(bc.name, func(b *testing.B) {
			w, err := wal.OpenWriter(b.TempDir(), wal.Options{Mode: wal.SyncLazy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			page := make([]byte, storage.DefaultPageSize)
			for i := 0; i < bc.fill; i++ {
				page[i] = byte(i | 1)
			}
			b.SetBytes(int64(len(page)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.AppendPageImage("t.idx", uint32(i%64), page); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCatalogReopen measures the cost of executor.Open over an
// existing database: write-ahead-log scan, system-catalog load, and
// schema reattachment (heap + index opens) — the whole "rediscover
// everything with zero re-declaration" path. Planner statistics are
// collected lazily on first use, so they are deliberately outside the
// measurement.
func BenchmarkCatalogReopen(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(Options{Dir: dir, WAL: true})
	if err != nil {
		b.Fatal(err)
	}
	db.MustExec(`CREATE TABLE word_data (name VARCHAR, id INT)`)
	db.MustExec(`CREATE INDEX wd_trie ON word_data USING spgist (name spgist_trie)`)
	db.MustExec(`CREATE TABLE pts (p POINT, id INT)`)
	db.MustExec(`CREATE INDEX pts_kd ON pts USING spgist (p spgist_kdtree)`)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO word_data VALUES ('w%06d', %d)`, rng.Intn(1000000), i))
		db.MustExec(fmt.Sprintf(`INSERT INTO pts VALUES ('(%g,%g)', %d)`, rng.Float64()*100, rng.Float64()*100, i))
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(Options{Dir: dir, WAL: true})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(db.Engine().Tables()); got != 2 {
			b.Fatalf("rediscovered %d tables", got)
		}
		b.StopTimer()
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkFirstPlanAfterReopen measures the cost of the *first*
// predicate plan a fresh session makes — the path persisted statistics
// exist for. With persisted statistics (ANALYZE ran before the close)
// planning is O(catalog): the statistics load with the schema and no
// heap page is read. Without them the session falls back to the lazy
// sampling pass, which reads the heap — the O(rows) cost this
// benchmark exists to show eliminated.
func BenchmarkFirstPlanAfterReopen(b *testing.B) {
	setup := func(b *testing.B, analyze bool) string {
		dir := b.TempDir()
		db, err := Open(Options{Dir: dir, WAL: true})
		if err != nil {
			b.Fatal(err)
		}
		db.MustExec(`CREATE TABLE word_data (name VARCHAR, id INT)`)
		db.MustExec(`CREATE INDEX wd_trie ON word_data USING spgist (name spgist_trie)`)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO word_data VALUES ('w%06d', %d)`, rng.Intn(1000000), i))
		}
		if analyze {
			db.MustExec(`ANALYZE word_data`)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, bc := range []struct {
		name    string
		analyze bool
	}{{"persisted-stats", true}, {"lazy-sample", false}} {
		b.Run(bc.name, func(b *testing.B) {
			dir := setup(b, bc.analyze)
			b.ResetTimer()
			b.StopTimer() // only the EXPLAIN below is timed, not open/close
			for i := 0; i < b.N; i++ {
				db, err := Open(Options{Dir: dir, WAL: true})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := db.Exec(`EXPLAIN SELECT * FROM word_data WHERE name = 'w000042'`)
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if res.Plan == "" {
					b.Fatal("no plan")
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
