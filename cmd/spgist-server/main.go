// Command spgist-server serves one database to many concurrent SQL
// sessions over TCP — the multi-backend shape the paper's SP-GiST
// realization lives in inside PostgreSQL. Each connection gets its own
// sqlmini session over one shared engine; SELECT-class statements run
// concurrently under the engine's shared statement lock while DML and
// DDL serialize as single writers.
//
//	$ spgist-server -addr :5433 -dir /path/to/db -wal
//	$ printf 'SHOW TABLES\n' | nc localhost 5433
//
// Protocol (newline-framed text; see internal/server):
//
//	client: one SQL statement per line
//	server: "#cols ...", "row ...", "plan ..." lines, then "OK ..." or "ERR ..."
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/executor"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", "localhost:5433", "TCP listen address")
	httpAddr := flag.String("http", "", "HTTP observability listen address for /metrics, /activity, /healthz, /debug/pprof (empty disables)")
	dir := flag.String("dir", "", "database directory (default: in-memory)")
	useWAL := flag.Bool("wal", false, "enable write-ahead logging and crash recovery (requires -dir)")
	walLazy := flag.Bool("wal-lazy", false, "sync the log lazily instead of on every commit")
	poolPages := flag.Int("pool", 0, "buffer-pool pages per file (default 1024)")
	slowQuery := flag.Duration("slow-query", 0, "log statements at or over this duration to stderr (0 disables)")
	traceDir := flag.String("trace-dir", "", "write a Chrome trace-event JSON file per statement into this directory (empty disables)")
	idleTxn := flag.Duration("idle-txn-timeout", 0, "roll back and disconnect sessions idle in an open transaction this long (0 disables)")
	readahead := flag.Int("readahead", 0, "pages of scan readahead to prefetch (default 8, negative disables)")
	prefetchWorkers := flag.Int("prefetch-workers", 0, "prefetcher goroutines shared by all tables (default 4)")
	bgwInterval := flag.Duration("bgwriter-interval", 0, "background dirty-page writer tick (0 disables)")
	bgwMaxPages := flag.Int("bgwriter-max-pages", 0, "page budget per background-writer round (default 128)")
	flag.Parse()

	mode := wal.SyncCommit
	if *walLazy {
		mode = wal.SyncLazy
	}
	db, err := executor.Open(executor.Options{
		Dir: *dir, WAL: *useWAL, WALSync: mode, PoolPages: *poolPages,
		SlowQueryThreshold: *slowQuery, TraceDir: *traceDir,
		ReadaheadPages: *readahead, PrefetchWorkers: *prefetchWorkers,
		BGWriterInterval: *bgwInterval, BGWriterMaxPages: *bgwMaxPages,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	if rs := db.RecoveryStats(); rs.PagesWritten > 0 || rs.TornTail {
		fmt.Printf("recovered from WAL: %d records, %d pages written across %d files\n",
			rs.Records, rs.PagesWritten, rs.FilesTouched)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := server.New(db)
	if *idleTxn > 0 {
		srv.SetIdleTxnTimeout(*idleTxn)
	}

	var httpL net.Listener
	if *httpAddr != "" {
		httpL, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go func() {
			if serr := http.Serve(httpL, srv.HTTPHandler()); serr != nil && !isClosedErr(serr) {
				fmt.Fprintln(os.Stderr, serr)
			}
		}()
		fmt.Printf("observability HTTP on %s (/metrics /activity /healthz /debug/pprof)\n", httpL.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		srv.Shutdown()
		l.Close()
		if httpL != nil {
			httpL.Close()
		}
	}()

	fmt.Printf("spgist-server listening on %s (db: %s)\n", l.Addr(), dbLabel(*dir))
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

func dbLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
