// Command spgist-loc reproduces the paper's Table 7: the number and
// percentage of code lines a developer writes (the external methods of
// each SP-GiST instantiation) against the shared SP-GiST core the
// framework provides. Run it from anywhere inside the repository.
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	rows, coreLines, err := bench.Table7()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("Table 7 — external methods' code lines")
	fmt.Printf("shared SP-GiST core + substrate: %d lines\n\n", coreLines)
	fmt.Printf("%-14s %8s %10s\n", "index", "lines", "% of total")
	for _, r := range rows {
		fmt.Printf("%-14s %8d %9.1f%%\n", r.Index, r.Lines, r.Percent)
	}
	fmt.Println("\npaper: each instantiation stays below 10% of the total index code")
}
