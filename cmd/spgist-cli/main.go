// Command spgist-cli is a small interactive SQL shell over the embedded
// engine — the closest thing in this repository to the psql sessions of
// the paper's Table 6.
//
//	$ spgist-cli [-dir /path/to/db]
//	spgist> CREATE TABLE word_data (name VARCHAR, id INT);
//	spgist> CREATE INDEX t ON word_data USING spgist (name spgist_trie);
//	spgist> INSERT INTO word_data VALUES ('random', 1);
//	spgist> SELECT * FROM word_data WHERE name ?= 'r?nd?m';
//
// Meta commands: \dam (access methods), \doc (operator classes),
// \do (operators), \dt (tables), \d <table> (describe one table from the
// persistent system catalog), \page <rel> <pageno> (decode a raw heap,
// B+-tree, SP-GiST, or R-tree page straight from disk, pgpageshell
// style), \scrub [table] (checksum-verify every page of every heap and
// catalog file, pg_checksums style), \wal (log/recovery stats), \timing
// (toggle per-statement wall-clock reporting — watch a 1000-row
// multi-row INSERT beat 1000 single-row statements), \q (quit).
// SHOW TABLES / SHOW INDEXES / SHOW STATS and DROP TABLE / DROP INDEX
// are plain SQL.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/pageinspect"
	"repro/internal/wal"
)

func main() {
	dir := flag.String("dir", "", "database directory (default: in-memory)")
	useWAL := flag.Bool("wal", false, "enable write-ahead logging and crash recovery (requires -dir)")
	walLazy := flag.Bool("wal-lazy", false, "sync the log lazily instead of on every commit")
	flag.Parse()

	mode := wal.SyncCommit
	if *walLazy {
		mode = wal.SyncLazy
	}
	db, err := repro.Open(repro.Options{Dir: *dir, WAL: *useWAL, WALSync: mode})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	if rs := db.Engine().RecoveryStats(); rs.PagesWritten > 0 || rs.TornTail {
		fmt.Printf("recovered from WAL: %d records (%d page images, %d heap inserts, %d heap deletes), %d pages written across %d files\n",
			rs.Records, rs.PageImages, rs.HeapInserts, rs.HeapDeletes, rs.PagesWritten, rs.FilesTouched)
		if rs.TornPages > 0 {
			fmt.Printf("torn pages detected by checksum: %d, repaired from WAL: %d\n", rs.TornPages, rs.TornRepaired)
		}
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("SP-GiST mini SQL shell (type \\q to quit, \\dam \\doc \\do \\dt \\d <table> for catalogs, \\timing for latencies)")
	timing := false
	var pending strings.Builder
	for {
		if pending.Len() == 0 {
			fmt.Print("spgist> ")
		} else {
			fmt.Print("   ...> ")
		}
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if strings.ToLower(strings.Fields(line)[0]) == "\\timing" {
				timing = !timing
				if timing {
					fmt.Println("Timing is on.")
				} else {
					fmt.Println("Timing is off.")
				}
				continue
			}
			if meta(db, *dir, line) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteString(" ")
		if !strings.HasSuffix(line, ";") {
			continue
		}
		sql := pending.String()
		pending.Reset()
		start := time.Now()
		res, err := db.Exec(sql)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Println("ERROR:", err)
			continue
		}
		printResult(res)
		if timing {
			fmt.Printf("Time: %.3f ms\n", float64(elapsed.Microseconds())/1000)
		}
	}
}

func printResult(res *repro.Result) {
	if res.Plan != "" && len(res.Columns) > 0 && res.Rows == nil && res.Msg == "" {
		fmt.Println(res.Plan) // EXPLAIN
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		for i, row := range res.Rows {
			var cells []string
			for _, d := range row {
				cells = append(cells, d.String())
			}
			line := strings.Join(cells, " | ")
			if res.Distances != nil {
				line += fmt.Sprintf("   <-> %.3f", res.Distances[i])
			}
			fmt.Println(line)
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return
	}
	if res.Msg != "" {
		fmt.Println(res.Msg)
	}
}

// meta handles backslash commands; returns true to quit.
func meta(db *repro.DB, dir, line string) bool {
	switch strings.ToLower(strings.Fields(line)[0]) {
	case "\\q", "\\quit":
		return true
	case "\\dam":
		fmt.Println("access methods (pg_am):")
		ams := repro.AccessMethods()
		sort.Slice(ams, func(i, j int) bool { return ams[i].Name < ams[j].Name })
		for _, am := range ams {
			fmt.Printf("  %-8s strategies=%d support=%d order=%d concurrent=%v build=%s cost=%s\n",
				am.Name, am.MaxStrategies, am.MaxSupport, am.OrderStrategy,
				am.Concurrent, am.BuildProc, am.CostProc)
		}
	case "\\doc":
		fmt.Println("operator classes (pg_opclass):")
		ocs := repro.OperatorClasses()
		sort.Slice(ocs, func(i, j int) bool { return ocs[i].Name < ocs[j].Name })
		for _, oc := range ocs {
			var ops []string
			for op, st := range oc.Strategies {
				ops = append(ops, fmt.Sprintf("%s(%d)", op, st))
			}
			sort.Strings(ops)
			fmt.Printf("  %-18s am=%-7s type=%-8v default=%-5v ops=%s\n",
				oc.Name, oc.AM, oc.Type, oc.Default, strings.Join(ops, " "))
		}
	case "\\do":
		fmt.Println("operators (pg_operator):")
		ops := catalog.Operators()
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Name != ops[j].Name {
				return ops[i].Name < ops[j].Name
			}
			return ops[i].Left < ops[j].Left
		})
		for _, op := range ops {
			fmt.Printf("  %-3s  left=%-8v right=%-8v commutator=%q\n",
				op.Name, op.Left, op.Right, op.Commutator)
		}
	case "\\d":
		fields := strings.Fields(line)
		if len(fields) < 2 {
			fmt.Println("usage: \\d <table>")
			break
		}
		describe(db, fields[1])
	case "\\dt":
		for _, t := range db.Engine().Tables() {
			var cols []string
			for _, c := range t.Columns {
				cols = append(cols, fmt.Sprintf("%s %v", c.Name, c.Type))
			}
			fmt.Printf("  %s (%s)  rows=%d indexes=%d\n",
				t.Name, strings.Join(cols, ", "), t.RowCount(), len(t.Indexes))
			for _, ix := range t.Indexes {
				fmt.Printf("    index %s on %s using %s (%s), %d pages\n",
					ix.Name, t.Columns[ix.Column].Name, ix.OpClass.AM, ix.OpClass.Name, ix.Idx.NumPages())
			}
		}
	case "\\page":
		fields := strings.Fields(line)
		if len(fields) != 3 {
			fmt.Println("usage: \\page <table|index|file> <pageno>")
			break
		}
		pageNo, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			fmt.Printf("bad page number %q\n", fields[2])
			break
		}
		path, err := relPath(db, dir, fields[1])
		if err != nil {
			fmt.Println("ERROR:", err)
			break
		}
		if err := pageinspect.Describe(os.Stdout, path, uint32(pageNo), 0); err != nil {
			fmt.Println("ERROR:", err)
		}
	case "\\scrub":
		fields := strings.Fields(line)
		table := ""
		if len(fields) > 1 {
			table = fields[1]
		}
		res, err := db.Engine().Scrub(table)
		if err != nil {
			fmt.Println("ERROR:", err)
			break
		}
		for _, is := range res.Issues {
			fmt.Println("CORRUPT:", is)
		}
		fmt.Printf("scrub: %d files, %d pages checked, %d corrupt\n",
			res.FilesChecked, res.PagesChecked, len(res.Issues))
	case "\\activity":
		fmt.Println("id | client | state | wait_event | statement | elapsed_ms")
		snap := db.Engine().Activity().Snapshot()
		for _, si := range snap {
			fmt.Printf("%d | %s | %s | %s | %s | %.3f\n",
				si.ID, si.Client, si.State, si.WaitEvent, si.Statement,
				si.StmtElapsed.Seconds()*1000)
		}
		fmt.Printf("(%d sessions)\n", len(snap))
	case "\\wal":
		w := db.Engine().WAL()
		if w == nil {
			fmt.Println("write-ahead logging is off (start with -dir DIR -wal)")
			break
		}
		st := w.Stats()
		fmt.Printf("wal: dir=%s segments=%d appended-lsn=%d durable-lsn=%d\n",
			w.Dir(), w.Segments(), w.AppendedLSN(), w.DurableLSN())
		fmt.Printf("     appends=%d bytes=%d syncs=%d rotations=%d checkpoints=%d\n",
			st.Appends, st.AppendedBytes, st.Syncs, st.Rotations, st.Checkpoints)
		if rs := db.Engine().RecoveryStats(); rs.Records > 0 {
			fmt.Printf("     recovered: %d records, %d pages written, %d files, torn-tail=%v\n",
				rs.Records, rs.PagesWritten, rs.FilesTouched, rs.TornTail)
		}
	default:
		fmt.Println("unknown meta command; try \\dam \\doc \\do \\dt \\d <table> \\page <rel> <n> \\scrub [table] \\wal \\activity \\timing \\q")
	}
	return false
}

// relPath resolves the \page argument to a page-file path: a table or
// index name is looked up in the system catalog (on-disk databases
// only), anything containing a path separator or an existing file is
// taken literally — which is what lets the inspector read a *closed*
// database directory's files without an engine over them.
func relPath(db *repro.DB, dir, rel string) (string, error) {
	if strings.ContainsRune(rel, os.PathSeparator) {
		return rel, nil
	}
	if _, err := os.Stat(rel); err == nil {
		return rel, nil
	}
	cat := db.Engine().Catalog()
	if te, ok := cat.GetTable(rel); ok {
		if dir == "" {
			return "", fmt.Errorf("\\page needs an on-disk database (start with -dir), or pass a file path")
		}
		return filepath.Join(dir, te.File), nil
	}
	for _, ie := range cat.Indexes() {
		if strings.EqualFold(ie.Name, rel) {
			if dir == "" {
				return "", fmt.Errorf("\\page needs an on-disk database (start with -dir), or pass a file path")
			}
			return filepath.Join(dir, ie.File), nil
		}
	}
	return "", fmt.Errorf("no table, index, or file %q", rel)
}

// describe prints one table's schema and indexes as recorded in the
// persistent system catalog — the psql \d analogue.
func describe(db *repro.DB, name string) {
	cat := db.Engine().Catalog()
	te, ok := cat.GetTable(name)
	if !ok {
		fmt.Printf("no table %q in the system catalog\n", name)
		return
	}
	rows := int64(0)
	if t, err := db.Engine().Table(name); err == nil {
		rows = t.RowCount()
	}
	fmt.Printf("Table %q  (oid=%d, file=%s, rows=%d)\n", te.Name, te.OID, te.File, rows)
	fmt.Println("  Column | Type")
	for _, c := range te.Cols {
		fmt.Printf("  %-6s | %v\n", c.Name, c.Type)
	}
	indexes := cat.IndexesOf(te.OID)
	if len(indexes) > 0 {
		fmt.Println("Indexes:")
		for _, ix := range indexes {
			col := "?"
			if ix.Column >= 0 && ix.Column < len(te.Cols) {
				col = te.Cols[ix.Column].Name
			}
			validity := ""
			if !ix.Valid {
				validity = "  INVALID (crash-interrupted build)"
			}
			fmt.Printf("  %s ON %s USING %s (%s %s)  oid=%d file=%s%s\n",
				ix.Name, te.Name, ix.Method, col, ix.OpClass, ix.OID, ix.File, validity)
		}
	}
	st, ok := cat.GetStats(te.OID)
	if !ok {
		fmt.Println("Statistics: none persisted (run ANALYZE)")
		return
	}
	fmt.Printf("Statistics (persisted): rows=%d sampled=%d\n", st.Rows, st.SampleRows)
	for i, cs := range st.Cols {
		if i >= len(te.Cols) {
			break
		}
		line := fmt.Sprintf("  %-6s ndistinct=%d nullfrac=%.3f mcvs=%d histogram=%d",
			te.Cols[i].Name, cs.NDistinct, cs.NullFrac, len(cs.MCVals), len(cs.Histogram))
		if cs.HasRange {
			line += fmt.Sprintf(" min=%s max=%s", cs.Min, cs.Max)
		}
		fmt.Println(line)
	}
}
