// Command spgist-bench regenerates the paper's evaluation: every figure
// (6-17) and Table 7, at laptop scale.
//
// Usage:
//
//	spgist-bench -exp all                 # everything, text output
//	spgist-bench -exp fig13               # one figure (its group runs)
//	spgist-bench -exp strings -scale 10   # 10x larger datasets
//	spgist-bench -exp all -md             # markdown (EXPERIMENTS.md body)
//	spgist-bench -exp latency -out BENCH_7.json  # latency percentiles
//
// Dataset sizes default to roughly 1/100 of the paper's; -scale 100
// reproduces the original sizes given time and memory. All figure axes
// are ratios or structural quantities, so the shape of each curve is the
// reproduction target, not absolute milliseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: all, table7, strings, points, segments, suffix, nn, ablation, or fig6..fig17")
		scale   = flag.Float64("scale", 1, "dataset size multiplier (100 = paper scale)")
		seed    = flag.Int64("seed", 42, "workload seed")
		queries = flag.Int("queries", 200, "probes per measurement")
		md      = flag.Bool("md", false, "emit markdown instead of text tables")
		outPath = flag.String("out", "", "also write the latency-percentile report (BENCH_N.json shape) to this path")
		bench6  = flag.String("bench6", "", "deprecated alias for -out")
	)
	flag.Parse()
	if *outPath == "" {
		*outPath = *bench6
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Queries = *queries

	var exps []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		exps = bench.All()
	} else {
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	var out strings.Builder
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Title)
		var figs []bench.Figure
		if (e.ID == "latency" || e.ID == "coldcache") && *outPath != "" {
			// The report variant yields the same figures plus the raw
			// rows for the BENCH_N.json artifact, in a single run.
			var report *bench.LatencyReport
			var rfigs []bench.Figure
			if e.ID == "latency" {
				report, rfigs = bench.RunLatencyReport(cfg)
			} else {
				report, rfigs = bench.RunColdCacheReport(cfg)
			}
			figs = rfigs
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
		} else {
			figs = e.Run(cfg)
		}
		for _, fig := range figs {
			if *md {
				fig.Markdown(&out)
			} else {
				fig.Render(&out)
			}
		}
	}
	fmt.Print(out.String())
}
