// Package am adapts the concrete index structures (SP-GiST instantiations,
// B+-tree, R-tree) to one uniform access-method interface the executor
// dispatches through — the role of PostgreSQL's interface routines
// (amgettuple, aminsert, ambuild, ...) that the paper registers in pg_am.
//
// Index scans may be lossy (the R-tree indexes segment MBRs, the B+-tree
// answers '?=' from a literal prefix); the executor rechecks the operator
// against the heap tuple for every candidate, as PostgreSQL does for
// lossy index hits, so correctness never depends on index precision.
package am

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/kdtree"
	"repro/internal/pmr"
	"repro/internal/pquad"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/suffix"
	"repro/internal/trie"
)

// NNIter yields nearest-neighbor candidates in increasing distance.
type NNIter func() (rid heap.RID, dist float64, ok bool)

// Index is the uniform access-method interface.
type Index interface {
	// OpClass returns the operator class the index was created with.
	OpClass() *catalog.OperatorClass
	// Insert adds the key of one row.
	Insert(key catalog.Datum, rid heap.RID) error
	// Delete removes the key of one row.
	Delete(key catalog.Datum, rid heap.RID) (int, error)
	// Scan drives an index scan for `key op arg`, emitting candidate
	// RIDs (possibly lossy).
	Scan(op string, arg catalog.Datum, emit func(heap.RID) bool) error
	// NNScan starts an incremental nearest-neighbor scan, or errors when
	// the class has no ordering operator.
	NNScan(arg catalog.Datum) (NNIter, error)
	// Count returns the number of indexed rows.
	Count() int64
	// NumPages returns the index size in pages.
	NumPages() uint32
	// SizeBytes returns the index size in bytes.
	SizeBytes() int64
	// SaveMeta persists the index's in-memory metadata (root, count)
	// into its metadata page without flushing data pages. Called after
	// every mutating statement when write-ahead logging is on, so the
	// metadata is redone from the log after a crash.
	SaveMeta() error
	// Flush persists the index.
	Flush() error
	// StartPageTrace begins counting the distinct pages read-only
	// operations touch (EXPLAIN ANALYZE, the benchmark harness).
	StartPageTrace()
	// PageTraceCount reports the distinct pages touched since
	// StartPageTrace and stops tracing (0 when tracing never started).
	PageTraceCount() int
}

// BatchInserter is the optional grouped-maintenance interface: an index
// that implements it absorbs a multi-row statement's keys as one
// operation (sorting them so descents cluster, amortizing node decodes
// and page pins) instead of one fully independent insert per row.
type BatchInserter interface {
	InsertBatch(keys []catalog.Datum, rids []heap.RID) error
}

// InsertBatch feeds every (tups[i][column], rids[i]) pair into idx,
// through its BatchInserter fast path when it has one and row by row
// otherwise. The executor's multi-row INSERT maintains each index
// through this.
func InsertBatch(idx Index, column int, tups []catalog.Tuple, rids []heap.RID) error {
	if bi, ok := idx.(BatchInserter); ok {
		keys := make([]catalog.Datum, len(tups))
		for i, tup := range tups {
			keys[i] = tup[column]
		}
		return bi.InsertBatch(keys, rids)
	}
	for i, tup := range tups {
		if err := idx.Insert(tup[column], rids[i]); err != nil {
			return err
		}
	}
	return nil
}

// New creates (or reopens) an index of the given operator class over the
// supplied buffer pool.
func New(ocName string, bp *storage.BufferPool, create bool) (Index, error) {
	oc, ok := catalog.LookupOpClass(ocName)
	if !ok {
		return nil, fmt.Errorf("am: unknown operator class %q", ocName)
	}
	switch oc.Name {
	case "spgist_trie":
		return newSPGiST(oc, trie.New(), bp, create)
	case "spgist_suffix":
		t, err := openTree(suffix.New(), bp, create)
		if err != nil {
			return nil, err
		}
		return &suffixIndex{spgistIndex{oc: oc, tree: t}}, nil
	case "spgist_kdtree":
		return newSPGiST(oc, kdtree.New(), bp, create)
	case "spgist_pquadtree":
		return newSPGiST(oc, pquad.New(), bp, create)
	case "spgist_pmr":
		return newSPGiST(oc, pmr.New(), bp, create)
	case "btree_text":
		var t *btree.Tree
		var err error
		if create {
			t, err = btree.Create(bp)
		} else {
			t, err = btree.Open(bp)
		}
		if err != nil {
			return nil, err
		}
		return &btreeIndex{oc: oc, tree: t}, nil
	case "rtree_point", "rtree_segment":
		var t *rtree.Tree
		var err error
		if create {
			t, err = rtree.Create(bp)
		} else {
			t, err = rtree.Open(bp)
		}
		if err != nil {
			return nil, err
		}
		return &rtreeIndex{oc: oc, tree: t, segments: oc.Name == "rtree_segment"}, nil
	default:
		return nil, fmt.Errorf("am: operator class %q has no index implementation", oc.Name)
	}
}

func openTree(oc core.OpClass, bp *storage.BufferPool, create bool) (*core.Tree, error) {
	if create {
		return core.Create(bp, oc)
	}
	return core.Open(bp, oc)
}

func newSPGiST(oc *catalog.OperatorClass, c core.OpClass, bp *storage.BufferPool, create bool) (Index, error) {
	t, err := openTree(c, bp, create)
	if err != nil {
		return nil, err
	}
	return &spgistIndex{oc: oc, tree: t}, nil
}

// datumToValue converts a key datum to the opclass's core.Value form.
func datumToValue(d catalog.Datum) (core.Value, error) {
	switch d.Typ {
	case catalog.Text:
		return d.S, nil
	case catalog.Point:
		return d.P, nil
	case catalog.Box:
		return d.B, nil
	case catalog.Segment:
		return d.G, nil
	default:
		return nil, fmt.Errorf("am: type %v not indexable", d.Typ)
	}
}

// spgistIndex adapts a core.Tree.
type spgistIndex struct {
	oc   *catalog.OperatorClass
	tree *core.Tree
}

func (x *spgistIndex) OpClass() *catalog.OperatorClass { return x.oc }
func (x *spgistIndex) Count() int64                    { return x.tree.Count() }
func (x *spgistIndex) NumPages() uint32                { return x.tree.NumPages() }
func (x *spgistIndex) SizeBytes() int64                { return x.tree.SizeBytes() }
func (x *spgistIndex) SaveMeta() error                 { return x.tree.SaveMeta() }
func (x *spgistIndex) Flush() error                    { return x.tree.Flush() }
func (x *spgistIndex) StartPageTrace()                 { x.tree.StartPageTrace() }
func (x *spgistIndex) PageTraceCount() int             { return x.tree.PageTraceCount() }

// Tree exposes the underlying SP-GiST tree (statistics, ablations).
func (x *spgistIndex) Tree() *core.Tree { return x.tree }

func (x *spgistIndex) Insert(key catalog.Datum, rid heap.RID) error {
	v, err := datumToValue(key)
	if err != nil {
		return err
	}
	return x.tree.Insert(v, rid)
}

// InsertBatch groups a statement's inserts: core sorts the keys by
// encoded form and serves the clustered descents from its decoded-node
// cache.
func (x *spgistIndex) InsertBatch(keys []catalog.Datum, rids []heap.RID) error {
	vs := make([]core.Value, len(keys))
	for i, k := range keys {
		v, err := datumToValue(k)
		if err != nil {
			return err
		}
		vs[i] = v
	}
	return x.tree.InsertBatch(vs, rids)
}

func (x *spgistIndex) Delete(key catalog.Datum, rid heap.RID) (int, error) {
	v, err := datumToValue(key)
	if err != nil {
		return 0, err
	}
	return x.tree.Delete(v, rid)
}

func (x *spgistIndex) Scan(op string, arg catalog.Datum, emit func(heap.RID) bool) error {
	if !x.oc.SupportsOp(op) {
		return fmt.Errorf("am: operator class %s does not support %q", x.oc.Name, op)
	}
	v, err := datumToValue(arg)
	if err != nil {
		return err
	}
	return x.tree.Scan(&core.Query{Op: op, Arg: v}, func(_ core.Value, rid heap.RID) bool {
		return emit(rid)
	})
}

func (x *spgistIndex) NNScan(arg catalog.Datum) (NNIter, error) {
	if x.oc.NNOp == "" {
		return nil, fmt.Errorf("am: operator class %s has no NN operator", x.oc.Name)
	}
	v, err := datumToValue(arg)
	if err != nil {
		return nil, err
	}
	cur, err := x.tree.NNScan(v)
	if err != nil {
		return nil, err
	}
	return func() (heap.RID, float64, bool) {
		_, rid, d, ok := cur.Next()
		return rid, d, ok
	}, nil
}

// suffixIndex overrides row maintenance to index all suffixes.
type suffixIndex struct {
	spgistIndex
}

func (x *suffixIndex) Insert(key catalog.Datum, rid heap.RID) error {
	if key.Typ != catalog.Text {
		return fmt.Errorf("am: suffix index requires VARCHAR keys")
	}
	return suffix.InsertWord(x.tree, key.S, rid)
}

// InsertBatch must not inherit the plain SP-GiST batch path: each word
// expands to all its suffixes. Words are inserted in sorted order so at
// least their shared-prefix descents cluster.
func (x *suffixIndex) InsertBatch(keys []catalog.Datum, rids []heap.RID) error {
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]].S < keys[order[b]].S })
	for _, i := range order {
		if err := x.Insert(keys[i], rids[i]); err != nil {
			return err
		}
	}
	return nil
}

func (x *suffixIndex) Delete(key catalog.Datum, rid heap.RID) (int, error) {
	if key.Typ != catalog.Text {
		return 0, fmt.Errorf("am: suffix index requires VARCHAR keys")
	}
	if err := suffix.DeleteWord(x.tree, key.S, rid); err != nil {
		return 0, err
	}
	return 1, nil
}

// btreeIndex adapts the B+-tree baseline over text keys.
type btreeIndex struct {
	oc   *catalog.OperatorClass
	tree *btree.Tree
}

func (x *btreeIndex) OpClass() *catalog.OperatorClass { return x.oc }
func (x *btreeIndex) Count() int64                    { return x.tree.Count() }
func (x *btreeIndex) NumPages() uint32                { return x.tree.NumPages() }
func (x *btreeIndex) SizeBytes() int64                { return x.tree.SizeBytes() }
func (x *btreeIndex) SaveMeta() error                 { return x.tree.SaveMeta() }
func (x *btreeIndex) Flush() error                    { return x.tree.Flush() }
func (x *btreeIndex) StartPageTrace()                 { x.tree.StartPageTrace() }
func (x *btreeIndex) PageTraceCount() int             { return x.tree.PageTraceCount() }

// Tree exposes the underlying B+-tree (statistics).
func (x *btreeIndex) Tree() *btree.Tree { return x.tree }

func (x *btreeIndex) Insert(key catalog.Datum, rid heap.RID) error {
	if key.Typ != catalog.Text {
		return fmt.Errorf("am: btree_text requires VARCHAR keys")
	}
	return x.tree.Insert([]byte(key.S), rid)
}

// InsertBatch sorts the keys and hands them to the tree's leaf-run bulk
// path: one descent and one page pin per leaf cluster.
func (x *btreeIndex) InsertBatch(keys []catalog.Datum, rids []heap.RID) error {
	pairs := make([]btree.Pair, len(keys))
	for i, k := range keys {
		if k.Typ != catalog.Text {
			return fmt.Errorf("am: btree_text requires VARCHAR keys")
		}
		pairs[i] = btree.Pair{Key: []byte(k.S), RID: rids[i]}
	}
	return x.tree.InsertBatch(pairs)
}

func (x *btreeIndex) Delete(key catalog.Datum, rid heap.RID) (int, error) {
	return x.tree.Delete([]byte(key.S), rid)
}

func (x *btreeIndex) Scan(op string, arg catalog.Datum, emit func(heap.RID) bool) error {
	k := []byte(arg.S)
	pass := func(_ []byte, rid heap.RID) bool { return emit(rid) }
	switch op {
	case "=":
		return x.tree.Search(k, emit)
	case "#=":
		return x.tree.PrefixScan(k, pass)
	case "?=":
		// The paper's described behaviour: range-scan the literal prefix,
		// filter the pattern; a leading '?' forces a full scan.
		return x.tree.MatchScan(arg.S, trie.MatchPattern, pass)
	case "<", "<=":
		return x.tree.RangeScan(nil, k, pass) // lossy at the bound; executor rechecks
	case ">", ">=":
		return x.tree.RangeScan(k, nil, pass)
	default:
		return fmt.Errorf("am: btree_text does not support %q", op)
	}
}

func (x *btreeIndex) NNScan(catalog.Datum) (NNIter, error) {
	return nil, fmt.Errorf("am: btree has no NN operator")
}

// rtreeIndex adapts the R-tree baseline over points or segments.
type rtreeIndex struct {
	oc       *catalog.OperatorClass
	tree     *rtree.Tree
	segments bool
}

func (x *rtreeIndex) OpClass() *catalog.OperatorClass { return x.oc }
func (x *rtreeIndex) Count() int64                    { return x.tree.Count() }
func (x *rtreeIndex) NumPages() uint32                { return x.tree.NumPages() }
func (x *rtreeIndex) SizeBytes() int64                { return x.tree.SizeBytes() }
func (x *rtreeIndex) SaveMeta() error                 { return x.tree.SaveMeta() }
func (x *rtreeIndex) Flush() error                    { return x.tree.Flush() }
func (x *rtreeIndex) StartPageTrace()                 { x.tree.StartPageTrace() }
func (x *rtreeIndex) PageTraceCount() int             { return x.tree.PageTraceCount() }

// Tree exposes the underlying R-tree (statistics).
func (x *rtreeIndex) Tree() *rtree.Tree { return x.tree }

func (x *rtreeIndex) rect(key catalog.Datum) (geom.Box, error) {
	switch {
	case !x.segments && key.Typ == catalog.Point:
		return geom.Box{Min: key.P, Max: key.P}, nil
	case x.segments && key.Typ == catalog.Segment:
		return key.G.MBR(), nil
	default:
		return geom.Box{}, fmt.Errorf("am: %s cannot index %v keys", x.oc.Name, key.Typ)
	}
}

func (x *rtreeIndex) Insert(key catalog.Datum, rid heap.RID) error {
	r, err := x.rect(key)
	if err != nil {
		return err
	}
	return x.tree.Insert(r, rid)
}

func (x *rtreeIndex) Delete(key catalog.Datum, rid heap.RID) (int, error) {
	r, err := x.rect(key)
	if err != nil {
		return 0, err
	}
	return x.tree.Delete(r, rid)
}

func (x *rtreeIndex) Scan(op string, arg catalog.Datum, emit func(heap.RID) bool) error {
	pass := func(_ geom.Box, rid heap.RID) bool { return emit(rid) }
	switch {
	case op == "@" && !x.segments:
		return x.tree.SearchPoint(arg.P, emit)
	case op == "^" && !x.segments:
		return x.tree.SearchContained(arg.B, pass)
	case op == "=" && x.segments:
		// Lossy: all segments sharing the MBR; the executor rechecks.
		return x.tree.Search(arg.G.MBR(), pass)
	case op == "&&" && x.segments:
		// Lossy: MBR overlap; the executor rechecks true intersection.
		return x.tree.Search(arg.B, pass)
	default:
		return fmt.Errorf("am: %s does not support %q", x.oc.Name, op)
	}
}

func (x *rtreeIndex) NNScan(catalog.Datum) (NNIter, error) {
	return nil, fmt.Errorf("am: rtree has no NN operator")
}
