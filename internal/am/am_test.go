package am

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/storage"
)

func pool() *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMem(8192), 256)
}

func rid(i int) heap.RID { return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)} }

func TestNewRejectsUnknownOpClass(t *testing.T) {
	if _, err := New("nope", pool(), true); err == nil {
		t.Fatal("unknown opclass accepted")
	}
}

func TestEveryOpClassConstructs(t *testing.T) {
	for _, name := range []string{
		"spgist_trie", "spgist_suffix", "spgist_kdtree",
		"spgist_pquadtree", "spgist_pmr", "btree_text",
		"rtree_point", "rtree_segment",
	} {
		idx, err := New(name, pool(), true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if idx.OpClass().Name != name {
			t.Fatalf("%s reports opclass %s", name, idx.OpClass().Name)
		}
		if idx.Count() != 0 || idx.NumPages() == 0 {
			t.Fatalf("%s: fresh index count=%d pages=%d", name, idx.Count(), idx.NumPages())
		}
	}
}

// Every (opclass, operator) pair must agree with a brute-force filter
// through the uniform AM interface.
func TestScanAgreementAcrossOpClasses(t *testing.T) {
	words := datagen.Words(2000, 1)
	pts := datagen.Points(2000, 2, geom.MakeBox(0, 0, 100, 100))
	segs := datagen.Segments(1000, 3, geom.MakeBox(0, 0, 100, 100), 8)

	count := func(idx Index, op string, arg catalog.Datum) int {
		n := 0
		if err := idx.Scan(op, arg, func(heap.RID) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Text classes.
	for _, name := range []string{"spgist_trie", "btree_text"} {
		idx, err := New(name, pool(), true)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range words {
			if err := idx.Insert(catalog.NewText(w), rid(i)); err != nil {
				t.Fatal(err)
			}
		}
		w := words[10]
		wantEq := 0
		for _, x := range words {
			if x == w {
				wantEq++
			}
		}
		if got := count(idx, "=", catalog.NewText(w)); got != wantEq {
			t.Fatalf("%s =: got %d want %d", name, got, wantEq)
		}
		wantPfx := 0
		for _, x := range words {
			if strings.HasPrefix(x, w[:1]) {
				wantPfx++
			}
		}
		if got := count(idx, "#=", catalog.NewText(w[:1])); got != wantPfx {
			t.Fatalf("%s #=: got %d want %d", name, got, wantPfx)
		}
	}

	// Point classes (rtree_point's scans are exact for points).
	for _, name := range []string{"spgist_kdtree", "spgist_pquadtree", "rtree_point"} {
		idx, err := New(name, pool(), true)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if err := idx.Insert(catalog.NewPoint(p), rid(i)); err != nil {
				t.Fatal(err)
			}
		}
		box := geom.MakeBox(20, 20, 40, 40)
		want := 0
		for _, p := range pts {
			if box.Contains(p) {
				want++
			}
		}
		if got := count(idx, "^", catalog.NewBox(box)); got != want {
			t.Fatalf("%s ^: got %d want %d", name, got, want)
		}
		if got := count(idx, "@", catalog.NewPoint(pts[5])); got < 1 {
			t.Fatalf("%s @: point lost", name)
		}
	}

	// Segment classes: PMR is exact; the R-tree over MBRs is lossy, so
	// its candidate set must be a superset.
	pmrIdx, _ := New("spgist_pmr", pool(), true)
	rtIdx, _ := New("rtree_segment", pool(), true)
	for i, s := range segs {
		pmrIdx.Insert(catalog.NewSegment(s), rid(i))
		rtIdx.Insert(catalog.NewSegment(s), rid(i))
	}
	win := geom.MakeBox(10, 10, 30, 30)
	want := 0
	for _, s := range segs {
		if s.IntersectsBox(win) {
			want++
		}
	}
	if got := count(pmrIdx, "&&", catalog.NewBox(win)); got != want {
		t.Fatalf("pmr &&: got %d want %d", got, want)
	}
	if got := count(rtIdx, "&&", catalog.NewBox(win)); got < want {
		t.Fatalf("rtree &&: lossy candidates %d below true %d", got, want)
	}
}

func TestSuffixIndexInsertsAllSuffixes(t *testing.T) {
	idx, err := New("spgist_suffix", pool(), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(catalog.NewText("hello"), rid(0)); err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 5 {
		t.Fatalf("suffix count = %d, want 5", idx.Count())
	}
	n := 0
	idx.Scan("@=", catalog.NewText("ell"), func(heap.RID) bool { n++; return true })
	if n != 1 {
		t.Fatalf("substring found %d rows, want 1", n)
	}
	if _, err := idx.Delete(catalog.NewText("hello"), rid(0)); err != nil {
		t.Fatal(err)
	}
	n = 0
	idx.Scan("@=", catalog.NewText("ell"), func(heap.RID) bool { n++; return true })
	if n != 0 {
		t.Fatal("substring survives delete")
	}
}

func TestNNThroughAMInterface(t *testing.T) {
	idx, err := New("spgist_kdtree", pool(), true)
	if err != nil {
		t.Fatal(err)
	}
	pts := datagen.Points(500, 4, geom.MakeBox(0, 0, 100, 100))
	for i, p := range pts {
		idx.Insert(catalog.NewPoint(p), rid(i))
	}
	iter, err := idx.NNScan(catalog.NewPoint(geom.Point{X: 50, Y: 50}))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i < 20; i++ {
		_, d, ok := iter()
		if !ok {
			t.Fatalf("iterator exhausted at %d", i)
		}
		if d < prev {
			t.Fatalf("NN order violated: %g after %g", d, prev)
		}
		prev = d
	}
	// The B+-tree has no ordering operator.
	bt, _ := New("btree_text", pool(), true)
	if _, err := bt.NNScan(catalog.NewText("x")); err == nil {
		t.Fatal("btree NNScan should fail")
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	bt, _ := New("btree_text", pool(), true)
	if err := bt.Insert(catalog.NewInt(5), rid(0)); err == nil {
		t.Error("btree accepted INT key")
	}
	rt, _ := New("rtree_point", pool(), true)
	if err := rt.Insert(catalog.NewSegment(geom.Segment{}), rid(0)); err == nil {
		t.Error("rtree_point accepted SEGMENT key")
	}
	kd, _ := New("spgist_kdtree", pool(), true)
	if err := kd.Scan("?=", catalog.NewText("x"), func(heap.RID) bool { return true }); err == nil {
		t.Error("kdtree accepted ?= scan")
	}
}

func TestReopenExistingIndexFile(t *testing.T) {
	bp := pool()
	idx, err := New("spgist_trie", bp, true)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		w := datagen.Words(1, r.Int63())[0]
		idx.Insert(catalog.NewText(w), rid(i))
	}
	if err := idx.Flush(); err != nil {
		t.Fatal(err)
	}
	idx2, err := New("spgist_trie", bp, false)
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Count() != 500 {
		t.Fatalf("reopened count = %d", idx2.Count())
	}
}
