// Package btree implements a disk-based B+-tree over byte-string keys —
// the baseline PostgreSQL access method the paper compares the SP-GiST
// trie against (Figures 6–12).
//
// One tree node occupies one page. Leaves hold sorted (key, RID) pairs
// and are chained left-to-right, which is what makes prefix (range) scans
// cheap — the very advantage Figure 6 reports for the B+-tree over the
// trie on prefix queries. Wildcard ("regular expression") search uses
// only the longest literal prefix before the first wildcard and filters
// the rest, reproducing the B+-tree behaviour the paper describes: a
// pattern starting with '?' degenerates to a full scan.
//
// Duplicate keys are supported; deletion is by (key, RID) and leaves are
// not rebalanced (like the experiments in the paper, which only insert).
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/heap"
	"repro/internal/storage"
)

// Meta page (page 0) layout.
const (
	magic      = 0x42545245 // "BTRE"
	mMagicOf   = 0
	mRootOf    = 4
	mHeightOf  = 8
	mCountOf   = 12
	metaOffEnd = 20
)

// Node page layout:
//
//	[kind u8][nkeys u16][next u32 (leaf) | child0 u32 (inner)] entries...
//	leaf entry:  [klen u16][key][rid 6]
//	inner entry: [klen u16][key][child u32]
const (
	kindLeaf  = 1
	kindInner = 2
	hdrSize   = 7
)

type entry struct {
	key   []byte
	rid   heap.RID       // leaf
	child storage.PageID // inner: child right of key
}

type node struct {
	leaf    bool
	next    storage.PageID // leaf: right sibling
	child0  storage.PageID // inner: leftmost child
	entries []entry
}

// Tree is one disk-based B+-tree index. Writers must be externally
// serialized and excluded from readers; readers may run concurrently
// with each other (the executor's shared/exclusive statement lock
// provides this discipline).
type Tree struct {
	bp     *storage.BufferPool
	root   storage.PageID
	height int
	count  int64

	// trace, when non-nil, records distinct pages touched by read paths.
	trace atomic.Pointer[storage.PageTrace]

	// cache holds decoded nodes for read-only paths, invalidated on
	// writes — the analogue of PostgreSQL binary-searching directly in
	// buffer pages instead of materializing tuples per visit. Cached
	// nodes are immutable once published, so concurrent readers share
	// them freely.
	cache *storage.NodeCache[storage.PageID, *node]
}

// Create initializes a new empty B+-tree in an empty page file.
func Create(bp *storage.BufferPool) (*Tree, error) {
	if bp.DM().NumPages() != 0 {
		return nil, fmt.Errorf("btree: create on non-empty file")
	}
	meta, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(meta.Data[mMagicOf:], magic)
	bp.Unpin(meta, true)
	t := &Tree{bp: bp, root: storage.InvalidPageID, cache: storage.NewNodeCache[storage.PageID, *node](maxCachedNodes)}
	return t, t.saveMeta()
}

// Open attaches to an existing B+-tree file.
func Open(bp *storage.BufferPool) (*Tree, error) {
	meta, err := bp.Fetch(0)
	if err != nil {
		return nil, err
	}
	defer bp.Unpin(meta, false)
	if binary.LittleEndian.Uint32(meta.Data[mMagicOf:]) != magic {
		return nil, fmt.Errorf("btree: bad magic")
	}
	return &Tree{
		bp:     bp,
		root:   storage.PageID(binary.LittleEndian.Uint32(meta.Data[mRootOf:])),
		height: int(binary.LittleEndian.Uint32(meta.Data[mHeightOf:])),
		count:  int64(binary.LittleEndian.Uint64(meta.Data[mCountOf:])),
		cache:  storage.NewNodeCache[storage.PageID, *node](maxCachedNodes),
	}, nil
}

func (t *Tree) saveMeta() error {
	meta, err := t.bp.Fetch(0)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(meta.Data[mRootOf:], uint32(t.root))
	binary.LittleEndian.PutUint32(meta.Data[mHeightOf:], uint32(t.height))
	binary.LittleEndian.PutUint64(meta.Data[mCountOf:], uint64(t.count))
	t.bp.Unpin(meta, true)
	return nil
}

// SaveMeta persists the in-memory metadata (root, height, count) into
// the metadata page without flushing data pages; with a WAL attached
// the dirty meta page is logged and recoverable.
func (t *Tree) SaveMeta() error { return t.saveMeta() }

// Flush persists metadata and dirty pages.
func (t *Tree) Flush() error {
	if err := t.saveMeta(); err != nil {
		return err
	}
	return t.bp.FlushAll()
}

// Pool returns the underlying buffer pool.
func (t *Tree) Pool() *storage.BufferPool { return t.bp }

// Count returns the number of stored (key, RID) pairs.
func (t *Tree) Count() int64 { return t.count }

// Height returns the number of levels (nodes == pages on a root-to-leaf
// path); 0 for an empty tree.
func (t *Tree) Height() int { return t.height }

// NumPages returns the number of pages, including metadata.
func (t *Tree) NumPages() uint32 { return t.bp.DM().NumPages() }

// SizeBytes returns the on-disk size of the index.
func (t *Tree) SizeBytes() int64 {
	return int64(t.NumPages()) * int64(t.bp.DM().PageSize())
}

func (n *node) encodedSize() int {
	sz := hdrSize
	for _, e := range n.entries {
		sz += 2 + len(e.key)
		if n.leaf {
			sz += heap.RIDSize
		} else {
			sz += 4
		}
	}
	return sz
}

func (n *node) encode(buf []byte) {
	if n.leaf {
		buf[0] = kindLeaf
		binary.LittleEndian.PutUint32(buf[3:], uint32(n.next))
	} else {
		buf[0] = kindInner
		binary.LittleEndian.PutUint32(buf[3:], uint32(n.child0))
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.entries)))
	off := hdrSize
	for _, e := range n.entries {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(e.key)))
		off += 2
		copy(buf[off:], e.key)
		off += len(e.key)
		if n.leaf {
			rb := e.rid.Bytes()
			copy(buf[off:], rb[:])
			off += heap.RIDSize
		} else {
			binary.LittleEndian.PutUint32(buf[off:], uint32(e.child))
			off += 4
		}
	}
}

func decode(buf []byte) (*node, error) {
	n := &node{}
	switch buf[0] {
	case kindLeaf:
		n.leaf = true
		n.next = storage.PageID(binary.LittleEndian.Uint32(buf[3:]))
	case kindInner:
		n.child0 = storage.PageID(binary.LittleEndian.Uint32(buf[3:]))
	default:
		return nil, fmt.Errorf("btree: unknown node kind %d", buf[0])
	}
	cnt := int(binary.LittleEndian.Uint16(buf[1:]))
	n.entries = make([]entry, 0, cnt)
	off := hdrSize
	for i := 0; i < cnt; i++ {
		kl := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		key := make([]byte, kl)
		copy(key, buf[off:off+kl])
		off += kl
		e := entry{key: key}
		if n.leaf {
			e.rid = heap.RIDFromBytes(buf[off:])
			off += heap.RIDSize
		} else {
			e.child = storage.PageID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		n.entries = append(n.entries, e)
	}
	return n, nil
}

func (t *Tree) readNode(pid storage.PageID) (*node, error) {
	p, err := t.bp.Fetch(pid)
	if err != nil {
		return nil, err
	}
	defer t.bp.Unpin(p, false)
	return decode(p.Data)
}

// StartPageTrace begins counting the distinct pages touched by read-only
// operations (the page reads a cold execution would issue).
func (t *Tree) StartPageTrace() {
	t.trace.Store(storage.NewPageTrace())
}

// PageTraceCount reports the distinct pages touched since StartPageTrace
// and stops tracing.
func (t *Tree) PageTraceCount() int {
	tr := t.trace.Swap(nil)
	if tr == nil {
		return 0
	}
	return tr.Count()
}

// maxCachedNodes bounds the decoded-node cache.
const maxCachedNodes = 1 << 16

// invalidate drops a node from the decoded-node cache.
func (t *Tree) invalidate(pid storage.PageID) {
	t.cache.Drop(pid)
}

// readNodeRO serves read-only visits from the decoded-node cache. The
// result must not be mutated: it may be shared with concurrent readers.
func (t *Tree) readNodeRO(pid storage.PageID) (*node, error) {
	if tr := t.trace.Load(); tr != nil {
		tr.Visit(pid)
	}
	if n, ok := t.cache.Get(pid); ok {
		return n, nil
	}
	n, err := t.readNode(pid)
	if err != nil {
		return nil, err
	}
	t.cache.Put(pid, n)
	return n, nil
}

func (t *Tree) writeNode(pid storage.PageID, n *node) error {
	t.invalidate(pid)
	if n.encodedSize() > t.bp.DM().PageSize() {
		return fmt.Errorf("btree: node of %d bytes exceeds page size", n.encodedSize())
	}
	p, err := t.bp.Fetch(pid)
	if err != nil {
		return err
	}
	n.encode(p.Data)
	t.bp.Unpin(p, true)
	return nil
}

func (t *Tree) allocNode(n *node) (storage.PageID, error) {
	p, err := t.bp.NewPage()
	if err != nil {
		return storage.InvalidPageID, err
	}
	n.encode(p.Data)
	t.bp.Unpin(p, true)
	return p.ID, nil
}

// lowerBound returns the first entry index with key >= k.
func lowerBound(entries []entry, k []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first entry index with key > k.
func upperBound(entries []entry, k []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the child page covering key k in inner node n, using
// upper-bound separators (keys equal to a separator live to its right),
// plus the child's entry index (-1 for the leftmost child). The index is
// what lets a split insert its new sibling pointer at the right position
// even among runs of equal separators.
func childFor(n *node, k []byte) (storage.PageID, int) {
	i := upperBound(n.entries, k)
	if i == 0 {
		return n.child0, -1
	}
	return n.entries[i-1].child, i - 1
}

// childForLeftmost returns the child that can hold the FIRST occurrence
// of k (equal keys may straddle a separator after splits of duplicate
// runs).
func childForLeftmost(n *node, k []byte) storage.PageID {
	i := lowerBound(n.entries, k)
	if i == 0 {
		return n.child0
	}
	return n.entries[i-1].child
}

// Insert adds one (key, rid) pair.
func (t *Tree) Insert(key []byte, rid heap.RID) error {
	if len(key)+32 > t.bp.DM().PageSize()/4 {
		return fmt.Errorf("btree: key of %d bytes too large", len(key))
	}
	if t.root == storage.InvalidPageID {
		leaf := &node{leaf: true, next: storage.InvalidPageID,
			entries: []entry{{key: append([]byte(nil), key...), rid: rid}}}
		pid, err := t.allocNode(leaf)
		if err != nil {
			return err
		}
		t.root = pid
		t.height = 1
		t.count++
		return nil
	}
	// Fast path: splice the entry directly into the leaf page bytes, the
	// way PostgreSQL shifts item pointers in place. Only inserts that
	// would overflow the leaf fall back to the decode/split path.
	if ok, err := t.insertFast(key, rid); err != nil {
		return err
	} else if ok {
		t.count++
		return nil
	}
	sep, right, err := t.insertAt(t.root, key, rid)
	if err != nil {
		return err
	}
	if right != storage.InvalidPageID {
		// Root split: grow a new root.
		newRoot := &node{child0: t.root, entries: []entry{{key: sep, child: right}}}
		pid, err := t.allocNode(newRoot)
		if err != nil {
			return err
		}
		t.root = pid
		t.height++
	}
	t.count++
	return nil
}

// Pair is one (key, RID) input of InsertBatch.
type Pair struct {
	Key []byte
	RID heap.RID
}

// InsertBatch adds many pairs as one grouped operation. The pairs are
// sorted first, then inserted in key order with a leaf-run fast path:
// one descent pins the target leaf and splices every following key that
// provably belongs to the same leaf — strictly below the leaf's current
// last key, or anything at all on the rightmost leaf — without
// re-descending or re-pinning per row. Keys that fall outside the run
// (or overflow the leaf) fall back to the ordinary split path. For the
// common bulk-load shape (many keys per leaf) this is one descent and
// one pin per leaf cluster instead of one per row.
func (t *Tree) InsertBatch(pairs []Pair) error {
	for _, p := range pairs {
		if len(p.Key)+32 > t.bp.DM().PageSize()/4 {
			return fmt.Errorf("btree: key of %d bytes too large", len(p.Key))
		}
	}
	sorted := append([]Pair(nil), pairs...)
	sort.SliceStable(sorted, func(i, j int) bool { return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0 })
	i := 0
	for i < len(sorted) {
		if t.root == storage.InvalidPageID {
			if err := t.Insert(sorted[i].Key, sorted[i].RID); err != nil {
				return err
			}
			i++
			continue
		}
		n, err := t.spliceRun(sorted[i:])
		if err != nil {
			return err
		}
		if n == 0 {
			// The run's first key needs the split path; insert it alone
			// and resume the run from the next key.
			if err := t.Insert(sorted[i].Key, sorted[i].RID); err != nil {
				return err
			}
			n = 1
		}
		i += n
	}
	return nil
}

// spliceRun descends once to the leaf covering pairs[0].Key and splices
// as many consecutive (sorted) pairs into it as provably belong there
// and fit, returning how many were consumed (0 if the first key needs
// the split path).
func (t *Tree) spliceRun(pairs []Pair) (int, error) {
	pid := t.root
	for {
		n, err := t.readNodeRO(pid)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			break
		}
		pid, _ = childFor(n, pairs[0].Key)
	}
	p, err := t.bp.Fetch(pid)
	if err != nil {
		return 0, err
	}
	data := p.Data
	if data[0] != kindLeaf {
		t.bp.Unpin(p, false)
		return 0, fmt.Errorf("btree: descent ended on non-leaf page %d", pid)
	}
	rightmost := storage.PageID(binary.LittleEndian.Uint32(data[3:])) == storage.InvalidPageID
	done := 0
	for _, pr := range pairs {
		cnt := int(binary.LittleEndian.Uint16(data[1:]))
		// One pass over the entry bytes: find the upper-bound insertion
		// offset, the end of the used region, and the leaf's last key.
		off := hdrSize
		insOff := -1
		var lastOff, lastLen int
		for i := 0; i < cnt; i++ {
			kl := int(binary.LittleEndian.Uint16(data[off:]))
			if insOff < 0 && bytes.Compare(data[off+2:off+2+kl], pr.Key) > 0 {
				insOff = off
			}
			lastOff, lastLen = off+2, kl
			off += 2 + kl + heap.RIDSize
		}
		end := off
		if done > 0 && cnt > 0 && !rightmost {
			// Only the first key of the run is placed here by descent;
			// later keys belong to this leaf only when strictly below
			// its current last key (equal keys may belong to the right
			// sibling under upper-bound separators).
			if bytes.Compare(pr.Key, data[lastOff:lastOff+lastLen]) >= 0 {
				break
			}
		}
		if insOff < 0 {
			insOff = end
		}
		esz := 2 + len(pr.Key) + heap.RIDSize
		if end+esz > len(data) {
			break // leaf full: the caller re-enters through the split path
		}
		copy(data[insOff+esz:end+esz], data[insOff:end])
		binary.LittleEndian.PutUint16(data[insOff:], uint16(len(pr.Key)))
		copy(data[insOff+2:], pr.Key)
		rb := pr.RID.Bytes()
		copy(data[insOff+2+len(pr.Key):], rb[:])
		binary.LittleEndian.PutUint16(data[1:], uint16(cnt+1))
		done++
	}
	if done > 0 {
		t.invalidate(pid)
		t.count += int64(done)
		t.bp.Unpin(p, true)
	} else {
		t.bp.Unpin(p, false)
	}
	return done, nil
}

// insertFast descends read-only to the target leaf and splices the new
// entry into the page bytes in place. It reports false (without side
// effects) when the leaf would overflow and the split path must run.
func (t *Tree) insertFast(key []byte, rid heap.RID) (bool, error) {
	pid := t.root
	for {
		n, err := t.readNodeRO(pid)
		if err != nil {
			return false, err
		}
		if n.leaf {
			break
		}
		pid, _ = childFor(n, key)
	}
	p, err := t.bp.Fetch(pid)
	if err != nil {
		return false, err
	}
	data := p.Data
	if data[0] != kindLeaf {
		t.bp.Unpin(p, false)
		return false, fmt.Errorf("btree: descent ended on non-leaf page %d", pid)
	}
	cnt := int(binary.LittleEndian.Uint16(data[1:]))
	// One pass over the entry bytes: find the upper-bound insertion
	// offset and the end of the used region.
	off := hdrSize
	insOff := -1
	for i := 0; i < cnt; i++ {
		kl := int(binary.LittleEndian.Uint16(data[off:]))
		if insOff < 0 && bytes.Compare(data[off+2:off+2+kl], key) > 0 {
			insOff = off
		}
		off += 2 + kl + heap.RIDSize
	}
	end := off
	if insOff < 0 {
		insOff = end
	}
	esz := 2 + len(key) + heap.RIDSize
	if end+esz > len(data) {
		t.bp.Unpin(p, false)
		return false, nil // leaf full: take the split path
	}
	copy(data[insOff+esz:end+esz], data[insOff:end])
	binary.LittleEndian.PutUint16(data[insOff:], uint16(len(key)))
	copy(data[insOff+2:], key)
	rb := rid.Bytes()
	copy(data[insOff+2+len(key):], rb[:])
	binary.LittleEndian.PutUint16(data[1:], uint16(cnt+1))
	t.invalidate(pid)
	t.bp.Unpin(p, true)
	return true, nil
}

// insertAt descends recursively; on child split it returns the separator
// key and new right sibling for the caller to absorb.
func (t *Tree) insertAt(pid storage.PageID, key []byte, rid heap.RID) ([]byte, storage.PageID, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	if n.leaf {
		i := upperBound(n.entries, key)
		n.entries = append(n.entries, entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = entry{key: append([]byte(nil), key...), rid: rid}
		return t.writeSplit(pid, n)
	}
	child, ci := childFor(n, key)
	sep, right, err := t.insertAt(child, key, rid)
	if err != nil || right == storage.InvalidPageID {
		return nil, storage.InvalidPageID, err
	}
	// The new right sibling must sit directly after the child that split:
	// placing it merely by key would misorder subtrees inside a run of
	// equal separators and desynchronize them from the leaf chain.
	i := ci + 1
	n.entries = append(n.entries, entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = entry{key: sep, child: right}
	return t.writeSplit(pid, n)
}

// writeSplit stores n at pid, splitting it in half first when it no
// longer fits one page.
func (t *Tree) writeSplit(pid storage.PageID, n *node) ([]byte, storage.PageID, error) {
	if n.encodedSize() <= t.bp.DM().PageSize() {
		return nil, storage.InvalidPageID, t.writeNode(pid, n)
	}
	mid := len(n.entries) / 2
	var sep []byte
	var rightN *node
	if n.leaf {
		sep = append([]byte(nil), n.entries[mid].key...)
		rightN = &node{leaf: true, next: n.next, entries: append([]entry(nil), n.entries[mid:]...)}
	} else {
		// The middle key moves up; its child becomes the right node's
		// leftmost child.
		sep = append([]byte(nil), n.entries[mid].key...)
		rightN = &node{child0: n.entries[mid].child, entries: append([]entry(nil), n.entries[mid+1:]...)}
	}
	rightPID, err := t.allocNode(rightN)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	n.entries = n.entries[:mid]
	if n.leaf {
		n.next = rightPID
	}
	if err := t.writeNode(pid, n); err != nil {
		return nil, storage.InvalidPageID, err
	}
	return sep, rightPID, nil
}

// descendLeftmost finds the leaf where the first occurrence of key could
// live.
func (t *Tree) descendLeftmost(key []byte) (storage.PageID, error) {
	pid := t.root
	for {
		n, err := t.readNodeRO(pid)
		if err != nil {
			return storage.InvalidPageID, err
		}
		if n.leaf {
			return pid, nil
		}
		pid = childForLeftmost(n, key)
	}
}

// Search calls emit for every pair with key exactly equal to key.
func (t *Tree) Search(key []byte, emit func(rid heap.RID) bool) error {
	return t.RangeScan(key, key, func(_ []byte, rid heap.RID) bool { return emit(rid) })
}

// RangeScan calls emit for every pair with lo <= key <= hi in key order.
// A nil hi means "to the end"; a nil lo starts at the smallest key.
func (t *Tree) RangeScan(lo, hi []byte, emit func(key []byte, rid heap.RID) bool) error {
	if t.root == storage.InvalidPageID {
		return nil
	}
	var pid storage.PageID
	var err error
	if lo == nil {
		pid = t.root
		for {
			n, err := t.readNodeRO(pid)
			if err != nil {
				return err
			}
			if n.leaf {
				break
			}
			pid = n.child0
		}
	} else if pid, err = t.descendLeftmost(lo); err != nil {
		return err
	}
	for pid != storage.InvalidPageID {
		n, err := t.readNodeRO(pid)
		if err != nil {
			return err
		}
		// Readahead along the leaf chain: ask the prefetcher for the next
		// leaf before processing this one, so a cold range scan overlaps
		// its key emission with the following page's disk read.
		if n.next != storage.InvalidPageID && t.bp.ReadaheadPages() > 0 {
			t.bp.Prefetch(n.next)
		}
		start := 0
		if lo != nil {
			start = lowerBound(n.entries, lo)
		}
		for _, e := range n.entries[start:] {
			if hi != nil && bytes.Compare(e.key, hi) > 0 {
				return nil
			}
			if !emit(e.key, e.rid) {
				return nil
			}
		}
		pid = n.next
	}
	return nil
}

// PrefixSuccessor returns the smallest byte string greater than every
// string with the given prefix, or nil when no such bound exists (prefix
// is empty or all 0xFF).
func PrefixSuccessor(prefix []byte) []byte {
	succ := append([]byte(nil), prefix...)
	for i := len(succ) - 1; i >= 0; i-- {
		if succ[i] < 0xFF {
			succ[i]++
			return succ[:i+1]
		}
	}
	return nil
}

// PrefixScan calls emit for every pair whose key starts with prefix.
func (t *Tree) PrefixScan(prefix []byte, emit func(key []byte, rid heap.RID) bool) error {
	succ := PrefixSuccessor(prefix)
	return t.RangeScan(prefix, nil, func(key []byte, rid heap.RID) bool {
		if succ != nil && bytes.Compare(key, succ) >= 0 {
			return false
		}
		return emit(key, rid)
	})
}

// MatchScan answers a wildcard pattern ('?' matches one character) the
// way the paper describes the B+-tree doing it: range-scan the longest
// literal prefix before the first wildcard and filter each key against
// the full pattern. A leading wildcard forces a full scan.
func (t *Tree) MatchScan(pattern string, match func(key string, pattern string) bool, emit func(key []byte, rid heap.RID) bool) error {
	lit := 0
	for lit < len(pattern) && pattern[lit] != '?' {
		lit++
	}
	prefix := []byte(pattern[:lit])
	var lo []byte
	if lit > 0 {
		lo = prefix
	}
	succ := PrefixSuccessor(prefix)
	return t.RangeScan(lo, nil, func(key []byte, rid heap.RID) bool {
		if lit > 0 && succ != nil && bytes.Compare(key, succ) >= 0 {
			return false
		}
		if match(string(key), pattern) {
			return emit(key, rid)
		}
		return true
	})
}

// Delete removes pairs with the given key; with a valid rid only the
// matching pair is removed. It returns the number removed. Leaves are not
// rebalanced.
func (t *Tree) Delete(key []byte, rid heap.RID) (int, error) {
	if t.root == storage.InvalidPageID {
		return 0, nil
	}
	pid, err := t.descendLeftmost(key)
	if err != nil {
		return 0, err
	}
	removed := 0
	for pid != storage.InvalidPageID {
		n, err := t.readNode(pid)
		if err != nil {
			return removed, err
		}
		kept := n.entries[:0]
		done := false
		for _, e := range n.entries {
			cmp := bytes.Compare(e.key, key)
			if cmp > 0 {
				done = true
			}
			if cmp == 0 && (!rid.Valid() || e.rid == rid) {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) != len(n.entries) {
			n.entries = kept
			if err := t.writeNode(pid, n); err != nil {
				return removed, err
			}
		}
		if done {
			break
		}
		pid = n.next
	}
	t.count -= int64(removed)
	return removed, nil
}
