package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/storage"
	"repro/internal/trie"
)

func newTree(t testing.TB, pageSize int) *Tree {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(pageSize), 128)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(i int) heap.RID { return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)} }

func randWord(r *rand.Rand) string {
	n := 1 + r.Intn(15)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func collect(t testing.TB, tr *Tree, key string) []heap.RID {
	t.Helper()
	var rids []heap.RID
	if err := tr.Search([]byte(key), func(r heap.RID) bool { rids = append(rids, r); return true }); err != nil {
		t.Fatal(err)
	}
	return rids
}

func TestInsertSearchSmallPages(t *testing.T) {
	// Small pages force deep trees and many splits.
	tr := newTree(t, 256)
	r := rand.New(rand.NewSource(1))
	words := map[string]int{}
	for i := 0; i < 3000; i++ {
		w := randWord(r)
		if err := tr.Insert([]byte(w), rid(i)); err != nil {
			t.Fatalf("insert %q: %v", w, err)
		}
		words[w]++
	}
	for w, n := range words {
		if got := len(collect(t, tr, w)); got != n {
			t.Fatalf("search %q: got %d, want %d", w, got, n)
		}
	}
	if got := len(collect(t, tr, "NOPE")); got != 0 {
		t.Fatalf("absent key found %d times", got)
	}
	if tr.Height() < 3 {
		t.Fatalf("expected deep tree with 256B pages, height=%d", tr.Height())
	}
}

func TestSortedOrderInvariant(t *testing.T) {
	tr := newTree(t, 512)
	r := rand.New(rand.NewSource(2))
	var words []string
	for i := 0; i < 2000; i++ {
		w := randWord(r)
		words = append(words, w)
		tr.Insert([]byte(w), rid(i))
	}
	sort.Strings(words)
	var got []string
	err := tr.RangeScan(nil, nil, func(key []byte, _ heap.RID) bool {
		got = append(got, string(key))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(words) {
		t.Fatalf("full scan saw %d, want %d", len(got), len(words))
	}
	for i := range got {
		if got[i] != words[i] {
			t.Fatalf("order violated at %d: %q vs %q", i, got[i], words[i])
		}
	}
}

func TestRangeScanAgainstBruteForce(t *testing.T) {
	tr := newTree(t, 512)
	r := rand.New(rand.NewSource(3))
	var words []string
	for i := 0; i < 2000; i++ {
		w := randWord(r)
		words = append(words, w)
		tr.Insert([]byte(w), rid(i))
	}
	for trial := 0; trial < 50; trial++ {
		lo := randWord(r)
		hi := randWord(r)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for _, w := range words {
			if w >= lo && w <= hi {
				want++
			}
		}
		got := 0
		err := tr.RangeScan([]byte(lo), []byte(hi), func(_ []byte, _ heap.RID) bool {
			got++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("range [%q,%q]: got %d, want %d", lo, hi, got, want)
		}
	}
}

func TestPrefixScanAgainstBruteForce(t *testing.T) {
	tr := newTree(t, 512)
	r := rand.New(rand.NewSource(4))
	var words []string
	for i := 0; i < 2000; i++ {
		w := randWord(r)
		words = append(words, w)
		tr.Insert([]byte(w), rid(i))
	}
	probe := func(p string) {
		want := 0
		for _, w := range words {
			if strings.HasPrefix(w, p) {
				want++
			}
		}
		got := 0
		if err := tr.PrefixScan([]byte(p), func(_ []byte, _ heap.RID) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prefix %q: got %d, want %d", p, got, want)
		}
	}
	for i := 0; i < 50; i++ {
		w := words[r.Intn(len(words))]
		probe(w[:1+r.Intn(len(w))])
	}
	probe("")
}

func TestMatchScanWildcard(t *testing.T) {
	tr := newTree(t, 512)
	r := rand.New(rand.NewSource(5))
	var words []string
	for i := 0; i < 2000; i++ {
		w := randWord(r)
		words = append(words, w)
		tr.Insert([]byte(w), rid(i))
	}
	probe := func(pat string) {
		want := 0
		for _, w := range words {
			if trie.MatchPattern(w, pat) {
				want++
			}
		}
		got := 0
		err := tr.MatchScan(pat, trie.MatchPattern, func(_ []byte, _ heap.RID) bool { got++; return true })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("match %q: got %d, want %d", pat, got, want)
		}
	}
	for i := 0; i < 50; i++ {
		w := words[r.Intn(len(words))]
		b := []byte(w)
		for j := range b {
			if r.Intn(3) == 0 {
				b[j] = '?'
			}
		}
		probe(string(b))
	}
	probe("???") // leading wildcard: full scan path
	probe("?bc?")
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   string
		want []byte
	}{
		{"abc", []byte("abd")},
		{"az", []byte("a{")}, // byte-wise: 'z'+1 = '{'
		{"", nil},
	}
	for _, c := range cases {
		got := PrefixSuccessor([]byte(c.in))
		if !bytes.Equal(got, c.want) && !(got == nil && c.want == nil) {
			t.Errorf("PrefixSuccessor(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := PrefixSuccessor([]byte{0xFF, 0xFF}); got != nil {
		t.Errorf("PrefixSuccessor(all-FF) = %q, want nil", got)
	}
	if got := PrefixSuccessor([]byte{'a', 0xFF}); !bytes.Equal(got, []byte{'b'}) {
		t.Errorf("PrefixSuccessor(a\\xff) = %q, want b", got)
	}
}

func TestDuplicatesAcrossSplits(t *testing.T) {
	tr := newTree(t, 256)
	// Enough duplicates to span several leaves.
	for i := 0; i < 500; i++ {
		if err := tr.Insert([]byte("dup"), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Surround them with other keys.
	for i := 0; i < 500; i++ {
		tr.Insert([]byte(fmt.Sprintf("a%03d", i)), rid(1000+i))
		tr.Insert([]byte(fmt.Sprintf("z%03d", i)), rid(2000+i))
	}
	if got := len(collect(t, tr, "dup")); got != 500 {
		t.Fatalf("duplicates: got %d, want 500", got)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 512)
	r := rand.New(rand.NewSource(6))
	var words []string
	for i := 0; i < 1000; i++ {
		w := randWord(r)
		words = append(words, w)
		tr.Insert([]byte(w), rid(i))
	}
	n, err := tr.Delete([]byte(words[0]), rid(0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delete removed %d, want 1", n)
	}
	for _, rd := range collect(t, tr, words[0]) {
		if rd == rid(0) {
			t.Fatal("deleted rid still found")
		}
	}
	if tr.Count() != 999 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "btree.dat")
	dm, err := storage.OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(dm, 64)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Insert([]byte(fmt.Sprintf("key%04d", i)), rid(i))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	bp.Close()

	dm2, _ := storage.OpenFile(path, 512)
	bp2 := storage.NewBufferPool(dm2, 64)
	tr2, err := Open(bp2)
	if err != nil {
		t.Fatal(err)
	}
	defer bp2.Close()
	if tr2.Count() != 500 {
		t.Fatalf("Count after reopen = %d", tr2.Count())
	}
	for i := 0; i < 500; i++ {
		if got := len(collect(t, tr2, fmt.Sprintf("key%04d", i))); got != 1 {
			t.Fatalf("key%04d found %d times after reopen", i, got)
		}
	}
}

func TestEarlyStopScan(t *testing.T) {
	tr := newTree(t, 512)
	for i := 0; i < 100; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%02d", i)), rid(i))
	}
	n := 0
	tr.RangeScan(nil, nil, func(_ []byte, _ heap.RID) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}
