package catalog

import (
	"sort"
	"strings"
)

// This file holds the planner-statistics shapes shared by the executor
// (which collects them via sampled ANALYZE), the persistent system
// catalog (which stores them), and the restrict procedures in
// operator.go (which consume them) — the mini pg_statistic.

// MaxMCVs bounds the most-common-value list per column.
const MaxMCVs = 10

// HistogramBuckets is the equi-depth histogram resolution per column.
const HistogramBuckets = 10

// MaxStatWidth excludes very wide values from the stored MCV list,
// histogram, and min/max (they would bloat the catalog record toward
// the page limit); such values still count toward ndistinct. The
// executor's ANALYZE enforces it and additionally shrinks a finished
// record that still exceeds one catalog page.
const MaxStatWidth = 256

// ColumnStats is the per-column statistics record ANALYZE computes —
// the shape of one pg_statistic row.
type ColumnStats struct {
	// NDistinct estimates the number of distinct values (0 = unknown).
	NDistinct int64
	// NullFrac is the fraction of NULL values. The mini engine has no
	// NULLs today, so it is always 0, but the restrict procedures
	// honor it so the format does not change when NULLs arrive.
	NullFrac float64
	// HasRange reports that Min and Max are set (ordered types only).
	HasRange bool
	Min, Max Datum
	// MCVals/MCFreqs are the most-common values with their frequency
	// among all rows (parallel slices, frequency-descending).
	MCVals  []Datum
	MCFreqs []float64
	// Histogram holds equi-depth bucket bounds over the non-MCV values
	// of ordered types: len(Histogram)-1 buckets of equal row mass.
	Histogram []Datum
}

// TableStats is what a restrict procedure may consult: the live row
// count, the queried column's statistics, and how stale they are.
type TableStats struct {
	Rows int64
	// StaleFrac is the fraction of the table churned (inserted +
	// deleted) since the statistics were collected, clamped to [0,1].
	// Restrict procedures blend their estimate toward the type default
	// by this weight, discounting stale statistics gracefully.
	StaleFrac float64
	ColumnStats
}

// mcvTotal sums the stored MCV frequencies.
func (st TableStats) mcvTotal() float64 {
	tot := 0.0
	for _, f := range st.MCFreqs {
		tot += f
	}
	return tot
}

// Ordered reports whether a type has a linear order the histogram and
// min/max statistics can describe.
func Ordered(t Type) bool {
	switch t {
	case Int, Float, Text:
		return true
	}
	return false
}

// Compare orders two datums of the same ordered type; ok is false for
// unordered or mismatched types.
func Compare(a, b Datum) (cmp int, ok bool) {
	if a.Typ != b.Typ {
		return 0, false
	}
	switch a.Typ {
	case Int:
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		}
		return 0, true
	case Float:
		switch {
		case a.F < b.F:
			return -1, true
		case a.F > b.F:
			return 1, true
		}
		return 0, true
	case Text:
		return strings.Compare(a.S, b.S), true
	}
	return 0, false
}

// blend discounts a statistics-based estimate toward the type default
// by the staleness weight.
func blend(est, def, staleFrac float64) float64 {
	w := staleFrac
	if w < 0 {
		w = 0
	} else if w > 1 {
		w = 1
	}
	return (1-w)*est + w*def
}

// clampSel bounds a selectivity to a sane open interval.
func clampSel(sel float64) float64 {
	if sel < 1e-7 {
		return 1e-7
	}
	if sel > 1 {
		return 1
	}
	return sel
}

// histogramFraction estimates P(col < arg) (or <= when orEq) among the
// values the histogram describes, interpolating inside the containing
// bucket: numerically for INT/FLOAT, mid-bucket for VARCHAR (the
// PostgreSQL convert_to_scalar fallback). ok is false without a usable
// histogram for arg's type.
func histogramFraction(hist []Datum, arg Datum, orEq bool) (float64, bool) {
	if len(hist) < 2 {
		return 0, false
	}
	if _, cmpOK := Compare(hist[0], arg); !cmpOK {
		return 0, false
	}
	lo := hist[0]
	hi := hist[len(hist)-1]
	if c, _ := Compare(arg, lo); c < 0 || (c == 0 && !orEq) {
		return 0, true
	}
	if c, _ := Compare(arg, hi); c > 0 || (c == 0 && orEq) {
		return 1, true
	}
	buckets := float64(len(hist) - 1)
	// Find the bucket [hist[i], hist[i+1]) containing arg.
	i := sort.Search(len(hist)-1, func(i int) bool {
		c, _ := Compare(hist[i+1], arg)
		return c > 0
	})
	if i >= len(hist)-1 {
		i = len(hist) - 2
	}
	frac := 0.5 // within-bucket position; mid-bucket unless numeric
	switch arg.Typ {
	case Int:
		if span := hist[i+1].I - hist[i].I; span > 0 {
			frac = float64(arg.I-hist[i].I) / float64(span)
		}
	case Float:
		if span := hist[i+1].F - hist[i].F; span > 0 {
			frac = (arg.F - hist[i].F) / span
		}
	}
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return (float64(i) + frac) / buckets, true
}

// rangeFraction is the min/max-only fallback of histogramFraction for
// numeric columns whose statistics carry no histogram.
func rangeFraction(st TableStats, arg Datum) (float64, bool) {
	if !st.HasRange {
		return 0, false
	}
	var pos, span float64
	switch arg.Typ {
	case Int:
		if arg.Typ != st.Min.Typ {
			return 0, false
		}
		pos, span = float64(arg.I-st.Min.I), float64(st.Max.I-st.Min.I)
	case Float:
		if arg.Typ != st.Min.Typ {
			return 0, false
		}
		pos, span = arg.F-st.Min.F, st.Max.F-st.Min.F
	default:
		return 0, false
	}
	if span <= 0 {
		return 0.5, true
	}
	if pos < 0 {
		return 0, true
	}
	if pos > span {
		return 1, true
	}
	return pos / span, true
}

// successor returns the smallest string greater than every string with
// the given prefix — the upper bound of the prefix range [s, succ(s)).
// ok is false when no such string exists (all-0xff prefixes).
func successor(s string) (string, bool) {
	b := []byte(s)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
