package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestTypeByName(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"VARCHAR", Text}, {"varchar", Text}, {"TEXT", Text},
		{"INT", Int}, {"integer", Int},
		{"FLOAT", Float}, {"POINT", Point}, {"BOX", Box}, {"SEGMENT", Segment},
	}
	for _, c := range cases {
		got, err := TypeByName(c.in)
		if err != nil || got != c.want {
			t.Errorf("TypeByName(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := TypeByName("NOPE"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestParseLiteral(t *testing.T) {
	d, err := ParseLiteral(Point, "(0,1)")
	if err != nil || !d.P.Eq(geom.Point{X: 0, Y: 1}) {
		t.Fatalf("point literal: %v %v", d, err)
	}
	d, err = ParseLiteral(Box, "(0,0,5,5)")
	if err != nil || d.B != geom.MakeBox(0, 0, 5, 5) {
		t.Fatalf("box literal: %v %v", d, err)
	}
	d, err = ParseLiteral(Segment, "(1,2,3,4)")
	if err != nil || !d.G.Eq(geom.Segment{A: geom.Point{X: 1, Y: 2}, B: geom.Point{X: 3, Y: 4}}) {
		t.Fatalf("segment literal: %v %v", d, err)
	}
	d, err = ParseLiteral(Int, " 42 ")
	if err != nil || d.I != 42 {
		t.Fatalf("int literal: %v %v", d, err)
	}
	if _, err := ParseLiteral(Point, "(1)"); err == nil {
		t.Error("bad point literal accepted")
	}
	if _, err := ParseLiteral(Int, "x"); err == nil {
		t.Error("bad int literal accepted")
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tup := Tuple{
		NewInt(-7),
		NewFloat(math.Pi),
		NewText("hello, κόσμε"),
		NewPoint(geom.Point{X: 1.5, Y: -2.5}),
		NewBox(geom.MakeBox(0, 0, 10, 10)),
		NewSegment(geom.Segment{A: geom.Point{X: 1, Y: 2}, B: geom.Point{X: 3, Y: 4}}),
	}
	got, err := DecodeTuple(EncodeTuple(tup))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tup) {
		t.Fatalf("arity %d != %d", len(got), len(tup))
	}
	for i := range tup {
		if !got[i].Equal(tup[i]) {
			t.Fatalf("datum %d: %v != %v", i, got[i], tup[i])
		}
	}
}

// Property: tuples of random texts and ints always round-trip.
func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(s string, i int64, x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		tup := Tuple{NewText(s), NewInt(i), NewPoint(geom.Point{X: x, Y: y})}
		got, err := DecodeTuple(EncodeTuple(tup))
		if err != nil {
			return false
		}
		return got[0].Equal(tup[0]) && got[1].Equal(tup[1]) && got[2].Equal(tup[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	if _, err := DecodeTuple([]byte{}); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, err := DecodeTuple([]byte{2, 0, 99}); err == nil {
		t.Error("unknown datum type accepted")
	}
}

func TestOperatorLookupAndProcs(t *testing.T) {
	op, ok := LookupOperator("?=", Text)
	if !ok {
		t.Fatal("?= missing")
	}
	if !op.Proc(NewText("random"), NewText("r?nd?m")) {
		t.Error("?= proc wrong")
	}
	op, ok = LookupOperator("^", Point)
	if !ok {
		t.Fatal("^ missing")
	}
	if !op.Proc(NewPoint(geom.Point{X: 1, Y: 1}), NewBox(geom.MakeBox(0, 0, 5, 5))) {
		t.Error("^ proc wrong")
	}
	if op.Right != Box {
		t.Error("^ right operand type should be BOX")
	}
	if _, ok := LookupOperator("=", Box); ok {
		t.Error("no = over BOX should exist")
	}
}

func TestSelectivityProcs(t *testing.T) {
	st := TableStats{Rows: 10000, ColumnStats: ColumnStats{NDistinct: 500}}
	if got := EqSel(st, NewText("x")); got != 1.0/500 {
		t.Errorf("EqSel with stats = %g", got)
	}
	if got := EqSel(TableStats{}, NewText("x")); got != DefaultEqSel {
		t.Errorf("EqSel default = %g", got)
	}
	// More literal characters in a pattern select fewer rows.
	loose := MatchSel(st, NewText("?????"))
	tight := MatchSel(st, NewText("abcde"))
	if tight >= loose {
		t.Errorf("MatchSel: tight %g should be < loose %g", tight, loose)
	}
	if ContSel(st, NewBox(geom.Box{})) != DefaultContSel {
		t.Error("ContSel default")
	}
	// Prefix selectivity declines with prefix length.
	if LikeSel(st, NewText("abcd")) >= LikeSel(st, NewText("a")) {
		t.Error("LikeSel should decline with prefix length")
	}
}

func TestAMCatalogMatchesPaperTable2(t *testing.T) {
	am, ok := LookupAM("spgist")
	if !ok {
		t.Fatal("spgist AM missing")
	}
	// The distinctive values of the paper's Table 2.
	if am.MaxStrategies != 20 || am.MaxSupport != 20 {
		t.Errorf("strategies/support = %d/%d, want 20/20", am.MaxStrategies, am.MaxSupport)
	}
	if am.OrderStrategy != 0 {
		t.Error("SP-GiST entries are unordered (amorderstrategy 0)")
	}
	if am.CanUnique || am.CanMultiCol || am.IndexNulls {
		t.Error("unique/multicol/nulls flags must be false")
	}
	if !am.Concurrent {
		t.Error("amconcurrent must be true")
	}
	for _, proc := range []string{am.GetTupleProc, am.InsertProc, am.BuildProc, am.BulkDeleteProc, am.CostProc} {
		if proc == "" {
			t.Error("missing interface routine name")
		}
	}
}

func TestOpClassCatalogMatchesPaperTable5(t *testing.T) {
	oc, ok := LookupOpClass("spgist_trie")
	if !ok {
		t.Fatal("spgist_trie missing")
	}
	// Strategy numbers from Table 5: 1 '=', 2 '#=', 3 '?=', 20 '@@'.
	want := map[string]int{"=": 1, "#=": 2, "?=": 3, "@@": 20}
	for op, st := range want {
		if oc.Strategies[op] != st {
			t.Errorf("trie strategy %q = %d, want %d", op, oc.Strategies[op], st)
		}
	}
	if oc.NNOp != "@@" {
		t.Error("trie NN operator must be @@")
	}
	sfx, ok := LookupOpClass("spgist_suffix")
	if !ok || sfx.Strategies["@="] != 1 {
		t.Error("suffix @= strategy 1 missing")
	}
	if _, err := DefaultOpClass("spgist", Text); err != nil {
		t.Error(err)
	}
	if _, err := DefaultOpClass("spgist", Box); err == nil {
		t.Error("no default for BOX should exist")
	}
}

func TestDatumString(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	_ = r
	cases := []struct {
		d    Datum
		want string
	}{
		{NewInt(5), "5"},
		{NewText("x"), "x"},
		{NewPoint(geom.Point{X: 1, Y: 2}), "(1,2)"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
