package catalog

import (
	"strings"

	"repro/internal/trie"
)

// Selectivity constants, after PostgreSQL's defaults: the restrict
// procedures the paper wires into its operator definitions (Table 4)
// resolve to these when no statistics are available.
const (
	DefaultEqSel    = 0.005  // eqsel: equality operators
	DefaultMatchSel = 0.005  // likesel: pattern-match operators
	DefaultContSel  = 0.001  // contsel: containment operators
	DefaultIneqSel  = 0.3333 // scalarltsel/scalargtsel: inequalities
)

// TableStats is what a restrict procedure may consult.
type TableStats struct {
	Rows      int64
	NDistinct int64 // 0 = unknown
}

// RestrictProc estimates the fraction of rows an operator selects — the
// procedures named in the paper's Table 4 restrict clauses.
type RestrictProc func(st TableStats, arg Datum) float64

// EqSel is PostgreSQL's eqsel: 1/ndistinct when known, else the default.
func EqSel(st TableStats, _ Datum) float64 {
	if st.NDistinct > 0 {
		return 1 / float64(st.NDistinct)
	}
	return DefaultEqSel
}

// LikeSel is PostgreSQL's likesel/matchsel for pattern operators. Longer
// literal prefixes select fewer rows.
func LikeSel(_ TableStats, arg Datum) float64 {
	if arg.Typ == Text {
		lit := 0
		for lit < len(arg.S) && arg.S[lit] != '?' {
			lit++
		}
		sel := DefaultMatchSel
		for i := 0; i < lit && i < 4; i++ {
			sel *= 0.5
		}
		if sel < 1e-7 {
			sel = 1e-7
		}
		return sel
	}
	return DefaultMatchSel
}

// MatchSel estimates '?=' wildcard patterns: the match is anchored to the
// full key length, so every literal character prunes the candidates.
func MatchSel(_ TableStats, arg Datum) float64 {
	sel := 1.0
	for i := 0; i < len(arg.S); i++ {
		if arg.S[i] != '?' {
			sel /= 8
		}
	}
	if sel < 1e-7 {
		sel = 1e-7
	}
	if sel > DefaultMatchSel {
		sel = DefaultMatchSel
	}
	return sel
}

// ContSel is PostgreSQL's contsel for containment/overlap operators.
func ContSel(_ TableStats, _ Datum) float64 { return DefaultContSel }

// IneqSel is PostgreSQL's scalar inequality default.
func IneqSel(_ TableStats, _ Datum) float64 { return DefaultIneqSel }

// Operator is one row of the mini pg_operator (paper Table 4): a named
// binary predicate over a left (column) and right (constant) type, with
// the procedure that evaluates it and the restrict procedure the planner
// uses to estimate its selectivity.
type Operator struct {
	Name       string
	Left       Type
	Right      Type
	Proc       func(l, r Datum) bool
	Commutator string
	Restrict   RestrictProc
}

// operators indexes the built-in operator table by (name, left type).
var operators = map[string]map[Type]*Operator{}

// RegisterOperator adds an operator to the catalog (CREATE OPERATOR).
func RegisterOperator(op *Operator) {
	byType, ok := operators[op.Name]
	if !ok {
		byType = map[Type]*Operator{}
		operators[op.Name] = byType
	}
	byType[op.Left] = op
}

// LookupOperator finds the operator for a name and left (column) type.
func LookupOperator(name string, left Type) (*Operator, bool) {
	byType, ok := operators[name]
	if !ok {
		return nil, false
	}
	op, ok := byType[left]
	return op, ok
}

// Operators lists all registered operators (for the CLI's \do).
func Operators() []*Operator {
	var out []*Operator
	for _, byType := range operators {
		for _, op := range byType {
			out = append(out, op)
		}
	}
	return out
}

func init() {
	// Text operators (trie / suffix tree / B+-tree; paper Table 4 left).
	RegisterOperator(&Operator{
		Name: "=", Left: Text, Right: Text, Commutator: "=",
		Proc:     func(l, r Datum) bool { return l.S == r.S },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "#=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return strings.HasPrefix(l.S, r.S) },
		Restrict: LikeSel,
	})
	RegisterOperator(&Operator{
		Name: "?=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return trie.MatchPattern(l.S, r.S) },
		Restrict: MatchSel,
	})
	RegisterOperator(&Operator{
		Name: "@=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return strings.Contains(l.S, r.S) },
		Restrict: LikeSel,
	})
	RegisterOperator(&Operator{
		Name: "<", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S < r.S },
		Restrict: IneqSel,
	})
	RegisterOperator(&Operator{
		Name: "<=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S <= r.S },
		Restrict: IneqSel,
	})
	RegisterOperator(&Operator{
		Name: ">", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S > r.S },
		Restrict: IneqSel,
	})
	RegisterOperator(&Operator{
		Name: ">=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S >= r.S },
		Restrict: IneqSel,
	})

	// Point operators (kd-tree / point quadtree / R-tree; Table 4 right).
	RegisterOperator(&Operator{
		Name: "@", Left: Point, Right: Point, Commutator: "@",
		Proc:     func(l, r Datum) bool { return l.P.Eq(r.P) },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "^", Left: Point, Right: Box,
		Proc:     func(l, r Datum) bool { return r.B.Contains(l.P) },
		Restrict: ContSel,
	})

	// Segment operators (PMR quadtree / R-tree).
	RegisterOperator(&Operator{
		Name: "=", Left: Segment, Right: Segment, Commutator: "=",
		Proc:     func(l, r Datum) bool { return l.G.Eq(r.G) },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "&&", Left: Segment, Right: Box,
		Proc:     func(l, r Datum) bool { return l.G.IntersectsBox(r.B) },
		Restrict: ContSel,
	})

	// Integer operators (plain attribute filters).
	RegisterOperator(&Operator{
		Name: "=", Left: Int, Right: Int, Commutator: "=",
		Proc:     func(l, r Datum) bool { return l.I == r.I },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "<", Left: Int, Right: Int,
		Proc:     func(l, r Datum) bool { return l.I < r.I },
		Restrict: IneqSel,
	})
	RegisterOperator(&Operator{
		Name: ">", Left: Int, Right: Int,
		Proc:     func(l, r Datum) bool { return l.I > r.I },
		Restrict: IneqSel,
	})
}
