package catalog

import (
	"strings"

	"repro/internal/trie"
)

// Selectivity constants, after PostgreSQL's defaults: the restrict
// procedures the paper wires into its operator definitions (Table 4)
// resolve to these when no statistics are available.
const (
	DefaultEqSel    = 0.005  // eqsel: equality operators
	DefaultMatchSel = 0.005  // likesel: pattern-match operators
	DefaultContSel  = 0.001  // contsel: containment operators
	DefaultIneqSel  = 0.3333 // scalarltsel/scalargtsel: inequalities
)

// RestrictProc estimates the fraction of rows an operator selects — the
// procedures named in the paper's Table 4 restrict clauses.
type RestrictProc func(st TableStats, arg Datum) float64

// EqSel is PostgreSQL's eqsel. With statistics it consults the MCV list
// first (an equality against a common value has a known frequency) and
// spreads the remaining mass over the remaining distinct values; without
// statistics it falls back to the default.
func EqSel(st TableStats, arg Datum) float64 {
	if st.NDistinct <= 0 {
		return DefaultEqSel
	}
	mcvTot := st.mcvTotal()
	for i, v := range st.MCVals {
		if v.Equal(arg) {
			return clampSel(blend(st.MCFreqs[i], DefaultEqSel, st.StaleFrac))
		}
	}
	est := 0.0
	if rest := st.NDistinct - int64(len(st.MCVals)); rest > 0 {
		est = (1 - st.NullFrac - mcvTot) / float64(rest)
	}
	return clampSel(blend(est, DefaultEqSel, st.StaleFrac))
}

// LikeSel is PostgreSQL's likesel for the anchored prefix operator '#='.
// With statistics it treats the prefix as the range [p, successor(p)) —
// MCV matches contribute their exact frequencies, the histogram bounds
// the non-MCV mass. Without statistics longer literal prefixes select
// fewer rows, as before.
func LikeSel(st TableStats, arg Datum) float64 {
	if arg.Typ != Text {
		return DefaultMatchSel
	}
	def := prefixDefaultSel(arg.S)
	if st.NDistinct <= 0 {
		return def
	}
	est := 0.0
	for i, v := range st.MCVals {
		if strings.HasPrefix(v.S, arg.S) {
			est += st.MCFreqs[i]
		}
	}
	rangeOK := false
	if upper, ok := successor(arg.S); ok {
		loFrac, okLo := histogramFraction(st.Histogram, NewText(arg.S), false)
		hiFrac, okHi := histogramFraction(st.Histogram, NewText(upper), false)
		if okLo && okHi {
			rangeOK = true
			if hiFrac > loFrac {
				est += (hiFrac - loFrac) * (1 - st.NullFrac - st.mcvTotal())
			}
		}
	}
	if !rangeOK {
		// No histogram covers the non-MCV mass; without MCVs either the
		// statistics say nothing about this prefix — use the heuristic —
		// and with them, price the remaining mass heuristically.
		if len(st.MCVals) == 0 {
			return def
		}
		est += def * (1 - st.NullFrac - st.mcvTotal())
	}
	return clampSel(blend(est, def, st.StaleFrac))
}

// prefixDefaultSel is the statistics-free LikeSel heuristic: every
// literal prefix character halves the estimate.
func prefixDefaultSel(pattern string) float64 {
	lit := 0
	for lit < len(pattern) && pattern[lit] != '?' {
		lit++
	}
	sel := DefaultMatchSel
	for i := 0; i < lit && i < 4; i++ {
		sel *= 0.5
	}
	return clampSel(sel)
}

// ContainsSel estimates the substring operator '@='. Substring matches
// have no range form, so only the MCV list is consulted; the remaining
// mass uses the pattern-length heuristic.
func ContainsSel(st TableStats, arg Datum) float64 {
	if arg.Typ != Text {
		return DefaultMatchSel
	}
	def := prefixDefaultSel(arg.S)
	if st.NDistinct <= 0 || len(st.MCVals) == 0 {
		return def
	}
	est := 0.0
	for i, v := range st.MCVals {
		if strings.Contains(v.S, arg.S) {
			est += st.MCFreqs[i]
		}
	}
	est += def * (1 - st.NullFrac - st.mcvTotal())
	return clampSel(blend(est, def, st.StaleFrac))
}

// MatchSel estimates '?=' wildcard patterns: the match is anchored to the
// full key length, so every literal character prunes the candidates. With
// statistics, MCVs matching the pattern contribute exact frequencies.
func MatchSel(st TableStats, arg Datum) float64 {
	def := 1.0
	for i := 0; i < len(arg.S); i++ {
		if arg.S[i] != '?' {
			def /= 8
		}
	}
	if def > DefaultMatchSel {
		def = DefaultMatchSel
	}
	def = clampSel(def)
	if st.NDistinct <= 0 || len(st.MCVals) == 0 {
		return def
	}
	est := 0.0
	for i, v := range st.MCVals {
		if trie.MatchPattern(v.S, arg.S) {
			est += st.MCFreqs[i]
		}
	}
	est += def * (1 - st.NullFrac - st.mcvTotal())
	return clampSel(blend(est, def, st.StaleFrac))
}

// ContSel is PostgreSQL's contsel for containment/overlap operators.
func ContSel(_ TableStats, _ Datum) float64 { return DefaultContSel }

// IneqSel is PostgreSQL's scalar inequality default (kept for operators
// registered without a direction; the built-in <, <=, >, >= use
// ScalarIneqSel closures instead).
func IneqSel(_ TableStats, _ Datum) float64 { return DefaultIneqSel }

// ScalarIneqSel is PostgreSQL's scalarltsel/scalargtsel: P(col < arg)
// (or <=, >, >= per the flags) estimated from the MCV list plus
// histogram interpolation, with a min/max linear fallback for numeric
// columns without a histogram.
func ScalarIneqSel(st TableStats, arg Datum, wantLt, orEq bool) float64 {
	if st.NDistinct <= 0 {
		return DefaultIneqSel
	}
	mcvTot := st.mcvTotal()
	mcvBelow := 0.0
	for i, v := range st.MCVals {
		c, ok := Compare(v, arg)
		if !ok {
			return DefaultIneqSel
		}
		if c < 0 || (c == 0 && orEq == wantLt) {
			// For <= count equality below; for > the complement (1-selLE)
			// must exclude equality, handled by flipping orEq here.
			mcvBelow += st.MCFreqs[i]
		}
	}
	frac, ok := histogramFraction(st.Histogram, arg, orEq == wantLt)
	if !ok {
		frac, ok = rangeFraction(st, arg)
	}
	if !ok {
		if len(st.MCVals) == 0 {
			return DefaultIneqSel
		}
		// Neither histogram nor min/max covers the non-MCV mass (e.g.
		// shrunk statistics for a wide text column): price that mass at
		// the inequality default rather than zero — MCV evidence
		// refines the remainder, it must not erase it.
		frac = DefaultIneqSel
	}
	selBelow := mcvBelow + frac*(1-st.NullFrac-mcvTot)
	est := selBelow
	if !wantLt {
		est = 1 - st.NullFrac - selBelow
	}
	return clampSel(blend(est, DefaultIneqSel, st.StaleFrac))
}

// ltSel / leSel / gtSel / geSel are the registered restrict procedures
// of the four scalar comparison operators.
func ltSel(st TableStats, arg Datum) float64 { return ScalarIneqSel(st, arg, true, false) }
func leSel(st TableStats, arg Datum) float64 { return ScalarIneqSel(st, arg, true, true) }
func gtSel(st TableStats, arg Datum) float64 { return ScalarIneqSel(st, arg, false, false) }
func geSel(st TableStats, arg Datum) float64 { return ScalarIneqSel(st, arg, false, true) }

// Operator is one row of the mini pg_operator (paper Table 4): a named
// binary predicate over a left (column) and right (constant) type, with
// the procedure that evaluates it and the restrict procedure the planner
// uses to estimate its selectivity.
type Operator struct {
	Name       string
	Left       Type
	Right      Type
	Proc       func(l, r Datum) bool
	Commutator string
	Restrict   RestrictProc
}

// operators indexes the built-in operator table by (name, left type).
var operators = map[string]map[Type]*Operator{}

// RegisterOperator adds an operator to the catalog (CREATE OPERATOR).
func RegisterOperator(op *Operator) {
	byType, ok := operators[op.Name]
	if !ok {
		byType = map[Type]*Operator{}
		operators[op.Name] = byType
	}
	byType[op.Left] = op
}

// LookupOperator finds the operator for a name and left (column) type.
func LookupOperator(name string, left Type) (*Operator, bool) {
	byType, ok := operators[name]
	if !ok {
		return nil, false
	}
	op, ok := byType[left]
	return op, ok
}

// Operators lists all registered operators (for the CLI's \do).
func Operators() []*Operator {
	var out []*Operator
	for _, byType := range operators {
		for _, op := range byType {
			out = append(out, op)
		}
	}
	return out
}

func init() {
	// Text operators (trie / suffix tree / B+-tree; paper Table 4 left).
	RegisterOperator(&Operator{
		Name: "=", Left: Text, Right: Text, Commutator: "=",
		Proc:     func(l, r Datum) bool { return l.S == r.S },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "#=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return strings.HasPrefix(l.S, r.S) },
		Restrict: LikeSel,
	})
	RegisterOperator(&Operator{
		Name: "?=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return trie.MatchPattern(l.S, r.S) },
		Restrict: MatchSel,
	})
	RegisterOperator(&Operator{
		Name: "@=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return strings.Contains(l.S, r.S) },
		Restrict: ContainsSel,
	})
	RegisterOperator(&Operator{
		Name: "<", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S < r.S },
		Restrict: ltSel,
	})
	RegisterOperator(&Operator{
		Name: "<=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S <= r.S },
		Restrict: leSel,
	})
	RegisterOperator(&Operator{
		Name: ">", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S > r.S },
		Restrict: gtSel,
	})
	RegisterOperator(&Operator{
		Name: ">=", Left: Text, Right: Text,
		Proc:     func(l, r Datum) bool { return l.S >= r.S },
		Restrict: geSel,
	})

	// Point operators (kd-tree / point quadtree / R-tree; Table 4 right).
	RegisterOperator(&Operator{
		Name: "@", Left: Point, Right: Point, Commutator: "@",
		Proc:     func(l, r Datum) bool { return l.P.Eq(r.P) },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "^", Left: Point, Right: Box,
		Proc:     func(l, r Datum) bool { return r.B.Contains(l.P) },
		Restrict: ContSel,
	})

	// Segment operators (PMR quadtree / R-tree).
	RegisterOperator(&Operator{
		Name: "=", Left: Segment, Right: Segment, Commutator: "=",
		Proc:     func(l, r Datum) bool { return l.G.Eq(r.G) },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "&&", Left: Segment, Right: Box,
		Proc:     func(l, r Datum) bool { return l.G.IntersectsBox(r.B) },
		Restrict: ContSel,
	})

	// Integer operators (plain attribute filters).
	RegisterOperator(&Operator{
		Name: "=", Left: Int, Right: Int, Commutator: "=",
		Proc:     func(l, r Datum) bool { return l.I == r.I },
		Restrict: EqSel,
	})
	RegisterOperator(&Operator{
		Name: "<", Left: Int, Right: Int,
		Proc:     func(l, r Datum) bool { return l.I < r.I },
		Restrict: ltSel,
	})
	RegisterOperator(&Operator{
		Name: ">", Left: Int, Right: Int,
		Proc:     func(l, r Datum) bool { return l.I > r.I },
		Restrict: gtSel,
	})
}
