package catalog

// AccessMethod is one row of the mini pg_am table. The fields mirror the
// columns of the paper's Table 2 — the INSERT INTO pg_am statement that
// introduces SP-GiST to PostgreSQL — with the interface-routine columns
// represented as the names of the routines the executor dispatches to.
type AccessMethod struct {
	Name           string // amname
	MaxStrategies  int    // amstrategies
	MaxSupport     int    // amsupport
	OrderStrategy  int    // amorderstrategy: 0 = index entries are unordered
	CanUnique      bool   // amcanunique
	CanMultiCol    bool   // amcanmulticol
	IndexNulls     bool   // amindexnulls
	Concurrent     bool   // amconcurrent
	GetTupleProc   string // amgettuple
	InsertProc     string // aminsert
	BeginScanProc  string // ambeginscan
	RescanProc     string // amrescan
	EndScanProc    string // amendscan
	MarkPosProc    string // ammarkpos
	RestrPosProc   string // amrestrpos
	BuildProc      string // ambuild
	BulkDeleteProc string // ambulkdelete
	CostProc       string // amcostestimate
}

var accessMethods = map[string]*AccessMethod{}

// RegisterAM adds an access method to the catalog.
func RegisterAM(am *AccessMethod) { accessMethods[am.Name] = am }

// LookupAM finds an access method by name.
func LookupAM(name string) (*AccessMethod, bool) {
	am, ok := accessMethods[name]
	return am, ok
}

// AMs lists the registered access methods (for the CLI's \dam).
func AMs() []*AccessMethod {
	var out []*AccessMethod
	for _, am := range accessMethods {
		out = append(out, am)
	}
	return out
}

func init() {
	// The SP-GiST entry, verbatim from the paper's Table 2.
	RegisterAM(&AccessMethod{
		Name:           "spgist",
		MaxStrategies:  20,
		MaxSupport:     20,
		OrderStrategy:  0, // SP-GiST index entries do not follow an order
		Concurrent:     true,
		GetTupleProc:   "spgistgettuple",
		InsertProc:     "spgistinsert",
		BeginScanProc:  "spgistbeginscan",
		RescanProc:     "spgistrescan",
		EndScanProc:    "spgistendscan",
		MarkPosProc:    "spgistmarkpos",
		RestrPosProc:   "spgistrestrpos",
		BuildProc:      "spgistbuild",
		BulkDeleteProc: "spgistbulkdelete",
		CostProc:       "spgistcostestimate",
	})
	RegisterAM(&AccessMethod{
		Name:           "btree",
		MaxStrategies:  5,
		MaxSupport:     1,
		OrderStrategy:  1,
		CanUnique:      true,
		CanMultiCol:    true,
		Concurrent:     true,
		GetTupleProc:   "btgettuple",
		InsertProc:     "btinsert",
		BeginScanProc:  "btbeginscan",
		RescanProc:     "btrescan",
		EndScanProc:    "btendscan",
		MarkPosProc:    "btmarkpos",
		RestrPosProc:   "btrestrpos",
		BuildProc:      "btbuild",
		BulkDeleteProc: "btbulkdelete",
		CostProc:       "btcostestimate",
	})
	RegisterAM(&AccessMethod{
		Name:           "rtree",
		MaxStrategies:  8,
		MaxSupport:     3,
		OrderStrategy:  0,
		Concurrent:     false,
		GetTupleProc:   "rtgettuple",
		InsertProc:     "rtinsert",
		BeginScanProc:  "rtbeginscan",
		RescanProc:     "rtrescan",
		EndScanProc:    "rtendscan",
		MarkPosProc:    "rtmarkpos",
		RestrPosProc:   "rtrestrpos",
		BuildProc:      "rtbuild",
		BulkDeleteProc: "rtbulkdelete",
		CostProc:       "rtcostestimate",
	})
}
