// Package catalog is the miniature system catalog of this reproduction:
// data types and typed datums (this file), the operator table with
// PostgreSQL-style selectivity procedures (operator.go), the access
// method table mirroring the paper's pg_am entry (am.go), and the
// operator classes that tie an access method to a type and its strategy
// operators (opclass.go) — the paper's Tables 2, 4 and 5.
package catalog

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Type enumerates the column types of the mini engine.
type Type uint8

const (
	Int Type = iota + 1
	Float
	Text
	Point
	Box
	Segment
)

func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Text:
		return "VARCHAR"
	case Point:
		return "POINT"
	case Box:
		return "BOX"
	case Segment:
		return "SEGMENT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// TypeByName resolves SQL type names (VARCHAR, TEXT, INT, POINT, ...).
func TypeByName(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT":
		return Int, nil
	case "FLOAT", "REAL", "DOUBLE":
		return Float, nil
	case "VARCHAR", "TEXT", "STRING":
		return Text, nil
	case "POINT":
		return Point, nil
	case "BOX":
		return Box, nil
	case "SEGMENT", "LSEG":
		return Segment, nil
	default:
		return 0, fmt.Errorf("catalog: unknown type %q", name)
	}
}

// Datum is one typed value.
type Datum struct {
	Typ Type
	I   int64
	F   float64
	S   string
	P   geom.Point
	B   geom.Box
	G   geom.Segment
}

// Constructors.
func NewInt(v int64) Datum            { return Datum{Typ: Int, I: v} }
func NewFloat(v float64) Datum        { return Datum{Typ: Float, F: v} }
func NewText(v string) Datum          { return Datum{Typ: Text, S: v} }
func NewPoint(v geom.Point) Datum     { return Datum{Typ: Point, P: v} }
func NewBox(v geom.Box) Datum         { return Datum{Typ: Box, B: v} }
func NewSegment(v geom.Segment) Datum { return Datum{Typ: Segment, G: v} }

// Equal reports deep equality of two datums of the same type.
func (d Datum) Equal(o Datum) bool {
	if d.Typ != o.Typ {
		return false
	}
	switch d.Typ {
	case Int:
		return d.I == o.I
	case Float:
		return d.F == o.F
	case Text:
		return d.S == o.S
	case Point:
		return d.P.Eq(o.P)
	case Box:
		return d.B == o.B
	case Segment:
		return d.G.Eq(o.G)
	}
	return false
}

func (d Datum) String() string {
	switch d.Typ {
	case Int:
		return strconv.FormatInt(d.I, 10)
	case Float:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case Text:
		return d.S
	case Point:
		return d.P.String()
	case Box:
		return d.B.String()
	case Segment:
		return d.G.String()
	default:
		return "?"
	}
}

// ParseLiteral converts the text form of a literal to a datum of the
// required type, PostgreSQL-style: the paper's Table 6 queries write
// points as '(0,1)' and boxes as '(0,0,5,5)'.
func ParseLiteral(t Type, text string) (Datum, error) {
	switch t {
	case Int:
		v, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("catalog: bad INT literal %q", text)
		}
		return NewInt(v), nil
	case Float:
		v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Datum{}, fmt.Errorf("catalog: bad FLOAT literal %q", text)
		}
		return NewFloat(v), nil
	case Text:
		return NewText(text), nil
	case Point:
		fs, err := parseFloats(text, 2)
		if err != nil {
			return Datum{}, fmt.Errorf("catalog: bad POINT literal %q: %v", text, err)
		}
		return NewPoint(geom.Point{X: fs[0], Y: fs[1]}), nil
	case Box:
		fs, err := parseFloats(text, 4)
		if err != nil {
			return Datum{}, fmt.Errorf("catalog: bad BOX literal %q: %v", text, err)
		}
		return NewBox(geom.MakeBox(fs[0], fs[1], fs[2], fs[3])), nil
	case Segment:
		fs, err := parseFloats(text, 4)
		if err != nil {
			return Datum{}, fmt.Errorf("catalog: bad SEGMENT literal %q: %v", text, err)
		}
		return NewSegment(geom.Segment{
			A: geom.Point{X: fs[0], Y: fs[1]},
			B: geom.Point{X: fs[2], Y: fs[3]},
		}), nil
	default:
		return Datum{}, fmt.Errorf("catalog: cannot parse literal for type %v", t)
	}
}

func parseFloats(text string, n int) ([]float64, error) {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case '(', ')', '[', ']':
			return -1
		}
		return r
	}, text)
	parts := strings.Split(clean, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d coordinates, got %d", n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Tuple is one table row.
type Tuple []Datum

// EncodeTuple serializes a tuple for heap storage.
func EncodeTuple(t Tuple) []byte {
	sz := 2
	for _, d := range t {
		sz += 1 + datumSize(d)
	}
	buf := make([]byte, sz)
	binary.LittleEndian.PutUint16(buf, uint16(len(t)))
	off := 2
	for _, d := range t {
		buf[off] = byte(d.Typ)
		off++
		off += encodeDatum(buf[off:], d)
	}
	return buf
}

func datumSize(d Datum) int {
	switch d.Typ {
	case Int, Float:
		return 8
	case Text:
		return 2 + len(d.S)
	case Point:
		return 16
	case Box, Segment:
		return 32
	}
	return 0
}

func encodeDatum(buf []byte, d Datum) int {
	switch d.Typ {
	case Int:
		binary.LittleEndian.PutUint64(buf, uint64(d.I))
		return 8
	case Float:
		binary.LittleEndian.PutUint64(buf, math.Float64bits(d.F))
		return 8
	case Text:
		binary.LittleEndian.PutUint16(buf, uint16(len(d.S)))
		copy(buf[2:], d.S)
		return 2 + len(d.S)
	case Point:
		putF(buf, d.P.X)
		putF(buf[8:], d.P.Y)
		return 16
	case Box:
		putF(buf, d.B.Min.X)
		putF(buf[8:], d.B.Min.Y)
		putF(buf[16:], d.B.Max.X)
		putF(buf[24:], d.B.Max.Y)
		return 32
	case Segment:
		putF(buf, d.G.A.X)
		putF(buf[8:], d.G.A.Y)
		putF(buf[16:], d.G.B.X)
		putF(buf[24:], d.G.B.Y)
		return 32
	}
	return 0
}

func putF(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// DecodeTuple parses a tuple written by EncodeTuple.
func DecodeTuple(buf []byte) (Tuple, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("catalog: short tuple")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	t := make(Tuple, 0, n)
	off := 2
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("catalog: truncated tuple")
		}
		d := Datum{Typ: Type(buf[off])}
		off++
		switch d.Typ {
		case Int:
			d.I = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		case Float:
			d.F = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		case Text:
			l := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			d.S = string(buf[off : off+l])
			off += l
		case Point:
			d.P = geom.Point{X: getF(buf[off:]), Y: getF(buf[off+8:])}
			off += 16
		case Box:
			d.B = geom.Box{
				Min: geom.Point{X: getF(buf[off:]), Y: getF(buf[off+8:])},
				Max: geom.Point{X: getF(buf[off+16:]), Y: getF(buf[off+24:])},
			}
			off += 32
		case Segment:
			d.G = geom.Segment{
				A: geom.Point{X: getF(buf[off:]), Y: getF(buf[off+8:])},
				B: geom.Point{X: getF(buf[off+16:]), Y: getF(buf[off+24:])},
			}
			off += 32
		default:
			return nil, fmt.Errorf("catalog: unknown datum type %d", buf[off-1])
		}
		t = append(t, d)
	}
	return t, nil
}
