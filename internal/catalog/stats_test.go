package catalog

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func intHistogram(vals ...int64) []Datum {
	out := make([]Datum, len(vals))
	for i, v := range vals {
		out[i] = NewInt(v)
	}
	return out
}

func TestHistogramFraction(t *testing.T) {
	hist := intHistogram(0, 100, 200, 300, 400) // 4 equi-depth buckets
	cases := []struct {
		arg  int64
		want float64
	}{
		{-5, 0},    // below min
		{0, 0},     // at min
		{400, 1},   // at max
		{1000, 1},  // above max
		{200, 0.5}, // bucket boundary
		{50, .125}, // half-way through the first of four buckets
	}
	for _, c := range cases {
		got, ok := histogramFraction(hist, NewInt(c.arg), false)
		if !ok {
			t.Fatalf("histogramFraction(%d) not ok", c.arg)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("histogramFraction(%d) = %g, want %g", c.arg, got, c.want)
		}
	}
	if _, ok := histogramFraction(nil, NewInt(1), false); ok {
		t.Error("empty histogram should not answer")
	}
	if _, ok := histogramFraction(hist, NewPoint(geom.Point{X: 1, Y: 2}), false); ok {
		t.Error("unordered type should not answer")
	}
}

func TestScalarIneqSelDirections(t *testing.T) {
	st := TableStats{
		Rows: 1000,
		ColumnStats: ColumnStats{
			NDistinct: 1000,
			Histogram: intHistogram(0, 250, 500, 750, 1000),
			HasRange:  true,
			Min:       NewInt(0),
			Max:       NewInt(1000),
		},
	}
	lt := ScalarIneqSel(st, NewInt(250), true, false)
	gt := ScalarIneqSel(st, NewInt(250), false, false)
	if math.Abs(lt-0.25) > 0.01 {
		t.Errorf("P(col < 250) = %g, want ≈0.25", lt)
	}
	if math.Abs(gt-0.75) > 0.01 {
		t.Errorf("P(col > 250) = %g, want ≈0.75", gt)
	}
	if math.Abs((lt+gt)-1) > 0.01 {
		t.Errorf("lt+gt = %g, want ≈1", lt+gt)
	}
	// Out-of-range constants clamp to the selectivity floor / ceiling.
	if s := ScalarIneqSel(st, NewInt(-50), true, false); s > 0.001 {
		t.Errorf("P(col < min) = %g, want ≈0", s)
	}
	if s := ScalarIneqSel(st, NewInt(5000), true, false); s < 0.999 {
		t.Errorf("P(col < huge) = %g, want ≈1", s)
	}
	// Without statistics: the PostgreSQL default.
	if s := ScalarIneqSel(TableStats{}, NewInt(1), true, false); s != DefaultIneqSel {
		t.Errorf("default = %g", s)
	}
}

func TestScalarIneqSelMCVAndRangeFallback(t *testing.T) {
	// MCVs only (no histogram): masses below the constant count.
	st := TableStats{
		Rows: 100,
		ColumnStats: ColumnStats{
			NDistinct: 3,
			MCVals:    []Datum{NewInt(1), NewInt(2), NewInt(3)},
			MCFreqs:   []float64{0.5, 0.3, 0.2},
		},
	}
	if s := ScalarIneqSel(st, NewInt(2), true, false); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("MCV-only P(col < 2) = %g, want 0.5", s)
	}
	if s := ScalarIneqSel(st, NewInt(2), true, true); math.Abs(s-0.8) > 1e-9 {
		t.Errorf("MCV-only P(col <= 2) = %g, want 0.8", s)
	}
	// Numeric min/max without a histogram interpolates linearly.
	rg := TableStats{
		Rows: 100,
		ColumnStats: ColumnStats{
			NDistinct: 100,
			HasRange:  true,
			Min:       NewInt(0),
			Max:       NewInt(100),
		},
	}
	if s := ScalarIneqSel(rg, NewInt(25), true, false); math.Abs(s-0.25) > 1e-9 {
		t.Errorf("range-only P(col < 25) = %g, want 0.25", s)
	}
}

func TestEqSelConsultsMCVs(t *testing.T) {
	st := TableStats{
		Rows: 1000,
		ColumnStats: ColumnStats{
			NDistinct: 101,
			MCVals:    []Datum{NewText("common")},
			MCFreqs:   []float64{0.7},
		},
	}
	if s := EqSel(st, NewText("common")); s != 0.7 {
		t.Errorf("MCV hit = %g, want 0.7", s)
	}
	// A miss spreads the remaining 30% over the other 100 values.
	if s := EqSel(st, NewText("rare")); math.Abs(s-0.003) > 1e-9 {
		t.Errorf("MCV miss = %g, want 0.003", s)
	}
}

func TestLikeSelPrefixUsesStats(t *testing.T) {
	st := TableStats{
		Rows: 1000,
		ColumnStats: ColumnStats{
			NDistinct: 500,
			MCVals:    []Datum{NewText("walnut")},
			MCFreqs:   []float64{0.4},
			Histogram: []Datum{NewText("aaa"), NewText("mmm"), NewText("zzz")},
		},
	}
	// The MCV carries the prefix: its exact frequency counts.
	if s := LikeSel(st, NewText("wal")); s < 0.4 {
		t.Errorf("prefix matching an MCV = %g, want >= 0.4", s)
	}
	// A prefix past the histogram's range selects almost nothing.
	if s := LikeSel(st, NewText("zzzz")); s > 0.01 {
		t.Errorf("out-of-range prefix = %g, want tiny", s)
	}
}

func TestStaleFracBlendsTowardDefault(t *testing.T) {
	st := TableStats{
		Rows: 1000,
		ColumnStats: ColumnStats{
			NDistinct: 11,
			MCVals:    []Datum{NewText("common")},
			MCFreqs:   []float64{0.9},
		},
	}
	fresh := EqSel(st, NewText("common"))
	st.StaleFrac = 0.5
	half := EqSel(st, NewText("common"))
	st.StaleFrac = 1
	dead := EqSel(st, NewText("common"))
	if !(fresh > half && half > dead) {
		t.Errorf("staleness should decay the estimate: %g, %g, %g", fresh, half, dead)
	}
	if dead != DefaultEqSel {
		t.Errorf("fully stale estimate = %g, want the default", dead)
	}
}

func TestSuccessor(t *testing.T) {
	if s, ok := successor("abc"); !ok || s != "abd" {
		t.Errorf("successor(abc) = %q %v", s, ok)
	}
	if s, ok := successor("ab\xff"); !ok || s != "ac" {
		t.Errorf("successor(ab\\xff) = %q %v", s, ok)
	}
	if _, ok := successor("\xff\xff"); ok {
		t.Error("successor of all-0xff should not exist")
	}
}

// Shrunk statistics (MCVs survive, histogram and range dropped) must
// price the non-MCV mass at the inequality default, not zero.
func TestScalarIneqSelShrunkStatsKeepRemainderMass(t *testing.T) {
	st := TableStats{
		Rows: 1000,
		ColumnStats: ColumnStats{
			NDistinct: 100,
			MCVals:    []Datum{NewText("mmm")},
			MCFreqs:   []float64{0.1},
		},
	}
	// ~All rows sort below "zzy"; without histogram or range the best
	// estimate is MCV mass below + default share of the remaining 0.9.
	lo := 0.1 + DefaultIneqSel*0.9
	if s := ScalarIneqSel(st, NewText("zzy"), true, false); math.Abs(s-lo) > 1e-9 {
		t.Errorf("P(col < zzy) = %g, want %g (MCV + default remainder)", s, lo)
	}
	hi := 1 - DefaultIneqSel*0.9
	if s := ScalarIneqSel(st, NewText("aab"), false, false); math.Abs(s-hi) > 1e-9 {
		t.Errorf("P(col > aab) = %g, want %g (complement keeps remainder)", s, hi)
	}
}
