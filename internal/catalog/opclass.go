package catalog

import "fmt"

// OperatorClass is one row of the mini pg_opclass (paper Table 5): it
// links an access method to a column type and declares which operators
// the method supports, by strategy number. Strategy 20 is the NN ordering
// operator "@@", as in the paper's operator class definitions.
type OperatorClass struct {
	Name    string
	AM      string // access method name
	Type    Type   // indexed column type
	Default bool   // default opclass for (AM, Type)
	// Strategies maps operator name -> strategy number.
	Strategies map[string]int
	// NNOp is the ordering operator supported by the class ("" if none).
	NNOp string
	// Support lists the support-function names, mirroring the FUNCTION
	// clauses of CREATE OPERATOR CLASS (informational).
	Support []string
}

// SupportsOp reports whether the class can drive an index scan for op.
func (oc *OperatorClass) SupportsOp(op string) bool {
	_, ok := oc.Strategies[op]
	return ok
}

var opclasses = map[string]*OperatorClass{}

// RegisterOpClass adds an operator class (CREATE OPERATOR CLASS).
func RegisterOpClass(oc *OperatorClass) { opclasses[oc.Name] = oc }

// LookupOpClass finds an operator class by name.
func LookupOpClass(name string) (*OperatorClass, bool) {
	oc, ok := opclasses[name]
	return oc, ok
}

// DefaultOpClass returns the default class for an access method and type.
func DefaultOpClass(amName string, t Type) (*OperatorClass, error) {
	for _, oc := range opclasses {
		if oc.AM == amName && oc.Type == t && oc.Default {
			return oc, nil
		}
	}
	return nil, fmt.Errorf("catalog: no default operator class for %s over %v", amName, t)
}

// ResolveOpClass resolves the operator class for an index over a column
// of type t: by name when opclassName is non-empty (validating that the
// class belongs to the access method and indexes the column type), or
// the default class of (method, t) otherwise. CREATE INDEX and the
// persistent system catalog's schema load both resolve through here, so
// an entry written by one is always readable by the other.
func ResolveOpClass(method, opclassName string, t Type) (*OperatorClass, error) {
	if _, ok := LookupAM(method); !ok {
		return nil, fmt.Errorf("catalog: unknown access method %q", method)
	}
	if opclassName == "" {
		return DefaultOpClass(method, t)
	}
	oc, ok := LookupOpClass(opclassName)
	if !ok {
		return nil, fmt.Errorf("catalog: unknown operator class %q", opclassName)
	}
	if oc.AM != method {
		return nil, fmt.Errorf("catalog: operator class %s belongs to %s, not %s", oc.Name, oc.AM, method)
	}
	if oc.Type != t {
		return nil, fmt.Errorf("catalog: operator class %s indexes %v, not %v", oc.Name, oc.Type, t)
	}
	return oc, nil
}

// OpClasses lists all registered operator classes (for the CLI's \dOC).
func OpClasses() []*OperatorClass {
	var out []*OperatorClass
	for _, oc := range opclasses {
		out = append(out, oc)
	}
	return out
}

func init() {
	// The three operator classes of the paper's Table 5, plus the point
	// quadtree and PMR quadtree classes used by its experiments, plus the
	// baseline classes for the built-in B+-tree and R-tree.
	RegisterOpClass(&OperatorClass{
		Name: "spgist_trie", AM: "spgist", Type: Text, Default: true,
		Strategies: map[string]int{"=": 1, "#=": 2, "?=": 3, "@@": 20},
		NNOp:       "@@",
		Support:    []string{"trie_consistent", "trie_picksplit", "trie_nn_consistent", "trie_getparameters"},
	})
	RegisterOpClass(&OperatorClass{
		Name: "spgist_suffix", AM: "spgist", Type: Text,
		Strategies: map[string]int{"@=": 1, "@@": 20},
		NNOp:       "@@",
		Support:    []string{"suffix_consistent", "suffix_picksplit", "suffix_nn_consistent", "suffix_getparameters"},
	})
	RegisterOpClass(&OperatorClass{
		Name: "spgist_kdtree", AM: "spgist", Type: Point, Default: true,
		Strategies: map[string]int{"@": 1, "^": 2, "@@": 20},
		NNOp:       "@@",
		Support:    []string{"kdtree_consistent", "kdtree_picksplit", "kdtree_nn_consistent", "kdtree_getparameters"},
	})
	RegisterOpClass(&OperatorClass{
		Name: "spgist_pquadtree", AM: "spgist", Type: Point,
		Strategies: map[string]int{"@": 1, "^": 2, "@@": 20},
		NNOp:       "@@",
		Support:    []string{"pquad_consistent", "pquad_picksplit", "pquad_nn_consistent", "pquad_getparameters"},
	})
	RegisterOpClass(&OperatorClass{
		Name: "spgist_pmr", AM: "spgist", Type: Segment, Default: true,
		Strategies: map[string]int{"=": 1, "&&": 2, "@@": 20},
		NNOp:       "@@",
		Support:    []string{"pmr_consistent", "pmr_picksplit", "pmr_nn_consistent", "pmr_getparameters"},
	})
	RegisterOpClass(&OperatorClass{
		Name: "btree_text", AM: "btree", Type: Text, Default: true,
		Strategies: map[string]int{"<": 1, "<=": 2, "=": 3, ">=": 4, ">": 5, "#=": 6, "?=": 7},
		Support:    []string{"bttextcmp"},
	})
	RegisterOpClass(&OperatorClass{
		Name: "rtree_point", AM: "rtree", Type: Point, Default: true,
		Strategies: map[string]int{"@": 1, "^": 2},
		Support:    []string{"rtree_union", "rtree_inter", "rtree_size"},
	})
	RegisterOpClass(&OperatorClass{
		Name: "rtree_segment", AM: "rtree", Type: Segment, Default: true,
		Strategies: map[string]int{"=": 1, "&&": 2},
		Support:    []string{"rtree_union", "rtree_inter", "rtree_size"},
	})
}
