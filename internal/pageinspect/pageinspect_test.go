package pageinspect

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/heap"
	"repro/internal/storage"
)

// describeString runs Describe into a string, failing the test on error.
func describeString(t *testing.T, path string, pageNo uint32) string {
	t.Helper()
	var sb strings.Builder
	if err := Describe(&sb, path, pageNo, 0); err != nil {
		t.Fatalf("describe %s page %d: %v", path, pageNo, err)
	}
	return sb.String()
}

// TestHeapRoundTrip writes tuples through the heap layer, closes the
// file, and checks the inspector decodes them straight from disk.
func TestHeapRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	dm, err := storage.OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(dm, 16)
	hf, err := heap.Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	var rids []heap.RID
	for i := 0; i < 3; i++ {
		tup := catalog.Tuple{catalog.NewText(fmt.Sprintf("alpha%d", i)), catalog.NewInt(int64(i))}
		rid, err := hf.Insert(catalog.EncodeTuple(tup))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := hf.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := dm.Close(); err != nil {
		t.Fatal(err)
	}

	meta := describeString(t, path, 0)
	if !strings.Contains(meta, `magic="HEAP"`) || !strings.Contains(meta, "count=2") {
		t.Errorf("heap meta dump:\n%s", meta)
	}
	page := describeString(t, path, uint32(rids[0].Page))
	for _, want := range []string{"slotted header:", "nlive=2", "slot 0:", "slot 1: dead", "tuple: (alpha0, 0)", "tuple: (alpha2, 2)", "lsn="} {
		if !strings.Contains(page, want) {
			t.Errorf("heap page dump missing %q:\n%s", want, page)
		}
	}
}

// TestBTreeRoundTrip writes keys through the B+-tree layer and checks
// the inspector decodes the leaf from the closed file.
func TestBTreeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.idx")
	dm, err := storage.OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(dm, 16)
	bt, err := btree.Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("key%d", i)
		if err := bt.Insert([]byte(key), heap.RID{Page: 1, Slot: uint16(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dm.Close(); err != nil {
		t.Fatal(err)
	}

	meta := describeString(t, path, 0)
	if !strings.Contains(meta, `magic="BTRE"`) || !strings.Contains(meta, "count=5") {
		t.Errorf("btree meta dump:\n%s", meta)
	}
	// 5 keys fit one leaf, which is the root: page 1.
	leaf := describeString(t, path, 1)
	for _, want := range []string{"btree leaf: nkeys=5", `key="key0" rid=(1,0)`, `key="key4" rid=(1,4)`} {
		if !strings.Contains(leaf, want) {
			t.Errorf("btree leaf dump missing %q:\n%s", want, leaf)
		}
	}
}

// TestSPGiSTRoundTrip builds a trie through the full engine, closes the
// database, and checks the inspector decodes node records from the
// index file of the closed directory — no executor over it.
func TestSPGiSTRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("w", []executor.Column{{Name: "name", Type: catalog.Text}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("w_trie", "w", "name", "spgist", "spgist_trie"); err != nil {
		t.Fatal(err)
	}
	words := []string{"random", "rondom", "spade", "spark", "sprite"}
	for i := 0; i < 60; i++ {
		words = append(words, fmt.Sprintf("word%02d", i))
	}
	for _, word := range words {
		if _, err := tab.Insert(catalog.Tuple{catalog.NewText(word)}); err != nil {
			t.Fatal(err)
		}
	}
	te, ok := db.Catalog().GetTable("w")
	if !ok {
		t.Fatal("table w not in catalog")
	}
	var idxFile string
	for _, ie := range db.Catalog().Indexes() {
		if ie.Name == "w_trie" {
			idxFile = ie.File
		}
	}
	if idxFile == "" {
		t.Fatal("index w_trie not in catalog")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	idxPath := filepath.Join(dir, idxFile)
	meta := describeString(t, idxPath, 0)
	if !strings.Contains(meta, `magic="SPGS"`) || !strings.Contains(meta, "nkeys=65") {
		t.Errorf("spgist meta dump:\n%s", meta)
	}
	// Scan every data page for decoded node records: all five keys must
	// appear in some leaf, and at least one inner node must show its
	// partition labels.
	dm, err := storage.OpenFile(idxPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := dm.NumPages()
	dm.Close()
	var all strings.Builder
	for p := uint32(1); p < n; p++ {
		all.WriteString(describeString(t, idxPath, p))
	}
	dump := all.String()
	for _, want := range []string{"inner node:", "leaf node:", "label=", `key="random"`, `key="sprite"`, "rid=("} {
		if !strings.Contains(dump, want) {
			t.Errorf("spgist page dumps missing %q:\n%s", want, dump)
		}
	}

	// The heap file of the closed directory decodes too.
	heapDump := describeString(t, filepath.Join(dir, te.File), 1)
	if !strings.Contains(heapDump, "tuple: (random)") {
		t.Errorf("heap dump of closed db missing tuple:\n%s", heapDump)
	}
}

// TestDescribeErrors pins the failure modes: missing file, page out of
// range.
func TestDescribeErrors(t *testing.T) {
	var sb strings.Builder
	if err := Describe(&sb, filepath.Join(t.TempDir(), "nope.tbl"), 0, 0); err == nil {
		t.Error("describe of a missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "t.tbl")
	dm, err := storage.OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(dm, 8)
	if _, err := heap.Create(bp); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	dm.Close()
	if err := Describe(&sb, path, 99, 0); err == nil {
		t.Error("describe of an out-of-range page should fail")
	}
}

// TestChecksumDescribe pins the three checksum renderings on a heap
// page: unstamped (stored 0, the pre-v2 compat sentinel), stamped and
// matching, and stamped but mismatching after a bit flip.
func TestChecksumDescribe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	dm, err := storage.OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(dm, 8)
	hf, err := heap.Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.Insert(catalog.EncodeTuple(catalog.Tuple{catalog.NewText("w"), catalog.NewInt(7)})); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := dm.Close(); err != nil {
		t.Fatal(err)
	}

	// Raw heap writes above bypass the pool's checksum stamping, so the
	// page lands on disk unstamped.
	if got := describeString(t, path, 1); !strings.Contains(got, "cksum=0 (unstamped)") {
		t.Errorf("unstamped page dump:\n%s", got)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	page := raw[storage.DefaultPageSize : 2*storage.DefaultPageSize]
	storage.StampPageChecksum(page)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := describeString(t, path, 1); !strings.Contains(got, "(ok)") {
		t.Errorf("stamped page dump:\n%s", got)
	}

	raw[storage.DefaultPageSize+200] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := describeString(t, path, 1); !strings.Contains(got, "MISMATCH") {
		t.Errorf("corrupt page dump:\n%s", got)
	}
}
