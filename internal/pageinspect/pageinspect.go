// Package pageinspect decodes raw pages of this repository's on-disk
// structures straight from the file — no executor, no buffer pool, no
// recovery — the way PostgreSQL's pageinspect extension (and tools like
// pg_filedump) read relation files. It understands every page file the
// engine writes:
//
//	heap files    (rel<oid>.tbl, magic "HEAP"): slotted tuple pages;
//	              each tuple opens with the 18-byte MVCC header
//	              [xmin:8][xmax:8][infomask:2] (PR 8). The meta page
//	              carries a format version (1 added the MVCC header,
//	              2 the per-page checksum; the engine refuses older
//	              files) — shown in the meta dump. Each data page's
//	              stored checksum is verified against a recomputation
//	              and mismatches are flagged. Records shorter than the
//	              header decode as frozen tuples
//	B+-tree files (rel<oid>.idx, magic "BTRE"): one node per page
//	SP-GiST files (rel<oid>.idx, magic "SPGS"): slotted node-record pages
//	R-tree files  (rel<oid>.idx, magic "RTRE"): one node per page
//
// The file kind is detected from the page-0 magic, so callers only name
// a file, a page number, and a page size. Because pages are read from
// disk, the dump reflects the last flushed state: pages still dirty in a
// live engine's buffer pool, or WAL records not yet replayed into the
// file, are not visible.
package pageinspect

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/storage"
)

// FileKind identifies which structure owns a page file.
type FileKind int

// File kinds, detected from the page-0 magic.
const (
	KindUnknown FileKind = iota
	KindHeap
	KindBTree
	KindSPGiST
	KindRTree
)

func (k FileKind) String() string {
	switch k {
	case KindHeap:
		return "heap"
	case KindBTree:
		return "btree"
	case KindSPGiST:
		return "spgist"
	case KindRTree:
		return "rtree"
	default:
		return "unknown"
	}
}

// The page-0 magics of every structure, mirrored from their packages
// (heap, btree, core, rtree). All are big-endian ASCII read as a
// little-endian uint32 at offset 0.
const (
	magicHeap   = 0x48454150 // "HEAP"
	magicBTree  = 0x42545245 // "BTRE"
	magicSPGiST = 0x53504753 // "SPGS"
	magicRTree  = 0x52545245 // "RTRE"
)

// DetectKind classifies a page file from its metadata page (page 0).
func DetectKind(page0 []byte) FileKind {
	if len(page0) < 4 {
		return KindUnknown
	}
	switch binary.LittleEndian.Uint32(page0) {
	case magicHeap:
		return KindHeap
	case magicBTree:
		return KindBTree
	case magicSPGiST:
		return KindSPGiST
	case magicRTree:
		return KindRTree
	default:
		return KindUnknown
	}
}

// Describe opens the page file at path directly from disk and writes a
// decoded dump of page pageNo to w: file kind, page header, line
// pointers, and per-record contents. pageSize <= 0 means the engine's
// default. The file must already exist — a closed database directory
// qualifies; a live one too, up to buffer-pool staleness.
func Describe(w io.Writer, path string, pageNo uint32, pageSize int) error {
	if pageSize <= 0 {
		pageSize = storage.DefaultPageSize
	}
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("pageinspect: %w", err)
	}
	dm, err := storage.OpenFile(path, pageSize)
	if err != nil {
		return err
	}
	defer dm.Close()
	if n := dm.NumPages(); pageNo >= n {
		return fmt.Errorf("pageinspect: page %d out of range (%s has %d pages)", pageNo, path, n)
	}
	page0 := make([]byte, pageSize)
	if err := dm.ReadPage(0, page0); err != nil {
		return err
	}
	kind := DetectKind(page0)
	page := page0
	if pageNo != 0 {
		page = make([]byte, pageSize)
		if err := dm.ReadPage(storage.PageID(pageNo), page); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s: %s file, %d pages of %d bytes\n", path, kind, dm.NumPages(), pageSize)
	fmt.Fprintf(w, "page %d:\n", pageNo)
	if pageNo == 0 {
		describeMeta(w, kind, page)
		return nil
	}
	switch kind {
	case KindHeap:
		describeSlotted(w, page, true, describeHeapTuple)
	case KindSPGiST:
		// Index files carry no per-page checksums (they are rebuildable
		// from the heap), so the field is decoded but never verified.
		describeSlotted(w, page, false, describeSPGiSTNode)
	case KindBTree:
		describeBTreeNode(w, page)
	case KindRTree:
		describeRTreeNode(w, page)
	default:
		fmt.Fprintf(w, "  unknown file kind; raw bytes:\n")
		hexdump(w, "  ", page[:min(len(page), 256)])
	}
	return nil
}

// describeMeta dumps page 0 of any file kind. Field offsets mirror each
// structure's documented meta layout.
func describeMeta(w io.Writer, kind FileKind, p []byte) {
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(p[off:]) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(p[off:]) }
	switch kind {
	case KindHeap:
		fmt.Fprintf(w, "  meta: magic=\"HEAP\" last_page_hint=%s count=%d format=%d\n",
			pageIDString(u32(4)), u64(8), u32(16))
	case KindBTree:
		fmt.Fprintf(w, "  meta: magic=\"BTRE\" root=%s height=%d count=%d\n",
			pageIDString(u32(4)), u32(8), u64(12))
	case KindSPGiST:
		fmt.Fprintf(w, "  meta: magic=\"SPGS\" root=(%s,%d) nkeys=%d\n",
			pageIDString(u32(4)), binary.LittleEndian.Uint16(p[8:]), u64(16))
	case KindRTree:
		fmt.Fprintf(w, "  meta: magic=\"RTRE\" root=%s height=%d count=%d\n",
			pageIDString(u32(4)), u32(8), u64(12))
	default:
		fmt.Fprintf(w, "  meta: unrecognized magic %#08x; raw bytes:\n", u32(0))
		hexdump(w, "  ", p[:min(len(p), 64)])
	}
}

// pageIDString renders a page number, showing the InvalidPageID
// sentinel by name.
func pageIDString(id uint32) string {
	if storage.PageID(id) == storage.InvalidPageID {
		return "invalid"
	}
	return fmt.Sprintf("%d", id)
}

// describeSlotted dumps a slotted page — the 24-byte header, the line
// pointer directory, and each live record through the per-kind decoder.
func describeSlotted(w io.Writer, p []byte, checksummed bool, rec func(w io.Writer, slot int, rec []byte)) {
	nslots := storage.SlotCount(p)
	fmt.Fprintf(w, "  slotted header: nslots=%d nlive=%d free=[%d,%d) lsn=%d cksum=%s\n",
		nslots, storage.SlotLive(p),
		binary.LittleEndian.Uint16(p[2:]), binary.LittleEndian.Uint16(p[4:]),
		storage.PageLSN(p), describeChecksum(p, checksummed))
	for s := 0; s < nslots; s++ {
		off, length, dead := storage.SlotEntry(p, s)
		if dead {
			fmt.Fprintf(w, "  slot %d: dead\n", s)
			continue
		}
		fmt.Fprintf(w, "  slot %d: off=%d len=%d\n", s, off, length)
		rec(w, s, p[off:int(off)+int(length)])
	}
}

// describeChecksum renders the slotted header's checksum field. For
// checksummed files (heap, system catalog) the stored value is verified
// against a recomputation over the page image: 0 means the page predates
// checksums ("unstamped"), a match prints "ok", and a mismatch is
// flagged loudly with both values — the same condition SCRUB reports.
// Index pages carry the field but are never stamped, so only the raw
// value is shown.
func describeChecksum(p []byte, checksummed bool) string {
	stored := storage.PageStoredChecksum(p)
	if !checksummed {
		return fmt.Sprintf("%#08x", stored)
	}
	stored, computed, ok := storage.VerifyPageChecksum(p)
	switch {
	case stored == 0:
		return "0 (unstamped)"
	case ok:
		return fmt.Sprintf("%#08x (ok)", stored)
	default:
		return fmt.Sprintf("%#08x (MISMATCH: computed %#08x)", stored, computed)
	}
}

// describeHeapTuple renders one heap record: the MVCC version header
// ([xmin u64][xmax u64][flags u16] since the tuple-versioning change),
// the raw bytes, and — since tuple payloads are self-describing — the
// decoded datums. Versions no snapshot can ever see again are flagged
// DEAD the way they would be to VACUUM.
func describeHeapTuple(w io.Writer, _ int, rec []byte) {
	h, payload := heap.ParseTuple(rec)
	xmin := "frozen"
	if h.Xmin != 0 {
		xmin = fmt.Sprintf("%d", h.Xmin)
	}
	dead := ""
	if h.Flags&heap.FlagXminAborted != 0 {
		dead = " DEAD (insert aborted)"
	} else if h.Xmax != 0 {
		dead = " DEAD (deleted)"
	}
	fmt.Fprintf(w, "    header: xmin=%s xmax=%d infomask=%#04x%s\n", xmin, h.Xmax, h.Flags, dead)
	hexdump(w, "    ", rec)
	if tup, err := catalog.DecodeTuple(payload); err == nil {
		vals := make([]string, len(tup))
		for i, d := range tup {
			vals[i] = d.String()
		}
		fmt.Fprintf(w, "    tuple: (%s)\n", strings.Join(vals, ", "))
	} else {
		fmt.Fprintf(w, "    tuple: undecodable: %v\n", err)
	}
}

// describeSPGiSTNode renders one SP-GiST node record — inner nodes with
// their partition labels and child references, leaf (data) nodes with
// their items and overflow chain. The layout mirrors core's node
// encoding: kind byte 1=inner, 2=leaf.
func describeSPGiSTNode(w io.Writer, _ int, rec []byte) {
	if len(rec) < 3 {
		fmt.Fprintf(w, "    node: truncated record (%d bytes)\n", len(rec))
		return
	}
	const refSize = 6
	ref := func(b []byte) string {
		pg := binary.LittleEndian.Uint32(b)
		if storage.PageID(pg) == storage.InvalidPageID {
			return "invalid"
		}
		return fmt.Sprintf("(%d,%d)", pg, binary.LittleEndian.Uint16(b[4:]))
	}
	switch rec[0] {
	case 1: // inner
		pl := int(binary.LittleEndian.Uint16(rec[1:]))
		off := 3
		if off+pl+2 > len(rec) {
			fmt.Fprintf(w, "    inner node: truncated predicate\n")
			return
		}
		pred := rec[off : off+pl]
		off += pl
		cnt := int(binary.LittleEndian.Uint16(rec[off:]))
		off += 2
		fmt.Fprintf(w, "    inner node: pred=%q partitions=%d\n", pred, cnt)
		for i := 0; i < cnt; i++ {
			if off+2 > len(rec) {
				fmt.Fprintf(w, "      [truncated]\n")
				return
			}
			ll := int(binary.LittleEndian.Uint16(rec[off:]))
			off += 2
			if off+ll+refSize > len(rec) {
				fmt.Fprintf(w, "      [truncated]\n")
				return
			}
			fmt.Fprintf(w, "      label=%q child=%s\n", rec[off:off+ll], ref(rec[off+ll:]))
			off += ll + refSize
		}
	case 2: // leaf
		if len(rec) < 3+refSize {
			fmt.Fprintf(w, "    leaf node: truncated header\n")
			return
		}
		next := ref(rec[1:])
		cnt := int(binary.LittleEndian.Uint16(rec[1+refSize:]))
		fmt.Fprintf(w, "    leaf node: items=%d next=%s\n", cnt, next)
		off := 3 + refSize
		for i := 0; i < cnt; i++ {
			if off+2 > len(rec) {
				fmt.Fprintf(w, "      [truncated]\n")
				return
			}
			kl := int(binary.LittleEndian.Uint16(rec[off:]))
			off += 2
			if off+kl+heap.RIDSize > len(rec) {
				fmt.Fprintf(w, "      [truncated]\n")
				return
			}
			rid := heap.RIDFromBytes(rec[off+kl:])
			fmt.Fprintf(w, "      key=%q rid=%s\n", rec[off:off+kl], rid)
			off += kl + heap.RIDSize
		}
	default:
		fmt.Fprintf(w, "    node: unknown kind %d; raw bytes:\n", rec[0])
		hexdump(w, "    ", rec)
	}
}

// describeBTreeNode dumps a B+-tree node page: [kind u8][nkeys u16]
// [next u32 (leaf) | child0 u32 (inner)], then length-prefixed keys with
// a RID (leaf) or child page (inner) each.
func describeBTreeNode(w io.Writer, p []byte) {
	const hdrSize = 7
	if len(p) < hdrSize {
		fmt.Fprintf(w, "  btree node: page smaller than header\n")
		return
	}
	kind := p[0]
	nkeys := int(binary.LittleEndian.Uint16(p[1:]))
	link := binary.LittleEndian.Uint32(p[3:])
	switch kind {
	case 1:
		fmt.Fprintf(w, "  btree leaf: nkeys=%d next=%s\n", nkeys, pageIDString(link))
	case 2:
		fmt.Fprintf(w, "  btree inner: nkeys=%d child0=%s\n", nkeys, pageIDString(link))
	default:
		fmt.Fprintf(w, "  btree node: unknown kind %d (unwritten page?); raw bytes:\n", kind)
		hexdump(w, "  ", p[:min(len(p), 64)])
		return
	}
	off := hdrSize
	for i := 0; i < nkeys; i++ {
		if off+2 > len(p) {
			fmt.Fprintf(w, "    [truncated]\n")
			return
		}
		kl := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if kind == 1 {
			if off+kl+heap.RIDSize > len(p) {
				fmt.Fprintf(w, "    [truncated]\n")
				return
			}
			rid := heap.RIDFromBytes(p[off+kl:])
			fmt.Fprintf(w, "    key=%q rid=%s\n", p[off:off+kl], rid)
			off += kl + heap.RIDSize
		} else {
			if off+kl+4 > len(p) {
				fmt.Fprintf(w, "    [truncated]\n")
				return
			}
			child := binary.LittleEndian.Uint32(p[off+kl:])
			fmt.Fprintf(w, "    key=%q child=%s\n", p[off:off+kl], pageIDString(child))
			off += kl + 4
		}
	}
}

// describeRTreeNode dumps an R-tree node page: [kind u8][n u16], then
// fixed 40-byte entries of a 4-float64 rectangle plus a child page
// (inner) or RID (leaf).
func describeRTreeNode(w io.Writer, p []byte) {
	const (
		hdrSize   = 3
		entrySize = 40
	)
	if len(p) < hdrSize {
		fmt.Fprintf(w, "  rtree node: page smaller than header\n")
		return
	}
	kind := p[0]
	n := int(binary.LittleEndian.Uint16(p[1:]))
	switch kind {
	case 1:
		fmt.Fprintf(w, "  rtree leaf: entries=%d\n", n)
	case 2:
		fmt.Fprintf(w, "  rtree inner: entries=%d\n", n)
	default:
		fmt.Fprintf(w, "  rtree node: unknown kind %d (unwritten page?); raw bytes:\n", kind)
		hexdump(w, "  ", p[:min(len(p), 64)])
		return
	}
	f64 := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
	}
	for i := 0; i < n; i++ {
		off := hdrSize + i*entrySize
		if off+entrySize > len(p) {
			fmt.Fprintf(w, "    [truncated]\n")
			return
		}
		rect := fmt.Sprintf("[%g,%g]x[%g,%g]", f64(off), f64(off+8), f64(off+16), f64(off+24))
		if kind == 1 {
			rid := heap.RIDFromBytes(p[off+32:])
			fmt.Fprintf(w, "    rect=%s rid=%s\n", rect, rid)
		} else {
			fmt.Fprintf(w, "    rect=%s child=%s\n", rect, pageIDString(binary.LittleEndian.Uint32(p[off+32:])))
		}
	}
}

// hexdump writes b in canonical 16-bytes-per-line hex with an ASCII
// gutter, capped at 256 bytes (a full record fits; a page-sized raw
// dump would drown the rest of the output).
func hexdump(w io.Writer, indent string, b []byte) {
	const maxBytes = 256
	truncated := false
	if len(b) > maxBytes {
		b, truncated = b[:maxBytes], true
	}
	for off := 0; off < len(b); off += 16 {
		end := min(off+16, len(b))
		var hexCol, ascCol strings.Builder
		for i := off; i < end; i++ {
			fmt.Fprintf(&hexCol, "%02x ", b[i])
			if b[i] >= 0x20 && b[i] < 0x7f {
				ascCol.WriteByte(b[i])
			} else {
				ascCol.WriteByte('.')
			}
		}
		fmt.Fprintf(w, "%s%04x  %-48s %s\n", indent, off, hexCol.String(), ascCol.String())
	}
	if truncated {
		fmt.Fprintf(w, "%s... (%d more bytes)\n", indent, maxBytes)
	}
}
