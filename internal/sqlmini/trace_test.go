package sqlmini

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/executor"
)

// chromeDoc is the Chrome trace-event envelope used by the assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

// TestExplainTrace runs EXPLAIN (TRACE) over an index scan and checks
// the acceptance contract: the emitted JSON loads as valid Chrome
// trace-event format with parse, plan, and execute spans nested inside
// the statement root.
func TestExplainTrace(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR, id INT)`)
	mustExec(t, s, `CREATE INDEX w_trie ON w USING spgist (name spgist_trie)`)
	// Enough rows that the planner prefers the index over a seq scan.
	for base := 0; base < 2000; base += 500 {
		var vals []string
		for i := base; i < base+500; i++ {
			vals = append(vals, fmt.Sprintf("('word%04d', %d)", i, i))
		}
		mustExec(t, s, `INSERT INTO w VALUES `+strings.Join(vals, ", "))
	}
	mustExec(t, s, `ANALYZE w`)
	if plan := mustExec(t, s, `EXPLAIN SELECT * FROM w WHERE name = 'word0007'`).Plan; !strings.Contains(plan, "Index Scan") {
		t.Fatalf("setup did not produce an index plan: %s", plan)
	}

	res := mustExec(t, s, `EXPLAIN (TRACE) SELECT * FROM w WHERE name = 'word0007'`)
	if res.TraceJSON == nil {
		t.Fatal("EXPLAIN (TRACE) returned no TraceJSON")
	}
	if len(res.Rows) == 0 {
		t.Fatal("EXPLAIN (TRACE) returned no tree rows")
	}
	var doc chromeDoc
	if err := json.Unmarshal(res.TraceJSON, &doc); err != nil {
		t.Fatalf("TraceJSON does not parse as Chrome trace-event JSON: %v\n%s", err, res.TraceJSON)
	}
	spans := map[string][2]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("event %q has negative ts/dur: %g/%g", ev.Name, ev.Ts, ev.Dur)
		}
		if _, dup := spans[ev.Name]; !dup {
			spans[ev.Name] = [2]float64{ev.Ts, ev.Ts + ev.Dur}
		}
	}
	root, ok := spans["statement"]
	if !ok {
		t.Fatalf("no statement root span; have %v", spans)
	}
	for _, name := range []string{"parse", "plan"} {
		c, ok := spans[name]
		if !ok {
			t.Fatalf("missing %q span; have %v", name, spans)
		}
		if c[0] < root[0] || c[1] > root[1]+1 { // +1us slack for float rounding
			t.Errorf("%q [%g, %g] not inside statement [%g, %g]", name, c[0], c[1], root[0], root[1])
		}
	}
	var exec [2]float64
	execFound := false
	for name, iv := range spans {
		if strings.HasPrefix(name, "execute") {
			exec, execFound = iv, true
		}
	}
	if !execFound {
		t.Fatalf("missing execute span; have %v", spans)
	}
	if exec[0] < root[0] || exec[1] > root[1]+1 {
		t.Errorf("execute [%g, %g] not inside statement [%g, %g]", exec[0], exec[1], root[0], root[1])
	}
	// The index scan must have left a descent span.
	descent := false
	for name := range spans {
		if strings.HasPrefix(name, "index_descent") {
			descent = true
		}
	}
	if !descent {
		t.Errorf("indexed EXPLAIN (TRACE) recorded no index_descent span; have %v", spans)
	}
	// Plan ordering: parse ends before execute begins.
	if p := spans["parse"]; p[1] > exec[0]+1 {
		t.Errorf("parse ends at %g after execute begins at %g", p[1], exec[0])
	}
}

// TestTraceDir checks executor.Options.TraceDir writes one Chrome JSON
// file per statement without the statement asking for it.
func TestTraceDir(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	defer s.Close()
	mustExec(t, s, `CREATE TABLE w (id INT)`)
	mustExec(t, s, `INSERT INTO w VALUES (1), (2)`)
	mustExec(t, s, `SELECT * FROM w`)

	files, err := filepath.Glob(filepath.Join(dir, "trace_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("TraceDir holds %d trace files, want 3", len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var doc chromeDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s does not parse: %v", f, err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Errorf("%s has no trace events", f)
		}
	}
}

func TestShowActivity(t *testing.T) {
	s := newSession(t)
	defer s.Close()
	res := mustExec(t, s, `SHOW ACTIVITY`)
	if got := strings.Join(res.Columns, ","); got != "id,client,state,wait_event,statement,elapsed_ms" {
		t.Fatalf("SHOW ACTIVITY columns = %q", got)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SHOW ACTIVITY returned %d rows, want 1 (this session)", len(res.Rows))
	}
	row := res.Rows[0]
	if row[1].S != "local" {
		t.Errorf("client = %q, want local", row[1].S)
	}
	// The session observes itself mid-statement: active, running SHOW
	// ACTIVITY.
	if row[2].S != "active" {
		t.Errorf("state = %q, want active", row[2].S)
	}
	if row[4].S != "SHOW ACTIVITY" {
		t.Errorf("statement = %q, want SHOW ACTIVITY", row[4].S)
	}

	// A second session appears; closing it removes the row.
	s2 := NewSessionWithClient(s.DB, "peer")
	if n := len(mustExec(t, s, `SHOW ACTIVITY`).Rows); n != 2 {
		t.Fatalf("with peer registered got %d rows, want 2", n)
	}
	s2.Close()
	if n := len(mustExec(t, s, `SHOW ACTIVITY`).Rows); n != 1 {
		t.Fatalf("after peer close got %d rows, want 1", n)
	}
}

func TestShowStatsReset(t *testing.T) {
	s := newSession(t)
	defer s.Close()
	mustExec(t, s, `CREATE TABLE w (id INT)`)
	mustExec(t, s, `INSERT INTO w VALUES (1), (2), (3)`)
	mustExec(t, s, `SELECT * FROM w`)

	before := statsMap(t, mustExec(t, s, `SHOW STATS`))
	if before["exec_select_total"] == 0 || before["exec_tuples_inserted_total"] != 3 {
		t.Fatalf("pre-reset stats unexpectedly empty: %v", before)
	}

	res := mustExec(t, s, `SHOW STATS RESET`)
	if res.Msg != "STATS RESET" {
		t.Fatalf("SHOW STATS RESET msg = %q", res.Msg)
	}

	after := statsMap(t, mustExec(t, s, `SHOW STATS`))
	if after["exec_tuples_inserted_total"] != 0 {
		t.Errorf("exec_tuples_inserted_total = %d after reset, want 0", after["exec_tuples_inserted_total"])
	}
	// The SHOW STATS RESET + SHOW STATS statements themselves run after
	// the zeroing, so select/other counters restart from ~0, not the old
	// values.
	if after["exec_select_total"] >= before["exec_select_total"]+1 {
		t.Errorf("exec_select_total = %d after reset (before %d): counters did not restart",
			after["exec_select_total"], before["exec_select_total"])
	}
	// Storage-side sampler counters reset through the OnReset hook: the
	// pool accesses accumulated by the pre-reset traffic are gone (only
	// the post-reset SHOW statements, which touch no pool, remain).
	if before["pool_accesses_total"] == 0 {
		t.Fatalf("pre-reset pool_accesses_total = 0, traffic not counted")
	}
	if after["pool_accesses_total"] >= before["pool_accesses_total"] {
		t.Errorf("pool_accesses_total = %d after reset (before %d): pool stats did not reset",
			after["pool_accesses_total"], before["pool_accesses_total"])
	}
}
