package sqlmini

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/executor"
)

func newSession(t testing.TB) *Session {
	t.Helper()
	db, err := executor.Open(executor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(db)
}

func mustExec(t testing.TB, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// The paper's Table 6, nearly verbatim.
func TestPaperTable6Statements(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE word_data (name VARCHAR(50), id INT)`)
	mustExec(t, s, `CREATE INDEX sp_trie_index ON word_data USING spgist (name spgist_trie)`)
	mustExec(t, s, `INSERT INTO word_data VALUES ('random', 1), ('spade', 2), ('spark', 3), ('rondom', 4)`)

	res := mustExec(t, s, `SELECT * FROM word_data WHERE name = 'random'`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "random" {
		t.Fatalf("equality query: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT * FROM word_data WHERE name ?= 'r?nd?m'`)
	if len(res.Rows) != 2 {
		t.Fatalf("regular expression query returned %d rows, want 2", len(res.Rows))
	}

	mustExec(t, s, `CREATE TABLE point_data (p POINT, id INT)`)
	mustExec(t, s, `CREATE INDEX sp_kdtree_index ON point_data USING spgist (p spgist_kdtree)`)
	mustExec(t, s, `INSERT INTO point_data VALUES ('(0,1)', 1), ('(2,3)', 2), ('(7,8)', 3)`)

	res = mustExec(t, s, `SELECT * FROM point_data WHERE p @ '(0,1)'`)
	if len(res.Rows) != 1 {
		t.Fatalf("point equality: %d rows", len(res.Rows))
	}
	res = mustExec(t, s, `SELECT * FROM point_data WHERE p ^ '(0,0,5,5)'`)
	if len(res.Rows) != 2 {
		t.Fatalf("range query: %d rows, want 2", len(res.Rows))
	}
}

func TestPrefixAndSubstring(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR)`)
	mustExec(t, s, `CREATE INDEX w_sfx ON w USING spgist (name spgist_suffix)`)
	mustExec(t, s, `INSERT INTO w VALUES ('database'), ('databank'), ('bass'), ('abase')`)
	// 'bas' occurs in database, bass, abase — not in databank.
	res := mustExec(t, s, `SELECT * FROM w WHERE name @= 'bas'`)
	if len(res.Rows) != 3 {
		t.Fatalf("substring: %d rows, want 3", len(res.Rows))
	}
	res = mustExec(t, s, `SELECT * FROM w WHERE name #= 'data'`)
	if len(res.Rows) != 2 {
		t.Fatalf("prefix: %d rows, want 2", len(res.Rows))
	}
}

func TestOrderByDistanceLimit(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE pts (p POINT)`)
	mustExec(t, s, `CREATE INDEX pts_kd ON pts USING spgist (p)`)
	mustExec(t, s, `INSERT INTO pts VALUES ('(1,1)'), ('(2,2)'), ('(50,50)'), ('(51,51)'), ('(100,100)')`)
	res := mustExec(t, s, `SELECT * FROM pts ORDER BY p <-> '(50,50)' LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("NN limit: %d rows", len(res.Rows))
	}
	if res.Rows[0][0].P.X != 50 || res.Rows[1][0].P.X != 51 {
		t.Fatalf("NN order wrong: %v", res.Rows)
	}
	if len(res.Distances) != 2 || res.Distances[0] != 0 {
		t.Fatalf("distances: %v", res.Distances)
	}
	if !strings.Contains(res.Plan, "NN") {
		t.Fatalf("plan should be an NN scan: %s", res.Plan)
	}
}

func TestSegmentsWindow(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE segs (s SEGMENT)`)
	mustExec(t, s, `CREATE INDEX segs_pmr ON segs USING spgist (s spgist_pmr)`)
	mustExec(t, s, `INSERT INTO segs VALUES ('(1,1,9,9)'), ('(20,20,30,20)'), ('(50,1,50,99)')`)
	res := mustExec(t, s, `SELECT * FROM segs WHERE s && '(0,0,10,10)'`)
	if len(res.Rows) != 1 {
		t.Fatalf("window: %d rows, want 1", len(res.Rows))
	}
	res = mustExec(t, s, `SELECT * FROM segs WHERE s = '(20,20,30,20)'`)
	if len(res.Rows) != 1 {
		t.Fatalf("segment equality: %d rows", len(res.Rows))
	}
}

func TestExplain(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR)`)
	for i := 0; i < 50; i++ {
		mustExec(t, s, `INSERT INTO w VALUES ('filler`+string(rune('a'+i%26))+`')`)
	}
	res := mustExec(t, s, `EXPLAIN SELECT * FROM w WHERE name = 'fillera'`)
	if !strings.Contains(res.Plan, "Seq Scan") {
		t.Fatalf("expected seq scan without index: %s", res.Plan)
	}
	if len(res.Rows) != 0 {
		t.Fatal("EXPLAIN must not return rows")
	}
	mustExec(t, s, `CREATE INDEX w_bt ON w USING btree (name)`)
	// B+-tree equality on a 50-row table may still seqscan; force more
	// data so the index wins.
	for i := 0; i < 2000; i++ {
		mustExec(t, s, `INSERT INTO w VALUES ('bulk`+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+`')`)
	}
	// Fresh statistics let the planner see how rare 'fillera' actually is
	// (the lazily-sampled ndistinct estimate alone prices the heap
	// fetches too high now that MVCC headers fatten the heap pages).
	mustExec(t, s, `ANALYZE w`)
	res = mustExec(t, s, `EXPLAIN SELECT * FROM w WHERE name = 'fillera'`)
	if !strings.Contains(res.Plan, "Index Scan") || !strings.Contains(res.Plan, "btree_text") {
		t.Fatalf("expected btree index scan: %s", res.Plan)
	}
}

func TestDeleteStatement(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR)`)
	mustExec(t, s, `CREATE INDEX w_trie ON w USING spgist (name)`)
	mustExec(t, s, `INSERT INTO w VALUES ('keep'), ('drop'), ('drop'), ('keep2')`)
	res := mustExec(t, s, `DELETE FROM w WHERE name = 'drop'`)
	if res.Affected != 2 {
		t.Fatalf("DELETE affected %d, want 2", res.Affected)
	}
	res = mustExec(t, s, `SELECT * FROM w`)
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows remain, want 2", len(res.Rows))
	}
}

func TestSQLComments(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR) -- trailing comment`)
	mustExec(t, s, "INSERT INTO w VALUES ('x') -- comment\n;")
}

func TestStringEscapes(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR)`)
	mustExec(t, s, `INSERT INTO w VALUES ('it''s')`)
	res := mustExec(t, s, `SELECT * FROM w WHERE name = 'it''s'`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "it's" {
		t.Fatalf("escape handling: %v", res.Rows)
	}
}

func TestSyntaxErrors(t *testing.T) {
	s := newSession(t)
	for _, bad := range []string{
		`SELECT`,
		`CREATE`,
		`SELECT * FROM missing`,
		`CREATE TABLE t (x NOTATYPE)`,
		`INSERT INTO nowhere VALUES (1)`,
		`SELECT name FROM t`,
		`SELECT * FROM t WHERE`,
		`BOGUS STATEMENT`,
		`SELECT * FROM t WHERE x == 'y'`,
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("statement %q should fail", bad)
		}
	}
}

func TestLimitStopsScan(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR)`)
	for i := 0; i < 100; i++ {
		mustExec(t, s, `INSERT INTO w VALUES ('x')`)
	}
	res := mustExec(t, s, `SELECT * FROM w LIMIT 7`)
	if len(res.Rows) != 7 {
		t.Fatalf("LIMIT: %d rows", len(res.Rows))
	}
}

// CHECKPOINT flushes the pools (and, with a WAL attached, truncates the
// log); as a statement it must parse and confirm even in-memory.
func TestCheckpointStatement(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE ck (name VARCHAR, id INT)`)
	mustExec(t, s, `INSERT INTO ck VALUES ('a', 1)`)
	res := mustExec(t, s, `CHECKPOINT`)
	if res.Msg != "CHECKPOINT" {
		t.Fatalf("CHECKPOINT replied %q", res.Msg)
	}
	res = mustExec(t, s, `CHECKPOINT;`)
	if res.Msg != "CHECKPOINT" {
		t.Fatalf("CHECKPOINT with semicolon replied %q", res.Msg)
	}
	if res2 := mustExec(t, s, `SELECT * FROM ck`); len(res2.Rows) != 1 {
		t.Fatalf("rows after checkpoint: %d", len(res2.Rows))
	}
}

// SHOW TABLES / SHOW INDEXES answer from the persistent system catalog,
// and DROP TABLE / DROP INDEX remove the entries they report.
func TestShowAndDropStatements(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE word_data (name VARCHAR, id INT)`)
	mustExec(t, s, `CREATE INDEX wd_trie ON word_data USING spgist (name spgist_trie)`)
	mustExec(t, s, `INSERT INTO word_data VALUES ('random', 1), ('spade', 2)`)
	mustExec(t, s, `CREATE TABLE pts (p POINT)`)

	res := mustExec(t, s, `SHOW TABLES`)
	if len(res.Rows) != 2 {
		t.Fatalf("SHOW TABLES: %d rows", len(res.Rows))
	}
	// Catalog order is creation (OID) order.
	if res.Rows[0][0].S != "word_data" || res.Rows[1][0].S != "pts" {
		t.Fatalf("SHOW TABLES names: %v / %v", res.Rows[0][0].S, res.Rows[1][0].S)
	}
	if res.Rows[0][1].S != "name VARCHAR, id INT" {
		t.Fatalf("SHOW TABLES columns: %q", res.Rows[0][1].S)
	}
	if res.Rows[0][2].I != 2 {
		t.Fatalf("SHOW TABLES row count: %d", res.Rows[0][2].I)
	}

	res = mustExec(t, s, `SHOW INDEXES`)
	if len(res.Rows) != 1 {
		t.Fatalf("SHOW INDEXES: %d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].S != "wd_trie" || row[1].S != "word_data" || row[2].S != "name" ||
		row[3].S != "spgist" || row[4].S != "spgist_trie" || row[5].S != "true" {
		t.Fatalf("SHOW INDEXES row: %v", row)
	}

	if res := mustExec(t, s, `DROP INDEX wd_trie`); res.Msg != "DROP INDEX wd_trie" {
		t.Fatalf("DROP INDEX replied %q", res.Msg)
	}
	if res := mustExec(t, s, `SHOW INDEXES`); len(res.Rows) != 0 {
		t.Fatalf("index survived DROP INDEX: %v", res.Rows)
	}
	if res := mustExec(t, s, `DROP TABLE word_data`); res.Msg != "DROP TABLE word_data" {
		t.Fatalf("DROP TABLE replied %q", res.Msg)
	}
	if res := mustExec(t, s, `SHOW TABLES`); len(res.Rows) != 1 || res.Rows[0][0].S != "pts" {
		t.Fatalf("SHOW TABLES after drop: %v", res.Rows)
	}
	if _, err := s.Exec(`SELECT * FROM word_data`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	for _, bad := range []string{
		`DROP TABLE missing`,
		`DROP INDEX missing`,
		`DROP VIEW v`,
		`SHOW COLUMNS`,
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("statement %q should fail", bad)
		}
	}
}

// A malformed DROP must fail as a parse error BEFORE the drop executes —
// the destructive side effect must not precede the syntax check.
func TestMalformedDropDoesNotDrop(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (name VARCHAR)`)
	mustExec(t, s, `CREATE INDEX ti ON t USING spgist (name spgist_trie)`)
	if _, err := s.Exec(`DROP INDEX ti garbage`); err == nil {
		t.Fatal("malformed DROP INDEX accepted")
	}
	if res := mustExec(t, s, `SHOW INDEXES`); len(res.Rows) != 1 {
		t.Fatal("malformed DROP INDEX still dropped the index")
	}
	if _, err := s.Exec(`DROP TABLE t garbage`); err == nil {
		t.Fatal("malformed DROP TABLE accepted")
	}
	if res := mustExec(t, s, `SELECT * FROM t`); res == nil {
		t.Fatal("table unexpectedly gone")
	}
	// Well-formed drops (with and without semicolon) still work.
	mustExec(t, s, `DROP INDEX ti;`)
	mustExec(t, s, `DROP TABLE t`)
}

// Exec is a single-statement API: `DROP TABLE t; DROP TABLE u` must
// parse-fail without having dropped t.
func TestMultiStatementDropDoesNotHalfExecute(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (name VARCHAR)`)
	mustExec(t, s, `CREATE TABLE u (name VARCHAR)`)
	if _, err := s.Exec(`DROP TABLE t; DROP TABLE u`); err == nil {
		t.Fatal("multi-statement DROP accepted")
	}
	if res := mustExec(t, s, `SHOW TABLES`); len(res.Rows) != 2 {
		t.Fatalf("multi-statement DROP half-executed: %d tables left", len(res.Rows))
	}
}

// ANALYZE persists planner statistics in the system catalog; the bare
// form covers every table, the targeted form one table, and a reopened
// session plans identically from the persisted record with no heap scan.
func TestAnalyzeStatement(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(db)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR, id INT)`)
	mustExec(t, s, `CREATE INDEX wt ON w USING spgist (name spgist_trie)`)
	var vals []string
	for i := 0; i < 700; i++ {
		vals = append(vals, fmt.Sprintf("('common', %d)", i))
	}
	for i := 0; i < 300; i++ {
		vals = append(vals, fmt.Sprintf("('w%03d', %d)", i, 700+i))
	}
	mustExec(t, s, `INSERT INTO w VALUES `+strings.Join(vals, ", "))
	mustExec(t, s, `CREATE TABLE pts (p POINT)`)

	if res := mustExec(t, s, `ANALYZE w`); res.Msg != "ANALYZE w" {
		t.Fatalf("ANALYZE w replied %q", res.Msg)
	}
	if res := mustExec(t, s, `ANALYZE;`); res.Msg != "ANALYZE" {
		t.Fatalf("bare ANALYZE replied %q", res.Msg)
	}
	if got := db.Catalog().AllStats(); len(got) != 2 {
		t.Fatalf("ANALYZE persisted %d statistics records, want 2", len(got))
	}
	if _, err := s.Exec(`ANALYZE w garbage`); err == nil {
		t.Fatal("malformed ANALYZE accepted")
	}
	if _, err := s.Exec(`ANALYZE nope`); err == nil {
		t.Fatal("ANALYZE of unknown table accepted")
	}

	// Golden EXPLAIN pair: the skewed value seqscans, the rare one uses
	// the index.
	wantCommon := mustExec(t, s, `EXPLAIN SELECT * FROM w WHERE name = 'common'`).Plan
	wantRare := mustExec(t, s, `EXPLAIN SELECT * FROM w WHERE name = 'w007'`).Plan
	if !strings.HasPrefix(wantCommon, "Seq Scan on w") {
		t.Fatalf("common plan: %s", wantCommon)
	}
	if !strings.HasPrefix(wantRare, "Index Scan on w using wt (spgist_trie)") {
		t.Fatalf("rare plan: %s", wantRare)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = executor.Open(executor.Options{Dir: dir, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s = NewSession(db)
	tb, err := db.Table("w")
	if err != nil {
		t.Fatal(err)
	}
	tb.Heap.Pool().ResetStats()
	gotCommon := mustExec(t, s, `EXPLAIN SELECT * FROM w WHERE name = 'common'`).Plan
	gotRare := mustExec(t, s, `EXPLAIN SELECT * FROM w WHERE name = 'w007'`).Plan
	if st := tb.Heap.Pool().Stats(); st.Accesses != 0 {
		t.Fatalf("EXPLAIN after reopen read %d heap pages, want 0", st.Accesses)
	}
	if gotCommon != wantCommon || gotRare != wantRare {
		t.Fatalf("plans diverged across reopen:\n before %q / %q\n after  %q / %q",
			wantCommon, wantRare, gotCommon, gotRare)
	}
}

// TestMultiRowInsertIsOneStatement: the whole VALUES list parses before
// anything executes, so a malformed row anywhere — even after valid
// rows — inserts nothing, and a successful multi-row INSERT reports
// every row.
func TestMultiRowInsertIsOneStatement(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE w (name VARCHAR, id INT)")

	if res := mustExec(t, s, "INSERT INTO w VALUES ('a', 1), ('b', 2), ('c', 3)"); res.Affected != 3 {
		t.Fatalf("affected %d, want 3", res.Affected)
	}
	for _, bad := range []string{
		"INSERT INTO w VALUES ('d', 4), ('e')",         // arity, last row
		"INSERT INTO w VALUES ('d', 4), ('e', 5) junk", // trailing garbage
		"INSERT INTO w VALUES ('d', 4), ('e', 5), (",   // truncated
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Fatalf("%q did not fail", bad)
		}
	}
	res := mustExec(t, s, "SELECT * FROM w")
	if len(res.Rows) != 3 {
		t.Fatalf("failed statements leaked rows: %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0].S == "d" || row[0].S == "e" {
			t.Fatalf("row %v from a failed statement is visible", row)
		}
	}
}
