// Package sqlmini implements the small SQL dialect of the paper's
// Table 6, enough to create and query tables through the extensible
// access methods from a REPL or from code:
//
//	CREATE TABLE word_data (name VARCHAR, id INT);
//	CREATE INDEX sp_trie_index ON word_data USING spgist (name spgist_trie);
//	INSERT INTO word_data VALUES ('random', 1), ('spade', 2);
//	SELECT * FROM word_data WHERE name ?= 'r?nd?m';
//	SELECT * FROM point_data WHERE p ^ '(0,0,5,5)';
//	SELECT * FROM point_data ORDER BY p <-> '(50,50)' LIMIT 8;
//	DELETE FROM word_data WHERE name = 'random';
//	EXPLAIN SELECT * FROM word_data WHERE name = 'random';
package sqlmini

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , ; *
	tokOp    // = ?= #= @= @@ @ ^ && <-> < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// sqlOperators are matched longest-first.
var sqlOperators = []string{"<->", "@@", "?=", "#=", "@=", "&&", "<=", ">=", "=", "<", ">", "@", "^"}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL comment to end of line. (Checked before operators so
			// "--" is never read as two minus signs.)
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		case strings.ContainsRune("(),;*", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			if !l.lexOperator() {
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
			}
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// Doubled quote escapes a quote, SQL style.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string starting at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexOperator() bool {
	rest := l.src[l.pos:]
	for _, op := range sqlOperators {
		if strings.HasPrefix(rest, op) {
			l.emit(tokOp, op)
			l.pos += len(op)
			return true
		}
	}
	return false
}
