package sqlmini

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/executor"
	"repro/internal/wal"
)

// TestShowStateAndScrub: SHOW STATE reports ok on a healthy database
// and degraded (with the cause) once the log dies; SCRUB runs as a
// statement and reports its coverage; write statements while degraded
// surface the typed read-only error through SQL.
func TestShowStateAndScrub(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Crash()
	s := NewSession(db)
	defer s.Close()

	mustExec(t, s, `CREATE TABLE t (name VARCHAR, id INT)`)
	mustExec(t, s, `INSERT INTO t VALUES ('w', 1)`)

	res := mustExec(t, s, `SHOW STATE`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "ok" {
		t.Fatalf("SHOW STATE on healthy db: %v", res.Rows)
	}

	res = mustExec(t, s, `SCRUB`)
	if len(res.Rows) != 0 || !strings.Contains(res.Plan, "0 corrupt") {
		t.Fatalf("clean SCRUB: rows=%v plan=%q", res.Rows, res.Plan)
	}
	res = mustExec(t, s, `SCRUB t`)
	if !strings.Contains(res.Plan, "1 files") {
		t.Fatalf("SCRUB t plan: %q", res.Plan)
	}
	if _, err := s.Exec(`SCRUB nosuch`); err == nil {
		t.Fatal("SCRUB of unknown table succeeded")
	}

	// Kill the log; the next write degrades the database.
	db.WAL().InjectFault(fmt.Errorf("log device gone"))
	if _, err := s.Exec(`INSERT INTO t VALUES ('x', 2)`); err == nil {
		t.Fatal("insert on dead log succeeded")
	}
	res = mustExec(t, s, `SHOW STATE`)
	if res.Rows[0][0].S != "degraded" || !strings.Contains(res.Rows[0][1].S, "log device gone") {
		t.Fatalf("SHOW STATE after log death: %v", res.Rows)
	}
	var ro *executor.ErrReadOnly
	if _, err := s.Exec(`DELETE FROM t WHERE name = 'w'`); !errors.As(err, &ro) {
		t.Fatalf("DELETE while degraded: %v", err)
	}
	// Reads and SCRUB still work read-only.
	if res := mustExec(t, s, `SELECT * FROM t`); len(res.Rows) != 1 {
		t.Fatalf("SELECT while degraded: %v", res.Rows)
	}
	mustExec(t, s, `SCRUB`)
}

// TestFaultPanicCheck: the injected-panic hook fires on a matching
// statement — the raw material for the server's per-session panic
// recovery — and stays quiet for everything else.
func TestFaultPanicCheck(t *testing.T) {
	db, err := executor.Open(executor.Options{
		Faults: executor.FaultInjection{PanicOn: "BOOM_7f3a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	defer s.Close()
	mustExec(t, s, `CREATE TABLE t (name VARCHAR, id INT)`)

	defer func() {
		if recover() == nil {
			t.Fatal("poisoned statement did not panic")
		}
	}()
	s.Exec(`SELECT * FROM t -- BOOM_7f3a`)
}
