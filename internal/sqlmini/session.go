package sqlmini

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/obs"
)

// Result is the outcome of one statement.
type Result struct {
	// Columns and Rows are set for SELECT.
	Columns []string
	Rows    []catalog.Tuple
	// Distances accompanies Rows for ORDER BY ... <-> queries.
	Distances []float64
	// Plan is the chosen access path (always set for SELECT; the whole
	// point for EXPLAIN).
	Plan string
	// Affected counts rows for INSERT/DELETE.
	Affected int
	// Msg is a human-readable confirmation for DDL.
	Msg string
	// TraceJSON carries the statement's span timeline in Chrome
	// trace-event format (EXPLAIN (TRACE) only).
	TraceJSON []byte
}

// Session executes SQL against a database. Every session registers in
// the database's live activity table (SHOW ACTIVITY); callers that open
// many sessions should Close them so their entries are removed.
//
// A session holds at most one open transaction (BEGIN ... COMMIT /
// ROLLBACK); DML and SELECT statements between BEGIN and COMMIT run
// through the executor's *Tx entry points, so their changes stay
// invisible to every other session until COMMIT. A Session is not safe
// for concurrent use by multiple goroutines (the server gives each
// connection its own).
type Session struct {
	DB    *executor.DB
	entry *obs.SessionEntry
	tx    *executor.Txn
}

// NewSession wraps a database as a local (embedded) session.
func NewSession(db *executor.DB) *Session { return NewSessionWithClient(db, "local") }

// NewSessionWithClient wraps a database, labelling the session's
// activity entry with the client's identity (the server passes the
// connection's remote address).
func NewSessionWithClient(db *executor.DB, client string) *Session {
	return &Session{DB: db, entry: db.Activity().Register(client)}
}

// Close rolls back any open transaction and removes the session from
// the activity table. Using the session after Close is fine — it just
// no longer appears in SHOW ACTIVITY.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
	}
	s.entry.Close()
}

// InTxn reports whether the session has an open explicit transaction.
// The server uses it to arm the idle-in-transaction timeout.
func (s *Session) InTxn() bool { return s.tx != nil }

// Exec parses and runs one statement. The session's activity entry
// tracks it live (statement text, active/waiting state, wait event) for
// the duration. When the database was opened with a slow-query
// threshold, statements at or over it are logged with their text,
// duration, and buffer traffic.
func (s *Session) Exec(sql string) (*Result, error) {
	s.entry.Begin(sql)
	defer s.entry.End()
	threshold, logw := s.DB.SlowQueryConfig()
	if threshold <= 0 || logw == nil {
		return s.exec(sql)
	}
	before := s.DB.PoolStats()
	start := time.Now()
	res, err := s.exec(sql)
	if elapsed := time.Since(start); elapsed >= threshold {
		after := s.DB.PoolStats()
		status := "ok"
		if err != nil {
			status = "error: " + err.Error()
		}
		fmt.Fprintf(logw, "slow query (%.1f ms, hits=%d misses=%d, %s): %s\n",
			elapsed.Seconds()*1000, after.Hits-before.Hits,
			after.Misses-before.Misses, status, strings.TrimSpace(sql))
	}
	return res, err
}

func (s *Session) exec(sql string) (*Result, error) {
	s.DB.FaultPanicCheck(sql)
	start := time.Now()
	var tr *obs.Tracer
	if s.DB.TraceDir() != "" {
		// TraceDir traces every statement: arm before lexing so the
		// parse span lands on the timeline like any other.
		tr = obs.NewTracerStarted(start)
		defer s.writeTrace(tr)
		defer tr.Arm()()
	}
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	tr.AddRange("parse", "sql", start, time.Now())
	p := &parser{toks: toks, stmtStart: start, lexEnd: time.Now()}
	res, err := p.statement(s)
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return res, nil
}

// writeTrace finishes tr and writes its Chrome trace-event JSON as one
// file in the database's TraceDir. Best effort: a write failure loses
// the trace, never the statement.
func (s *Session) writeTrace(tr *obs.Tracer) {
	tr.Finish("statement")
	name := fmt.Sprintf("trace_%d_%d.json", s.entry.ID(), time.Now().UnixNano())
	os.WriteFile(filepath.Join(s.DB.TraceDir(), name), tr.ChromeJSON(), 0o644)
}

type parser struct {
	toks []token
	i    int
	// stmtStart/lexEnd bracket the lexing phase, recorded by exec so
	// EXPLAIN (TRACE) — which only learns it should trace after parsing
	// its prefix — can backfill the parse span onto its tracer.
	stmtStart time.Time
	lexEnd    time.Time
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) at(k tokenKind, text string) bool {
	t := p.peek()
	if t.kind != k {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	t := p.peek()
	if !p.at(k, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", k)
		}
		return t, fmt.Errorf("sql: expected %q, found %q", want, t.text)
	}
	p.i++
	return t, nil
}

func (p *parser) keyword(words ...string) error {
	for _, w := range words {
		if _, err := p.expect(tokIdent, w); err != nil {
			return err
		}
	}
	return nil
}

// noTxn rejects statements that cannot run inside an explicit
// transaction: DDL and maintenance take the exclusive statement lock
// and commit under their own markers, which a surrounding transaction's
// COMMIT/ROLLBACK could not undo.
func noTxn(s *Session, stmt string) error {
	if s.tx != nil {
		return fmt.Errorf("sql: %s cannot run inside a transaction", stmt)
	}
	return nil
}

func (p *parser) statement(s *Session) (*Result, error) {
	switch {
	case p.at(tokIdent, "BEGIN"):
		p.i++
		if !p.atStatementEnd() {
			return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
		}
		if s.tx != nil {
			return nil, fmt.Errorf("sql: already in a transaction")
		}
		tx, err := s.DB.Begin()
		if err != nil {
			return nil, err
		}
		s.tx = tx
		return &Result{Msg: "BEGIN"}, nil
	case p.at(tokIdent, "COMMIT"):
		p.i++
		if !p.atStatementEnd() {
			return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
		}
		if s.tx == nil {
			return nil, fmt.Errorf("sql: no transaction in progress")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		return &Result{Msg: "COMMIT"}, nil
	case p.at(tokIdent, "ROLLBACK"):
		p.i++
		if !p.atStatementEnd() {
			return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
		}
		if s.tx == nil {
			return nil, fmt.Errorf("sql: no transaction in progress")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Rollback(); err != nil {
			return nil, err
		}
		return &Result{Msg: "ROLLBACK"}, nil
	case p.at(tokIdent, "CREATE"):
		p.i++
		if p.accept(tokIdent, "TABLE") {
			if err := noTxn(s, "CREATE TABLE"); err != nil {
				return nil, err
			}
			return p.createTable(s)
		}
		if p.accept(tokIdent, "INDEX") {
			if err := noTxn(s, "CREATE INDEX"); err != nil {
				return nil, err
			}
			return p.createIndex(s)
		}
		return nil, fmt.Errorf("sql: CREATE must be followed by TABLE or INDEX")
	case p.at(tokIdent, "DROP"):
		p.i++
		if p.accept(tokIdent, "TABLE") {
			if err := noTxn(s, "DROP TABLE"); err != nil {
				return nil, err
			}
			return p.dropTable(s)
		}
		if p.accept(tokIdent, "INDEX") {
			if err := noTxn(s, "DROP INDEX"); err != nil {
				return nil, err
			}
			return p.dropIndex(s)
		}
		return nil, fmt.Errorf("sql: DROP must be followed by TABLE or INDEX")
	case p.at(tokIdent, "SHOW"):
		p.i++
		if p.accept(tokIdent, "TABLES") {
			return showTables(s)
		}
		if p.accept(tokIdent, "INDEXES") {
			return showIndexes(s)
		}
		if p.accept(tokIdent, "STATS") {
			return p.showStats(s)
		}
		if p.accept(tokIdent, "ACTIVITY") {
			return showActivity(s)
		}
		if p.accept(tokIdent, "STATE") {
			return showState(s)
		}
		return nil, fmt.Errorf("sql: SHOW must be followed by TABLES, INDEXES, STATS, ACTIVITY, or STATE")
	case p.at(tokIdent, "INSERT"):
		p.i++
		return p.insert(s)
	case p.at(tokIdent, "SELECT"):
		return p.selectStmt(s, modeExec)
	case p.at(tokIdent, "EXPLAIN"):
		p.i++
		if p.accept(tokPunct, "(") {
			if err := p.keyword("TRACE"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return p.explainTrace(s)
		}
		if p.accept(tokIdent, "ANALYZE") {
			return p.selectStmt(s, modeAnalyze)
		}
		return p.selectStmt(s, modeExplain)
	case p.at(tokIdent, "DELETE"):
		p.i++
		return p.deleteStmt(s)
	case p.at(tokIdent, "UPDATE"):
		p.i++
		return p.updateStmt(s)
	case p.at(tokIdent, "VACUUM"):
		p.i++
		if err := noTxn(s, "VACUUM"); err != nil {
			return nil, err
		}
		return p.vacuum(s)
	case p.at(tokIdent, "ANALYZE"):
		p.i++
		if err := noTxn(s, "ANALYZE"); err != nil {
			return nil, err
		}
		return p.analyze(s)
	case p.at(tokIdent, "SCRUB"):
		p.i++
		if err := noTxn(s, "SCRUB"); err != nil {
			return nil, err
		}
		return p.scrub(s)
	case p.at(tokIdent, "CHECKPOINT"):
		p.i++
		if err := noTxn(s, "CHECKPOINT"); err != nil {
			return nil, err
		}
		if err := s.DB.Checkpoint(); err != nil {
			return nil, err
		}
		return &Result{Msg: "CHECKPOINT"}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement starting with %q", p.peek().text)
	}
}

// CREATE TABLE name (col TYPE, ...)
func (p *parser) createTable(s *Session) (*Result, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []executor.Column
	for {
		cn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		tn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typ, err := catalog.TypeByName(tn.text)
		if err != nil {
			return nil, err
		}
		// Swallow an optional length like VARCHAR(50).
		if p.accept(tokPunct, "(") {
			if _, err := p.expect(tokNumber, ""); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, executor.Column{Name: cn.text, Type: typ})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := s.DB.CreateTable(name.text, cols); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("CREATE TABLE %s", name.text)}, nil
}

// CREATE INDEX name ON table USING method (col [opclass])
func (p *parser) createIndex(s *Session) (*Result, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if err := p.keyword("USING"); err != nil {
		return nil, err
	}
	method, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	opclass := ""
	if p.at(tokIdent, "") {
		oc, _ := p.expect(tokIdent, "")
		opclass = oc.text
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := s.DB.CreateIndex(name.text, table.text, col.text, strings.ToLower(method.text), opclass); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("CREATE INDEX %s", name.text)}, nil
}

// ANALYZE [table]: collect planner statistics from a block sample of
// the heap and persist them in the system catalog (bare ANALYZE covers
// every table). Persisted statistics survive reopens, so the first plan
// of the next session needs no heap scan.
func (p *parser) analyze(s *Session) (*Result, error) {
	name := ""
	if p.at(tokIdent, "") {
		tok, _ := p.expect(tokIdent, "")
		name = tok.text
	}
	if !p.atStatementEnd() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	if name == "" {
		if err := s.DB.AnalyzeAll(); err != nil {
			return nil, err
		}
		return &Result{Msg: "ANALYZE"}, nil
	}
	t, err := s.DB.Table(name)
	if err != nil {
		return nil, err
	}
	if err := t.Analyze(); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("ANALYZE %s", name)}, nil
}

// atStatementEnd reports whether the parser sits on a statement
// terminator. Statements with irreversible side effects check it before
// executing, so `DROP TABLE t garbage` fails as a parse error without
// having dropped anything (most statements parse-while-executing and
// rely on Exec's trailing-input check alone). Exec is a single-statement
// API, so a semicolon only terminates when nothing but EOF follows —
// `DROP TABLE t; DROP TABLE u` must not drop t and then parse-fail.
func (p *parser) atStatementEnd() bool {
	if p.at(tokEOF, "") {
		return true
	}
	return p.at(tokPunct, ";") && p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokEOF
}

// DROP TABLE name
func (p *parser) dropTable(s *Session) (*Result, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if !p.atStatementEnd() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	if err := s.DB.DropTable(name.text); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("DROP TABLE %s", name.text)}, nil
}

// DROP INDEX name
func (p *parser) dropIndex(s *Session) (*Result, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if !p.atStatementEnd() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	if err := s.DB.DropIndex(name.text); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("DROP INDEX %s", name.text)}, nil
}

// SHOW STATE: one row reporting whether the database is healthy ("ok")
// or read-only after a storage failure ("degraded"), with the cause and
// onset time in the detail column.
func showState(s *Session) (*Result, error) {
	state, detail := s.DB.State()
	return &Result{
		Columns: []string{"state", "detail"},
		Rows:    []catalog.Tuple{{catalog.NewText(state), catalog.NewText(detail)}},
	}, nil
}

// SCRUB [table]: online checksum verification. Reads every page of
// every checksummed relation file (or only the named table's heap) back
// from disk and verifies it, reporting one row per corrupt page. A
// clean scan returns no rows — the Msg carries the coverage summary
// either way via the plan line.
func (p *parser) scrub(s *Session) (*Result, error) {
	table := ""
	if p.at(tokIdent, "") {
		table = p.peek().text
		p.i++
	}
	if !p.atStatementEnd() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	sr, err := s.DB.Scrub(table)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"file", "page", "error"}}
	for _, is := range sr.Issues {
		res.Rows = append(res.Rows, catalog.Tuple{
			catalog.NewText(is.File),
			catalog.NewInt(int64(is.Page)),
			catalog.NewText(is.Err.Error()),
		})
	}
	res.Plan = fmt.Sprintf("SCRUB: %d files, %d pages checked, %d corrupt",
		sr.FilesChecked, sr.PagesChecked, len(sr.Issues))
	return res, nil
}

// SHOW TABLES: one row per table record of the persistent system
// catalog — name, column list, live row count, and heap file. The whole
// statement runs under the shared catalog lock, so no DDL intermediate
// state is observed; each row count is read through RowCountShared,
// which additionally takes that table's own shared lock — a concurrent
// writer holds only its table's writer lock, so reading the heap
// counter without it would race the writer's count update.
func showTables(s *Session) (*Result, error) {
	s.DB.ShareLock()
	defer s.DB.ShareUnlock()
	res := &Result{Columns: []string{"table", "columns", "rows", "file"}}
	for _, te := range s.DB.Catalog().Tables() {
		var cols []string
		for _, c := range te.Cols {
			cols = append(cols, fmt.Sprintf("%s %v", c.Name, c.Type))
		}
		rows := int64(0)
		if t, err := s.DB.Table(te.Name); err == nil {
			rows = t.RowCountShared()
		}
		res.Rows = append(res.Rows, catalog.Tuple{
			catalog.NewText(te.Name),
			catalog.NewText(strings.Join(cols, ", ")),
			catalog.NewInt(rows),
			catalog.NewText(te.File),
		})
	}
	return res, nil
}

// SHOW STATS [table]: name/value rows. Bare SHOW STATS renders the whole
// metrics registry — executor statement and plan counters, buffer-pool
// and WAL traffic, latency histogram quantiles; with a table name it
// reports that table's pg_stat-style row (live rows, heap pages, churn
// since ANALYZE, per-index sizes and scan counts).
func (p *parser) showStats(s *Session) (*Result, error) {
	res := &Result{Columns: []string{"name", "value"}}
	if p.accept(tokIdent, "RESET") {
		// SHOW STATS RESET: zero every cumulative metric — registry
		// counters and histograms plus, via the reset hooks, the
		// buffer-pool, disk, WAL, and wait-event counters behind the
		// storage sampler — so experiments measure deltas against a
		// running server without restarting it.
		s.DB.Obs().Reset()
		return &Result{Msg: "STATS RESET"}, nil
	}
	if p.at(tokIdent, "") {
		tok, _ := p.expect(tokIdent, "")
		t, err := s.DB.Table(tok.text)
		if err != nil {
			return nil, err
		}
		stats, err := t.Stats()
		if err != nil {
			return nil, err
		}
		for _, st := range stats {
			res.Rows = append(res.Rows, catalog.Tuple{
				catalog.NewText(st.Name), catalog.NewInt(st.Value)})
		}
		return res, nil
	}
	s.DB.Obs().Each(func(name string, value int64) {
		res.Rows = append(res.Rows, catalog.Tuple{
			catalog.NewText(name), catalog.NewInt(value)})
	})
	return res, nil
}

// SHOW ACTIVITY: the live session table — one row per registered
// session with its client, state (idle/active/waiting), current wait
// event, current statement, and statement elapsed time. Lock-free on
// the statement path: the snapshot reads per-entry atomics, so it never
// blocks (and is never blocked by) running statements.
func showActivity(s *Session) (*Result, error) {
	res := &Result{Columns: []string{"id", "client", "state", "wait_event", "statement", "elapsed_ms"}}
	for _, si := range s.DB.Activity().Snapshot() {
		res.Rows = append(res.Rows, catalog.Tuple{
			catalog.NewInt(si.ID),
			catalog.NewText(si.Client),
			catalog.NewText(si.State),
			catalog.NewText(si.WaitEvent),
			catalog.NewText(si.Statement),
			catalog.NewFloat(si.StmtElapsed.Seconds() * 1000),
		})
	}
	return res, nil
}

// EXPLAIN (TRACE) <stmt>: really execute the inner statement (rows
// discarded, like EXPLAIN ANALYZE) with a tracer armed, then render its
// span timeline — parse, plan, execute, index descents, page reads, WAL
// append, commit wait — as an indented tree. The raw Chrome trace-event
// JSON rides on Result.TraceJSON for programmatic use (and lands in
// TraceDir too, when configured).
func (p *parser) explainTrace(s *Session) (*Result, error) {
	tr := obs.NewTracerStarted(p.stmtStart)
	// Lexing happened before the EXPLAIN (TRACE) prefix was parsed;
	// backfill it as the parse span.
	tr.AddRange("parse", "sql", p.stmtStart, p.lexEnd)
	disarm := tr.Arm()
	_, err := p.statement(s)
	disarm()
	if err != nil {
		return nil, err
	}
	tr.Finish("statement")
	res := &Result{Columns: []string{"TRACE"}, TraceJSON: tr.ChromeJSON()}
	for _, ln := range tr.Tree() {
		res.Rows = append(res.Rows, catalog.Tuple{catalog.NewText(fmt.Sprintf(
			"%s%-24s start=%.3f ms dur=%.3f ms",
			strings.Repeat("  ", ln.Depth), ln.Name,
			ln.Start.Seconds()*1000, ln.Dur.Seconds()*1000))})
	}
	return res, nil
}

// SHOW INDEXES: one row per index record of the persistent system
// catalog — name, table, indexed column, access method, operator class,
// validity, and index file. Shared lock, like SHOW TABLES.
func showIndexes(s *Session) (*Result, error) {
	s.DB.ShareLock()
	defer s.DB.ShareUnlock()
	cat := s.DB.Catalog()
	res := &Result{Columns: []string{"index", "table", "column", "method", "opclass", "valid", "file"}}
	byOID := make(map[uint64]string)
	colName := func(tableOID uint64, ord int) string {
		tn, ok := byOID[tableOID]
		if !ok {
			return "?"
		}
		te, _ := cat.GetTable(tn)
		if ord < 0 || ord >= len(te.Cols) {
			return "?"
		}
		return te.Cols[ord].Name
	}
	for _, te := range cat.Tables() {
		byOID[te.OID] = te.Name
	}
	for _, ie := range cat.Indexes() {
		res.Rows = append(res.Rows, catalog.Tuple{
			catalog.NewText(ie.Name),
			catalog.NewText(byOID[ie.TableOID]),
			catalog.NewText(colName(ie.TableOID, ie.Column)),
			catalog.NewText(ie.Method),
			catalog.NewText(ie.OpClass),
			catalog.NewText(fmt.Sprintf("%v", ie.Valid)),
			catalog.NewText(ie.File),
		})
	}
	return res, nil
}

// INSERT INTO table VALUES (lit, ...), (...)
//
// Every row list of the statement is parsed first, then the whole set
// executes as ONE batched statement (Table.InsertBatch): the heap fills
// each page under a single pin, index maintenance is grouped, and the
// batch commits under one WAL marker and one fsync — all-or-nothing
// across a crash. A parse error anywhere in the VALUES list therefore
// inserts nothing.
func (p *parser) insert(s *Session) (*Result, error) {
	if err := p.keyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	t, err := s.DB.Table(name.text)
	if err != nil {
		return nil, err
	}
	if err := p.keyword("VALUES"); err != nil {
		return nil, err
	}
	var tups []catalog.Tuple
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var tup catalog.Tuple
		for ci := 0; ; ci++ {
			tok := p.peek()
			if tok.kind != tokString && tok.kind != tokNumber {
				return nil, fmt.Errorf("sql: expected literal, found %q", tok.text)
			}
			p.i++
			if ci >= len(t.Columns) {
				return nil, fmt.Errorf("sql: too many values for table %s", t.Name)
			}
			d, err := catalog.ParseLiteral(t.Columns[ci].Type, tok.text)
			if err != nil {
				return nil, err
			}
			tup = append(tup, d)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if len(tup) != len(t.Columns) {
			return nil, fmt.Errorf("sql: table %s expects %d values, got %d", t.Name, len(t.Columns), len(tup))
		}
		tups = append(tups, tup)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if !p.atStatementEnd() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	if _, err := t.InsertBatchTx(s.tx, tups); err != nil {
		return nil, err
	}
	return &Result{Affected: len(tups), Msg: fmt.Sprintf("INSERT %d", len(tups))}, nil
}

// where parses [WHERE col OP literal].
func (p *parser) where(t *executor.Table) (*executor.Pred, error) {
	if !p.accept(tokIdent, "WHERE") {
		return nil, nil
	}
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ci := -1
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, col.text) {
			ci = i
			break
		}
	}
	if ci < 0 {
		return nil, fmt.Errorf("sql: unknown column %q", col.text)
	}
	opTok := p.peek()
	if opTok.kind != tokOp {
		return nil, fmt.Errorf("sql: expected operator, found %q", opTok.text)
	}
	p.i++
	op, ok := catalog.LookupOperator(opTok.text, t.Columns[ci].Type)
	if !ok {
		return nil, fmt.Errorf("sql: no operator %q for type %v", opTok.text, t.Columns[ci].Type)
	}
	lit := p.peek()
	if lit.kind != tokString && lit.kind != tokNumber {
		return nil, fmt.Errorf("sql: expected literal, found %q", lit.text)
	}
	p.i++
	arg, err := catalog.ParseLiteral(op.Right, lit.text)
	if err != nil {
		return nil, err
	}
	return &executor.Pred{Column: ci, Op: opTok.text, Arg: arg}, nil
}

// selectMode distinguishes how a SELECT statement runs: executed
// normally, planned only (EXPLAIN), or executed with instrumentation
// and only the measurements returned (EXPLAIN ANALYZE).
type selectMode int

const (
	modeExec selectMode = iota
	modeExplain
	modeAnalyze
)

// analyzeResult renders EXPLAIN ANALYZE output, one "QUERY PLAN" row
// per line: the plan with the planner's cost and row estimates next to
// the actual run, then the buffer, WAL, and timing lines.
func analyzeResult(plan *executor.Plan, rs *executor.RunStats) *Result {
	res := &Result{Columns: []string{"QUERY PLAN"}}
	line := func(format string, args ...any) {
		res.Rows = append(res.Rows, catalog.Tuple{
			catalog.NewText(fmt.Sprintf(format, args...))})
	}
	ms := func(d time.Duration) float64 { return d.Seconds() * 1000 }
	line("%s (actual time=%.3f ms rows=%d scanned=%d)",
		plan.String(), ms(rs.Elapsed), rs.Rows, rs.Scanned)
	if rs.IndexPages >= 0 {
		line("  Buffers: hits=%d misses=%d index_pages=%d",
			rs.PoolHits, rs.PoolMisses, rs.IndexPages)
	} else {
		line("  Buffers: hits=%d misses=%d", rs.PoolHits, rs.PoolMisses)
	}
	line("  WAL: bytes=%d", rs.WALBytes)
	line("Execution Time: %.3f ms", ms(rs.Elapsed))
	return res
}

// SELECT * FROM t [WHERE ...] [ORDER BY col <-> lit] [LIMIT n]
func (p *parser) selectStmt(s *Session, mode selectMode) (*Result, error) {
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "*"); err != nil {
		return nil, fmt.Errorf("sql: only SELECT * is supported")
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	t, err := s.DB.Table(name.text)
	if err != nil {
		return nil, err
	}
	pred, err := p.where(t)
	if err != nil {
		return nil, err
	}
	// ORDER BY col <-> literal
	nnCol := ""
	nnCi := -1
	var nnArg catalog.Datum
	if p.accept(tokIdent, "ORDER") {
		if err := p.keyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "<->"); err != nil {
			return nil, err
		}
		lit := p.peek()
		if lit.kind != tokString && lit.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected literal after <->, found %q", lit.text)
		}
		p.i++
		ci := -1
		for i, c := range t.Columns {
			if strings.EqualFold(c.Name, col.text) {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", col.text)
		}
		// The <-> right operand has the column's own type (point-to-point,
		// string-to-string) except for segments, whose NN queries use a
		// point.
		argType := t.Columns[ci].Type
		if argType == catalog.Segment {
			argType = catalog.Point
		}
		nnArg, err = catalog.ParseLiteral(argType, lit.text)
		if err != nil {
			return nil, err
		}
		nnCol, nnCi = t.Columns[ci].Name, ci
	}
	limit := -1
	if p.accept(tokIdent, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		fmt.Sscanf(n.text, "%d", &limit)
	}

	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	res := &Result{Columns: cols}

	if nnCol != "" {
		if pred != nil {
			return nil, fmt.Errorf("sql: WHERE together with ORDER BY <-> is not supported")
		}
		// limit < 0 flows through as "all rows": SelectNN resolves it
		// against the row count inside its own lock window, so the
		// statement stays atomic against concurrent writers.
		switch mode {
		case modeExplain:
			plan, err := t.PlanNN(nnCi, nnArg, limit)
			if err != nil {
				return nil, err
			}
			res.Plan = plan.String()
			return res, nil
		case modeAnalyze:
			_, plan, rs, err := t.SelectNNAnalyzed(nnCol, nnArg, limit)
			if err != nil {
				return nil, err
			}
			return analyzeResult(plan, rs), nil
		}
		nns, plan, err := t.SelectNN(nnCol, nnArg, limit)
		if err != nil {
			return nil, err
		}
		res.Plan = plan.String()
		for _, nn := range nns {
			res.Rows = append(res.Rows, nn.Tuple)
			res.Distances = append(res.Distances, nn.Distance)
		}
		return res, nil
	}

	switch mode {
	case modeExplain:
		plan, err := t.PlanSelect(pred)
		if err != nil {
			return nil, err
		}
		res.Plan = plan.String()
		return res, nil
	case modeAnalyze:
		// Like PostgreSQL, the statement really executes (LIMIT
		// included) but the rows are discarded; only the measurements
		// come back.
		n := 0
		plan, rs, err := t.SelectAnalyzed(pred, func(executor.Row) bool {
			n++
			return limit < 0 || n < limit
		})
		if err != nil {
			return nil, err
		}
		return analyzeResult(plan, rs), nil
	}
	// One statement, one lock window: the plan reported is the plan the
	// scan actually ran (planning it separately could race a writer and
	// report a different access path than the one executed). Inside an
	// open transaction the scan reads through the transaction's snapshot,
	// so its own uncommitted writes are visible to it.
	plan, err := t.SelectTx(s.tx, pred, func(r executor.Row) bool {
		res.Rows = append(res.Rows, r.Tuple)
		return limit < 0 || len(res.Rows) < limit
	})
	if err != nil {
		return nil, err
	}
	res.Plan = plan.String()
	return res, nil
}

// DELETE FROM t [WHERE ...]
func (p *parser) deleteStmt(s *Session) (*Result, error) {
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	t, err := s.DB.Table(name.text)
	if err != nil {
		return nil, err
	}
	pred, err := p.where(t)
	if err != nil {
		return nil, err
	}
	n, err := t.DeleteWhereTx(s.tx, pred)
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n, Msg: fmt.Sprintf("DELETE %d", n)}, nil
}

// UPDATE t SET col = lit [, col = lit ...] [WHERE ...]
func (p *parser) updateStmt(s *Session) (*Result, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	t, err := s.DB.Table(name.text)
	if err != nil {
		return nil, err
	}
	if err := p.keyword("SET"); err != nil {
		return nil, err
	}
	var sets []executor.ColUpdate
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ci := -1
		for i, c := range t.Columns {
			if strings.EqualFold(c.Name, col.text) {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", col.text)
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		lit := p.peek()
		if lit.kind != tokString && lit.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected literal, found %q", lit.text)
		}
		p.i++
		val, err := catalog.ParseLiteral(t.Columns[ci].Type, lit.text)
		if err != nil {
			return nil, err
		}
		sets = append(sets, executor.ColUpdate{Column: ci, Value: val})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	pred, err := p.where(t)
	if err != nil {
		return nil, err
	}
	n, err := t.UpdateWhereTx(s.tx, pred, sets)
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n, Msg: fmt.Sprintf("UPDATE %d", n)}, nil
}

// VACUUM [table]: reclaim dead tuple versions (committed deletes and
// rolled-back inserts no snapshot can see) and their index entries;
// bare VACUUM covers every table.
func (p *parser) vacuum(s *Session) (*Result, error) {
	name := ""
	if p.at(tokIdent, "") {
		tok, _ := p.expect(tokIdent, "")
		name = tok.text
	}
	if !p.atStatementEnd() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	n, err := s.DB.Vacuum(name)
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n, Msg: fmt.Sprintf("VACUUM %d", n)}, nil
}
