package sqlmini

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
)

// statsMap flattens a SHOW STATS result for assertions.
func statsMap(t *testing.T, res *Result) map[string]int64 {
	t.Helper()
	if got := strings.Join(res.Columns, ","); got != "name,value" {
		t.Fatalf("SHOW STATS columns = %q", got)
	}
	m := make(map[string]int64, len(res.Rows))
	for _, row := range res.Rows {
		m[row[0].S] = row[1].I
	}
	return m
}

func TestShowStatsRegistry(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR, id INT)`)
	mustExec(t, s, `INSERT INTO w VALUES ('a', 1), ('b', 2), ('c', 3)`)
	mustExec(t, s, `SELECT * FROM w`)
	mustExec(t, s, `SELECT * FROM w WHERE id = 2`)

	m := statsMap(t, mustExec(t, s, `SHOW STATS`))
	if m["exec_select_total"] != 2 {
		t.Errorf("exec_select_total = %d, want 2", m["exec_select_total"])
	}
	if m["exec_insert_total"] != 1 {
		t.Errorf("exec_insert_total = %d, want 1", m["exec_insert_total"])
	}
	if m["exec_tuples_inserted_total"] != 3 {
		t.Errorf("exec_tuples_inserted_total = %d, want 3", m["exec_tuples_inserted_total"])
	}
	// 3 rows unqualified + 1 row filtered.
	if m["exec_rows_returned_total"] != 4 {
		t.Errorf("exec_rows_returned_total = %d, want 4", m["exec_rows_returned_total"])
	}
	if m["exec_plan_seqscan_total"] < 1 {
		t.Errorf("exec_plan_seqscan_total = %d, want >= 1", m["exec_plan_seqscan_total"])
	}
	// The storage sampler must contribute pool counters even in memory.
	if _, ok := m["pool_accesses_total"]; !ok {
		t.Errorf("pool_accesses_total missing from SHOW STATS: %v", m)
	}
	if m["pool_open"] < 2 { // catalog + heap
		t.Errorf("pool_open = %d, want >= 2", m["pool_open"])
	}
}

func TestShowStatsTable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR, id INT)`)
	mustExec(t, s, `CREATE INDEX w_trie ON w USING spgist (name spgist_trie)`)
	mustExec(t, s, `INSERT INTO w VALUES ('a', 1), ('b', 2), ('c', 3)`)

	m := statsMap(t, mustExec(t, s, `SHOW STATS w`))
	if m["rows"] != 3 {
		t.Errorf("rows = %d, want 3", m["rows"])
	}
	if m["heap_pages"] < 2 {
		t.Errorf("heap_pages = %d, want >= 2", m["heap_pages"])
	}
	if m["churn_since_analyze"] != 3 {
		t.Errorf("churn_since_analyze = %d, want 3", m["churn_since_analyze"])
	}
	if m["index_w_trie_entries"] != 3 {
		t.Errorf("index_w_trie_entries = %d, want 3", m["index_w_trie_entries"])
	}
	if m["index_w_trie_pages"] < 2 {
		t.Errorf("index_w_trie_pages = %d, want >= 2", m["index_w_trie_pages"])
	}

	if _, err := s.Exec(`SHOW STATS nope`); err == nil {
		t.Fatal("SHOW STATS on a missing table should fail")
	}
}

// TestExplainAnalyzeMatchesPageTrace pins the acceptance criterion: the
// index_pages number EXPLAIN ANALYZE reports for an index scan must
// agree with an independent PageTrace of the same scan.
func TestExplainAnalyzeMatchesPageTrace(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (name VARCHAR, id INT)`)
	mustExec(t, s, `CREATE INDEX w_trie ON w USING spgist (name spgist_trie)`)
	var vals []string
	for i := 0; i < 3000; i++ {
		vals = append(vals, fmt.Sprintf("('word%04d', %d)", i, i))
	}
	mustExec(t, s, `INSERT INTO w VALUES `+strings.Join(vals, ", "))
	mustExec(t, s, `ANALYZE w`)

	res := mustExec(t, s, `EXPLAIN ANALYZE SELECT * FROM w WHERE name = 'word0150'`)
	if len(res.Columns) != 1 || res.Columns[0] != "QUERY PLAN" {
		t.Fatalf("EXPLAIN ANALYZE columns = %v", res.Columns)
	}
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[0].S)
	}
	text := strings.Join(out, "\n")
	if !strings.Contains(out[0], "Index Scan on w using w_trie") {
		t.Fatalf("selective equality did not run as an index scan:\n%s", text)
	}
	if !strings.Contains(out[0], "actual time=") || !strings.Contains(out[0], "rows=1 scanned=1") {
		t.Errorf("missing actuals in %q", out[0])
	}
	if !strings.Contains(text, "Execution Time:") || !strings.Contains(text, "WAL: bytes=") {
		t.Errorf("missing trailer lines:\n%s", text)
	}
	var eaPages int
	if _, err := fmt.Sscanf(findLine(t, out, "index_pages="), "index_pages=%d", &eaPages); err != nil {
		t.Fatalf("no index_pages in:\n%s", text)
	}
	if eaPages <= 0 {
		t.Fatalf("index_pages = %d, want > 0", eaPages)
	}

	// Independent trace of the same scan, through the access-method API.
	tab, err := s.DB.Table("w")
	if err != nil {
		t.Fatal(err)
	}
	ix := tab.Indexes[0]
	ix.Idx.StartPageTrace()
	if err := tab.SelectIndexed(ix, &executor.Pred{Column: 0, Op: "=", Arg: catalog.NewText("word0150")}, func(executor.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if traced := ix.Idx.PageTraceCount(); traced != eaPages {
		t.Errorf("EXPLAIN ANALYZE index_pages=%d, independent PageTrace=%d", eaPages, traced)
	}
}

// findLine returns the whitespace-trimmed token of the first line
// containing sub, starting at sub.
func findLine(t *testing.T, lines []string, sub string) string {
	t.Helper()
	for _, l := range lines {
		if i := strings.Index(l, sub); i >= 0 {
			return l[i:]
		}
	}
	t.Fatalf("no line contains %q in %v", sub, lines)
	return ""
}

func TestExplainAnalyzeNN(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE pts (p POINT)`)
	mustExec(t, s, `CREATE INDEX pts_kd ON pts USING spgist (p)`)
	mustExec(t, s, `INSERT INTO pts VALUES ('(1,1)'), ('(2,2)'), ('(50,50)'), ('(51,51)'), ('(100,100)')`)
	res := mustExec(t, s, `EXPLAIN ANALYZE SELECT * FROM pts ORDER BY p <-> '(50,50)' LIMIT 2`)
	if len(res.Rows) == 0 || !strings.Contains(res.Rows[0][0].S, "rows=2") {
		t.Fatalf("EXPLAIN ANALYZE NN output: %v", res.Rows)
	}
}

func TestExplainAnalyzeNonSelect(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE w (id INT)`)
	if _, err := s.Exec(`EXPLAIN ANALYZE INSERT INTO w VALUES (1)`); err == nil {
		t.Fatal("EXPLAIN ANALYZE of non-SELECT should fail")
	}
}

// TestShowTablesConcurrentWithWriters pins the PR 5 data race: SHOW
// TABLES used to read each heap's row counter after dropping the shared
// statement lock, racing concurrent writers. Run with -race.
func TestShowTablesConcurrentWithWriters(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE a (id INT)`)
	mustExec(t, s, `CREATE TABLE b (id INT)`)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, tbl := range []string{"a", "b"} {
		wg.Add(1)
		go func(tbl string) {
			defer wg.Done()
			w := NewSession(s.DB)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (%d)`, tbl, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(tbl)
	}
	for i := 0; i < 50; i++ {
		res := mustExec(t, s, `SHOW TABLES`)
		if len(res.Rows) != 2 {
			t.Fatalf("SHOW TABLES returned %d rows", len(res.Rows))
		}
	}
	close(stop)
	wg.Wait()
	// Counts observed under the locks must now be exact.
	res := mustExec(t, s, `SHOW TABLES`)
	for _, row := range res.Rows {
		tab, err := s.DB.Table(row[0].S)
		if err != nil {
			t.Fatal(err)
		}
		if row[2].I != tab.RowCount() {
			t.Errorf("table %s: SHOW TABLES rows=%d, RowCount=%d", row[0].S, row[2].I, tab.RowCount())
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	db, err := executor.Open(executor.Options{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(db)
	mustExec(t, s, `CREATE TABLE w (id INT)`)
	mustExec(t, s, `INSERT INTO w VALUES (1)`)
	mustExec(t, s, `SELECT * FROM w`)
	logged := buf.String()
	if !strings.Contains(logged, "slow query (") || !strings.Contains(logged, "SELECT * FROM w") {
		t.Fatalf("slow-query log missing entries:\n%s", logged)
	}
	if !strings.Contains(logged, "hits=") || !strings.Contains(logged, "misses=") {
		t.Fatalf("slow-query log missing buffer counters:\n%s", logged)
	}

	// Zero threshold (the default) logs nothing.
	buf.Reset()
	db2, err := executor.Open(executor.Options{SlowQueryLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(db2)
	mustExec(t, s2, `CREATE TABLE w (id INT)`)
	mustExec(t, s2, `SELECT * FROM w`)
	if buf.Len() != 0 {
		t.Fatalf("slow-query log written with zero threshold:\n%s", buf.String())
	}
}
