// Package wal implements write-ahead logging and redo-based crash
// recovery for the storage substrate. PostgreSQL gives the paper's
// SP-GiST realization durability for free through its storage manager;
// this package supplies the equivalent for our reproduction: an
// append-only segmented log of CRC-checksummed, LSN-addressed records
// that is forced to stable storage before any dirty data page may be
// written in place (WAL-before-data).
//
// Two record families exist, mirroring PostgreSQL's full-page writes
// versus ordinary redo records:
//
//   - page-image records carry the complete after-image of one page
//     (zero-truncated, since fresh pages are mostly zeros) and are
//     replayed by overwriting the page;
//   - logical records describe one heap operation (insert or delete of
//     a record at a fixed page/slot) and are replayed through the
//     slotted-page layer, guarded by the pageLSN stamped in the
//     slotted-page header so replay is idempotent.
//
// The log is a sequence of segment files in one directory, each named
// by the LSN of its first record. A checkpoint rotates to a fresh
// segment, logs a checkpoint record, and deletes the older segments
// (every page they cover has been flushed by the caller), which bounds
// both log size and recovery time.
package wal

// LSN is a log sequence number: a monotonically increasing identifier
// assigned to every record when it is appended. LSN 0 is "no record".
type LSN uint64

// SyncMode controls when the Writer forces the log to stable storage.
type SyncMode int

const (
	// SyncCommit makes Commit force (group-committed) the log through
	// the operating system to the disk. This is the durable default.
	SyncCommit SyncMode = iota
	// SyncLazy leaves records buffered until a rotation, checkpoint,
	// explicit Sync, or Close. Faster, but commits made after the last
	// sync are lost on a crash (data pages are still protected: the
	// buffer pool syncs the log before writing any dirty page).
	SyncLazy
)

// RecordType discriminates the log record kinds.
type RecordType uint8

const (
	// RecPageImage is a full (zero-truncated) after-image of one page.
	RecPageImage RecordType = 1
	// RecHeapInsert is a logical heap-record insert at a fixed slot.
	RecHeapInsert RecordType = 2
	// RecHeapDelete is a logical heap-record delete.
	RecHeapDelete RecordType = 3
	// RecFileCreate records the creation of a table or index file, so
	// recovery can recreate empty files that never flushed a page.
	RecFileCreate RecordType = 4
	// RecCheckpoint marks a point where all data files were flushed
	// and synced; records before it are redundant.
	RecCheckpoint RecordType = 5
	// RecCommit marks a statement boundary: every record of the
	// statement precedes it. Recovery discards the records after the
	// last commit or checkpoint marker, so a log whose tail was torn
	// mid-statement never replays half a statement (heap row without
	// its index entries).
	RecCommit RecordType = 6
	// RecHeapBatchInsert is a logical insert of a whole page-worth of
	// heap records at fixed slots — one record per filled page instead
	// of one per tuple, the log shape of a multi-row INSERT.
	RecHeapBatchInsert RecordType = 7
	// RecHeapSetXmax stamps a deleting transaction ID into the xmax
	// field of the versioned tuple at (page, slot) — the log shape of an
	// MVCC DELETE, which leaves the tuple in place for older snapshots.
	RecHeapSetXmax RecordType = 8
	// RecHeapClearXmax zeroes a tuple's xmax — the undo of a SetXmax,
	// written when the deleting transaction rolls back.
	RecHeapClearXmax RecordType = 9
	// RecHeapMarkAborted sets the aborted infomask flag on a tuple whose
	// inserting transaction rolled back, so no snapshot ever sees it.
	RecHeapMarkAborted RecordType = 10
	// RecTxnCommit marks transaction Xid committed. Recovery collects
	// these; versioned tuples whose xmin never reached a RecTxnCommit
	// are flagged aborted after replay (and stamped xmaxes cleared).
	RecTxnCommit RecordType = 11
	// RecTxnAbort records that transaction Xid rolled back. Informational
	// — the compensating ClearXmax/MarkAborted records precede it, and
	// recovery treats any transaction without a commit record as aborted.
	RecTxnAbort RecordType = 12
)

// String names the record type for stats and debugging output.
func (t RecordType) String() string {
	switch t {
	case RecPageImage:
		return "page-image"
	case RecHeapInsert:
		return "heap-insert"
	case RecHeapDelete:
		return "heap-delete"
	case RecFileCreate:
		return "file-create"
	case RecCheckpoint:
		return "checkpoint"
	case RecCommit:
		return "commit"
	case RecHeapBatchInsert:
		return "heap-batch-insert"
	case RecHeapSetXmax:
		return "heap-set-xmax"
	case RecHeapClearXmax:
		return "heap-clear-xmax"
	case RecHeapMarkAborted:
		return "heap-mark-aborted"
	case RecTxnCommit:
		return "txn-commit"
	case RecTxnAbort:
		return "txn-abort"
	default:
		return "unknown"
	}
}

// Record is one decoded log record. Which fields are meaningful depends
// on Type: File/Page address a page for images and heap ops, Slot is
// the slot of a heap op, PageSize is the full page size an image must
// be expanded to, and Data holds the (truncated) image or the heap
// record bytes. Batch inserts carry parallel Slots/Recs instead of
// Slot/Data.
type Record struct {
	LSN      LSN
	Type     RecordType
	File     string
	Page     uint32
	Slot     uint16
	PageSize uint32
	Data     []byte
	// Slots/Recs are the per-tuple slot assignments and record bytes of
	// one RecHeapBatchInsert.
	Slots []uint16
	Recs  [][]byte
	// Xid is the transaction ID of a RecTxnCommit/RecTxnAbort marker, or
	// the deleting transaction stamped by a RecHeapSetXmax.
	Xid uint64
}
