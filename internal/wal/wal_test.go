package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func replayAll(t *testing.T, dir string) ([]*Record, ReplayStats) {
	t.Helper()
	var recs []*Record
	st, err := Replay(dir, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, st
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 512)
	copy(page, "page-image-content")
	l1, err := w.AppendPageImage("t.tbl", 7, page)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := w.AppendHeapInsert("t.tbl", 3, 12, []byte("tuple-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	l3, err := w.AppendHeapDelete("t.tbl", 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	l4, err := w.AppendFileCreate("idx.idx")
	if err != nil {
		t.Fatal(err)
	}
	if !(l1 == 1 && l2 == 2 && l3 == 3 && l4 == 4) {
		t.Fatalf("LSNs not sequential: %d %d %d %d", l1, l2, l3, l4)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, st := replayAll(t, dir)
	if len(recs) != 4 || st.Records != 4 || st.LastLSN != 4 {
		t.Fatalf("replay saw %d records (stats %+v)", len(recs), st)
	}
	img := recs[0]
	if img.Type != RecPageImage || img.File != "t.tbl" || img.Page != 7 || img.PageSize != 512 {
		t.Fatalf("bad image record: %+v", img)
	}
	want := truncateZeros(page)
	if !bytes.Equal(img.Data, want) {
		t.Fatalf("image data mismatch: %q vs %q", img.Data, want)
	}
	ins := recs[1]
	if ins.Type != RecHeapInsert || ins.Page != 3 || ins.Slot != 12 || string(ins.Data) != "tuple-bytes" {
		t.Fatalf("bad insert record: %+v", ins)
	}
	del := recs[2]
	if del.Type != RecHeapDelete || del.Page != 3 || del.Slot != 12 {
		t.Fatalf("bad delete record: %+v", del)
	}
	if recs[3].Type != RecFileCreate || recs[3].File != "idx.idx" {
		t.Fatalf("bad file-create record: %+v", recs[3])
	}
}

func TestTornTailIsTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.AppendHeapInsert("t.tbl", 1, uint16(i), []byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage half-frame at the tail.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, st := replayAll(t, dir)
	if len(recs) != 5 || !st.TornTail {
		t.Fatalf("want 5 records and a torn tail, got %d (stats %+v)", len(recs), st)
	}

	// Reopen: the tail must be truncated and the LSN sequence continue.
	w, err = OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.AppendFileCreate("x.tbl")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("LSN after torn-tail reopen = %d, want 6", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st = replayAll(t, dir)
	if len(recs) != 6 || st.TornTail {
		t.Fatalf("after truncation: %d records, torn=%v", len(recs), st.TornTail)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := w.AppendHeapInsert("t.tbl", uint32(i), 0, bytes.Repeat([]byte{1}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	recs, st := replayAll(t, dir)
	if len(recs) != n || st.Segments != len(segs) {
		t.Fatalf("replay across segments: %d records, stats %+v", len(recs), st)
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) || r.Page != uint32(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

func TestCheckpointRecyclesSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := w.AppendHeapInsert("t.tbl", uint32(i), 0, bytes.Repeat([]byte{1}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Segments()
	if before < 2 {
		t.Fatalf("expected multiple segments before checkpoint, got %d", before)
	}
	ck, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Segments(); got != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", got)
	}
	// Post-checkpoint appends land after the checkpoint record.
	if _, err := w.AppendFileCreate("y.tbl"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, dir)
	if st.Checkpoints != 1 || len(recs) != 2 {
		t.Fatalf("post-checkpoint log: %d records, %d checkpoints", len(recs), st.Checkpoints)
	}
	if recs[0].Type != RecCheckpoint || recs[0].LSN != ck {
		t.Fatalf("first surviving record is %+v, want checkpoint at %d", recs[0], ck)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn, err := w.AppendHeapInsert("t.tbl", uint32(g), uint16(i), []byte("r"))
				if err != nil {
					errs <- err
					return
				}
				if err := w.Sync(lsn); err != nil {
					errs <- err
					return
				}
				if w.DurableLSN() < lsn {
					errs <- fmt.Errorf("durable %d < synced %d", w.DurableLSN(), lsn)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Appends != workers*perWorker {
		t.Fatalf("appends = %d", st.Appends)
	}
	// Group commit: concurrent committers share fsyncs, so there must be
	// no more syncs than appends (usually far fewer under contention).
	if st.Syncs > st.Appends {
		t.Fatalf("more syncs (%d) than appends (%d)?", st.Syncs, st.Appends)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, dir)
	if len(recs) != workers*perWorker {
		t.Fatalf("replay saw %d records, want %d", len(recs), workers*perWorker)
	}
}

func TestReplayDetectsMiddleSegmentDamage(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := w.AppendHeapInsert("t.tbl", uint32(i), 0, bytes.Repeat([]byte{1}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Corrupt a byte in the middle segment.
	mid := segs[len(segs)/2].path
	b, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	b[20] ^= 0xFF
	if err := os.WriteFile(mid, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, func(*Record) error { return nil })
	if err == nil {
		t.Fatal("replay accepted a damaged middle segment")
	}
}

func TestOpenWriterOnEmptyDirStartsAtLSN1(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.AppendFileCreate("a.tbl")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 {
		t.Fatalf("first LSN = %d, want 1", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// The WAL append benchmark (BenchmarkWALAppend) lives in the top-level
// bench suite (bench_test.go) next to the paper's other per-operation
// benchmarks.

// TestGroupCommitSharesFsync is the deterministic guard for group
// commit's whole point — one fsync covering N committing statements.
// Every statement's record group (and marker) is appended first; only
// then do all sessions call Commit concurrently. The first committer to
// take the lock becomes the leader and syncs to the writer's appended
// horizon, which already covers every other statement, so exactly one
// fsync serves all N — an implementation that fsynced per commit would
// count N and fail.
func TestGroupCommitSharesFsync(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 8
	for g := 0; g < sessions; g++ {
		grp := NewGroup()
		grp.AddHeapInsert("t.tbl", uint32(g+1), 0, []byte("row"))
		grp.AddHeapInsert("t.tbl", uint32(g+1), 1, []byte("row2"))
		if _, _, err := w.AppendGroupCommit(grp); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Stats().Syncs
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Commit(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if syncs := w.Stats().Syncs - before; syncs != 1 {
		t.Fatalf("%d commits used %d fsyncs, want exactly 1 shared fsync", sessions, syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendGroupCommitIsAtomic: groups appended from concurrent
// goroutines must land contiguously — no other statement's records (or
// marker) interleave inside a group, so a marker only ever covers whole
// statements.
func TestAppendGroupCommitIsAtomic(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	const workers, groups, recsPer = 6, 30, 5
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < groups; b++ {
				grp := NewGroup()
				for r := 0; r < recsPer; r++ {
					// Page encodes the owning worker so replay can check
					// contiguity per group.
					grp.AddHeapInsert("t.tbl", uint32(g), uint16(r), []byte{byte(g)})
				}
				if _, _, err := w.AppendGroupCommit(grp); err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, dir)
	run := 0
	var runOwner uint32
	for _, r := range recs {
		switch r.Type {
		case RecHeapInsert:
			if run == 0 {
				runOwner = r.Page
			} else if r.Page != runOwner {
				t.Fatalf("group of worker %d interleaved with worker %d at LSN %d", runOwner, r.Page, r.LSN)
			}
			run++
		case RecCommit:
			if run != recsPer && run != 0 {
				t.Fatalf("marker at LSN %d covers a torn group of %d records", r.LSN, run)
			}
			run = 0
		}
	}
	total := 0
	for _, r := range recs {
		if r.Type == RecHeapInsert {
			total++
		}
	}
	if total != workers*groups*recsPer {
		t.Fatalf("replayed %d records, want %d", total, workers*groups*recsPer)
	}
}

// TestHeapBatchRecordRoundTrip: the batch-insert record's slots and
// tuples survive encode -> frame -> replay intact.
func TestHeapBatchRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{Mode: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	slots := []uint16{3, 0, 7}
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-record")}
	if _, err := w.AppendHeapBatchInsert("big.tbl", 42, slots, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	var batch *Record
	for _, r := range got {
		if r.Type == RecHeapBatchInsert {
			batch = r
		}
	}
	if batch == nil {
		t.Fatal("batch record not replayed")
	}
	if batch.File != "big.tbl" || batch.Page != 42 {
		t.Fatalf("addr %s/%d", batch.File, batch.Page)
	}
	if len(batch.Slots) != len(slots) {
		t.Fatalf("%d slots, want %d", len(batch.Slots), len(slots))
	}
	for i := range slots {
		if batch.Slots[i] != slots[i] || !bytes.Equal(batch.Recs[i], recs[i]) {
			t.Fatalf("tuple %d: slot %d rec %q, want slot %d rec %q",
				i, batch.Slots[i], batch.Recs[i], slots[i], recs[i])
		}
	}
}
