package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files are named wal-<firstLSN as 16 hex digits>.seg so a
// lexicographic sort is also an LSN sort.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segmentName(first LSN) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, uint64(first), segSuffix)
}

type segmentInfo struct {
	path  string
	first LSN
}

// listSegments returns the log segments in dir in LSN order. A missing
// directory is an empty log.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, perr := strconv.ParseUint(hex, 16, 64)
		if perr != nil {
			continue
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), first: LSN(first)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

var errStopScan = errors.New("wal: stop scan")

// TruncateAfter physically removes every record with an LSN greater
// than lsn from the log: whole segments past lsn are deleted and the
// segment containing lsn is cut just after it. Recovery calls this
// after discarding an uncommitted tail, so the discarded records cannot
// resurface (and be wrongly replayed as committed) at the next reopen.
// No Writer may have the log open during the call.
func TruncateAfter(dir string, lsn LSN) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.first > lsn {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: truncate: remove %s: %w", seg.path, err)
			}
			continue
		}
		// scanSegment stops at the frame whose callback errors and
		// returns the offset of that frame — the cut point.
		cut, _, err := scanSegment(seg.path, func(l LSN, _ []byte) error {
			if l > lsn {
				return errStopScan
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopScan) {
			return err
		}
		if size, serr := fileSize(seg.path); serr == nil && cut < size {
			if terr := os.Truncate(seg.path, cut); terr != nil {
				return fmt.Errorf("wal: truncate %s: %w", seg.path, terr)
			}
		}
	}
	return nil
}

// HasLog reports whether dir holds any log segments. Callers opening a
// database with logging disabled use it to refuse a directory whose log
// has not been recovered.
func HasLog(dir string) bool {
	segs, err := listSegments(dir)
	return err == nil && len(segs) > 0
}

// scanSegment iterates the valid records of one segment file, calling fn
// for each raw (lsn, body) pair. It returns the byte offset just past
// the last valid frame and the last valid LSN (0 if none). Scanning
// stops silently at the first torn or corrupt frame — distinguishing a
// crash-torn tail from damage is the caller's job.
func scanSegment(path string, fn func(lsn LSN, body []byte) error) (validEnd int64, last LSN, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: read %s: %w", path, err)
	}
	off := 0
	for {
		if off+frameHeaderSize > len(b) {
			break
		}
		size := int(binary.LittleEndian.Uint32(b[off:]))
		if size == 0 || size > maxRecordSize || off+frameHeaderSize+size > len(b) {
			break
		}
		crc := binary.LittleEndian.Uint32(b[off+4:])
		lsn := LSN(binary.LittleEndian.Uint64(b[off+8:]))
		body := b[off+frameHeaderSize : off+frameHeaderSize+size]
		if frameCRC(lsn, body) != crc {
			break
		}
		if fn != nil {
			if err := fn(lsn, body); err != nil {
				return int64(off), last, err
			}
		}
		last = lsn
		off += frameHeaderSize + size
	}
	return int64(off), last, nil
}
