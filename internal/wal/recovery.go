package wal

import (
	"fmt"
	"os"
)

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	Segments    int
	Records     int64
	Checkpoints int64
	FirstLSN    LSN
	LastLSN     LSN
	// TornTail is true when the final segment ended in an incomplete or
	// corrupt frame — the expected signature of a crash mid-append.
	TornTail bool
}

// Replay iterates every valid record of the log in LSN order, calling fn
// for each. A torn tail on the last segment stops replay cleanly (it is
// the normal result of a crash); a premature end on any earlier segment,
// or a gap in the LSN sequence, is reported as corruption. A missing or
// empty directory is an empty log.
func Replay(dir string, fn func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return st, err
	}
	st.Segments = len(segs)
	expect := LSN(0) // next expected LSN; 0 = not yet known
	for i, seg := range segs {
		if expect != 0 && seg.first != expect {
			return st, fmt.Errorf("wal: segment %s starts at LSN %d, expected %d (log damaged)", seg.path, seg.first, expect)
		}
		validEnd, lastLSN, err := scanSegment(seg.path, func(lsn LSN, body []byte) error {
			if expect != 0 && lsn != expect {
				return fmt.Errorf("wal: record LSN %d, expected %d (log damaged)", lsn, expect)
			}
			rec, derr := decodeRecord(lsn, body)
			if derr != nil {
				return derr
			}
			if st.FirstLSN == 0 {
				st.FirstLSN = lsn
			}
			st.LastLSN = lsn
			st.Records++
			if rec.Type == RecCheckpoint {
				st.Checkpoints++
			}
			expect = lsn + 1
			return fn(rec)
		})
		if err != nil {
			return st, err
		}
		// scanSegment stops at the first invalid frame. That is fine on
		// the last segment (torn tail); on earlier segments it means a
		// later segment exists past the damage.
		if i < len(segs)-1 {
			if fi, statErr := fileSize(seg.path); statErr == nil && validEnd < fi {
				return st, fmt.Errorf("wal: segment %s damaged at offset %d", seg.path, validEnd)
			}
		} else if fi, statErr := fileSize(seg.path); statErr == nil && validEnd < fi {
			st.TornTail = true
		}
		if lastLSN != 0 {
			expect = lastLSN + 1
		} else if expect == 0 {
			expect = seg.first
		}
	}
	return st, nil
}

// LastMarker returns the LSN of the log's last commit or checkpoint
// marker (0 when none), validating frames but not decoding payloads —
// the cheap pre-pass recovery uses to find the replay horizon.
func LastMarker(dir string) (LSN, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	var last LSN
	for _, seg := range segs {
		if _, _, err := scanSegment(seg.path, func(lsn LSN, body []byte) error {
			if t := RecordType(body[0]); t == RecCommit || t == RecCheckpoint {
				if lsn > last {
					last = lsn
				}
			}
			return nil
		}); err != nil {
			return 0, err
		}
	}
	return last, nil
}

func fileSize(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
