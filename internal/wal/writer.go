package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// DefaultSegmentBytes is the soft size limit of one segment file.
const DefaultSegmentBytes = 4 << 20

// bufFlushThreshold bounds the in-memory append buffer: past this size
// the buffer is handed to the operating system (without an fsync).
const bufFlushThreshold = 1 << 20

// Options configure a Writer.
type Options struct {
	// SegmentBytes is the soft size limit of one segment file;
	// defaults to DefaultSegmentBytes.
	SegmentBytes int64
	// Mode controls Commit durability; defaults to SyncCommit.
	Mode SyncMode
}

// Stats counts Writer activity. GroupCommits counts atomic group
// appends that carried a commit marker, GroupRecords the records they
// contained (GroupRecords/GroupCommits is the mean commit batch size),
// and SyncWaits the committers whose durability was covered by another
// leader's fsync — the group-commit sharing factor. Recycles counts
// segment files deleted by checkpoints.
type Stats struct {
	Appends       int64
	AppendedBytes int64
	Syncs         int64
	SyncWaits     int64
	Rotations     int64
	Checkpoints   int64
	GroupCommits  int64
	GroupRecords  int64
	Recycles      int64
}

// Writer is the append side of the log. Appends are buffered in memory
// and assigned LSNs immediately; Sync (and Commit under SyncCommit)
// forces the buffer to stable storage with group commit: concurrent
// committers elect one leader whose single write+fsync covers every
// record appended so far, and the rest wait on its result.
//
// All methods are safe for concurrent use.
type Writer struct {
	mu   sync.Mutex
	cond *sync.Cond

	dir  string
	opts Options

	f          *os.File
	segFirst   LSN   // first LSN of the current segment (its name)
	segWritten int64 // bytes of the current segment handed to the OS

	buf       []byte // encoded frames not yet written
	nextLSN   LSN
	appended  LSN // last LSN appended
	durable   LSN // last LSN known to be on stable storage
	committed LSN // last commit/checkpoint marker appended
	ckpt      LSN // last checkpoint record (0 = log complete since open)
	syncing   bool
	closed    bool
	err       error // sticky I/O error; the log is unusable once set

	stats Stats

	// waits joins group commit to the engine's wait-event layer
	// (AttachObs, once, before the writer is shared; nil when the WAL
	// runs standalone): the leader's write+fsync is charged to
	// wal_fsync, a follower parked on the leader's fsync to
	// wal_commit_wait. Both sites already block — the timestamps cost
	// nothing the group commit had not already paid.
	waits *obs.WaitSet
}

// OpenWriter opens (creating if necessary) the log in dir and positions
// appends after the last valid record, truncating any torn tail left by
// a crash.
func OpenWriter(dir string, opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	w := &Writer{dir: dir, opts: opts}
	w.cond = sync.NewCond(&w.mu)

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		w.nextLSN = 1
		if err := w.openSegment(w.nextLSN); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	validEnd, lastLSN, err := scanSegment(last.path, nil)
	if err != nil {
		return nil, err
	}
	// Only a checkpoint ever deletes segments, and the checkpoint record
	// is always the first record of the segment the rotation opened — so
	// the oldest surviving segment starting past LSN 1 names the last
	// checkpoint. An oldest segment at LSN 1 means no checkpoint ever
	// recycled anything: the log is complete since its creation.
	if segs[0].first > 1 {
		w.ckpt = segs[0].first
	}
	if lastLSN == 0 {
		// The segment was created but no record survived.
		w.nextLSN = last.first
	} else {
		w.nextLSN = lastLSN + 1
	}
	if err := os.Truncate(last.path, validEnd); err != nil {
		return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", last.path, err)
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", last.path, err)
	}
	w.f = f
	w.segFirst = last.first
	w.segWritten = validEnd
	w.appended = w.nextLSN - 1
	w.durable = w.appended
	// Records surviving from previous runs are settled (recovery has
	// already judged them); only records appended from here on are
	// gated by the commit-marker discipline.
	w.committed = w.appended
	return w, nil
}

// openSegment creates (or reopens) the segment whose first record is lsn
// and makes it current. Caller holds w.mu (or is in OpenWriter).
func (w *Writer) openSegment(lsn LSN) error {
	path := filepath.Join(w.dir, segmentName(lsn))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", path, err)
	}
	w.f = f
	w.segFirst = lsn
	w.segWritten = 0
	return nil
}

// Mode returns the configured sync mode.
func (w *Writer) Mode() SyncMode { return w.opts.Mode }

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.dir }

// AppendedLSN returns the LSN of the most recently appended record.
func (w *Writer) AppendedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// DurableLSN returns the highest LSN known to be on stable storage.
func (w *Writer) DurableLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// Err returns the writer's sticky I/O error, if any. Once an append or
// sync fails the log is unusable — every later operation returns this
// same error — and the engine above degrades to read-only.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// InjectFault sets the sticky error directly — the test hook for
// degraded-mode coverage (a full disk or dead log device without a
// real one). nil does not clear an existing error: the sticky contract
// is one-way.
func (w *Writer) InjectFault(err error) {
	if err == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

// Stats returns a snapshot of the writer counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// ResetStats zeroes the writer counters (SHOW STATS RESET).
func (w *Writer) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats = Stats{}
}

// AttachObs joins group commit to a wait-event set. Must be called
// before the writer is shared across goroutines.
func (w *Writer) AttachObs(ws *obs.WaitSet) { w.waits = ws }

// Segments returns the number of segment files currently on disk.
func (w *Writer) Segments() int {
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0
	}
	return len(segs)
}

// AppendPageImage logs the full after-image of one page (zero-truncated
// on the wire) and returns its LSN.
func (w *Writer) AppendPageImage(file string, page uint32, pageData []byte) (LSN, error) {
	img := truncateZeros(pageData)
	return w.append(RecPageImage, encodePageImage(file, page, uint32(len(pageData)), img))
}

// AppendHeapInsert logs a logical heap insert of rec at (page, slot).
func (w *Writer) AppendHeapInsert(file string, page uint32, slot uint16, rec []byte) (LSN, error) {
	return w.append(RecHeapInsert, encodeHeapOp(file, page, slot, rec))
}

// AppendHeapDelete logs a logical heap delete at (page, slot).
func (w *Writer) AppendHeapDelete(file string, page uint32, slot uint16) (LSN, error) {
	return w.append(RecHeapDelete, encodeHeapOp(file, page, slot, nil))
}

// AppendHeapBatchInsert logs the logical insert of a page-worth of heap
// records (parallel slot/record slices) as one record.
func (w *Writer) AppendHeapBatchInsert(file string, page uint32, slots []uint16, recs [][]byte) (LSN, error) {
	return w.append(RecHeapBatchInsert, encodeHeapBatch(file, page, slots, recs))
}

// AppendHeapSetXmax logs stamping xid as the deleting transaction of the
// tuple at (page, slot).
func (w *Writer) AppendHeapSetXmax(file string, page uint32, slot uint16, xid uint64) (LSN, error) {
	return w.append(RecHeapSetXmax, encodeHeapSetXmax(file, page, slot, xid))
}

// AppendHeapClearXmax logs zeroing the xmax of the tuple at (page, slot).
func (w *Writer) AppendHeapClearXmax(file string, page uint32, slot uint16) (LSN, error) {
	return w.append(RecHeapClearXmax, encodeHeapOp(file, page, slot, nil))
}

// AppendHeapMarkAborted logs setting the aborted flag on the tuple at
// (page, slot).
func (w *Writer) AppendHeapMarkAborted(file string, page uint32, slot uint16) (LSN, error) {
	return w.append(RecHeapMarkAborted, encodeHeapOp(file, page, slot, nil))
}

// Group is a set of records one statement appends atomically: no other
// appender's record (in particular no other statement's commit marker)
// can interleave with a group's records in the log. This is what lets
// statements on different tables run and commit concurrently while
// recovery keeps its positional rule — everything before the last
// marker is committed — because a marker can only ever cover whole
// statements. Build the group during or after statement execution, then
// hand it to AppendGroup or AppendGroupCommit.
type Group struct {
	types    []RecordType
	payloads [][]byte
}

// NewGroup returns an empty record group.
func NewGroup() *Group { return &Group{} }

// Len reports the number of records staged in the group.
func (g *Group) Len() int { return len(g.types) }

func (g *Group) add(typ RecordType, payload []byte) int {
	g.types = append(g.types, typ)
	g.payloads = append(g.payloads, payload)
	return len(g.types) - 1
}

// AddPageImage stages a full (zero-truncated) page image, returning its
// index into the LSN slice AppendGroup returns.
func (g *Group) AddPageImage(file string, page uint32, pageData []byte) int {
	img := truncateZeros(pageData)
	return g.add(RecPageImage, encodePageImage(file, page, uint32(len(pageData)), img))
}

// AddHeapInsert stages a logical heap insert.
func (g *Group) AddHeapInsert(file string, page uint32, slot uint16, rec []byte) int {
	return g.add(RecHeapInsert, encodeHeapOp(file, page, slot, rec))
}

// AddHeapDelete stages a logical heap delete.
func (g *Group) AddHeapDelete(file string, page uint32, slot uint16) int {
	return g.add(RecHeapDelete, encodeHeapOp(file, page, slot, nil))
}

// AddHeapBatchInsert stages a page-worth of heap inserts as one record.
func (g *Group) AddHeapBatchInsert(file string, page uint32, slots []uint16, recs [][]byte) int {
	return g.add(RecHeapBatchInsert, encodeHeapBatch(file, page, slots, recs))
}

// AddHeapSetXmax stages stamping xid as the deleting transaction of the
// tuple at (page, slot).
func (g *Group) AddHeapSetXmax(file string, page uint32, slot uint16, xid uint64) int {
	return g.add(RecHeapSetXmax, encodeHeapSetXmax(file, page, slot, xid))
}

// AddHeapClearXmax stages zeroing the xmax of the tuple at (page, slot).
func (g *Group) AddHeapClearXmax(file string, page uint32, slot uint16) int {
	return g.add(RecHeapClearXmax, encodeHeapOp(file, page, slot, nil))
}

// AddHeapMarkAborted stages setting the aborted flag on the tuple at
// (page, slot).
func (g *Group) AddHeapMarkAborted(file string, page uint32, slot uint16) int {
	return g.add(RecHeapMarkAborted, encodeHeapOp(file, page, slot, nil))
}

// AddTxnCommit stages a transaction-commit record for xid.
func (g *Group) AddTxnCommit(xid uint64) int {
	return g.add(RecTxnCommit, encodeXid(xid))
}

// AddTxnAbort stages a transaction-abort record for xid.
func (g *Group) AddTxnAbort(xid uint64) int {
	return g.add(RecTxnAbort, encodeXid(xid))
}

// AppendGroup appends every record of g contiguously (no concurrent
// appender interleaves) and returns their LSNs, index-aligned with the
// group's Add* calls. The records are buffered, not yet durable.
func (w *Writer) AppendGroup(g *Group) ([]LSN, error) {
	lsns, _, err := w.appendGroup(g, false)
	return lsns, err
}

// AppendGroupCommit appends every record of g contiguously, immediately
// followed by a commit marker — one statement's records and its
// boundary as a single atomic log append. It returns the record LSNs
// and the marker's LSN. Durability still requires Commit (or Sync),
// whose group-commit protocol lets any number of concurrently
// committing statements share one fsync.
func (w *Writer) AppendGroupCommit(g *Group) ([]LSN, LSN, error) {
	return w.appendGroup(g, true)
}

func (w *Writer) appendGroup(g *Group, commit bool) ([]LSN, LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, 0, fmt.Errorf("wal: append on closed log")
	}
	if w.err != nil {
		return nil, 0, w.err
	}
	var lsns []LSN
	if g != nil && len(g.types) > 0 {
		lsns = make([]LSN, len(g.types))
		for i, typ := range g.types {
			lsn, err := w.appendLocked(typ, g.payloads[i])
			if err != nil {
				return nil, 0, err
			}
			lsns[i] = lsn
		}
	}
	var marker LSN
	if commit {
		lsn, err := w.appendLocked(RecCommit, nil)
		if err != nil {
			return nil, 0, err
		}
		marker = lsn
		if lsn > w.committed {
			w.committed = lsn
		}
		w.stats.GroupCommits++
		w.stats.GroupRecords += int64(len(lsns))
	}
	return lsns, marker, nil
}

// AppendFileCreate logs the creation of a data file.
func (w *Writer) AppendFileCreate(file string) (LSN, error) {
	return w.append(RecFileCreate, appendName(nil, file))
}

// AppendCommit logs a statement-boundary marker. Recovery replays only
// up to the last marker, so every record of a statement must be
// appended before its commit marker.
func (w *Writer) AppendCommit() (LSN, error) {
	lsn, err := w.append(RecCommit, nil)
	if err == nil {
		w.mu.Lock()
		if lsn > w.committed {
			w.committed = lsn
		}
		w.mu.Unlock()
	}
	return lsn, err
}

// CheckpointLSN returns the LSN of the last checkpoint record — the
// horizon the surviving log is complete back to. 0 means no checkpoint
// has ever recycled segments, so the log reaches back to its creation.
// The buffer pool uses it for full-page-write decisions: a checksummed
// page's first mutation after a checkpoint must log a full image, or a
// write of the page torn at a crash could not be rebuilt (the records
// describing its older contents were recycled with the pre-checkpoint
// segments).
func (w *Writer) CheckpointLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ckpt
}

// CommittedLSN returns the LSN of the last commit or checkpoint marker
// appended (0 when no marker has been appended since open). The buffer
// pool uses it for its no-steal rule: a page whose latest record is
// past this horizon holds uncommitted state and must not be written in
// place.
func (w *Writer) CommittedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.committed
}

func (w *Writer) append(typ RecordType, payload []byte) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	if w.err != nil {
		return 0, w.err
	}
	return w.appendLocked(typ, payload)
}

// appendLocked encodes and buffers one record. Caller holds w.mu and
// has checked closed/err.
func (w *Writer) appendLocked(typ RecordType, payload []byte) (LSN, error) {
	frameLen := int64(frameHeaderSize + 1 + len(payload))
	cur := w.segWritten + int64(len(w.buf))
	if cur > 0 && cur+frameLen > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return 0, err
		}
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.buf = append(w.buf, encodeFrame(lsn, typ, payload)...)
	w.appended = lsn
	w.stats.Appends++
	w.stats.AppendedBytes += frameLen
	if len(w.buf) >= bufFlushThreshold && !w.syncing {
		if err := w.writeBufLocked(); err != nil {
			w.err = err
			return 0, err
		}
	}
	return lsn, nil
}

// writeBufLocked hands the append buffer to the OS (no fsync). Caller
// holds w.mu and must have checked !w.syncing.
func (w *Writer) writeBufLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.f.Write(w.buf)
	w.segWritten += int64(n)
	if err != nil {
		return fmt.Errorf("wal: write segment: %w", err)
	}
	w.buf = w.buf[:0]
	return nil
}

// rotateLocked syncs and closes the current segment, then starts a new
// one whose name is the next LSN. Caller holds w.mu.
func (w *Writer) rotateLocked() error {
	for w.syncing {
		w.cond.Wait()
	}
	if err := w.writeBufLocked(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment: %w", err)
	}
	w.durable = w.appended
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	if err := w.openSegment(w.nextLSN); err != nil {
		return err
	}
	w.stats.Rotations++
	w.cond.Broadcast()
	return nil
}

// Sync makes every record up to target durable. It returns once the
// durable LSN reaches target (clamped to the last appended LSN), either
// because this call led a write+fsync batch or because a concurrent
// leader's batch covered it (group commit).
func (w *Writer) Sync(target LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked(target)
}

func (w *Writer) syncLocked(target LSN) error {
	if target > w.appended {
		target = w.appended
	}
	for w.err == nil && w.durable < target {
		if w.syncing {
			w.stats.SyncWaits++
			// A follower: the leader's in-flight fsync may cover us.
			// The park is charged to wal_commit_wait — the group-commit
			// sharing factor, seen as time instead of a count.
			fm := w.waits.Begin(obs.WaitWALCommitWait)
			w.cond.Wait()
			w.waits.End(fm)
			continue
		}
		w.syncing = true
		upTo := w.appended
		buf := w.buf
		w.buf = nil
		f := w.f
		w.mu.Unlock()
		// The leader's write+fsync covers every record appended so far;
		// its duration is the wal_fsync wait event and — when the leading
		// statement is traced — a wal_fsync span on its timeline.
		lm := w.waits.Begin(obs.WaitWALFsync)
		sp := obs.Current().StartSpan("wal_fsync", "wal")
		var err error
		var n int
		if len(buf) > 0 {
			n, err = f.Write(buf)
		}
		if err == nil {
			err = f.Sync()
		}
		sp.End()
		w.waits.End(lm)
		w.mu.Lock()
		w.syncing = false
		w.segWritten += int64(n)
		if err != nil {
			w.err = fmt.Errorf("wal: sync: %w", err)
		} else {
			if upTo > w.durable {
				w.durable = upTo
			}
			w.stats.Syncs++
		}
		w.cond.Broadcast()
	}
	return w.err
}

// Commit makes everything appended so far durable under SyncCommit and
// is a no-op under SyncLazy (beyond reporting a sticky error).
func (w *Writer) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.Mode == SyncCommit {
		return w.syncLocked(w.appended)
	}
	return w.err
}

// Checkpoint marks a recovery point: the caller must already have
// flushed and synced every data file. The log rotates to a fresh
// segment whose first record is the checkpoint record, forces it to
// disk, and deletes the older segments. Returns the checkpoint LSN.
func (w *Writer) Checkpoint() (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: checkpoint on closed log")
	}
	if err := w.syncLocked(w.appended); err != nil {
		return 0, err
	}
	if err := w.rotateLocked(); err != nil {
		w.err = err
		return 0, err
	}
	// Capture the checkpoint segment's identity now: syncLocked below
	// releases the lock during its fsync, and a concurrent appender may
	// rotate to a further segment, advancing w.segFirst past it.
	ckSegFirst := w.segFirst
	lsn := w.nextLSN
	w.nextLSN++
	w.buf = append(w.buf, encodeFrame(lsn, RecCheckpoint, nil)...)
	w.appended = lsn
	w.committed = lsn
	w.ckpt = lsn
	w.stats.Appends++
	if err := w.syncLocked(lsn); err != nil {
		return 0, err
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	for _, s := range segs {
		if s.first < ckSegFirst {
			if err := os.Remove(s.path); err != nil {
				return 0, fmt.Errorf("wal: recycle %s: %w", s.path, err)
			}
			w.stats.Recycles++
		}
	}
	w.stats.Checkpoints++
	return lsn, nil
}

// Close makes the log durable and closes the current segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	err := w.syncLocked(w.appended)
	for w.syncing {
		w.cond.Wait()
	}
	w.closed = true
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	return err
}
