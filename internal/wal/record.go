package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk frame layout, little-endian:
//
//	+---------+---------+---------+------+------------- - -
//	| size:4  | crc:4   | lsn:8   | type | payload ...
//	+---------+---------+---------+------+------------- - -
//
// size counts the body (type byte + payload); crc is CRC-32C over the
// lsn bytes and the body, so a record cannot be accepted at the wrong
// position. A size of zero or a checksum mismatch marks the torn tail
// of the log (or corruption) and stops replay.
const (
	frameHeaderSize = 16
	// maxRecordSize bounds one record body; larger sizes are treated
	// as corruption during replay.
	maxRecordSize = 1 << 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func frameCRC(lsn LSN, body []byte) uint32 {
	var l [8]byte
	binary.LittleEndian.PutUint64(l[:], uint64(lsn))
	crc := crc32.Update(0, crcTable, l[:])
	return crc32.Update(crc, crcTable, body)
}

// encodeFrame serializes a record body under lsn into a wire frame.
func encodeFrame(lsn LSN, typ RecordType, payload []byte) []byte {
	body := make([]byte, 1+len(payload))
	body[0] = byte(typ)
	copy(body[1:], payload)
	frame := make([]byte, frameHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], frameCRC(lsn, body))
	binary.LittleEndian.PutUint64(frame[8:], uint64(lsn))
	copy(frame[frameHeaderSize:], body)
	return frame
}

// Payload layouts (after the type byte):
//
//	page image:  nameLen:2 name pageID:4 pageSize:4 image...
//	heap insert: nameLen:2 name pageID:4 slot:2 rec...
//	heap delete: nameLen:2 name pageID:4 slot:2
//	batch insert: nameLen:2 name pageID:4 n:2 { slot:2 len:4 rec }*n
//	set xmax:    nameLen:2 name pageID:4 slot:2 xid:8
//	clear xmax:  nameLen:2 name pageID:4 slot:2
//	mark aborted: nameLen:2 name pageID:4 slot:2
//	txn commit/abort: xid:8
//	file create: nameLen:2 name
//	checkpoint:  (empty)

func appendName(b []byte, name string) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(name)))
	b = append(b, n[:]...)
	return append(b, name...)
}

func encodePageImage(file string, page uint32, pageSize uint32, image []byte) []byte {
	b := appendName(make([]byte, 0, 10+len(file)+len(image)), file)
	b = binary.LittleEndian.AppendUint32(b, page)
	b = binary.LittleEndian.AppendUint32(b, pageSize)
	return append(b, image...)
}

func encodeHeapOp(file string, page uint32, slot uint16, rec []byte) []byte {
	b := appendName(make([]byte, 0, 8+len(file)+len(rec)), file)
	b = binary.LittleEndian.AppendUint32(b, page)
	b = binary.LittleEndian.AppendUint16(b, slot)
	return append(b, rec...)
}

func encodeHeapSetXmax(file string, page uint32, slot uint16, xid uint64) []byte {
	b := encodeHeapOp(file, page, slot, nil)
	return binary.LittleEndian.AppendUint64(b, xid)
}

func encodeXid(xid uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), xid)
}

func encodeHeapBatch(file string, page uint32, slots []uint16, recs [][]byte) []byte {
	sz := 8 + len(file)
	for _, r := range recs {
		sz += 6 + len(r)
	}
	b := appendName(make([]byte, 0, sz), file)
	b = binary.LittleEndian.AppendUint32(b, page)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(slots)))
	for i, r := range recs {
		b = binary.LittleEndian.AppendUint16(b, slots[i])
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r)))
		b = append(b, r...)
	}
	return b
}

func decodeName(b []byte) (name string, rest []byte, err error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("wal: truncated file name length")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("wal: truncated file name")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// decodeRecord parses a frame body (type byte + payload) into a Record.
// The Data slice is copied, so the caller may reuse the input buffer.
func decodeRecord(lsn LSN, body []byte) (*Record, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("wal: empty record body")
	}
	r := &Record{LSN: lsn, Type: RecordType(body[0])}
	payload := body[1:]
	var err error
	switch r.Type {
	case RecCheckpoint, RecCommit:
		return r, nil
	case RecFileCreate:
		r.File, _, err = decodeName(payload)
		return r, err
	case RecPageImage:
		r.File, payload, err = decodeName(payload)
		if err != nil {
			return nil, err
		}
		if len(payload) < 8 {
			return nil, fmt.Errorf("wal: truncated page-image header")
		}
		r.Page = binary.LittleEndian.Uint32(payload)
		r.PageSize = binary.LittleEndian.Uint32(payload[4:])
		r.Data = append([]byte(nil), payload[8:]...)
		if int(r.PageSize) < len(r.Data) {
			return nil, fmt.Errorf("wal: page image larger than its page size")
		}
		return r, nil
	case RecHeapInsert, RecHeapDelete, RecHeapSetXmax, RecHeapClearXmax, RecHeapMarkAborted:
		r.File, payload, err = decodeName(payload)
		if err != nil {
			return nil, err
		}
		if len(payload) < 6 {
			return nil, fmt.Errorf("wal: truncated heap-op header")
		}
		r.Page = binary.LittleEndian.Uint32(payload)
		r.Slot = binary.LittleEndian.Uint16(payload[4:])
		switch r.Type {
		case RecHeapInsert:
			r.Data = append([]byte(nil), payload[6:]...)
		case RecHeapSetXmax:
			if len(payload) < 14 {
				return nil, fmt.Errorf("wal: truncated set-xmax record")
			}
			r.Xid = binary.LittleEndian.Uint64(payload[6:])
		}
		return r, nil
	case RecTxnCommit, RecTxnAbort:
		if len(payload) < 8 {
			return nil, fmt.Errorf("wal: truncated transaction marker")
		}
		r.Xid = binary.LittleEndian.Uint64(payload)
		return r, nil
	case RecHeapBatchInsert:
		r.File, payload, err = decodeName(payload)
		if err != nil {
			return nil, err
		}
		if len(payload) < 6 {
			return nil, fmt.Errorf("wal: truncated heap-batch header")
		}
		r.Page = binary.LittleEndian.Uint32(payload)
		n := int(binary.LittleEndian.Uint16(payload[4:]))
		payload = payload[6:]
		r.Slots = make([]uint16, 0, n)
		r.Recs = make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			if len(payload) < 6 {
				return nil, fmt.Errorf("wal: truncated heap-batch tuple header")
			}
			slot := binary.LittleEndian.Uint16(payload)
			rl := int(binary.LittleEndian.Uint32(payload[2:]))
			payload = payload[6:]
			if len(payload) < rl {
				return nil, fmt.Errorf("wal: truncated heap-batch tuple")
			}
			r.Slots = append(r.Slots, slot)
			r.Recs = append(r.Recs, append([]byte(nil), payload[:rl]...))
			payload = payload[rl:]
		}
		return r, nil
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
}

// truncateZeros trims trailing zero bytes from a page image. Fresh pages
// are almost entirely zeros, so this keeps meta-page and small-page
// records a few dozen bytes instead of a full page.
func truncateZeros(page []byte) []byte {
	i := len(page)
	for i > 0 && page[i-1] == 0 {
		i--
	}
	return page[:i]
}
