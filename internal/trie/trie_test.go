package trie

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/storage"
)

func newTree(t testing.TB, opts ...Option) *core.Tree {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(8192), 128)
	tr, err := core.Create(bp, New(opts...))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(i int) heap.RID { return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)} }

func randWord(r *rand.Rand, maxLen int) string {
	n := 1 + r.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// buildRandom loads n random words (paper distribution: length uniform in
// [1,15], alphabet a-z) and returns them.
func buildRandom(t testing.TB, tr *core.Tree, n int, seed int64) []string {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	words := make([]string, n)
	for i := 0; i < n; i++ {
		words[i] = randWord(r, 15)
		if err := tr.Insert(words[i], rid(i)); err != nil {
			t.Fatalf("insert %q: %v", words[i], err)
		}
	}
	return words
}

func lookup(t testing.TB, tr *core.Tree, op, arg string) []heap.RID {
	t.Helper()
	rids, err := tr.Lookup(&core.Query{Op: op, Arg: arg})
	if err != nil {
		t.Fatal(err)
	}
	return rids
}

func TestExactMatchAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	words := buildRandom(t, tr, 5000, 1)
	r := rand.New(rand.NewSource(2))
	probe := func(w string) {
		want := 0
		for _, x := range words {
			if x == w {
				want++
			}
		}
		if got := len(lookup(t, tr, "=", w)); got != want {
			t.Fatalf("= %q: got %d, want %d", w, got, want)
		}
	}
	for i := 0; i < 200; i++ {
		probe(words[r.Intn(len(words))]) // present
		probe(randWord(r, 15))           // mostly absent
	}
}

func TestPrefixMatchAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	words := buildRandom(t, tr, 5000, 3)
	r := rand.New(rand.NewSource(4))
	probe := func(p string) {
		want := 0
		for _, x := range words {
			if strings.HasPrefix(x, p) {
				want++
			}
		}
		if got := len(lookup(t, tr, "#=", p)); got != want {
			t.Fatalf("#= %q: got %d, want %d", p, got, want)
		}
	}
	for i := 0; i < 100; i++ {
		w := words[r.Intn(len(words))]
		probe(w[:1+r.Intn(len(w))])
	}
	probe("") // empty prefix matches everything
	probe("zzzz")
}

func TestRegexMatchAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	words := buildRandom(t, tr, 5000, 8)
	r := rand.New(rand.NewSource(5))
	probe := func(pat string) {
		want := 0
		for _, x := range words {
			if MatchPattern(x, pat) {
				want++
			}
		}
		if got := len(lookup(t, tr, "?=", pat)); got != want {
			t.Fatalf("?= %q: got %d, want %d", pat, got, want)
		}
	}
	for i := 0; i < 200; i++ {
		// Take a stored word and punch wildcards into random positions,
		// including the leading position the paper calls out as the
		// B+-tree's weakness.
		w := words[r.Intn(len(words))]
		b := []byte(w)
		for j := range b {
			if r.Intn(3) == 0 {
				b[j] = '?'
			}
		}
		probe(string(b))
	}
	probe("?????")
	probe("?")
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		w, p string
		want bool
	}{
		{"random", "random", true},
		{"random", "r?nd?m", true},
		{"random", "?andom", true},
		{"random", "random?", false}, // length mismatch
		{"random", "r?ndoX", false},
		{"", "", true},
		{"a", "?", true},
	}
	for _, c := range cases {
		if got := MatchPattern(c.w, c.p); got != c.want {
			t.Errorf("MatchPattern(%q, %q) = %v, want %v", c.w, c.p, got, c.want)
		}
	}
}

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "xyz", 3},
		{"abc", "ab", 1},
		{"abc", "abcdef", 3},
		{"", "xyz", 3},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q, %q) = %g, want %g", c.a, c.b, got, c.want)
		}
		if got := Distance(c.b, c.a); got != c.want {
			t.Errorf("Distance symmetric (%q, %q) = %g, want %g", c.b, c.a, got, c.want)
		}
	}
}

func TestNNOrderingMatchesBruteForce(t *testing.T) {
	tr := newTree(t)
	words := buildRandom(t, tr, 3000, 6)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		q := randWord(r, 15)
		k := 1 + r.Intn(32)
		keys, _, dists, err := tr.NN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != k {
			t.Fatalf("NN returned %d results, want %d", len(keys), k)
		}
		// Distances must be non-decreasing and correct.
		for i, kv := range keys {
			if got := Distance(kv.(string), q); got != dists[i] {
				t.Fatalf("NN dist mismatch for %q: %g vs %g", kv, dists[i], got)
			}
			if i > 0 && dists[i] < dists[i-1] {
				t.Fatalf("NN order violated at %d: %g < %g", i, dists[i], dists[i-1])
			}
		}
		// The k-th reported distance must equal the brute-force k-th
		// smallest distance.
		all := make([]float64, len(words))
		for i, w := range words {
			all[i] = Distance(w, q)
		}
		sort.Float64s(all)
		for i := range dists {
			if dists[i] != all[i] {
				t.Fatalf("trial %d: NN #%d dist %g, brute force %g (q=%q)", trial, i, dists[i], all[i], q)
			}
		}
	}
}

func TestIncrementalNNCursorIsLazy(t *testing.T) {
	tr := newTree(t)
	buildRandom(t, tr, 2000, 8)
	cur, err := tr.NNScan("hello")
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i := 0; i < 50; i++ {
		_, _, d, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor exhausted after %d results", i)
		}
		if d < prev {
			t.Fatalf("distance regressed: %g after %g", d, prev)
		}
		prev = d
	}
}

func TestDeleteThenSearch(t *testing.T) {
	tr := newTree(t)
	words := buildRandom(t, tr, 2000, 9)
	// Delete every third word.
	deleted := map[int]bool{}
	for i := 0; i < len(words); i += 3 {
		n, err := tr.Delete(words[i], rid(i))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("delete %q removed %d", words[i], n)
		}
		deleted[i] = true
	}
	for i, w := range words {
		rids := lookup(t, tr, "=", w)
		found := false
		for _, rd := range rids {
			if rd == rid(i) {
				found = true
			}
		}
		if deleted[i] && found {
			t.Fatalf("deleted word %q (rid %d) still found", w, i)
		}
		if !deleted[i] && !found {
			t.Fatalf("surviving word %q (rid %d) lost", w, i)
		}
	}
}

func TestPathShrinkProducesShallowTree(t *testing.T) {
	// TreeShrink must collapse the single-child chain of words sharing a
	// long common prefix into few nodes.
	tr := newTree(t, WithBucketSize(2))
	words := []string{
		"internationalization",
		"internationalizing",
		"internationalism",
		"international",
		"internal",
	}
	for i, w := range words {
		if err := tr.Insert(w, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Without path shrink this tree would be >20 levels deep (one per
	// character); with TreeShrink a handful of nodes suffice.
	if st.MaxNodeHeight > 6 {
		t.Fatalf("path shrink ineffective: height %d", st.MaxNodeHeight)
	}
	for i, w := range words {
		rids := lookup(t, tr, "=", w)
		if len(rids) != 1 || rids[0] != rid(i) {
			t.Fatalf("lookup %q after shrink = %v", w, rids)
		}
	}
}

func TestManyDuplicates(t *testing.T) {
	tr := newTree(t, WithBucketSize(4))
	for i := 0; i < 3000; i++ {
		if err := tr.Insert("same", rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(lookup(t, tr, "=", "same")); got != 3000 {
		t.Fatalf("duplicates: got %d, want 3000", got)
	}
	// And they participate in prefix scans.
	if got := len(lookup(t, tr, "#=", "sa")); got != 3000 {
		t.Fatalf("prefix over duplicates: got %d", got)
	}
}

func TestEmptyStringKey(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert("", rid(0)); err != nil {
		t.Fatal(err)
	}
	buildRandom(t, tr, 500, 10)
	if got := len(lookup(t, tr, "=", "")); got != 1 {
		t.Fatalf("empty key: got %d, want 1", got)
	}
}

func TestStatsReflectPaperShape(t *testing.T) {
	tr := newTree(t)
	buildRandom(t, tr, 20000, 11)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Words are at most 15 chars; with shrinking, node height is bounded
	// by 16 levels.
	if st.MaxNodeHeight > 16 {
		t.Fatalf("node height %d exceeds word-length bound", st.MaxNodeHeight)
	}
	if st.MaxPageHeight > st.MaxNodeHeight {
		t.Fatalf("page height %d > node height %d", st.MaxPageHeight, st.MaxNodeHeight)
	}
	if st.Keys != 20000 {
		t.Fatalf("Keys = %d", st.Keys)
	}
}
