// Package trie instantiates SP-GiST as a disk-based patricia trie over
// strings — the paper's flagship example (Table 1, left column):
//
//	PathShrink = TreeShrink   NodeShrink = true
//	BucketSize = B            NoOfSpacePartitions = 27
//	NodePredicate = common prefix, labels = letter or blank
//
// Supported operators (paper Tables 3–4):
//
//	"="   equality
//	"#="  prefix match
//	"?="  regular-expression match with the single-character wildcard '?'
//	"@@"  incremental nearest-neighbor by Hamming-style distance
//
// The package also understands "@=" (substring) navigation as an alias of
// prefix navigation, which is what the suffix-tree instantiation builds
// on (package suffix).
package trie

import (
	"strings"

	"repro/internal/core"
)

// Blank is the label of the partition holding words that end exactly at
// the node's position (Table 1's "blank" predicate). The indexed alphabet
// must not contain the zero byte.
const Blank = byte(0)

// DefaultBucketSize is the paper's B parameter default.
const DefaultBucketSize = 16

// OpClass is the patricia-trie instantiation. The zero value is not
// usable; call New.
type OpClass struct {
	bucket     int
	dedup      bool
	name       string
	substrings bool
}

// Option tweaks an OpClass.
type Option func(*OpClass)

// WithBucketSize sets the leaf bucket size B.
func WithBucketSize(b int) Option {
	return func(o *OpClass) {
		if b > 0 {
			o.bucket = b
		}
	}
}

// New returns the patricia-trie opclass.
func New(opts ...Option) *OpClass {
	o := &OpClass{bucket: DefaultBucketSize, name: "spgist_trie"}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// NewSuffix returns the trie opclass configured as the backbone of a
// suffix tree: scans deduplicate by RID because one heap row contributes
// one key per suffix.
func NewSuffix(opts ...Option) *OpClass {
	o := New(opts...)
	o.dedup = true
	o.substrings = true
	o.name = "spgist_suffix"
	return o
}

// Name implements core.OpClass.
func (o *OpClass) Name() string { return o.name }

// Params implements core.OpClass (paper Table 1).
func (o *OpClass) Params() core.Params {
	return core.Params{
		NumPartitions: 27,
		PathShrink:    core.TreeShrink,
		NodeShrink:    true,
		BucketSize:    o.bucket,
		EqualityOp:    "=",
		DedupScan:     o.dedup,
	}
}

// RootRecon implements core.OpClass: no characters consumed yet.
func (o *OpClass) RootRecon() core.Value { return "" }

// EncodeKey implements core.OpClass.
func (o *OpClass) EncodeKey(v core.Value) []byte { return []byte(v.(string)) }

// DecodeKey implements core.OpClass.
func (o *OpClass) DecodeKey(b []byte) core.Value { return string(b) }

// EncodePred implements core.OpClass.
func (o *OpClass) EncodePred(v core.Value) []byte { return []byte(v.(string)) }

// DecodePred implements core.OpClass.
func (o *OpClass) DecodePred(b []byte) core.Value { return string(b) }

// EncodeLabel implements core.OpClass.
func (o *OpClass) EncodeLabel(v core.Value) []byte { return []byte{v.(byte)} }

// DecodeLabel implements core.OpClass.
func (o *OpClass) DecodeLabel(b []byte) core.Value { return b[0] }

func pred(v core.Value) string {
	if v == nil {
		return ""
	}
	return v.(string)
}

// Choose implements core.OpClass: navigate by the character at the
// current level, splitting the node predicate on a prefix conflict.
func (o *OpClass) Choose(in *core.ChooseIn) core.ChooseOut {
	key := in.Key.(string)
	p := pred(in.Pred)
	for i := 0; i < len(p); i++ {
		if in.Level+i >= len(key) || key[in.Level+i] != p[i] {
			// The key disagrees with the stored prefix: split it
			// (Figure 1(c) restructuring).
			return core.ChooseOut{
				Action:     core.SplitNode,
				UpperPred:  p[:i],
				UpperLabel: p[i],
				LowerPred:  p[i+1:],
			}
		}
	}
	after := in.Level + len(p)
	want := Blank
	levelAdd := len(p)
	childRecon := in.Recon.(string) + p
	if after < len(key) {
		want = key[after]
		levelAdd = len(p) + 1
		childRecon += string(want)
	}
	for i, l := range in.Labels {
		if l.(byte) == want {
			return core.ChooseOut{
				Action: core.MatchNode,
				Matches: []core.ChooseMatch{{
					Entry:    i,
					LevelAdd: levelAdd,
					Recon:    childRecon,
				}},
			}
		}
	}
	return core.ChooseOut{Action: core.AddNode, NewLabel: want}
}

// PickSplit implements core.OpClass, following Table 1: extract the
// longest common prefix of the keys' remainders as the node predicate and
// partition by the next character, with exhausted keys going to the blank
// partition.
func (o *OpClass) PickSplit(in *core.PickSplitIn) core.PickSplitOut {
	// Longest common prefix of the remainders key[level:].
	first := in.Keys[0].(string)
	lcp := len(first) - in.Level
	if lcp < 0 {
		lcp = 0
	}
	for _, kv := range in.Keys[1:] {
		k := kv.(string)
		n := 0
		for n < lcp && in.Level+n < len(k) && k[in.Level+n] == first[in.Level+n] {
			n++
		}
		if n < lcp {
			lcp = n
		}
	}
	p := ""
	if lcp > 0 {
		p = first[in.Level : in.Level+lcp]
	}
	after := in.Level + lcp

	var labels []byte
	idx := make(map[byte]int)
	mapping := make([][]int, len(in.Keys))
	allBlank := true
	for i, kv := range in.Keys {
		k := kv.(string)
		lb := Blank
		if after < len(k) {
			lb = k[after]
			allBlank = false
		}
		pi, ok := idx[lb]
		if !ok {
			pi = len(labels)
			idx[lb] = pi
			labels = append(labels, lb)
		}
		mapping[i] = []int{pi}
	}
	if allBlank {
		// Every key ends at this position: they are identical and cannot
		// be distinguished further.
		return core.PickSplitOut{Failed: true}
	}
	out := core.PickSplitOut{
		Pred:      p,
		Labels:    make([]core.Value, len(labels)),
		Mapping:   mapping,
		LevelAdds: make([]int, len(labels)),
		Recons:    make([]core.Value, len(labels)),
	}
	parentRecon, _ := in.Recon.(string)
	for pi, lb := range labels {
		out.Labels[pi] = lb
		if lb == Blank {
			out.LevelAdds[pi] = lcp
			out.Recons[pi] = parentRecon + p
		} else {
			out.LevelAdds[pi] = lcp + 1
			out.Recons[pi] = parentRecon + p + string(lb)
		}
	}
	return out
}

// InnerConsistent implements core.OpClass for the =, #=, ?= (and @=)
// operators. This is where the trie's tolerance to wildcards comes from:
// any non-wildcard character of the pattern prunes the fan-out at its
// level, regardless of where wildcards appear (paper section 6).
func (o *OpClass) InnerConsistent(in *core.InnerIn) core.InnerOut {
	var out core.InnerOut
	p := pred(in.Pred)
	recon, _ := in.Recon.(string)
	follow := func(i int) {
		lb := in.Labels[i].(byte)
		f := core.InnerFollow{Entry: i}
		if lb == Blank {
			f.LevelAdd = len(p)
			f.Recon = recon + p
		} else {
			f.LevelAdd = len(p) + 1
			f.Recon = recon + p + string(lb)
		}
		out.Follow = append(out.Follow, f)
	}
	if in.Query == nil {
		for i := range in.Labels {
			follow(i)
		}
		return out
	}
	q := in.Query.Arg.(string)
	after := in.Level + len(p)
	switch in.Query.Op {
	case "=":
		// The stored prefix must match the query exactly.
		if len(q) < after || q[in.Level:after] != p {
			return out
		}
		want := Blank
		if after < len(q) {
			want = q[after]
		}
		for i, l := range in.Labels {
			if l.(byte) == want {
				follow(i)
			}
		}
	case "#=", "@=":
		// Prefix search: the overlap of the query with the stored prefix
		// must match; past the end of the query everything qualifies.
		m := len(p)
		if rem := len(q) - in.Level; rem < m {
			m = rem
		}
		if m > 0 && q[in.Level:in.Level+m] != p[:m] {
			return out
		}
		if len(q) <= after {
			for i := range in.Labels {
				follow(i)
			}
			return out
		}
		want := q[after]
		for i, l := range in.Labels {
			if l.(byte) == want {
				follow(i)
			}
		}
	case "?=":
		// Full-length match with '?' wildcards: every word below this
		// node is at least `after` characters long, so the pattern must
		// cover the stored prefix.
		if len(q) < after {
			return out
		}
		for i := 0; i < len(p); i++ {
			if c := q[in.Level+i]; c != '?' && c != p[i] {
				return out
			}
		}
		for i, l := range in.Labels {
			lb := l.(byte)
			if lb == Blank {
				if len(q) == after {
					follow(i)
				}
			} else if after < len(q) {
				if c := q[after]; c == '?' || c == lb {
					follow(i)
				}
			}
		}
	}
	return out
}

// LeafConsistent implements core.OpClass.
func (o *OpClass) LeafConsistent(q *core.Query, key core.Value, _ int) bool {
	k := key.(string)
	switch q.Op {
	case "=":
		return k == q.Arg.(string)
	case "#=", "@=":
		return strings.HasPrefix(k, q.Arg.(string))
	case "?=":
		return MatchPattern(k, q.Arg.(string))
	}
	return false
}

// MatchPattern reports whether word matches the pattern: equal length and
// per-position equality, with '?' matching any single character.
func MatchPattern(word, pattern string) bool {
	if len(word) != len(pattern) {
		return false
	}
	for i := 0; i < len(word); i++ {
		if pattern[i] != '?' && pattern[i] != word[i] {
			return false
		}
	}
	return true
}

// Distance is the Hamming-style string distance used for NN search (paper
// section 6): positional mismatches over the common length plus one per
// length-difference character.
func Distance(a, b string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	if len(a) > n {
		d += len(a) - n
	}
	if len(b) > n {
		d += len(b) - n
	}
	return float64(d)
}

// NNInner implements core.NNOpClass. The lower bound for any word under a
// child with reconstructed prefix s is the mismatch count of s against the
// query plus the overshoot of s beyond the query; it is computed
// incrementally from the parent's bound, which is the modification the
// paper's section 5 describes for tries.
func (o *OpClass) NNInner(q core.Value, predV core.Value, label core.Value, level int, recon core.Value, parentDist float64) (float64, core.Value, int) {
	query := q.(string)
	s := recon.(string) + pred(predV)
	levelAdd := len(pred(predV))
	if lb := label.(byte); lb != Blank {
		s += string(lb)
		levelAdd++
	}
	parent := recon.(string)
	d := parentDist
	for i := len(parent); i < len(s); i++ {
		if i < len(query) {
			if s[i] != query[i] {
				d++
			}
		} else {
			d++ // the word is already longer than the query
		}
	}
	// A blank child holds complete words equal to s; shorter-than-query
	// words pay the length penalty immediately, keeping the bound tight.
	if lb := label.(byte); lb == Blank && len(s) < len(query) {
		d += float64(len(query) - len(s))
	}
	return d, s, levelAdd
}

// NNLeaf implements core.NNOpClass.
func (o *OpClass) NNLeaf(q core.Value, key core.Value) float64 {
	return Distance(key.(string), q.(string))
}
