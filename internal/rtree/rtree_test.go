package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/storage"
)

func newTestTree(t testing.TB, pageSize int) *Tree {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(pageSize), 128)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(i int) heap.RID { return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)} }

func pointRect(p geom.Point) geom.Box { return geom.Box{Min: p, Max: p} }

func buildPoints(t testing.TB, tr *Tree, n int, seed int64) []geom.Point {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		if err := tr.Insert(pointRect(pts[i]), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

func TestPointMatchAgainstBruteForce(t *testing.T) {
	tr := newTestTree(t, 1024) // small pages force splits and height
	pts := buildPoints(t, tr, 3000, 1)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		q := pts[r.Intn(len(pts))]
		want := 0
		for _, p := range pts {
			if p.Eq(q) {
				want++
			}
		}
		got := 0
		if err := tr.SearchPoint(q, func(heap.RID) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("point %v: got %d, want %d", q, got, want)
		}
	}
	// Absent point.
	got := 0
	tr.SearchPoint(geom.Point{X: -5, Y: -5}, func(heap.RID) bool { got++; return true })
	if got != 0 {
		t.Fatalf("absent point found %d times", got)
	}
}

func TestRangeSearchAgainstBruteForce(t *testing.T) {
	tr := newTestTree(t, 1024)
	pts := buildPoints(t, tr, 3000, 3)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		b := geom.MakeBox(r.Float64()*100, r.Float64()*100, r.Float64()*100, r.Float64()*100)
		want := 0
		for _, p := range pts {
			if b.Contains(p) {
				want++
			}
		}
		got := 0
		err := tr.SearchContained(b, func(geom.Box, heap.RID) bool { got++; return true })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("range %v: got %d, want %d", b, got, want)
		}
	}
}

func TestSegmentMBRSearch(t *testing.T) {
	tr := newTestTree(t, 1024)
	r := rand.New(rand.NewSource(5))
	segs := make([]geom.Segment, 2000)
	for i := range segs {
		a := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		b := geom.Point{X: a.X + (r.Float64()-0.5)*10, Y: a.Y + (r.Float64()-0.5)*10}
		segs[i] = geom.Segment{A: a, B: b}
		if err := tr.Insert(segs[i].MBR(), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Window query with exact recheck against the real segments — what
	// the executor layer does for lossy MBR hits.
	for i := 0; i < 50; i++ {
		w := geom.MakeBox(r.Float64()*100, r.Float64()*100, r.Float64()*100, r.Float64()*100)
		want := 0
		for _, s := range segs {
			if s.IntersectsBox(w) {
				want++
			}
		}
		got := 0
		err := tr.Search(w, func(_ geom.Box, rd heap.RID) bool {
			idx := (int(rd.Page)-1)*1000 + int(rd.Slot)
			if segs[idx].IntersectsBox(w) {
				got++
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("window %v: got %d, want %d", w, got, want)
		}
	}
}

// Structural invariant: every child MBR is contained in its parent entry
// rectangle, and all leaves sit at the same depth.
func TestMBRContainmentInvariant(t *testing.T) {
	tr := newTestTree(t, 1024)
	buildPoints(t, tr, 3000, 6)
	leafDepth := -1
	var walk func(pid storage.PageID, depth int, bound *geom.Box)
	walk = func(pid storage.PageID, depth int, bound *geom.Box) {
		n, err := tr.readNode(pid)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range n.entries {
			if bound != nil && !bound.ContainsBox(e.rect) {
				t.Fatalf("entry rect %v escapes parent bound %v", e.rect, *bound)
			}
			if !n.leaf {
				r := e.rect
				walk(e.child, depth+1, &r)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("unbalanced leaves: %d vs %d", leafDepth, depth)
			}
			if depth != tr.Height() {
				t.Fatalf("leaf depth %d != height %d", depth, tr.Height())
			}
		}
	}
	walk(tr.root, 1, nil)
}

func TestNodeFillBounds(t *testing.T) {
	tr := newTestTree(t, 1024)
	buildPoints(t, tr, 3000, 7)
	var walk func(pid storage.PageID, isRoot bool)
	walk = func(pid storage.PageID, isRoot bool) {
		n, err := tr.readNode(pid)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.entries) > tr.MaxEntries() {
			t.Fatalf("node with %d entries exceeds M=%d", len(n.entries), tr.MaxEntries())
		}
		if !isRoot && len(n.entries) < 1 {
			t.Fatal("empty non-root node")
		}
		if !n.leaf {
			for _, e := range n.entries {
				walk(e.child, false)
			}
		}
	}
	walk(tr.root, true)
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t, 1024)
	pts := buildPoints(t, tr, 500, 8)
	n, err := tr.Delete(pointRect(pts[17]), rid(17))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delete removed %d", n)
	}
	got := 0
	tr.SearchPoint(pts[17], func(rd heap.RID) bool {
		if rd == rid(17) {
			got++
		}
		return true
	})
	if got != 0 {
		t.Fatal("deleted entry still found")
	}
	if tr.Count() != 499 {
		t.Fatalf("Count = %d", tr.Count())
	}
	// Deleting again is a no-op.
	n, _ = tr.Delete(pointRect(pts[17]), rid(17))
	if n != 0 {
		t.Fatalf("double delete removed %d", n)
	}
}

func TestPersistence(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMem(1024), 64)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	pts := buildPoints(t, tr, 500, 9)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(bp)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != 500 || tr2.Height() != tr.Height() {
		t.Fatalf("reopen mismatch: count=%d height=%d", tr2.Count(), tr2.Height())
	}
	got := 0
	tr2.SearchPoint(pts[0], func(heap.RID) bool { got++; return true })
	if got == 0 {
		t.Fatal("point lost after reopen")
	}
}
