// Package rtree implements a disk-based R-tree (Guttman 1984, quadratic
// split) — the baseline PostgreSQL spatial access method the paper
// compares the SP-GiST kd-tree and PMR quadtree against (Figures 13–15).
//
// One tree node occupies one page. Leaf entries carry the exact geometry
// bounding box of the indexed object plus its RID; inner entries carry
// the minimum bounding rectangle of a child page. Points are indexed as
// degenerate rectangles; line segments by their MBR, so an exact segment
// match filters candidates against the heap tuple (the executor layer
// does that, like PostgreSQL rechecks lossy index hits).
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/storage"
)

// Meta page (page 0) layout.
const (
	magic     = 0x52545245 // "RTRE"
	mMagicOf  = 0
	mRootOf   = 4
	mHeightOf = 8
	mCountOf  = 12
)

// Node page layout:
//
//	[kind u8][n u16] entries: [4 x float64 rect][child u32 | rid 6, padded to 8]
const (
	kindLeaf  = 1
	kindInner = 2
	hdrSize   = 3
	entrySize = 40
)

type entry struct {
	rect  geom.Box
	child storage.PageID // inner
	rid   heap.RID       // leaf
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is one disk-based R-tree index. Writers must be externally
// serialized.
type Tree struct {
	bp      *storage.BufferPool
	root    storage.PageID
	height  int
	count   int64
	maxFill int // M: entries per node
	minFill int // m: lower bound after split

	// trace, when non-nil, records distinct pages touched by read paths.
	trace atomic.Pointer[storage.PageTrace]

	// cache holds decoded nodes for read-only paths, invalidated on
	// writes (see the btree package for rationale). Cached nodes are
	// immutable once published, so concurrent readers share them freely.
	cache *storage.NodeCache[storage.PageID, *node]
}

// Create initializes a new empty R-tree in an empty page file.
func Create(bp *storage.BufferPool) (*Tree, error) {
	if bp.DM().NumPages() != 0 {
		return nil, fmt.Errorf("rtree: create on non-empty file")
	}
	meta, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(meta.Data[mMagicOf:], magic)
	bp.Unpin(meta, true)
	t := newTree(bp)
	return t, t.saveMeta()
}

// Open attaches to an existing R-tree file.
func Open(bp *storage.BufferPool) (*Tree, error) {
	meta, err := bp.Fetch(0)
	if err != nil {
		return nil, err
	}
	defer bp.Unpin(meta, false)
	if binary.LittleEndian.Uint32(meta.Data[mMagicOf:]) != magic {
		return nil, fmt.Errorf("rtree: bad magic")
	}
	t := newTree(bp)
	t.root = storage.PageID(binary.LittleEndian.Uint32(meta.Data[mRootOf:]))
	t.height = int(binary.LittleEndian.Uint32(meta.Data[mHeightOf:]))
	t.count = int64(binary.LittleEndian.Uint64(meta.Data[mCountOf:]))
	return t, nil
}

func newTree(bp *storage.BufferPool) *Tree {
	maxFill := (bp.DM().PageSize() - hdrSize) / entrySize
	minFill := maxFill * 2 / 5 // Guttman's recommended m ~ 40% of M
	if minFill < 1 {
		minFill = 1
	}
	return &Tree{
		bp: bp, root: storage.InvalidPageID,
		maxFill: maxFill, minFill: minFill,
		cache: storage.NewNodeCache[storage.PageID, *node](maxCachedNodes),
	}
}

func (t *Tree) saveMeta() error {
	meta, err := t.bp.Fetch(0)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(meta.Data[mRootOf:], uint32(t.root))
	binary.LittleEndian.PutUint32(meta.Data[mHeightOf:], uint32(t.height))
	binary.LittleEndian.PutUint64(meta.Data[mCountOf:], uint64(t.count))
	t.bp.Unpin(meta, true)
	return nil
}

// SaveMeta persists the in-memory metadata (root, height, count) into
// the metadata page without flushing data pages; with a WAL attached
// the dirty meta page is logged and recoverable.
func (t *Tree) SaveMeta() error { return t.saveMeta() }

// Flush persists metadata and dirty pages.
func (t *Tree) Flush() error {
	if err := t.saveMeta(); err != nil {
		return err
	}
	return t.bp.FlushAll()
}

// Pool returns the underlying buffer pool.
func (t *Tree) Pool() *storage.BufferPool { return t.bp }

// Count returns the number of stored entries.
func (t *Tree) Count() int64 { return t.count }

// Height returns the number of levels; 0 when empty.
func (t *Tree) Height() int { return t.height }

// NumPages returns the number of pages, including metadata.
func (t *Tree) NumPages() uint32 { return t.bp.DM().NumPages() }

// SizeBytes returns the on-disk size of the index.
func (t *Tree) SizeBytes() int64 {
	return int64(t.NumPages()) * int64(t.bp.DM().PageSize())
}

// MaxEntries exposes M (used by tests).
func (t *Tree) MaxEntries() int { return t.maxFill }

func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

func (n *node) encode(buf []byte) {
	if n.leaf {
		buf[0] = kindLeaf
	} else {
		buf[0] = kindInner
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.entries)))
	off := hdrSize
	for _, e := range n.entries {
		putF64(buf[off:], e.rect.Min.X)
		putF64(buf[off+8:], e.rect.Min.Y)
		putF64(buf[off+16:], e.rect.Max.X)
		putF64(buf[off+24:], e.rect.Max.Y)
		if n.leaf {
			rb := e.rid.Bytes()
			copy(buf[off+32:], rb[:])
			buf[off+38] = 0
			buf[off+39] = 0
		} else {
			binary.LittleEndian.PutUint32(buf[off+32:], uint32(e.child))
		}
		off += entrySize
	}
}

func decode(buf []byte) (*node, error) {
	n := &node{}
	switch buf[0] {
	case kindLeaf:
		n.leaf = true
	case kindInner:
	default:
		return nil, fmt.Errorf("rtree: unknown node kind %d", buf[0])
	}
	cnt := int(binary.LittleEndian.Uint16(buf[1:]))
	n.entries = make([]entry, 0, cnt)
	off := hdrSize
	for i := 0; i < cnt; i++ {
		e := entry{rect: geom.Box{
			Min: geom.Point{X: getF64(buf[off:]), Y: getF64(buf[off+8:])},
			Max: geom.Point{X: getF64(buf[off+16:]), Y: getF64(buf[off+24:])},
		}}
		if n.leaf {
			e.rid = heap.RIDFromBytes(buf[off+32:])
		} else {
			e.child = storage.PageID(binary.LittleEndian.Uint32(buf[off+32:]))
		}
		n.entries = append(n.entries, e)
		off += entrySize
	}
	return n, nil
}

func (t *Tree) readNode(pid storage.PageID) (*node, error) {
	p, err := t.bp.Fetch(pid)
	if err != nil {
		return nil, err
	}
	defer t.bp.Unpin(p, false)
	return decode(p.Data)
}

// StartPageTrace begins counting the distinct pages touched by read-only
// operations (the page reads a cold execution would issue).
func (t *Tree) StartPageTrace() {
	t.trace.Store(storage.NewPageTrace())
}

// PageTraceCount reports the distinct pages touched since StartPageTrace
// and stops tracing.
func (t *Tree) PageTraceCount() int {
	tr := t.trace.Swap(nil)
	if tr == nil {
		return 0
	}
	return tr.Count()
}

// maxCachedNodes bounds the decoded-node cache.
const maxCachedNodes = 1 << 16

// readNodeRO serves read-only visits from the decoded-node cache. The
// result must not be mutated: it may be shared with concurrent readers.
func (t *Tree) readNodeRO(pid storage.PageID) (*node, error) {
	if tr := t.trace.Load(); tr != nil {
		tr.Visit(pid)
	}
	if n, ok := t.cache.Get(pid); ok {
		return n, nil
	}
	n, err := t.readNode(pid)
	if err != nil {
		return nil, err
	}
	t.cache.Put(pid, n)
	return n, nil
}

// invalidate drops a node from the decoded-node cache.
func (t *Tree) invalidate(pid storage.PageID) {
	t.cache.Drop(pid)
}

func (t *Tree) writeNode(pid storage.PageID, n *node) error {
	t.invalidate(pid)
	p, err := t.bp.Fetch(pid)
	if err != nil {
		return err
	}
	n.encode(p.Data)
	t.bp.Unpin(p, true)
	return nil
}

func (t *Tree) allocNode(n *node) (storage.PageID, error) {
	p, err := t.bp.NewPage()
	if err != nil {
		return storage.InvalidPageID, err
	}
	n.encode(p.Data)
	t.bp.Unpin(p, true)
	return p.ID, nil
}

func mbr(entries []entry) geom.Box {
	b := entries[0].rect
	for _, e := range entries[1:] {
		b = b.Union(e.rect)
	}
	return b
}

// enlargement returns how much b must grow to cover r.
func enlargement(b, r geom.Box) float64 {
	return b.Union(r).Area() - b.Area()
}

// Insert adds one (rect, rid) entry.
func (t *Tree) Insert(rect geom.Box, rid heap.RID) error {
	if t.root == storage.InvalidPageID {
		pid, err := t.allocNode(&node{leaf: true, entries: []entry{{rect: rect, rid: rid}}})
		if err != nil {
			return err
		}
		t.root = pid
		t.height = 1
		t.count++
		return nil
	}
	splitRect1, splitRect2, right, err := t.insertAt(t.root, rect, rid, t.height)
	if err != nil {
		return err
	}
	if right != storage.InvalidPageID {
		newRoot := &node{entries: []entry{
			{rect: splitRect1, child: t.root},
			{rect: splitRect2, child: right},
		}}
		pid, err := t.allocNode(newRoot)
		if err != nil {
			return err
		}
		t.root = pid
		t.height++
	}
	t.count++
	return nil
}

// insertAt implements ChooseLeaf + AdjustTree. On split it returns the
// MBRs of the two halves and the new right sibling's page.
func (t *Tree) insertAt(pid storage.PageID, rect geom.Box, rid heap.RID, level int) (geom.Box, geom.Box, storage.PageID, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return geom.Box{}, geom.Box{}, storage.InvalidPageID, err
	}
	if n.leaf {
		n.entries = append(n.entries, entry{rect: rect, rid: rid})
		return t.writeSplit(pid, n)
	}
	// ChooseSubtree: least enlargement, ties by smallest area.
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		enl := enlargement(e.rect, rect)
		area := e.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := n.entries[best].child
	r1, r2, right, err := t.insertAt(child, rect, rid, level-1)
	if err != nil {
		return geom.Box{}, geom.Box{}, storage.InvalidPageID, err
	}
	if right == storage.InvalidPageID {
		// AdjustTree: widen the child's MBR.
		n.entries[best].rect = n.entries[best].rect.Union(rect)
		return geom.Box{}, geom.Box{}, storage.InvalidPageID, t.writeNode(pid, n)
	}
	n.entries[best].rect = r1
	n.entries = append(n.entries, entry{rect: r2, child: right})
	return t.writeSplit(pid, n)
}

// writeSplit stores n at pid, applying Guttman's quadratic split when the
// node exceeds M entries.
func (t *Tree) writeSplit(pid storage.PageID, n *node) (geom.Box, geom.Box, storage.PageID, error) {
	if len(n.entries) <= t.maxFill {
		return geom.Box{}, geom.Box{}, storage.InvalidPageID, t.writeNode(pid, n)
	}
	g1, g2 := quadraticSplit(n.entries, t.minFill)
	rightN := &node{leaf: n.leaf, entries: g2}
	rightPID, err := t.allocNode(rightN)
	if err != nil {
		return geom.Box{}, geom.Box{}, storage.InvalidPageID, err
	}
	n.entries = g1
	if err := t.writeNode(pid, n); err != nil {
		return geom.Box{}, geom.Box{}, storage.InvalidPageID, err
	}
	return mbr(g1), mbr(g2), rightPID, nil
}

// quadraticSplit distributes entries into two groups per Guttman's
// quadratic algorithm: seed with the pair wasting the most area, then
// repeatedly assign the entry with the greatest preference difference.
func quadraticSplit(entries []entry, minFill int) ([]entry, []entry) {
	// PickSeeds.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	b1 := entries[s1].rect
	b2 := entries[s2].rect
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take everything to reach minFill, do so.
		need1 := minFill - len(g1)
		need2 := minFill - len(g2)
		if need1 > 0 && need1 >= len(rest) {
			g1 = append(g1, rest...)
			break
		}
		if need2 > 0 && need2 >= len(rest) {
			g2 = append(g2, rest...)
			break
		}
		// PickNext: greatest difference of enlargements.
		pick := 0
		bestDiff := math.Inf(-1)
		for i, e := range rest {
			diff := math.Abs(enlargement(b1, e.rect) - enlargement(b2, e.rect))
			if diff > bestDiff {
				bestDiff, pick = diff, i
			}
		}
		e := rest[pick]
		rest = append(rest[:pick], rest[pick+1:]...)
		d1 := enlargement(b1, e.rect)
		d2 := enlargement(b2, e.rect)
		if d1 < d2 || (d1 == d2 && b1.Area() <= b2.Area()) {
			g1 = append(g1, e)
			b1 = b1.Union(e.rect)
		} else {
			g2 = append(g2, e)
			b2 = b2.Union(e.rect)
		}
	}
	return g1, g2
}

// Search calls emit for every leaf entry whose rectangle intersects q.
func (t *Tree) Search(q geom.Box, emit func(rect geom.Box, rid heap.RID) bool) error {
	if t.root == storage.InvalidPageID {
		return nil
	}
	stack := []storage.PageID{t.root}
	for len(stack) > 0 {
		pid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNodeRO(pid)
		if err != nil {
			return err
		}
		for _, e := range n.entries {
			if !e.rect.Intersects(q) {
				continue
			}
			if n.leaf {
				if !emit(e.rect, e.rid) {
					return nil
				}
			} else {
				stack = append(stack, e.child)
			}
		}
	}
	return nil
}

// SearchPoint calls emit for leaf entries whose rectangle is exactly the
// degenerate rectangle at p (point equality for point datasets).
func (t *Tree) SearchPoint(p geom.Point, emit func(rid heap.RID) bool) error {
	q := geom.Box{Min: p, Max: p}
	return t.Search(q, func(rect geom.Box, rid heap.RID) bool {
		if rect.Min.Eq(p) && rect.Max.Eq(p) {
			return emit(rid)
		}
		return true
	})
}

// SearchContained calls emit for leaf entries fully inside q (range
// search over point data; for extended objects the executor rechecks).
func (t *Tree) SearchContained(q geom.Box, emit func(rect geom.Box, rid heap.RID) bool) error {
	return t.Search(q, func(rect geom.Box, rid heap.RID) bool {
		if q.ContainsBox(rect) {
			return emit(rect, rid)
		}
		return true
	})
}

// Delete removes the entry with exactly this rectangle and RID. It
// returns the number removed (0 or 1). MBRs on the path are not shrunk
// (Guttman's CondenseTree is skipped, as deletes do not occur in the
// paper's experiments); search correctness is unaffected.
func (t *Tree) Delete(rect geom.Box, rid heap.RID) (int, error) {
	if t.root == storage.InvalidPageID {
		return 0, nil
	}
	stack := []storage.PageID{t.root}
	for len(stack) > 0 {
		pid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNode(pid)
		if err != nil {
			return 0, err
		}
		for i, e := range n.entries {
			if !e.rect.Intersects(rect) {
				continue
			}
			if n.leaf {
				if e.rect == rect && e.rid == rid {
					n.entries = append(n.entries[:i], n.entries[i+1:]...)
					if err := t.writeNode(pid, n); err != nil {
						return 0, err
					}
					t.count--
					return 1, nil
				}
			} else {
				stack = append(stack, e.child)
			}
		}
	}
	return 0, nil
}
