package server_test

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/server"
)

// startServer serves an in-memory database on a random local port.
func startServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	db := executor.OpenMemory()
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return l.Addr().String(), func() {
		srv.Shutdown()
		l.Close()
		<-done
		db.Close()
	}
}

func TestServerSingleSession(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mustExec := func(stmt string) *server.Response {
		t.Helper()
		res, err := c.Exec(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		return res
	}
	mustExec("CREATE TABLE words (name VARCHAR, id INT)")
	mustExec("CREATE INDEX wix ON words USING spgist (name spgist_trie)")
	if res := mustExec("INSERT INTO words VALUES ('apple', 1), ('apricot', 2), ('banana', 3)"); res.OK != "INSERT 3" {
		t.Fatalf("insert: %q", res.OK)
	}
	res := mustExec("SELECT * FROM words WHERE name #= 'ap'")
	if len(res.Rows) != 2 {
		t.Fatalf("prefix select returned %d rows: %v", len(res.Rows), res.Rows)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "name" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if res.Plan == "" {
		t.Fatal("select response carries no plan")
	}
	// A statement error must terminate cleanly and leave the session usable.
	if _, err := c.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("select from missing table succeeded")
	}
	if res := mustExec("SELECT * FROM words"); len(res.Rows) != 3 {
		t.Fatalf("post-error select returned %d rows", len(res.Rows))
	}
}

// TestServerValueEscaping: a row value holding framing characters
// (inserted through the Go API — SQL literals cannot carry newlines)
// must round-trip through the wire protocol instead of corrupting it.
func TestServerValueEscaping(t *testing.T) {
	db := executor.OpenMemory()
	defer db.Close()
	tb, err := db.CreateTable("t", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	nasty := "a\nb\tc\\d\re"
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText(nasty), catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	defer func() { srv.Shutdown(); l.Close(); <-done }()

	c, err := server.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != nasty {
		t.Fatalf("value did not round-trip: %q", res.Rows)
	}
	// The connection must still be framed correctly afterwards.
	if res, err := c.Exec("SHOW TABLES"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("stream desynchronized after escaped row: %v %v", res, err)
	}
}

// TestServerConcurrentSessions drives parallel clients — mixed readers
// and a writer — against one shared database. Run under -race this
// exercises the whole concurrent read path end to end: server sessions,
// shared statement lock, sharded buffer pool, node caches.
func TestServerConcurrentSessions(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	seed, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Exec("CREATE TABLE words (name VARCHAR, id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Exec("CREATE INDEX wix ON words USING spgist (name spgist_trie)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		stmt := fmt.Sprintf("INSERT INTO words VALUES ('w%03d', %d)", i, i)
		if _, err := seed.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	seed.Close()

	const readers, writerRows, queries = 6, 50, 60
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < queries; i++ {
				// The seed rows w000..w199 never change; each two-digit
				// prefix w00..w19 matches exactly 10 of them (the
				// concurrent writer only adds x-prefixed rows).
				prefix := fmt.Sprintf("w%02d", (g+i)%20)
				res, err := c.Exec(fmt.Sprintf("SELECT * FROM words WHERE name #= '%s'", prefix))
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if len(res.Rows) != 10 {
					t.Errorf("reader %d: prefix %s returned %d rows, want 10", g, prefix, len(res.Rows))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := server.Dial(addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for i := 0; i < writerRows; i++ {
			stmt := fmt.Sprintf("INSERT INTO words VALUES ('x%03d', %d)", i, 1000+i)
			if _, err := c.Exec(stmt); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	check, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	res, err := check.Exec("SELECT * FROM words")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200+writerRows {
		t.Fatalf("final row count %d, want %d", len(res.Rows), 200+writerRows)
	}
}

// TestServerConcurrentBatchWritersTwoTables: sessions streaming
// multi-row INSERT statements into different tables hold different
// per-table writer locks and commit concurrently — the server-level
// face of the batched write pipeline.
func TestServerConcurrentBatchWritersTwoTables(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	seed, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := seed.Exec(fmt.Sprintf("CREATE TABLE t%d (name VARCHAR, id INT)", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := seed.Exec(fmt.Sprintf("CREATE INDEX ix%d ON t%d USING spgist (name spgist_trie)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	seed.Close()

	const batches, rows = 6, 40
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Errorf("writer %d: %v", g, err)
				return
			}
			defer c.Close()
			for b := 0; b < batches; b++ {
				stmt := fmt.Sprintf("INSERT INTO t%d VALUES ", g)
				for j := 0; j < rows; j++ {
					if j > 0 {
						stmt += ", "
					}
					id := b*rows + j
					stmt += fmt.Sprintf("('w%d_%04d', %d)", g, id, id)
				}
				res, err := c.Exec(stmt)
				if err != nil {
					t.Errorf("writer %d batch %d: %v", g, b, err)
					return
				}
				if want := fmt.Sprintf("INSERT %d", rows); res.OK != want {
					t.Errorf("writer %d batch %d: got %q want %q", g, b, res.OK, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for g := 0; g < 2; g++ {
		res, err := c.Exec(fmt.Sprintf("SELECT * FROM t%d WHERE name #= 'w%d_'", g, g))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != batches*rows {
			t.Fatalf("table t%d: %d rows, want %d", g, len(res.Rows), batches*rows)
		}
	}
}
