package server_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/server"
)

// startTxnServer serves an in-memory database with an idle-in-
// transaction timeout configured.
func startTxnServer(t *testing.T, idle time.Duration) (addr string, shutdown func()) {
	t.Helper()
	db := executor.OpenMemory()
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	if idle > 0 {
		srv.SetIdleTxnTimeout(idle)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return l.Addr().String(), func() {
		srv.Shutdown()
		l.Close()
		<-done
		db.Close()
	}
}

// TestServerTransactions drives BEGIN/COMMIT/ROLLBACK over the wire
// with two sessions on one table: the acceptance criterion end to end.
// Session B's SELECTs run while A holds an open INSERT/UPDATE
// transaction — they must return promptly (B carries a deadline, so a
// lock wait would fail the test) and never see uncommitted rows.
func TestServerTransactions(t *testing.T) {
	addr, shutdown := startTxnServer(t, 0)
	defer shutdown()

	a, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetTimeout(5 * time.Second)

	mustExec := func(c *server.Client, stmt string) *server.Response {
		t.Helper()
		res, err := c.Exec(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		return res
	}
	mustExec(a, "CREATE TABLE words (name VARCHAR, id INT)")
	mustExec(a, "INSERT INTO words VALUES ('seed', 0)")

	mustExec(a, "BEGIN")
	mustExec(a, "INSERT INTO words VALUES ('pending', 1), ('pending2', 2)")
	if res := mustExec(a, "UPDATE words SET id = 42 WHERE name = 'seed'"); res.OK != "UPDATE 1" {
		t.Fatalf("update: %q", res.OK)
	}

	// B sees the pre-transaction state, promptly.
	res := mustExec(b, "SELECT * FROM words")
	if len(res.Rows) != 1 || res.Rows[0][0] != "seed" || res.Rows[0][1] != "0" {
		t.Fatalf("B during A's txn: %v, want only ('seed', 0)", res.Rows)
	}

	// A sees its own writes.
	if res := mustExec(a, "SELECT * FROM words"); len(res.Rows) != 3 {
		t.Fatalf("A sees %d rows inside its txn, want 3", len(res.Rows))
	}

	// Nested BEGIN and stray COMMIT are statement errors, not corruption.
	if _, err := a.Exec("BEGIN"); err == nil || !strings.Contains(err.Error(), "already in a transaction") {
		t.Fatalf("nested BEGIN: %v", err)
	}
	if _, err := b.Exec("COMMIT"); err == nil || !strings.Contains(err.Error(), "no transaction in progress") {
		t.Fatalf("stray COMMIT: %v", err)
	}

	mustExec(a, "COMMIT")
	if res := mustExec(b, "SELECT * FROM words"); len(res.Rows) != 3 {
		t.Fatalf("B after COMMIT sees %d rows, want 3", len(res.Rows))
	}

	// ROLLBACK: B never sees the aborted work.
	mustExec(a, "BEGIN")
	mustExec(a, "DELETE FROM words WHERE name #= 'pending'")
	mustExec(a, "ROLLBACK")
	if res := mustExec(b, "SELECT * FROM words"); len(res.Rows) != 3 {
		t.Fatalf("B after ROLLBACK sees %d rows, want 3", len(res.Rows))
	}

	// DDL inside a transaction is refused.
	mustExec(a, "BEGIN")
	if _, err := a.Exec("CREATE INDEX wix ON words USING spgist (name spgist_trie)"); err == nil || !strings.Contains(err.Error(), "cannot run inside a transaction") {
		t.Fatalf("DDL in txn: %v", err)
	}
	mustExec(a, "ROLLBACK")

	// VACUUM over the wire reclaims the dead update/rollback versions.
	if res := mustExec(a, "VACUUM words"); !strings.HasPrefix(res.OK, "VACUUM ") {
		t.Fatalf("vacuum: %q", res.OK)
	}
	if res := mustExec(b, "SELECT * FROM words"); len(res.Rows) != 3 {
		t.Fatalf("B after VACUUM sees %d rows, want 3", len(res.Rows))
	}
}

// TestServerIdleTxnTimeout: a session that goes idle inside an open
// transaction is rolled back and disconnected with an explanatory ERR
// line, and its uncommitted rows never become visible.
func TestServerIdleTxnTimeout(t *testing.T) {
	addr, shutdown := startTxnServer(t, 150*time.Millisecond)
	defer shutdown()

	setup, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	for _, stmt := range []string{
		"CREATE TABLE words (name VARCHAR, id INT)",
		"INSERT INTO words VALUES ('seed', 0)",
	} {
		if _, err := setup.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	// Raw connection: BEGIN, INSERT, then go idle and read the
	// unsolicited ERR terminator the timeout owes us.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)
	exec := func(stmt string) string {
		t.Helper()
		fmt.Fprintf(conn, "%s\n", stmt)
		for in.Scan() {
			line := in.Text()
			if strings.HasPrefix(line, "OK") {
				return line
			}
			if strings.HasPrefix(line, "ERR ") {
				t.Fatalf("%s: %s", stmt, line)
			}
		}
		t.Fatalf("%s: connection closed mid-response (%v)", stmt, in.Err())
		return ""
	}
	exec("BEGIN")
	exec("INSERT INTO words VALUES ('doomed', 1)")

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if !in.Scan() {
		t.Fatalf("no ERR line before disconnect: %v", in.Err())
	}
	if line := in.Text(); !strings.Contains(line, "idle-in-transaction timeout") {
		t.Fatalf("got %q, want idle-in-transaction timeout ERR", line)
	}
	// The server closes the connection after the ERR line.
	if in.Scan() {
		t.Fatalf("unexpected line after timeout: %q", in.Text())
	}

	// The transaction was rolled back: the doomed row is invisible.
	res, err := setup.Exec("SELECT * FROM words")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "seed" {
		t.Fatalf("after idle-txn kill: %v, want only the seed row", res.Rows)
	}
	// And the table's write lock is free again: a new writer proceeds.
	if _, err := setup.Exec("INSERT INTO words VALUES ('after', 2)"); err != nil {
		t.Fatalf("insert after idle-txn kill: %v", err)
	}

	// A session idling *outside* a transaction is never disconnected.
	idle, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	time.Sleep(400 * time.Millisecond)
	if res, err := idle.Exec("SELECT * FROM words"); err != nil || len(res.Rows) != 2 {
		t.Fatalf("idle non-txn session: rows=%v err=%v", res, err)
	}
}
