package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal client for the line protocol, used by the demo,
// the tests, and anyone scripting against spgist-server from Go.
type Client struct {
	conn    net.Conn
	in      *bufio.Scanner
	out     *bufio.Writer
	timeout time.Duration
}

// Response is one statement's parsed reply.
type Response struct {
	Columns []string
	Rows    [][]string
	Plan    string
	OK      string // the OK terminator's payload ("3", "INSERT 2", ...)
}

// Dial connects to a running spgist-server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, in: bufio.NewScanner(conn), out: bufio.NewWriter(conn)}
	c.in.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return c, nil
}

// SetTimeout bounds every subsequent Exec (and the verbs built on it)
// to d of wall-clock time for the complete round trip: if the server
// stalls — accepts the connection but never answers, or trickles a
// response — the in-flight read or write fails with a net timeout error
// instead of hanging the caller forever. d <= 0 restores the default of
// no deadline.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Exec sends one statement and reads its full response. A server-side
// statement failure comes back as an error (the ERR line's message).
func (c *Client) Exec(stmt string) (*Response, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := fmt.Fprintf(c.out, "%s\n", strings.ReplaceAll(stmt, "\n", " ")); err != nil {
		return nil, err
	}
	if err := c.out.Flush(); err != nil {
		return nil, err
	}
	res := &Response{}
	for c.in.Scan() {
		line := c.in.Text()
		switch {
		case strings.HasPrefix(line, "#cols "):
			res.Columns = strings.Split(line[len("#cols "):], "\t")
		case strings.HasPrefix(line, "row "):
			vals := strings.Split(line[len("row "):], "\t")
			for i, v := range vals {
				vals[i] = unescapeValue(v)
			}
			res.Rows = append(res.Rows, vals)
		case strings.HasPrefix(line, "plan "):
			res.Plan = line[len("plan "):]
		case strings.HasPrefix(line, "OK"):
			res.OK = strings.TrimSpace(strings.TrimPrefix(line, "OK"))
			return res, nil
		case strings.HasPrefix(line, "ERR "):
			return nil, fmt.Errorf("server: %s", line[len("ERR "):])
		default:
			return nil, fmt.Errorf("server: malformed response line %q", line)
		}
	}
	if err := c.in.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("server: connection closed mid-response")
}

// Stats runs the STATS protocol verb and returns the server's metrics
// registry as a name → value map.
func (c *Client) Stats() (map[string]int64, error) {
	res, err := c.Exec("STATS")
	if err != nil {
		return nil, err
	}
	m := make(map[string]int64, len(res.Rows))
	for _, r := range res.Rows {
		if len(r) != 2 {
			return nil, fmt.Errorf("server: malformed STATS row %q", r)
		}
		v, err := strconv.ParseInt(r[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("server: non-integer STATS value %q for %s", r[1], r[0])
		}
		m[r[0]] = v
	}
	return m, nil
}

// StatsReset runs the STATS RESET protocol verb, zeroing the server's
// cumulative counters and histograms.
func (c *Client) StatsReset() error {
	_, err := c.Exec("STATS RESET")
	return err
}

// SessionInfo is one row of the server's live session table.
type SessionInfo struct {
	ID        int64
	Client    string
	State     string
	WaitEvent string
	Statement string
	ElapsedMS float64
}

// Activity runs the ACTIVITY protocol verb and returns the server's
// live session table (every connected session, including this one).
func (c *Client) Activity() ([]SessionInfo, error) {
	res, err := c.Exec("ACTIVITY")
	if err != nil {
		return nil, err
	}
	out := make([]SessionInfo, 0, len(res.Rows))
	for _, r := range res.Rows {
		if len(r) != 6 {
			return nil, fmt.Errorf("server: malformed ACTIVITY row %q", r)
		}
		id, err := strconv.ParseInt(r[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("server: non-integer ACTIVITY id %q", r[0])
		}
		ms, err := strconv.ParseFloat(r[5], 64)
		if err != nil {
			return nil, fmt.Errorf("server: non-numeric ACTIVITY elapsed_ms %q", r[5])
		}
		out = append(out, SessionInfo{
			ID: id, Client: r[1], State: r[2], WaitEvent: r[3],
			Statement: r[4], ElapsedMS: ms,
		})
	}
	return out, nil
}

// unescapeValue reverses the server's row-value escaping (\\ \n \r \t).
func unescapeValue(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 == len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Close ends the session.
func (c *Client) Close() error {
	fmt.Fprintf(c.out, "\\q\n")
	c.out.Flush()
	return c.conn.Close()
}
