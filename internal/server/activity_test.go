package server_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// TestServerActivityVerb checks the live session table over the wire:
// sessions appear on connect, show their client address, and disappear
// on close.
func TestServerActivityVerb(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	a, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := a.Activity()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatalf("ACTIVITY has %d sessions, want 2", len(snap))
	}
	for _, si := range snap {
		if si.Client == "" || !strings.Contains(si.Client, ":") {
			t.Errorf("session %d client = %q, want a remote address", si.ID, si.Client)
		}
		if si.State != "idle" {
			t.Errorf("session %d state = %q, want idle (ACTIVITY is a verb, not a statement)", si.ID, si.State)
		}
	}

	b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap, err = a.Activity()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("closed session still in ACTIVITY after 2s: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerActivityUnderLoad is the -race pin for the activity path: N
// concurrent sessions run mixed DML and SELECTs while a scraper loops
// ACTIVITY and STATS. Sessions must appear with untorn statement
// strings (every observed statement is exactly one of the statements a
// worker issues) and disappear once closed.
func TestServerActivityUnderLoad(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	setup, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("CREATE TABLE w (name VARCHAR, id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("INSERT INTO w VALUES ('seed', 0)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const workers = 6
	const opsPerWorker = 60
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < opsPerWorker; i++ {
				var stmt string
				if i%10 == 9 {
					stmt = fmt.Sprintf("INSERT INTO w VALUES ('w%d-%d', %d)", w, i, i)
				} else {
					stmt = "SELECT * FROM w WHERE name = 'seed'"
				}
				if _, err := c.Exec(stmt); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// The scraper: loops ACTIVITY + STATS until the workers finish,
	// checking every observed statement string is whole.
	scraper, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer scraper.Close()
	sawPeer := false
	go func() { wg.Wait(); close(stop) }()
	for done := false; !done; {
		select {
		case <-stop:
			done = true // one final scrape after the workers exit
		default:
		}
		snap, err := scraper.Activity()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) >= 2 {
			sawPeer = true
		}
		for _, si := range snap {
			if si.Statement == "" {
				continue
			}
			// Every observed statement must be, whole, one the workers
			// (or this test's setup) actually issued — a torn string
			// from a racy read would match none of these.
			valid := si.Statement == "SELECT * FROM w WHERE name = 'seed'" ||
				(strings.HasPrefix(si.Statement, "INSERT INTO w VALUES ('w") && strings.HasSuffix(si.Statement, ")")) ||
				si.Statement == "CREATE TABLE w (name VARCHAR, id INT)" ||
				si.Statement == "INSERT INTO w VALUES ('seed', 0)"
			if !valid {
				t.Fatalf("torn or foreign statement in ACTIVITY: %q", si.Statement)
			}
		}
		if _, err := scraper.Stats(); err != nil {
			t.Fatalf("mid-flight STATS: %v", err)
		}
	}
	if !sawPeer {
		t.Error("scraper never observed a worker session in ACTIVITY")
	}

	// After the workers close, only the scraper remains.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap, err := scraper.Activity()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker sessions lingering in ACTIVITY: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientTimeout points a client at a listener that accepts and then
// never responds: Exec must fail with a timeout instead of hanging.
func TestClientTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, answer nothing
		}
	}()

	c, err := server.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)

	start := time.Now()
	_, err = c.Exec("SELECT 1")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Exec against a stalled server returned no error")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("Exec error = %v, want a net timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Exec took %v to time out with a 100ms deadline", elapsed)
	}
}
