package server_test

import (
	"sync"
	"testing"

	"repro/internal/server"
)

// TestServerStatsVerb scrapes the STATS protocol verb while concurrent
// sessions are querying, then checks the counters reflect the traffic.
func TestServerStatsVerb(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	setup, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("CREATE TABLE w (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("INSERT INTO w VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	// Concurrent readers, with a scraper hitting STATS mid-flight: the
	// scrape must parse cleanly while queries are running.
	const clients, queries = 4, 25
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for q := 0; q < queries; q++ {
				if _, err := c.Exec("SELECT * FROM w WHERE id = 2"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	scraper, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := scraper.Stats(); err != nil {
			t.Fatalf("mid-flight STATS scrape: %v", err)
		}
	}
	wg.Wait()

	m, err := scraper.Stats()
	if err != nil {
		t.Fatal(err)
	}
	scraper.Close()
	if min := int64(clients*queries + 2); m["server_queries_total"] < min {
		t.Errorf("server_queries_total = %d, want >= %d", m["server_queries_total"], min)
	}
	if m["server_sessions_total"] < clients+2 {
		t.Errorf("server_sessions_total = %d, want >= %d", m["server_sessions_total"], clients+2)
	}
	if m["server_sessions_active"] < 1 { // the scraper itself
		t.Errorf("server_sessions_active = %d, want >= 1", m["server_sessions_active"])
	}
	if m["server_query_latency_count"] < int64(clients*queries) {
		t.Errorf("server_query_latency_count = %d, want >= %d", m["server_query_latency_count"], clients*queries)
	}
	if m["exec_select_total"] < int64(clients*queries) {
		t.Errorf("exec_select_total = %d, want >= %d", m["exec_select_total"], clients*queries)
	}
	if _, ok := m["pool_hits_total"]; !ok {
		t.Error("STATS output missing storage sampler counters")
	}
	// STATS is a protocol verb, not SQL: the same spelling through SQL
	// parsing (with a semicolon) must still fail as unsupported SQL.
	if _, err := setupErrProbe(addr, "STATS;"); err == nil {
		t.Error("SQL-parsed STATS; should be rejected")
	}
}

// setupErrProbe runs one statement on a throwaway connection.
func setupErrProbe(addr, stmt string) (*server.Response, error) {
	c, err := server.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Exec(stmt)
}
