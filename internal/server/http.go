package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// HTTPHandler returns the observability sidecar: an http.Handler the
// caller mounts on its own listener (spgist-server's -http flag),
// deliberately separate from the SQL port so scraping never competes
// with query traffic for the accept loop.
//
//	/metrics       Prometheus text exposition of the metrics registry
//	/activity      live session table as JSON (pg_stat_activity-style)
//	/healthz       liveness probe, "ok" when the process serves
//	/debug/pprof/  the standard Go profiler endpoints
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.db.Obs())
	})
	mux.HandleFunc("/activity", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.db.Activity().Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Degraded (read-only after a storage failure) answers 503 so
		// an orchestrator's readiness probe rotates the node out, with
		// the cause in the body for the human who goes looking.
		if state, detail := s.db.State(); state != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "%s\n%s\n", state, detail)
			return
		}
		w.Write([]byte("ok\n"))
	})
	// net/http/pprof only self-registers on http.DefaultServeMux; wire
	// its handlers onto this mux explicitly so the sidecar works without
	// touching the process-global mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
