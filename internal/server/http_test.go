package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/executor"
	"repro/internal/server"
	"repro/internal/sqlmini"
)

// promMetric is one parsed metric family from the text exposition.
type promMetric struct {
	typ     string
	samples map[string]float64 // full sample line key (name + labels) → value
}

// parsePrometheus is a strict hand-written parser for the Prometheus
// text exposition format (version 0.0.4) — the round-trip check the
// acceptance criteria ask for. It enforces the format rules a real
// scraper relies on: TYPE before samples, known types, float-parseable
// values, histogram buckets cumulative and capped by +Inf == _count.
func parsePrometheus(t *testing.T, body string) map[string]*promMetric {
	t.Helper()
	fams := make(map[string]*promMetric)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := f[2], f[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric type %q in %q", typ, line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("duplicate TYPE declaration for %s", name)
			}
			fams[name] = &promMetric{typ: typ, samples: make(map[string]float64)}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("non-float value %q in %q: %v", valStr, line, err)
		}
		// Strip labels and histogram-series suffixes to find the family.
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		fam, ok := fams[name]
		if !ok {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suffix); found {
					if f, ok2 := fams[base]; ok2 && f.typ == "histogram" {
						fam, ok = f, true
						break
					}
				}
			}
		}
		if !ok {
			t.Fatalf("sample %q has no preceding TYPE declaration", line)
		}
		if fam.typ == "counter" && val < 0 {
			t.Fatalf("counter sample %q is negative", line)
		}
		fam.samples[key] = val
	}
	// Histogram invariants: buckets cumulative, +Inf present and equal
	// to _count.
	for name, fam := range fams {
		if fam.typ != "histogram" {
			continue
		}
		inf, ok := fam.samples[name+`_bucket{le="+Inf"}`]
		if !ok {
			t.Fatalf("histogram %s has no +Inf bucket", name)
		}
		count, ok := fam.samples[name+"_count"]
		if !ok {
			t.Fatalf("histogram %s has no _count", name)
		}
		if inf != count {
			t.Fatalf("histogram %s: +Inf bucket %g != _count %g", name, inf, count)
		}
		for key, v := range fam.samples {
			if strings.Contains(key, "_bucket{") && v > inf {
				t.Fatalf("histogram %s: bucket %q = %g exceeds +Inf %g", name, key, v, inf)
			}
		}
	}
	return fams
}

// TestHTTPMetrics round-trips /metrics through the parser above and
// checks engine and server families are present with sane values.
func TestHTTPMetrics(t *testing.T) {
	db := executor.OpenMemory()
	defer db.Close()
	srv := server.New(db)
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	sess := sqlmini.NewSession(db)
	defer sess.Close()
	for _, stmt := range []string{
		`CREATE TABLE w (id INT)`,
		`INSERT INTO w VALUES (1), (2), (3)`,
		`SELECT * FROM w`,
	} {
		if _, err := sess.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	fams := parsePrometheus(t, string(body))
	if fam := fams["exec_select_total"]; fam == nil || fam.typ != "counter" || fam.samples["exec_select_total"] < 1 {
		t.Errorf("exec_select_total missing or wrong: %+v", fam)
	}
	if fam := fams["server_sessions_active"]; fam == nil || fam.typ != "gauge" {
		t.Errorf("server_sessions_active missing or wrong: %+v", fam)
	}
	if fam := fams["wait_lock_table_total"]; fam == nil || fam.typ != "counter" {
		t.Errorf("wait_lock_table_total missing or wrong: %+v", fam)
	}
	if fam := fams["server_query_latency_seconds"]; fam == nil || fam.typ != "histogram" {
		t.Errorf("server_query_latency_seconds histogram missing: %+v", fam)
	}
}

func TestHTTPActivityAndHealthz(t *testing.T) {
	// One server, two front doors: the SQL listener and the HTTP sidecar,
	// exactly the spgist-server -http topology.
	db := executor.OpenMemory()
	defer db.Close()
	srv := server.New(db)
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	defer func() { srv.Shutdown(); l.Close(); <-done }()
	addr := l.Addr().String()
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE w (id INT)"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/activity")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []struct {
		ID        int64  `json:"id"`
		Client    string `json:"client"`
		State     string `json:"state"`
		WaitEvent string `json:"wait_event"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatalf("/activity JSON: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("/activity has %d sessions, want 1", len(rows))
	}
	if rows[0].State != "idle" || rows[0].Client == "" {
		t.Fatalf("/activity row = %+v", rows[0])
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || strings.TrimSpace(string(hbody)) != "ok" {
		t.Fatalf("/healthz = %d %q", hresp.StatusCode, hbody)
	}

	presp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", presp.StatusCode)
	}
}

func TestStatsResetVerb(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE w (id INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO w VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if before["exec_insert_total"] != 5 {
		t.Fatalf("exec_insert_total = %d, want 5", before["exec_insert_total"])
	}
	if err := c.StatsReset(); err != nil {
		t.Fatal(err)
	}
	after, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after["exec_insert_total"] != 0 {
		t.Errorf("exec_insert_total = %d after STATS RESET, want 0", after["exec_insert_total"])
	}
	// The active-session gauge survives: it is instantaneous, not
	// cumulative.
	if after["server_sessions_active"] != 1 {
		t.Errorf("server_sessions_active = %d after STATS RESET, want 1", after["server_sessions_active"])
	}
}
