// Package server implements spgist-server's line-protocol TCP front end:
// one sqlmini session per connection over one shared executor.DB, which
// is what turns the engine's shared/exclusive statement locking into
// real concurrency — N clients running SELECTs make N scans proceed in
// parallel, while a client running DML serializes as a single writer.
//
// The wire protocol is deliberately trivial (newline-framed text, telnet-
// and netcat-friendly), standing in for the PostgreSQL frontend/backend
// protocol the paper's SP-GiST realization inherits for free:
//
//	client: one SQL statement per line (a trailing ';' is fine)
//	server: zero or more result lines, then exactly one terminator line
//
//	  #cols <tab-separated column names>   (SELECT/SHOW only)
//	  row <tab-separated values>           (one per result row)
//	  plan <access path>                   (SELECT/EXPLAIN)
//	  OK <n rows | message>                (success terminator)
//	  ERR <message>                        (failure terminator)
//
// Backslashes, newlines, carriage returns, and tabs inside row values
// are escaped as \\ \n \r \t so a value can never break the framing;
// the Go Client reverses the escaping.
//
// A line of "\q" (or EOF) ends the session.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/obs"
	"repro/internal/sqlmini"
)

// Server serves a shared database over a net.Listener.
type Server struct {
	db *executor.DB

	// Server-level metrics, registered on the database's registry so
	// one STATS scrape covers every layer. Pointers are cached here:
	// the per-statement path pays one atomic add, never a registry
	// lookup.
	sessionsTotal  *obs.Counter
	sessionsActive *obs.Gauge
	queriesTotal   *obs.Counter
	queryLatency   *obs.Histogram
	panicsTotal    *obs.Counter

	// idleTxnTimeout, when > 0, bounds how long a connection may sit
	// idle with an open transaction. An open transaction holds its
	// tables' write locks, so one stalled client could otherwise block
	// every writer (and all DDL) on those tables forever — the same
	// failure mode PostgreSQL's idle_in_transaction_session_timeout
	// exists for. On expiry the transaction is rolled back and the
	// connection closed with an ERR terminator.
	idleTxnTimeout time.Duration

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// New wraps a database. The caller keeps ownership: closing the server
// does not close the database.
func New(db *executor.DB) *Server {
	reg := db.Obs()
	return &Server{
		db:             db,
		conns:          make(map[net.Conn]struct{}),
		sessionsTotal:  reg.Counter("server_sessions_total"),
		sessionsActive: reg.Gauge("server_sessions_active"),
		queriesTotal:   reg.Counter("server_queries_total"),
		queryLatency:   reg.Histogram("server_query_latency"),
		panicsTotal:    reg.Counter("server_panics_total"),
	}
}

// SetIdleTxnTimeout bounds how long a connection may idle inside an
// open transaction before the server rolls it back and disconnects it
// (0 disables, the default). Set before Serve.
func (s *Server) SetIdleTxnTimeout(d time.Duration) { s.idleTxnTimeout = d }

// Serve accepts connections on l until the listener is closed (Shutdown
// or an external Close), running each connection's session on its own
// goroutine. It returns nil on clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if s.closed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.untrack(conn)
			s.session(conn)
		}()
	}
}

// Shutdown stops accepting (the caller closes the listener) and closes
// every live connection so Serve's goroutines drain.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.done = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// session runs one connection: a private sqlmini session over the shared
// database, one statement per line. The protocol verb STATS (not SQL —
// handled before the parser) dumps the metrics registry in the normal
// result framing.
func (s *Server) session(conn net.Conn) {
	s.sessionsTotal.Inc()
	s.sessionsActive.Add(1)
	defer s.sessionsActive.Add(-1)
	sess := sqlmini.NewSessionWithClient(s.db, conn.RemoteAddr().String())
	defer sess.Close()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := bufio.NewWriter(conn)
	for {
		// The idle-in-transaction clock runs only while waiting for the
		// client's next line with a transaction open — execution time and
		// idle time outside transactions are unbounded as before.
		if s.idleTxnTimeout > 0 {
			deadline := time.Time{}
			if sess.InTxn() {
				deadline = time.Now().Add(s.idleTxnTimeout)
			}
			conn.SetReadDeadline(deadline)
		}
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == `\q` || strings.EqualFold(line, "quit") {
			return
		}
		if strings.EqualFold(line, "STATS RESET") {
			s.db.Obs().Reset()
			fmt.Fprintf(out, "OK STATS RESET\n")
			if out.Flush() != nil {
				return
			}
			continue
		}
		if strings.EqualFold(line, "STATS") {
			s.writeStats(out)
			if out.Flush() != nil {
				return
			}
			continue
		}
		if strings.EqualFold(line, "ACTIVITY") {
			s.writeActivity(out)
			if out.Flush() != nil {
				return
			}
			continue
		}
		start := time.Now()
		res, err := s.execGuarded(sess, line)
		s.queryLatency.Observe(time.Since(start))
		s.queriesTotal.Inc()
		if err != nil {
			writeErr(out, err)
		} else {
			writeResult(out, res)
		}
		if out.Flush() != nil {
			return
		}
	}
	// A scan failure (most likely a statement over the 1MB line limit)
	// still owes the client its terminator line — without it the client
	// cannot distinguish "statement rejected" from "server died".
	if err := in.Err(); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() && sess.InTxn() {
			// Idle-in-transaction expiry: the deferred sess.Close rolls
			// the transaction back; tell the client why it was cut off.
			writeErr(out, fmt.Errorf("idle-in-transaction timeout (%s): transaction rolled back", s.idleTxnTimeout))
			out.Flush()
			return
		}
		writeErr(out, err)
		out.Flush()
	}
}

// execGuarded runs one statement, converting a panic anywhere in the
// parse/execute path into an ordinary ERR for this one statement. The
// recover sits here — above every engine layer — so the deferred
// unlocks between the panic point and this frame all run during
// unwinding; engine locks are released, this session's loop continues,
// and no other connection notices. The stack is logged to stderr and
// counted (server_panics_total): a panic is still a bug worth paging
// on, it just is not a process kill taking every session with it.
func (s *Server) execGuarded(sess *sqlmini.Session, line string) (res *sqlmini.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsTotal.Inc()
			fmt.Fprintf(os.Stderr, "server: panic executing %q: %v\n%s", line, r, debug.Stack())
			res, err = nil, fmt.Errorf("internal error: statement panicked: %v", r)
		}
	}()
	return sess.Exec(line)
}

// writeStats answers the STATS verb: every counter, gauge, and expanded
// histogram of the metrics registry as name/value rows — expvar-style
// flattened integers, same names and values as SHOW STATS — in the
// normal result framing, so the Go Client, netcat, and the CI scrape
// all read it like a SELECT.
func (s *Server) writeStats(out *bufio.Writer) {
	fmt.Fprintf(out, "#cols name\tvalue\n")
	n := 0
	s.db.Obs().Each(func(name string, value int64) {
		fmt.Fprintf(out, "row %s\t%d\n", name, value)
		n++
	})
	fmt.Fprintf(out, "OK %d\n", n)
}

// writeActivity answers the ACTIVITY verb: the live session table — one
// row per connected session with its state, wait event, and current
// statement — in the normal result framing. Statement text goes through
// escapeValue like any row value, so multi-line SQL cannot tear the
// framing.
func (s *Server) writeActivity(out *bufio.Writer) {
	fmt.Fprintf(out, "#cols id\tclient\tstate\twait_event\tstatement\telapsed_ms\n")
	snap := s.db.Activity().Snapshot()
	for _, si := range snap {
		fmt.Fprintf(out, "row %d\t%s\t%s\t%s\t%s\t%.3f\n",
			si.ID, escapeValue.Replace(si.Client), si.State, si.WaitEvent,
			escapeValue.Replace(si.Statement), si.StmtElapsed.Seconds()*1000)
	}
	fmt.Fprintf(out, "OK %d\n", len(snap))
}

// writeErr emits the failure terminator. Newlines inside the message
// would break the framing, so they are flattened.
func writeErr(w *bufio.Writer, err error) {
	msg := strings.ReplaceAll(err.Error(), "\n", " ")
	fmt.Fprintf(w, "ERR %s\n", msg)
}

// escapeValue keeps a row value from breaking the wire framing: newlines
// would end the line early and tabs would split the column, so both are
// emitted as their backslash escapes (the value "a\nb" arrives as the
// five characters `a\nb`). Values without framing characters — all of
// SQL-literal-insertable text — pass through verbatim.
var escapeValue = strings.NewReplacer("\\", `\\`, "\n", `\n`, "\r", `\r`, "\t", `\t`)

// writeResult emits one statement's result lines and the OK terminator.
func writeResult(w *bufio.Writer, res *sqlmini.Result) {
	if len(res.Columns) > 0 {
		fmt.Fprintf(w, "#cols %s\n", strings.Join(res.Columns, "\t"))
	}
	for i, row := range res.Rows {
		vals := make([]string, 0, len(row)+1)
		for _, d := range row {
			vals = append(vals, escapeValue.Replace(d.String()))
		}
		if res.Distances != nil {
			vals = append(vals, fmt.Sprintf("%g", res.Distances[i]))
		}
		fmt.Fprintf(w, "row %s\n", strings.Join(vals, "\t"))
	}
	if res.Plan != "" {
		fmt.Fprintf(w, "plan %s\n", res.Plan)
	}
	switch {
	case res.Msg != "":
		fmt.Fprintf(w, "OK %s\n", res.Msg)
	default:
		fmt.Fprintf(w, "OK %d\n", len(res.Rows))
	}
}
