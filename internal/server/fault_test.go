package server_test

import (
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// serveDB starts a server over an already-open database.
func serveDB(t *testing.T, db *executor.DB) (addr string, shutdown func()) {
	t.Helper()
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return l.Addr().String(), func() {
		srv.Shutdown()
		l.Close()
		<-done
	}
}

// TestSessionPanicRecovery: a statement that panics inside the engine
// fails with ERR on its own connection — which stays usable — while
// concurrent sessions never notice. One panicking client must not be a
// process kill.
func TestSessionPanicRecovery(t *testing.T) {
	db, err := executor.Open(executor.Options{
		Faults: executor.FaultInjection{PanicOn: "BOOM_7f3a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr, shutdown := serveDB(t, db)
	defer shutdown()

	victim, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	bystander, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	if _, err := victim.Exec("CREATE TABLE t (name VARCHAR, id INT)"); err != nil {
		t.Fatal(err)
	}

	// Bystander traffic racing the panic: every statement must succeed.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := bystander.Exec(fmt.Sprintf("INSERT INTO t VALUES ('w%03d', %d)", i, i)); err != nil {
				t.Errorf("bystander insert during panic: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 5; i++ {
		_, err := victim.Exec("SELECT * FROM t -- BOOM_7f3a")
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("poisoned statement %d: err=%v, want panicked ERR", i, err)
		}
		// The panicking session itself stays alive.
		if _, err := victim.Exec("SELECT * FROM t"); err != nil {
			t.Fatalf("victim session dead after panic %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// A third, fresh connection works too.
	late, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if _, err := late.Exec("SELECT * FROM t"); err != nil {
		t.Fatalf("fresh session after panics: %v", err)
	}
}

// TestScrubOverTCP: the CI smoke test — a server started over a
// database whose heap file took a bit flip while it was closed must
// report the corrupt page through a SCRUB statement on a plain TCP
// session, name the file and page, and refuse to serve the page to a
// scan.
func TestScrubOverTCP(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := tb.Insert(catalog.Tuple{catalog.NewText(fmt.Sprintf("w%03d", i)), catalog.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	heapFile := tb.File()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the closed heap file.
	path := filepath.Join(dir, heapFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[storage.DefaultPageSize+60] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err = executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr, shutdown := serveDB(t, db)
	defer shutdown()

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Exec("SCRUB")
	if err != nil {
		t.Fatalf("SCRUB over TCP: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SCRUB rows = %v, want exactly the flipped page", res.Rows)
	}
	if got := res.Rows[0]; got[0] != heapFile || got[1] != "1" || !strings.Contains(got[2], "checksum") {
		t.Fatalf("SCRUB row = %v, want [%s 1 checksum...]", got, heapFile)
	}
	if !strings.Contains(res.Plan, "1 corrupt") {
		t.Fatalf("SCRUB plan = %q", res.Plan)
	}

	// The corrupt page is never served over the wire either.
	if _, err := c.Exec("SELECT * FROM t"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("scan of corrupt page over TCP: %v, want corrupt ERR", err)
	}
	// The connection survives the failed scan.
	if _, err := c.Exec("SHOW STATE"); err != nil {
		t.Fatalf("session dead after corrupt-page scan: %v", err)
	}
}

// TestHealthzDegraded: /healthz answers 200 "ok" on a healthy engine
// and 503 "degraded" with the cause once the log dies.
func TestHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Crash()
	srv := server.New(db)
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}

	if _, err := db.CreateTable("t", []executor.Column{{Name: "name", Type: catalog.Text}}); err != nil {
		t.Fatal(err)
	}
	db.WAL().InjectFault(fmt.Errorf("log device gone"))
	tb, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	tb.Insert(catalog.Tuple{catalog.NewText("w")}) // trips the dead log

	if code, body := get(); code != 503 || !strings.Contains(body, "degraded") || !strings.Contains(body, "log device gone") {
		t.Fatalf("degraded /healthz = %d %q", code, body)
	}
}
