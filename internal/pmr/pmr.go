// Package pmr instantiates SP-GiST as a disk-based PMR quadtree (Nelson &
// Samet) over line segments, the structure the paper compares against the
// R-tree in Figure 15.
//
// The PMR quadtree is space-driven: a cell splits into four equal
// quadrants when an insertion pushes its population past the splitting
// threshold, and it splits only once per triggering insertion — children
// left over the threshold wait for future insertions (Params.SplitOnce).
// A segment is stored in every leaf cell it crosses (Params.MultiAssign),
// and scans deduplicate results by RID. Decomposition stops at the
// resolution limit.
//
// Supported operators:
//
//	"="   segment equality (endpoints in either order)
//	"&&"  window query: segments intersecting a box
//	"@@"  incremental NN of a point by segment distance
package pmr

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Defaults for the interface parameters.
const (
	DefaultThreshold  = 8
	DefaultResolution = 16
)

// DefaultWorld is the paper's experiment space.
var DefaultWorld = geom.MakeBox(0, 0, 100, 100)

// OpClass is the PMR-quadtree instantiation. Indexed segments must lie
// within the configured world box.
type OpClass struct {
	world      geom.Box
	threshold  int
	resolution int
}

// Option tweaks an OpClass.
type Option func(*OpClass)

// WithWorld sets the root cell. Every indexed segment must intersect it.
func WithWorld(w geom.Box) Option { return func(o *OpClass) { o.world = w } }

// WithThreshold sets the splitting threshold (the bucket size).
func WithThreshold(t int) Option {
	return func(o *OpClass) {
		if t > 0 {
			o.threshold = t
		}
	}
}

// WithResolution caps the number of quadrant decompositions.
func WithResolution(r int) Option {
	return func(o *OpClass) {
		if r > 0 {
			o.resolution = r
		}
	}
}

// New returns the PMR-quadtree opclass.
func New(opts ...Option) *OpClass {
	o := &OpClass{world: DefaultWorld, threshold: DefaultThreshold, resolution: DefaultResolution}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Name implements core.OpClass.
func (o *OpClass) Name() string { return "spgist_pmrquadtree" }

// Params implements core.OpClass.
func (o *OpClass) Params() core.Params {
	return core.Params{
		NumPartitions: 4,
		PathShrink:    core.NeverShrink,
		NodeShrink:    false,
		BucketSize:    o.threshold,
		Resolution:    o.resolution,
		SplitOnce:     true,
		MultiAssign:   true,
		EqualityOp:    "=",
	}
}

// RootRecon implements core.OpClass: the world cell.
func (o *OpClass) RootRecon() core.Value { return o.world }

// EncodeSegment serializes a segment in 32 bytes.
func EncodeSegment(s geom.Segment) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(s.A.X))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s.A.Y))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(s.B.X))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(s.B.Y))
	return b
}

// DecodeSegment parses a segment written by EncodeSegment.
func DecodeSegment(b []byte) geom.Segment {
	return geom.Segment{
		A: geom.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		},
		B: geom.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		},
	}
}

// EncodeKey implements core.OpClass.
func (o *OpClass) EncodeKey(v core.Value) []byte { return EncodeSegment(v.(geom.Segment)) }

// DecodeKey implements core.OpClass.
func (o *OpClass) DecodeKey(b []byte) core.Value { return DecodeSegment(b) }

// EncodePred implements core.OpClass. PMR inner nodes carry no predicate:
// the cell geometry is derived from the path (the recon value).
func (o *OpClass) EncodePred(core.Value) []byte { return nil }

// DecodePred implements core.OpClass.
func (o *OpClass) DecodePred([]byte) core.Value { return nil }

// EncodeLabel implements core.OpClass.
func (o *OpClass) EncodeLabel(v core.Value) []byte { return []byte{v.(byte)} }

// DecodeLabel implements core.OpClass.
func (o *OpClass) DecodeLabel(b []byte) core.Value { return b[0] }

// Choose implements core.OpClass: descend into every quadrant the segment
// crosses (multi-assignment).
func (o *OpClass) Choose(in *core.ChooseIn) core.ChooseOut {
	s := in.Key.(geom.Segment)
	cell := in.Recon.(geom.Box)
	var matches []core.ChooseMatch
	for i, l := range in.Labels {
		q := cell.Quadrant(int(l.(byte)))
		if s.IntersectsBox(q) {
			matches = append(matches, core.ChooseMatch{Entry: i, LevelAdd: 1, Recon: q})
		}
	}
	if len(matches) == 0 {
		// The segment lies outside the world box; park it in the nearest
		// quadrant so it is never lost (it still answers equality queries
		// through LeafConsistent).
		best, bestDist := 0, math.Inf(1)
		c := geom.Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2}
		for i, l := range in.Labels {
			q := cell.Quadrant(int(l.(byte)))
			if d := q.DistToPoint(c); d < bestDist {
				best, bestDist = i, d
			}
		}
		q := cell.Quadrant(int(in.Labels[best].(byte)))
		matches = append(matches, core.ChooseMatch{Entry: best, LevelAdd: 1, Recon: q})
	}
	return core.ChooseOut{Action: core.MatchNode, Matches: matches}
}

// PickSplit implements core.OpClass: quarter the cell and route each
// segment into every quadrant it crosses.
func (o *OpClass) PickSplit(in *core.PickSplitIn) core.PickSplitOut {
	cell := in.Recon.(geom.Box)
	out := core.PickSplitOut{
		Labels:    []core.Value{byte(0), byte(1), byte(2), byte(3)},
		Mapping:   make([][]int, len(in.Keys)),
		LevelAdds: []int{1, 1, 1, 1},
		Recons: []core.Value{
			cell.Quadrant(0), cell.Quadrant(1), cell.Quadrant(2), cell.Quadrant(3),
		},
	}
	for i, kv := range in.Keys {
		s := kv.(geom.Segment)
		var ps []int
		for p := 0; p < 4; p++ {
			if s.IntersectsBox(cell.Quadrant(p)) {
				ps = append(ps, p)
			}
		}
		if len(ps) == 0 {
			// Out-of-world segment: keep it in the quadrant nearest its
			// midpoint, as in Choose.
			c := geom.Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2}
			best, bestDist := 0, math.Inf(1)
			for p := 0; p < 4; p++ {
				if d := cell.Quadrant(p).DistToPoint(c); d < bestDist {
					best, bestDist = p, d
				}
			}
			ps = []int{best}
		}
		out.Mapping[i] = ps
	}
	return out
}

// InnerConsistent implements core.OpClass for "=" and "&&".
func (o *OpClass) InnerConsistent(in *core.InnerIn) core.InnerOut {
	var out core.InnerOut
	cell := in.Recon.(geom.Box)
	follow := func(i int, q geom.Box) {
		out.Follow = append(out.Follow, core.InnerFollow{Entry: i, LevelAdd: 1, Recon: q})
	}
	for i, l := range in.Labels {
		q := cell.Quadrant(int(l.(byte)))
		if in.Query == nil {
			follow(i, q)
			continue
		}
		switch in.Query.Op {
		case "=":
			if in.Query.Arg.(geom.Segment).IntersectsBox(q) {
				follow(i, q)
			}
		case "&&":
			if in.Query.Arg.(geom.Box).Intersects(q) {
				follow(i, q)
			}
		}
	}
	if in.Query != nil && in.Query.Op == "=" && len(out.Follow) == 0 {
		// Out-of-world segments are parked in the quadrant nearest their
		// midpoint (see Choose); replay the same deterministic rule so
		// equality search still reaches them.
		s := in.Query.Arg.(geom.Segment)
		c := geom.Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2}
		best, bestDist := -1, math.Inf(1)
		for i, l := range in.Labels {
			q := cell.Quadrant(int(l.(byte)))
			if d := q.DistToPoint(c); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best >= 0 {
			follow(best, cell.Quadrant(int(in.Labels[best].(byte))))
		}
	}
	return out
}

// LeafConsistent implements core.OpClass.
func (o *OpClass) LeafConsistent(q *core.Query, key core.Value, _ int) bool {
	s := key.(geom.Segment)
	switch q.Op {
	case "=":
		return s.Eq(q.Arg.(geom.Segment))
	case "&&":
		return s.IntersectsBox(q.Arg.(geom.Box))
	}
	return false
}

// NNInner implements core.NNOpClass for point queries over segments.
func (o *OpClass) NNInner(q core.Value, _ core.Value, label core.Value, _ int, recon core.Value, parentDist float64) (float64, core.Value, int) {
	qp := q.(geom.Point)
	cell := recon.(geom.Box).Quadrant(int(label.(byte)))
	d := cell.DistToPoint(qp)
	if d < parentDist {
		d = parentDist
	}
	return d, cell, 1
}

// NNLeaf implements core.NNOpClass.
func (o *OpClass) NNLeaf(q core.Value, key core.Value) float64 {
	return key.(geom.Segment).DistToPoint(q.(geom.Point))
}
