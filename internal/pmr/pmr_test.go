package pmr

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/storage"
)

func newTree(t testing.TB, opts ...Option) *core.Tree {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(8192), 128)
	tr, err := core.Create(bp, New(opts...))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(i int) heap.RID { return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)} }

// randSegment mirrors the paper's line-segment datasets: uniform midpoints
// in the world with short random extents.
func randSegment(r *rand.Rand) geom.Segment {
	cx := r.Float64() * 100
	cy := r.Float64() * 100
	dx := (r.Float64() - 0.5) * 10
	dy := (r.Float64() - 0.5) * 10
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 100 {
			return 100
		}
		return v
	}
	return geom.Segment{
		A: geom.Point{X: clamp(cx - dx), Y: clamp(cy - dy)},
		B: geom.Point{X: clamp(cx + dx), Y: clamp(cy + dy)},
	}
}

func buildRandom(t testing.TB, tr *core.Tree, n int, seed int64) []geom.Segment {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	segs := make([]geom.Segment, n)
	for i := 0; i < n; i++ {
		segs[i] = randSegment(r)
		if err := tr.Insert(segs[i], rid(i)); err != nil {
			t.Fatalf("insert %v: %v", segs[i], err)
		}
	}
	return segs
}

func TestSegmentEncodingRoundTrip(t *testing.T) {
	s := geom.Segment{A: geom.Point{X: 1.5, Y: -2}, B: geom.Point{X: 99, Y: 0.125}}
	got := DecodeSegment(EncodeSegment(s))
	if !got.A.Eq(s.A) || !got.B.Eq(s.B) {
		t.Fatalf("round trip: %v != %v", got, s)
	}
}

func TestExactMatchAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	segs := buildRandom(t, tr, 3000, 1)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q := segs[r.Intn(len(segs))]
		want := 0
		for _, s := range segs {
			if s.Eq(q) {
				want++
			}
		}
		rids, err := tr.Lookup(&core.Query{Op: "=", Arg: q})
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != want {
			t.Fatalf("= %v: got %d, want %d", q, len(rids), want)
		}
	}
	// Absent segment.
	rids, err := tr.Lookup(&core.Query{Op: "=", Arg: geom.Segment{
		A: geom.Point{X: 1.23456, Y: 2}, B: geom.Point{X: 3, Y: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 0 {
		t.Fatalf("absent segment found %d times", len(rids))
	}
}

func TestWindowQueryAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	segs := buildRandom(t, tr, 3000, 3)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		b := geom.MakeBox(r.Float64()*100, r.Float64()*100, r.Float64()*100, r.Float64()*100)
		want := 0
		for _, s := range segs {
			if s.IntersectsBox(b) {
				want++
			}
		}
		rids, err := tr.Lookup(&core.Query{Op: "&&", Arg: b})
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != want {
			t.Fatalf("&& %v: got %d, want %d", b, len(rids), want)
		}
	}
}

// A window query must report a segment crossing many cells exactly once —
// the MultiAssign deduplication contract.
func TestNoDuplicateResultsForLongSegments(t *testing.T) {
	tr := newTree(t, WithThreshold(2))
	// A diagonal across the whole world plus enough short segments to
	// force deep decomposition.
	long := geom.Segment{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 100, Y: 100}}
	if err := tr.Insert(long, rid(0)); err != nil {
		t.Fatal(err)
	}
	buildRandom(t, tr, 500, 5)
	rids, err := tr.Lookup(&core.Query{Op: "&&", Arg: geom.MakeBox(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[heap.RID]int{}
	for _, rd := range rids {
		seen[rd]++
		if seen[rd] > 1 {
			t.Fatalf("rid %v reported %d times", rd, seen[rd])
		}
	}
	if seen[rid(0)] != 1 {
		t.Fatal("long diagonal segment missing from window query")
	}
}

func TestNNAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	segs := buildRandom(t, tr, 2000, 6)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		k := 1 + r.Intn(32)
		_, _, dists, err := tr.NN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]float64, len(segs))
		for i, s := range segs {
			all[i] = s.DistToPoint(q)
		}
		sort.Float64s(all)
		for i := range dists {
			if dists[i] != all[i] {
				t.Fatalf("trial %d: NN #%d dist %g, brute force %g", trial, i, dists[i], all[i])
			}
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	segs := buildRandom(t, tr, 500, 8)
	n, err := tr.Delete(segs[0], rid(0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delete removed %d", n)
	}
	rids, err := tr.Lookup(&core.Query{Op: "=", Arg: segs[0]})
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range rids {
		if rd == rid(0) {
			t.Fatal("deleted segment still found")
		}
	}
}

// The resolution cap must stop decomposition: identical segments pile up
// in one cell instead of splitting forever.
func TestResolutionCap(t *testing.T) {
	tr := newTree(t, WithThreshold(2), WithResolution(4))
	s := geom.Segment{A: geom.Point{X: 10, Y: 10}, B: geom.Point{X: 11, Y: 11}}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(s, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	rids, err := tr.Lookup(&core.Query{Op: "=", Arg: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 200 {
		t.Fatalf("got %d, want 200", len(rids))
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxNodeHeight > 6 {
		t.Fatalf("resolution cap ignored: height %d", st.MaxNodeHeight)
	}
}

// Segments outside the world must still be retrievable by equality even
// though they cannot be assigned a proper cell.
func TestOutOfWorldSegment(t *testing.T) {
	tr := newTree(t, WithThreshold(2))
	out := geom.Segment{A: geom.Point{X: 200, Y: 200}, B: geom.Point{X: 210, Y: 210}}
	if err := tr.Insert(out, rid(0)); err != nil {
		t.Fatal(err)
	}
	buildRandom(t, tr, 200, 9)
	rids, err := tr.Lookup(&core.Query{Op: "=", Arg: out})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 {
		t.Fatalf("out-of-world segment found %d times, want 1", len(rids))
	}
}
