package pquad

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/storage"
)

func newTree(t testing.TB) *core.Tree {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(8192), 128)
	tr, err := core.Create(bp, New())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(i int) heap.RID { return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)} }

func buildRandom(t testing.TB, tr *core.Tree, n int, seed int64) []geom.Point {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		if err := tr.Insert(pts[i], rid(i)); err != nil {
			t.Fatalf("insert %v: %v", pts[i], err)
		}
	}
	return pts
}

func TestQuadrantClassification(t *testing.T) {
	c := geom.Point{X: 5, Y: 5}
	cases := []struct {
		p    geom.Point
		want byte
	}{
		{geom.Point{X: 5, Y: 5}, LabelSelf},
		{geom.Point{X: 1, Y: 1}, LabelSW},
		{geom.Point{X: 9, Y: 1}, LabelSE},
		{geom.Point{X: 1, Y: 9}, LabelNW},
		{geom.Point{X: 9, Y: 9}, LabelNE},
		{geom.Point{X: 5, Y: 1}, LabelSE}, // x tie goes east
		{geom.Point{X: 1, Y: 5}, LabelNW}, // y tie goes north
		{geom.Point{X: 5, Y: 9}, LabelNE},
	}
	for _, cse := range cases {
		if got := quadrant(cse.p, c); got != cse.want {
			t.Errorf("quadrant(%v) = %d, want %d", cse.p, got, cse.want)
		}
	}
}

func TestPointAndRangeAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	pts := buildRandom(t, tr, 5000, 1)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q := pts[r.Intn(len(pts))]
		rids, err := tr.Lookup(&core.Query{Op: "@", Arg: q})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			if p.Eq(q) {
				want++
			}
		}
		if len(rids) != want {
			t.Fatalf("@ %v: got %d, want %d", q, len(rids), want)
		}

		b := geom.MakeBox(r.Float64()*100, r.Float64()*100, r.Float64()*100, r.Float64()*100)
		rids, err = tr.Lookup(&core.Query{Op: "^", Arg: b})
		if err != nil {
			t.Fatal(err)
		}
		want = 0
		for _, p := range pts {
			if b.Contains(p) {
				want++
			}
		}
		if len(rids) != want {
			t.Fatalf("^ %v: got %d, want %d", b, len(rids), want)
		}
	}
}

func TestNNAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	pts := buildRandom(t, tr, 3000, 3)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		k := 1 + r.Intn(64)
		_, _, dists, err := tr.NN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]float64, len(pts))
		for i, p := range pts {
			all[i] = p.Dist(q)
		}
		sort.Float64s(all)
		for i := range dists {
			if dists[i] != all[i] {
				t.Fatalf("trial %d: NN #%d dist %g, brute force %g", trial, i, dists[i], all[i])
			}
		}
	}
}

func TestDeleteAndDuplicates(t *testing.T) {
	tr := newTree(t)
	p := geom.Point{X: 3, Y: 4}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(p, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := tr.Delete(p, rid(7)); err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	rids, err := tr.Lookup(&core.Query{Op: "@", Arg: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 99 {
		t.Fatalf("after delete: %d, want 99", len(rids))
	}
}

// The quadtree fans out 4-way, so with uniform data it should be shallower
// than a kd-tree over the same points (it decomposes both dimensions per
// level).
func TestFourWayFanout(t *testing.T) {
	tr := newTree(t)
	buildRandom(t, tr, 4000, 5)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxNodeHeight > 30 {
		t.Fatalf("unexpectedly deep point quadtree: %d", st.MaxNodeHeight)
	}
	if st.Keys != 4000 {
		t.Fatalf("Keys = %d", st.Keys)
	}
}
