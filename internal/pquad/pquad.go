// Package pquad instantiates SP-GiST as a disk-based point quadtree
// (Finkel & Bentley) over 2-D points, as in the paper's Figure 3(a): a
// data-driven structure where every inner node stores the point that
// split its cell and fans out into the four quadrants around it.
//
//	PathShrink = NeverShrink   NodeShrink = false
//	BucketSize = 1             NoOfSpacePartitions = 4
//
// Supported operators: "@" (point equality), "^" (inside box), "@@"
// (incremental NN by Euclidean distance).
package pquad

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
)

// Partition labels: the center point plus the four quadrants around it.
const (
	LabelSelf = byte(0)
	LabelSW   = byte(1)
	LabelSE   = byte(2)
	LabelNW   = byte(3)
	LabelNE   = byte(4)
)

// OpClass is the point-quadtree instantiation.
type OpClass struct{}

// New returns the point-quadtree opclass.
func New() *OpClass { return &OpClass{} }

// Name implements core.OpClass.
func (o *OpClass) Name() string { return "spgist_pquadtree" }

// Params implements core.OpClass.
func (o *OpClass) Params() core.Params {
	return core.Params{
		NumPartitions: 4,
		PathShrink:    core.NeverShrink,
		NodeShrink:    false,
		BucketSize:    1,
		EqualityOp:    "@",
	}
}

// RootRecon implements core.OpClass: the unbounded plane.
func (o *OpClass) RootRecon() core.Value {
	inf := math.Inf(1)
	return geom.Box{Min: geom.Point{X: -inf, Y: -inf}, Max: geom.Point{X: inf, Y: inf}}
}

// EncodeKey implements core.OpClass.
func (o *OpClass) EncodeKey(v core.Value) []byte { return kdtree.EncodePoint(v.(geom.Point)) }

// DecodeKey implements core.OpClass.
func (o *OpClass) DecodeKey(b []byte) core.Value { return kdtree.DecodePoint(b) }

// EncodePred implements core.OpClass.
func (o *OpClass) EncodePred(v core.Value) []byte { return kdtree.EncodePoint(v.(geom.Point)) }

// DecodePred implements core.OpClass.
func (o *OpClass) DecodePred(b []byte) core.Value { return kdtree.DecodePoint(b) }

// EncodeLabel implements core.OpClass.
func (o *OpClass) EncodeLabel(v core.Value) []byte { return []byte{v.(byte)} }

// DecodeLabel implements core.OpClass.
func (o *OpClass) DecodeLabel(b []byte) core.Value { return b[0] }

// quadrant classifies k against the center point: west is x < cx, south
// is y < cy; ties go east/north, mirroring the kd-tree's >= convention.
func quadrant(k, c geom.Point) byte {
	if k.Eq(c) {
		return LabelSelf
	}
	switch {
	case k.X < c.X && k.Y < c.Y:
		return LabelSW
	case k.X >= c.X && k.Y < c.Y:
		return LabelSE
	case k.X < c.X:
		return LabelNW
	default:
		return LabelNE
	}
}

// childBox clips the parent's bounding box to a quadrant around c.
func childBox(parent geom.Box, c geom.Point, label byte) geom.Box {
	b := parent
	switch label {
	case LabelSelf:
		return geom.Box{Min: c, Max: c}
	case LabelSW:
		b.Max = geom.Point{X: c.X, Y: c.Y}
	case LabelSE:
		b.Min.X = c.X
		b.Max.Y = c.Y
	case LabelNW:
		b.Max.X = c.X
		b.Min.Y = c.Y
	case LabelNE:
		b.Min = geom.Point{X: c.X, Y: c.Y}
	}
	return b
}

// quadrantMayContain reports whether the quadrant around c can hold a
// point inside box q, using strict/inclusive bounds that match the
// quadrant assignment rule.
func quadrantMayContain(q geom.Box, c geom.Point, label byte) bool {
	switch label {
	case LabelSelf:
		return q.Contains(c)
	case LabelSW:
		return q.Min.X < c.X && q.Min.Y < c.Y
	case LabelSE:
		return q.Max.X >= c.X && q.Min.Y < c.Y
	case LabelNW:
		return q.Min.X < c.X && q.Max.Y >= c.Y
	default:
		return q.Max.X >= c.X && q.Max.Y >= c.Y
	}
}

// Choose implements core.OpClass.
func (o *OpClass) Choose(in *core.ChooseIn) core.ChooseOut {
	k := in.Key.(geom.Point)
	c := in.Pred.(geom.Point)
	want := quadrant(k, c)
	for i, l := range in.Labels {
		if l.(byte) == want {
			var recon core.Value
			if box, ok := in.Recon.(geom.Box); ok {
				recon = childBox(box, c, want)
			}
			return core.ChooseOut{
				Action:  core.MatchNode,
				Matches: []core.ChooseMatch{{Entry: i, LevelAdd: 1, Recon: recon}},
			}
		}
	}
	return core.ChooseOut{Action: core.AddNode, NewLabel: want}
}

// PickSplit implements core.OpClass: the first (old) point becomes the
// cell's center and the remaining keys scatter into its quadrants.
func (o *OpClass) PickSplit(in *core.PickSplitIn) core.PickSplitOut {
	c := in.Keys[0].(geom.Point)
	labels := []byte{LabelSelf, LabelSW, LabelSE, LabelNW, LabelNE}
	pos := map[byte]int{LabelSelf: 0, LabelSW: 1, LabelSE: 2, LabelNW: 3, LabelNE: 4}
	mapping := make([][]int, len(in.Keys))
	allSame := true
	for i, kv := range in.Keys {
		k := kv.(geom.Point)
		if !k.Eq(c) {
			allSame = false
		}
		mapping[i] = []int{pos[quadrant(k, c)]}
	}
	if allSame {
		return core.PickSplitOut{Failed: true}
	}
	out := core.PickSplitOut{
		Pred:      c,
		Labels:    make([]core.Value, len(labels)),
		Mapping:   mapping,
		LevelAdds: []int{1, 1, 1, 1, 1},
	}
	for i, lb := range labels {
		out.Labels[i] = lb
	}
	if box, ok := in.Recon.(geom.Box); ok {
		out.Recons = make([]core.Value, len(labels))
		for i, lb := range labels {
			out.Recons[i] = childBox(box, c, lb)
		}
	}
	return out
}

// InnerConsistent implements core.OpClass for "@" and "^".
func (o *OpClass) InnerConsistent(in *core.InnerIn) core.InnerOut {
	var out core.InnerOut
	c := in.Pred.(geom.Point)
	follow := func(i int) {
		lb := in.Labels[i].(byte)
		var recon core.Value
		if box, ok := in.Recon.(geom.Box); ok {
			recon = childBox(box, c, lb)
		}
		out.Follow = append(out.Follow, core.InnerFollow{Entry: i, LevelAdd: 1, Recon: recon})
	}
	if in.Query == nil {
		for i := range in.Labels {
			follow(i)
		}
		return out
	}
	switch in.Query.Op {
	case "@":
		q := in.Query.Arg.(geom.Point)
		want := quadrant(q, c)
		for i, l := range in.Labels {
			if l.(byte) == want {
				follow(i)
			}
		}
	case "^":
		q := in.Query.Arg.(geom.Box)
		for i, l := range in.Labels {
			if quadrantMayContain(q, c, l.(byte)) {
				follow(i)
			}
		}
	}
	return out
}

// LeafConsistent implements core.OpClass.
func (o *OpClass) LeafConsistent(q *core.Query, key core.Value, _ int) bool {
	k := key.(geom.Point)
	switch q.Op {
	case "@":
		return k.Eq(q.Arg.(geom.Point))
	case "^":
		return q.Arg.(geom.Box).Contains(k)
	}
	return false
}

// NNInner implements core.NNOpClass.
func (o *OpClass) NNInner(q core.Value, pred core.Value, label core.Value, _ int, recon core.Value, parentDist float64) (float64, core.Value, int) {
	qp := q.(geom.Point)
	c := pred.(geom.Point)
	box := childBox(recon.(geom.Box), c, label.(byte))
	d := box.DistToPoint(qp)
	if d < parentDist {
		d = parentDist
	}
	return d, box, 1
}

// NNLeaf implements core.NNOpClass.
func (o *OpClass) NNLeaf(q core.Value, key core.Value) float64 {
	return q.(geom.Point).Dist(key.(geom.Point))
}
