// Package storage provides the disk substrate shared by every access
// method in this repository: fixed-size pages backed by a file (or by
// memory in tests), a clock-replacement buffer pool with pin/unpin
// semantics and I/O accounting, and a slotted-page record layout.
//
// This substitutes for the PostgreSQL storage manager and buffer manager
// that the paper's SP-GiST implementation talks to through the
// "PostgreSQL storage interface" (paper section 4.2). The unit of cost in
// every experiment is the page access, so the substrate counts logical
// accesses, buffer hits, and physical reads/writes.
package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPageSize is the page size used throughout the repository. It
// matches PostgreSQL's default block size.
const DefaultPageSize = 8192

// PageID identifies a page within one DiskManager. Page 0 is always the
// metadata page of whatever structure owns the file.
type PageID uint32

// InvalidPageID is the sentinel "no page" value.
const InvalidPageID PageID = 0xFFFFFFFF

// IOStats counts physical page traffic at the DiskManager level.
type IOStats struct {
	Reads  atomic.Int64
	Writes atomic.Int64
	Allocs atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *IOStats) Snapshot() (reads, writes, allocs int64) {
	return s.Reads.Load(), s.Writes.Load(), s.Allocs.Load()
}

// Reset zeroes the counters (SHOW STATS RESET).
func (s *IOStats) Reset() {
	s.Reads.Store(0)
	s.Writes.Store(0)
	s.Allocs.Store(0)
}

// DiskManager reads and writes fixed-size pages by PageID.
type DiskManager interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// ReadPage fills buf (len == PageSize) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len == PageSize) as the page contents.
	WritePage(id PageID, buf []byte) error
	// AllocatePage extends the file by one zeroed page.
	AllocatePage() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() uint32
	// Stats exposes the physical I/O counters.
	Stats() *IOStats
	// Sync flushes to stable storage.
	Sync() error
	// Close releases the underlying resource.
	Close() error
}

// FileDiskManager is a DiskManager over a single operating-system file.
//
// Reads and writes are positional (pread/pwrite via File.ReadAt/WriteAt)
// and take no lock, so concurrent page I/O never serializes here; the
// mutex only orders file extension in AllocatePage.
type FileDiskManager struct {
	mu       sync.Mutex // guards AllocatePage's read-extend-publish of numPages
	f        *os.File
	pageSize int
	numPages atomic.Uint32
	stats    IOStats
}

// OpenFile opens (creating if necessary) a page file at path.
func OpenFile(path string, pageSize int) (*FileDiskManager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of page size %d", path, st.Size(), pageSize)
	}
	d := &FileDiskManager{f: f, pageSize: pageSize}
	d.numPages.Store(uint32(st.Size() / int64(pageSize)))
	return d, nil
}

// PageSize implements DiskManager.
func (d *FileDiskManager) PageSize() int { return d.pageSize }

// NumPages implements DiskManager.
func (d *FileDiskManager) NumPages() uint32 { return d.numPages.Load() }

// Stats implements DiskManager.
func (d *FileDiskManager) Stats() *IOStats { return &d.stats }

// ReadPage implements DiskManager.
func (d *FileDiskManager) ReadPage(id PageID, buf []byte) error {
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: read buffer size %d != page size %d", len(buf), d.pageSize)
	}
	if n := d.numPages.Load(); uint32(id) >= n {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, n)
	}
	if _, err := d.f.ReadAt(buf, int64(id)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	d.stats.Reads.Add(1)
	return nil
}

// WritePage implements DiskManager.
func (d *FileDiskManager) WritePage(id PageID, buf []byte) error {
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: write buffer size %d != page size %d", len(buf), d.pageSize)
	}
	if n := d.numPages.Load(); uint32(id) >= n {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, n)
	}
	if _, err := d.f.WriteAt(buf, int64(id)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	d.stats.Writes.Add(1)
	return nil
}

// AllocatePage implements DiskManager.
func (d *FileDiskManager) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.numPages.Load())
	zero := make([]byte, d.pageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*int64(d.pageSize)); err != nil {
		return InvalidPageID, fmt.Errorf("storage: extend to page %d: %w", id, err)
	}
	d.numPages.Add(1)
	d.stats.Allocs.Add(1)
	return id, nil
}

// Sync implements DiskManager.
func (d *FileDiskManager) Sync() error { return d.f.Sync() }

// Close implements DiskManager.
func (d *FileDiskManager) Close() error { return d.f.Close() }

// MemDiskManager is an in-memory DiskManager used by tests and by the
// benchmark harness when it wants to exclude the filesystem from
// measurements while keeping page-level accounting.
//
// Page I/O takes the lock shared so concurrent reads (and writes to
// distinct pages) proceed in parallel, mirroring the positional-I/O file
// manager: benches against the mock measure pool behavior, not a mock
// mutex. Exclusion per page is the buffer pool's job — it never issues
// two concurrent I/Os for the same PageID — so only AllocatePage, which
// grows the slice, needs the lock exclusive.
type MemDiskManager struct {
	mu       sync.RWMutex
	pages    [][]byte
	pageSize int
	stats    IOStats
}

// NewMem returns an empty in-memory disk with the given page size.
func NewMem(pageSize int) *MemDiskManager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemDiskManager{pageSize: pageSize}
}

// PageSize implements DiskManager.
func (d *MemDiskManager) PageSize() int { return d.pageSize }

// NumPages implements DiskManager.
func (d *MemDiskManager) NumPages() uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return uint32(len(d.pages))
}

// Stats implements DiskManager.
func (d *MemDiskManager) Stats() *IOStats { return &d.stats }

// ReadPage implements DiskManager.
func (d *MemDiskManager) ReadPage(id PageID, buf []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(d.pages))
	}
	copy(buf, d.pages[id])
	d.stats.Reads.Add(1)
	return nil
}

// WritePage implements DiskManager.
func (d *MemDiskManager) WritePage(id PageID, buf []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, len(d.pages))
	}
	copy(d.pages[id], buf)
	d.stats.Writes.Add(1)
	return nil
}

// AllocatePage implements DiskManager.
func (d *MemDiskManager) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, d.pageSize))
	d.stats.Allocs.Add(1)
	return PageID(len(d.pages) - 1), nil
}

// Sync implements DiskManager.
func (d *MemDiskManager) Sync() error { return nil }

// Close implements DiskManager.
func (d *MemDiskManager) Close() error { return nil }

// LatencyDiskManager wraps another DiskManager and sleeps for a fixed
// duration on every page read/write. The cold-cache benchmark uses it to
// model a device with non-trivial access latency: on a fast local
// filesystem (or the in-memory mock) page reads complete in microseconds
// and any concurrency win in the read path drowns in noise, whereas with
// a simulated seek the benefit of overlapping independent misses — the
// whole point of the in-flight table — is directly visible. Sleeping
// rather than spinning means concurrent operations genuinely overlap
// even on a single CPU.
type LatencyDiskManager struct {
	DiskManager
	ReadDelay  time.Duration
	WriteDelay time.Duration
}

// WithLatency wraps dm so reads (writes) take at least readDelay
// (writeDelay) of simulated device time.
func WithLatency(dm DiskManager, readDelay, writeDelay time.Duration) *LatencyDiskManager {
	return &LatencyDiskManager{DiskManager: dm, ReadDelay: readDelay, WriteDelay: writeDelay}
}

// ReadPage implements DiskManager.
func (d *LatencyDiskManager) ReadPage(id PageID, buf []byte) error {
	if d.ReadDelay > 0 {
		time.Sleep(d.ReadDelay)
	}
	return d.DiskManager.ReadPage(id, buf)
}

// WritePage implements DiskManager.
func (d *LatencyDiskManager) WritePage(id PageID, buf []byte) error {
	if d.WriteDelay > 0 {
		time.Sleep(d.WriteDelay)
	}
	return d.DiskManager.WritePage(id, buf)
}
