package storage

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
)

// Per-page checksums. The slotted header reserves a uint32 at
// pageChecksumOffset; the checksum is CRC32-Castagnoli over the entire
// page with that field read as zero, so the stamp never invalidates
// itself. A computed value of 0 is biased to 1 so that a stored 0 can
// mean exactly one thing: the page predates checksums (or was written
// by a pool with checksums off) and must be accepted unverified — the
// same backward-compat move as xmin=0 marking frozen pre-MVCC tuples.
//
// Page 0 of every file is a structure-specific meta page whose layout
// owns offset 16 (the heap meta keeps its format version there), so
// meta pages are never checksummed; callers skip page 0.

var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// ChecksummedFile reports whether the relation file name holds pages
// this package checksums: heap files (rel<oid>.tbl) and the heap-backed
// system catalog (syscat.dat). Index files (.idx) are excluded — btree
// and R-tree node layouts put node data at the byte offsets the slotted
// checksum field occupies, and an index is rebuildable from its heap.
func ChecksummedFile(name string) bool {
	return strings.HasSuffix(name, ".tbl") || name == "syscat.dat"
}

var checksumZeroField [4]byte

// ComputePageChecksum returns the checksum of data with the stored
// checksum field treated as zero. Never returns 0.
func ComputePageChecksum(data []byte) uint32 {
	if len(data) < slottedHeaderSize {
		return 1
	}
	c := crc32.Update(0, castagnoliTable, data[:pageChecksumOffset])
	c = crc32.Update(c, castagnoliTable, checksumZeroField[:])
	c = crc32.Update(c, castagnoliTable, data[pageChecksumOffset+4:])
	if c == 0 {
		c = 1
	}
	return c
}

// PageStoredChecksum returns the checksum stored in the page header
// (0 = never stamped).
func PageStoredChecksum(data []byte) uint32 {
	if len(data) < slottedHeaderSize {
		return 0
	}
	return binary.LittleEndian.Uint32(data[pageChecksumOffset:])
}

// StampPageChecksum computes and stores the page checksum. Call
// immediately before the page's bytes go to disk.
func StampPageChecksum(data []byte) {
	binary.LittleEndian.PutUint32(data[pageChecksumOffset:], ComputePageChecksum(data))
}

// VerifyPageChecksum checks data against its stored checksum. ok is
// true when they match or when the page was never stamped (stored==0);
// stored and computed are returned either way so callers can build an
// ErrPageCorrupt.
func VerifyPageChecksum(data []byte) (stored, computed uint32, ok bool) {
	stored = PageStoredChecksum(data)
	if stored == 0 {
		return 0, 0, true
	}
	computed = ComputePageChecksum(data)
	return stored, computed, stored == computed
}
