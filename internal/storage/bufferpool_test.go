package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/wal"
)

// TestBufferPoolConcurrent hammers one small pool from many goroutines
// (forcing constant eviction) and checks that every page keeps its own
// contents. Run with -race to exercise the locking.
func TestBufferPoolConcurrent(t *testing.T) {
	dm := NewMem(256)
	bp := NewBufferPool(dm, 8)
	const pages = 64
	for i := 0; i < pages; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(p.Data, uint32(i))
		bp.Unpin(p, true)
	}
	const workers, rounds = 8, 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := PageID((g*31 + i*7) % pages)
				p, err := bp.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				if got := binary.LittleEndian.Uint32(p.Data); got != uint32(id) {
					errs <- fmt.Errorf("page %d holds contents of page %d", id, got)
					bp.Unpin(p, false)
					return
				}
				// Rewrite the page's own marker: a benign dirty write
				// that must never bleed into another page.
				binary.LittleEndian.PutUint32(p.Data, uint32(id))
				bp.Unpin(p, true)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	for i := 0; i < pages; i++ {
		if err := dm.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint32(buf); got != uint32(i) {
			t.Fatalf("after flush, page %d holds %d", i, got)
		}
	}
}

// TestEvictionNeverReclaimsPinned pins a set of pages, then cycles many
// other pages through a pool with barely more frames than pins. The
// pinned frames' contents must survive untouched, and a pool whose
// frames are all pinned must refuse (not corrupt) the next fetch.
func TestEvictionNeverReclaimsPinned(t *testing.T) {
	dm := NewMem(256)
	bp := NewBufferPool(dm, 4)
	const pages = 32
	for i := 0; i < pages; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(p.Data, uint32(i))
		bp.Unpin(p, true)
	}
	var pinned []*Page
	for i := 0; i < 3; i++ {
		p, err := bp.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, p)
	}
	// Drive eviction through the single unpinned frame.
	for round := 0; round < 4; round++ {
		for i := 3; i < pages; i++ {
			p, err := bp.Fetch(PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			bp.Unpin(p, false)
		}
	}
	if ev := bp.Stats().Evictions; ev == 0 {
		t.Fatal("test exercised no evictions")
	}
	for i, p := range pinned {
		if got := binary.LittleEndian.Uint32(p.Data); got != uint32(i) {
			t.Fatalf("pinned page %d was reclaimed: frame now holds page %d", i, got)
		}
	}
	// Pin the last frame too: the pool is now exhausted.
	p4, err := bp.Fetch(PageID(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(PageID(20)); err == nil {
		t.Fatal("fetch succeeded with every frame pinned")
	}
	bp.Unpin(p4, false)
	for _, p := range pinned {
		bp.Unpin(p, false)
	}
	if _, err := bp.Fetch(PageID(20)); err != nil {
		t.Fatalf("fetch after unpinning: %v", err)
	}
}

// TestPoolStatsAtomicUnderConcurrency checks that the per-counter
// atomics lose nothing under concurrent fetch traffic: every access is
// either a hit or a miss, and the totals match the driven load exactly.
func TestPoolStatsAtomicUnderConcurrency(t *testing.T) {
	dm := NewMem(256)
	const pages = 64
	bp := NewBufferPool(dm, 2*pages) // no eviction: hits+misses is exact
	if bp.NumShards() < 2 {
		t.Fatalf("pool of %d frames got %d shards, want sharding", 2*pages, bp.NumShards())
	}
	for i := 0; i < pages; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(p, false)
	}
	bp.ResetStats()
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p, err := bp.Fetch(PageID((g*13 + i*5) % pages))
				if err != nil {
					t.Error(err)
					return
				}
				bp.Unpin(p, false)
			}
		}(g)
	}
	wg.Wait()
	st := bp.Stats()
	if st.Accesses != workers*rounds {
		t.Fatalf("accesses = %d, want %d", st.Accesses, workers*rounds)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
	}
}

func TestPageLSNRoundTrip(t *testing.T) {
	data := make([]byte, 512)
	SlotInit(data)
	if PageLSN(data) != 0 {
		t.Fatalf("fresh area has pageLSN %d", PageLSN(data))
	}
	SetPageLSN(data, 0xDEADBEEF01)
	if PageLSN(data) != 0xDEADBEEF01 {
		t.Fatalf("pageLSN round trip failed: %d", PageLSN(data))
	}
	// The LSN must survive record traffic and compaction.
	s, ok := SlotInsert(data, []byte("hello"))
	if !ok {
		t.Fatal("insert failed")
	}
	SlotDelete(data, s)
	if _, ok := SlotInsert(data, make([]byte, 400)); !ok {
		t.Fatal("compacting insert failed")
	}
	if PageLSN(data) != 0xDEADBEEF01 {
		t.Fatalf("pageLSN clobbered by slot traffic: %d", PageLSN(data))
	}
}

func TestSlotAreaBlank(t *testing.T) {
	data := make([]byte, 256)
	if !SlotAreaBlank(data) {
		t.Fatal("zeroed area not reported blank")
	}
	SlotInit(data)
	if SlotAreaBlank(data) {
		t.Fatal("initialized area reported blank")
	}
}

func TestSlotInsertAt(t *testing.T) {
	data := make([]byte, 256)
	SlotInit(data)
	// Redo into a slot far past the current directory.
	if !SlotInsertAt(data, 3, []byte("dddd")) {
		t.Fatal("insert at slot 3 failed")
	}
	if SlotCount(data) != 4 || SlotLive(data) != 1 {
		t.Fatalf("directory after sparse insert: count=%d live=%d", SlotCount(data), SlotLive(data))
	}
	if string(SlotRead(data, 3)) != "dddd" {
		t.Fatalf("slot 3 holds %q", SlotRead(data, 3))
	}
	if SlotRead(data, 0) != nil || SlotRead(data, 2) != nil {
		t.Fatal("intermediate slots not dead")
	}
	// Idempotent re-apply.
	if !SlotInsertAt(data, 3, []byte("dddd")) {
		t.Fatal("idempotent re-insert failed")
	}
	if SlotLive(data) != 1 {
		t.Fatalf("re-insert changed live count to %d", SlotLive(data))
	}
	// Fill earlier slots and check contents coexist.
	if !SlotInsertAt(data, 0, []byte("aa")) || !SlotInsertAt(data, 1, []byte("bb")) {
		t.Fatal("insert at earlier slots failed")
	}
	if string(SlotRead(data, 0)) != "aa" || string(SlotRead(data, 1)) != "bb" || string(SlotRead(data, 3)) != "dddd" {
		t.Fatal("records corrupted after redo inserts")
	}
	// Replacement with different bytes (page ahead of an older record
	// cannot happen under LSN guards, but the primitive must cope).
	if !SlotInsertAt(data, 1, []byte("nine-bytes")) {
		t.Fatal("replacement failed")
	}
	if string(SlotRead(data, 1)) != "nine-bytes" {
		t.Fatalf("slot 1 holds %q", SlotRead(data, 1))
	}
	// An impossible fit must fail cleanly, not corrupt.
	if SlotInsertAt(data, 5, make([]byte, 300)) {
		t.Fatal("oversized redo insert accepted")
	}
	if string(SlotRead(data, 3)) != "dddd" {
		t.Fatal("failed insert corrupted existing record")
	}
}

// TestWALBeforeData checks the invariant the whole recovery design rests
// on: a dirty page may not be written back unless the log is durable up
// to that page's latest record.
func TestWALBeforeData(t *testing.T) {
	w, err := wal.OpenWriter(t.TempDir(), wal.Options{Mode: wal.SyncLazy})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	dm := NewMem(256)
	bp := NewBufferPool(dm, 4)
	bp.AttachWAL(w, "t.tbl")

	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Data[0] = 1
	bp.Unpin(p, true) // logs a page image
	lsn := w.AppendedLSN()
	if lsn == 0 {
		t.Fatal("dirty unpin logged nothing")
	}
	if w.DurableLSN() >= lsn {
		t.Fatal("lazy mode synced prematurely; test cannot observe the invariant")
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() < lsn {
		t.Fatalf("page written back while log durable only to %d < %d", w.DurableLSN(), lsn)
	}
}

// TestNoStealOfUncommittedFrames: once statement boundaries exist in
// the log, a dirty frame whose record is past the last commit marker
// must not be evicted (its write-back could survive a crash whose
// recovery discards the record as an uncommitted tail).
func TestNoStealOfUncommittedFrames(t *testing.T) {
	w, err := wal.OpenWriter(t.TempDir(), wal.Options{Mode: wal.SyncLazy})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	dm := NewMem(256)
	bp := NewBufferPool(dm, 4)
	bp.AttachWAL(w, "t.tbl")
	if _, err := w.AppendCommit(); err != nil { // enable the no-steal rule
		t.Fatal(err)
	}

	var pages []*Page
	for i := 0; i < 4; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	// Unpin all four as uncommitted mid-statement mutations.
	for i, p := range pages {
		lsn, err := w.AppendHeapInsert("t.tbl", uint32(p.ID), uint16(i), []byte("u"))
		if err != nil {
			t.Fatal(err)
		}
		bp.UnpinLSN(p, lsn)
	}
	if _, err := bp.NewPage(); err == nil {
		t.Fatal("pool evicted an uncommitted dirty frame")
	}
	if reads, writes, _ := dm.Stats().Snapshot(); writes > 5 {
		// 5 allocation writes (zero-fill) are expected; an eviction
		// write-back of page data would exceed that.
		t.Fatalf("uncommitted page written back (reads=%d writes=%d)", reads, writes)
	}
	// Commit the statement: the frames become evictable again.
	if _, err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	p, err := bp.NewPage()
	if err != nil {
		t.Fatalf("fetch after commit: %v", err)
	}
	if w.DurableLSN() < w.CommittedLSN() {
		t.Fatalf("eviction did not sync through the commit marker (durable %d < committed %d)",
			w.DurableLSN(), w.CommittedLSN())
	}
	bp.Unpin(p, false)
}

// TestDeferredImageCoalescing: once statement boundaries exist, N dirty
// unpins of one page within a statement must produce a single page
// image (logged by LogPendingImages at the commit point), not N.
func TestDeferredImageCoalescing(t *testing.T) {
	w, err := wal.OpenWriter(t.TempDir(), wal.Options{Mode: wal.SyncLazy})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	bp := NewBufferPool(NewMem(256), 4)
	bp.AttachWAL(w, "t.tbl")
	if _, err := w.AppendCommit(); err != nil { // enable deferral
		t.Fatal(err)
	}
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(p, false)
	base := w.Stats().Appends
	for i := 0; i < 3; i++ {
		p, err := bp.Fetch(0)
		if err != nil {
			t.Fatal(err)
		}
		p.Data[i] = byte(i + 1)
		bp.Unpin(p, true)
	}
	if got := w.Stats().Appends - base; got != 0 {
		t.Fatalf("%d images logged before the commit point", got)
	}
	if err := bp.LogPendingImages(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Appends - base; got != 1 {
		t.Fatalf("logged %d images for one thrice-dirtied page, want 1", got)
	}
	// The single image must carry the final state.
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var rec *wal.Record
	if _, err := wal.Replay(w.Dir(), func(r *wal.Record) error {
		if r.Type == wal.RecPageImage {
			rec = r
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Data) < 3 || rec.Data[0] != 1 || rec.Data[1] != 2 || rec.Data[2] != 3 {
		t.Fatalf("image does not hold the final page state: %+v", rec)
	}
}

// TestRecoverDirRedo writes pages under WAL protection, simulates a
// crash (buffer pool dropped, nothing flushed), runs the redo pass, and
// checks the data file matches what was logged — for both page images
// and logical heap records.
func TestRecoverDirRedo(t *testing.T) {
	dataDir := t.TempDir()
	walDir := dataDir + "/wal"
	w, err := wal.OpenWriter(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fdm, err := OpenFile(dataDir+"/t.tbl", 256)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(fdm, 4)
	bp.AttachWAL(w, "t.tbl")

	// Page 0: raw page mutated via Unpin(dirty) -> page-image record.
	p0, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	copy(p0.Data, "meta-contents")
	bp.Unpin(p0, true)

	// Page 1: slotted page mutated via logical records, like the heap.
	p1, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	SlotInit(p1.Data)
	slot, ok := SlotInsert(p1.Data, []byte("row-1"))
	if !ok {
		t.Fatal("insert failed")
	}
	lsn, err := w.AppendHeapInsert("t.tbl", uint32(p1.ID), uint16(slot), []byte("row-1"))
	if err != nil {
		t.Fatal(err)
	}
	SetPageLSN(p1.Data, uint64(lsn))
	bp.UnpinLSN(p1, lsn)

	if _, err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(w.AppendedLSN()); err != nil {
		t.Fatal(err)
	}
	// Crash: drop every frame; nothing was flushed to t.tbl.
	if err := bp.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := RecoverDir(dataDir, walDir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if st.PageImages == 0 || st.HeapInserts != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	fdm2, err := OpenFile(dataDir+"/t.tbl", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fdm2.Close()
	buf := make([]byte, 256)
	if err := fdm2.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:13]) != "meta-contents" {
		t.Fatalf("page 0 not redone: %q", buf[:13])
	}
	if err := fdm2.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if got := SlotRead(buf, slot); string(got) != "row-1" {
		t.Fatalf("page 1 logical redo failed: %q", got)
	}
	if PageLSN(buf) != uint64(lsn) {
		t.Fatalf("pageLSN after redo = %d, want %d", PageLSN(buf), lsn)
	}

	// Recovery must be idempotent.
	st2, err := RecoverDir(dataDir, walDir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if st2.HeapInserts != 0 || st2.SkippedByLSN != 1 {
		t.Fatalf("second pass not idempotent: %+v", st2)
	}
}

// TestRecoverDirRefusesUncoveredTornPage: a torn page may only be
// reinitialized and rebuilt when the surviving log provably holds its
// whole content — the file's creation record or a full image of the
// page. Here a checkpoint has recycled both, so recovery must fail
// loudly with ErrPageCorrupt instead of silently restoring only the
// post-checkpoint record.
func TestRecoverDirRefusesUncoveredTornPage(t *testing.T) {
	dataDir := t.TempDir()
	walDir := dataDir + "/wal"
	w, err := wal.OpenWriter(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldLSN, err := w.AppendHeapInsert("t.tbl", 1, 0, []byte("old-row"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint recycles the segment holding old-row's record and
	// the file's history.
	if _, err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendHeapInsert("t.tbl", 1, 1, []byte("new-row")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The data file as the checkpoint flushed it, except page 1 was
	// torn by the crash: valid content, then a payload byte flipped
	// after stamping, so the checksum no longer matches.
	fdm, err := OpenFile(dataDir+"/t.tbl", 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := fdm.AllocatePage(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 256)
	SlotInit(buf)
	if _, ok := SlotInsert(buf, []byte("old-row")); !ok {
		t.Fatal("insert failed")
	}
	SetPageLSN(buf, uint64(oldLSN))
	StampPageChecksum(buf)
	buf[200] ^= 0xFF
	if err := fdm.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := fdm.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := RecoverDir(dataDir, walDir, 256)
	if err == nil {
		t.Fatalf("recovery repaired an unrecoverable torn page: %+v", st)
	}
	if !IsPageCorrupt(err) {
		t.Fatalf("recovery error = %v, want page corrupt", err)
	}
	if st.TornRepaired != 0 {
		t.Fatalf("recovery claims %d repairs while failing", st.TornRepaired)
	}
}

// TestRecoverDirDiscardsUncommittedTail: records after the last commit
// marker belong to a statement whose remaining records were lost in the
// crash; replaying them would leave a heap row without its index
// entries, so recovery must drop them.
func TestRecoverDirDiscardsUncommittedTail(t *testing.T) {
	dataDir := t.TempDir()
	walDir := dataDir + "/wal"
	w, err := wal.OpenWriter(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendHeapInsert("t.tbl", 1, 0, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	// A second statement whose commit marker never made it to the log.
	if _, err := w.AppendHeapInsert("t.tbl", 1, 1, []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := RecoverDir(dataDir, walDir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if st.HeapInserts != 1 || st.TailDiscarded != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	fdm, err := OpenFile(dataDir+"/t.tbl", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fdm.Close()
	buf := make([]byte, 256)
	if err := fdm.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if got := SlotRead(buf, 0); string(got) != "committed" {
		t.Fatalf("committed record lost: %q", got)
	}
	if got := SlotRead(buf, 1); got != nil {
		t.Fatalf("uncommitted tail was replayed: %q", got)
	}

	// The discarded records must also be gone from the log itself —
	// left in place they would sit below the next run's markers and be
	// replayed as committed by a second recovery.
	st2, err := RecoverDir(dataDir, walDir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if st2.TailDiscarded != 0 || st2.LastLSN != st.LastLSN-1 {
		t.Fatalf("tail survived in the log: %+v", st2)
	}
}
