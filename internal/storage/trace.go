package storage

import "sync"

// PageTrace counts the distinct pages touched by read-only operations —
// the page reads a cold (unbuffered) execution would issue, which is the
// cost the paper's I/O-bound measurements see. The index structures hold
// one behind an atomic pointer: tracing disabled (the norm) costs a
// single pointer load on the read path, and an enabled trace has its own
// mutex so traced reads may run from several goroutines.
type PageTrace struct {
	mu    sync.Mutex
	pages map[PageID]struct{}
}

// NewPageTrace returns an empty trace.
func NewPageTrace() *PageTrace {
	return &PageTrace{pages: make(map[PageID]struct{})}
}

// Visit records one page access.
func (t *PageTrace) Visit(id PageID) {
	t.mu.Lock()
	t.pages[id] = struct{}{}
	t.mu.Unlock()
}

// Count reports the number of distinct pages visited.
func (t *PageTrace) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pages)
}
