package storage

import "sync"

// Prefetcher is a small pool of worker goroutines that pull pages into
// buffer pools ahead of the scans that will want them. One prefetcher is
// shared by every pool of a database (heap files and indexes alike):
// readahead demand is bursty per file but bounded overall, and a shared
// bounded queue caps the background I/O the whole system can generate.
//
// Requests enter through BufferPool.Prefetch, which drops on a full
// queue rather than blocking — a missed prefetch costs a demand read
// later, never a stall now. Each request runs the pool's singleflight
// claim/read/publish protocol (BufferPool.prefetchOne), so a prefetch
// and a demand fetch of the same page can never both read from disk.
//
// Close drains the queue and stops the workers; callers must ensure no
// pool can enqueue anymore (pools quiesce their prefetch work in
// Close/Crash, and the executor closes the prefetcher after its pools).
type Prefetcher struct {
	tasks     chan prefetchTask
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type prefetchTask struct {
	bp *BufferPool
	id PageID
}

// DefaultPrefetchWorkers sizes the worker pool when the caller passes 0.
// A handful of workers keeps several reads in flight — enough to cover a
// scan's readahead window — without swamping the device.
const DefaultPrefetchWorkers = 4

// DefaultPrefetchQueue bounds the request backlog when the caller
// passes 0.
const DefaultPrefetchQueue = 64

// NewPrefetcher starts a prefetcher with the given worker count and
// queue depth (zeros take the defaults).
func NewPrefetcher(workers, queue int) *Prefetcher {
	if workers <= 0 {
		workers = DefaultPrefetchWorkers
	}
	if queue <= 0 {
		queue = DefaultPrefetchQueue
	}
	pf := &Prefetcher{tasks: make(chan prefetchTask, queue)}
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.worker()
	}
	return pf
}

func (pf *Prefetcher) worker() {
	defer pf.wg.Done()
	for t := range pf.tasks {
		t.bp.prefetchOne(t.id)
		t.bp.prefetchActive.Done()
	}
}

// enqueue offers a task without blocking; false means the queue is full
// and the request was dropped.
func (pf *Prefetcher) enqueue(t prefetchTask) bool {
	select {
	case pf.tasks <- t:
		return true
	default:
		return false
	}
}

// Close stops the workers after the queued tasks drain. Safe to call
// more than once; no pool may enqueue concurrently with or after Close.
func (pf *Prefetcher) Close() {
	pf.closeOnce.Do(func() {
		close(pf.tasks)
		pf.wg.Wait()
	})
}
