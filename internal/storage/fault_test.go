package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
)

// --- checksum unit tests ------------------------------------------------

// TestChecksumRoundTrip: a stamped page verifies; any flipped bit —
// payload, header, or the LSN — fails verification; a never-stamped
// page (stored checksum 0) passes, the backward-compat contract for
// files written before checksums existed.
func TestChecksumRoundTrip(t *testing.T) {
	page := make([]byte, 256)
	SlotInit(page)
	if _, ok := SlotInsert(page, []byte("hello checksums")); !ok {
		t.Fatal("insert failed")
	}
	SetPageLSN(page, 42)

	if stored, _, ok := VerifyPageChecksum(page); !ok || stored != 0 {
		t.Fatalf("unstamped page: stored=%d ok=%v, want 0/true", stored, ok)
	}

	StampPageChecksum(page)
	stored, computed, ok := VerifyPageChecksum(page)
	if !ok || stored == 0 || stored != computed {
		t.Fatalf("stamped page: stored=%#x computed=%#x ok=%v", stored, computed, ok)
	}

	for _, off := range []int{0, pageLSNOffset, slottedHeaderSize + 3, len(page) - 1} {
		mut := append([]byte(nil), page...)
		mut[off] ^= 0x40
		if _, _, ok := VerifyPageChecksum(mut); ok {
			t.Fatalf("bit flip at offset %d not detected", off)
		}
	}

	// The checksum field itself is excluded from the computation: the
	// stamp is idempotent.
	again := append([]byte(nil), page...)
	StampPageChecksum(again)
	if !bytes.Equal(page, again) {
		t.Fatal("restamping changed the page")
	}
}

// TestChecksummedFile pins down which files carry checksums: heaps and
// the system catalog yes, index files (offset 16 belongs to their node
// layouts; they are rebuildable) no.
func TestChecksummedFile(t *testing.T) {
	for name, want := range map[string]bool{
		"rel7.tbl":       true,
		"dir/rel7.tbl":   true,
		"syscat.dat":     true,
		"rel7.idx":       false,
		"rel7.idx.build": false,
		"wal/000001.wal": false,
	} {
		if got := ChecksummedFile(name); got != want {
			t.Errorf("ChecksummedFile(%q) = %v, want %v", name, got, want)
		}
	}
}

// --- fault disk manager unit tests --------------------------------------

// seedFaultDisk fills a mem disk with n self-identifying pages and
// wraps it in an armed FaultDiskManager.
func seedFaultDisk(t *testing.T, n int, seed int64) (*FaultDiskManager, *MemDiskManager) {
	t.Helper()
	mem := NewMem(256)
	buf := make([]byte, 256)
	for i := 0; i < n; i++ {
		id, err := mem.AllocatePage()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(buf, uint32(id))
		if err := mem.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return WithFaults(mem, seed), mem
}

// TestFaultRulesDeterministic: Nth-call rules fire exactly on schedule,
// permanent faults stick, and ENOSPC poisons all space-consuming ops.
func TestFaultRulesDeterministic(t *testing.T) {
	fdm, _ := seedFaultDisk(t, 4, 1)
	fdm.AddRule(FaultRule{Op: FaultRead, Kind: FaultTransient, Nth: 2})
	buf := make([]byte, 256)
	if err := fdm.ReadPage(0, buf); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if err := fdm.ReadPage(0, buf); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("read 2: got %v, want injected error", err)
	}
	if err := fdm.ReadPage(0, buf); err != nil {
		t.Fatalf("read 3 (after transient): %v", err)
	}

	fdm.AddRule(FaultRule{Op: FaultWrite, Kind: FaultPermanent, Nth: 1})
	if err := fdm.WritePage(0, buf); !errors.Is(err, ErrInjectedPermanentIO) {
		t.Fatalf("write 1: got %v, want permanent error", err)
	}
	if err := fdm.WritePage(0, buf); !errors.Is(err, ErrInjectedPermanentIO) {
		t.Fatalf("write 2: permanent fault did not stick: %v", err)
	}
	if IsTransient(ErrInjectedPermanentIO) {
		t.Fatal("permanent error classified transient")
	}
	if !IsTransient(ErrInjectedIO) || !IsTransient(errors.New("eio")) {
		t.Fatal("transient/unknown errors must classify transient")
	}

	c := fdm.Counters()
	if c.Transient != 1 || c.Permanent != 2 {
		t.Fatalf("counters = %+v, want 1 transient / 2 permanent", c)
	}
}

// TestFaultTornWrite: a torn write lands the first TornBytes of the new
// image over the old page and reports an error — exactly the state a
// power cut mid-write leaves behind.
func TestFaultTornWrite(t *testing.T) {
	fdm, mem := seedFaultDisk(t, 1, 1)
	old := make([]byte, 256)
	if err := mem.ReadPage(0, old); err != nil {
		t.Fatal(err)
	}
	fresh := bytes.Repeat([]byte{0xAB}, 256)
	fdm.AddRule(FaultRule{Op: FaultWrite, Kind: FaultTorn, Nth: 1, TornBytes: 100})
	if err := fdm.WritePage(0, fresh); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("torn write reported %v, want injected error", err)
	}
	got := make([]byte, 256)
	if err := mem.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:100], fresh[:100]) {
		t.Fatal("torn write: new prefix did not land")
	}
	if !bytes.Equal(got[100:], old[100:]) {
		t.Fatal("torn write: old suffix did not survive")
	}
	if c := fdm.Counters(); c.TornWrites != 1 {
		t.Fatalf("torn counter = %d, want 1", c.TornWrites)
	}
}

// TestFaultSeedReplay: the same seed over the same call sequence
// injects faults at the same calls — the property that makes a failing
// torture run reproducible.
func TestFaultSeedReplay(t *testing.T) {
	run := func(seed int64) []bool {
		fdm, _ := seedFaultDisk(t, 1, seed)
		fdm.SetProb(FaultRead, 0.3)
		buf := make([]byte, 256)
		var outcomes []bool
		for i := 0; i < 64; i++ {
			outcomes = append(outcomes, fdm.ReadPage(0, buf) != nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical seeds", i)
		}
	}
	failed := 0
	for _, f := range a {
		if f {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("p=0.3 over 64 reads injected %d faults — stream looks broken", failed)
	}
}

// --- buffer pool degradation tests --------------------------------------

// TestFetchRetriesTransientRead: a transient read error under a demand
// miss is retried inside Fetch — the caller never sees it — and the
// retry backoff is charged to the io_retry wait event, not to a lost
// frame.
func TestFetchRetriesTransientRead(t *testing.T) {
	fdm, _ := seedFaultDisk(t, 8, 1)
	bp := NewBufferPool(fdm, 4)
	fdm.AddRule(FaultRule{Op: FaultRead, Kind: FaultTransient, Nth: 1})
	p, err := bp.Fetch(0)
	if err != nil {
		t.Fatalf("Fetch with one transient error: %v", err)
	}
	if err := checkPage(p); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(p, false)
	if c := fdm.Counters(); c.Transient != 1 {
		t.Fatalf("transient faults = %d, want 1", c.Transient)
	}
}

// TestFetchPermanentReadFails: a permanent error exhausts the retries
// and surfaces; after the device "heals" (disarm) the same page is
// fetchable again and the pool still has all its frames — the failed
// miss released its claim.
func TestFetchPermanentReadFails(t *testing.T) {
	const frames = 4
	fdm, _ := seedFaultDisk(t, frames+1, 1)
	bp := NewBufferPool(fdm, frames)
	fdm.AddRule(FaultRule{Op: FaultRead, Kind: FaultPermanent, Nth: 1})
	if _, err := bp.Fetch(0); !errors.Is(err, ErrInjectedPermanentIO) {
		t.Fatalf("Fetch: got %v, want permanent error", err)
	}
	fdm.Disarm()
	// Every frame must still be claimable: pin `frames` distinct pages
	// at once. A leaked frame would make the last pin fail.
	var pinned []*Page
	for id := PageID(0); id < frames; id++ {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch(%d) after failed miss: %v", id, err)
		}
		if err := checkPage(p); err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, p)
	}
	for _, p := range pinned {
		bp.Unpin(p, false)
	}
}

// TestPrefetchFailureLeavesPageFetchable (regression): a prefetch whose
// read fails must release its claimed frame and leave the page
// demand-fetchable, with hit/miss accounting still consistent.
func TestPrefetchFailureLeavesPageFetchable(t *testing.T) {
	fdm, _ := seedFaultDisk(t, 8, 1)
	bp := NewBufferPool(fdm, 8)
	pf := NewPrefetcher(2, 8)
	defer pf.Close()
	bp.AttachPrefetcher(pf, 4)

	// All three retry attempts of the prefetch read fail; the prefetch
	// itself gives up and drops the frame.
	for n := int64(1); n <= ioRetryAttempts; n++ {
		fdm.AddRule(FaultRule{Op: FaultRead, Kind: FaultTransient, Nth: n})
	}
	bp.Prefetch(3)
	bp.prefetchActive.Wait()

	p, err := bp.Fetch(3)
	if err != nil {
		t.Fatalf("Fetch after failed prefetch: %v", err)
	}
	if err := checkPage(p); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(p, false)
	st := bp.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits(%d)+misses(%d) != accesses(%d) after failed prefetch",
			st.Hits, st.Misses, st.Accesses)
	}
	if c := fdm.Counters(); c.Transient != ioRetryAttempts {
		t.Fatalf("transient faults = %d, want %d", c.Transient, ioRetryAttempts)
	}
}

// TestConcurrentFetchersShareReadError: 32 goroutines demand-fetch one
// cold page whose read fails through every retry. Exactly one performs
// the read (singleflight); every waiter must receive the error — none
// may hang — no frame may leak, and the next Fetch must succeed.
func TestConcurrentFetchersShareReadError(t *testing.T) {
	const goroutines, frames = 32, 4
	fdm, _ := seedFaultDisk(t, frames+1, 1)
	bp := NewBufferPool(fdm, frames)
	for n := int64(1); n <= ioRetryAttempts; n++ {
		fdm.AddRule(FaultRule{Op: FaultRead, Kind: FaultTransient, Nth: n})
	}

	var wg sync.WaitGroup
	results := make(chan error, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p, err := bp.Fetch(0)
			if err == nil {
				err = checkPage(p)
				bp.Unpin(p, false)
			}
			results <- err
		}()
	}
	close(start)
	wg.Wait()
	close(results)

	// The schedule kills exactly the first read's retry budget. The
	// winner of the claim delivers that error to every waiter of its
	// in-flight entry; goroutines arriving after the entry was torn
	// down start a fresh read, which succeeds. Either outcome is
	// correct — what is forbidden is a hang (caught by wg.Wait), a
	// non-injected error, or a leaked frame (checked below).
	sawErr := 0
	for err := range results {
		if err != nil {
			if !errors.Is(err, ErrInjectedIO) {
				t.Fatalf("fetcher got %v, want injected error or success", err)
			}
			sawErr++
		}
	}
	if sawErr == 0 {
		t.Fatal("no fetcher observed the injected error")
	}

	// Second fetch succeeds and no frame leaked.
	var pinned []*Page
	for id := PageID(0); id < frames; id++ {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch(%d) after shared failure: %v", id, err)
		}
		pinned = append(pinned, p)
	}
	for _, p := range pinned {
		bp.Unpin(p, false)
	}
}

// TestCorruptPageNeverServed: a page whose stored checksum does not
// match its contents must surface as ErrPageCorrupt from Fetch — the
// poisoned bytes are never handed to the executor — while healthy
// pages and the unstamped-page compatibility path keep working.
func TestCorruptPageNeverServed(t *testing.T) {
	mem := NewMem(256)
	buf := make([]byte, 256)
	for i := 0; i < 4; i++ {
		if _, err := mem.AllocatePage(); err != nil {
			t.Fatal(err)
		}
		SlotInit(buf)
		if _, ok := SlotInsert(buf, []byte("payload")); !ok {
			t.Fatal("insert")
		}
		StampPageChecksum(buf)
		if err := mem.WritePage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt page 2: flip one payload bit behind the checksum's back.
	if err := mem.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	buf[slottedHeaderSize+10] ^= 0x01
	if err := mem.WritePage(2, buf); err != nil {
		t.Fatal(err)
	}

	bp := NewBufferPool(mem, 4)
	bp.EnableChecksums("rel1.tbl")

	p, err := bp.Fetch(1)
	if err != nil {
		t.Fatalf("healthy page: %v", err)
	}
	bp.Unpin(p, false)

	_, err = bp.Fetch(2)
	var pc *ErrPageCorrupt
	if !errors.As(err, &pc) {
		t.Fatalf("corrupt page served: err=%v", err)
	}
	if pc.File != "rel1.tbl" || pc.PageID != 2 {
		t.Fatalf("corruption report names %s page %d, want rel1.tbl page 2", pc.File, pc.PageID)
	}
	if pc.Expected == pc.Got {
		t.Fatalf("corruption report carries equal checksums: %+v", pc)
	}

	// VerifyPage (the SCRUB primitive) reports the same page without
	// disturbing the pool.
	scratch := make([]byte, 256)
	if err := bp.VerifyPage(2, scratch); !IsPageCorrupt(err) {
		t.Fatalf("VerifyPage(2) = %v, want page corrupt", err)
	}
	if err := bp.VerifyPage(3, scratch); err != nil {
		t.Fatalf("VerifyPage(3) = %v, want nil", err)
	}

	// Unstamped page (checksum field zero): must still be served —
	// pages written before the format carried checksums.
	SlotInit(buf)
	if err := mem.WritePage(3, buf); err != nil {
		t.Fatal(err)
	}
	if p, err := bp.Fetch(3); err != nil {
		t.Fatalf("unstamped page refused: %v", err)
	} else {
		bp.Unpin(p, false)
	}
}
