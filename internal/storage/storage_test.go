package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestFileDiskManagerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.dat")
	dm, err := OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	id0, err := dm.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := dm.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 {
		t.Fatalf("allocate ids = %d,%d, want 0,1", id0, id1)
	}
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := dm.WritePage(id1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dm.ReadPage(id1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("page round trip mismatch")
	}
	// Reopen and read again.
	if err := dm.Close(); err != nil {
		t.Fatal(err)
	}
	dm2, err := OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer dm2.Close()
	if dm2.NumPages() != 2 {
		t.Fatalf("NumPages after reopen = %d, want 2", dm2.NumPages())
	}
	got2 := make([]byte, 512)
	if err := dm2.ReadPage(id1, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got2) {
		t.Fatal("persisted page mismatch after reopen")
	}
}

func TestDiskManagerBounds(t *testing.T) {
	dm := NewMem(256)
	buf := make([]byte, 256)
	if err := dm.ReadPage(0, buf); err == nil {
		t.Error("read of unallocated page should fail")
	}
	if err := dm.WritePage(5, buf); err == nil {
		t.Error("write of unallocated page should fail")
	}
	if _, err := dm.AllocatePage(); err != nil {
		t.Fatal(err)
	}
	if err := dm.ReadPage(0, buf); err != nil {
		t.Errorf("read of allocated page: %v", err)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	dm := NewMem(256)
	bp := NewBufferPool(dm, 4)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Data[0] = 42
	bp.Unpin(p, true)

	q, err := bp.Fetch(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if q.Data[0] != 42 {
		t.Fatal("cached page lost its data")
	}
	bp.Unpin(q, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	dm := NewMem(256)
	bp := NewBufferPool(dm, 4)
	var first PageID
	// Create more pages than frames; early ones must be evicted and their
	// content written back.
	for i := 0; i < 10; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = p.ID
		}
		p.Data[0] = byte(i + 1)
		bp.Unpin(p, true)
	}
	p, err := bp.Fetch(first)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[0] != 1 {
		t.Fatalf("evicted page content lost: got %d", p.Data[0])
	}
	bp.Unpin(p, false)
	if bp.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	dm := NewMem(256)
	bp := NewBufferPool(dm, 4)
	var pages []*Page
	for i := 0; i < 4; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	if _, err := bp.NewPage(); err == nil {
		t.Fatal("expected pool-exhausted error with all frames pinned")
	}
	for _, p := range pages {
		bp.Unpin(p, false)
	}
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpinning, NewPage should succeed: %v", err)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	dm := NewMem(256)
	bp := NewBufferPool(dm, 4)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Data[7] = 99
	bp.Unpin(p, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 256)
	if err := dm.ReadPage(p.ID, raw); err != nil {
		t.Fatal(err)
	}
	if raw[7] != 99 {
		t.Fatal("FlushAll did not persist dirty page")
	}
}

func TestSlottedInsertReadDelete(t *testing.T) {
	data := make([]byte, 512)
	SlotInit(data)
	s1, ok := SlotInsert(data, []byte("hello"))
	if !ok {
		t.Fatal("insert failed")
	}
	s2, ok := SlotInsert(data, []byte("world!"))
	if !ok {
		t.Fatal("insert failed")
	}
	if string(SlotRead(data, s1)) != "hello" || string(SlotRead(data, s2)) != "world!" {
		t.Fatal("read mismatch")
	}
	if SlotLive(data) != 2 {
		t.Fatalf("live = %d, want 2", SlotLive(data))
	}
	SlotDelete(data, s1)
	if SlotRead(data, s1) != nil {
		t.Fatal("deleted slot still readable")
	}
	if SlotLive(data) != 1 {
		t.Fatalf("live = %d, want 1", SlotLive(data))
	}
	// s2 unaffected.
	if string(SlotRead(data, s2)) != "world!" {
		t.Fatal("sibling record damaged by delete")
	}
}

func TestSlottedSlotReuse(t *testing.T) {
	data := make([]byte, 512)
	SlotInit(data)
	s1, _ := SlotInsert(data, []byte("aaaa"))
	SlotInsert(data, []byte("bbbb"))
	SlotDelete(data, s1)
	s3, ok := SlotInsert(data, []byte("cccc"))
	if !ok {
		t.Fatal("insert failed")
	}
	if s3 != s1 {
		t.Fatalf("dead slot not reused: got %d, want %d", s3, s1)
	}
}

func TestSlottedUpdateGrowAndShrink(t *testing.T) {
	data := make([]byte, 256)
	SlotInit(data)
	s, _ := SlotInsert(data, []byte("short"))
	if !SlotUpdate(data, s, []byte("a much much longer record")) {
		t.Fatal("grow update failed")
	}
	if string(SlotRead(data, s)) != "a much much longer record" {
		t.Fatal("grown record mismatch")
	}
	if !SlotUpdate(data, s, []byte("x")) {
		t.Fatal("shrink update failed")
	}
	if string(SlotRead(data, s)) != "x" {
		t.Fatal("shrunk record mismatch")
	}
}

func TestSlottedUpdateTooBigPreservesOld(t *testing.T) {
	data := make([]byte, 64)
	SlotInit(data)
	s, ok := SlotInsert(data, []byte("keepme"))
	if !ok {
		t.Fatal("insert failed")
	}
	big := make([]byte, 200)
	if SlotUpdate(data, s, big) {
		t.Fatal("oversized update should fail")
	}
	if string(SlotRead(data, s)) != "keepme" {
		t.Fatal("failed update damaged old record")
	}
}

func TestSlottedCompactionReclaims(t *testing.T) {
	data := make([]byte, 256)
	SlotInit(data)
	rec := bytes.Repeat([]byte("z"), 40)
	var slots []int
	for {
		s, ok := SlotInsert(data, rec)
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 3 {
		t.Fatalf("expected at least 3 inserts, got %d", len(slots))
	}
	// Delete every other record, then a record of their combined size must
	// fit via compaction.
	for i := 0; i < len(slots); i += 2 {
		SlotDelete(data, slots[i])
	}
	big := bytes.Repeat([]byte("y"), 60)
	if _, ok := SlotInsert(data, big); !ok {
		t.Fatal("insert after deletes should succeed via compaction")
	}
}

// Randomized model check: the slotted page must behave exactly like a
// map[slot][]byte under random insert/update/delete while never corrupting
// surviving records.
func TestSlottedRandomizedModel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := make([]byte, 1024)
	SlotInit(data)
	model := map[int][]byte{}
	randRec := func() []byte {
		b := make([]byte, 1+r.Intn(50))
		r.Read(b)
		return b
	}
	for step := 0; step < 5000; step++ {
		switch r.Intn(3) {
		case 0: // insert
			rec := randRec()
			if s, ok := SlotInsert(data, rec); ok {
				model[s] = append([]byte(nil), rec...)
			}
		case 1: // delete random live slot
			for s := range model {
				SlotDelete(data, s)
				delete(model, s)
				break
			}
		case 2: // update random live slot
			for s := range model {
				rec := randRec()
				if SlotUpdate(data, s, rec) {
					model[s] = append([]byte(nil), rec...)
				}
				break
			}
		}
		if SlotLive(data) != len(model) {
			t.Fatalf("step %d: live=%d model=%d", step, SlotLive(data), len(model))
		}
	}
	for s, want := range model {
		if got := SlotRead(data, s); !bytes.Equal(got, want) {
			t.Fatalf("slot %d mismatch: got %x want %x", s, got, want)
		}
	}
	// ForEach must visit exactly the live slots.
	seen := map[int]bool{}
	SlotForEach(data, func(slot int, rec []byte) bool {
		seen[slot] = true
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("ForEach visited %d, want %d", len(seen), len(model))
	}
}

func TestSlotFreeSpaceGuarantee(t *testing.T) {
	data := make([]byte, 512)
	SlotInit(data)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		free := SlotFreeSpace(data)
		if free <= 0 {
			break
		}
		n := 1 + r.Intn(free)
		rec := make([]byte, n)
		if _, ok := SlotInsert(data, rec); !ok {
			t.Fatalf("insert of %d bytes failed with FreeSpace=%d", n, free)
		}
	}
}
