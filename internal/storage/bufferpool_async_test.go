package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// asyncTestDisk builds an in-memory disk of n pre-allocated pages whose
// contents encode their own page number, wrapped in a read delay so
// concurrent misses demonstrably overlap. Returns the wrapper and the
// mem disk (for its I/O counters).
func asyncTestDisk(t *testing.T, n int, readDelay time.Duration) (*LatencyDiskManager, *MemDiskManager) {
	t.Helper()
	mem := NewMem(256)
	buf := make([]byte, 256)
	for i := 0; i < n; i++ {
		id, err := mem.AllocatePage()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(buf, uint32(id))
		if err := mem.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	mem.Stats().Reset()
	return WithLatency(mem, readDelay, 0), mem
}

// checkPage verifies a fetched page carries the content asyncTestDisk
// stamped for its id.
func checkPage(p *Page) error {
	if got := PageID(binary.LittleEndian.Uint32(p.Data)); got != p.ID {
		return fmt.Errorf("page %d carries content of page %d", p.ID, got)
	}
	return nil
}

// TestSingleflightColdMiss: N goroutines missing on the same cold page
// must issue exactly one disk read, and every one of them must get the
// frame. Run under -race this also exercises the in-flight entry's
// publish/wait handshake.
func TestSingleflightColdMiss(t *testing.T) {
	const goroutines = 32
	dm, mem := asyncTestDisk(t, 8, 5*time.Millisecond)
	bp := NewBufferPool(dm, 16)

	start := make(chan struct{})
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			<-start
			p, err := bp.Fetch(5)
			if err != nil {
				errs <- err
				return
			}
			err = checkPage(p)
			bp.Unpin(p, false)
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if reads, _, _ := mem.Stats().Snapshot(); reads != 1 {
		t.Fatalf("%d goroutines missing one cold page performed %d disk reads, want exactly 1", goroutines, reads)
	}
	st := bp.Stats()
	if st.Accesses != goroutines {
		t.Fatalf("accesses = %d, want %d", st.Accesses, goroutines)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits(%d)+misses(%d) != accesses(%d)", st.Hits, st.Misses, st.Accesses)
	}
	// Whoever arrived while the read was in flight joined it; whoever
	// arrived after publication scored a plain hit. Either way no second
	// read happened, and at least the claimer missed.
	if st.Misses < 1 || st.InflightJoins != st.Misses-1 {
		t.Fatalf("misses = %d with %d in-flight joins, want joins == misses-1", st.Misses, st.InflightJoins)
	}
}

// TestConcurrentMissesOverlap: misses on *different* pages of one shard
// must overlap their disk reads. With a 20ms simulated read latency,
// eight serialized reads would take ≥160ms; overlapped they take a
// fraction. The serialColdReads baseline path is measured alongside to
// prove the comparison the benchmark makes is real.
func TestConcurrentMissesOverlap(t *testing.T) {
	const pages = 8
	const delay = 20 * time.Millisecond
	run := func(serial bool) time.Duration {
		dm, _ := asyncTestDisk(t, pages, delay)
		bp := NewBufferPool(dm, 16) // one shard: every page contends on one mutex
		bp.SetSerialColdReads(serial)
		if bp.NumShards() != 1 {
			t.Fatalf("want 1 shard for this test, got %d", bp.NumShards())
		}
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < pages; i++ {
			wg.Add(1)
			go func(id PageID) {
				defer wg.Done()
				p, err := bp.Fetch(id)
				if err != nil {
					t.Error(err)
					return
				}
				if err := checkPage(p); err != nil {
					t.Error(err)
				}
				bp.Unpin(p, false)
			}(PageID(i))
		}
		wg.Wait()
		return time.Since(start)
	}
	serial := run(true)
	overlapped := run(false)
	if serial < time.Duration(pages)*delay {
		t.Fatalf("serial baseline finished in %v, faster than %d non-overlapping %v reads — test setup broken", serial, pages, delay)
	}
	if overlapped >= serial/2 {
		t.Fatalf("in-flight table gave no overlap: %v vs serial %v", overlapped, serial)
	}
}

// TestEvictionVsInflightInterleaving hammers a pool whose working set is
// 5× its capacity from several goroutines, so in-flight claims, waiter
// joins, evictions, and clock sweeps constantly interleave. Every fetch
// must return the right content — a frame stolen mid-read would show up
// as a page carrying another page's bytes (and -race would flag the
// unsynchronized access).
func TestEvictionVsInflightInterleaving(t *testing.T) {
	const (
		pages      = 20
		goroutines = 8
		iters      = 150
	)
	dm, _ := asyncTestDisk(t, pages, 100*time.Microsecond)
	bp := NewBufferPool(dm, 4) // 4 frames, 1 shard: maximum eviction pressure
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			x := uint32(seed*2654435761 + 1)
			for i := 0; i < iters; i++ {
				x = x*1664525 + 1013904223
				id := PageID(x % pages)
				p, err := bp.Fetch(id)
				if err != nil {
					t.Error(err)
					return
				}
				if err := checkPage(p); err != nil {
					t.Error(err)
					return
				}
				bp.Unpin(p, false)
			}
		}(g)
	}
	wg.Wait()
	st := bp.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits(%d)+misses(%d) != accesses(%d)", st.Hits, st.Misses, st.Accesses)
	}
	if st.Evictions == 0 {
		t.Fatal("working set 5x pool size produced no evictions; test exercised nothing")
	}
}

// TestBGWriterWALBeforeData: the background writer must never write a
// page whose WAL records are not durable — neither an uncommitted frame
// (skipped outright under no-steal) nor a committed one before its
// records and commit marker are synced.
func TestBGWriterWALBeforeData(t *testing.T) {
	w, err := wal.OpenWriter(t.TempDir(), wal.Options{Mode: wal.SyncLazy})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mem := NewMem(256)
	bp := NewBufferPool(mem, 8)
	bp.AttachWAL(w, "t.tbl")
	if _, err := w.AppendCommit(); err != nil { // statement boundaries exist
		t.Fatal(err)
	}

	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Data[0] = 7
	lsn, err := w.AppendHeapInsert("t.tbl", uint32(p.ID), 0, []byte("u"))
	if err != nil {
		t.Fatal(err)
	}
	bp.UnpinLSN(p, lsn)
	mem.Stats().Reset() // drop the allocation's zero-fill write

	// Uncommitted: the frame's record is past the last marker, so a
	// round must write nothing at all.
	n, err := bp.WriteBackDirty(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("background writer wrote %d uncommitted frames", n)
	}
	if _, writes, _ := mem.Stats().Snapshot(); writes != 0 {
		t.Fatalf("uncommitted page reached disk (%d writes)", writes)
	}

	// Committed but not yet durable (lazy sync): the round may write the
	// page only after forcing the log through the commit marker.
	if _, err := w.AppendCommit(); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() >= w.CommittedLSN() {
		t.Fatal("lazy mode synced prematurely; test cannot observe the invariant")
	}
	n, err = bp.WriteBackDirty(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("background writer wrote %d frames, want 1", n)
	}
	if w.DurableLSN() < w.CommittedLSN() {
		t.Fatalf("page written back while log durable only to %d < committed %d", w.DurableLSN(), w.CommittedLSN())
	}
	if _, writes, _ := mem.Stats().Snapshot(); writes != 1 {
		t.Fatalf("want exactly 1 page write, got %d", writes)
	}
	st := bp.Stats()
	if st.BGWrites != 1 || st.DirtyWrites != 1 {
		t.Fatalf("BGWrites=%d DirtyWrites=%d, want 1/1", st.BGWrites, st.DirtyWrites)
	}

	// The frame was cleaned in place, not evicted: a re-fetch must hit.
	before := bp.Stats().Hits
	p2, err := bp.Fetch(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Data[0] != 7 {
		t.Fatal("write-back corrupted the cached frame")
	}
	bp.Unpin(p2, false)
	if bp.Stats().Hits != before+1 {
		t.Fatal("background write-back evicted the frame instead of cleaning it")
	}
}

// TestBGWriterSkipsPinned: a pinned dirty frame is in active use and must
// not be written back under the holder.
func TestBGWriterSkipsPinned(t *testing.T) {
	mem := NewMem(256)
	bp := NewBufferPool(mem, 8)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	mem.Stats().Reset()
	n, err := bp.WriteBackDirty(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("background writer wrote %d pinned frames", n)
	}
	bp.Unpin(p, true)
	n, err = bp.WriteBackDirty(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("after unpin want 1 write-back, got %d", n)
	}
}

// TestPrefetchSingleflight: a prefetch and a demand fetch of the same
// cold page must share one disk read, whichever wins the claim; a
// prefetched-then-fetched page counts as a prefetch hit.
func TestPrefetchSingleflight(t *testing.T) {
	dm, mem := asyncTestDisk(t, 16, 2*time.Millisecond)
	bp := NewBufferPool(dm, 16)
	pf := NewPrefetcher(2, 16)
	defer pf.Close()
	bp.AttachPrefetcher(pf, 4)

	// Phase 1 — deterministic hit path: prefetch eight pages, wait for
	// the worker pool to land them (prefetchActive drains without the
	// cancellation quiescePrefetch implies), then demand-fetch each. All
	// eight must be prefetch hits on top of exactly eight disk reads.
	for id := PageID(0); id < 8; id++ {
		bp.Prefetch(id)
	}
	bp.prefetchActive.Wait()
	if st := bp.Stats(); st.PrefetchReads != 8 {
		t.Fatalf("prefetchReads = %d after drain, want 8", st.PrefetchReads)
	}
	for id := PageID(0); id < 8; id++ {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkPage(p); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(p, false)
	}
	if reads, _, _ := mem.Stats().Snapshot(); reads != 8 {
		t.Fatalf("8 prefetched+fetched pages read %d times, want 8", reads)
	}
	st := bp.Stats()
	if st.PrefetchHits != 8 || st.Hits != 8 {
		t.Fatalf("prefetchHits=%d hits=%d, want 8/8", st.PrefetchHits, st.Hits)
	}

	// Phase 2 — the race path: prefetch and immediately demand-fetch
	// eight more cold pages. Whoever wins the claim, each page must cost
	// exactly one disk read (the loser joins or scores a hit).
	for id := PageID(8); id < 16; id++ {
		bp.Prefetch(id)
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkPage(p); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(p, false)
	}
	bp.prefetchActive.Wait()
	if reads, _, _ := mem.Stats().Snapshot(); reads != 16 {
		t.Fatalf("16 pages read %d times: prefetch and demand fetch did not share reads", reads)
	}
	st = bp.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits(%d)+misses(%d) != accesses(%d)", st.Hits, st.Misses, st.Accesses)
	}
}

// TestPrefetchWastedAccounting: prefetched pages that are evicted before
// any demand fetch count as wasted.
func TestPrefetchWastedAccounting(t *testing.T) {
	dm, _ := asyncTestDisk(t, 64, 0)
	bp := NewBufferPool(dm, 4)
	pf := NewPrefetcher(1, 64)
	defer pf.Close()
	bp.AttachPrefetcher(pf, 4)

	// Prefetch far more pages than the pool holds; none are ever fetched.
	for id := PageID(0); id < 32; id++ {
		bp.Prefetch(id)
	}
	bp.prefetchActive.Wait()
	st := bp.Stats()
	if st.PrefetchReads == 0 {
		t.Fatal("no prefetch reads recorded")
	}
	if st.PrefetchWasted == 0 {
		t.Fatal("32 never-fetched pages through a 4-frame pool recorded no wasted prefetches")
	}
	if st.PrefetchHits != 0 {
		t.Fatalf("no demand fetches ran, yet %d prefetch hits recorded", st.PrefetchHits)
	}
}
