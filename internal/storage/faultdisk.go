package storage

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// FaultOp names a disk-manager call site for fault scheduling.
type FaultOp int

// Call sites faults can target.
const (
	FaultRead FaultOp = iota
	FaultWrite
	FaultSync
	FaultAlloc
	numFaultOps
)

func (op FaultOp) String() string {
	switch op {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	case FaultSync:
		return "sync"
	case FaultAlloc:
		return "alloc"
	default:
		return "?"
	}
}

// FaultKind classifies what an injected fault does.
type FaultKind int

// Fault kinds.
const (
	// FaultTransient fails this one call with ErrInjectedIO; the next
	// call proceeds (unless scheduled again).
	FaultTransient FaultKind = iota
	// FaultPermanent fails this call and every later call to the same
	// op with ErrInjectedPermanentIO.
	FaultPermanent
	// FaultNoSpace fails write/alloc calls with ErrNoSpace, permanently.
	FaultNoSpace
	// FaultShortRead zeroes the tail of the page and returns
	// ErrShortRead (reads only).
	FaultShortRead
	// FaultTorn lands the first TornBytes bytes of the page on disk,
	// leaves the rest at its previous contents, and reports
	// ErrInjectedIO (writes only) — the classic torn page.
	FaultTorn
)

// FaultRule schedules one fault: fire Kind on the Nth (1-based) call to
// Op. TornBytes is how many bytes of the new page land for FaultTorn
// (defaults to half a page when 0).
type FaultRule struct {
	Op        FaultOp
	Kind      FaultKind
	Nth       int64
	TornBytes int
}

// FaultCounters exposes how many faults of each flavor were injected —
// sampled into obs so a torture run can assert injection actually
// happened.
type FaultCounters struct {
	Transient  int64
	Permanent  int64
	NoSpace    int64
	ShortReads int64
	TornWrites int64
}

// FaultDiskManager wraps any DiskManager and injects deterministic,
// seed-driven I/O faults: transient and permanent read/write/fsync
// errors, short reads, torn page writes, and ENOSPC. Two mechanisms
// compose:
//
//   - probabilities: each armed call to an op rolls the seeded RNG
//     against that op's probability and fails transiently on a hit;
//   - rules: "fail the Nth read with kind K" schedules, exact and
//     deterministic regardless of the probabilistic stream.
//
// The same seed over the same call sequence injects the same faults —
// a failing torture run replays exactly. Disarm() makes the wrapper
// transparent (recovery runs clean after a torn-write crash).
type FaultDiskManager struct {
	DiskManager

	mu    sync.Mutex
	rng   *rand.Rand
	armed bool
	prob  [numFaultOps]float64
	rules []FaultRule
	calls [numFaultOps]int64
	// perm, once set for an op, fails every later call to it.
	perm    [numFaultOps]bool
	noSpace bool

	transient  atomic.Int64
	permanent  atomic.Int64
	noSpaceCnt atomic.Int64
	shortReads atomic.Int64
	tornWrites atomic.Int64
}

// WithFaults wraps dm in a FaultDiskManager seeded with seed, armed
// immediately. Configure probabilities and rules before handing it to a
// buffer pool, or concurrently — all knobs are mutex-protected.
func WithFaults(dm DiskManager, seed int64) *FaultDiskManager {
	return &FaultDiskManager{
		DiskManager: dm,
		rng:         rand.New(rand.NewSource(seed)),
		armed:       true,
	}
}

// SetProb sets the probability (0..1) that an armed call to op fails
// with a transient error.
func (f *FaultDiskManager) SetProb(op FaultOp, p float64) {
	f.mu.Lock()
	f.prob[op] = p
	f.mu.Unlock()
}

// AddRule schedules a deterministic fault.
func (f *FaultDiskManager) AddRule(r FaultRule) {
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.mu.Unlock()
}

// Arm enables injection; Disarm makes the wrapper transparent.
func (f *FaultDiskManager) Arm() { f.mu.Lock(); f.armed = true; f.mu.Unlock() }

// Disarm disables injection (counters and call tallies keep counting
// calls so later rules still line up if re-armed).
func (f *FaultDiskManager) Disarm() { f.mu.Lock(); f.armed = false; f.mu.Unlock() }

// Counters returns a snapshot of injected-fault counts.
func (f *FaultDiskManager) Counters() FaultCounters {
	return FaultCounters{
		Transient:  f.transient.Load(),
		Permanent:  f.permanent.Load(),
		NoSpace:    f.noSpaceCnt.Load(),
		ShortReads: f.shortReads.Load(),
		TornWrites: f.tornWrites.Load(),
	}
}

// decide rolls one call of op. It returns the fault to inject (kind +
// torn byte count) or ok=true to pass the call through.
func (f *FaultDiskManager) decide(op FaultOp) (kind FaultKind, tornBytes int, inject bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[op]++
	if !f.armed {
		return 0, 0, false
	}
	if f.perm[op] {
		return FaultPermanent, 0, true
	}
	if f.noSpace && (op == FaultWrite || op == FaultAlloc || op == FaultSync) {
		return FaultNoSpace, 0, true
	}
	n := f.calls[op]
	for _, r := range f.rules {
		if r.Op != op || r.Nth != n {
			continue
		}
		switch r.Kind {
		case FaultPermanent:
			f.perm[op] = true
		case FaultNoSpace:
			f.noSpace = true
		}
		return r.Kind, r.TornBytes, true
	}
	if p := f.prob[op]; p > 0 && f.rng.Float64() < p {
		return FaultTransient, 0, true
	}
	return 0, 0, false
}

// ReadPage injects read faults, else delegates.
func (f *FaultDiskManager) ReadPage(id PageID, buf []byte) error {
	kind, _, inject := f.decide(FaultRead)
	if !inject {
		return f.DiskManager.ReadPage(id, buf)
	}
	switch kind {
	case FaultPermanent:
		f.permanent.Add(1)
		return ErrInjectedPermanentIO
	case FaultShortRead:
		// The first half of the page arrives; the tail is garbage the
		// caller must not trust — model that by zeroing it.
		if err := f.DiskManager.ReadPage(id, buf); err != nil {
			return err
		}
		for i := len(buf) / 2; i < len(buf); i++ {
			buf[i] = 0
		}
		f.shortReads.Add(1)
		return ErrShortRead
	default:
		f.transient.Add(1)
		return ErrInjectedIO
	}
}

// WritePage injects write faults — including torn writes, where the
// first TornBytes of data land over the old page image and the rest of
// the old image survives — else delegates.
func (f *FaultDiskManager) WritePage(id PageID, data []byte) error {
	kind, tornBytes, inject := f.decide(FaultWrite)
	if !inject {
		return f.DiskManager.WritePage(id, data)
	}
	switch kind {
	case FaultPermanent:
		f.permanent.Add(1)
		return ErrInjectedPermanentIO
	case FaultNoSpace:
		f.noSpaceCnt.Add(1)
		return ErrNoSpace
	case FaultTorn:
		if tornBytes <= 0 || tornBytes > len(data) {
			tornBytes = len(data) / 2
		}
		merged := make([]byte, len(data))
		// Old image where it exists (a fresh page reads back zeroes).
		if err := f.DiskManager.ReadPage(id, merged); err != nil {
			for i := range merged {
				merged[i] = 0
			}
		}
		copy(merged[:tornBytes], data[:tornBytes])
		if err := f.DiskManager.WritePage(id, merged); err != nil {
			return err
		}
		f.tornWrites.Add(1)
		return ErrInjectedIO
	default:
		f.transient.Add(1)
		return ErrInjectedIO
	}
}

// AllocatePage injects alloc faults (ENOSPC territory), else delegates.
func (f *FaultDiskManager) AllocatePage() (PageID, error) {
	kind, _, inject := f.decide(FaultAlloc)
	if !inject {
		return f.DiskManager.AllocatePage()
	}
	switch kind {
	case FaultPermanent:
		f.permanent.Add(1)
		return InvalidPageID, ErrInjectedPermanentIO
	case FaultNoSpace:
		f.noSpaceCnt.Add(1)
		return InvalidPageID, ErrNoSpace
	default:
		f.transient.Add(1)
		return InvalidPageID, ErrInjectedIO
	}
}

// Sync injects fsync faults, else delegates.
func (f *FaultDiskManager) Sync() error {
	kind, _, inject := f.decide(FaultSync)
	if !inject {
		return f.DiskManager.Sync()
	}
	switch kind {
	case FaultPermanent:
		f.permanent.Add(1)
		return ErrInjectedPermanentIO
	case FaultNoSpace:
		f.noSpaceCnt.Add(1)
		return ErrNoSpace
	default:
		f.transient.Add(1)
		return ErrInjectedIO
	}
}
