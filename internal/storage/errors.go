package storage

import (
	"errors"
	"fmt"
)

// ErrPageCorrupt reports a page whose stored checksum does not match the
// checksum recomputed over its bytes — a torn write, a bit flip, or any
// other corruption between the last successful write and this read. It
// is a terminal verdict about the bytes, not the device: retrying the
// read returns the same bytes, so the retry helpers in the buffer pool
// never retry it.
type ErrPageCorrupt struct {
	File     string // relation file name ("" when the pool has no name attached)
	PageID   PageID
	Expected uint32 // checksum stored in the page header
	Got      uint32 // checksum recomputed over the page bytes
}

func (e *ErrPageCorrupt) Error() string {
	file := e.File
	if file == "" {
		file = "<unnamed>"
	}
	return fmt.Sprintf("storage: page corrupt: file %s page %d: checksum stored %#08x, computed %#08x",
		file, e.PageID, e.Expected, e.Got)
}

// IsPageCorrupt reports whether err is (or wraps) an ErrPageCorrupt.
func IsPageCorrupt(err error) bool {
	var pc *ErrPageCorrupt
	return errors.As(err, &pc)
}

// Sentinel fault classes injected by FaultDiskManager. Real device
// errors arrive as *os.PathError etc.; the retry helpers classify both
// through IsTransient/IsNoSpace rather than matching these directly.
var (
	// ErrInjectedIO is a transient I/O error: a retry may succeed.
	ErrInjectedIO = errors.New("storage: injected I/O error (transient)")
	// ErrInjectedPermanentIO never clears, no matter how often retried.
	ErrInjectedPermanentIO = errors.New("storage: injected I/O error (permanent)")
	// ErrNoSpace models ENOSPC: the device is full. Writes cannot
	// proceed; the engine should degrade to read-only, not retry.
	ErrNoSpace = errors.New("storage: no space left on device")
	// ErrShortRead models a read that returned fewer bytes than a page.
	ErrShortRead = errors.New("storage: short read")
)

// IsTransient reports whether err is worth retrying: injected transient
// faults and short reads qualify; corruption, ENOSPC, and permanent
// faults do not. Unknown errors (real device errors) are treated as
// transient — a real disk's EIO often clears on retry, and the retry
// cap bounds the cost of being wrong.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInjectedPermanentIO) || errors.Is(err, ErrNoSpace) || IsPageCorrupt(err) {
		return false
	}
	return true
}

// IsNoSpace reports whether err is (or wraps) the ENOSPC class.
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace)
}
