package storage

import (
	"fmt"
	"sync"
)

// Page is a pinned buffer-pool frame. The holder may read and mutate Data
// and must Unpin it (marking it dirty if mutated) when done.
type Page struct {
	ID   PageID
	Data []byte

	frame int // frame index inside the owning pool
}

// PoolStats counts logical page traffic at the buffer-pool level. Logical
// accesses minus hits equals physical reads triggered by this pool.
type PoolStats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// BufferPool caches pages of one DiskManager using clock replacement.
// All methods are safe for concurrent use.
type BufferPool struct {
	mu     sync.Mutex
	dm     DiskManager
	frames []frame
	table  map[PageID]int
	hand   int
	stats  PoolStats
}

type frame struct {
	id    PageID
	data  []byte
	pin   int
	dirty bool
	ref   bool // clock reference bit
	valid bool
}

// NewBufferPool creates a pool with capacity frames over dm.
func NewBufferPool(dm DiskManager, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	bp := &BufferPool{
		dm:     dm,
		frames: make([]frame, capacity),
		table:  make(map[PageID]int, capacity),
	}
	for i := range bp.frames {
		bp.frames[i].data = make([]byte, dm.PageSize())
	}
	return bp
}

// DM exposes the underlying disk manager.
func (bp *BufferPool) DM() DiskManager { return bp.dm }

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters (the disk counters are separate).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}

// Fetch pins the page with the given id, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.Accesses++
	if fi, ok := bp.table[id]; ok {
		bp.stats.Hits++
		f := &bp.frames[fi]
		f.pin++
		f.ref = true
		return &Page{ID: id, Data: f.data, frame: fi}, nil
	}
	bp.stats.Misses++
	fi, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[fi]
	if err := bp.dm.ReadPage(id, f.data); err != nil {
		f.valid = false
		return nil, err
	}
	f.id = id
	f.pin = 1
	f.dirty = false
	f.ref = true
	f.valid = true
	bp.table[id] = fi
	return &Page{ID: id, Data: f.data, frame: fi}, nil
}

// NewPage allocates a fresh zeroed page on disk and returns it pinned.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.dm.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.Accesses++
	bp.stats.Misses++
	fi, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[fi]
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pin = 1
	f.dirty = true // must reach disk even if never modified again
	f.ref = true
	f.valid = true
	bp.table[id] = fi
	return &Page{ID: id, Data: f.data, frame: fi}, nil
}

// Unpin releases one pin on p. dirty marks the frame as modified.
func (bp *BufferPool) Unpin(p *Page, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f := &bp.frames[p.frame]
	if !f.valid || f.id != p.ID {
		panic(fmt.Sprintf("storage: unpin of stale page %d", p.ID))
	}
	if f.pin <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", p.ID))
	}
	f.pin--
	if dirty {
		f.dirty = true
	}
}

// victimLocked finds a free or evictable frame, writing back a dirty
// victim. Caller holds bp.mu.
func (bp *BufferPool) victimLocked() (int, error) {
	n := len(bp.frames)
	// Two full sweeps: the first clears reference bits, the second takes
	// the first unpinned frame.
	for sweep := 0; sweep < 2*n+1; sweep++ {
		f := &bp.frames[bp.hand]
		i := bp.hand
		bp.hand = (bp.hand + 1) % n
		if !f.valid {
			return i, nil
		}
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := bp.dm.WritePage(f.id, f.data); err != nil {
				return 0, err
			}
		}
		delete(bp.table, f.id)
		f.valid = false
		bp.stats.Evictions++
		return i, nil
	}
	return 0, fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", n)
}

// FlushAll writes every dirty frame back to disk. Pages stay cached.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.valid && f.dirty {
			if err := bp.dm.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Close flushes all dirty pages and closes the disk manager.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.dm.Close()
}
