package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/wal"
)

// Page is a pinned buffer-pool frame. The holder may read and mutate Data
// and must Unpin it (marking it dirty if mutated) when done. Mutating
// holders must be externally serialized against every other holder of the
// same page (the executor's exclusive statement lock provides this);
// read-only holders may share a page freely.
type Page struct {
	ID   PageID
	Data []byte

	shard int // owning shard index
	frame int // frame index inside the owning shard
}

// PoolStats counts logical page traffic at the buffer-pool level. Logical
// accesses minus hits equals physical reads triggered by this pool.
// DirtyWrites counts dirty frames written back to disk, whether by
// eviction or by an explicit flush.
type PoolStats struct {
	Accesses    int64
	Hits        int64
	Misses      int64
	Evictions   int64
	DirtyWrites int64
}

// add accumulates o into s (Stats sums the per-shard counters).
func (s *PoolStats) add(o PoolStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.DirtyWrites += o.DirtyWrites
}

// maxPoolShards caps the page-table sharding; 16 shards keep read-path
// lock contention negligible up to dozens of cores without wasting frames
// on tiny pools.
const maxPoolShards = 16

// minFramesPerShard keeps each shard's clock big enough that one
// statement's pinned and uncommitted (no-steal) frames cannot exhaust
// it. Sharding fragments the pool's victim search — a frame must be
// found in the page's own shard, there is no cross-shard borrowing — so
// small pools shard less rather than risk "shard exhausted" errors on
// statements the unsharded pool handled.
const minFramesPerShard = 16

// BufferPool caches pages of one DiskManager using clock replacement.
// All methods are safe for concurrent use.
//
// The page table is sharded by PageID so concurrent Fetch/Unpin of
// distinct pages contend on (at most) one shard mutex rather than one
// global pool mutex, and releasing a clean pin touches no mutex at all:
// pin counts and reference bits are per-frame atomics. Pins are only ever
// *added* under the owning shard's mutex, which the evictor also holds,
// so a frame observed unpinned by the evictor cannot be concurrently
// re-pinned.
//
// When a write-ahead log is attached (AttachWAL), the pool becomes the
// WAL integration point for every structure built on it: each dirty
// unpin appends a page-image record (unless the caller already covered
// the mutation with a logical record via UnpinLSN), and no dirty frame
// is written back to disk before the log is durable up to that frame's
// latest record — the WAL-before-data rule.
type BufferPool struct {
	dm     DiskManager
	shards []poolShard

	// walRef holds the attached log writer and record file name. An
	// atomic pointer rather than a mutex: AttachWAL is called once,
	// before the pool is shared, and afterwards every dirty unpin and
	// eviction reads it — a lock here would be a pool-global
	// serialization point inside the per-shard critical sections.
	walRef atomic.Pointer[walAttachment]

	// waits joins the pool to the engine's wait-event layer (AttachObs,
	// once, before the pool is shared; nil for standalone pools). Shard
	// mutex acquisitions charge waitShard only after a TryLock failed —
	// the uncontended path pays one predictable branch and reads no
	// clock — while miss disk reads always charge waitIO: next to a real
	// disk read the two clock reads are noise, and the I/O time is the
	// number the wait profile exists to expose.
	waits  *obs.WaitSet
	waitIO obs.WaitEvent // miss-read classification (heap/index/catalog)

	// ops holds the statement's deferred logical records (heap inserts,
	// deletes, batch inserts): instead of appending to the log during
	// execution — where records of concurrent statements on other
	// tables would interleave with them — they are staged here and
	// appended contiguously, together with the statement's commit
	// marker, by StagePending/AppendGroupCommit. The frames they cover
	// carry opPending and are unevictable until ResolvePending assigns
	// their LSNs. Statements on one pool are externally serialized (the
	// executor's per-table writer lock); opsMu only orders the slice
	// against FlushAll and Crash.
	opsMu sync.Mutex
	ops   []deferredOp
}

// deferredOp is one staged logical record. rec/slots/recs are retained
// until the statement commits; callers pass freshly allocated slices.
type deferredOp struct {
	typ   wal.RecordType
	page  PageID
	slot  uint16
	rec   []byte   // RecHeapInsert
	slots []uint16 // RecHeapBatchInsert
	recs  [][]byte // RecHeapBatchInsert
	xid   uint64   // RecHeapSetXmax
}

// walAttachment pairs the log writer with the file name used in WAL
// records for this pool's pages.
type walAttachment struct {
	w    *wal.Writer
	file string
}

// poolShard owns a disjoint subset of the pool's frames and the pages
// that hash to it. Its mutex guards the page table, the clock hand, and
// every non-atomic frame field.
type poolShard struct {
	mu      sync.Mutex
	frames  []frame
	table   map[PageID]int
	hand    int
	pending int // frames with imagePending set

	// Traffic counters live per shard, as plain fields under the shard
	// mutex the hot paths already hold — zero extra atomics per fetch.
	// Readouts (SHOW STATS) take the same mutex, contending only with
	// this shard's traffic.
	accesses    int64
	hits        int64
	misses      int64
	evictions   int64
	dirtyWrites int64
}

// snapshot reads the shard's counters.
func (sh *poolShard) snapshot() PoolStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return PoolStats{
		Accesses:    sh.accesses,
		Hits:        sh.hits,
		Misses:      sh.misses,
		Evictions:   sh.evictions,
		DirtyWrites: sh.dirtyWrites,
	}
}

type frame struct {
	id   PageID
	data []byte
	// pin and ref are atomics so a clean unpin (the hot read path) needs
	// no shard lock: it decrements pin and sets ref without synchronizing
	// with anything else. New pins are only taken under the shard mutex.
	pin   atomic.Int32
	ref   atomic.Bool // clock reference bit
	dirty bool
	valid bool
	lsn   wal.LSN // latest WAL record covering this page (0 = none)
	// imagePending marks a frame dirtied since the last commit marker
	// whose page-image record is deferred to the commit point, so a
	// page touched N times within one statement is imaged once, not N
	// times. Such frames are unevictable (no-steal) until logged.
	imagePending bool
	// opPending marks a frame covered by deferred logical records
	// (bp.ops) whose LSNs are not yet assigned. Unevictable, like
	// imagePending, until ResolvePending runs at the commit point.
	opPending bool
}

// NewBufferPool creates a pool with capacity frames over dm.
func NewBufferPool(dm DiskManager, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	nShards := capacity / minFramesPerShard
	if nShards > maxPoolShards {
		nShards = maxPoolShards
	}
	if nShards < 1 {
		nShards = 1
	}
	bp := &BufferPool{
		dm:     dm,
		shards: make([]poolShard, nShards),
	}
	for si := range bp.shards {
		// Distribute the capacity remainder over the first shards so the
		// total frame count is exactly capacity.
		n := capacity / nShards
		if si < capacity%nShards {
			n++
		}
		sh := &bp.shards[si]
		sh.frames = make([]frame, n)
		sh.table = make(map[PageID]int, n)
		for i := range sh.frames {
			sh.frames[i].data = make([]byte, dm.PageSize())
		}
	}
	return bp
}

// shardOf maps a page to its owning shard index. Sequential page IDs
// spread round-robin, so a scan's working set lands evenly across shards.
func (bp *BufferPool) shardOf(id PageID) int {
	return int(uint32(id)) % len(bp.shards)
}

// DM exposes the underlying disk manager.
func (bp *BufferPool) DM() DiskManager { return bp.dm }

// NumShards reports the page-table shard count (introspection, tests).
func (bp *BufferPool) NumShards() int { return len(bp.shards) }

// AttachWAL enables write-ahead logging for this pool. fileName is the
// name under which this pool's pages appear in log records (the data
// file's base name). Must be called before the pool is used.
func (bp *BufferPool) AttachWAL(w *wal.Writer, fileName string) {
	bp.walRef.Store(&walAttachment{w: w, file: fileName})
}

// AttachObs joins the pool to a wait-event set: shard-mutex contention
// is charged to buf_shard and miss disk reads to ioEvent (heap, index,
// or catalog reads, per the file this pool caches). Like AttachWAL, it
// must be called before the pool is shared.
func (bp *BufferPool) AttachObs(ws *obs.WaitSet, ioEvent obs.WaitEvent) {
	bp.waits = ws
	bp.waitIO = ioEvent
}

// lockShard acquires sh.mu, charging a blocked acquisition to the
// buf_shard wait event. The uncontended fast path is one TryLock.
func (bp *BufferPool) lockShard(sh *poolShard) {
	if sh.mu.TryLock() {
		return
	}
	m := bp.waits.Begin(obs.WaitBufShard)
	sh.mu.Lock()
	bp.waits.End(m)
}

// WAL returns the attached log writer and record file name (nil, "" when
// logging is disabled). Structures that log logical records instead of
// page images (the heap) reach the writer through this.
func (bp *BufferPool) WAL() (*wal.Writer, string) {
	if a := bp.walRef.Load(); a != nil {
		return a.w, a.file
	}
	return nil, ""
}

// Stats returns a snapshot of the pool counters, summed over shards.
// Under concurrent traffic the counters are read at slightly different
// instants; each is individually exact.
func (bp *BufferPool) Stats() PoolStats {
	var s PoolStats
	for si := range bp.shards {
		s.add(bp.shards[si].snapshot())
	}
	return s
}

// ShardStats returns the counters of one page-table shard (SHOW STATS,
// tests). Panics if si is out of range.
func (bp *BufferPool) ShardStats(si int) PoolStats {
	return bp.shards[si].snapshot()
}

// ResetStats zeroes the pool counters (the disk counters are separate).
func (bp *BufferPool) ResetStats() {
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		sh.accesses = 0
		sh.hits = 0
		sh.misses = 0
		sh.evictions = 0
		sh.dirtyWrites = 0
		sh.mu.Unlock()
	}
}

// Fetch pins the page with the given id, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	si := bp.shardOf(id)
	sh := &bp.shards[si]
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	sh.accesses++
	if fi, ok := sh.table[id]; ok {
		sh.hits++
		f := &sh.frames[fi]
		f.pin.Add(1)
		f.ref.Store(true)
		return &Page{ID: id, Data: f.data, shard: si, frame: fi}, nil
	}
	sh.misses++
	fi, err := bp.victimLocked(sh)
	if err != nil {
		return nil, err
	}
	f := &sh.frames[fi]
	// The disk read happens under the shard lock: misses on pages of the
	// same shard serialize, misses on other shards proceed. Simple and
	// correct; a concurrent fetch of this page blocks here rather than
	// reading the page into a second frame. The read is charged to the
	// pool's I/O wait event, and — when the statement above armed a
	// tracer — recorded as a page_read span on its timeline.
	iw := bp.waits.Begin(bp.waitIO)
	sp := obs.Current().StartSpan("page_read", "io")
	rerr := bp.dm.ReadPage(id, f.data)
	sp.End()
	bp.waits.End(iw)
	if rerr != nil {
		f.valid = false
		return nil, rerr
	}
	f.id = id
	f.pin.Store(1)
	f.dirty = false
	f.ref.Store(true)
	f.valid = true
	f.lsn = 0
	f.imagePending = false
	f.opPending = false
	sh.table[id] = fi
	return &Page{ID: id, Data: f.data, shard: si, frame: fi}, nil
}

// NewPage allocates a fresh zeroed page on disk and returns it pinned.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.dm.AllocatePage()
	if err != nil {
		return nil, err
	}
	si := bp.shardOf(id)
	sh := &bp.shards[si]
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	sh.accesses++
	sh.misses++
	fi, err := bp.victimLocked(sh)
	if err != nil {
		return nil, err
	}
	f := &sh.frames[fi]
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pin.Store(1)
	f.dirty = true // must reach disk even if never modified again
	f.ref.Store(true)
	f.valid = true
	f.lsn = 0
	f.imagePending = false
	f.opPending = false
	sh.table[id] = fi
	return &Page{ID: id, Data: f.data, shard: si, frame: fi}, nil
}

// Unpin releases one pin on p. dirty marks the frame as modified; with a
// WAL attached, a dirty unpin also logs a page-image record so the
// mutation can be redone after a crash.
//
// A clean unpin is lock-free: it validates, sets the reference bit, and
// decrements the atomic pin count. The frame cannot be evicted (its id,
// valid bit, and data reassigned) while the pin is held, and the evictor
// observes the decrement through the same atomic.
func (bp *BufferPool) Unpin(p *Page, dirty bool) {
	sh := &bp.shards[p.shard]
	if !dirty {
		f := &sh.frames[p.frame]
		bp.validatePinned(f, p)
		f.ref.Store(true)
		f.pin.Add(-1)
		return
	}
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	f := bp.unpinLocked(sh, p)
	f.dirty = true
	w, walFile := bp.WAL()
	switch {
	case w == nil:
	case w.CommittedLSN() > 0:
		// Statement boundaries exist: defer the image to the commit
		// point (LogPendingImages), so repeated dirtying of one
		// page within a statement logs a single image. The no-steal
		// rule keeps the frame in memory meanwhile.
		if !f.imagePending {
			f.imagePending = true
			sh.pending++
		}
	default:
		// Raw log without statement boundaries: log eagerly.
		// Append errors are sticky in the writer; the next
		// WAL-before-data sync surfaces them, so the failed LSN
		// does not need to be tracked here.
		if lsn, err := w.AppendPageImage(walFile, uint32(p.ID), f.data); err == nil {
			f.lsn = lsn
		}
	}
}

// UnpinLSN releases one pin on p, marking it dirty, for a mutation that
// the caller already covered with a logical WAL record at lsn. No page
// image is logged; the frame's WAL-before-data horizon advances to lsn.
func (bp *BufferPool) UnpinLSN(p *Page, lsn wal.LSN) {
	sh := &bp.shards[p.shard]
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	f := bp.unpinLocked(sh, p)
	f.dirty = true
	if lsn > f.lsn {
		f.lsn = lsn
	}
}

// UnpinDeferredOp releases one pin on p, marking it dirty and covered by
// a deferred logical record the caller just staged with DeferHeapInsert/
// DeferHeapDelete/DeferHeapBatchInsert. The frame stays unevictable
// until ResolvePending assigns the record's LSN at the commit point.
func (bp *BufferPool) UnpinDeferredOp(p *Page) {
	sh := &bp.shards[p.shard]
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	f := bp.unpinLocked(sh, p)
	f.dirty = true
	f.opPending = true
}

// DeferHeapInsert stages a logical heap-insert record for the commit
// point. rec is retained until then; pass a freshly allocated slice.
// Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapInsert(page PageID, slot uint16, rec []byte) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapInsert, page: page, slot: slot, rec: rec})
	bp.opsMu.Unlock()
}

// DeferHeapDelete stages a logical heap-delete record for the commit
// point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapDelete(page PageID, slot uint16) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapDelete, page: page, slot: slot})
	bp.opsMu.Unlock()
}

// DeferHeapBatchInsert stages one page-worth of heap inserts as a single
// batch record for the commit point. slots/recs are retained until then.
// Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapBatchInsert(page PageID, slots []uint16, recs [][]byte) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapBatchInsert, page: page, slots: slots, recs: recs})
	bp.opsMu.Unlock()
}

// DeferHeapSetXmax stages a set-xmax record (MVCC delete) for the commit
// point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapSetXmax(page PageID, slot uint16, xid uint64) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapSetXmax, page: page, slot: slot, xid: xid})
	bp.opsMu.Unlock()
}

// DeferHeapClearXmax stages a clear-xmax record (SetXmax undo) for the
// commit point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapClearXmax(page PageID, slot uint16) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapClearXmax, page: page, slot: slot})
	bp.opsMu.Unlock()
}

// DeferHeapMarkAborted stages a mark-aborted record (insert undo) for the
// commit point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapMarkAborted(page PageID, slot uint16) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapMarkAborted, page: page, slot: slot})
	bp.opsMu.Unlock()
}

// Staged names one record a StagePending call added to a wal.Group: the
// page it covers and its index into the LSNs AppendGroup(Commit)
// returns. ResolvePending consumes it.
type Staged struct {
	Page  PageID
	Index int
	Image bool
}

// StagePending moves the pool's deferred work — logical records staged
// by the Defer* calls and the page images of imagePending frames — into
// g for one atomic group append. The covered frames keep their pending
// flags (and stay unevictable) until ResolvePending stamps the assigned
// LSNs. The caller must serialize StagePending/ResolvePending pairs per
// pool (the executor's per-table writer lock and exclusive DDL lock do).
func (bp *BufferPool) StagePending(g *wal.Group) []Staged {
	w, file := bp.WAL()
	if w == nil {
		return nil
	}
	bp.opsMu.Lock()
	ops := bp.ops
	bp.ops = nil
	bp.opsMu.Unlock()
	staged := stageOps(g, file, ops)
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		if sh.pending == 0 {
			sh.mu.Unlock()
			continue
		}
		for i := range sh.frames {
			f := &sh.frames[i]
			if !f.valid || !f.imagePending {
				continue
			}
			idx := g.AddPageImage(file, uint32(f.id), f.data)
			staged = append(staged, Staged{Page: f.id, Index: idx, Image: true})
		}
		sh.mu.Unlock()
	}
	return staged
}

// stageOps encodes deferred logical records into g.
func stageOps(g *wal.Group, file string, ops []deferredOp) []Staged {
	var staged []Staged
	for _, op := range ops {
		var idx int
		switch op.typ {
		case wal.RecHeapInsert:
			idx = g.AddHeapInsert(file, uint32(op.page), op.slot, op.rec)
		case wal.RecHeapDelete:
			idx = g.AddHeapDelete(file, uint32(op.page), op.slot)
		case wal.RecHeapBatchInsert:
			idx = g.AddHeapBatchInsert(file, uint32(op.page), op.slots, op.recs)
		case wal.RecHeapSetXmax:
			idx = g.AddHeapSetXmax(file, uint32(op.page), op.slot, op.xid)
		case wal.RecHeapClearXmax:
			idx = g.AddHeapClearXmax(file, uint32(op.page), op.slot)
		case wal.RecHeapMarkAborted:
			idx = g.AddHeapMarkAborted(file, uint32(op.page), op.slot)
		}
		staged = append(staged, Staged{Page: op.page, Index: idx})
	}
	return staged
}

// ResolvePending stamps the LSNs assigned by the group append onto the
// staged frames: the WAL-before-data horizon advances, logical records
// stamp the slotted pageLSN (for redo idempotence), and the pending
// flags clear, making the frames evictable again. lsns is the slice
// AppendGroup(Commit) returned for the group the Staged indices point
// into.
func (bp *BufferPool) ResolvePending(staged []Staged, lsns []wal.LSN) {
	for _, s := range staged {
		lsn := lsns[s.Index]
		sh := &bp.shards[bp.shardOf(s.Page)]
		sh.mu.Lock()
		fi, ok := sh.table[s.Page]
		if !ok {
			// Unreachable: pending frames are unevictable until resolved.
			sh.mu.Unlock()
			continue
		}
		f := &sh.frames[fi]
		if lsn > f.lsn {
			f.lsn = lsn
		}
		if s.Image {
			if f.imagePending {
				f.imagePending = false
				sh.pending--
			}
		} else {
			f.opPending = false
			if PageLSN(f.data) < uint64(lsn) {
				SetPageLSN(f.data, uint64(lsn))
			}
		}
		sh.mu.Unlock()
	}
}

// flushDeferredOps appends any still-deferred logical records directly
// (no commit marker). Only flush paths call it — Close and CHECKPOINT
// run under the exclusive statement lock, where a deferred record can
// only belong to an aborted statement whose pages are about to be made
// durable anyway; the checkpoint or close marker that follows commits
// them.
func (bp *BufferPool) flushDeferredOps() error {
	w, file := bp.WAL()
	if w == nil {
		return nil
	}
	bp.opsMu.Lock()
	ops := bp.ops
	bp.ops = nil
	bp.opsMu.Unlock()
	if len(ops) == 0 {
		return nil
	}
	g := wal.NewGroup()
	staged := stageOps(g, file, ops)
	lsns, err := w.AppendGroup(g)
	if err != nil {
		return err
	}
	bp.ResolvePending(staged, lsns)
	return nil
}

// validatePinned panics on unpin misuse (stale page, double unpin).
func (bp *BufferPool) validatePinned(f *frame, p *Page) {
	if !f.valid || f.id != p.ID {
		panic(fmt.Sprintf("storage: unpin of stale page %d", p.ID))
	}
	if f.pin.Load() <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", p.ID))
	}
}

// unpinLocked validates and drops one pin, returning the frame. Caller
// holds the shard mutex.
func (bp *BufferPool) unpinLocked(sh *poolShard, p *Page) *frame {
	f := &sh.frames[p.frame]
	bp.validatePinned(f, p)
	f.ref.Store(true)
	f.pin.Add(-1)
	return f
}

// victimLocked finds a free or evictable frame in sh, writing back a
// dirty victim. Caller holds sh.mu.
func (bp *BufferPool) victimLocked(sh *poolShard) (int, error) {
	n := len(sh.frames)
	// No-steal rule: with a WAL attached, a dirty frame whose latest
	// record is past the last commit marker holds uncommitted state.
	// Writing it in place would require an undo pass at recovery (the
	// redo log cannot take the row back out of the data file), so such
	// frames are as unevictable as pinned ones until their statement
	// commits. committed == 0 means no marker was ever appended — a
	// raw storage-level log without statement boundaries — and the
	// rule is off.
	w, _ := bp.WAL()
	committed := wal.LSN(0)
	if w != nil {
		committed = w.CommittedLSN()
	}
	// Two full sweeps: the first clears reference bits, the second takes
	// the first unpinned frame.
	for sweep := 0; sweep < 2*n+1; sweep++ {
		f := &sh.frames[sh.hand]
		i := sh.hand
		sh.hand = (sh.hand + 1) % n
		if !f.valid {
			return i, nil
		}
		if f.pin.Load() > 0 {
			continue
		}
		if f.dirty && (f.imagePending || f.opPending || (committed > 0 && f.lsn > committed)) {
			continue
		}
		if f.ref.Load() {
			f.ref.Store(false)
			continue
		}
		if f.dirty {
			// WAL-before-data, including the commit marker covering
			// this frame's statement: if only the records (not the
			// marker) were durable at a crash, recovery would discard
			// them as an uncommitted tail while the page survived.
			target := f.lsn
			if committed > target {
				target = committed
			}
			if err := bp.syncWAL(w, target); err != nil {
				return 0, err
			}
			if err := bp.dm.WritePage(f.id, f.data); err != nil {
				return 0, err
			}
			sh.dirtyWrites++
		}
		delete(sh.table, f.id)
		f.valid = false
		sh.evictions++
		return i, nil
	}
	return 0, fmt.Errorf("storage: buffer pool shard exhausted (%d frames, all pinned or uncommitted)", n)
}

// LogPendingImages appends the deferred page-image record of every
// frame dirtied since the last commit marker. The commit path calls it
// immediately before appending the marker, so the marker covers the
// final image of each page the statement touched.
func (bp *BufferPool) LogPendingImages() error {
	w, walFile := bp.WAL()
	if w == nil {
		return nil
	}
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		if sh.pending == 0 {
			sh.mu.Unlock()
			continue
		}
		for i := range sh.frames {
			f := &sh.frames[i]
			if !f.valid || !f.imagePending {
				continue
			}
			lsn, err := w.AppendPageImage(walFile, uint32(f.id), f.data)
			if err != nil {
				sh.mu.Unlock()
				return err
			}
			if lsn > f.lsn {
				f.lsn = lsn
			}
			f.imagePending = false
			sh.pending--
		}
		sh.mu.Unlock()
	}
	return nil
}

// syncWAL enforces WAL-before-data: with a log attached, the log must be
// durable up to lsn before the page it covers may be written in place.
// It also surfaces any sticky log error even when lsn is zero.
func (bp *BufferPool) syncWAL(w *wal.Writer, lsn wal.LSN) error {
	if w == nil {
		return nil
	}
	return w.Sync(lsn)
}

// FlushAll writes every dirty frame back to disk. Pages stay cached.
// Deferred logical records and page images are materialized first,
// keeping WAL-before-data intact for frames whose records were
// postponed to the commit point.
func (bp *BufferPool) FlushAll() error {
	if err := bp.flushDeferredOps(); err != nil {
		return err
	}
	w, walFile := bp.WAL()
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if !f.valid || !f.dirty {
				continue
			}
			if f.imagePending {
				lsn, err := w.AppendPageImage(walFile, uint32(f.id), f.data)
				if err != nil {
					sh.mu.Unlock()
					return err
				}
				if lsn > f.lsn {
					f.lsn = lsn
				}
				f.imagePending = false
				sh.pending--
			}
			if err := bp.syncWAL(w, f.lsn); err != nil {
				sh.mu.Unlock()
				return err
			}
			if err := bp.dm.WritePage(f.id, f.data); err != nil {
				sh.mu.Unlock()
				return err
			}
			sh.dirtyWrites++
			f.dirty = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// Close flushes all dirty pages and closes the disk manager.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.dm.Close()
}

// Crash discards every frame — dirty or not, pinned or not — without
// writing anything back, then closes the disk manager. It simulates the
// loss of volatile state in a crash: the data file keeps only what
// earlier evictions and flushes wrote. Test and demo hook.
func (bp *BufferPool) Crash() error {
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			f.id = 0
			f.pin.Store(0)
			f.ref.Store(false)
			f.dirty = false
			f.valid = false
			f.lsn = 0
			f.imagePending = false
			f.opPending = false
		}
		sh.table = make(map[PageID]int)
		sh.pending = 0
		sh.mu.Unlock()
	}
	bp.opsMu.Lock()
	bp.ops = nil
	bp.opsMu.Unlock()
	return bp.dm.Close()
}
