package storage

import (
	"fmt"
	"sync"

	"repro/internal/wal"
)

// Page is a pinned buffer-pool frame. The holder may read and mutate Data
// and must Unpin it (marking it dirty if mutated) when done.
type Page struct {
	ID   PageID
	Data []byte

	frame int // frame index inside the owning pool
}

// PoolStats counts logical page traffic at the buffer-pool level. Logical
// accesses minus hits equals physical reads triggered by this pool.
type PoolStats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// BufferPool caches pages of one DiskManager using clock replacement.
// All methods are safe for concurrent use.
//
// When a write-ahead log is attached (AttachWAL), the pool becomes the
// WAL integration point for every structure built on it: each dirty
// unpin appends a page-image record (unless the caller already covered
// the mutation with a logical record via UnpinLSN), and no dirty frame
// is written back to disk before the log is durable up to that frame's
// latest record — the WAL-before-data rule.
type BufferPool struct {
	mu      sync.Mutex
	dm      DiskManager
	frames  []frame
	table   map[PageID]int
	hand    int
	stats   PoolStats
	wal     *wal.Writer
	walFile string // file name used in WAL records for this pool's pages
	pending int    // frames with imagePending set
}

type frame struct {
	id    PageID
	data  []byte
	pin   int
	dirty bool
	ref   bool // clock reference bit
	valid bool
	lsn   wal.LSN // latest WAL record covering this page (0 = none)
	// imagePending marks a frame dirtied since the last commit marker
	// whose page-image record is deferred to the commit point, so a
	// page touched N times within one statement is imaged once, not N
	// times. Such frames are unevictable (no-steal) until logged.
	imagePending bool
}

// NewBufferPool creates a pool with capacity frames over dm.
func NewBufferPool(dm DiskManager, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	bp := &BufferPool{
		dm:     dm,
		frames: make([]frame, capacity),
		table:  make(map[PageID]int, capacity),
	}
	for i := range bp.frames {
		bp.frames[i].data = make([]byte, dm.PageSize())
	}
	return bp
}

// DM exposes the underlying disk manager.
func (bp *BufferPool) DM() DiskManager { return bp.dm }

// AttachWAL enables write-ahead logging for this pool. fileName is the
// name under which this pool's pages appear in log records (the data
// file's base name). Must be called before the pool is used.
func (bp *BufferPool) AttachWAL(w *wal.Writer, fileName string) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.wal = w
	bp.walFile = fileName
}

// WAL returns the attached log writer and record file name (nil, "" when
// logging is disabled). Structures that log logical records instead of
// page images (the heap) reach the writer through this.
func (bp *BufferPool) WAL() (*wal.Writer, string) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.wal, bp.walFile
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters (the disk counters are separate).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}

// Fetch pins the page with the given id, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.Accesses++
	if fi, ok := bp.table[id]; ok {
		bp.stats.Hits++
		f := &bp.frames[fi]
		f.pin++
		f.ref = true
		return &Page{ID: id, Data: f.data, frame: fi}, nil
	}
	bp.stats.Misses++
	fi, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[fi]
	if err := bp.dm.ReadPage(id, f.data); err != nil {
		f.valid = false
		return nil, err
	}
	f.id = id
	f.pin = 1
	f.dirty = false
	f.ref = true
	f.valid = true
	f.lsn = 0
	f.imagePending = false
	bp.table[id] = fi
	return &Page{ID: id, Data: f.data, frame: fi}, nil
}

// NewPage allocates a fresh zeroed page on disk and returns it pinned.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.dm.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.Accesses++
	bp.stats.Misses++
	fi, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[fi]
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pin = 1
	f.dirty = true // must reach disk even if never modified again
	f.ref = true
	f.valid = true
	f.lsn = 0
	f.imagePending = false
	bp.table[id] = fi
	return &Page{ID: id, Data: f.data, frame: fi}, nil
}

// Unpin releases one pin on p. dirty marks the frame as modified; with a
// WAL attached, a dirty unpin also logs a page-image record so the
// mutation can be redone after a crash.
func (bp *BufferPool) Unpin(p *Page, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f := bp.unpinLocked(p)
	if dirty {
		f.dirty = true
		switch {
		case bp.wal == nil:
		case bp.wal.CommittedLSN() > 0:
			// Statement boundaries exist: defer the image to the commit
			// point (LogPendingImages), so repeated dirtying of one
			// page within a statement logs a single image. The no-steal
			// rule keeps the frame in memory meanwhile.
			if !f.imagePending {
				f.imagePending = true
				bp.pending++
			}
		default:
			// Raw log without statement boundaries: log eagerly.
			// Append errors are sticky in the writer; the next
			// WAL-before-data sync surfaces them, so the failed LSN
			// does not need to be tracked here.
			if lsn, err := bp.wal.AppendPageImage(bp.walFile, uint32(p.ID), f.data); err == nil {
				f.lsn = lsn
			}
		}
	}
}

// UnpinLSN releases one pin on p, marking it dirty, for a mutation that
// the caller already covered with a logical WAL record at lsn. No page
// image is logged; the frame's WAL-before-data horizon advances to lsn.
func (bp *BufferPool) UnpinLSN(p *Page, lsn wal.LSN) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f := bp.unpinLocked(p)
	f.dirty = true
	if lsn > f.lsn {
		f.lsn = lsn
	}
}

// unpinLocked validates and drops one pin, returning the frame.
func (bp *BufferPool) unpinLocked(p *Page) *frame {
	f := &bp.frames[p.frame]
	if !f.valid || f.id != p.ID {
		panic(fmt.Sprintf("storage: unpin of stale page %d", p.ID))
	}
	if f.pin <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", p.ID))
	}
	f.pin--
	return f
}

// victimLocked finds a free or evictable frame, writing back a dirty
// victim. Caller holds bp.mu.
func (bp *BufferPool) victimLocked() (int, error) {
	n := len(bp.frames)
	// No-steal rule: with a WAL attached, a dirty frame whose latest
	// record is past the last commit marker holds uncommitted state.
	// Writing it in place would require an undo pass at recovery (the
	// redo log cannot take the row back out of the data file), so such
	// frames are as unevictable as pinned ones until their statement
	// commits. committed == 0 means no marker was ever appended — a
	// raw storage-level log without statement boundaries — and the
	// rule is off.
	committed := wal.LSN(0)
	if bp.wal != nil {
		committed = bp.wal.CommittedLSN()
	}
	// Two full sweeps: the first clears reference bits, the second takes
	// the first unpinned frame.
	for sweep := 0; sweep < 2*n+1; sweep++ {
		f := &bp.frames[bp.hand]
		i := bp.hand
		bp.hand = (bp.hand + 1) % n
		if !f.valid {
			return i, nil
		}
		if f.pin > 0 {
			continue
		}
		if f.dirty && (f.imagePending || (committed > 0 && f.lsn > committed)) {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			// WAL-before-data, including the commit marker covering
			// this frame's statement: if only the records (not the
			// marker) were durable at a crash, recovery would discard
			// them as an uncommitted tail while the page survived.
			target := f.lsn
			if committed > target {
				target = committed
			}
			if err := bp.syncWALLocked(target); err != nil {
				return 0, err
			}
			if err := bp.dm.WritePage(f.id, f.data); err != nil {
				return 0, err
			}
		}
		delete(bp.table, f.id)
		f.valid = false
		bp.stats.Evictions++
		return i, nil
	}
	return 0, fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned or uncommitted)", n)
}

// LogPendingImages appends the deferred page-image record of every
// frame dirtied since the last commit marker. The commit path calls it
// immediately before appending the marker, so the marker covers the
// final image of each page the statement touched.
func (bp *BufferPool) LogPendingImages() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.wal == nil || bp.pending == 0 {
		return nil
	}
	for i := range bp.frames {
		f := &bp.frames[i]
		if !f.valid || !f.imagePending {
			continue
		}
		lsn, err := bp.wal.AppendPageImage(bp.walFile, uint32(f.id), f.data)
		if err != nil {
			return err
		}
		if lsn > f.lsn {
			f.lsn = lsn
		}
		f.imagePending = false
		bp.pending--
	}
	return nil
}

// syncWALLocked enforces WAL-before-data: with a log attached, the log
// must be durable up to lsn before the page it covers may be written in
// place. It also surfaces any sticky log error even when lsn is zero.
func (bp *BufferPool) syncWALLocked(lsn wal.LSN) error {
	if bp.wal == nil {
		return nil
	}
	return bp.wal.Sync(lsn)
}

// FlushAll writes every dirty frame back to disk. Pages stay cached.
// Deferred page images are materialized first, keeping WAL-before-data
// intact for frames whose image was postponed to the commit point.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		f := &bp.frames[i]
		if !f.valid || !f.dirty {
			continue
		}
		if f.imagePending {
			lsn, err := bp.wal.AppendPageImage(bp.walFile, uint32(f.id), f.data)
			if err != nil {
				return err
			}
			if lsn > f.lsn {
				f.lsn = lsn
			}
			f.imagePending = false
			bp.pending--
		}
		if err := bp.syncWALLocked(f.lsn); err != nil {
			return err
		}
		if err := bp.dm.WritePage(f.id, f.data); err != nil {
			return err
		}
		f.dirty = false
	}
	return nil
}

// Close flushes all dirty pages and closes the disk manager.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.dm.Close()
}

// Crash discards every frame — dirty or not, pinned or not — without
// writing anything back, then closes the disk manager. It simulates the
// loss of volatile state in a crash: the data file keeps only what
// earlier evictions and flushes wrote. Test and demo hook.
func (bp *BufferPool) Crash() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		bp.frames[i] = frame{data: bp.frames[i].data}
	}
	bp.table = make(map[PageID]int)
	bp.pending = 0
	return bp.dm.Close()
}
