package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// Page is a pinned buffer-pool frame. The holder may read and mutate Data
// and must Unpin it (marking it dirty if mutated) when done. Mutating
// holders must be externally serialized against every other holder of the
// same page (the executor's exclusive statement lock provides this);
// read-only holders may share a page freely.
type Page struct {
	ID   PageID
	Data []byte

	shard int // owning shard index
	frame int // frame index inside the owning shard
}

// PoolStats counts logical page traffic at the buffer-pool level.
// DirtyWrites counts dirty frames written back to disk, whether by
// eviction, the background writer, or an explicit flush.
//
// Misses include InflightJoins: fetches that found their page's read
// already in flight and waited on it rather than issuing a second disk
// read, so Hits+Misses == Accesses always holds while physical reads can
// be fewer than misses. PrefetchReads counts pages read by the
// prefetcher (not logical accesses); PrefetchHits counts prefetched
// pages a demand fetch then used, PrefetchWasted those evicted untouched.
// BGWrites counts the subset of DirtyWrites issued by the background
// writer.
type PoolStats struct {
	Accesses       int64
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyWrites    int64
	InflightJoins  int64
	PrefetchReads  int64
	PrefetchHits   int64
	PrefetchWasted int64
	BGWrites       int64
}

// add accumulates o into s (Stats sums the per-shard counters).
func (s *PoolStats) add(o PoolStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.DirtyWrites += o.DirtyWrites
	s.InflightJoins += o.InflightJoins
	s.PrefetchReads += o.PrefetchReads
	s.PrefetchHits += o.PrefetchHits
	s.PrefetchWasted += o.PrefetchWasted
	s.BGWrites += o.BGWrites
}

// maxPoolShards caps the page-table sharding; 16 shards keep read-path
// lock contention negligible up to dozens of cores without wasting frames
// on tiny pools.
const maxPoolShards = 16

// minFramesPerShard keeps each shard's clock big enough that one
// statement's pinned and uncommitted (no-steal) frames cannot exhaust
// it. Sharding fragments the pool's victim search — a frame must be
// found in the page's own shard, there is no cross-shard borrowing — so
// small pools shard less rather than risk "shard exhausted" errors on
// statements the unsharded pool handled.
const minFramesPerShard = 16

// BufferPool caches pages of one DiskManager using clock replacement.
// All methods are safe for concurrent use.
//
// The page table is sharded by PageID so concurrent Fetch/Unpin of
// distinct pages contend on (at most) one shard mutex rather than one
// global pool mutex, and releasing a clean pin touches no mutex at all:
// pin counts and reference bits are per-frame atomics. Pins are only ever
// *added* under the owning shard's mutex, which the evictor also holds,
// so a frame observed unpinned by the evictor cannot be concurrently
// re-pinned.
//
// When a write-ahead log is attached (AttachWAL), the pool becomes the
// WAL integration point for every structure built on it: each dirty
// unpin appends a page-image record (unless the caller already covered
// the mutation with a logical record via UnpinLSN), and no dirty frame
// is written back to disk before the log is durable up to that frame's
// latest record — the WAL-before-data rule.
type BufferPool struct {
	dm     DiskManager
	shards []poolShard

	// walRef holds the attached log writer and record file name. An
	// atomic pointer rather than a mutex: AttachWAL is called once,
	// before the pool is shared, and afterwards every dirty unpin and
	// eviction reads it — a lock here would be a pool-global
	// serialization point inside the per-shard critical sections.
	walRef atomic.Pointer[walAttachment]

	// waits joins the pool to the engine's wait-event layer (AttachObs,
	// once, before the pool is shared; nil for standalone pools). Shard
	// mutex acquisitions charge waitShard only after a TryLock failed —
	// the uncontended path pays one predictable branch and reads no
	// clock — while miss disk reads always charge waitIO: next to a real
	// disk read the two clock reads are noise, and the I/O time is the
	// number the wait profile exists to expose.
	waits  *obs.WaitSet
	waitIO obs.WaitEvent // miss-read classification (heap/index/catalog)

	// ops holds the statement's deferred logical records (heap inserts,
	// deletes, batch inserts): instead of appending to the log during
	// execution — where records of concurrent statements on other
	// tables would interleave with them — they are staged here and
	// appended contiguously, together with the statement's commit
	// marker, by StagePending/AppendGroupCommit. The frames they cover
	// carry opPending and are unevictable until ResolvePending assigns
	// their LSNs. Statements on one pool are externally serialized (the
	// executor's per-table writer lock); opsMu only orders the slice
	// against FlushAll and Crash.
	opsMu sync.Mutex
	ops   []deferredOp

	// serialColdReads restores the pre-in-flight-table miss path: the
	// disk read happens under the shard mutex, so same-shard misses
	// serialize. Kept as the A/B baseline for the cold-cache benchmark;
	// set before the pool is shared.
	serialColdReads bool

	// pf/readahead connect the pool to a shared prefetcher (AttachPrefetcher,
	// before the pool is shared; nil disables prefetch). prefetchActive
	// counts this pool's queued-or-running prefetch tasks so Close/Crash
	// can wait them out before tearing frames down; closed stops new
	// prefetch work from being enqueued or started.
	pf             *Prefetcher
	readahead      int
	prefetchActive sync.WaitGroup
	closed         atomic.Bool

	// checksums enables per-page checksum stamping on every disk write
	// and verification on every disk read (page 0 excepted: meta pages
	// own the header bytes the checksum lives in). fileName names this
	// pool's relation file in ErrPageCorrupt reports. Set once via
	// EnableChecksums before the pool is shared.
	checksums bool
	fileName  string
}

// inflightRead is one pending disk read published in a shard's in-flight
// table. The claimer (demand fetch or prefetch worker) owns the frame at
// fi — pinned and invalid, so the evictor skips it — reads with the
// shard mutex released, then publishes the frame and closes done.
// Fetches of the same page meanwhile register as waiters (under the
// shard mutex) and park on done; the publisher grants their pins in one
// store before the entry leaves the table, so a published frame cannot
// be evicted before its waiters wake. err and the frame contents become
// visible to waiters through the channel close.
type inflightRead struct {
	done    chan struct{}
	fi      int
	waiters int32 // registered before publish, under the shard mutex
	err     error
}

// deferredOp is one staged logical record. rec/slots/recs are retained
// until the statement commits; callers pass freshly allocated slices.
type deferredOp struct {
	typ   wal.RecordType
	page  PageID
	slot  uint16
	rec   []byte   // RecHeapInsert
	slots []uint16 // RecHeapBatchInsert
	recs  [][]byte // RecHeapBatchInsert
	xid   uint64   // RecHeapSetXmax
}

// walAttachment pairs the log writer with the file name used in WAL
// records for this pool's pages.
type walAttachment struct {
	w    *wal.Writer
	file string
}

// poolShard owns a disjoint subset of the pool's frames and the pages
// that hash to it. Its mutex guards the page table, the clock hand, and
// every non-atomic frame field.
type poolShard struct {
	mu      sync.Mutex
	frames  []frame
	table   map[PageID]int
	hand    int
	pending int // frames with imagePending set

	// inflight holds the shard's pending disk reads, keyed by the page
	// being read. An entry's frame is pinned and invalid, reachable only
	// through the entry until the read publishes it into table.
	inflight map[PageID]*inflightRead

	// Traffic counters live per shard, as plain fields under the shard
	// mutex the hot paths already hold — zero extra atomics per fetch.
	// Readouts (SHOW STATS) take the same mutex, contending only with
	// this shard's traffic.
	accesses       int64
	hits           int64
	misses         int64
	evictions      int64
	dirtyWrites    int64
	inflightJoins  int64
	prefetchReads  int64
	prefetchHits   int64
	prefetchWasted int64
	bgWrites       int64
}

// snapshot reads the shard's counters.
func (sh *poolShard) snapshot() PoolStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return PoolStats{
		Accesses:       sh.accesses,
		Hits:           sh.hits,
		Misses:         sh.misses,
		Evictions:      sh.evictions,
		DirtyWrites:    sh.dirtyWrites,
		InflightJoins:  sh.inflightJoins,
		PrefetchReads:  sh.prefetchReads,
		PrefetchHits:   sh.prefetchHits,
		PrefetchWasted: sh.prefetchWasted,
		BGWrites:       sh.bgWrites,
	}
}

// anyInflightDone returns the done channel of an arbitrary in-flight
// read, or nil when none is pending. Callers hold sh.mu; the channel
// stays valid after unlock (it is closed exactly once by the publisher).
func (sh *poolShard) anyInflightDone() chan struct{} {
	for _, e := range sh.inflight {
		return e.done
	}
	return nil
}

type frame struct {
	id   PageID
	data []byte
	// pin and ref are atomics so a clean unpin (the hot read path) needs
	// no shard lock: it decrements pin and sets ref without synchronizing
	// with anything else. New pins are only taken under the shard mutex.
	pin   atomic.Int32
	ref   atomic.Bool // clock reference bit
	dirty bool
	valid bool
	lsn   wal.LSN // latest WAL record covering this page (0 = none)
	// imagePending marks a frame dirtied since the last commit marker
	// whose page-image record is deferred to the commit point, so a
	// page touched N times within one statement is imaged once, not N
	// times. Such frames are unevictable (no-steal) until logged.
	imagePending bool
	// opPending marks a frame covered by deferred logical records
	// (bp.ops) whose LSNs are not yet assigned. Unevictable, like
	// imagePending, until ResolvePending runs at the commit point.
	opPending bool
	// imagedLSN is the LSN of the last full page image logged for this
	// frame's page while it has been resident (0 after a load from
	// disk). Together with the on-page LSN it decides whether a
	// checksummed page's next commit needs a full-page write: recovery
	// can only rebuild a torn page when an image of it survives in the
	// post-checkpoint log.
	imagedLSN wal.LSN
	// prefetched marks a frame read by the prefetcher and not yet used
	// by a demand fetch: cleared (counting a prefetch hit) on first use,
	// or counted as wasted if the frame is evicted still carrying it.
	prefetched bool
}

// NewBufferPool creates a pool with capacity frames over dm.
func NewBufferPool(dm DiskManager, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	nShards := capacity / minFramesPerShard
	if nShards > maxPoolShards {
		nShards = maxPoolShards
	}
	if nShards < 1 {
		nShards = 1
	}
	bp := &BufferPool{
		dm:     dm,
		shards: make([]poolShard, nShards),
	}
	for si := range bp.shards {
		// Distribute the capacity remainder over the first shards so the
		// total frame count is exactly capacity.
		n := capacity / nShards
		if si < capacity%nShards {
			n++
		}
		sh := &bp.shards[si]
		sh.frames = make([]frame, n)
		sh.table = make(map[PageID]int, n)
		sh.inflight = make(map[PageID]*inflightRead)
		for i := range sh.frames {
			sh.frames[i].data = make([]byte, dm.PageSize())
		}
	}
	return bp
}

// shardOf maps a page to its owning shard index. Sequential page IDs
// spread round-robin, so a scan's working set lands evenly across shards.
func (bp *BufferPool) shardOf(id PageID) int {
	return int(uint32(id)) % len(bp.shards)
}

// DM exposes the underlying disk manager.
func (bp *BufferPool) DM() DiskManager { return bp.dm }

// NumShards reports the page-table shard count (introspection, tests).
func (bp *BufferPool) NumShards() int { return len(bp.shards) }

// AttachWAL enables write-ahead logging for this pool. fileName is the
// name under which this pool's pages appear in log records (the data
// file's base name). Must be called before the pool is used.
func (bp *BufferPool) AttachWAL(w *wal.Writer, fileName string) {
	bp.walRef.Store(&walAttachment{w: w, file: fileName})
}

// AttachObs joins the pool to a wait-event set: shard-mutex contention
// is charged to buf_shard and miss disk reads to ioEvent (heap, index,
// or catalog reads, per the file this pool caches). Like AttachWAL, it
// must be called before the pool is shared.
func (bp *BufferPool) AttachObs(ws *obs.WaitSet, ioEvent obs.WaitEvent) {
	bp.waits = ws
	bp.waitIO = ioEvent
}

// AttachPrefetcher joins the pool to a (possibly shared) prefetcher and
// sets how many pages ahead sequential scans request. readahead <= 0
// disables prefetch. Like AttachWAL, call before the pool is shared.
func (bp *BufferPool) AttachPrefetcher(pf *Prefetcher, readahead int) {
	if pf == nil || readahead <= 0 {
		bp.pf = nil
		bp.readahead = 0
		return
	}
	bp.pf = pf
	bp.readahead = readahead
}

// ReadaheadPages reports the configured readahead window (0 = prefetch
// disabled). Scan layers use it to size their prefetch distance.
func (bp *BufferPool) ReadaheadPages() int { return bp.readahead }

// EnableChecksums turns on per-page checksum stamping and verification
// for this pool. fileName is the relation file's base name, used in
// ErrPageCorrupt reports. Only callable for files whose non-meta pages
// are slotted areas (heap files and the catalog — index node layouts
// own the bytes the checksum field occupies). Like AttachWAL, call
// before the pool is shared.
func (bp *BufferPool) EnableChecksums(fileName string) {
	bp.checksums = true
	bp.fileName = fileName
}

// ChecksumsEnabled reports whether this pool verifies page checksums.
func (bp *BufferPool) ChecksumsEnabled() bool { return bp.checksums }

// FileName returns the relation file name set by EnableChecksums ("" otherwise).
func (bp *BufferPool) FileName() string { return bp.fileName }

// I/O retry policy: a transient read/write error is retried up to
// ioRetryAttempts total tries with capped exponential backoff, the
// sleeps charged to the io_retry wait event. Corruption, ENOSPC, and
// permanent faults are never retried (IsTransient).
const (
	ioRetryAttempts  = 3
	ioRetryBaseDelay = time.Millisecond
	ioRetryMaxDelay  = 8 * time.Millisecond
)

// backoff sleeps for the attempt's delay, charging io_retry.
func (bp *BufferPool) backoff(attempt int) {
	d := ioRetryBaseDelay << attempt
	if d > ioRetryMaxDelay {
		d = ioRetryMaxDelay
	}
	rw := bp.waits.Begin(obs.WaitIORetry)
	time.Sleep(d)
	bp.waits.End(rw)
}

// verifyOnRead checks a page just read from disk against its stored
// checksum, returning a typed ErrPageCorrupt on mismatch. Meta pages
// (page 0) and pools without checksums pass through.
func (bp *BufferPool) verifyOnRead(id PageID, data []byte) error {
	if !bp.checksums || id == 0 {
		return nil
	}
	if stored, computed, ok := VerifyPageChecksum(data); !ok {
		return &ErrPageCorrupt{File: bp.fileName, PageID: id, Expected: stored, Got: computed}
	}
	return nil
}

// readPageRetry reads page id into buf, charging the read to ev,
// retrying transient errors per the retry policy, and verifying the
// checksum of whatever finally arrives. A corrupt page is a property of
// the bytes, not the device, so it is returned immediately — but a read
// that *errored* transiently retries even if an earlier attempt left
// garbage in buf.
func (bp *BufferPool) readPageRetry(id PageID, buf []byte, ev obs.WaitEvent) error {
	for attempt := 0; ; attempt++ {
		iw := bp.waits.Begin(ev)
		err := bp.dm.ReadPage(id, buf)
		bp.waits.End(iw)
		if err == nil {
			return bp.verifyOnRead(id, buf)
		}
		if attempt+1 >= ioRetryAttempts || !IsTransient(err) {
			return err
		}
		bp.backoff(attempt)
	}
}

// writePageRetry stamps the page checksum (checksummed pools, non-meta
// pages) and writes the page, retrying transient errors per the retry
// policy. Callers hold the owning shard's mutex with the frame
// unpinned, so mutating the checksum bytes in place cannot race a
// reader.
func (bp *BufferPool) writePageRetry(id PageID, data []byte) error {
	if bp.checksums && id != 0 {
		StampPageChecksum(data)
	}
	for attempt := 0; ; attempt++ {
		err := bp.dm.WritePage(id, data)
		if err == nil || attempt+1 >= ioRetryAttempts || !IsTransient(err) {
			return err
		}
		bp.backoff(attempt)
	}
}

// VerifyPage checksum-verifies the on-disk copy of page id using
// scratch (a page-size buffer), for SCRUB. A cached dirty frame means
// the disk copy is legitimately stale — the authoritative bytes are in
// memory, already verified on their way in — so such pages pass. The
// read itself runs outside the shard mutex so an online scrub over a
// slow or flaky device never stalls the shard's fetches and evictions
// behind retry backoff. A failure is then re-checked under the mutex,
// which every pool disk write also holds: an in-progress write the
// unlocked read observed torn cannot still look torn on the locked
// re-read. Returns nil for meta pages and non-checksummed pools.
func (bp *BufferPool) VerifyPage(id PageID, scratch []byte) error {
	if !bp.checksums || id == 0 {
		return nil
	}
	sh := &bp.shards[bp.shardOf(id)]
	bp.lockShard(sh)
	if fi, ok := sh.table[id]; ok && sh.frames[fi].dirty {
		sh.mu.Unlock()
		return nil
	}
	sh.mu.Unlock()
	if err := bp.readPageRetry(id, scratch, bp.waitIO); err == nil {
		return nil
	}
	// Confirm the failure with the shard quiesced. The frame may have
	// been dirtied (or written back) since the unlocked snapshot.
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	if fi, ok := sh.table[id]; ok && sh.frames[fi].dirty {
		return nil
	}
	return bp.readPageRetry(id, scratch, bp.waitIO)
}

// SetSerialColdReads toggles the legacy miss path that performs the disk
// read while holding the shard mutex (serializing same-shard misses).
// Benchmark baseline only; call before the pool is shared.
func (bp *BufferPool) SetSerialColdReads(on bool) { bp.serialColdReads = on }

// Prefetch asks the attached prefetcher to pull a page into the pool in
// the background. It never blocks: with no prefetcher attached, the pool
// closing, the page unallocated, or the prefetch queue full, it simply
// drops the request — prefetch is an optimization, never a correctness
// dependency.
func (bp *BufferPool) Prefetch(id PageID) {
	pf := bp.pf
	if pf == nil || bp.closed.Load() || uint32(id) >= bp.dm.NumPages() {
		return
	}
	bp.prefetchActive.Add(1)
	if !pf.enqueue(prefetchTask{bp: bp, id: id}) {
		bp.prefetchActive.Done()
	}
}

// lockShard acquires sh.mu, charging a blocked acquisition to the
// buf_shard wait event. The uncontended fast path is one TryLock.
func (bp *BufferPool) lockShard(sh *poolShard) {
	if sh.mu.TryLock() {
		return
	}
	m := bp.waits.Begin(obs.WaitBufShard)
	sh.mu.Lock()
	bp.waits.End(m)
}

// WAL returns the attached log writer and record file name (nil, "" when
// logging is disabled). Structures that log logical records instead of
// page images (the heap) reach the writer through this.
func (bp *BufferPool) WAL() (*wal.Writer, string) {
	if a := bp.walRef.Load(); a != nil {
		return a.w, a.file
	}
	return nil, ""
}

// Stats returns a snapshot of the pool counters, summed over shards.
// Under concurrent traffic the counters are read at slightly different
// instants; each is individually exact.
func (bp *BufferPool) Stats() PoolStats {
	var s PoolStats
	for si := range bp.shards {
		s.add(bp.shards[si].snapshot())
	}
	return s
}

// ShardStats returns the counters of one page-table shard (SHOW STATS,
// tests). Panics if si is out of range.
func (bp *BufferPool) ShardStats(si int) PoolStats {
	return bp.shards[si].snapshot()
}

// ResetStats zeroes the pool counters (the disk counters are separate).
func (bp *BufferPool) ResetStats() {
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		sh.accesses = 0
		sh.hits = 0
		sh.misses = 0
		sh.evictions = 0
		sh.dirtyWrites = 0
		sh.inflightJoins = 0
		sh.prefetchReads = 0
		sh.prefetchHits = 0
		sh.prefetchWasted = 0
		sh.bgWrites = 0
		sh.mu.Unlock()
	}
}

// Fetch pins the page with the given id, reading it from disk on a miss.
//
// The miss path is a singleflight per PageID over the shard's in-flight
// table: the first fetch claims a victim frame (pinned, invalid — the
// evictor skips it), publishes an "I/O pending" entry, and reads the
// page with the shard mutex released, so misses on different pages of
// the same shard overlap their disk reads. Concurrent fetches of the
// same page register as waiters on the entry and park on its channel —
// exactly one disk read happens however many sessions miss together —
// counting as misses (Hits+Misses == Accesses) and as InflightJoins.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	si := bp.shardOf(id)
	sh := &bp.shards[si]
	bp.lockShard(sh)
	sh.accesses++
	if fi, ok := sh.table[id]; ok {
		sh.hits++
		f := &sh.frames[fi]
		if f.prefetched {
			f.prefetched = false
			sh.prefetchHits++
		}
		f.pin.Add(1)
		f.ref.Store(true)
		sh.mu.Unlock()
		return &Page{ID: id, Data: f.data, shard: si, frame: fi}, nil
	}
	if bp.serialColdReads {
		sh.misses++
		return bp.fetchSerialLocked(sh, si, id)
	}
	var fi int
	for {
		if e, ok := sh.inflight[id]; ok {
			sh.misses++
			sh.inflightJoins++
			e.waiters++
			sh.mu.Unlock()
			// Park on the in-flight read; the publisher granted this pin
			// before closing done. Waiting on someone else's read is
			// still I/O wait from this session's point of view.
			iw := bp.waits.Begin(bp.waitIO)
			<-e.done
			bp.waits.End(iw)
			if e.err != nil {
				return nil, e.err
			}
			f := &sh.frames[e.fi]
			return &Page{ID: id, Data: f.data, shard: si, frame: e.fi}, nil
		}
		var err error
		if fi, err = bp.victimLocked(sh); err == nil {
			sh.misses++
			break
		}
		// "Shard exhausted" can be transient now: concurrent misses each
		// claim a frame for the duration of their read, so a small shard
		// under a miss burst may have every frame pinned by reads about
		// to complete. Wait for any in-flight read to publish, then
		// retry from the top (our page may even have arrived meanwhile —
		// the hit check below reruns first). With no reads in flight the
		// exhaustion is real (all frames pinned or uncommitted).
		if done := sh.anyInflightDone(); done != nil {
			sh.mu.Unlock()
			iw := bp.waits.Begin(bp.waitIO)
			<-done
			bp.waits.End(iw)
			bp.lockShard(sh)
			if pfi, ok := sh.table[id]; ok {
				sh.hits++
				f := &sh.frames[pfi]
				if f.prefetched {
					f.prefetched = false
					sh.prefetchHits++
				}
				f.pin.Add(1)
				f.ref.Store(true)
				sh.mu.Unlock()
				return &Page{ID: id, Data: f.data, shard: si, frame: pfi}, nil
			}
			continue
		}
		sh.mu.Unlock()
		return nil, err
	}
	f := &sh.frames[fi]
	f.id = id
	f.valid = false // reachable only through the in-flight entry
	f.pin.Store(1)
	e := &inflightRead{done: make(chan struct{}), fi: fi}
	sh.inflight[id] = e
	sh.mu.Unlock()
	// The disk read proceeds without the shard mutex. It is charged to
	// the pool's I/O wait event, and — when the statement above armed a
	// tracer — recorded as a page_read span on its timeline. Transient
	// errors retry with backoff; the bytes are checksum-verified.
	sp := obs.Current().StartSpan("page_read", "io")
	rerr := bp.readPageRetry(id, f.data, bp.waitIO)
	sp.End()
	bp.lockShard(sh)
	delete(sh.inflight, id)
	if rerr != nil {
		e.err = rerr
		f.pin.Store(0)
		f.valid = false
		close(e.done)
		sh.mu.Unlock()
		return nil, rerr
	}
	f.dirty = false
	f.ref.Store(true)
	f.lsn = 0
	f.imagedLSN = 0
	f.imagePending = false
	f.opPending = false
	f.prefetched = false
	// One store grants the claimer's pin plus every waiter's before the
	// frame becomes reachable through the table, so no waiter can find
	// its page evicted underneath it.
	f.pin.Store(1 + e.waiters)
	f.valid = true
	sh.table[id] = fi
	close(e.done)
	sh.mu.Unlock()
	return &Page{ID: id, Data: f.data, shard: si, frame: fi}, nil
}

// fetchSerialLocked is the legacy miss path: the disk read happens under
// the shard mutex, so misses on pages of the same shard serialize.
// Reached only with SetSerialColdReads(true); kept as the measured
// baseline the in-flight table is compared against. Caller holds sh.mu
// and has already counted the miss; always unlocks before returning.
func (bp *BufferPool) fetchSerialLocked(sh *poolShard, si int, id PageID) (*Page, error) {
	defer sh.mu.Unlock()
	fi, err := bp.victimLocked(sh)
	if err != nil {
		return nil, err
	}
	f := &sh.frames[fi]
	sp := obs.Current().StartSpan("page_read", "io")
	rerr := bp.readPageRetry(id, f.data, bp.waitIO)
	sp.End()
	if rerr != nil {
		f.valid = false
		return nil, rerr
	}
	f.id = id
	f.pin.Store(1)
	f.dirty = false
	f.ref.Store(true)
	f.valid = true
	f.lsn = 0
	f.imagedLSN = 0
	f.imagePending = false
	f.opPending = false
	f.prefetched = false
	sh.table[id] = fi
	return &Page{ID: id, Data: f.data, shard: si, frame: fi}, nil
}

// prefetchOne is the prefetch worker's entry point: pull id into the
// pool if it is not already present or in flight. It follows the same
// claim/read/publish protocol as Fetch but takes no pin for itself —
// the published frame is immediately evictable (marked prefetched, with
// its clock reference bit set so it survives roughly one sweep). Demand
// fetches that arrive mid-read join as waiters and get their pins from
// the publish; errors are swallowed (beyond waiter delivery) because a
// failed prefetch just means the later demand fetch reads for itself.
func (bp *BufferPool) prefetchOne(id PageID) {
	if bp.closed.Load() {
		return
	}
	si := bp.shardOf(id)
	sh := &bp.shards[si]
	bp.lockShard(sh)
	if _, ok := sh.table[id]; ok {
		sh.mu.Unlock()
		return
	}
	if _, ok := sh.inflight[id]; ok {
		sh.mu.Unlock()
		return
	}
	fi, err := bp.victimLocked(sh)
	if err != nil {
		// Every frame pinned or uncommitted: skip, demand will retry.
		sh.mu.Unlock()
		return
	}
	f := &sh.frames[fi]
	f.id = id
	f.valid = false
	f.pin.Store(1) // claim: unevictable while the read is in flight
	e := &inflightRead{done: make(chan struct{}), fi: fi}
	sh.inflight[id] = e
	sh.prefetchReads++
	sh.mu.Unlock()
	rerr := bp.readPageRetry(id, f.data, obs.WaitIOPrefetch)
	bp.lockShard(sh)
	delete(sh.inflight, id)
	if rerr != nil {
		e.err = rerr
		f.pin.Store(0)
		f.valid = false
		close(e.done)
		sh.mu.Unlock()
		return
	}
	f.dirty = false
	f.ref.Store(true)
	f.lsn = 0
	f.imagedLSN = 0
	f.imagePending = false
	f.opPending = false
	// A demand fetch that joined mid-read is a prefetch hit: the read
	// overlapped useful work. Otherwise the frame waits, flagged, for
	// the scan to reach it (hit) or the clock to reclaim it (wasted).
	f.prefetched = e.waiters == 0
	if e.waiters > 0 {
		sh.prefetchHits++
	}
	f.pin.Store(e.waiters)
	f.valid = true
	sh.table[id] = fi
	close(e.done)
	sh.mu.Unlock()
}

// NewPage allocates a fresh zeroed page on disk and returns it pinned.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.dm.AllocatePage()
	if err != nil {
		return nil, err
	}
	si := bp.shardOf(id)
	sh := &bp.shards[si]
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	sh.accesses++
	sh.misses++
	var fi int
	for {
		// A concurrent scan's readahead can prefetch the just-allocated
		// page (AllocatePage zero-fills it on disk before returning, so
		// the race is visible through NumPages). Defuse rather than
		// double-buffer: wait out an in-flight read of our id, then take
		// over the published frame.
		if pfi, ok := sh.table[id]; ok {
			fi = pfi
			f := &sh.frames[fi]
			f.prefetched = false
			f.pin.Add(1)
			break
		}
		if e, ok := sh.inflight[id]; ok {
			sh.mu.Unlock()
			<-e.done
			bp.lockShard(sh)
			continue
		}
		var err error
		if fi, err = bp.victimLocked(sh); err == nil {
			sh.frames[fi].pin.Store(1)
			break
		}
		// Transient exhaustion: every frame claimed by in-flight reads.
		// Wait for one to publish and retry (see Fetch).
		if done := sh.anyInflightDone(); done != nil {
			sh.mu.Unlock()
			iw := bp.waits.Begin(bp.waitIO)
			<-done
			bp.waits.End(iw)
			bp.lockShard(sh)
			continue
		}
		return nil, err
	}
	f := &sh.frames[fi]
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.dirty = true // must reach disk even if never modified again
	f.ref.Store(true)
	f.valid = true
	f.lsn = 0
	f.imagedLSN = 0
	f.imagePending = false
	f.opPending = false
	f.prefetched = false
	sh.table[id] = fi
	return &Page{ID: id, Data: f.data, shard: si, frame: fi}, nil
}

// Unpin releases one pin on p. dirty marks the frame as modified; with a
// WAL attached, a dirty unpin also logs a page-image record so the
// mutation can be redone after a crash.
//
// A clean unpin is lock-free: it validates, sets the reference bit, and
// decrements the atomic pin count. The frame cannot be evicted (its id,
// valid bit, and data reassigned) while the pin is held, and the evictor
// observes the decrement through the same atomic.
func (bp *BufferPool) Unpin(p *Page, dirty bool) {
	sh := &bp.shards[p.shard]
	if !dirty {
		f := &sh.frames[p.frame]
		bp.validatePinned(f, p)
		f.ref.Store(true)
		f.pin.Add(-1)
		return
	}
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	f := bp.unpinLocked(sh, p)
	f.dirty = true
	w, walFile := bp.WAL()
	switch {
	case w == nil:
	case w.CommittedLSN() > 0:
		// Statement boundaries exist: defer the image to the commit
		// point (LogPendingImages), so repeated dirtying of one
		// page within a statement logs a single image. The no-steal
		// rule keeps the frame in memory meanwhile.
		if !f.imagePending {
			f.imagePending = true
			sh.pending++
		}
	default:
		// Raw log without statement boundaries: log eagerly.
		// Append errors are sticky in the writer; the next
		// WAL-before-data sync surfaces them, so the failed LSN
		// does not need to be tracked here.
		if lsn, err := w.AppendPageImage(walFile, uint32(p.ID), f.data); err == nil {
			f.lsn = lsn
		}
	}
}

// UnpinLSN releases one pin on p, marking it dirty, for a mutation that
// the caller already covered with a logical WAL record at lsn. No page
// image is logged; the frame's WAL-before-data horizon advances to lsn.
func (bp *BufferPool) UnpinLSN(p *Page, lsn wal.LSN) {
	sh := &bp.shards[p.shard]
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	f := bp.unpinLocked(sh, p)
	f.dirty = true
	if lsn > f.lsn {
		f.lsn = lsn
	}
}

// UnpinDeferredOp releases one pin on p, marking it dirty and covered by
// a deferred logical record the caller just staged with DeferHeapInsert/
// DeferHeapDelete/DeferHeapBatchInsert. The frame stays unevictable
// until ResolvePending assigns the record's LSN at the commit point.
func (bp *BufferPool) UnpinDeferredOp(p *Page) {
	sh := &bp.shards[p.shard]
	bp.lockShard(sh)
	defer sh.mu.Unlock()
	f := bp.unpinLocked(sh, p)
	f.dirty = true
	f.opPending = true
}

// DeferHeapInsert stages a logical heap-insert record for the commit
// point. rec is retained until then; pass a freshly allocated slice.
// Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapInsert(page PageID, slot uint16, rec []byte) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapInsert, page: page, slot: slot, rec: rec})
	bp.opsMu.Unlock()
}

// DeferHeapDelete stages a logical heap-delete record for the commit
// point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapDelete(page PageID, slot uint16) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapDelete, page: page, slot: slot})
	bp.opsMu.Unlock()
}

// DeferHeapBatchInsert stages one page-worth of heap inserts as a single
// batch record for the commit point. slots/recs are retained until then.
// Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapBatchInsert(page PageID, slots []uint16, recs [][]byte) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapBatchInsert, page: page, slots: slots, recs: recs})
	bp.opsMu.Unlock()
}

// DeferHeapSetXmax stages a set-xmax record (MVCC delete) for the commit
// point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapSetXmax(page PageID, slot uint16, xid uint64) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapSetXmax, page: page, slot: slot, xid: xid})
	bp.opsMu.Unlock()
}

// DeferHeapClearXmax stages a clear-xmax record (SetXmax undo) for the
// commit point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapClearXmax(page PageID, slot uint16) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapClearXmax, page: page, slot: slot})
	bp.opsMu.Unlock()
}

// DeferHeapMarkAborted stages a mark-aborted record (insert undo) for the
// commit point. Pair with UnpinDeferredOp on the mutated page.
func (bp *BufferPool) DeferHeapMarkAborted(page PageID, slot uint16) {
	bp.opsMu.Lock()
	bp.ops = append(bp.ops, deferredOp{typ: wal.RecHeapMarkAborted, page: page, slot: slot})
	bp.opsMu.Unlock()
}

// Staged names one record a StagePending call added to a wal.Group: the
// page it covers and its index into the LSNs AppendGroup(Commit)
// returns. ResolvePending consumes it.
type Staged struct {
	Page  PageID
	Index int
	Image bool
}

// StagePending moves the pool's deferred work — logical records staged
// by the Defer* calls and the page images of imagePending frames — into
// g for one atomic group append. The covered frames keep their pending
// flags (and stay unevictable) until ResolvePending stamps the assigned
// LSNs. The caller must serialize StagePending/ResolvePending pairs per
// pool (the executor's per-table writer lock and exclusive DDL lock do).
func (bp *BufferPool) StagePending(g *wal.Group) []Staged {
	w, file := bp.WAL()
	if w == nil {
		return nil
	}
	bp.opsMu.Lock()
	ops := bp.ops
	bp.ops = nil
	bp.opsMu.Unlock()
	staged := stageOps(g, file, ops)
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		if sh.pending == 0 {
			sh.mu.Unlock()
			continue
		}
		for i := range sh.frames {
			f := &sh.frames[i]
			if !f.valid || !f.imagePending {
				continue
			}
			idx := g.AddPageImage(file, uint32(f.id), f.data)
			staged = append(staged, Staged{Page: f.id, Index: idx, Image: true})
		}
		sh.mu.Unlock()
	}
	return bp.stageFullPageImages(g, w, file, ops, staged)
}

// stageFullPageImages appends a full image of each distinct page named
// by ops whose content is not reconstructible from the surviving log
// alone. Torn-page repair reinitializes the page and replays the
// records that cover it, which only restores everything when the log
// still reaches back to the page's creation or holds a full image of
// it — and a checkpoint recycles the older segments. So the first time
// a page is touched after a checkpoint, its statement ships a full-page
// write (Postgres-style FPW) alongside the logical records. The image
// is appended after the page's records so replay's last-writer-wins
// order leaves the image's complete content in place.
func (bp *BufferPool) stageFullPageImages(g *wal.Group, w *wal.Writer, file string, ops []deferredOp, staged []Staged) []Staged {
	if !bp.checksums || len(ops) == 0 {
		return staged
	}
	ckpt := w.CheckpointLSN()
	if ckpt == 0 {
		// No checkpoint has ever recycled segments: the log is
		// complete since creation, and replay rebuilds any torn page
		// from its RecFileCreate onward.
		return staged
	}
	done := make(map[PageID]bool, len(ops))
	for _, op := range ops {
		id := op.page
		if id == 0 || done[id] {
			continue
		}
		done[id] = true
		sh := &bp.shards[bp.shardOf(id)]
		bp.lockShard(sh)
		fi, ok := sh.table[id]
		if !ok {
			// Unreachable: frames with deferred ops are opPending and
			// therefore unevictable until resolved.
			sh.mu.Unlock()
			continue
		}
		f := &sh.frames[fi]
		if f.imagedLSN > ckpt || PageLSN(f.data) > uint64(ckpt) {
			// A post-checkpoint image of this page already survives in
			// the log — logged directly, or implied by a record whose
			// own statement forced one before stamping the pageLSN.
			sh.mu.Unlock()
			continue
		}
		idx := g.AddPageImage(file, uint32(id), f.data)
		staged = append(staged, Staged{Page: id, Index: idx, Image: true})
		sh.mu.Unlock()
	}
	return staged
}

// stageOps encodes deferred logical records into g.
func stageOps(g *wal.Group, file string, ops []deferredOp) []Staged {
	var staged []Staged
	for _, op := range ops {
		var idx int
		switch op.typ {
		case wal.RecHeapInsert:
			idx = g.AddHeapInsert(file, uint32(op.page), op.slot, op.rec)
		case wal.RecHeapDelete:
			idx = g.AddHeapDelete(file, uint32(op.page), op.slot)
		case wal.RecHeapBatchInsert:
			idx = g.AddHeapBatchInsert(file, uint32(op.page), op.slots, op.recs)
		case wal.RecHeapSetXmax:
			idx = g.AddHeapSetXmax(file, uint32(op.page), op.slot, op.xid)
		case wal.RecHeapClearXmax:
			idx = g.AddHeapClearXmax(file, uint32(op.page), op.slot)
		case wal.RecHeapMarkAborted:
			idx = g.AddHeapMarkAborted(file, uint32(op.page), op.slot)
		}
		staged = append(staged, Staged{Page: op.page, Index: idx})
	}
	return staged
}

// ResolvePending stamps the LSNs assigned by the group append onto the
// staged frames: the WAL-before-data horizon advances, logical records
// stamp the slotted pageLSN (for redo idempotence), and the pending
// flags clear, making the frames evictable again. lsns is the slice
// AppendGroup(Commit) returned for the group the Staged indices point
// into.
func (bp *BufferPool) ResolvePending(staged []Staged, lsns []wal.LSN) {
	for _, s := range staged {
		lsn := lsns[s.Index]
		sh := &bp.shards[bp.shardOf(s.Page)]
		sh.mu.Lock()
		fi, ok := sh.table[s.Page]
		if !ok {
			// Unreachable: pending frames are unevictable until resolved.
			sh.mu.Unlock()
			continue
		}
		f := &sh.frames[fi]
		if lsn > f.lsn {
			f.lsn = lsn
		}
		if s.Image {
			if lsn > f.imagedLSN {
				f.imagedLSN = lsn
			}
			if f.imagePending {
				f.imagePending = false
				sh.pending--
			}
		} else {
			f.opPending = false
			if PageLSN(f.data) < uint64(lsn) {
				SetPageLSN(f.data, uint64(lsn))
			}
		}
		sh.mu.Unlock()
	}
}

// flushDeferredOps appends any still-deferred logical records directly
// (no commit marker). Only flush paths call it — Close and CHECKPOINT
// run under the exclusive statement lock, where a deferred record can
// only belong to an aborted statement whose pages are about to be made
// durable anyway; the checkpoint or close marker that follows commits
// them.
func (bp *BufferPool) flushDeferredOps() error {
	w, file := bp.WAL()
	if w == nil {
		return nil
	}
	bp.opsMu.Lock()
	ops := bp.ops
	bp.ops = nil
	bp.opsMu.Unlock()
	if len(ops) == 0 {
		return nil
	}
	g := wal.NewGroup()
	staged := stageOps(g, file, ops)
	staged = bp.stageFullPageImages(g, w, file, ops, staged)
	lsns, err := w.AppendGroup(g)
	if err != nil {
		return err
	}
	bp.ResolvePending(staged, lsns)
	return nil
}

// validatePinned panics on unpin misuse (stale page, double unpin).
func (bp *BufferPool) validatePinned(f *frame, p *Page) {
	if !f.valid || f.id != p.ID {
		panic(fmt.Sprintf("storage: unpin of stale page %d", p.ID))
	}
	if f.pin.Load() <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", p.ID))
	}
}

// unpinLocked validates and drops one pin, returning the frame. Caller
// holds the shard mutex.
func (bp *BufferPool) unpinLocked(sh *poolShard, p *Page) *frame {
	f := &sh.frames[p.frame]
	bp.validatePinned(f, p)
	f.ref.Store(true)
	f.pin.Add(-1)
	return f
}

// victimLocked finds a free or evictable frame in sh, writing back a
// dirty victim. Caller holds sh.mu.
func (bp *BufferPool) victimLocked(sh *poolShard) (int, error) {
	n := len(sh.frames)
	// No-steal rule: with a WAL attached, a dirty frame whose latest
	// record is past the last commit marker holds uncommitted state.
	// Writing it in place would require an undo pass at recovery (the
	// redo log cannot take the row back out of the data file), so such
	// frames are as unevictable as pinned ones until their statement
	// commits. committed == 0 means no marker was ever appended — a
	// raw storage-level log without statement boundaries — and the
	// rule is off.
	w, _ := bp.WAL()
	committed := wal.LSN(0)
	if w != nil {
		committed = w.CommittedLSN()
	}
	// Two full sweeps: the first clears reference bits, the second takes
	// the first unpinned frame. The pin check comes before the validity
	// check: an in-flight read's claimed frame is pinned but not yet
	// valid, and must never be handed out as "free".
	for sweep := 0; sweep < 2*n+1; sweep++ {
		f := &sh.frames[sh.hand]
		i := sh.hand
		sh.hand = (sh.hand + 1) % n
		if f.pin.Load() > 0 {
			continue
		}
		if !f.valid {
			return i, nil
		}
		if f.dirty && (f.imagePending || f.opPending || (committed > 0 && f.lsn > committed)) {
			continue
		}
		if f.ref.Load() {
			f.ref.Store(false)
			continue
		}
		if f.dirty {
			// WAL-before-data, including the commit marker covering
			// this frame's statement: if only the records (not the
			// marker) were durable at a crash, recovery would discard
			// them as an uncommitted tail while the page survived.
			target := f.lsn
			if committed > target {
				target = committed
			}
			if err := bp.syncWAL(w, target); err != nil {
				return 0, err
			}
			if err := bp.writePageRetry(f.id, f.data); err != nil {
				return 0, err
			}
			sh.dirtyWrites++
		}
		if f.prefetched {
			f.prefetched = false
			sh.prefetchWasted++
		}
		delete(sh.table, f.id)
		f.valid = false
		sh.evictions++
		return i, nil
	}
	return 0, fmt.Errorf("storage: buffer pool shard exhausted (%d frames, all pinned or uncommitted)", n)
}

// LogPendingImages appends the deferred page-image record of every
// frame dirtied since the last commit marker. The commit path calls it
// immediately before appending the marker, so the marker covers the
// final image of each page the statement touched.
func (bp *BufferPool) LogPendingImages() error {
	w, walFile := bp.WAL()
	if w == nil {
		return nil
	}
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		if sh.pending == 0 {
			sh.mu.Unlock()
			continue
		}
		for i := range sh.frames {
			f := &sh.frames[i]
			if !f.valid || !f.imagePending {
				continue
			}
			lsn, err := w.AppendPageImage(walFile, uint32(f.id), f.data)
			if err != nil {
				sh.mu.Unlock()
				return err
			}
			if lsn > f.lsn {
				f.lsn = lsn
			}
			f.imagePending = false
			sh.pending--
		}
		sh.mu.Unlock()
	}
	return nil
}

// syncWAL enforces WAL-before-data: with a log attached, the log must be
// durable up to lsn before the page it covers may be written in place.
// It also surfaces any sticky log error even when lsn is zero.
func (bp *BufferPool) syncWAL(w *wal.Writer, lsn wal.LSN) error {
	if w == nil {
		return nil
	}
	return w.Sync(lsn)
}

// FlushAll writes every dirty frame back to disk. Pages stay cached.
// Deferred logical records and page images are materialized first,
// keeping WAL-before-data intact for frames whose records were
// postponed to the commit point.
//
// Callers must hold the exclusive statement lock (CHECKPOINT, Close,
// and index flushes all do): frames are checksum-stamped and written
// in place, which tolerates no concurrent pins on the frame. A pinned
// dirty frame here is a locking bug and panics rather than racing the
// reader on the header bytes.
func (bp *BufferPool) FlushAll() error {
	if err := bp.flushDeferredOps(); err != nil {
		return err
	}
	w, walFile := bp.WAL()
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if !f.valid || !f.dirty {
				continue
			}
			if n := f.pin.Load(); n != 0 {
				sh.mu.Unlock()
				panic(fmt.Sprintf("storage: FlushAll of page %d with %d pins held", f.id, n))
			}
			if f.imagePending {
				lsn, err := w.AppendPageImage(walFile, uint32(f.id), f.data)
				if err != nil {
					sh.mu.Unlock()
					return err
				}
				if lsn > f.lsn {
					f.lsn = lsn
				}
				f.imagePending = false
				sh.pending--
			}
			if err := bp.syncWAL(w, f.lsn); err != nil {
				sh.mu.Unlock()
				return err
			}
			if err := bp.writePageRetry(f.id, f.data); err != nil {
				sh.mu.Unlock()
				return err
			}
			sh.dirtyWrites++
			f.dirty = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// WriteBackDirty is the background writer's unit of work: write back up
// to max dirty frames that are safe to clean right now — unpinned, not
// covered by deferred records or images, and (with a WAL attached) fully
// committed, so one WAL sync up to the commit horizon makes every
// candidate durable-before-data. Frames are cleaned in place, not
// evicted: the cache keeps its contents, CHECKPOINT just finds less to
// flush. Returns how many frames were written.
//
// Frames dirtied after the horizon was read have higher LSNs and are
// skipped; the next round picks them up. Holding each shard's mutex
// across its writes is the same trade eviction writeback already makes.
func (bp *BufferPool) WriteBackDirty(max int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	w, _ := bp.WAL()
	committed := wal.LSN(0)
	if w != nil {
		committed = w.CommittedLSN()
	}
	written := 0
	synced := wal.LSN(0) // highest LSN made durable this round
	for si := range bp.shards {
		if written >= max {
			break
		}
		sh := &bp.shards[si]
		bp.lockShard(sh)
		for i := range sh.frames {
			if written >= max {
				break
			}
			f := &sh.frames[i]
			if !f.valid || !f.dirty || f.pin.Load() > 0 || f.imagePending || f.opPending {
				continue
			}
			if committed > 0 && f.lsn > committed {
				continue // uncommitted state: no-steal applies to us too
			}
			// WAL-before-data: the frame's records and its covering
			// commit marker must be durable before the page is. One
			// sync per round normally suffices (every candidate's lsn
			// is at or below the commit horizon); committed == 0 means
			// a raw log without markers, where each frame syncs to its
			// own lsn.
			target := f.lsn
			if committed > target {
				target = committed
			}
			if target > synced {
				if err := bp.syncWAL(w, target); err != nil {
					sh.mu.Unlock()
					return written, err
				}
				synced = target
			}
			mw := bp.waits.Begin(obs.WaitBGWriter)
			err := bp.writePageRetry(f.id, f.data)
			bp.waits.End(mw)
			if err != nil {
				sh.mu.Unlock()
				return written, err
			}
			f.dirty = false
			sh.dirtyWrites++
			sh.bgWrites++
			written++
		}
		sh.mu.Unlock()
	}
	return written, nil
}

// DirtyFrames counts frames currently dirty (introspection, tests, and
// the background writer's pacing).
func (bp *BufferPool) DirtyFrames() int {
	n := 0
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if f.valid && f.dirty {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// quiescePrefetch stops new prefetch work and waits out this pool's
// queued or running prefetch tasks, so teardown never races a worker
// holding frame references. Idempotent.
func (bp *BufferPool) quiescePrefetch() {
	bp.closed.Store(true)
	bp.prefetchActive.Wait()
}

// Close flushes all dirty pages and closes the disk manager.
func (bp *BufferPool) Close() error {
	bp.quiescePrefetch()
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.dm.Close()
}

// Crash discards every frame — dirty or not, pinned or not — without
// writing anything back, then closes the disk manager. It simulates the
// loss of volatile state in a crash: the data file keeps only what
// earlier evictions and flushes wrote. Test and demo hook.
func (bp *BufferPool) Crash() error {
	bp.quiescePrefetch()
	for si := range bp.shards {
		sh := &bp.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			f.id = 0
			f.pin.Store(0)
			f.ref.Store(false)
			f.dirty = false
			f.valid = false
			f.lsn = 0
			f.imagedLSN = 0
			f.imagePending = false
			f.opPending = false
			f.prefetched = false
		}
		sh.table = make(map[PageID]int)
		sh.inflight = make(map[PageID]*inflightRead)
		sh.pending = 0
		sh.mu.Unlock()
	}
	bp.opsMu.Lock()
	bp.ops = nil
	bp.opsMu.Unlock()
	return bp.dm.Close()
}
