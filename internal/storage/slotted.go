package storage

import (
	"bytes"
	"encoding/binary"
)

// Slotted-page layout. A slotted area is any byte slice (usually a whole
// page, sometimes a page minus a structure-specific header). Records are
// addressed by stable slot numbers, so tree nodes can hold (page, slot)
// child pointers while records move during compaction.
//
//	+--------+--------+--------+--------+----------------+----------+----------+--- - -
//	| nslots | freeLo | freeHi | nlive  | pageLSN (8B)   | cksum 4B | rsvd 4B  | slot dir ...
//	+--------+--------+--------+--------+----------------+----------+----------+--- - -
//	                 ... free space ...                      records (grow down) |
//
// The first four header fields are uint16 little-endian, so the slotted
// area must be at most 65535 bytes (the default 8 KB page qualifies).
// pageLSN is the uint64 LSN of the last write-ahead-log record applied
// to this area — the same role as the pd_lsn field of a PostgreSQL page
// header. It lets redo recovery skip records the page already reflects.
// cksum is a CRC32-Castagnoli over the whole page with the checksum
// field itself zeroed (pd_checksum's role); 0 means "never stamped" —
// the backward-compat sentinel, like xmin=0 marking pre-MVCC frozen
// tuples. The trailing 4 bytes are reserved.
const (
	slottedHeaderSize  = 24
	slotSize           = 4
	deadOffset         = 0xFFFF
	pageLSNOffset      = 8
	pageChecksumOffset = 16
)

func get16(b []byte, off int) uint16    { return binary.LittleEndian.Uint16(b[off:]) }
func put16(b []byte, off int, v uint16) { binary.LittleEndian.PutUint16(b[off:], v) }

// SlotInit initializes an empty slotted area in data.
func SlotInit(data []byte) {
	if len(data) > 0xFFFF {
		panic("storage: slotted area larger than 64KB")
	}
	put16(data, 0, 0)                 // nslots
	put16(data, 2, slottedHeaderSize) // freeLo: end of slot directory
	put16(data, 4, uint16(len(data))) // freeHi: start of record heap
	put16(data, 6, 0)                 // nlive
	SetPageLSN(data, 0)
	binary.LittleEndian.PutUint32(data[pageChecksumOffset:], 0)   // unstamped
	binary.LittleEndian.PutUint32(data[pageChecksumOffset+4:], 0) // reserved
}

// PageLSN returns the LSN of the last WAL record applied to the area.
func PageLSN(data []byte) uint64 {
	return binary.LittleEndian.Uint64(data[pageLSNOffset:])
}

// SetPageLSN stamps the LSN of the last WAL record applied to the area.
func SetPageLSN(data []byte, lsn uint64) {
	binary.LittleEndian.PutUint64(data[pageLSNOffset:], lsn)
}

// SlotAreaBlank reports whether the area has never been initialized by
// SlotInit (an all-zero header: a freshly allocated page). Recovery uses
// it to decide whether a redo target needs SlotInit first.
func SlotAreaBlank(data []byte) bool {
	return get16(data, 4) == 0 // freeHi is at least the header size once initialized
}

// SlotCapacity returns the largest record an empty slotted area of
// areaLen bytes can hold: the area minus the header and one directory
// entry. Callers sizing records to a page must use this rather than
// hardcoding the overhead.
func SlotCapacity(areaLen int) int { return areaLen - slottedHeaderSize - slotSize }

// SlotUsable returns the bytes of an empty slotted area available for
// records plus their directory entries: the area minus the header. A set
// of records fits one area iff the sum of each record's length plus
// SlotEntrySize stays within SlotUsable.
func SlotUsable(areaLen int) int { return areaLen - slottedHeaderSize }

// SlotEntrySize is the directory cost of one record.
const SlotEntrySize = slotSize

// SlotCount returns the number of slots ever created (live and dead).
// A corrupt nslots larger than the directory could physically occupy is
// clamped so iteration never reads past the area.
func SlotCount(data []byte) int {
	if len(data) < slottedHeaderSize {
		return 0
	}
	n := int(get16(data, 0))
	if maxSlots := (len(data) - slottedHeaderSize) / slotSize; n > maxSlots {
		return maxSlots
	}
	return n
}

// SlotLive returns the number of live records.
func SlotLive(data []byte) int { return int(get16(data, 6)) }

func slotEntry(data []byte, slot int) (off, length uint16) {
	base := slottedHeaderSize + slot*slotSize
	return get16(data, base), get16(data, base+2)
}

func setSlotEntry(data []byte, slot int, off, length uint16) {
	base := slottedHeaderSize + slot*slotSize
	put16(data, base, off)
	put16(data, base+2, length)
}

// SlotEntry exposes one raw line-pointer for inspection tools: the
// record's byte offset and length within the area, and whether the slot
// is dead. Out-of-range slots report dead with zero offset and length.
func SlotEntry(data []byte, slot int) (off, length uint16, dead bool) {
	if slot < 0 || slot >= SlotCount(data) {
		return 0, 0, true
	}
	off, length = slotEntry(data, slot)
	return off, length, off == deadOffset
}

// SlotFreeSpace returns the number of payload bytes available for one new
// record, accounting for the slot-directory entry the record may need and
// assuming compaction. A record of size <= SlotFreeSpace(data) is
// guaranteed to be insertable.
func SlotFreeSpace(data []byte) int {
	nslots := SlotCount(data)
	used := 0
	reusable := false
	for s := 0; s < nslots; s++ {
		off, length := slotEntry(data, s)
		if off != deadOffset {
			used += int(length)
		} else {
			reusable = true
		}
	}
	free := len(data) - slottedHeaderSize - nslots*slotSize - used
	if !reusable {
		free -= slotSize // a new slot entry would be needed
	}
	if free < 0 {
		return 0
	}
	return free
}

// SlotInsert stores rec and returns its slot number, or ok=false if the
// area cannot hold it even after compaction.
func SlotInsert(data []byte, rec []byte) (slot int, ok bool) {
	if len(rec) > SlotFreeSpace(data) {
		return 0, false
	}
	nslots := SlotCount(data)
	// Reuse a dead slot if any, else append one.
	slot = -1
	for s := 0; s < nslots; s++ {
		if off, _ := slotEntry(data, s); off == deadOffset {
			slot = s
			break
		}
	}
	if slot < 0 {
		// Extending the directory must not overwrite record bytes: if the
		// new entry would cross freeHi, compact first to push records to
		// the high end (the SlotFreeSpace check above guarantees room).
		if slottedHeaderSize+(nslots+1)*slotSize > int(get16(data, 4)) {
			slotCompact(data)
		}
		slot = nslots
		put16(data, 0, uint16(nslots+1))
		// Mark the fresh slot dead until the record is placed so that a
		// compaction triggered below does not read stale directory bytes.
		setSlotEntry(data, slot, deadOffset, 0)
	}
	if !slotPlace(data, slot, rec) {
		// Unreachable: the SlotFreeSpace check above guarantees fit.
		return 0, false
	}
	return slot, true
}

// slotPlace copies rec into the record heap and points slot at it,
// compacting first when the contiguous gap is too small. The slot entry
// must already exist (dead or about to be overwritten). Returns false
// if the record does not fit even after compaction.
func slotPlace(data []byte, slot int, rec []byte) bool {
	freeLo := slottedHeaderSize + SlotCount(data)*slotSize
	freeHi := int(get16(data, 4))
	if freeHi-freeLo < len(rec) {
		slotCompact(data)
		freeHi = int(get16(data, 4))
		if freeHi-freeLo < len(rec) {
			return false
		}
	}
	off := freeHi - len(rec)
	copy(data[off:], rec)
	put16(data, 4, uint16(off))
	setSlotEntry(data, slot, uint16(off), uint16(len(rec)))
	put16(data, 6, get16(data, 6)+1)
	return true
}

// SlotRead returns the record stored in slot, or nil if the slot is dead
// or out of range. The returned slice aliases data. A line pointer whose
// offset or length escapes the area — corrupt on-disk bytes, not a state
// this package ever writes — also reads as nil rather than panicking.
func SlotRead(data []byte, slot int) []byte {
	if slot < 0 || slot >= SlotCount(data) {
		return nil
	}
	off, length := slotEntry(data, slot)
	if off == deadOffset {
		return nil
	}
	if int(off) < slottedHeaderSize || int(off)+int(length) > len(data) {
		return nil
	}
	return data[off : int(off)+int(length)]
}

// SlotDelete removes the record in slot. Space is reclaimed lazily by
// compaction.
func SlotDelete(data []byte, slot int) {
	if SlotRead(data, slot) == nil {
		return
	}
	setSlotEntry(data, slot, deadOffset, 0)
	put16(data, 6, get16(data, 6)-1)
	// Trim trailing dead slots so their directory space is reusable.
	n := SlotCount(data)
	for n > 0 {
		if off, _ := slotEntry(data, n-1); off != deadOffset {
			break
		}
		n--
	}
	put16(data, 0, uint16(n))
}

// SlotUpdate replaces the record in slot with rec, keeping the slot number
// stable. Returns false if the area cannot hold the new record (the old
// record is preserved in that case).
func SlotUpdate(data []byte, slot int, rec []byte) bool {
	old := SlotRead(data, slot)
	if old == nil {
		return false
	}
	if len(rec) <= len(old) {
		off, _ := slotEntry(data, slot)
		copy(data[off:], rec)
		setSlotEntry(data, slot, off, uint16(len(rec)))
		return true
	}
	// Would the record fit once the old copy is dropped? (Conservative:
	// the update never needs a new slot entry, but SlotFreeSpace may have
	// reserved one.)
	if len(rec) > SlotFreeSpace(data)+len(old) {
		return false
	}
	off, length := slotEntry(data, slot)
	_ = length
	// Temporarily kill the slot (without trimming) so compaction reclaims
	// the old bytes, then place the new record.
	setSlotEntry(data, slot, deadOffset, 0)
	slotCompact(data)
	freeLo := slottedHeaderSize + SlotCount(data)*slotSize
	freeHi := int(get16(data, 4))
	if freeHi-freeLo < len(rec) {
		// The space check above guarantees fit on any page this package
		// wrote; only corrupt on-disk bytes (inconsistent line pointers
		// inflating SlotFreeSpace) get here. The old record is already
		// compacted away — report failure instead of panicking.
		return false
	}
	off = uint16(freeHi - len(rec))
	copy(data[off:], rec)
	put16(data, 4, off)
	setSlotEntry(data, slot, off, uint16(len(rec)))
	return true
}

// SlotInsertAt places rec into a specific slot, growing the directory
// with dead entries as needed. It exists for WAL redo, which must
// reproduce the exact slot assignment recorded at run time. The call is
// idempotent: if the slot already holds rec it is a no-op, and if it
// holds different bytes the record is replaced. Returns false only if
// the area cannot hold the record (impossible when replaying a log of
// operations that fit originally).
func SlotInsertAt(data []byte, slot int, rec []byte) bool {
	if old := SlotRead(data, slot); old != nil {
		if bytes.Equal(old, rec) {
			return true
		}
		return SlotUpdate(data, slot, rec)
	}
	nslots := SlotCount(data)
	// Grow the directory so the target slot exists, dead until filled.
	for nslots <= slot {
		if slottedHeaderSize+(nslots+1)*slotSize > int(get16(data, 4)) {
			slotCompact(data)
			if slottedHeaderSize+(nslots+1)*slotSize > int(get16(data, 4)) {
				return false
			}
		}
		setSlotEntry(data, nslots, deadOffset, 0)
		nslots++
		put16(data, 0, uint16(nslots))
	}
	return slotPlace(data, slot, rec)
}

// slotCompact rewrites all live records contiguously at the high end of
// the area, leaving slot numbers unchanged.
func slotCompact(data []byte) {
	type liveRec struct {
		slot int
		rec  []byte
	}
	nslots := SlotCount(data)
	live := make([]liveRec, 0, nslots)
	for s := 0; s < nslots; s++ {
		if r := SlotRead(data, s); r != nil {
			cp := make([]byte, len(r))
			copy(cp, r)
			live = append(live, liveRec{s, cp})
		}
	}
	hi := len(data)
	for _, lr := range live {
		hi -= len(lr.rec)
		copy(data[hi:], lr.rec)
		setSlotEntry(data, lr.slot, uint16(hi), uint16(len(lr.rec)))
	}
	put16(data, 4, uint16(hi))
}

// SlotForEach calls fn for every live record in slot order. fn must not
// mutate the area. Iteration stops early if fn returns false.
func SlotForEach(data []byte, fn func(slot int, rec []byte) bool) {
	n := SlotCount(data)
	for s := 0; s < n; s++ {
		if r := SlotRead(data, s); r != nil {
			if !fn(s, r) {
				return
			}
		}
	}
}
