package storage

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/wal"
)

// RecoveryStats summarizes one redo pass over the write-ahead log.
type RecoveryStats struct {
	wal.ReplayStats
	PageImages    int64 // page-image records applied
	HeapInserts   int64 // logical heap inserts applied (batch rows included)
	HeapDeletes   int64 // logical heap deletes applied
	HeapBatches   int64 // batch-insert records applied
	SkippedByLSN  int64 // logical records skipped because pageLSN was newer
	TailDiscarded int64 // records after the last commit marker, not replayed
	FilesTouched  int   // distinct data files opened by redo
	PagesWritten  int64 // physical page writes performed by redo
}

// RecoverDir replays the write-ahead log in walDir into the data files
// of dataDir, bringing every heap and index file up to the end of the
// log. It is the redo pass run on reopen after a crash: page-image
// records overwrite their page (replay is in LSN order, so the last
// image wins), and logical heap records are re-executed through the
// slotted-page layer unless the on-disk pageLSN shows the page already
// reflects them. The pass is idempotent — replaying an already-recovered
// log is harmless — and a missing or empty log directory is a no-op.
//
// Records after the log's last commit or checkpoint marker belong to a
// statement whose tail was lost in the crash; they are not replayed, so
// a heap row never reappears without its index entries. A log with no
// marker at all (raw storage-level use) is replayed in full.
func RecoverDir(dataDir, walDir string, pageSize int) (RecoveryStats, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	var st RecoveryStats
	// Pre-pass: find the last statement boundary.
	lastMarker, err := wal.LastMarker(walDir)
	if err != nil {
		return st, fmt.Errorf("storage: recovery: %w", err)
	}
	files := make(map[string]*FileDiskManager)
	defer func() {
		for _, dm := range files {
			dm.Sync()
			dm.Close()
		}
	}()
	open := func(name string) (*FileDiskManager, error) {
		if dm, ok := files[name]; ok {
			return dm, nil
		}
		// Record file names are base names chosen by this process; a
		// separator would mean a damaged or hostile log.
		if name == "" || name != filepath.Base(name) || strings.ContainsAny(name, `/\`) {
			return nil, fmt.Errorf("storage: recovery: unsafe file name %q in log", name)
		}
		dm, err := OpenFile(filepath.Join(dataDir, name), pageSize)
		if err != nil {
			return nil, err
		}
		files[name] = dm
		st.FilesTouched++
		return dm, nil
	}
	ensure := func(dm *FileDiskManager, page uint32) error {
		for dm.NumPages() <= page {
			if _, err := dm.AllocatePage(); err != nil {
				return err
			}
		}
		return nil
	}

	buf := make([]byte, pageSize)
	rs, err := wal.Replay(walDir, func(r *wal.Record) error {
		if lastMarker != 0 && r.LSN > lastMarker {
			st.TailDiscarded++
			return nil
		}
		switch r.Type {
		case wal.RecCheckpoint, wal.RecCommit:
			return nil
		case wal.RecFileCreate:
			_, err := open(r.File)
			return err
		case wal.RecPageImage:
			if int(r.PageSize) != pageSize {
				return fmt.Errorf("storage: recovery: record page size %d != %d", r.PageSize, pageSize)
			}
			dm, err := open(r.File)
			if err != nil {
				return err
			}
			if err := ensure(dm, r.Page); err != nil {
				return err
			}
			n := copy(buf, r.Data)
			for i := n; i < len(buf); i++ {
				buf[i] = 0
			}
			if err := dm.WritePage(PageID(r.Page), buf); err != nil {
				return err
			}
			st.PageImages++
			st.PagesWritten++
			return nil
		case wal.RecHeapInsert, wal.RecHeapDelete, wal.RecHeapBatchInsert:
			dm, err := open(r.File)
			if err != nil {
				return err
			}
			if err := ensure(dm, r.Page); err != nil {
				return err
			}
			if err := dm.ReadPage(PageID(r.Page), buf); err != nil {
				return err
			}
			if SlotAreaBlank(buf) {
				SlotInit(buf)
			}
			if PageLSN(buf) >= uint64(r.LSN) {
				st.SkippedByLSN++
				return nil
			}
			switch r.Type {
			case wal.RecHeapInsert:
				if !SlotInsertAt(buf, int(r.Slot), r.Data) {
					return fmt.Errorf("storage: recovery: redo insert does not fit page %d of %s", r.Page, r.File)
				}
				st.HeapInserts++
			case wal.RecHeapBatchInsert:
				// One record redoes a whole page-worth of tuples — the
				// all-or-nothing unit of a multi-row INSERT's redo.
				for i, slot := range r.Slots {
					if !SlotInsertAt(buf, int(slot), r.Recs[i]) {
						return fmt.Errorf("storage: recovery: redo batch insert does not fit page %d of %s", r.Page, r.File)
					}
				}
				st.HeapInserts += int64(len(r.Slots))
				st.HeapBatches++
			default:
				SlotDelete(buf, int(r.Slot))
				st.HeapDeletes++
			}
			SetPageLSN(buf, uint64(r.LSN))
			if err := dm.WritePage(PageID(r.Page), buf); err != nil {
				return err
			}
			st.PagesWritten++
			return nil
		default:
			return fmt.Errorf("storage: recovery: unexpected record type %v", r.Type)
		}
	})
	st.ReplayStats = rs
	if err != nil {
		return st, fmt.Errorf("storage: recovery: %w", err)
	}
	for name, dm := range files {
		if serr := dm.Sync(); serr != nil {
			return st, fmt.Errorf("storage: recovery: sync %s: %w", name, serr)
		}
	}
	// The discarded tail must not survive in the log: left in place, its
	// records would sit below the next run's commit markers and be
	// replayed as committed by a later recovery.
	if st.TailDiscarded > 0 {
		if terr := wal.TruncateAfter(walDir, lastMarker); terr != nil {
			return st, fmt.Errorf("storage: recovery: %w", terr)
		}
	}
	return st, nil
}
