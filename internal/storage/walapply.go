package storage

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/wal"
)

// RecoveryStats summarizes one redo pass over the write-ahead log.
type RecoveryStats struct {
	wal.ReplayStats
	PageImages    int64 // page-image records applied
	HeapInserts   int64 // logical heap inserts applied (batch rows included)
	HeapDeletes   int64 // logical heap deletes applied
	HeapBatches   int64 // batch-insert records applied
	HeapXmaxOps   int64 // set/clear-xmax and mark-aborted records applied
	SkippedByLSN  int64 // logical records skipped because pageLSN was newer
	TailDiscarded int64 // records after the last commit marker, not replayed
	FilesTouched  int   // distinct data files opened by redo
	PagesWritten  int64 // physical page writes performed by redo
	AbortFixups   int64 // tuples of uncommitted transactions flagged aborted
	XmaxFixups    int64 // stamped xmaxes of uncommitted transactions cleared
	TornPages     int64 // pages failing checksum at redo (torn at crash)
	TornRepaired  int64 // torn pages reinitialized and rebuilt from the log
}

// Versioned heap tuples carry an 18-byte [xmin:8][xmax:8][flags:2]
// header (heap.TupleHeader; the constants are mirrored here because heap
// builds on storage, not the reverse). Recovery reads xids out of logged
// tuple bytes to judge, after replay, which tuples belong to
// transactions that never committed.
const (
	tupleHeaderSize  = 18
	flagXminAborted  = 0x1
	tupleXmaxOffset  = 8
	tupleFlagsOffset = 16
)

// fixupKey addresses one heap slot across the replayed log.
type fixupKey struct {
	file string
	page uint32
	slot uint16
}

// txnFixups tracks, across the whole replay, the *last* transactional
// write to every heap slot plus the set of committed transactions. After
// replay, slots whose last writer never committed are repaired in place:
// inserted tuples get the aborted flag, stamped xmaxes are cleared. The
// last-writer-per-slot rule (not per-transaction lists) makes slot reuse
// safe: if aborted transaction X's tuple at (p,s) was vacuumed away and
// transaction Y's tuple now lives there, the map holds Y, not X.
type txnFixups struct {
	lastInsert  map[fixupKey]uint64 // slot -> xmin of last inserted tuple
	lastXmaxSet map[fixupKey]uint64 // slot -> last stamped (uncleared) xmax
	committed   map[uint64]bool     // xids with a RecTxnCommit in the log
}

func newTxnFixups() *txnFixups {
	return &txnFixups{
		lastInsert:  make(map[fixupKey]uint64),
		lastXmaxSet: make(map[fixupKey]uint64),
		committed:   make(map[uint64]bool),
	}
}

// noteInsert records that a tuple with the given raw bytes now occupies
// key. A frozen (xid 0) or unversioned tuple clears the slot's history —
// whatever was there before has been overwritten.
func (fx *txnFixups) noteInsert(key fixupKey, rec []byte) {
	delete(fx.lastXmaxSet, key) // a fresh tuple's xmax is whatever rec carries
	if len(rec) >= tupleHeaderSize {
		if xid := binary.LittleEndian.Uint64(rec); xid != 0 {
			fx.lastInsert[key] = xid
			return
		}
	}
	delete(fx.lastInsert, key)
}

// noteDelete records that key's slot no longer holds a tuple.
func (fx *txnFixups) noteDelete(key fixupKey) {
	delete(fx.lastInsert, key)
	delete(fx.lastXmaxSet, key)
}

// RecoverDir replays the write-ahead log in walDir into the data files
// of dataDir, bringing every heap and index file up to the end of the
// log. It is the redo pass run on reopen after a crash: page-image
// records overwrite their page (replay is in LSN order, so the last
// image wins), and logical heap records are re-executed through the
// slotted-page layer unless the on-disk pageLSN shows the page already
// reflects them. The pass is idempotent — replaying an already-recovered
// log is harmless — and a missing or empty log directory is a no-op.
//
// Records after the log's last commit or checkpoint marker belong to a
// statement whose tail was lost in the crash; they are not replayed, so
// a heap row never reappears without its index entries. A log with no
// marker at all (raw storage-level use) is replayed in full.
func RecoverDir(dataDir, walDir string, pageSize int) (RecoveryStats, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	var st RecoveryStats
	// Pre-pass: find the last statement boundary.
	lastMarker, err := wal.LastMarker(walDir)
	if err != nil {
		return st, fmt.Errorf("storage: recovery: %w", err)
	}
	// Second pre-pass: which torn pages could replay provably rebuild?
	// A SlotInit repair restores only what the surviving log carries, so
	// it is licensed by either a RecFileCreate (the log covers the file
	// since its creation — nothing predates it) or a surviving full
	// image of the page (everything older is baked into the image,
	// everything newer follows it in LSN order). A torn page with
	// neither would be silently rebuilt minus its pre-checkpoint rows.
	type imageKey struct {
		file string
		page uint32
	}
	createdFiles := make(map[string]bool)
	imagedPages := make(map[imageKey]bool)
	if _, err := wal.Replay(walDir, func(r *wal.Record) error {
		if lastMarker != 0 && r.LSN > lastMarker {
			return nil
		}
		switch r.Type {
		case wal.RecFileCreate:
			createdFiles[r.File] = true
		case wal.RecPageImage:
			imagedPages[imageKey{r.File, r.Page}] = true
		}
		return nil
	}); err != nil {
		return st, fmt.Errorf("storage: recovery: %w", err)
	}
	files := make(map[string]*FileDiskManager)
	defer func() {
		for _, dm := range files {
			dm.Sync()
			dm.Close()
		}
	}()
	open := func(name string) (*FileDiskManager, error) {
		if dm, ok := files[name]; ok {
			return dm, nil
		}
		// Record file names are base names chosen by this process; a
		// separator would mean a damaged or hostile log.
		if name == "" || name != filepath.Base(name) || strings.ContainsAny(name, `/\`) {
			return nil, fmt.Errorf("storage: recovery: unsafe file name %q in log", name)
		}
		dm, err := OpenFile(filepath.Join(dataDir, name), pageSize)
		if err != nil {
			return nil, err
		}
		files[name] = dm
		st.FilesTouched++
		return dm, nil
	}
	ensure := func(dm *FileDiskManager, page uint32) error {
		for dm.NumPages() <= page {
			if _, err := dm.AllocatePage(); err != nil {
				return err
			}
		}
		return nil
	}

	// stamp refreshes the page checksum before any redo write to a
	// checksummed file: logged page images and logical redo both carry
	// or produce bytes whose stored checksum predates this write, so
	// every page recovery touches leaves disk freshly stamped.
	stamp := func(name string, page uint32, buf []byte) {
		if page != 0 && ChecksummedFile(name) {
			StampPageChecksum(buf)
		}
	}

	buf := make([]byte, pageSize)
	fx := newTxnFixups()
	rs, err := wal.Replay(walDir, func(r *wal.Record) error {
		if lastMarker != 0 && r.LSN > lastMarker {
			st.TailDiscarded++
			return nil
		}
		// Transaction bookkeeping happens for every surviving record —
		// including ones the pageLSN guard will skip below, because a
		// skipped record's effect is already on the page and still needs
		// judging against the commit set.
		switch r.Type {
		case wal.RecTxnCommit:
			fx.committed[r.Xid] = true
			return nil
		case wal.RecTxnAbort:
			// Informational: the compensating records precede it, and an
			// absent commit record already means aborted.
			return nil
		case wal.RecHeapInsert:
			fx.noteInsert(fixupKey{r.File, r.Page, r.Slot}, r.Data)
		case wal.RecHeapBatchInsert:
			for i, slot := range r.Slots {
				fx.noteInsert(fixupKey{r.File, r.Page, slot}, r.Recs[i])
			}
		case wal.RecHeapDelete:
			fx.noteDelete(fixupKey{r.File, r.Page, r.Slot})
		case wal.RecHeapSetXmax:
			if r.Xid != 0 {
				fx.lastXmaxSet[fixupKey{r.File, r.Page, r.Slot}] = r.Xid
			}
		case wal.RecHeapClearXmax:
			delete(fx.lastXmaxSet, fixupKey{r.File, r.Page, r.Slot})
		}
		switch r.Type {
		case wal.RecCheckpoint, wal.RecCommit:
			return nil
		case wal.RecFileCreate:
			_, err := open(r.File)
			return err
		case wal.RecPageImage:
			if int(r.PageSize) != pageSize {
				return fmt.Errorf("storage: recovery: record page size %d != %d", r.PageSize, pageSize)
			}
			dm, err := open(r.File)
			if err != nil {
				return err
			}
			if err := ensure(dm, r.Page); err != nil {
				return err
			}
			n := copy(buf, r.Data)
			for i := n; i < len(buf); i++ {
				buf[i] = 0
			}
			if r.Page != 0 && ChecksummedFile(r.File) {
				// The image was captured before its statement's LSNs
				// were stamped, so its embedded pageLSN is stale.
				// Advance it to the image's own LSN: the group records
				// preceding the image are baked into it, and the skip
				// guard should treat them as applied on a re-replay.
				SetPageLSN(buf, uint64(r.LSN))
			}
			stamp(r.File, r.Page, buf)
			if err := dm.WritePage(PageID(r.Page), buf); err != nil {
				return err
			}
			st.PageImages++
			st.PagesWritten++
			return nil
		case wal.RecHeapInsert, wal.RecHeapDelete, wal.RecHeapBatchInsert,
			wal.RecHeapSetXmax, wal.RecHeapClearXmax, wal.RecHeapMarkAborted:
			dm, err := open(r.File)
			if err != nil {
				return err
			}
			if err := ensure(dm, r.Page); err != nil {
				return err
			}
			if err := dm.ReadPage(PageID(r.Page), buf); err != nil {
				return err
			}
			if SlotAreaBlank(buf) {
				SlotInit(buf)
			} else if r.Page != 0 && ChecksummedFile(r.File) {
				// A checksum mismatch here is a page torn at the crash —
				// part of an eviction or flush landed, the rest did not.
				// Its pageLSN and slot directory cannot be trusted, so
				// reinitialize the page and let replay rebuild it, with
				// the reset pageLSN (0) disabling the skip guard — but
				// only when the surviving log provably holds the page's
				// whole content: the file's creation record, or a full
				// image of the page (the first post-checkpoint touch of
				// a page ships one). Otherwise reinitializing would
				// silently drop every row the recycled segments carried,
				// so recovery fails loudly instead.
				if stored, computed, ok := VerifyPageChecksum(buf); !ok {
					st.TornPages++
					if !createdFiles[r.File] && !imagedPages[imageKey{r.File, r.Page}] {
						return &ErrPageCorrupt{File: r.File, PageID: PageID(r.Page), Expected: stored, Got: computed}
					}
					SlotInit(buf)
					st.TornRepaired++
				}
			}
			if PageLSN(buf) >= uint64(r.LSN) {
				st.SkippedByLSN++
				return nil
			}
			switch r.Type {
			case wal.RecHeapInsert:
				if !SlotInsertAt(buf, int(r.Slot), r.Data) {
					return fmt.Errorf("storage: recovery: redo insert does not fit page %d of %s", r.Page, r.File)
				}
				st.HeapInserts++
			case wal.RecHeapBatchInsert:
				// One record redoes a whole page-worth of tuples — the
				// all-or-nothing unit of a multi-row INSERT's redo.
				for i, slot := range r.Slots {
					if !SlotInsertAt(buf, int(slot), r.Recs[i]) {
						return fmt.Errorf("storage: recovery: redo batch insert does not fit page %d of %s", r.Page, r.File)
					}
				}
				st.HeapInserts += int64(len(r.Slots))
				st.HeapBatches++
			case wal.RecHeapSetXmax, wal.RecHeapClearXmax, wal.RecHeapMarkAborted:
				// Header rewrites of a tuple already on the page. A
				// missing or short tuple means the log and page disagree
				// in a way replay of later records will repair (or the
				// slot was physically deleted) — skip, like heap.Delete
				// of a non-existent record.
				if rec := SlotRead(buf, int(r.Slot)); rec != nil && len(rec) >= tupleHeaderSize {
					switch r.Type {
					case wal.RecHeapSetXmax:
						binary.LittleEndian.PutUint64(rec[tupleXmaxOffset:], r.Xid)
					case wal.RecHeapClearXmax:
						binary.LittleEndian.PutUint64(rec[tupleXmaxOffset:], 0)
					case wal.RecHeapMarkAborted:
						binary.LittleEndian.PutUint16(rec[tupleFlagsOffset:],
							binary.LittleEndian.Uint16(rec[tupleFlagsOffset:])|flagXminAborted)
					}
				}
				st.HeapXmaxOps++
			default:
				SlotDelete(buf, int(r.Slot))
				st.HeapDeletes++
			}
			SetPageLSN(buf, uint64(r.LSN))
			stamp(r.File, r.Page, buf)
			if err := dm.WritePage(PageID(r.Page), buf); err != nil {
				return err
			}
			st.PagesWritten++
			return nil
		default:
			return fmt.Errorf("storage: recovery: unexpected record type %v", r.Type)
		}
	})
	st.ReplayStats = rs
	if err != nil {
		return st, fmt.Errorf("storage: recovery: %w", err)
	}
	// Abort fixup: replay restored every surviving record, including the
	// tuples of transactions that never reached a commit record (a crash
	// mid-transaction, or mid-statement between the chunks of an
	// oversized DML). There is no undo log; instead, each such tuple is
	// repaired in place — inserted versions get the aborted flag,
	// stamped xmaxes are cleared — so no snapshot ever sees the
	// transaction's effects. Idempotent: re-recovering reapplies the
	// same repairs onto already-repaired pages.
	type pageKey struct {
		file string
		page uint32
	}
	fixPages := make(map[pageKey]bool)
	abortSlots := make(map[pageKey][]uint16)
	clearSlots := make(map[pageKey]map[uint16]uint64)
	for key, xid := range fx.lastInsert {
		if !fx.committed[xid] {
			pk := pageKey{key.file, key.page}
			abortSlots[pk] = append(abortSlots[pk], key.slot)
			fixPages[pk] = true
		}
	}
	for key, xid := range fx.lastXmaxSet {
		if !fx.committed[xid] {
			pk := pageKey{key.file, key.page}
			if clearSlots[pk] == nil {
				clearSlots[pk] = make(map[uint16]uint64)
			}
			clearSlots[pk][key.slot] = xid
			fixPages[pk] = true
		}
	}
	for pk := range fixPages {
		dm, err := open(pk.file)
		if err != nil {
			return st, fmt.Errorf("storage: recovery: %w", err)
		}
		if dm.NumPages() <= pk.page {
			continue
		}
		if err := dm.ReadPage(PageID(pk.page), buf); err != nil {
			return st, fmt.Errorf("storage: recovery: %w", err)
		}
		changed := false
		for _, slot := range abortSlots[pk] {
			rec := SlotRead(buf, int(slot))
			if rec == nil || len(rec) < tupleHeaderSize {
				continue
			}
			flags := binary.LittleEndian.Uint16(rec[tupleFlagsOffset:])
			if flags&flagXminAborted == 0 {
				binary.LittleEndian.PutUint16(rec[tupleFlagsOffset:], flags|flagXminAborted)
				changed = true
				st.AbortFixups++
			}
		}
		for slot, xid := range clearSlots[pk] {
			rec := SlotRead(buf, int(slot))
			if rec == nil || len(rec) < tupleHeaderSize {
				continue
			}
			if binary.LittleEndian.Uint64(rec[tupleXmaxOffset:]) == xid {
				binary.LittleEndian.PutUint64(rec[tupleXmaxOffset:], 0)
				changed = true
				st.XmaxFixups++
			}
		}
		if changed {
			stamp(pk.file, pk.page, buf)
			if err := dm.WritePage(PageID(pk.page), buf); err != nil {
				return st, fmt.Errorf("storage: recovery: %w", err)
			}
			st.PagesWritten++
		}
	}
	for name, dm := range files {
		if serr := dm.Sync(); serr != nil {
			return st, fmt.Errorf("storage: recovery: sync %s: %w", name, serr)
		}
	}
	// The discarded tail must not survive in the log: left in place, its
	// records would sit below the next run's commit markers and be
	// replayed as committed by a later recovery.
	if st.TailDiscarded > 0 {
		if terr := wal.TruncateAfter(walDir, lastMarker); terr != nil {
			return st, fmt.Errorf("storage: recovery: %w", terr)
		}
	}
	return st, nil
}
