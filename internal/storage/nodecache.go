package storage

import "sync"

// NodeCache is the bounded, guarded decoded-node cache shared by the
// index structures (core, btree, rtree): read paths serve repeated node
// visits from it instead of re-decoding page records, standing in for
// PostgreSQL processing tuples directly inside buffer pages.
//
// The mutex guards only the map. The cached values themselves must be
// immutable from the instant they are published — callers finish all
// decoding/memoization before Put and never write to a cached node — so
// any number of concurrent readers share them freely. Writers Drop the
// touched keys; when the cache reaches its bound it is dropped wholesale
// (reads repopulate it quickly).
type NodeCache[K comparable, V any] struct {
	mu  sync.RWMutex
	max int
	m   map[K]V
}

// NewNodeCache returns an empty cache holding at most max entries.
func NewNodeCache[K comparable, V any](max int) *NodeCache[K, V] {
	return &NodeCache[K, V]{max: max, m: make(map[K]V)}
}

// Get returns the cached value for k, if any.
func (c *NodeCache[K, V]) Get(k K) (V, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	return v, ok
}

// Put publishes v under k. v must not be written again by anyone.
func (c *NodeCache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	if len(c.m) >= c.max {
		c.m = make(map[K]V)
	}
	c.m[k] = v
	c.mu.Unlock()
}

// Drop invalidates k.
func (c *NodeCache[K, V]) Drop(k K) {
	c.mu.Lock()
	delete(c.m, k)
	c.mu.Unlock()
}
