package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4) for the /metrics endpoint. Counters and sampler
// values whose names end in _total are typed counter, other scalars
// gauge; histograms are exposed as native Prometheus histograms under
// <name>_seconds, with the registry's power-of-two nanosecond buckets
// converted to cumulative le-labelled buckets in seconds.
func WritePrometheus(w io.Writer, r *Registry) {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Load()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Load()
	}
	type histDump struct {
		buckets [histNumBkts + 1]int64
		count   int64
		sumNs   int64
	}
	hists := make(map[string]histDump, len(r.histograms))
	for name, h := range r.histograms {
		var d histDump
		for i := range h.buckets {
			d.buckets[i] = h.buckets[i].Load()
		}
		d.count = h.count.Load()
		d.sumNs = h.sum.Load()
		hists[name] = d
	}
	samplers := r.samplers
	r.mu.Unlock()

	// Sampler values fold into the scalar maps by name convention.
	for _, s := range samplers {
		s(func(name string, value int64) {
			if strings.HasSuffix(name, "_total") {
				counters[name] = value
			} else {
				gauges[name] = value
			}
		})
	}

	scalar := func(m map[string]int64, typ string) {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, m[name])
		}
	}
	scalar(counters, "counter")
	scalar(gauges, "gauge")

	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		d := hists[name]
		pname := name + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", pname)
		cum := int64(0)
		for i := 0; i <= histNumBkts; i++ {
			cum += d.buckets[i]
			if i == histNumBkts {
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pname, cum)
			} else {
				le := float64(BucketUpper(i)) / 1e9
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pname, le, cum)
			}
		}
		fmt.Fprintf(w, "%s_sum %g\n", pname, float64(d.sumNs)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", pname, d.count)
	}
}
