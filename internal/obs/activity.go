package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SessionState is a session's instantaneous state in the activity table.
type SessionState int32

const (
	// StateIdle: registered, no statement running.
	StateIdle SessionState = iota
	// StateActive: executing a statement.
	StateActive
	// StateWaiting: executing a statement and currently blocked on a
	// wait event (see the entry's WaitEvent).
	StateWaiting
)

func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateActive:
		return "active"
	case StateWaiting:
		return "waiting"
	}
	return "unknown"
}

// SessionEntry is one live session's row in the activity table. Every
// mutable field is an atomic so scrapers (SHOW ACTIVITY, the /activity
// endpoint) read a consistent-enough snapshot without taking any lock a
// statement's hot path would contend on; the statement text in
// particular is an atomic pointer swap, so a scraper can never observe
// a torn string.
type SessionEntry struct {
	act     *Activity
	id      int64
	client  string
	started time.Time

	state     atomic.Int32
	stmt      atomic.Pointer[string]
	stmtStart atomic.Int64 // unix nanos; 0 when idle
	wait      atomic.Int32
	gid       atomic.Uint64 // bound goroutine while a statement runs
}

// ID returns the session's id.
func (se *SessionEntry) ID() int64 {
	if se == nil {
		return 0
	}
	return se.id
}

// Begin marks the start of one statement: the session becomes active,
// records stmt as its current statement, and binds itself to the calling
// goroutine so waits observed anywhere below (lock acquisition, buffer
// I/O, WAL commit) attribute to it. One goid parse per statement.
func (se *SessionEntry) Begin(stmt string) {
	if se == nil {
		return
	}
	g := goid()
	if se.gid.Swap(g) == 0 {
		se.act.bound.Add(1)
	}
	se.act.byGoid.Store(g, se)
	se.stmt.Store(&stmt)
	se.stmtStart.Store(time.Now().UnixNano())
	se.wait.Store(int32(WaitNone))
	se.state.Store(int32(StateActive))
}

// End marks the statement finished: the session returns to idle and the
// goroutine binding is dropped.
func (se *SessionEntry) End() {
	if se == nil {
		return
	}
	se.state.Store(int32(StateIdle))
	se.stmtStart.Store(0)
	se.wait.Store(int32(WaitNone))
	if g := se.gid.Swap(0); g != 0 {
		se.act.byGoid.Delete(g)
		se.act.bound.Add(-1)
	}
}

// Close removes the session from the activity table.
func (se *SessionEntry) Close() {
	if se == nil {
		return
	}
	se.End()
	se.act.mu.Lock()
	delete(se.act.sessions, se.id)
	se.act.mu.Unlock()
}

func (se *SessionEntry) setWait(ev WaitEvent) {
	se.wait.Store(int32(ev))
	se.state.Store(int32(StateWaiting))
}

func (se *SessionEntry) clearWait() {
	se.wait.Store(int32(WaitNone))
	se.state.Store(int32(StateActive))
}

// Activity is the live session table — this engine's pg_stat_activity.
// Registration and removal take its mutex (cold, per connection); the
// per-statement path touches only the entry's atomics plus one sync.Map
// store/delete for the goroutine binding.
type Activity struct {
	mu       sync.Mutex
	nextID   int64
	sessions map[int64]*SessionEntry
	byGoid   sync.Map // goroutine id → *SessionEntry
	// bound counts goroutines currently in byGoid, so current() can skip
	// the goid parse entirely when nothing is bound — the case for code
	// driving the executor directly (benchmarks, embedded use) rather
	// than through sessions.
	bound atomic.Int64
}

// NewActivity returns an empty activity table.
func NewActivity() *Activity {
	return &Activity{sessions: make(map[int64]*SessionEntry)}
}

// Register adds a session for the given client label ("local" for
// embedded sessions, the remote address for server connections) and
// returns its entry. Nil-receiver safe: returns a nil entry whose
// methods no-op.
func (a *Activity) Register(client string) *SessionEntry {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	a.nextID++
	se := &SessionEntry{act: a, id: a.nextID, client: client, started: time.Now()}
	a.sessions[se.id] = se
	a.mu.Unlock()
	return se
}

// current resolves the calling goroutine's bound session, or nil. Cold
// path only — called when a wait has already blocked.
func (a *Activity) current() *SessionEntry {
	if a == nil || a.bound.Load() == 0 {
		return nil
	}
	if v, ok := a.byGoid.Load(goid()); ok {
		return v.(*SessionEntry)
	}
	return nil
}

// SessionInfo is one row of an activity snapshot.
type SessionInfo struct {
	ID          int64         `json:"id"`
	Client      string        `json:"client"`
	State       string        `json:"state"`
	WaitEvent   string        `json:"wait_event"`
	Statement   string        `json:"statement"`
	SessionAge  time.Duration `json:"session_age_ns"`
	StmtElapsed time.Duration `json:"stmt_elapsed_ns"`
}

// Snapshot reads every live session, ordered by id. The per-entry reads
// are individually atomic, not mutually: a session finishing its
// statement mid-snapshot may read as idle with a statement text — fine
// for a monitoring surface.
func (a *Activity) Snapshot() []SessionInfo {
	if a == nil {
		return nil
	}
	now := time.Now()
	a.mu.Lock()
	entries := make([]*SessionEntry, 0, len(a.sessions))
	for _, se := range a.sessions {
		entries = append(entries, se)
	}
	a.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]SessionInfo, 0, len(entries))
	for _, se := range entries {
		info := SessionInfo{
			ID:         se.id,
			Client:     se.client,
			State:      SessionState(se.state.Load()).String(),
			WaitEvent:  WaitEvent(se.wait.Load()).String(),
			SessionAge: now.Sub(se.started),
		}
		if p := se.stmt.Load(); p != nil {
			info.Statement = *p
		}
		if s := se.stmtStart.Load(); s > 0 {
			info.StmtElapsed = now.Sub(time.Unix(0, s))
		}
		out = append(out, info)
	}
	return out
}
