package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects the span timeline of one statement — parse, plan,
// execute, index descents, page reads, WAL appends, commit waits — for
// EXPLAIN (TRACE) and executor.Options.TraceDir. It renders either as a
// human-readable tree (nesting inferred from time containment) or as
// Chrome trace-event JSON loadable in chrome://tracing / Perfetto.
//
// Arming is per statement and per goroutine: Arm binds the tracer to the
// calling goroutine in a process-global table and bumps a global armed
// count. Instrumentation sites everywhere below (buffer pool, WAL,
// executor) call Current(), which is one atomic load plus a branch when
// nothing is armed — tracing is fully off unless a statement asked for
// it, which is what keeps the hot path at PR 6 cost.
type Tracer struct {
	t0 time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one completed span, with times relative to the tracer's start.
type Span struct {
	Name  string
	Cat   string
	Start time.Duration
	Dur   time.Duration
}

var (
	armedCount   atomic.Int64
	armedTracers sync.Map // goroutine id → *Tracer
)

// NewTracer starts a tracer with its clock origin at now.
func NewTracer() *Tracer { return &Tracer{t0: time.Now()} }

// NewTracerStarted starts a tracer whose clock origin is t0 — used when
// work to be recorded (lexing, say) happened before the decision to
// trace was parsed out of the statement itself.
func NewTracerStarted(t0 time.Time) *Tracer { return &Tracer{t0: t0} }

// Arm binds the tracer to the calling goroutine and returns a disarm
// function that restores the previous binding (tracers can nest; the
// innermost wins, as with EXPLAIN (TRACE) under a TraceDir).
func (tr *Tracer) Arm() func() {
	g := goid()
	prev, hadPrev := armedTracers.Load(g)
	armedTracers.Store(g, tr)
	armedCount.Add(1)
	return func() {
		armedCount.Add(-1)
		if hadPrev {
			armedTracers.Store(g, prev)
		} else {
			armedTracers.Delete(g)
		}
	}
}

// Current returns the tracer armed on the calling goroutine, or nil.
// With no tracer armed anywhere in the process this is one atomic load.
func Current() *Tracer {
	if armedCount.Load() == 0 {
		return nil
	}
	if v, ok := armedTracers.Load(goid()); ok {
		return v.(*Tracer)
	}
	return nil
}

// SpanMark is an open span; End completes and records it. The zero value
// (from a nil tracer) no-ops, so call sites need no nil branch of their
// own.
type SpanMark struct {
	tr    *Tracer
	name  string
	cat   string
	start time.Time
}

// StartSpan opens a span. Nil-receiver safe.
func (tr *Tracer) StartSpan(name, cat string) SpanMark {
	if tr == nil {
		return SpanMark{}
	}
	return SpanMark{tr: tr, name: name, cat: cat, start: time.Now()}
}

// End completes the span and records it on its tracer.
func (m SpanMark) End() {
	if m.tr == nil {
		return
	}
	m.tr.AddRange(m.name, m.cat, m.start, time.Now())
}

// AddRange records a completed span from explicit wall-clock endpoints.
func (tr *Tracer) AddRange(name, cat string, start, end time.Time) {
	if tr == nil {
		return
	}
	s := start.Sub(tr.t0)
	if s < 0 {
		s = 0
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, Span{Name: name, Cat: cat, Start: s, Dur: d})
	tr.mu.Unlock()
}

// Finish records the root span, covering everything from the tracer's
// origin to now, under the given name.
func (tr *Tracer) Finish(rootName string) {
	if tr == nil {
		return
	}
	tr.AddRange(rootName, "statement", tr.t0, time.Now())
}

// Spans returns a copy of the recorded spans, ordered by start time with
// longer (enclosing) spans first at equal starts.
func (tr *Tracer) Spans() []Span {
	tr.mu.Lock()
	out := append([]Span(nil), tr.spans...)
	tr.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

// chromeEvent is one Chrome trace-event ("ph":"X" complete event, times
// in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// ChromeJSON renders the spans in Chrome trace-event format:
// {"traceEvents": [...]} with complete ("ph":"X") events, microsecond
// timestamps relative to the statement start.
func (tr *Tracer) ChromeJSON() []byte {
	spans := tr.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
		})
	}
	out, _ := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
	return out
}

// TraceLine is one row of the rendered span tree.
type TraceLine struct {
	Depth int
	Name  string
	Cat   string
	Start time.Duration
	Dur   time.Duration
}

// Tree renders the spans as an indented tree, inferring parent/child
// structure from time containment (spans come from one goroutine's
// nested call frames, so containment is nesting).
func (tr *Tracer) Tree() []TraceLine {
	spans := tr.Spans()
	out := make([]TraceLine, 0, len(spans))
	type open struct{ end time.Duration }
	var stack []open
	for _, sp := range spans {
		for len(stack) > 0 && sp.Start >= stack[len(stack)-1].end {
			stack = stack[:len(stack)-1]
		}
		out = append(out, TraceLine{
			Depth: len(stack),
			Name:  sp.Name,
			Cat:   sp.Cat,
			Start: sp.Start,
			Dur:   sp.Dur,
		})
		stack = append(stack, open{end: sp.Start + sp.Dur})
	}
	return out
}
