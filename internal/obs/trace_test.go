package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// mkTracer builds a tracer with a deterministic span layout:
//
//	statement [0, 100ms)
//	  parse   [0, 10ms)
//	  plan    [10, 20ms)
//	  execute [20, 90ms)
//	    page_read [30, 40ms)
func mkTracer() *Tracer {
	t0 := time.Unix(1000, 0)
	tr := NewTracerStarted(t0)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	tr.AddRange("parse", "sql", at(0), at(10))
	tr.AddRange("plan", "plan", at(10), at(20))
	tr.AddRange("execute", "exec", at(20), at(90))
	tr.AddRange("page_read", "io", at(30), at(40))
	tr.AddRange("statement", "statement", at(0), at(100))
	return tr
}

func TestTracerTreeNesting(t *testing.T) {
	lines := mkTracer().Tree()
	want := []struct {
		name  string
		depth int
	}{
		{"statement", 0},
		{"parse", 1},
		{"plan", 1},
		{"execute", 1},
		{"page_read", 2},
	}
	if len(lines) != len(want) {
		t.Fatalf("Tree returned %d lines, want %d: %+v", len(lines), len(want), lines)
	}
	for i, w := range want {
		if lines[i].Name != w.name || lines[i].Depth != w.depth {
			t.Errorf("line %d = %q depth %d, want %q depth %d",
				i, lines[i].Name, lines[i].Depth, w.name, w.depth)
		}
	}
}

// TestChromeJSON checks the trace renders as loadable Chrome trace-event
// format: a traceEvents array of complete ("ph":"X") events with
// microsecond timestamps, parse/plan/execute contained in the root.
func TestChromeJSON(t *testing.T) {
	data := mkTracer().ChromeJSON()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("ChromeJSON does not parse: %v\n%s", err, data)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("traceEvents has %d events, want 5", len(doc.TraceEvents))
	}
	byName := map[string][2]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = [2]float64{ev.Ts, ev.Ts + ev.Dur}
	}
	root := byName["statement"]
	for _, child := range []string{"parse", "plan", "execute"} {
		c, ok := byName[child]
		if !ok {
			t.Fatalf("missing %q event", child)
		}
		if c[0] < root[0] || c[1] > root[1] {
			t.Errorf("%q [%g, %g] not contained in statement [%g, %g]",
				child, c[0], c[1], root[0], root[1])
		}
	}
	if exec := byName["execute"]; exec[0] != 20000 || exec[1] != 90000 {
		t.Errorf("execute = [%g, %g] us, want [20000, 90000]", exec[0], exec[1])
	}
}

func TestArmCurrentDisarm(t *testing.T) {
	if Current() != nil {
		t.Fatal("Current() != nil with nothing armed")
	}
	tr := NewTracer()
	disarm := tr.Arm()
	if Current() != tr {
		t.Fatal("Current() did not return the armed tracer")
	}
	// Nested arming: innermost wins, disarm restores.
	inner := NewTracer()
	disarmInner := inner.Arm()
	if Current() != inner {
		t.Fatal("Current() did not return the inner tracer")
	}
	disarmInner()
	if Current() != tr {
		t.Fatal("disarming the inner tracer did not restore the outer")
	}
	disarm()
	if Current() != nil {
		t.Fatal("Current() != nil after disarm")
	}
}

func TestSpanMarkZeroValueNoops(t *testing.T) {
	var tr *Tracer
	m := tr.StartSpan("x", "y") // nil tracer
	m.End()                     // must not panic
	tr.Finish("root")
	tr.AddRange("a", "b", time.Now(), time.Now())
}
