package obs

import "runtime"

// goid returns the current goroutine's id, parsed from the first line of
// a runtime.Stack dump ("goroutine 123 [running]:"). There is no cheap
// public API for this, so the rule throughout the package is that goid
// is only ever called on cold paths: binding a session or tracer to a
// goroutine once per statement, or attributing a wait that has already
// blocked (where the caller is about to sleep on a mutex anyway). Hot
// paths gate every goid lookup behind a single atomic load.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
