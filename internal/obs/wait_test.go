package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWaitSetChargesEvents(t *testing.T) {
	ws := NewWaitSet(nil)
	m := ws.Begin(WaitLockTable)
	time.Sleep(time.Millisecond)
	ns := ws.End(m)
	if ns <= 0 {
		t.Fatalf("End returned %d ns, want > 0", ns)
	}
	count, total := ws.Count(WaitLockTable)
	if count != 1 || total != ns {
		t.Fatalf("Count = (%d, %d), want (1, %d)", count, total, ns)
	}
	if c, _ := ws.Count(WaitBufShard); c != 0 {
		t.Fatalf("unrelated event charged: %d", c)
	}
	ws.Reset()
	if c, n := ws.Count(WaitLockTable); c != 0 || n != 0 {
		t.Fatalf("after Reset Count = (%d, %d), want zeros", c, n)
	}
}

func TestWaitSetNilSafe(t *testing.T) {
	var ws *WaitSet
	m := ws.Begin(WaitWALFsync)
	if got := ws.End(m); got != 0 {
		t.Fatalf("nil WaitSet End = %d, want 0", got)
	}
	ws.Reset()
	if c, n := ws.Count(WaitWALFsync); c != 0 || n != 0 {
		t.Fatalf("nil WaitSet Count = (%d, %d)", c, n)
	}
}

func TestWaitSetRegister(t *testing.T) {
	ws := NewWaitSet(nil)
	r := NewRegistry()
	ws.Register(r)
	ws.End(ws.Begin(WaitIOHeapRead))
	m := make(map[string]int64)
	r.Each(func(name string, value int64) { m[name] = value })
	if m["wait_io_heap_read_total"] != 1 {
		t.Fatalf("wait_io_heap_read_total = %d, want 1", m["wait_io_heap_read_total"])
	}
	if _, ok := m["wait_lock_catalog_total"]; !ok {
		t.Fatal("wait_lock_catalog_total missing from readout")
	}
	for name := range m {
		if strings.Contains(name, "wait_none") {
			t.Fatalf("WaitNone leaked into readout as %q", name)
		}
	}
}

// TestWaitAttributesToSession binds a session to the calling goroutine
// and checks an in-progress wait shows up in the activity snapshot with
// the right event, then clears.
func TestWaitAttributesToSession(t *testing.T) {
	act := NewActivity()
	ws := NewWaitSet(act)
	se := act.Register("test-client")
	se.Begin("SELECT 1")

	m := ws.Begin(WaitWALCommitWait)
	snap := act.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d sessions, want 1", len(snap))
	}
	if snap[0].State != "waiting" || snap[0].WaitEvent != "wal_commit_wait" {
		t.Fatalf("mid-wait snapshot = state %q wait %q", snap[0].State, snap[0].WaitEvent)
	}
	ws.End(m)
	snap = act.Snapshot()
	if snap[0].State != "active" || snap[0].WaitEvent != "none" {
		t.Fatalf("post-wait snapshot = state %q wait %q", snap[0].State, snap[0].WaitEvent)
	}

	se.End()
	if s := act.Snapshot(); s[0].State != "idle" {
		t.Fatalf("post-statement state = %q, want idle", s[0].State)
	}
	se.Close()
	if s := act.Snapshot(); len(s) != 0 {
		t.Fatalf("after Close snapshot has %d sessions, want 0", len(s))
	}
}

// TestWaitOtherGoroutineNotAttributed: a wait on a goroutine with no
// bound session charges the WaitSet but touches no session entry.
func TestWaitOtherGoroutineNotAttributed(t *testing.T) {
	act := NewActivity()
	ws := NewWaitSet(act)
	se := act.Register("c1")
	se.Begin("INSERT ...")
	defer se.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws.End(ws.Begin(WaitBufShard))
	}()
	wg.Wait()

	if c, _ := ws.Count(WaitBufShard); c != 1 {
		t.Fatalf("WaitBufShard count = %d, want 1", c)
	}
	snap := act.Snapshot()
	if snap[0].WaitEvent != "none" || snap[0].State != "active" {
		t.Fatalf("unrelated goroutine's wait leaked onto session: state %q wait %q",
			snap[0].State, snap[0].WaitEvent)
	}
}

func TestActivitySnapshotFields(t *testing.T) {
	act := NewActivity()
	a := act.Register("addr-a")
	b := act.Register("addr-b")
	defer a.Close()
	defer b.Close()
	b.Begin("SELECT * FROM t")
	defer b.End()

	snap := act.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d sessions, want 2", len(snap))
	}
	if snap[0].ID >= snap[1].ID {
		t.Fatalf("snapshot not ordered by id: %d, %d", snap[0].ID, snap[1].ID)
	}
	if snap[0].Client != "addr-a" || snap[0].State != "idle" || snap[0].Statement != "" {
		t.Fatalf("idle session row = %+v", snap[0])
	}
	if snap[1].Statement != "SELECT * FROM t" || snap[1].State != "active" {
		t.Fatalf("active session row = %+v", snap[1])
	}
	if snap[1].StmtElapsed <= 0 {
		t.Fatalf("active session StmtElapsed = %v, want > 0", snap[1].StmtElapsed)
	}
}
