package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one counter, one gauge, and one
// histogram from many goroutines while a reader scrapes — the -race
// pin for the registry's lock-cheap design.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			r.Render(&sb)
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := r.Counter("test_counter")
			g := r.Gauge("test_gauge")
			h := r.Histogram("test_hist")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	if got := r.Counter("test_counter").Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("test_gauge").Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("test_hist").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestRegistryGetOrCreate checks that repeated lookups return the same
// metric instance.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Fatal("Histogram not idempotent")
	}
}

// TestHistogramBucketBoundaries pins the bucket mapping at the exact
// edges: 0, the 1us floor, each power-of-two boundary and one past it,
// and the catch-all.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1},       // first full us
		{2*time.Microsecond - 1, 1}, // still < 2us
		{2 * time.Microsecond, 2},   // 2 full us
		{4*time.Microsecond - 1, 2}, //
		{4 * time.Microsecond, 3},   //
		{time.Millisecond, 10},      // 1000us -> bucket 10 (upper 1024us)
		{time.Second, 20},           // ~1.0486e6 us -> bucket 20
		{time.Hour, histNumBkts},    // catch-all
		{-time.Second, 0},           // negative clamps to 0
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// BucketUpper sanity: bucket i's upper bound is 1us<<i, catch-all
	// reports negative.
	if BucketUpper(0) != time.Microsecond {
		t.Errorf("BucketUpper(0) = %v, want 1us", BucketUpper(0))
	}
	if BucketUpper(3) != 8*time.Microsecond {
		t.Errorf("BucketUpper(3) = %v, want 8us", BucketUpper(3))
	}
	if BucketUpper(histNumBkts) >= 0 {
		t.Errorf("BucketUpper(catch-all) = %v, want negative", BucketUpper(histNumBkts))
	}
}

// TestHistogramQuantiles checks the quantile readout against a known
// distribution: 90 fast samples and 10 slow ones.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond) // bucket 2, upper bound 4us
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Microsecond) // bucket 10, upper bound 1024us
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Quantile(0.50); got != 4*time.Microsecond {
		t.Errorf("p50 = %v, want 4us", got)
	}
	if got := h.Quantile(0.95); got != 1024*time.Microsecond {
		t.Errorf("p95 = %v, want 1024us", got)
	}
	if got := h.Quantile(0.99); got != 1024*time.Microsecond {
		t.Errorf("p99 = %v, want 1024us", got)
	}
	// Sanity on the snapshot wrapper.
	s := h.Snapshot()
	if s.P50 != 4*time.Microsecond || s.P99 != 1024*time.Microsecond {
		t.Errorf("snapshot quantiles = %+v", s)
	}
	wantSum := 90*3*time.Microsecond + 10*900*time.Microsecond
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramEmpty checks that an empty histogram reads as zeros.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should read as zeros")
	}
}

// TestRegistrySampler checks that sampler callbacks contribute to the
// rendered output.
func TestRegistrySampler(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_native").Add(7)
	r.Sample(func(emit func(string, int64)) {
		emit("aa_sampled", 42)
	})
	var sb strings.Builder
	r.Render(&sb)
	got := sb.String()
	want := "aa_sampled 42\nzz_native 7\n"
	if got != want {
		t.Fatalf("Render = %q, want %q", got, want)
	}
}
