// Package obs is the observability substrate shared by every layer of
// the engine: lock-cheap cumulative counters and gauges, fixed-bucket
// latency histograms with quantile readout, and a registry that renders
// everything as expvar-style "name value" text for SHOW STATS, the
// server's STATS verb, and the benchmark harness.
//
// The design rule is that the hot path pays one atomic add and nothing
// else: components obtain *Counter / *Gauge / *Histogram pointers once,
// at construction, and bump them directly. The registry's mutex guards
// only registration and readout, which are cold.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing cumulative count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up or down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets are the upper bounds (inclusive) of the histogram's fixed
// buckets, in nanoseconds: 1us, 2us, 4us, ... doubling up to ~8.6s,
// plus a final catch-all. Powers of two keep Observe branch-free (a
// bit-length computation) and give ~2x resolution at every scale, which
// is enough for p50/p95/p99 readout on query latencies.
const (
	histBase    = 1000 // 1us floor, in ns
	histNumBkts = 24   // 1us << 23 ≈ 8.39s, then +Inf
)

// Histogram accumulates latency observations into fixed power-of-two
// buckets. Observe is wait-free: one atomic add into a bucket plus two
// for the sum/count pair.
type Histogram struct {
	buckets [histNumBkts + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total ns
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	units := n / histBase // full microseconds
	idx := 0
	for units > 0 && idx < histNumBkts {
		units >>= 1
		idx++
	}
	return idx
}

// BucketUpper returns the inclusive upper bound of bucket i, or a
// negative duration for the final catch-all bucket.
func BucketUpper(i int) time.Duration {
	if i >= histNumBkts {
		return -1
	}
	return time.Duration(histBase << i)
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Reset zeroes the histogram (SHOW STATS RESET). Not atomic against
// concurrent Observe — a sample landing mid-reset may survive or vanish,
// which is fine for a monitoring reset.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <=
// 1): the upper edge of the bucket holding the q-th sample. With no
// samples it returns 0. The catch-all bucket reports its lower edge.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [histNumBkts + 1]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i >= histNumBkts {
				return time.Duration(histBase << (histNumBkts - 1))
			}
			return BucketUpper(i)
		}
	}
	return BucketUpper(histNumBkts - 1)
}

// HistogramSnapshot is a point-in-time readout of a Histogram.
type HistogramSnapshot struct {
	Count         int64
	Sum           time.Duration
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Snapshot reads the histogram once and derives the common quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Registry names metrics for readout. Components register once at
// construction and then bump the returned pointers directly; Render and
// Each take the registry mutex but never touch any hot path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// samplers are cold callbacks that export counters maintained
	// elsewhere (e.g. the buffer pool's own atomics) without adding a
	// second increment to their hot paths.
	samplers []func(emit func(name string, value int64))
	// resetHooks run on Reset so components behind samplers (buffer
	// pools, the WAL writer, the wait set) zero their own counters too.
	resetHooks []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Safe for concurrent use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Sample registers a cold readout callback that contributes additional
// name/value pairs to Each and Render — the bridge for components that
// already keep their own atomic counters.
func (r *Registry) Sample(fn func(emit func(name string, value int64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samplers = append(r.samplers, fn)
}

// OnReset registers a callback invoked by Reset, after the registry's
// own metrics are zeroed. Components whose counters reach the readout
// through a sampler register one to participate in SHOW STATS RESET.
func (r *Registry) OnReset(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resetHooks = append(r.resetHooks, fn)
}

// Reset zeroes every cumulative metric — counters and histograms — and
// runs the registered reset hooks, so experiments can measure deltas
// against a running server without restarting it (SHOW STATS RESET, the
// STATS RESET server verb). Gauges are left alone: they are
// instantaneous values (active sessions, open pools) whose truth does
// not reset. Hooks run outside the registry mutex; they may take
// component locks of their own (the storage hook takes the shared
// statement lock), so do not call Reset while holding ShareLock.
func (r *Registry) Reset() {
	r.mu.Lock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, h := range r.histograms {
		h.Reset()
	}
	hooks := r.resetHooks
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Each calls fn for every metric in sorted name order. Histograms
// expand into _count, _sum_ns, _mean_ns, _p50_ns, _p95_ns, _p99_ns.
func (r *Registry) Each(fn func(name string, value int64)) {
	r.mu.Lock()
	type kv struct {
		k string
		v int64
	}
	var rows []kv
	for name, c := range r.counters {
		rows = append(rows, kv{name, c.Load()})
	}
	for name, g := range r.gauges {
		rows = append(rows, kv{name, g.Load()})
	}
	for name, h := range r.histograms {
		s := h.Snapshot()
		rows = append(rows,
			kv{name + "_count", s.Count},
			kv{name + "_sum_ns", int64(s.Sum)},
			kv{name + "_mean_ns", int64(s.Mean)},
			kv{name + "_p50_ns", int64(s.P50)},
			kv{name + "_p95_ns", int64(s.P95)},
			kv{name + "_p99_ns", int64(s.P99)},
		)
	}
	samplers := r.samplers
	r.mu.Unlock()
	for _, s := range samplers {
		s(func(name string, value int64) {
			rows = append(rows, kv{name, value})
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	for _, row := range rows {
		fn(row.k, row.v)
	}
}

// Render writes the registry as expvar-compatible text: one
// "name value" pair per line, sorted by name.
func (r *Registry) Render(w io.Writer) {
	r.Each(func(name string, value int64) {
		fmt.Fprintf(w, "%s %d\n", name, value)
	})
}
