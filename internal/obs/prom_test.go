package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func promLines(t *testing.T, r *Registry) (types map[string]string, values map[string]float64) {
	t.Helper()
	var sb strings.Builder
	WritePrometheus(&sb, r)
	types = make(map[string]string)
	values = make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		values[line[:sp]] = v
	}
	return types, values
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("exec_select_total").Add(7)
	r.Gauge("server_sessions_active").Set(3)
	h := r.Histogram("server_query_latency")
	h.Observe(500 * time.Nanosecond) // bucket 0 (le 1us)
	h.Observe(3 * time.Microsecond)  // bucket 2 (le 4us)
	h.Observe(20 * time.Second)      // catch-all
	r.Sample(func(emit func(string, int64)) {
		emit("wait_buf_shard_total", 9)
		emit("pool_pages", 64)
	})

	types, values := promLines(t, r)

	if types["exec_select_total"] != "counter" || values["exec_select_total"] != 7 {
		t.Errorf("exec_select_total: type %q value %g", types["exec_select_total"], values["exec_select_total"])
	}
	if types["server_sessions_active"] != "gauge" || values["server_sessions_active"] != 3 {
		t.Errorf("server_sessions_active: type %q value %g", types["server_sessions_active"], values["server_sessions_active"])
	}
	// Sampler values fold by the _total convention.
	if types["wait_buf_shard_total"] != "counter" || values["wait_buf_shard_total"] != 9 {
		t.Errorf("wait_buf_shard_total: type %q value %g", types["wait_buf_shard_total"], values["wait_buf_shard_total"])
	}
	if types["pool_pages"] != "gauge" {
		t.Errorf("pool_pages type = %q, want gauge", types["pool_pages"])
	}

	// Histogram: typed histogram, cumulative buckets ending in +Inf ==
	// _count, seconds units.
	if types["server_query_latency_seconds"] != "histogram" {
		t.Fatalf("histogram type = %q", types["server_query_latency_seconds"])
	}
	if got := values[`server_query_latency_seconds_bucket{le="+Inf"}`]; got != 3 {
		t.Errorf("+Inf bucket = %g, want 3", got)
	}
	if got := values["server_query_latency_seconds_count"]; got != 3 {
		t.Errorf("_count = %g, want 3", got)
	}
	if got := values[`server_query_latency_seconds_bucket{le="1e-06"}`]; got != 1 {
		t.Errorf(`le="1e-06" bucket = %g, want 1`, got)
	}
	// Buckets must be cumulative (monotone non-decreasing in le order).
	prev := -1.0
	for i := 0; i < histNumBkts; i++ {
		key := fmt.Sprintf(`server_query_latency_seconds_bucket{le="%g"}`, float64(BucketUpper(i))/1e9)
		v, ok := values[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %g < previous %g: not cumulative", key, v, prev)
		}
		prev = v
	}
	wantSum := (500*time.Nanosecond + 3*time.Microsecond + 20*time.Second).Seconds()
	if got := values["server_query_latency_seconds_sum"]; got < wantSum*0.99 || got > wantSum*1.01 {
		t.Errorf("_sum = %g, want ~%g", got, wantSum)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("exec_select_total")
	g := r.Gauge("server_sessions_active")
	h := r.Histogram("lat")
	c.Add(5)
	g.Set(2)
	h.Observe(time.Millisecond)
	hookRan := false
	r.OnReset(func() { hookRan = true })

	r.Reset()

	if c.Load() != 0 {
		t.Errorf("counter = %d after Reset, want 0", c.Load())
	}
	if g.Load() != 2 {
		t.Errorf("gauge = %d after Reset, want 2 (gauges are instantaneous)", g.Load())
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("histogram = (%d, %v) after Reset, want zeros", h.Count(), h.Sum())
	}
	if !hookRan {
		t.Error("OnReset hook did not run")
	}
}
