package obs

import (
	"sync/atomic"
	"time"
)

// WaitEvent names one blocking point in the engine — the pg_stat_activity
// wait_event taxonomy of this codebase. Every event is observed in two
// places at once: cumulatively in a WaitSet (count + nanoseconds, scraped
// into the metrics registry) and instantaneously on the blocked session's
// activity entry, so SHOW ACTIVITY can answer "what is session 7 blocked
// on right now?".
type WaitEvent int32

const (
	// WaitNone is the zero value: not waiting.
	WaitNone WaitEvent = iota
	// WaitLockCatalog: blocked acquiring the catalog/DDL statement lock
	// (stmtMu). Shared waiters are blocked by in-flight DDL/ANALYZE/
	// CHECKPOINT; an exclusive waiter is blocked by any running statement.
	WaitLockCatalog
	// WaitLockTable: blocked acquiring a per-table reader/writer lock —
	// a reader behind a writer of the same table, or a writer behind
	// anything on the same table.
	WaitLockTable
	// WaitBufShard: blocked acquiring a buffer-pool shard mutex — page
	// lookups hashing to a shard whose mutex another fetch (possibly a
	// miss doing disk I/O) holds.
	WaitBufShard
	// WaitIOHeapRead: reading a heap page from disk on a buffer-pool miss.
	WaitIOHeapRead
	// WaitIOIndexRead: reading an index page from disk on a miss.
	WaitIOIndexRead
	// WaitIOCatalogRead: reading a system-catalog page from disk.
	WaitIOCatalogRead
	// WaitWALFsync: this session is the group-commit leader, inside the
	// WAL write+fsync that covers every follower.
	WaitWALFsync
	// WaitWALCommitWait: a group-commit follower parked on the leader's
	// in-flight fsync.
	WaitWALCommitWait
	// WaitIOPrefetch: a prefetcher worker reading a page from disk ahead
	// of a scan. Charged to the background worker, never to a session.
	WaitIOPrefetch
	// WaitBGWriter: the background writer flushing a dirty page to disk
	// ahead of CHECKPOINT. Charged to the background goroutine.
	WaitBGWriter
	// WaitIORetry: backing off before retrying a page read or write that
	// failed with a transient I/O error. The sleep, not the I/O itself,
	// is charged here; the retried I/O charges its usual event.
	WaitIORetry

	// NumWaitEvents bounds the enum; a WaitSet is a fixed array over it.
	NumWaitEvents
)

var waitEventNames = [NumWaitEvents]string{
	WaitNone:          "none",
	WaitLockCatalog:   "lock_catalog",
	WaitLockTable:     "lock_table",
	WaitBufShard:      "buf_shard",
	WaitIOHeapRead:    "io_heap_read",
	WaitIOIndexRead:   "io_index_read",
	WaitIOCatalogRead: "io_catalog_read",
	WaitWALFsync:      "wal_fsync",
	WaitWALCommitWait: "wal_commit_wait",
	WaitIOPrefetch:    "io_prefetch",
	WaitBGWriter:      "bgwriter_write",
	WaitIORetry:       "io_retry",
}

// String returns the event's registry/display name.
func (e WaitEvent) String() string {
	if e < 0 || e >= NumWaitEvents {
		return "unknown"
	}
	return waitEventNames[e]
}

type waitCell struct {
	count atomic.Int64
	ns    atomic.Int64
}

// WaitSet accumulates per-event wait counts and durations. One WaitSet
// serves the whole database: every component (executor locks, buffer
// pools, the WAL writer) holds a pointer to it and records waits with
// Begin/End. All methods are nil-receiver safe so components built
// standalone (tests, tools) pay one predictable branch and no clock.
//
// The costing rule mirrors the lock-wait counter that predates it:
// lock-style events read the clock only after a try-acquire already
// failed, so the uncontended fast path stays timestamp-free; I/O events
// are timed unconditionally because a disk read dwarfs the clock reads.
type WaitSet struct {
	cells [NumWaitEvents]waitCell
	act   *Activity // optional: live attribution of in-progress waits
}

// NewWaitSet creates a WaitSet. act may be nil; when set, Begin/End also
// flip the calling session's live state to waiting and back.
func NewWaitSet(act *Activity) *WaitSet { return &WaitSet{act: act} }

// WaitMark is an in-progress wait observation returned by Begin.
type WaitMark struct {
	start time.Time
	ev    WaitEvent
	se    *SessionEntry
}

// Begin opens a wait observation: it reads the clock and, when an
// activity table is attached, marks the calling session as waiting on
// ev. Call only when a block is certain (a try-acquire failed) or
// already expensive (disk I/O).
func (ws *WaitSet) Begin(ev WaitEvent) WaitMark {
	if ws == nil {
		return WaitMark{}
	}
	m := WaitMark{start: time.Now(), ev: ev}
	if ws.act != nil {
		if se := ws.act.current(); se != nil {
			se.setWait(ev)
			m.se = se
		}
	}
	return m
}

// End closes a wait observation, charging the elapsed time to the event
// and clearing the session's waiting state. It returns the elapsed
// nanoseconds so callers can feed pre-existing counters without a second
// clock read; a zero mark (nil WaitSet) returns 0.
func (ws *WaitSet) End(m WaitMark) int64 {
	if ws == nil || m.start.IsZero() {
		return 0
	}
	ns := time.Since(m.start).Nanoseconds()
	c := &ws.cells[m.ev]
	c.count.Add(1)
	c.ns.Add(ns)
	if m.se != nil {
		m.se.clearWait()
	}
	return ns
}

// Count returns the cumulative (count, ns) pair for ev.
func (ws *WaitSet) Count(ev WaitEvent) (count, ns int64) {
	if ws == nil {
		return 0, 0
	}
	return ws.cells[ev].count.Load(), ws.cells[ev].ns.Load()
}

// Reset zeroes every cell (SHOW STATS RESET).
func (ws *WaitSet) Reset() {
	if ws == nil {
		return
	}
	for i := range ws.cells {
		ws.cells[i].count.Store(0)
		ws.cells[i].ns.Store(0)
	}
}

// Register joins the WaitSet to a registry readout: each event (other
// than none) contributes wait_<name>_total and wait_<name>_ns_total.
func (ws *WaitSet) Register(r *Registry) {
	r.Sample(func(emit func(name string, value int64)) {
		for ev := WaitNone + 1; ev < NumWaitEvents; ev++ {
			count, ns := ws.Count(ev)
			emit("wait_"+ev.String()+"_total", count)
			emit("wait_"+ev.String()+"_ns_total", ns)
		}
	})
}
