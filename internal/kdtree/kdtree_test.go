package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/storage"
)

func newTree(t testing.TB) *core.Tree {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(8192), 128)
	tr, err := core.Create(bp, New())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(i int) heap.RID { return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)} }

func randPoint(r *rand.Rand) geom.Point {
	return geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
}

func buildRandom(t testing.TB, tr *core.Tree, n int, seed int64) []geom.Point {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = randPoint(r)
		if err := tr.Insert(pts[i], rid(i)); err != nil {
			t.Fatalf("insert %v: %v", pts[i], err)
		}
	}
	return pts
}

func TestPointEncodingRoundTrip(t *testing.T) {
	p := geom.Point{X: -12.5, Y: 1e-17}
	if got := DecodePoint(EncodePoint(p)); !got.Eq(p) {
		t.Fatalf("round trip: %v != %v", got, p)
	}
}

func TestPointMatchAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	pts := buildRandom(t, tr, 5000, 1)
	r := rand.New(rand.NewSource(2))
	probe := func(q geom.Point) {
		want := 0
		for _, p := range pts {
			if p.Eq(q) {
				want++
			}
		}
		rids, err := tr.Lookup(&core.Query{Op: "@", Arg: q})
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != want {
			t.Fatalf("@ %v: got %d, want %d", q, len(rids), want)
		}
	}
	for i := 0; i < 200; i++ {
		probe(pts[r.Intn(len(pts))])
		probe(randPoint(r)) // almost surely absent
	}
}

func TestRangeSearchAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	pts := buildRandom(t, tr, 5000, 3)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		b := geom.MakeBox(r.Float64()*100, r.Float64()*100, r.Float64()*100, r.Float64()*100)
		want := 0
		for _, p := range pts {
			if b.Contains(p) {
				want++
			}
		}
		rids, err := tr.Lookup(&core.Query{Op: "^", Arg: b})
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != want {
			t.Fatalf("^ %v: got %d, want %d", b, len(rids), want)
		}
	}
}

func TestRangeBoundaryInclusive(t *testing.T) {
	tr := newTree(t)
	pts := []geom.Point{{X: 1, Y: 1}, {X: 5, Y: 5}, {X: 9, Y: 9}, {X: 5, Y: 1}, {X: 1, Y: 5}}
	for i, p := range pts {
		if err := tr.Insert(p, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Box borders exactly on stored points: all must be reported.
	rids, err := tr.Lookup(&core.Query{Op: "^", Arg: geom.MakeBox(1, 1, 5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 4 {
		t.Fatalf("inclusive borders: got %d, want 4", len(rids))
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := newTree(t)
	p := geom.Point{X: 42, Y: 7}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(p, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	rids, err := tr.Lookup(&core.Query{Op: "@", Arg: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 500 {
		t.Fatalf("duplicates: got %d, want 500", len(rids))
	}
}

func TestNNAgainstBruteForce(t *testing.T) {
	tr := newTree(t)
	pts := buildRandom(t, tr, 3000, 5)
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		q := randPoint(r)
		k := 1 + r.Intn(64)
		_, _, dists, err := tr.NN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]float64, len(pts))
		for i, p := range pts {
			all[i] = p.Dist(q)
		}
		sort.Float64s(all)
		for i := range dists {
			if dists[i] != all[i] {
				t.Fatalf("trial %d: NN #%d dist %g, brute force %g", trial, i, dists[i], all[i])
			}
		}
	}
}

func TestNNExhaustsIndex(t *testing.T) {
	tr := newTree(t)
	buildRandom(t, tr, 100, 7)
	keys, _, _, err := tr.NN(geom.Point{X: 50, Y: 50}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 100 {
		t.Fatalf("NN over-asked returned %d, want 100", len(keys))
	}
}

func TestDeletePoints(t *testing.T) {
	tr := newTree(t)
	pts := buildRandom(t, tr, 1000, 8)
	for i := 0; i < len(pts); i += 2 {
		n, err := tr.Delete(pts[i], rid(i))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("delete %v removed %d", pts[i], n)
		}
	}
	for i, p := range pts {
		rids, err := tr.Lookup(&core.Query{Op: "@", Arg: p})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rd := range rids {
			if rd == rid(i) {
				found = true
			}
		}
		if i%2 == 0 && found {
			t.Fatalf("deleted point %v still found", p)
		}
		if i%2 == 1 && !found {
			t.Fatalf("surviving point %v lost", p)
		}
	}
}

// Every insert into a bucket-size-1 kd-tree splits, so the tree must stay
// navigable and the node count must track the key count.
func TestStatsBinaryShape(t *testing.T) {
	tr := newTree(t)
	buildRandom(t, tr, 2000, 9)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 2000 {
		t.Fatalf("Keys = %d", st.Keys)
	}
	if st.InnerNodes < 900 {
		t.Fatalf("kd-tree with bucket 1 should have ~n/2 inner nodes, got %d", st.InnerNodes)
	}
	if st.MaxPageHeight > st.MaxNodeHeight {
		t.Fatal("page height exceeds node height")
	}
}
