// Package kdtree instantiates SP-GiST as a disk-based kd-tree over 2-D
// points — the paper's Table 1, right column:
//
//	PathShrink = NeverShrink   NodeShrink = false
//	BucketSize = 1             NoOfSpacePartitions = 2
//	NodePredicate = splitting point, labels = "blank", "left", "right"
//
// Even levels discriminate on X, odd levels on Y. Every inner node stores
// the point that caused its creation in its blank partition, exactly as
// the table describes ("put the old point in a child node with predicate
// blank").
//
// Supported operators (paper Tables 3–4):
//
//	"@"   point equality
//	"^"   range (inside box)
//	"@@"  incremental nearest neighbor by Euclidean distance
package kdtree

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Partition labels.
const (
	LabelSelf  = byte(0) // the splitting point itself ("blank")
	LabelLeft  = byte(1) // coordinate < discriminator
	LabelRight = byte(2) // coordinate >= discriminator
)

// OpClass is the kd-tree instantiation.
type OpClass struct{}

// New returns the kd-tree opclass.
func New() *OpClass { return &OpClass{} }

// Name implements core.OpClass.
func (o *OpClass) Name() string { return "spgist_kdtree" }

// Params implements core.OpClass (paper Table 1).
func (o *OpClass) Params() core.Params {
	return core.Params{
		NumPartitions: 2,
		PathShrink:    core.NeverShrink,
		NodeShrink:    false,
		BucketSize:    1,
		EqualityOp:    "@",
	}
}

// RootRecon implements core.OpClass: the unbounded plane, refined into
// half-plane boxes as the search descends (used by NN distance bounds).
func (o *OpClass) RootRecon() core.Value {
	inf := math.Inf(1)
	return geom.Box{Min: geom.Point{X: -inf, Y: -inf}, Max: geom.Point{X: inf, Y: inf}}
}

// EncodePoint serializes a point in 16 bytes.
func EncodePoint(p geom.Point) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(p.X))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(p.Y))
	return b
}

// DecodePoint parses a point written by EncodePoint.
func DecodePoint(b []byte) geom.Point {
	return geom.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	}
}

// EncodeKey implements core.OpClass.
func (o *OpClass) EncodeKey(v core.Value) []byte { return EncodePoint(v.(geom.Point)) }

// DecodeKey implements core.OpClass.
func (o *OpClass) DecodeKey(b []byte) core.Value { return DecodePoint(b) }

// EncodePred implements core.OpClass.
func (o *OpClass) EncodePred(v core.Value) []byte { return EncodePoint(v.(geom.Point)) }

// DecodePred implements core.OpClass.
func (o *OpClass) DecodePred(b []byte) core.Value { return DecodePoint(b) }

// EncodeLabel implements core.OpClass.
func (o *OpClass) EncodeLabel(v core.Value) []byte { return []byte{v.(byte)} }

// DecodeLabel implements core.OpClass.
func (o *OpClass) DecodeLabel(b []byte) core.Value { return b[0] }

// coord returns the discriminated coordinate at the given level: X on
// even levels, Y on odd (Table 1's "level is odd/even" rule, zero-based).
func coord(p geom.Point, level int) float64 {
	if level%2 == 0 {
		return p.X
	}
	return p.Y
}

// side classifies k against the discriminator point at level.
func side(k, disc geom.Point, level int) byte {
	if k.Eq(disc) {
		return LabelSelf
	}
	if coord(k, level) < coord(disc, level) {
		return LabelLeft
	}
	return LabelRight
}

// childBox clips the parent's bounding box to the partition's half-plane.
func childBox(parent geom.Box, disc geom.Point, level int, label byte) geom.Box {
	switch label {
	case LabelSelf:
		return geom.Box{Min: disc, Max: disc}
	case LabelLeft:
		b := parent
		if level%2 == 0 {
			b.Max.X = disc.X
		} else {
			b.Max.Y = disc.Y
		}
		return b
	default:
		b := parent
		if level%2 == 0 {
			b.Min.X = disc.X
		} else {
			b.Min.Y = disc.Y
		}
		return b
	}
}

// Choose implements core.OpClass.
func (o *OpClass) Choose(in *core.ChooseIn) core.ChooseOut {
	k := in.Key.(geom.Point)
	disc := in.Pred.(geom.Point)
	want := side(k, disc, in.Level)
	for i, l := range in.Labels {
		if l.(byte) == want {
			var recon core.Value
			if box, ok := in.Recon.(geom.Box); ok {
				recon = childBox(box, disc, in.Level, want)
			}
			return core.ChooseOut{
				Action:  core.MatchNode,
				Matches: []core.ChooseMatch{{Entry: i, LevelAdd: 1, Recon: recon}},
			}
		}
	}
	// NodeShrink=false trees create all partitions at split time, so a
	// missing label cannot happen with well-formed data; adding it keeps
	// the opclass total.
	return core.ChooseOut{Action: core.AddNode, NewLabel: want}
}

// PickSplit implements core.OpClass, following Table 1: the first (old)
// point becomes the node predicate and sits in the blank partition; the
// other keys go left or right of it.
func (o *OpClass) PickSplit(in *core.PickSplitIn) core.PickSplitOut {
	disc := in.Keys[0].(geom.Point)
	allSame := true
	mapping := make([][]int, len(in.Keys))
	for i, kv := range in.Keys {
		k := kv.(geom.Point)
		if !k.Eq(disc) {
			allSame = false
		}
		var part int
		switch side(k, disc, in.Level) {
		case LabelSelf:
			part = 0
		case LabelLeft:
			part = 1
		default:
			part = 2
		}
		mapping[i] = []int{part}
	}
	if allSame {
		return core.PickSplitOut{Failed: true} // duplicate points
	}
	out := core.PickSplitOut{
		Pred:      disc,
		Labels:    []core.Value{LabelSelf, LabelLeft, LabelRight},
		Mapping:   mapping,
		LevelAdds: []int{1, 1, 1},
	}
	if box, ok := in.Recon.(geom.Box); ok {
		out.Recons = []core.Value{
			childBox(box, disc, in.Level, LabelSelf),
			childBox(box, disc, in.Level, LabelLeft),
			childBox(box, disc, in.Level, LabelRight),
		}
	}
	return out
}

// InnerConsistent implements core.OpClass for "@" (point equality) and
// "^" (inside box).
func (o *OpClass) InnerConsistent(in *core.InnerIn) core.InnerOut {
	var out core.InnerOut
	disc := in.Pred.(geom.Point)
	follow := func(i int) {
		lb := in.Labels[i].(byte)
		var recon core.Value
		if box, ok := in.Recon.(geom.Box); ok {
			recon = childBox(box, disc, in.Level, lb)
		}
		out.Follow = append(out.Follow, core.InnerFollow{Entry: i, LevelAdd: 1, Recon: recon})
	}
	if in.Query == nil {
		for i := range in.Labels {
			follow(i)
		}
		return out
	}
	switch in.Query.Op {
	case "@":
		q := in.Query.Arg.(geom.Point)
		want := side(q, disc, in.Level)
		for i, l := range in.Labels {
			if l.(byte) == want {
				follow(i)
			}
		}
	case "^":
		q := in.Query.Arg.(geom.Box)
		for i, l := range in.Labels {
			switch l.(byte) {
			case LabelSelf:
				if q.Contains(disc) {
					follow(i)
				}
			case LabelLeft:
				if coord(q.Min, in.Level) < coord(disc, in.Level) {
					follow(i)
				}
			case LabelRight:
				if coord(q.Max, in.Level) >= coord(disc, in.Level) {
					follow(i)
				}
			}
		}
	}
	return out
}

// LeafConsistent implements core.OpClass.
func (o *OpClass) LeafConsistent(q *core.Query, key core.Value, _ int) bool {
	k := key.(geom.Point)
	switch q.Op {
	case "@":
		return k.Eq(q.Arg.(geom.Point))
	case "^":
		return q.Arg.(geom.Box).Contains(k)
	}
	return false
}

// NNInner implements core.NNOpClass: the lower bound for a partition is
// the Euclidean distance from the query point to the partition's bounding
// box.
func (o *OpClass) NNInner(q core.Value, pred core.Value, label core.Value, level int, recon core.Value, parentDist float64) (float64, core.Value, int) {
	qp := q.(geom.Point)
	disc := pred.(geom.Point)
	box := childBox(recon.(geom.Box), disc, level, label.(byte))
	d := box.DistToPoint(qp)
	if d < parentDist {
		d = parentDist // numeric safety: bounds never decrease downward
	}
	return d, box, 1
}

// NNLeaf implements core.NNOpClass.
func (o *OpClass) NNLeaf(q core.Value, key core.Value) float64 {
	return q.(geom.Point).Dist(key.(geom.Point))
}
