package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/pmr"
	"repro/internal/rtree"
)

type segmentRow struct {
	n int

	pmrInsert, rtInsert time.Duration
	pmrExact, rtExact   measured
	pmrRange, rtRange   measured
}

func measureSegmentRow(cfg Config, n int) (segmentRow, error) {
	row := segmentRow{n: n}
	segs := datagen.Segments(n, cfg.Seed, world, 5)
	exactQ := datagen.Sample(segs, cfg.Queries, cfg.Seed+1)
	boxQ := datagen.Boxes(cfg.Queries, cfg.Seed+2, world, 5)

	pq, err := core.Create(cfg.pool(), pmr.New())
	if err != nil {
		return row, err
	}
	start := time.Now()
	for i, s := range segs {
		if err := pq.Insert(s, benchRID(i)); err != nil {
			return row, err
		}
	}
	row.pmrInsert = time.Since(start)
	if pq, err = pq.Repack(cfg.pool()); err != nil {
		return row, err
	}
	sink := 0
	emit := func(_ core.Value, _ heap.RID) bool { sink++; return true }
	row.pmrExact = measure(pq, len(exactQ), func(i int) {
		pq.Scan(&core.Query{Op: "=", Arg: exactQ[i]}, emit)
	})
	row.pmrRange = measure(pq, len(boxQ), func(i int) {
		pq.Scan(&core.Query{Op: "&&", Arg: boxQ[i]}, emit)
	})

	rt, err := rtree.Create(cfg.pool())
	if err != nil {
		return row, err
	}
	start = time.Now()
	for i, s := range segs {
		if err := rt.Insert(s.MBR(), benchRID(i)); err != nil {
			return row, err
		}
	}
	row.rtInsert = time.Since(start)
	// The R-tree indexes MBRs, so exact and window queries recheck the
	// real segment — the executor's lossy-hit recheck, priced in.
	ridToSeg := func(rd heap.RID) geom.Segment {
		return segs[(int(rd.Page)-1)*1000+int(rd.Slot)]
	}
	row.rtExact = measure(rt, len(exactQ), func(i int) {
		q := exactQ[i]
		rt.Search(q.MBR(), func(_ geom.Box, rd heap.RID) bool {
			if ridToSeg(rd).Eq(q) {
				sink++
			}
			return true
		})
	})
	row.rtRange = measure(rt, len(boxQ), func(i int) {
		q := boxQ[i]
		rt.Search(q, func(_ geom.Box, rd heap.RID) bool {
			if ridToSeg(rd).IntersectsBox(q) {
				sink++
			}
			return true
		})
	})
	return row, nil
}

// RunSegments regenerates Figure 15: the PMR quadtree against the R-tree
// over line-segment datasets (paper sizes 250K-4M).
func RunSegments(cfg Config) []Figure {
	cfg = cfg.normalized()
	sizes := cfg.sizes([]int{2500, 5000, 10000, 20000, 40000})
	rows := make([]segmentRow, 0, len(sizes))
	for _, n := range sizes {
		row, err := measureSegmentRow(cfg, n)
		if err != nil {
			panic(fmt.Sprintf("bench segments: %v", err))
		}
		rows = append(rows, row)
	}
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = float64(r.n)
	}

	fig15 := Figure{
		ID: "fig15", Title: "Insertion and search relative performance: R-tree vs PMR quadtree",
		XLabel: "keys", YLabel: "(R-tree/PMR quadtree) x 100",
		Notes: []string{
			"paper: all series below 100 (R-tree wins); insert ratio flat, search gap narrows with size",
		},
	}
	var iY, eY, rY, eIO, rIO []float64
	for _, r := range rows {
		iY = append(iY, 100*ratio(r.rtInsert, r.pmrInsert))
		eY = append(eY, 100*ratio(r.rtExact.t, r.pmrExact.t))
		rY = append(rY, 100*ratio(r.rtRange.t, r.pmrRange.t))
		eIO = append(eIO, 100*pageRatio(r.rtExact, r.pmrExact))
		rIO = append(rIO, 100*pageRatio(r.rtRange, r.pmrRange))
	}
	fig15.Series = []Series{
		{Name: "insert x100", X: xs, Y: iY},
		{Name: "exact x100", X: xs, Y: eY},
		{Name: "range x100", X: xs, Y: rY},
		{Name: "exact io x100", X: xs, Y: eIO},
		{Name: "range io x100", X: xs, Y: rIO},
	}
	fig15.Notes = append(fig15.Notes,
		"time = warm in-memory; io = distinct pages touched per query (cold-I/O proxy, the paper's regime)")
	return []Figure{fig15}
}
