package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/heap"
	"repro/internal/storage"
	"repro/internal/trie"
)

// nonClusteringOpClass disables nothing in the opclass itself — the
// clustering lives in the framework's allocator — so the clustering
// ablation is approximated by a tiny buffer... instead we ablate what we
// can control from outside: the trie's bucket size, which trades leaf
// fan-in against tree depth, and NodeShrink (via a trie variant that
// pre-creates all 27 partitions).

// noShrinkTrie wraps the patricia trie but reports NodeShrink=false and
// pre-creates every partition at split time, reproducing Figure 2(a)'s
// "no node shrink" variant for the ablation.
type noShrinkTrie struct {
	*trie.OpClass
}

func (o noShrinkTrie) Params() core.Params {
	p := o.OpClass.Params()
	p.NodeShrink = false
	return p
}

func (o noShrinkTrie) PickSplit(in *core.PickSplitIn) core.PickSplitOut {
	out := o.OpClass.PickSplit(in)
	if out.Failed {
		return out
	}
	// Extend the label set to the full alphabet + blank so empty
	// partitions persist as entries (NodeShrink=false).
	have := map[byte]int{}
	for i, l := range out.Labels {
		have[l.(byte)] = i
	}
	recon, _ := in.Recon.(string)
	pred := ""
	if out.Pred != nil {
		pred = out.Pred.(string)
	}
	full := []byte{trie.Blank}
	for c := byte('a'); c <= 'z'; c++ {
		full = append(full, c)
	}
	for _, lb := range full {
		if _, ok := have[lb]; ok {
			continue
		}
		out.Labels = append(out.Labels, lb)
		if lb == trie.Blank {
			out.LevelAdds = append(out.LevelAdds, len(pred))
			out.Recons = append(out.Recons, recon+pred)
		} else {
			out.LevelAdds = append(out.LevelAdds, len(pred)+1)
			out.Recons = append(out.Recons, recon+pred+string(lb))
		}
	}
	return out
}

// RunAblation measures design choices the paper calls out:
//
//   - NodeShrink on/off (Figure 2): index size with empty partitions kept;
//   - BucketSize sweep: leaf capacity vs tree height and size;
//   - page size: the clustering's effect on page height.
func RunAblation(cfg Config) []Figure {
	cfg = cfg.normalized()
	n := cfg.sizes([]int{40000})[0]
	words := datagen.Words(n, cfg.Seed)

	build := func(oc core.OpClass, pageSize int) (*core.Tree, core.TreeStats) {
		bp := storage.NewBufferPool(storage.NewMem(pageSize), cfg.PoolPages)
		t, err := core.Create(bp, oc)
		if err != nil {
			panic(fmt.Sprintf("bench ablation: %v", err))
		}
		for i, w := range words {
			if err := t.Insert(w, benchRID(i)); err != nil {
				panic(err)
			}
		}
		st, err := t.Stats()
		if err != nil {
			panic(err)
		}
		return t, st
	}

	// NodeShrink ablation.
	_, shrunk := build(trie.New(), cfg.PageSize)
	_, unshrunk := build(noShrinkTrie{trie.New()}, cfg.PageSize)
	nodeShrink := Figure{
		ID: "ablation-nodeshrink", Title: "NodeShrink on/off (trie, size & height)",
		XLabel: "variant", YLabel: "value",
		Series: []Series{
			{Name: "size MB", X: []float64{1, 2}, Y: []float64{
				float64(shrunk.SizeBytes) / (1 << 20), float64(unshrunk.SizeBytes) / (1 << 20)}},
			{Name: "inner nodes", X: []float64{1, 2}, Y: []float64{
				float64(shrunk.InnerNodes), float64(unshrunk.InnerNodes)}},
			{Name: "page height", X: []float64{1, 2}, Y: []float64{
				float64(shrunk.MaxPageHeight), float64(unshrunk.MaxPageHeight)}},
		},
		Notes: []string{"variant 1 = NodeShrink (Figure 2(b)); variant 2 = keep empty partitions (Figure 2(a))"},
	}

	// Bucket-size sweep.
	buckets := []int{1, 4, 16, 64, 256}
	var bx, bheight, bsize []float64
	for _, b := range buckets {
		_, st := build(trie.New(trie.WithBucketSize(b)), cfg.PageSize)
		bx = append(bx, float64(b))
		bheight = append(bheight, float64(st.MaxNodeHeight))
		bsize = append(bsize, float64(st.SizeBytes)/(1<<20))
	}
	bucket := Figure{
		ID: "ablation-bucket", Title: "BucketSize sweep (trie)",
		XLabel: "bucket size", YLabel: "value",
		Series: []Series{
			{Name: "node height", X: bx, Y: bheight},
			{Name: "size MB", X: bx, Y: bsize},
		},
		Notes: []string{"larger buckets absorb splits: shallower trees, better utilization"},
	}

	// Page-size sweep: page height tracks how many nodes the clustering
	// can co-locate.
	pages := []int{1024, 2048, 4096, 8192, 16384}
	var px, ph, nh []float64
	for _, ps := range pages {
		_, st := build(trie.New(), ps)
		px = append(px, float64(ps))
		ph = append(ph, float64(st.MaxPageHeight))
		nh = append(nh, float64(st.MaxNodeHeight))
	}
	paging := Figure{
		ID: "ablation-pagesize", Title: "Page-size sweep (trie clustering)",
		XLabel: "page size", YLabel: "height",
		Series: []Series{
			{Name: "page height", X: px, Y: ph},
			{Name: "node height", X: px, Y: nh},
		},
		Notes: []string{"bigger pages let the clustering collapse more levels per page"},
	}

	_ = heap.RID{}
	return []Figure{nodeShrink, bucket, paging}
}
