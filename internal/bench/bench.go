// Package bench regenerates every table and figure of the paper's
// evaluation (section 6) at laptop scale. Each experiment builds the
// same index structures over the same workload distributions the paper
// used — only the dataset sizes are scaled down (geometric sweeps
// preserved) — and reports the same series the figure plots: relative
// ratios, log-ratios, heights, sizes, and NN latencies.
//
// All figure axes in the paper are ratios or structural quantities, not
// absolute times, so the reproduction target is the *shape*: who wins,
// by roughly what factor, and where the crossovers fall.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/storage"
)

// Config scales and seeds the experiments.
type Config struct {
	// Scale multiplies every dataset size (1.0 = the scaled-down
	// defaults, roughly 1/100 of the paper's; 100 reproduces the paper's
	// absolute sizes given enough time and memory).
	Scale float64
	// Seed drives all workload generation.
	Seed int64
	// PageSize is the page size for every structure (default 8 KB).
	PageSize int
	// PoolPages is the buffer-pool capacity per structure.
	PoolPages int
	// Queries is the number of probes per measurement.
	Queries int
}

// DefaultConfig returns the defaults used by cmd/spgist-bench.
func DefaultConfig() Config {
	return Config{Scale: 1, Seed: 42, PageSize: storage.DefaultPageSize, PoolPages: 2048, Queries: 200}
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.PageSize <= 0 {
		c.PageSize = storage.DefaultPageSize
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 2048
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c Config) sizes(base []int) []int {
	out := make([]int, len(base))
	for i, b := range base {
		n := int(float64(b) * c.Scale)
		if n < 100 {
			n = 100
		}
		out[i] = n
	}
	return out
}

func (c Config) pool() *storage.BufferPool {
	return storage.NewBufferPool(storage.NewMem(c.PageSize), c.PoolPages)
}

// Series is one plotted line: Y[i] measured at X[i].
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one regenerated table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render prints the figure as an aligned text table.
func (f *Figure) Render(w *strings.Builder) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(w, "  x-axis: %s   y-axis: %s\n", f.XLabel, f.YLabel)
	if len(f.Series) == 0 {
		return
	}
	// Header.
	fmt.Fprintf(w, "  %-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %16s", s.Name)
	}
	w.WriteString("\n")
	for i := range f.Series[0].X {
		fmt.Fprintf(w, "  %-12.0f", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %16.3f", s.Y[i])
			} else {
				fmt.Fprintf(w, " %16s", "-")
			}
		}
		w.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	w.WriteString("\n")
}

// Markdown renders the figure as a markdown table.
func (f *Figure) Markdown(w *strings.Builder) {
	fmt.Fprintf(w, "### %s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(w, "| %s |", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %s |", s.Name)
	}
	w.WriteString("\n|")
	for range f.Series {
		w.WriteString("---|")
	}
	w.WriteString("---|\n")
	for i := range f.Series[0].X {
		fmt.Fprintf(w, "| %.0f |", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %.3f |", s.Y[i])
			} else {
				w.WriteString(" - |")
			}
		}
		w.WriteString("\n")
	}
	w.WriteString("\n")
	for _, n := range f.Notes {
		fmt.Fprintf(w, "*%s*\n\n", n)
	}
}

// pageTracer is implemented by every index structure in this repository.
type pageTracer interface {
	StartPageTrace()
	PageTraceCount() int
}

// measured couples the two cost metrics of one operation: warm wall time
// (the CPU-bound regime of modern in-memory runs) and distinct pages
// touched per query (the page reads a cold run would issue — the
// I/O-bound regime of the paper's 2005 measurements).
type measured struct {
	t     time.Duration
	pages float64
}

// measure times n runs of op, then repeats them under page tracing. The
// two passes keep tracing overhead out of the timings.
func measure(tr pageTracer, n int, op func(i int)) measured {
	d := timeOp(n, op)
	total := 0
	for i := 0; i < n; i++ {
		tr.StartPageTrace()
		op(i)
		total += tr.PageTraceCount()
	}
	return measured{t: d, pages: float64(total) / float64(n)}
}

func pageRatio(num, den measured) float64 {
	if den.pages <= 0 {
		return 0
	}
	return num.pages / den.pages
}

// timeOp measures the average wall time of one operation over n runs.
//
// (Search measurements run on repacked trees: the paper's clustering
// guarantees minimum page-height at all times, while this repository
// maintains a greedy approximation during inserts and restores the
// minimum-height packing with core.Tree.Repack, PostgreSQL-CLUSTER
// style. See repack in the per-experiment files.)
func timeOp(n int, op func(i int)) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		op(i)
	}
	if n == 0 {
		return 0
	}
	return time.Duration(int64(time.Since(start)) / int64(n))
}

// timePerOp measures each run separately (for standard deviations).
func timePerOp(n int, op func(i int)) []time.Duration {
	out := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		op(i)
		out[i] = time.Since(start)
	}
	return out
}

func mean(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var sum float64
	for _, d := range ds {
		sum += d.Seconds()
	}
	return sum / float64(len(ds))
}

func stddev(ds []time.Duration) float64 {
	if len(ds) < 2 {
		return 0
	}
	m := mean(ds)
	var sum float64
	for _, d := range ds {
		diff := d.Seconds() - m
		sum += diff * diff
	}
	return math.Sqrt(sum / float64(len(ds)-1))
}

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Registry of all experiments.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) []Figure
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table7", "External-method code size vs SP-GiST core", RunTable7},
		{"strings", "Figures 6-12: trie vs B+-tree on word data", RunStrings},
		{"points", "Figures 13-14: kd-tree vs R-tree on point data", RunPoints},
		{"segments", "Figure 15: PMR quadtree vs R-tree on segment data", RunSegments},
		{"suffix", "Figure 16: suffix tree vs sequential scan", RunSuffix},
		{"nn", "Figure 17: NN search across SP-GiST instantiations", RunNN},
		{"ablation", "Ablations: clustering, node shrink, bucket size", RunAblation},
		{"latency", "Latency percentiles over the executor (exact, NN, mixed 90/10)", RunLatency},
		{"coldcache", "Cold-cache async I/O: in-flight reads, readahead, background writer", RunColdCache},
	}
}

// Lookup finds an experiment by id, also accepting individual figure ids
// (fig6..fig17) by mapping them to their experiment group.
func Lookup(id string) (Experiment, bool) {
	alias := map[string]string{
		"fig6": "strings", "fig7": "strings", "fig8": "strings", "fig9": "strings",
		"fig10": "strings", "fig11": "strings", "fig12": "strings",
		"fig13": "points", "fig14": "points",
		"fig15": "segments",
		"fig16": "suffix",
		"fig17": "nn",
	}
	if mapped, ok := alias[strings.ToLower(id)]; ok {
		id = mapped
	}
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// sortedCopy returns a sorted copy of times (helper for percentiles).
func sortedCopy(ds []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), ds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// percentile returns the q-quantile (0 < q <= 1) of ds by nearest rank.
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := sortedCopy(ds)
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
