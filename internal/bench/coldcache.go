package bench

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/wal"
)

// Cold-cache I/O benchmark (BENCH_9.json): the buffer pool is sized far
// below the table, every page access carries a simulated device latency,
// and the same workloads run with the async read path on and off.
//
//   - point lookups, 16 workers: the serialColdReads baseline reads
//     under the shard mutex (misses on one shard serialize); the
//     in-flight table overlaps them. Throughput and p99 compare the two.
//   - full-table scans: readahead off vs on (prefetcher pipelines the
//     next window of pages while the current one is decoded).
//   - CHECKPOINT after a dirty burst: background writer off vs on (the
//     trickle during think time shrinks the flush the checkpoint pays).
const (
	coldPoolPages     = 32
	coldReadDelay     = 200 * time.Microsecond
	coldWriteDelay    = 200 * time.Microsecond
	coldLookupWorkers = 16
)

// buildColdDB creates and populates the on-disk database the cold runs
// reopen. Built with a roomy pool and no simulated latency — only the
// measured runs pay the device model. Stats are persisted by ANALYZE so
// cold reopens plan index scans without resampling the heap.
func buildColdDB(dir string, rows int) {
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncLazy})
	if err != nil {
		panic(err)
	}
	words, err := db.CreateTable("cold_words", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		panic(err)
	}
	if _, err := db.CreateIndex("cold_words_trie", "cold_words", "name", "spgist", "spgist_trie"); err != nil {
		panic(err)
	}
	batch := make([]catalog.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, catalog.Tuple{
			catalog.NewText(fmt.Sprintf("word%07d", i)), catalog.NewInt(int64(i)),
		})
	}
	if _, err := words.InsertBatch(batch); err != nil {
		panic(err)
	}
	if err := words.Analyze(); err != nil {
		panic(err)
	}
	if err := db.Checkpoint(); err != nil {
		panic(err)
	}
	if err := db.Close(); err != nil {
		panic(err)
	}
}

// coldPointLookups reopens the database cold (pool ≪ table, simulated
// read latency) and hammers exact-match index lookups from concurrent
// workers. serial toggles the legacy read-under-shard-lock miss path.
func coldPointLookups(cfg Config, dir string, rows int, serial bool) []time.Duration {
	db, err := executor.Open(executor.Options{
		Dir: dir, WAL: true, WALSync: wal.SyncLazy,
		PoolPages:       coldPoolPages,
		DiskReadLatency: coldReadDelay,
		SerialColdReads: serial,
		ReadaheadPages:  -1, // isolate the in-flight table from readahead
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	words, err := db.Table("cold_words")
	if err != nil {
		panic(err)
	}
	perWorker := cfg.Queries / 2
	if perWorker < 20 {
		perWorker = 20
	}
	parts := make([][]time.Duration, coldLookupWorkers)
	var wg sync.WaitGroup
	for w := 0; w < coldLookupWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			parts[w] = timePerOp(perWorker, func(i int) {
				pred := &executor.Pred{Column: 0, Op: "=", Arg: catalog.NewText(fmt.Sprintf("word%07d", rng.Intn(rows)))}
				if _, err := words.Select(pred, func(executor.Row) bool { return true }); err != nil {
					panic(err)
				}
			})
		}(w)
	}
	wg.Wait()
	var all []time.Duration
	for _, p := range parts {
		all = append(all, p...)
	}
	return all
}

// coldScans reopens the database cold and times full-table heap scans,
// with the scan readahead window on or off.
func coldScans(cfg Config, dir string, readahead bool) []time.Duration {
	ra := -1
	if readahead {
		ra = executor.DefaultReadaheadPages
	}
	db, err := executor.Open(executor.Options{
		Dir: dir, WAL: true, WALSync: wal.SyncLazy,
		PoolPages:       coldPoolPages,
		DiskReadLatency: coldReadDelay,
		ReadaheadPages:  ra,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	words, err := db.Table("cold_words")
	if err != nil {
		panic(err)
	}
	scans := cfg.Queries / 25
	if scans < 6 {
		scans = 6
	}
	return timePerOp(scans, func(i int) {
		n := 0
		if _, err := words.Select(nil, func(executor.Row) bool { n++; return true }); err != nil {
			panic(err)
		}
	})
}

// coldCheckpoints measures CHECKPOINT duration after a burst of inserts
// dirties the pool, with the background writer off or trickling during
// the think-time pause between the burst and the checkpoint. The pause
// is identical in both runs — the only difference is whether anyone
// uses it.
func coldCheckpoints(cfg Config, bgwriter bool) []time.Duration {
	dir, err := os.MkdirTemp("", "spgist-coldckpt-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	opts := executor.Options{
		Dir: dir, WAL: true, WALSync: wal.SyncLazy,
		PoolPages:        512,
		DiskWriteLatency: coldWriteDelay,
	}
	if bgwriter {
		opts.BGWriterInterval = 3 * time.Millisecond
		opts.BGWriterMaxPages = 64
	}
	db, err := executor.Open(opts)
	if err != nil {
		panic(err)
	}
	defer db.Close()
	t, err := db.CreateTable("cold_ckpt", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		panic(err)
	}
	const rounds = 4
	burst := cfg.sizes([]int{8000})[0]
	next := 0
	// Only the CHECKPOINT itself is timed; the burst and the pause are
	// the identical workload both configurations run.
	out := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		batch := make([]catalog.Tuple, 0, burst)
		for j := 0; j < burst; j++ {
			batch = append(batch, catalog.Tuple{
				catalog.NewText(fmt.Sprintf("row%08d", next)), catalog.NewInt(int64(next)),
			})
			next++
		}
		if _, err := t.InsertBatch(batch); err != nil {
			panic(err)
		}
		time.Sleep(150 * time.Millisecond) // think time the trickle can use
		start := time.Now()
		if err := db.Checkpoint(); err != nil {
			panic(err)
		}
		out = append(out, time.Since(start))
	}
	return out
}

// RunColdCacheReport produces the BENCH_9.json payload: cold-cache
// point-lookup throughput and p99 with the miss path serialized vs
// overlapped through the in-flight read table, full-scan latency with
// readahead off vs on, and CHECKPOINT duration with the background
// writer off vs on.
func RunColdCacheReport(cfg Config) (*LatencyReport, []Figure) {
	cfg = cfg.normalized()
	rows := cfg.sizes([]int{20000})[0]

	dir, err := os.MkdirTemp("", "spgist-coldcache-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	buildColdDB(dir, rows)

	serialLookups := coldPointLookups(cfg, dir, rows, true)
	asyncLookups := coldPointLookups(cfg, dir, rows, false)
	scanOff := coldScans(cfg, dir, false)
	scanOn := coldScans(cfg, dir, true)
	ckptOff := coldCheckpoints(cfg, false)
	ckptOn := coldCheckpoints(cfg, true)

	report := &LatencyReport{
		PR: 9,
		Description: fmt.Sprintf(
			"cold-cache async I/O: %d workers of exact-match lookups over a %d-row trie-indexed table through a %d-page pool with %v simulated read latency (serialized misses vs in-flight read table), full-table scans with readahead off/on, and CHECKPOINT after a dirty burst with the background writer off/on (%v simulated write latency)",
			coldLookupWorkers, rows, coldPoolPages, coldReadDelay, coldWriteDelay),
		Command: "spgist-bench -exp coldcache -out BENCH_9.json",
		Environment: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"pkg":    "repro/internal/bench",
			"cpu":    fmt.Sprintf("%d logical CPUs", runtime.NumCPU()),
		},
		Workloads: []LatencyRow{
			latencyRow("cold_lookup_serialized", serialLookups),
			latencyRow("cold_lookup_inflight", asyncLookups),
			latencyRow("cold_scan_readahead_off", scanOff),
			latencyRow("cold_scan_readahead_on", scanOn),
			latencyRow("checkpoint_bgwriter_off", ckptOff),
			latencyRow("checkpoint_bgwriter_on", ckptOn),
		},
	}

	fig := Figure{
		ID:     "coldcache",
		Title:  "Cold-cache async I/O: serialized vs overlapped reads",
		XLabel: "workload#",
		YLabel: "latency (ms)",
	}
	p50 := Series{Name: "p50 ms"}
	p99 := Series{Name: "p99 ms"}
	ops := Series{Name: "ops/s"}
	for i, row := range report.Workloads {
		x := float64(i)
		p50.X, p50.Y = append(p50.X, x), append(p50.Y, float64(row.P50Ns)/1e6)
		p99.X, p99.Y = append(p99.X, x), append(p99.Y, float64(row.P99Ns)/1e6)
		ops.X, ops.Y = append(ops.X, x), append(ops.Y, row.OpsPerSec)
		fig.Notes = append(fig.Notes, fmt.Sprintf("workload %d = %s (%d ops, %.0f ops/s)", i, row.Name, row.Ops, row.OpsPerSec))
	}
	if len(serialLookups) > 0 && len(asyncLookups) > 0 {
		s, a := latencyRow("s", serialLookups), latencyRow("a", asyncLookups)
		if s.OpsPerSec > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf("in-flight table speedup: %.2fx throughput over serialized misses", a.OpsPerSec/s.OpsPerSec))
		}
	}
	fig.Series = []Series{p50, p99, ops}
	return report, []Figure{fig}
}

// RunColdCache adapts RunColdCacheReport to the experiment registry.
func RunColdCache(cfg Config) []Figure {
	_, figs := RunColdCacheReport(cfg)
	return figs
}
