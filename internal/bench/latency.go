package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/geom"
)

// LatencyRow is one workload's latency distribution in BENCH_6.json.
type LatencyRow struct {
	Name      string  `json:"name"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	MeanNs    float64 `json:"mean_ns"`
	P50Ns     int64   `json:"p50_ns"`
	P95Ns     int64   `json:"p95_ns"`
	P99Ns     int64   `json:"p99_ns"`
}

// LatencyReport is the BENCH_6.json payload: per-workload latency
// percentiles over the executor, including a concurrent mixed
// 90/10 read/write run.
type LatencyReport struct {
	PR          int               `json:"pr"`
	Description string            `json:"description"`
	Command     string            `json:"command"`
	Environment map[string]string `json:"environment"`
	Workloads   []LatencyRow      `json:"workloads"`
}

// latencyRow reduces raw per-op durations to a report row.
func latencyRow(name string, ds []time.Duration) LatencyRow {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	row := LatencyRow{
		Name:   name,
		Ops:    len(ds),
		MeanNs: mean(ds) * 1e9,
		P50Ns:  int64(percentile(ds, 0.50)),
		P95Ns:  int64(percentile(ds, 0.95)),
		P99Ns:  int64(percentile(ds, 0.99)),
	}
	if sum > 0 {
		row.OpsPerSec = float64(len(ds)) / sum.Seconds()
	}
	return row
}

// RunLatencyReport measures per-operation latency distributions over
// the full executor (planner, locks, metrics) rather than the bare
// index structures the paper figures use: an exact-match read workload
// on a trie-indexed word table, a k-NN workload on a kd-tree-indexed
// point table, and a concurrent mixed workload of 90% exact reads and
// 10% single-row inserts racing across GOMAXPROCS-bounded workers.
func RunLatencyReport(cfg Config) (*LatencyReport, []Figure) {
	cfg = cfg.normalized()
	rows := cfg.sizes([]int{20000})[0]
	reads := cfg.Queries * 10
	nnOps := cfg.Queries * 2
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Word table with a trie index, analyzed so equality plans as an
	// index scan (the same shape TestExplainAnalyzeMatchesPageTrace pins).
	db := executor.OpenMemory()
	words, err := db.CreateTable("bench_words", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		panic(err)
	}
	if _, err := db.CreateIndex("bench_words_trie", "bench_words", "name", "spgist", "spgist_trie"); err != nil {
		panic(err)
	}
	batch := make([]catalog.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, catalog.Tuple{
			catalog.NewText(fmt.Sprintf("word%07d", i)), catalog.NewInt(int64(i)),
		})
	}
	if _, err := words.InsertBatch(batch); err != nil {
		panic(err)
	}
	if err := words.Analyze(); err != nil {
		panic(err)
	}

	exact := timePerOp(reads, func(i int) {
		pred := &executor.Pred{Column: 0, Op: "=", Arg: catalog.NewText(fmt.Sprintf("word%07d", rng.Intn(rows)))}
		if _, err := words.Select(pred, func(executor.Row) bool { return true }); err != nil {
			panic(err)
		}
	})

	// Point table with a kd-tree index for the k-NN workload.
	pts, err := db.CreateTable("bench_pts", []executor.Column{{Name: "p", Type: catalog.Point}})
	if err != nil {
		panic(err)
	}
	if _, err := db.CreateIndex("bench_pts_kd", "bench_pts", "p", "spgist", "spgist_kdtree"); err != nil {
		panic(err)
	}
	pbatch := make([]catalog.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		pbatch = append(pbatch, catalog.Tuple{
			catalog.NewPoint(geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}),
		})
	}
	if _, err := pts.InsertBatch(pbatch); err != nil {
		panic(err)
	}
	nn := timePerOp(nnOps, func(i int) {
		q := catalog.NewPoint(geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		if _, _, err := pts.SelectNN("p", q, 10); err != nil {
			panic(err)
		}
	})

	// Mixed 90/10 read/write: workers race exact reads against
	// single-row inserts on the same trie-indexed table, so the
	// percentiles include lock waits and index-maintenance tails.
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	if workers < 2 {
		workers = 2 // always an actual read/write race
	}
	perWorker := (cfg.Queries * 10) / workers
	mixedParts := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))
			next := rows + w*perWorker
			mixedParts[w] = timePerOp(perWorker, func(i int) {
				if wrng.Intn(10) == 0 { // 10% writes
					tup := catalog.Tuple{
						catalog.NewText(fmt.Sprintf("word%07d", next)), catalog.NewInt(int64(next)),
					}
					next++
					if _, err := words.Insert(tup); err != nil {
						panic(err)
					}
					return
				}
				pred := &executor.Pred{Column: 0, Op: "=", Arg: catalog.NewText(fmt.Sprintf("word%07d", wrng.Intn(rows)))}
				if _, err := words.Select(pred, func(executor.Row) bool { return true }); err != nil {
					panic(err)
				}
			})
		}(w)
	}
	wg.Wait()
	var mixed []time.Duration
	for _, part := range mixedParts {
		mixed = append(mixed, part...)
	}

	report := &LatencyReport{
		PR: 7,
		Description: fmt.Sprintf(
			"executor-level latency percentiles: exact-match reads over a %d-row trie-indexed table, 10-NN over a %d-point kd-tree, and a %d-worker mixed 90%%/10%% read/write run",
			rows, rows, workers),
		Command: "spgist-bench -exp latency -out BENCH_7.json",
		Environment: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"pkg":    "repro/internal/bench",
			"cpu":    fmt.Sprintf("%d logical CPUs", runtime.NumCPU()),
		},
		Workloads: []LatencyRow{
			latencyRow("exact_match_read", exact),
			latencyRow("nn_search_k10", nn),
			latencyRow("mixed_rw_90_10", mixed),
		},
	}

	fig := Figure{
		ID:     "latency",
		Title:  "Operation latency percentiles over the executor",
		XLabel: "workload#",
		YLabel: "latency (ms)",
	}
	p50 := Series{Name: "p50 ms"}
	p95 := Series{Name: "p95 ms"}
	p99 := Series{Name: "p99 ms"}
	for i, row := range report.Workloads {
		x := float64(i)
		p50.X, p50.Y = append(p50.X, x), append(p50.Y, float64(row.P50Ns)/1e6)
		p95.X, p95.Y = append(p95.X, x), append(p95.Y, float64(row.P95Ns)/1e6)
		p99.X, p99.Y = append(p99.X, x), append(p99.Y, float64(row.P99Ns)/1e6)
		fig.Notes = append(fig.Notes, fmt.Sprintf("workload %d = %s (%d ops, %.0f ops/s)", i, row.Name, row.Ops, row.OpsPerSec))
	}
	fig.Series = []Series{p50, p95, p99}
	return report, []Figure{fig}
}

// RunLatency adapts RunLatencyReport to the experiment registry.
func RunLatency(cfg Config) []Figure {
	_, figs := RunLatencyReport(cfg)
	return figs
}
