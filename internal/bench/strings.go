package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/heap"
	"repro/internal/storage"
	"repro/internal/trie"
)

// stringRow carries every measurement of one dataset size, from which
// Figures 6-12 derive.
type stringRow struct {
	n int

	trieInsert, btreeInsert time.Duration // total build time
	trieExact, btreeExact   measured
	triePrefix, btreePrefix measured
	trieRegex, btreeRegex   measured
	trieExactStd            float64 // seconds
	trieSize, btreeSize     int64
	trieNodeH, btreeNodeH   int
	triePageH, btreePageH   int
	trieRepackH             int // page height after min-height repacking
}

func benchRID(i int) heap.RID {
	return heap.RID{Page: storage.PageID(1 + i/1000), Slot: uint16(i % 1000)}
}

// buildTrie loads words into a fresh SP-GiST patricia trie.
func buildTrie(cfg Config, words []string) (*core.Tree, time.Duration, error) {
	tr, err := core.Create(cfg.pool(), trie.New())
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for i, w := range words {
		if err := tr.Insert(w, benchRID(i)); err != nil {
			return nil, 0, err
		}
	}
	return tr, time.Since(start), nil
}

// buildBTree loads words into a fresh B+-tree.
func buildBTree(cfg Config, words []string) (*btree.Tree, time.Duration, error) {
	bt, err := btree.Create(cfg.pool())
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for i, w := range words {
		if err := bt.Insert([]byte(w), benchRID(i)); err != nil {
			return nil, 0, err
		}
	}
	return bt, time.Since(start), nil
}

func measureStringRow(cfg Config, n int) (stringRow, error) {
	row := stringRow{n: n}
	words := datagen.Words(n, cfg.Seed)
	exactQ := datagen.Sample(words, cfg.Queries, cfg.Seed+1)
	prefixQ := datagen.Prefixes(words, cfg.Queries, cfg.Seed+2)
	regexQ := datagen.Patterns(words, cfg.Queries, 0.3, cfg.Seed+3)

	built, tIns, err := buildTrie(cfg, words)
	if err != nil {
		return row, err
	}
	row.trieInsert = tIns
	// Searches run on the min-page-height packing the paper's clustering
	// maintains (Repack = offline Diwan-style packing).
	tr, err := built.Repack(cfg.pool())
	if err != nil {
		return row, err
	}
	sink := 0
	emit := func(_ core.Value, _ heap.RID) bool { sink++; return true }
	exactTimes := timePerOp(len(exactQ), func(i int) {
		tr.Scan(&core.Query{Op: "=", Arg: exactQ[i]}, emit)
	})
	row.trieExactStd = stddev(exactTimes)
	row.trieExact = measure(tr, len(exactQ), func(i int) {
		tr.Scan(&core.Query{Op: "=", Arg: exactQ[i]}, emit)
	})
	row.triePrefix = measure(tr, len(prefixQ), func(i int) {
		tr.Scan(&core.Query{Op: "#=", Arg: prefixQ[i]}, emit)
	})
	row.trieRegex = measure(tr, len(regexQ), func(i int) {
		tr.Scan(&core.Query{Op: "?=", Arg: regexQ[i]}, emit)
	})
	st, err := built.Stats()
	if err != nil {
		return row, err
	}
	row.trieSize = st.SizeBytes
	row.trieNodeH = st.MaxNodeHeight
	row.triePageH = st.MaxPageHeight
	rst, err := tr.Stats()
	if err != nil {
		return row, err
	}
	row.trieRepackH = rst.MaxPageHeight

	bt, bIns, err := buildBTree(cfg, words)
	if err != nil {
		return row, err
	}
	row.btreeInsert = bIns
	bemit := func(_ []byte, _ heap.RID) bool { sink++; return true }
	row.btreeExact = measure(bt, len(exactQ), func(i int) {
		bt.Search([]byte(exactQ[i]), func(heap.RID) bool { sink++; return true })
	})
	row.btreePrefix = measure(bt, len(prefixQ), func(i int) {
		bt.PrefixScan([]byte(prefixQ[i]), bemit)
	})
	row.btreeRegex = measure(bt, len(regexQ), func(i int) {
		bt.MatchScan(regexQ[i], trie.MatchPattern, bemit)
	})
	row.btreeSize = bt.SizeBytes()
	row.btreeNodeH = bt.Height()
	row.btreePageH = bt.Height() // one B+-tree node per page
	return row, nil
}

// RunStrings regenerates Figures 6-12: the patricia trie against the
// B+-tree over word datasets (paper sizes 500K-32M keys, scaled).
func RunStrings(cfg Config) []Figure {
	cfg = cfg.normalized()
	// The paper sweeps 500K..32M for insert/size/height and 2M..32M for
	// the search figures; one sweep serves both (prefix of sizes).
	sizes := cfg.sizes([]int{5000, 10000, 20000, 40000, 80000, 160000, 320000})
	rows := make([]stringRow, 0, len(sizes))
	for _, n := range sizes {
		row, err := measureStringRow(cfg, n)
		if err != nil {
			panic(fmt.Sprintf("bench strings: %v", err))
		}
		rows = append(rows, row)
	}
	searchRows := rows[2:] // paper's search figures start at 2M of 500K..32M

	xs := func(rs []stringRow) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = float64(r.n)
		}
		return out
	}

	fig6 := Figure{
		ID: "fig6", Title: "Search time relative performance: B+-tree vs patricia trie",
		XLabel: "keys", YLabel: "(B-tree/trie) x 100",
		Notes: []string{
			"paper: exact match >150 (trie wins), prefix match <100 (B+-tree wins)",
		},
	}
	var exactY, prefixY, exactIO, prefixIO []float64
	for _, r := range searchRows {
		exactY = append(exactY, 100*ratio(r.btreeExact.t, r.trieExact.t))
		prefixY = append(prefixY, 100*ratio(r.btreePrefix.t, r.triePrefix.t))
		exactIO = append(exactIO, 100*pageRatio(r.btreeExact, r.trieExact))
		prefixIO = append(prefixIO, 100*pageRatio(r.btreePrefix, r.triePrefix))
	}
	fig6.Series = []Series{
		{Name: "exact x100", X: xs(searchRows), Y: exactY},
		{Name: "prefix x100", X: xs(searchRows), Y: prefixY},
		{Name: "exact io x100", X: xs(searchRows), Y: exactIO},
		{Name: "prefix io x100", X: xs(searchRows), Y: prefixIO},
	}
	fig6.Notes = append(fig6.Notes,
		"time = warm in-memory; io = distinct pages touched per query (cold-I/O proxy, the paper's regime)")

	fig7 := Figure{
		ID: "fig7", Title: "Regular-expression search: B+-tree vs patricia trie",
		XLabel: "keys", YLabel: "log10(B-tree/trie)",
		Notes: []string{"paper: more than 2 orders of magnitude (log10 > 2)"},
	}
	var regexY, regexIO []float64
	for _, r := range searchRows {
		regexY = append(regexY, math.Log10(ratio(r.btreeRegex.t, r.trieRegex.t)))
		regexIO = append(regexIO, math.Log10(pageRatio(r.btreeRegex, r.trieRegex)))
	}
	fig7.Series = []Series{
		{Name: "log10 time", X: xs(searchRows), Y: regexY},
		{Name: "log10 io", X: xs(searchRows), Y: regexIO},
	}

	fig8 := Figure{
		ID: "fig8", Title: "Trie exact-match search time standard deviation",
		XLabel: "keys", YLabel: "stddev (ms)",
		Notes: []string{"paper: small and slowly growing (1.5-4 ms at server scale)"},
	}
	var stdY []float64
	for _, r := range searchRows {
		stdY = append(stdY, r.trieExactStd*1000)
	}
	fig8.Series = []Series{{Name: "stddev ms", X: xs(searchRows), Y: stdY}}

	fig9 := Figure{
		ID: "fig9", Title: "Insert time relative performance: B+-tree vs trie",
		XLabel: "keys", YLabel: "(B-tree/trie) x 100",
		Notes: []string{"paper: well below 100 (B+-tree inserts faster); declines with size"},
	}
	var insY []float64
	for _, r := range rows {
		insY = append(insY, 100*ratio(r.btreeInsert, r.trieInsert))
	}
	fig9.Series = []Series{{Name: "insert x100", X: xs(rows), Y: insY}}

	fig10 := Figure{
		ID: "fig10", Title: "Relative index size: B+-tree vs trie",
		XLabel: "keys", YLabel: "(B-tree/trie) x 100",
		Notes: []string{"paper: below 100 (trie is larger); declines with size"},
	}
	var sizeY []float64
	for _, r := range rows {
		sizeY = append(sizeY, 100*float64(r.btreeSize)/float64(r.trieSize))
	}
	fig10.Series = []Series{{Name: "size x100", X: xs(rows), Y: sizeY}}

	fig11 := Figure{
		ID: "fig11", Title: "Maximum tree height in nodes",
		XLabel: "keys", YLabel: "max height (nodes)",
		Notes: []string{"paper: trie much taller (unbalanced, ~7-8) than B+-tree (~3)"},
	}
	var tnh, bnh []float64
	for _, r := range rows {
		tnh = append(tnh, float64(r.trieNodeH))
		bnh = append(bnh, float64(r.btreeNodeH))
	}
	fig11.Series = []Series{
		{Name: "B-tree", X: xs(rows), Y: bnh},
		{Name: "SP-GiST trie", X: xs(rows), Y: tnh},
	}

	fig12 := Figure{
		ID: "fig12", Title: "Maximum tree height in pages",
		XLabel: "keys", YLabel: "max height (pages)",
		Notes: []string{"paper: nearly equal page heights — the clustering works"},
	}
	var tph, bph, rph []float64
	for _, r := range rows {
		tph = append(tph, float64(r.triePageH))
		bph = append(bph, float64(r.btreePageH))
		rph = append(rph, float64(r.trieRepackH))
	}
	fig12.Series = []Series{
		{Name: "B-tree", X: xs(rows), Y: bph},
		{Name: "trie (insert)", X: xs(rows), Y: tph},
		{Name: "trie (repack)", X: xs(rows), Y: rph},
	}
	fig12.Notes = append(fig12.Notes,
		"insert = greedy insert-time clustering; repack = offline min-page-height packing (the paper's guarantee)")

	return []Figure{fig6, fig7, fig8, fig9, fig10, fig11, fig12}
}
