package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/heap"
	"repro/internal/suffix"
)

// RunSuffix regenerates Figure 16: substring-match search through the
// SP-GiST suffix tree against a sequential scan of the heap relation (no
// other access method supports substring match at all).
func RunSuffix(cfg Config) []Figure {
	cfg = cfg.normalized()
	sizes := cfg.sizes([]int{2500, 5000, 10000, 20000, 40000})
	xs := make([]float64, 0, len(sizes))
	ys := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		words := datagen.Words(n, cfg.Seed)
		subQ := datagen.Substrings(words, cfg.Queries, cfg.Seed+1)

		// The heap relation the sequential scan reads.
		hf, err := heap.Create(cfg.pool())
		if err != nil {
			panic(fmt.Sprintf("bench suffix: %v", err))
		}
		for i, w := range words {
			tup := catalog.Tuple{catalog.NewText(w), catalog.NewInt(int64(i))}
			if _, err := hf.Insert(catalog.EncodeTuple(tup)); err != nil {
				panic(fmt.Sprintf("bench suffix: %v", err))
			}
		}

		// The suffix tree.
		st, err := core.Create(cfg.pool(), suffix.New())
		if err != nil {
			panic(fmt.Sprintf("bench suffix: %v", err))
		}
		for i, w := range words {
			if err := suffix.InsertWord(st, w, benchRID(i)); err != nil {
				panic(fmt.Sprintf("bench suffix: %v", err))
			}
		}
		if st, err = st.Repack(cfg.pool()); err != nil {
			panic(fmt.Sprintf("bench suffix: %v", err))
		}

		sink := 0
		seqTime := timeOp(len(subQ), func(i int) {
			q := subQ[i]
			hf.Scan(func(_ heap.RID, rec []byte) bool {
				tup, _ := catalog.DecodeTuple(rec)
				if strings.Contains(tup[0].S, q) {
					sink++
				}
				return true
			})
		})
		sfxTime := timeOp(len(subQ), func(i int) {
			st.Scan(suffix.SubstringQuery(subQ[i]), func(_ core.Value, _ heap.RID) bool {
				sink++
				return true
			})
		})
		xs = append(xs, float64(n))
		ys = append(ys, math.Log10(ratio(seqTime, sfxTime)))
		_ = time.Now
	}
	return []Figure{{
		ID: "fig16", Title: "Substring match: sequential scan vs suffix tree",
		XLabel: "keys", YLabel: "log10(sequential/suffix-tree)",
		Series: []Series{{Name: "log10 ratio", X: xs, Y: ys}},
		Notes: []string{
			"paper: more than 3 orders of magnitude at 4M keys; grows with relation size",
		},
	}}
}
