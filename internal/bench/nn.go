package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/pquad"
	"repro/internal/trie"
)

// RunNN regenerates Figure 17: incremental NN search latency over three
// SP-GiST instantiations (kd-tree, point quadtree, patricia trie), with
// the number of requested neighbors swept 8..1024 over a fixed relation
// (paper: 2M tuples; scaled).
func RunNN(cfg Config) []Figure {
	cfg = cfg.normalized()
	n := cfg.sizes([]int{20000})[0]
	ks := []int{8, 16, 32, 64, 128, 256, 512, 1024}

	pts := datagen.Points(n, cfg.Seed, world)
	words := datagen.Words(n, cfg.Seed+1)
	pQ := datagen.Points(cfg.Queries, cfg.Seed+2, world)
	wQ := datagen.Words(cfg.Queries, cfg.Seed+3)

	kd, err := core.Create(cfg.pool(), kdtree.New())
	if err != nil {
		panic(fmt.Sprintf("bench nn: %v", err))
	}
	pq, err := core.Create(cfg.pool(), pquad.New())
	if err != nil {
		panic(fmt.Sprintf("bench nn: %v", err))
	}
	for i, p := range pts {
		if err := kd.Insert(p, benchRID(i)); err != nil {
			panic(err)
		}
		if err := pq.Insert(p, benchRID(i)); err != nil {
			panic(err)
		}
	}
	tr, err := core.Create(cfg.pool(), trie.New())
	if err != nil {
		panic(fmt.Sprintf("bench nn: %v", err))
	}
	for i, w := range words {
		if err := tr.Insert(w, benchRID(i)); err != nil {
			panic(err)
		}
	}
	if kd, err = kd.Repack(cfg.pool()); err != nil {
		panic(err)
	}
	if pq, err = pq.Repack(cfg.pool()); err != nil {
		panic(err)
	}
	if tr, err = tr.Repack(cfg.pool()); err != nil {
		panic(err)
	}

	// A smaller probe count keeps the k=1024 sweep fast.
	probes := cfg.Queries / 10
	if probes < 5 {
		probes = 5
	}
	nnTime := func(t *core.Tree, k int, query func(i int) core.Value) float64 {
		d := timeOp(probes, func(i int) {
			t.NN(query(i), k)
		})
		return float64(d) / float64(time.Millisecond)
	}

	xs := make([]float64, len(ks))
	kdY := make([]float64, len(ks))
	pqY := make([]float64, len(ks))
	trY := make([]float64, len(ks))
	for i, k := range ks {
		xs[i] = float64(k)
		kdY[i] = nnTime(kd, k, func(i int) core.Value { return pQ[i%len(pQ)] })
		pqY[i] = nnTime(pq, k, func(i int) core.Value { return pQ[i%len(pQ)] })
		trY[i] = nnTime(tr, k, func(i int) core.Value { return wQ[i%len(wQ)] })
	}
	_ = geom.Point{}
	return []Figure{{
		ID: "fig17", Title: "NN search performance (time per query, ms)",
		XLabel: "number of NNs", YLabel: "time (ms)",
		Series: []Series{
			{Name: "kd-tree", X: xs, Y: kdY},
			{Name: "pquadtree", X: xs, Y: pqY},
			{Name: "trie", X: xs, Y: trY},
		},
		Notes: []string{
			"paper: trie is orders of magnitude slower (Hamming distance converges slowly);",
			"kd-tree and point quadtree stay fast and close to each other",
		},
	}}
}
