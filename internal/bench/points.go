package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/heap"
	"repro/internal/kdtree"
	"repro/internal/rtree"
)

var world = geom.MakeBox(0, 0, 100, 100)

type pointRow struct {
	n int

	kdInsert, rtInsert time.Duration
	kdPoint, rtPoint   measured
	kdRange, rtRange   measured
	kdSize, rtSize     int64
}

func measurePointRow(cfg Config, n int) (pointRow, error) {
	row := pointRow{n: n}
	pts := datagen.Points(n, cfg.Seed, world)
	pointQ := datagen.Sample(pts, cfg.Queries, cfg.Seed+1)
	// Range queries selecting ~0.1% of the space, like small windows.
	boxQ := datagen.Boxes(cfg.Queries, cfg.Seed+2, world, 3)

	kd, err := core.Create(cfg.pool(), kdtree.New())
	if err != nil {
		return row, err
	}
	start := time.Now()
	for i, p := range pts {
		if err := kd.Insert(p, benchRID(i)); err != nil {
			return row, err
		}
	}
	row.kdInsert = time.Since(start)
	kdBuilt := kd
	if kd, err = kdBuilt.Repack(cfg.pool()); err != nil {
		return row, err
	}
	sink := 0
	emit := func(_ core.Value, _ heap.RID) bool { sink++; return true }
	row.kdPoint = measure(kd, len(pointQ), func(i int) {
		kd.Scan(&core.Query{Op: "@", Arg: pointQ[i]}, emit)
	})
	row.kdRange = measure(kd, len(boxQ), func(i int) {
		kd.Scan(&core.Query{Op: "^", Arg: boxQ[i]}, emit)
	})
	row.kdSize = kdBuilt.SizeBytes() // dynamic (insert-maintained) size, as in the paper

	rt, err := rtree.Create(cfg.pool())
	if err != nil {
		return row, err
	}
	start = time.Now()
	for i, p := range pts {
		if err := rt.Insert(geom.Box{Min: p, Max: p}, benchRID(i)); err != nil {
			return row, err
		}
	}
	row.rtInsert = time.Since(start)
	row.rtPoint = measure(rt, len(pointQ), func(i int) {
		rt.SearchPoint(pointQ[i], func(heap.RID) bool { sink++; return true })
	})
	row.rtRange = measure(rt, len(boxQ), func(i int) {
		rt.SearchContained(boxQ[i], func(_ geom.Box, _ heap.RID) bool { sink++; return true })
	})
	row.rtSize = rt.SizeBytes()
	return row, nil
}

// RunPoints regenerates Figures 13-14: the SP-GiST kd-tree against the
// R-tree over two-dimensional point datasets (paper sizes 250K-4M).
func RunPoints(cfg Config) []Figure {
	cfg = cfg.normalized()
	sizes := cfg.sizes([]int{2500, 5000, 10000, 20000, 40000})
	rows := make([]pointRow, 0, len(sizes))
	for _, n := range sizes {
		row, err := measurePointRow(cfg, n)
		if err != nil {
			panic(fmt.Sprintf("bench points: %v", err))
		}
		rows = append(rows, row)
	}
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = float64(r.n)
	}

	fig13 := Figure{
		ID: "fig13", Title: "Insertion and search relative performance: R-tree vs kd-tree",
		XLabel: "keys", YLabel: "(R-tree/kd-tree) x 100",
		Notes: []string{
			"paper: point search >300, range search ~125 (kd-tree wins); insert <100 (R-tree wins)",
		},
	}
	var pY, rY, iY, pIO, rIO []float64
	for _, r := range rows {
		pY = append(pY, 100*ratio(r.rtPoint.t, r.kdPoint.t))
		rY = append(rY, 100*ratio(r.rtRange.t, r.kdRange.t))
		iY = append(iY, 100*ratio(r.rtInsert, r.kdInsert))
		pIO = append(pIO, 100*pageRatio(r.rtPoint, r.kdPoint))
		rIO = append(rIO, 100*pageRatio(r.rtRange, r.kdRange))
	}
	fig13.Series = []Series{
		{Name: "point x100", X: xs, Y: pY},
		{Name: "range x100", X: xs, Y: rY},
		{Name: "insert x100", X: xs, Y: iY},
		{Name: "point io x100", X: xs, Y: pIO},
		{Name: "range io x100", X: xs, Y: rIO},
	}
	fig13.Notes = append(fig13.Notes,
		"time = warm in-memory; io = distinct pages touched per query (cold-I/O proxy, the paper's regime)")

	fig14 := Figure{
		ID: "fig14", Title: "Relative index size: R-tree vs kd-tree",
		XLabel: "keys", YLabel: "(R-tree/kd-tree) x 100",
		Notes: []string{"paper: well below 100 (kd-tree larger: bucket size 1, low page utilization)"},
	}
	var sY []float64
	for _, r := range rows {
		sY = append(sY, 100*float64(r.rtSize)/float64(r.kdSize))
	}
	fig14.Series = []Series{{Name: "size x100", X: xs, Y: sY}}

	return []Figure{fig13, fig14}
}
