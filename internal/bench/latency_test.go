package bench

import "testing"

// TestRunLatencyReport smoke-tests the PR 6 latency experiment at a
// tiny scale: every workload must produce ops and ordered percentiles.
func TestRunLatencyReport(t *testing.T) {
	cfg := Config{Scale: 0.01, Seed: 1, Queries: 10}
	report, figs := RunLatencyReport(cfg)
	if len(report.Workloads) != 3 {
		t.Fatalf("workloads = %d, want 3", len(report.Workloads))
	}
	for _, row := range report.Workloads {
		if row.Ops <= 0 {
			t.Errorf("%s: ops = %d, want > 0", row.Name, row.Ops)
		}
		if row.P50Ns <= 0 || row.P50Ns > row.P95Ns || row.P95Ns > row.P99Ns {
			t.Errorf("%s: percentiles out of order: p50=%d p95=%d p99=%d",
				row.Name, row.P50Ns, row.P95Ns, row.P99Ns)
		}
		if row.OpsPerSec <= 0 {
			t.Errorf("%s: ops_per_sec = %f", row.Name, row.OpsPerSec)
		}
	}
	if len(figs) != 1 || len(figs[0].Series) != 3 {
		t.Fatalf("figure shape: %+v", figs)
	}
}
