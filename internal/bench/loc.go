package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// countGoLines counts non-test Go source lines under dir.
func countGoLines(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += strings.Count(string(data), "\n")
	}
	return total, nil
}

// moduleRoot walks upward from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("bench: go.mod not found above working directory")
		}
		dir = parent
	}
}

// Table7Row is one line of the paper's Table 7.
type Table7Row struct {
	Index   string
	Lines   int
	Percent float64 // of core + external lines
}

// Table7 counts the external-method code of each SP-GiST instantiation
// against the shared core (framework + storage substrate), reproducing
// the paper's Table 7: the developer-supplied external methods are a
// small fraction of the total index code.
func Table7() ([]Table7Row, int, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, 0, err
	}
	coreDirs := []string{"internal/core", "internal/storage", "internal/geom", "internal/heap"}
	coreLines := 0
	for _, d := range coreDirs {
		n, err := countGoLines(filepath.Join(root, d))
		if err != nil {
			return nil, 0, err
		}
		coreLines += n
	}
	ext := []struct{ name, dir string }{
		{"trie", "internal/trie"},
		{"kd-tree", "internal/kdtree"},
		{"P quadtree", "internal/pquad"},
		{"PMR quadtree", "internal/pmr"},
		{"suffix tree", "internal/suffix"},
	}
	rows := make([]Table7Row, 0, len(ext))
	for _, e := range ext {
		n, err := countGoLines(filepath.Join(root, e.dir))
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, Table7Row{
			Index:   e.name,
			Lines:   n,
			Percent: 100 * float64(n) / float64(n+coreLines),
		})
	}
	return rows, coreLines, nil
}

// RunTable7 renders Table 7 as a figure.
func RunTable7(cfg Config) []Figure {
	rows, coreLines, err := Table7()
	if err != nil {
		return []Figure{{
			ID: "table7", Title: "External methods' code lines",
			Notes: []string{fmt.Sprintf("unavailable: %v (run from the repository)", err)},
		}}
	}
	fig := Figure{
		ID: "table7", Title: "Number and percentage of external methods' code lines",
		XLabel: "index#", YLabel: "lines / percent",
		Notes: []string{
			fmt.Sprintf("shared core (framework + substrate): %d lines", coreLines),
			"paper: each instantiation's external methods are <10% of the total index code",
		},
	}
	var xs, lines, pct []float64
	for i, r := range rows {
		xs = append(xs, float64(i+1))
		lines = append(lines, float64(r.Lines))
		pct = append(pct, r.Percent)
		fig.Notes = append(fig.Notes, fmt.Sprintf("index %d = %s", i+1, r.Index))
	}
	fig.Series = []Series{
		{Name: "ext lines", X: xs, Y: lines},
		{Name: "% of total", X: xs, Y: pct},
	}
	return []Figure{fig}
}
