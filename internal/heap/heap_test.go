package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func newTestHeap(t *testing.T) *File {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMem(1024), 16)
	f, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInsertGet(t *testing.T) {
	f := newTestHeap(t)
	rid, err := f.Insert([]byte("tuple one"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec) != "tuple one" {
		t.Fatalf("Get = %q", rec)
	}
	if f.Count() != 1 {
		t.Fatalf("Count = %d, want 1", f.Count())
	}
}

func TestGetMissing(t *testing.T) {
	f := newTestHeap(t)
	rec, err := f.Get(RID{Page: 99, Slot: 0})
	if err != nil || rec != nil {
		t.Fatalf("Get missing = %v, %v; want nil, nil", rec, err)
	}
	rec, err = f.Get(InvalidRID)
	if err != nil || rec != nil {
		t.Fatalf("Get invalid = %v, %v; want nil, nil", rec, err)
	}
}

func TestDelete(t *testing.T) {
	f := newTestHeap(t)
	rid, _ := f.Insert([]byte("doomed"))
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	rec, _ := f.Get(rid)
	if rec != nil {
		t.Fatal("deleted record still readable")
	}
	if f.Count() != 0 {
		t.Fatalf("Count = %d, want 0", f.Count())
	}
	// Double delete is a no-op.
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if f.Count() != 0 {
		t.Fatalf("Count after double delete = %d", f.Count())
	}
}

func TestScanOrderAndContent(t *testing.T) {
	f := newTestHeap(t)
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		s := fmt.Sprintf("record-%04d", i)
		if _, err := f.Insert([]byte(s)); err != nil {
			t.Fatal(err)
		}
		want[s] = true
	}
	got := map[string]bool{}
	err := f.Scan(func(rid RID, rec []byte) bool {
		got[string(rec)] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(got), len(want))
	}
	for s := range want {
		if !got[s] {
			t.Fatalf("scan missed %q", s)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	f := newTestHeap(t)
	for i := 0; i < 100; i++ {
		f.Insert([]byte("x"))
	}
	n := 0
	f.Scan(func(rid RID, rec []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d, want 10", n)
	}
}

func TestSpillsAcrossPages(t *testing.T) {
	f := newTestHeap(t)
	rec := bytes.Repeat([]byte("p"), 300)
	for i := 0; i < 50; i++ {
		if _, err := f.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if f.NumPages() < 10 {
		t.Fatalf("expected many pages, got %d", f.NumPages())
	}
	n := 0
	f.Scan(func(rid RID, rec []byte) bool { n++; return true })
	if n != 50 {
		t.Fatalf("scan found %d records, want 50", n)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	f := newTestHeap(t)
	if _, err := f.Insert(make([]byte, 2000)); err == nil {
		t.Fatal("expected error for record larger than page")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.dat")
	dm, err := storage.OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(dm, 16)
	f, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := f.Insert([]byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.Close(); err != nil {
		t.Fatal(err)
	}

	dm2, err := storage.OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bp2 := storage.NewBufferPool(dm2, 16)
	f2, err := Open(bp2)
	if err != nil {
		t.Fatal(err)
	}
	defer bp2.Close()
	if f2.Count() != 100 {
		t.Fatalf("Count after reopen = %d, want 100", f2.Count())
	}
	for i, rid := range rids {
		rec, err := f2.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(rec) != fmt.Sprintf("v%d", i) {
			t.Fatalf("record %d mismatch after reopen: %q", i, rec)
		}
	}
	// Inserts continue to work after reopen.
	if _, err := f2.Insert([]byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRefusesPreVersionFormat pins the format gate: a heap file
// whose meta page predates the MVCC tuple header (format version 0 —
// the field was unwritten zeros) must refuse to open, not silently
// parse the first TupleHeaderSize bytes of every payload as a header.
func TestOpenRefusesPreVersionFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.dat")
	dm, err := storage.OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(dm, 16)
	f, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Insert([]byte("row")); err != nil {
		t.Fatal(err)
	}
	if err := bp.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the meta page with the version field zeroed, the way a
	// pre-MVCC build left it.
	dm2, err := storage.OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	meta := make([]byte, 1024)
	if err := dm2.ReadPage(0, meta); err != nil {
		t.Fatal(err)
	}
	for i := metaVerOf; i < metaVerOf+4; i++ {
		meta[i] = 0
	}
	if err := dm2.WritePage(0, meta); err != nil {
		t.Fatal(err)
	}
	bp2 := storage.NewBufferPool(dm2, 16)
	defer bp2.Close()
	if _, err := Open(bp2); err == nil {
		t.Fatal("Open accepted a format-version-0 heap file")
	}
}

func TestRIDEncoding(t *testing.T) {
	r := RID{Page: 123456, Slot: 789}
	b := r.Bytes()
	if got := RIDFromBytes(b[:]); got != r {
		t.Fatalf("RID round trip: got %v, want %v", got, r)
	}
}

// Model-based randomized test against a map.
func TestRandomizedModel(t *testing.T) {
	f := newTestHeap(t)
	r := rand.New(rand.NewSource(3))
	model := map[RID][]byte{}
	for step := 0; step < 3000; step++ {
		if r.Intn(3) != 0 || len(model) == 0 {
			rec := make([]byte, 1+r.Intn(60))
			r.Read(rec)
			rid, err := f.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := model[rid]; dup {
				t.Fatalf("step %d: duplicate RID %v", step, rid)
			}
			model[rid] = append([]byte(nil), rec...)
		} else {
			for rid := range model {
				if err := f.Delete(rid); err != nil {
					t.Fatal(err)
				}
				delete(model, rid)
				break
			}
		}
	}
	if int(f.Count()) != len(model) {
		t.Fatalf("Count = %d, model = %d", f.Count(), len(model))
	}
	for rid, want := range model {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rid %v mismatch", rid)
		}
	}
}
