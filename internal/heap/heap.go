// Package heap implements heap files: unordered collections of
// variable-length records stored in slotted pages, addressed by record
// identifiers (RIDs). Heap files play the role of PostgreSQL heap tables
// in this reproduction — every table's tuples live in one, indexes store
// RIDs pointing into it, and the sequential-scan baseline of the paper's
// suffix-tree experiment (Figure 16) is a full scan of one.
package heap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
	"repro/internal/wal"
)

// RID identifies a record inside a heap file: a page number and a slot
// within the page. The zero value is not a valid RID (page 0 is the heap
// metadata page).
type RID struct {
	Page storage.PageID
	Slot uint16
}

// InvalidRID is the sentinel "no record" value.
var InvalidRID = RID{Page: storage.InvalidPageID}

// Valid reports whether r could reference a record.
func (r RID) Valid() bool { return r.Page != storage.InvalidPageID && r.Page != 0 }

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Bytes encodes the RID in 6 bytes (page:4, slot:2), little-endian.
func (r RID) Bytes() [6]byte {
	var b [6]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(r.Page))
	binary.LittleEndian.PutUint16(b[4:], r.Slot)
	return b
}

// RIDFromBytes decodes a RID written by Bytes.
func RIDFromBytes(b []byte) RID {
	return RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(b[0:])),
		Slot: binary.LittleEndian.Uint16(b[4:]),
	}
}

// RIDSize is the encoded size of a RID.
const RIDSize = 6

// Every heap record is prefixed by a fixed MVCC version header, the
// xmin/xmax/infomask triple of a PostgreSQL heap tuple:
//
//	+--------+--------+---------+----------- - -
//	| xmin:8 | xmax:8 | flags:2 | payload ...
//	+--------+--------+---------+----------- - -
//
// xmin is the inserting transaction, xmax the deleting one (0 = not
// deleted). xmin 0 is the frozen transaction: such tuples predate the
// MVCC machinery (system-catalog records, the legacy Insert API) and
// are visible to every snapshot.
const (
	// TupleHeaderSize is the fixed per-record MVCC header size.
	TupleHeaderSize = 18
	// FlagXminAborted marks a tuple whose inserting transaction rolled
	// back (or was judged aborted by crash recovery): invisible to every
	// snapshot, reclaimable by VACUUM.
	FlagXminAborted uint16 = 0x1
)

// TupleHeader is the decoded MVCC version header of one heap record.
type TupleHeader struct {
	Xmin  uint64
	Xmax  uint64
	Flags uint16
}

// EncodeTuple prepends h to payload, producing the on-page record bytes.
func EncodeTuple(h TupleHeader, payload []byte) []byte {
	rec := make([]byte, TupleHeaderSize+len(payload))
	binary.LittleEndian.PutUint64(rec[0:], h.Xmin)
	binary.LittleEndian.PutUint64(rec[8:], h.Xmax)
	binary.LittleEndian.PutUint16(rec[16:], h.Flags)
	copy(rec[TupleHeaderSize:], payload)
	return rec
}

// ParseTuple splits on-page record bytes into the version header and the
// payload (aliasing rec, not copying). Records shorter than the header —
// impossible through this package's insert paths — parse as frozen with
// the whole record as payload.
func ParseTuple(rec []byte) (TupleHeader, []byte) {
	if len(rec) < TupleHeaderSize {
		return TupleHeader{}, rec
	}
	return TupleHeader{
		Xmin:  binary.LittleEndian.Uint64(rec[0:]),
		Xmax:  binary.LittleEndian.Uint64(rec[8:]),
		Flags: binary.LittleEndian.Uint16(rec[16:]),
	}, rec[TupleHeaderSize:]
}

// Heap file metadata page layout (page 0).
const (
	metaMagic   = 0x48454150 // "HEAP"
	metaMagicOf = 0
	metaLastOf  = 4  // last page with free space (hint)
	metaCountOf = 8  // number of live records
	metaVerOf   = 16 // on-disk record format version

	// formatVersion is the current on-disk format: 1 added the MVCC
	// TupleHeader prefix on every record; 2 widened the slotted page
	// header to 24 bytes, adding the per-page checksum field. Files
	// written before the tuple header read version 0 (the meta field
	// was unwritten zeros); version-1 files place records 8 bytes
	// earlier than this build's slotted layout expects. Both are
	// refused at Open — misparsing either would silently corrupt the
	// system catalog and all user rows.
	formatVersion = 2
)

// File is a heap file over a buffer pool. Methods are not safe for
// concurrent mutation; the executor layer serializes access per table.
type File struct {
	bp       *storage.BufferPool
	lastPage storage.PageID
	count    int64
}

// Create initializes a new heap file on an empty buffer pool / disk.
func Create(bp *storage.BufferPool) (*File, error) {
	if bp.DM().NumPages() != 0 {
		return nil, fmt.Errorf("heap: create on non-empty file")
	}
	meta, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(meta.Data[metaMagicOf:], metaMagic)
	binary.LittleEndian.PutUint32(meta.Data[metaLastOf:], uint32(storage.InvalidPageID))
	binary.LittleEndian.PutUint64(meta.Data[metaCountOf:], 0)
	binary.LittleEndian.PutUint32(meta.Data[metaVerOf:], formatVersion)
	bp.Unpin(meta, true)
	return &File{bp: bp, lastPage: storage.InvalidPageID}, nil
}

// Open attaches to an existing heap file.
func Open(bp *storage.BufferPool) (*File, error) {
	meta, err := bp.Fetch(0)
	if err != nil {
		return nil, fmt.Errorf("heap: open: %w", err)
	}
	defer bp.Unpin(meta, false)
	if binary.LittleEndian.Uint32(meta.Data[metaMagicOf:]) != metaMagic {
		return nil, fmt.Errorf("heap: bad magic (not a heap file)")
	}
	if v := binary.LittleEndian.Uint32(meta.Data[metaVerOf:]); v != formatVersion {
		return nil, fmt.Errorf("heap: on-disk format version %d, want %d (version 0 predates MVCC tuple headers, version 1 predates page checksums; dump and reload with a matching build)", v, formatVersion)
	}
	return &File{
		bp:       bp,
		lastPage: storage.PageID(binary.LittleEndian.Uint32(meta.Data[metaLastOf:])),
		count:    int64(binary.LittleEndian.Uint64(meta.Data[metaCountOf:])),
	}, nil
}

// Pool returns the underlying buffer pool (for statistics).
func (f *File) Pool() *storage.BufferPool { return f.bp }

// Count returns the number of live records.
func (f *File) Count() int64 { return f.count }

// NumPages returns the number of pages in the file (including metadata).
func (f *File) NumPages() uint32 { return f.bp.DM().NumPages() }

func (f *File) saveMeta() error {
	meta, err := f.bp.Fetch(0)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(meta.Data[metaLastOf:], uint32(f.lastPage))
	binary.LittleEndian.PutUint64(meta.Data[metaCountOf:], uint64(f.count))
	f.bp.Unpin(meta, true)
	return nil
}

// unpinLogged releases a data page after an insert or delete of rec at
// slot. With a WAL attached the mutation is covered by a logical record
// (not a page image). When the log carries statement boundaries (the
// executor's commit markers) the record is *deferred*: it is staged in
// the buffer pool and appended — contiguously with the rest of the
// statement's records and its marker — at the commit point, so records
// of statements running concurrently on other tables never interleave
// with it. On a raw marker-less log the record is appended eagerly, as
// before. rec is nil for a delete.
func (f *File) unpinLogged(p *storage.Page, slot int, rec []byte) error {
	w, name := f.bp.WAL()
	if w == nil {
		f.bp.Unpin(p, true)
		return nil
	}
	if w.CommittedLSN() > 0 {
		if rec != nil {
			f.bp.DeferHeapInsert(p.ID, uint16(slot), rec)
		} else {
			f.bp.DeferHeapDelete(p.ID, uint16(slot))
		}
		f.bp.UnpinDeferredOp(p)
		return nil
	}
	var lsn wal.LSN
	var err error
	if rec != nil {
		lsn, err = w.AppendHeapInsert(name, uint32(p.ID), uint16(slot), rec)
	} else {
		lsn, err = w.AppendHeapDelete(name, uint32(p.ID), uint16(slot))
	}
	if err != nil {
		f.bp.Unpin(p, true)
		return err
	}
	storage.SetPageLSN(p.Data, uint64(lsn))
	f.bp.UnpinLSN(p, lsn)
	return nil
}

// unpinBatchLogged releases a data page after a batch insert of recs at
// slots — the batch twin of unpinLogged, covering the whole page-worth
// of tuples with one log record.
func (f *File) unpinBatchLogged(p *storage.Page, slots []uint16, recs [][]byte) error {
	w, name := f.bp.WAL()
	if w == nil {
		f.bp.Unpin(p, true)
		return nil
	}
	if w.CommittedLSN() > 0 {
		f.bp.DeferHeapBatchInsert(p.ID, slots, recs)
		f.bp.UnpinDeferredOp(p)
		return nil
	}
	lsn, err := w.AppendHeapBatchInsert(name, uint32(p.ID), slots, recs)
	if err != nil {
		f.bp.Unpin(p, true)
		return err
	}
	storage.SetPageLSN(p.Data, uint64(lsn))
	f.bp.UnpinLSN(p, lsn)
	return nil
}

// Insert appends payload as a frozen tuple (xmin 0, visible to every
// snapshot) and returns its RID — the legacy single-row API, used by the
// system catalog and version-agnostic callers.
func (f *File) Insert(payload []byte) (RID, error) {
	return f.InsertTx(payload, 0)
}

// InsertTx appends payload as a new tuple version created by transaction
// xmin and returns its RID.
func (f *File) InsertTx(payload []byte, xmin uint64) (RID, error) {
	rec := EncodeTuple(TupleHeader{Xmin: xmin}, payload)
	if len(rec) > storage.SlotCapacity(f.bp.DM().PageSize()) {
		return InvalidRID, fmt.Errorf("heap: record of %d bytes exceeds page capacity", len(rec))
	}
	// Fast path: the last page we inserted into.
	if f.lastPage != storage.InvalidPageID {
		p, err := f.bp.Fetch(f.lastPage)
		if err != nil {
			return InvalidRID, err
		}
		if slot, ok := storage.SlotInsert(p.Data, rec); ok {
			rid := RID{Page: p.ID, Slot: uint16(slot)}
			if err := f.unpinLogged(p, slot, rec); err != nil {
				return InvalidRID, err
			}
			f.count++
			return rid, f.saveMeta()
		}
		f.bp.Unpin(p, false)
	}
	p, err := f.bp.NewPage()
	if err != nil {
		return InvalidRID, err
	}
	storage.SlotInit(p.Data)
	slot, ok := storage.SlotInsert(p.Data, rec)
	if !ok {
		f.bp.Unpin(p, false)
		return InvalidRID, fmt.Errorf("heap: record of %d bytes does not fit an empty page", len(rec))
	}
	rid := RID{Page: p.ID, Slot: uint16(slot)}
	f.lastPage = p.ID
	if err := f.unpinLogged(p, slot, rec); err != nil {
		return InvalidRID, err
	}
	f.count++
	return rid, f.saveMeta()
}

// InsertBatch appends every record of recs, filling each data page to
// capacity under a single pin (instead of re-pinning per record the way
// per-row Insert does) and covering each filled page with one batch log
// record rather than one record per tuple. The returned RIDs parallel
// recs. The heap metadata is saved once for the whole batch. The frozen
// (xmin 0) twin of InsertBatchTx.
func (f *File) InsertBatch(payloads [][]byte) ([]RID, error) {
	return f.InsertBatchTx(payloads, 0)
}

// InsertBatchTx appends every payload as a new tuple version created by
// transaction xmin. The encoded records are retained until the statement
// commits (they are freshly allocated here, so callers may reuse their
// payload slices).
func (f *File) InsertBatchTx(payloads [][]byte, xmin uint64) ([]RID, error) {
	capacity := storage.SlotCapacity(f.bp.DM().PageSize())
	recs := make([][]byte, len(payloads))
	for i, payload := range payloads {
		recs[i] = EncodeTuple(TupleHeader{Xmin: xmin}, payload)
		if len(recs[i]) > capacity {
			return nil, fmt.Errorf("heap: record of %d bytes exceeds page capacity", len(recs[i]))
		}
	}
	rids := make([]RID, 0, len(recs))
	i := 0
	for i < len(recs) {
		var p *storage.Page
		var err error
		fresh := false
		if f.lastPage != storage.InvalidPageID {
			p, err = f.bp.Fetch(f.lastPage)
		} else {
			fresh = true
			p, err = f.bp.NewPage()
		}
		if err != nil {
			return rids, err
		}
		if fresh {
			storage.SlotInit(p.Data)
			f.lastPage = p.ID
		}
		// Fill this page with as many of the remaining records as fit.
		var slots []uint16
		var placed [][]byte
		for i < len(recs) {
			slot, ok := storage.SlotInsert(p.Data, recs[i])
			if !ok {
				break
			}
			rids = append(rids, RID{Page: p.ID, Slot: uint16(slot)})
			slots = append(slots, uint16(slot))
			placed = append(placed, recs[i])
			i++
		}
		if len(slots) == 0 {
			// A full last page: move on to a fresh one.
			f.bp.Unpin(p, false)
			f.lastPage = storage.InvalidPageID
			continue
		}
		f.count += int64(len(slots))
		if err := f.unpinBatchLogged(p, slots, placed); err != nil {
			return rids, err
		}
	}
	return rids, f.saveMeta()
}

// Get returns a copy of the record payload at rid (version header
// stripped), or nil if no record exists there. Version-blind: callers
// that honor snapshots use GetVersion.
func (f *File) Get(rid RID) ([]byte, error) {
	_, payload, err := f.GetVersion(rid)
	return payload, err
}

// GetVersion returns the version header and a copy of the payload of the
// record at rid, or a nil payload if no record exists there.
func (f *File) GetVersion(rid RID) (TupleHeader, []byte, error) {
	if !rid.Valid() || uint32(rid.Page) >= f.NumPages() {
		return TupleHeader{}, nil, nil
	}
	p, err := f.bp.Fetch(rid.Page)
	if err != nil {
		return TupleHeader{}, nil, err
	}
	defer f.bp.Unpin(p, false)
	rec := storage.SlotRead(p.Data, int(rid.Slot))
	if rec == nil {
		return TupleHeader{}, nil, nil
	}
	h, payload := ParseTuple(rec)
	out := make([]byte, len(payload))
	copy(out, payload)
	return h, out, nil
}

// headerOp discriminates the three version-header mutations.
type headerOp int

const (
	opSetXmax headerOp = iota
	opClearXmax
	opMarkAborted
)

// setHeader rewrites part of the version header of the record at rid in
// place and logs it. Mutating a non-existent record is a no-op, like
// Delete. Logging follows unpinLogged's discipline: deferred under a
// marker-bearing log, eager otherwise.
func (f *File) setHeader(rid RID, op headerOp, xid uint64) error {
	if !rid.Valid() || uint32(rid.Page) >= f.NumPages() {
		return nil
	}
	p, err := f.bp.Fetch(rid.Page)
	if err != nil {
		return err
	}
	rec := storage.SlotRead(p.Data, int(rid.Slot))
	if rec == nil || len(rec) < TupleHeaderSize {
		f.bp.Unpin(p, false)
		return nil
	}
	switch op {
	case opSetXmax:
		binary.LittleEndian.PutUint64(rec[8:], xid)
	case opClearXmax:
		binary.LittleEndian.PutUint64(rec[8:], 0)
	case opMarkAborted:
		binary.LittleEndian.PutUint16(rec[16:],
			binary.LittleEndian.Uint16(rec[16:])|FlagXminAborted)
	}
	w, name := f.bp.WAL()
	if w == nil {
		f.bp.Unpin(p, true)
		return nil
	}
	if w.CommittedLSN() > 0 {
		switch op {
		case opSetXmax:
			f.bp.DeferHeapSetXmax(p.ID, rid.Slot, xid)
		case opClearXmax:
			f.bp.DeferHeapClearXmax(p.ID, rid.Slot)
		case opMarkAborted:
			f.bp.DeferHeapMarkAborted(p.ID, rid.Slot)
		}
		f.bp.UnpinDeferredOp(p)
		return nil
	}
	var lsn wal.LSN
	switch op {
	case opSetXmax:
		lsn, err = w.AppendHeapSetXmax(name, uint32(p.ID), rid.Slot, xid)
	case opClearXmax:
		lsn, err = w.AppendHeapClearXmax(name, uint32(p.ID), rid.Slot)
	case opMarkAborted:
		lsn, err = w.AppendHeapMarkAborted(name, uint32(p.ID), rid.Slot)
	}
	if err != nil {
		f.bp.Unpin(p, true)
		return err
	}
	storage.SetPageLSN(p.Data, uint64(lsn))
	f.bp.UnpinLSN(p, lsn)
	return nil
}

// SetXmax stamps xid as the deleting transaction of the tuple at rid —
// the MVCC delete: the version stays in place for snapshots that predate
// the deleter.
func (f *File) SetXmax(rid RID, xid uint64) error { return f.setHeader(rid, opSetXmax, xid) }

// ClearXmax zeroes the xmax of the tuple at rid — the undo of SetXmax,
// applied when the deleting transaction rolls back.
func (f *File) ClearXmax(rid RID) error { return f.setHeader(rid, opClearXmax, 0) }

// MarkAborted sets the aborted flag on the tuple at rid, hiding it from
// every snapshot — the undo of an insert whose transaction rolled back.
func (f *File) MarkAborted(rid RID) error { return f.setHeader(rid, opMarkAborted, 0) }

// Delete removes the record at rid. Deleting a non-existent record is a
// no-op.
func (f *File) Delete(rid RID) error {
	if !rid.Valid() || uint32(rid.Page) >= f.NumPages() {
		return nil
	}
	p, err := f.bp.Fetch(rid.Page)
	if err != nil {
		return err
	}
	existed := storage.SlotRead(p.Data, int(rid.Slot)) != nil
	if !existed {
		f.bp.Unpin(p, false)
		return nil
	}
	storage.SlotDelete(p.Data, int(rid.Slot))
	if err := f.unpinLogged(p, int(rid.Slot), nil); err != nil {
		return err
	}
	f.count--
	return f.saveMeta()
}

// ScanPage calls fn for every live record of one data page — the unit
// of ANALYZE's block sampling — with the version header stripped. The
// rec slice is only valid during the call. Scanning a page outside the
// file is a no-op. Version-blind: snapshot readers use ScanPageVersions.
func (f *File) ScanPage(pid storage.PageID, fn func(rid RID, rec []byte) bool) error {
	return f.ScanPageVersions(pid, func(rid RID, _ TupleHeader, payload []byte) bool {
		return fn(rid, payload)
	})
}

// ScanPageVersions calls fn for every live record of one data page with
// its decoded version header. The payload slice is only valid during the
// call.
func (f *File) ScanPageVersions(pid storage.PageID, fn func(rid RID, h TupleHeader, payload []byte) bool) error {
	if uint32(pid) == 0 || uint32(pid) >= f.NumPages() {
		return nil
	}
	p, err := f.bp.Fetch(pid)
	if err != nil {
		return err
	}
	storage.SlotForEach(p.Data, func(slot int, rec []byte) bool {
		h, payload := ParseTuple(rec)
		return fn(RID{Page: pid, Slot: uint16(slot)}, h, payload)
	})
	f.bp.Unpin(p, false)
	return nil
}

// Scan calls fn for every live record in file order with the version
// header stripped. The rec slice is only valid during the call. Scanning
// stops early if fn returns false. Version-blind: snapshot readers use
// ScanVersions.
func (f *File) Scan(fn func(rid RID, rec []byte) bool) error {
	return f.ScanVersions(func(rid RID, _ TupleHeader, payload []byte) bool {
		return fn(rid, payload)
	})
}

// ScanVersions calls fn for every live record in file order with its
// decoded version header. The payload slice is only valid during the
// call. Scanning stops early if fn returns false.
//
// When the pool has a prefetcher attached, the scan keeps a readahead
// window open: before processing page P it requests P+window, so by the
// time the scan arrives the read has (ideally) already happened in the
// background. The initial burst primes the window.
func (f *File) ScanVersions(fn func(rid RID, h TupleHeader, payload []byte) bool) error {
	n := f.NumPages()
	ra := uint32(f.bp.ReadaheadPages())
	if ra > 0 {
		for a := uint32(2); a <= ra && a < n; a++ {
			f.bp.Prefetch(storage.PageID(a))
		}
	}
	for pid := storage.PageID(1); uint32(pid) < n; pid++ {
		if ra > 0 && uint32(pid)+ra < n {
			f.bp.Prefetch(pid + storage.PageID(ra))
		}
		p, err := f.bp.Fetch(pid)
		if err != nil {
			return err
		}
		stop := false
		storage.SlotForEach(p.Data, func(slot int, rec []byte) bool {
			h, payload := ParseTuple(rec)
			if !fn(RID{Page: pid, Slot: uint16(slot)}, h, payload) {
				stop = true
				return false
			}
			return true
		})
		f.bp.Unpin(p, false)
		if stop {
			return nil
		}
	}
	return nil
}
