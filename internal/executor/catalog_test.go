package executor_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/heap"
	"repro/internal/wal"
)

// These tests cover the persistent system catalog: schema rediscovery on
// reopen with zero re-declaration, and DDL crash-atomicity — a crash
// anywhere inside CREATE TABLE / CREATE INDEX must leave either nothing
// or (after recovery) a complete relation, never a silently reattached
// partial index file.

func openCatalogDB(t *testing.T, dir string, faults executor.FaultInjection) *executor.DB {
	t.Helper()
	db, err := executor.Open(executor.Options{
		Dir:       dir,
		WAL:       true,
		PoolPages: 16,
		WALSync:   wal.SyncCommit,
		Faults:    faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// fillWords inserts n deterministic rows into table words.
func fillWords(t *testing.T, tb *executor.Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		word := fmt.Sprintf("w%c%c%03d", 'a'+i%5, 'a'+i%9, i)
		if _, err := tb.Insert(catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// indexedPrefixRows runs a forced index scan for name #= prefix and
// returns the sorted result rows.
func indexedPrefixRows(t *testing.T, tb *executor.Table, prefix string) []string {
	t.Helper()
	if len(tb.Indexes) == 0 {
		t.Fatal("table has no index to scan")
	}
	ix := tb.Indexes[0]
	var rows []string
	err := tb.SelectIndexed(ix, &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)}, func(r executor.Row) bool {
		rows = append(rows, r.Tuple[0].String()+"|"+r.Tuple[1].String())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

func TestReopenWithoutRedeclare(t *testing.T) {
	dir := t.TempDir()
	db := openCatalogDB(t, dir, executor.FaultInjection{})
	tb, err := db.CreateTable("words", []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	fillWords(t, tb, 300)
	if _, err := db.CreateIndex("words_trie", "words", "name", "spgist", "spgist_trie"); err != nil {
		t.Fatal(err)
	}
	want := indexedPrefixRows(t, tb, "wa")
	if len(want) == 0 {
		t.Fatal("reference query returned nothing; the test would be vacuous")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openCatalogDB(t, dir, executor.FaultInjection{})
	defer db.Close()
	if len(db.RebuiltIndexes()) != 0 {
		t.Fatalf("clean shutdown triggered index rebuilds: %v", db.RebuiltIndexes())
	}
	tb, err = db.Table("words")
	if err != nil {
		t.Fatalf("table not rediscovered: %v", err)
	}
	if got := indexedPrefixRows(t, tb, "wa"); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("indexed query diverged after reopen:\n want %v\n got  %v", want, got)
	}
	ie, ok := db.Catalog().GetIndex("words_trie")
	if !ok || !ie.Valid {
		t.Fatalf("catalog entry after reopen: %+v ok=%v", ie, ok)
	}
}

// crashMidCreateIndex drives a CREATE INDEX that fails at the given
// build row (or at the pre-commit point when failRow < 0), crashes, and
// returns the reopened database plus the on-disk size the partial index
// file had at crash time.
func crashMidCreateIndex(t *testing.T, failRow int) (*executor.DB, string, int64) {
	t.Helper()
	dir := t.TempDir()
	boom := errors.New("injected crash")
	faults := executor.FaultInjection{}
	if failRow >= 0 {
		faults.DuringIndexBuild = func(rows int) error {
			if rows >= failRow {
				return boom
			}
			return nil
		}
	} else {
		faults.BeforeDDLCommit = func(stmt string) error {
			if strings.HasPrefix(stmt, "CREATE INDEX") {
				return boom
			}
			return nil
		}
	}
	db := openCatalogDB(t, dir, faults)
	tb, err := db.CreateTable("words", []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	// 600 rows: the build's 256-row batch commits fire at least twice, so
	// a committed prefix of the partial index is genuinely on disk / in
	// the log when the fault hits.
	fillWords(t, tb, 600)
	if _, err := db.CreateIndex("words_trie", "words", "name", "spgist", "spgist_trie"); !errors.Is(err, boom) {
		t.Fatalf("CREATE INDEX did not hit the injected fault: %v", err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// The partial index file is present on disk at this point.
	var partialFile string
	var partialSize int64
	matches, _ := filepath.Glob(filepath.Join(dir, "rel*.idx"))
	if len(matches) == 1 {
		partialFile = matches[0]
		if st, err := os.Stat(partialFile); err == nil {
			partialSize = st.Size()
		}
	}

	return openCatalogDB(t, dir, executor.FaultInjection{}), partialFile, partialSize
}

func verifyRebuiltIndex(t *testing.T, db *executor.DB, wantRebuilt bool) {
	t.Helper()
	defer db.Close()
	tb, err := db.Table("words")
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := db.RebuiltIndexes()
	if wantRebuilt {
		if len(rebuilt) != 1 || rebuilt[0] != "words_trie" {
			t.Fatalf("expected words_trie rebuilt, got %v", rebuilt)
		}
		if len(tb.Indexes) != 1 {
			t.Fatalf("index not reattached after rebuild: %d indexes", len(tb.Indexes))
		}
		ie, ok := db.Catalog().GetIndex("words_trie")
		if !ok || !ie.Valid {
			t.Fatalf("catalog entry after rebuild: %+v ok=%v", ie, ok)
		}
		// A reattached partial build would miss rows: the rebuilt index
		// must cover the whole heap ...
		if got, want := tb.Indexes[0].Idx.Count(), tb.Heap.Count(); got != want {
			t.Fatalf("rebuilt index covers %d of %d rows — partial build reattached", got, want)
		}
		// ... and a forced index scan must agree with a sequential scan.
		want := seqPrefixRows(t, tb, "wa")
		if got := indexedPrefixRows(t, tb, "wa"); strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("rebuilt index diverges from heap:\n want %v\n got  %v", want, got)
		}
	} else if len(rebuilt) != 0 {
		t.Fatalf("unexpected rebuilds: %v", rebuilt)
	}
}

// seqPrefixRows answers the same prefix query by scanning the heap
// directly — ground truth independent of any index the planner might
// otherwise pick.
func seqPrefixRows(t *testing.T, tb *executor.Table, prefix string) []string {
	t.Helper()
	var out []string
	err := tb.Heap.Scan(func(_ heap.RID, rec []byte) bool {
		tup, err := catalog.DecodeTuple(rec)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(tup[0].S, prefix) {
			out = append(out, tup[0].String()+"|"+tup[1].String())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func TestCrashMidIndexBuildRebuilds(t *testing.T) {
	db, partialFile, partialSize := crashMidCreateIndex(t, 300)
	if partialFile == "" || partialSize == 0 {
		t.Fatal("no partial index file on disk at crash time; the scenario is vacuous")
	}
	verifyRebuiltIndex(t, db, true)
}

func TestCrashBeforeIndexCommitRebuilds(t *testing.T) {
	// The fault fires after the whole build but before the validity flip
	// commits — the entry is still invalid, so the (complete-looking)
	// file must still be discarded and rebuilt, not trusted.
	db, _, _ := crashMidCreateIndex(t, -1)
	verifyRebuiltIndex(t, db, true)
}

func TestCrashMidCreateTableLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected crash")
	db := openCatalogDB(t, dir, executor.FaultInjection{
		BeforeDDLCommit: func(stmt string) error {
			if strings.HasPrefix(stmt, "CREATE TABLE orphan") {
				return boom
			}
			return nil
		},
	})
	if _, err := db.CreateTable("keeper", []executor.Column{{Name: "x", Type: catalog.Int}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("orphan", []executor.Column{{Name: "x", Type: catalog.Int}}); !errors.Is(err, boom) {
		t.Fatalf("CREATE TABLE did not hit the injected fault: %v", err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	// The orphaned heap file exists on disk (its pages were allocated
	// eagerly) even though its catalog entry never committed.
	files, _ := filepath.Glob(filepath.Join(dir, "rel*.tbl"))
	if len(files) != 2 {
		t.Fatalf("expected keeper + orphan heap files before reopen, found %v", files)
	}

	db = openCatalogDB(t, dir, executor.FaultInjection{})
	defer db.Close()
	if _, err := db.Table("orphan"); err == nil {
		t.Fatal("uncommitted CREATE TABLE survived the crash")
	}
	if _, err := db.Table("keeper"); err != nil {
		t.Fatalf("committed table lost: %v", err)
	}
	// The orphaned file was swept.
	files, _ = filepath.Glob(filepath.Join(dir, "rel*.tbl"))
	if len(files) != 1 {
		t.Fatalf("orphan sweep left %v", files)
	}
	// Re-creating the table now must work and get a fresh file.
	tb, err := db.CreateTable("orphan", []executor.Column{{Name: "x", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(catalog.Tuple{catalog.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
}

func TestDropIndexAndTable(t *testing.T) {
	dir := t.TempDir()
	db := openCatalogDB(t, dir, executor.FaultInjection{})
	tb, err := db.CreateTable("words", []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	fillWords(t, tb, 100)
	if _, err := db.CreateIndex("words_trie", "words", "name", "spgist", "spgist_trie"); err != nil {
		t.Fatal(err)
	}
	idxFile := filepath.Join(dir, tb.Indexes[0].File())
	if _, err := os.Stat(idxFile); err != nil {
		t.Fatalf("index file missing before drop: %v", err)
	}

	if err := db.DropIndex("words_trie"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(idxFile); !os.IsNotExist(err) {
		t.Fatalf("index file survived DROP INDEX: %v", err)
	}
	if _, ok := db.Catalog().GetIndex("words_trie"); ok {
		t.Fatal("catalog entry survived DROP INDEX")
	}
	if len(tb.Indexes) != 0 {
		t.Fatal("in-memory index survived DROP INDEX")
	}
	// The table still answers queries (seq scan).
	n := 0
	if _, err := tb.Select(nil, func(executor.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("rows after DROP INDEX: %d", n)
	}

	tblFile := filepath.Join(dir, tb.File())
	if err := db.DropTable("words"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tblFile); !os.IsNotExist(err) {
		t.Fatalf("heap file survived DROP TABLE: %v", err)
	}
	if _, err := db.Table("words"); err == nil {
		t.Fatal("table survived DROP TABLE")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The drops are durable: a reopen rediscovers nothing.
	db = openCatalogDB(t, dir, executor.FaultInjection{})
	defer db.Close()
	if len(db.Catalog().Tables()) != 0 || len(db.Catalog().Indexes()) != 0 {
		t.Fatalf("dropped relations resurfaced: %+v %+v", db.Catalog().Tables(), db.Catalog().Indexes())
	}
	// And the name can be reused with a different file (OIDs advance).
	tb2, err := db.CreateTable("words", []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	if tb2.File() == filepath.Base(tblFile) {
		t.Fatalf("recreated table reused file name %s", tb2.File())
	}
}

func TestDropRequiresExistingRelation(t *testing.T) {
	db := executor.OpenMemory()
	defer db.Close()
	if err := db.DropTable("nope"); err == nil {
		t.Fatal("DROP TABLE of unknown table accepted")
	}
	if err := db.DropIndex("nope"); err == nil {
		t.Fatal("DROP INDEX of unknown index accepted")
	}
}

// A *failed* (as opposed to crashed) CREATE INDEX must compensate its
// committed invalid entry: the session keeps running, the entry and the
// partial file are gone, the name is reusable, and a reopen neither
// rebuilds nor errors.
func TestFailedIndexBuildHealsInSession(t *testing.T) {
	dir := t.TempDir()
	db := openCatalogDB(t, dir, executor.FaultInjection{})
	tb, err := db.CreateTable("words", []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	fillWords(t, tb, 300)
	// Corrupt one key at the access-method level by hand-inserting an
	// undecodable heap record: the build's DecodeTuple fails mid-way.
	if _, err := tb.Heap.Insert([]byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("w_trie", "words", "name", "spgist", "spgist_trie"); err == nil {
		t.Fatal("CREATE INDEX over a corrupt row unexpectedly succeeded")
	}
	// The failed statement left nothing: no entry, no file, name free.
	if _, ok := db.Catalog().GetIndex("w_trie"); ok {
		t.Fatal("failed CREATE INDEX left its catalog entry")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "rel*.idx")); len(files) != 0 {
		t.Fatalf("failed CREATE INDEX left files: %v", files)
	}
	// The database stays usable, and later statements' commit markers
	// must not resurrect the dead entry.
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText("alive"), catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = openCatalogDB(t, dir, executor.FaultInjection{})
	defer db.Close()
	if got := db.RebuiltIndexes(); len(got) != 0 {
		t.Fatalf("reopen rebuilt a healed index: %v", got)
	}
	if len(db.Catalog().Indexes()) != 0 {
		t.Fatalf("healed entry resurfaced: %+v", db.Catalog().Indexes())
	}
}

// DROP TABLE must remove every *cataloged* index of the table, including
// one whose CREATE INDEX crashed (entry present, nothing attached after
// the next open rebuilds it — but here we drop before any reopen).
func TestDropTableRemovesCatalogedIndexes(t *testing.T) {
	dir := t.TempDir()
	db := openCatalogDB(t, dir, executor.FaultInjection{})
	tb, err := db.CreateTable("words", []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	fillWords(t, tb, 50)
	if _, err := db.CreateIndex("w_trie", "words", "name", "spgist", "spgist_trie"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("words"); err != nil {
		t.Fatal(err)
	}
	if n := len(db.Catalog().Indexes()); n != 0 {
		t.Fatalf("%d index entries survived DROP TABLE", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The catalog must load cleanly — a dangling index record would
	// fail the open.
	db = openCatalogDB(t, dir, executor.FaultInjection{})
	defer db.Close()
	if n := len(db.Catalog().Tables()) + len(db.Catalog().Indexes()); n != 0 {
		t.Fatalf("%d relations resurfaced after DROP TABLE", n)
	}
}

// Opening a fresh catalog over a directory holding pre-catalog
// (name-based) relation files must refuse loudly rather than present an
// empty schema that strands the old data.
func TestLegacyDirectoryRefused(t *testing.T) {
	dir := t.TempDir()
	// Non-zero contents: a real pre-catalog file always has a non-zero
	// meta page (all-zero files are contentless husks and are healed,
	// not refused).
	legacyPage := make([]byte, 8192)
	legacyPage[0] = 0x50
	for _, f := range []string{"words.tbl", "words_trie.idx"} {
		if err := os.WriteFile(filepath.Join(dir, f), legacyPage, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := executor.Open(executor.Options{Dir: dir, WAL: true})
	if err == nil || !strings.Contains(err.Error(), "pre-catalog") {
		t.Fatalf("legacy directory not refused: %v", err)
	}

	// A pre-catalog table the user happened to name "rel5" produces a
	// file matching the catalog's own rel<oid> scheme; it must still be
	// refused, never swept as an orphan.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "rel5.tbl"), legacyPage, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := executor.Open(executor.Options{Dir: dir2, WAL: true}); err == nil || !strings.Contains(err.Error(), "pre-catalog") {
		t.Fatalf("rel-named legacy directory not refused: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "rel5.tbl")); err != nil {
		t.Fatalf("legacy file was destroyed: %v", err)
	}
}

// A valid index whose file vanished is rebuilt at open — and that
// rebuild must itself be crash-safe: the entry is flipped invalid before
// building, so an interrupted rebuild can never leave committed partial
// pages under a still-valid entry.
func TestVanishedIndexFileRebuildIsCrashSafe(t *testing.T) {
	dir := t.TempDir()
	db := openCatalogDB(t, dir, executor.FaultInjection{})
	tb, err := db.CreateTable("words", []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}})
	if err != nil {
		t.Fatal(err)
	}
	fillWords(t, tb, 600)
	if _, err := db.CreateIndex("words_trie", "words", "name", "spgist", "spgist_trie"); err != nil {
		t.Fatal(err)
	}
	idxFile := tb.Indexes[0].File()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, idxFile)); err != nil {
		t.Fatal(err)
	}

	// First reopen: the rebuild is interrupted after enough rows for its
	// intra-build batch commits to have made partial pages durable.
	boom := errors.New("injected crash")
	_, err = executor.Open(executor.Options{
		Dir: dir, WAL: true, PoolPages: 16,
		Faults: executor.FaultInjection{DuringIndexBuild: func(rows int) error {
			if rows >= 300 {
				return boom
			}
			return nil
		}},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("open did not surface the injected rebuild crash: %v", err)
	}

	// Second reopen: the interrupted rebuild must present as an invalid
	// entry, not a valid partial index.
	db = openCatalogDB(t, dir, executor.FaultInjection{})
	verifyRebuiltIndex(t, db, true)
}

// Without a write-ahead log, a DROP must make the catalog delete durable
// before unlinking the relation files: a crash in between must not leave
// a durable entry pointing at a missing file (an unopenable database).
func TestUnloggedDropSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	open := func() *executor.DB {
		db, err := executor.Open(executor.Options{Dir: dir, PoolPages: 16})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	for _, name := range []string{"keep", "victim"} {
		tb, err := db.CreateTable(name, []executor.Column{{Name: "x", Type: catalog.Int}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Insert(catalog.Tuple{catalog.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = open()
	if err := db.DropTable("victim"); err != nil {
		t.Fatal(err)
	}
	// Crash without Close: nothing buffered may be relied on.
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	db = open()
	defer db.Close()
	if _, err := db.Table("victim"); err == nil {
		t.Fatal("dropped table resurfaced after unlogged crash")
	}
	if _, err := db.Table("keep"); err != nil {
		t.Fatalf("surviving table lost: %v", err)
	}
}

// A fresh unlogged on-disk database killed before its first flush leaves
// syscat.dat as eagerly-allocated zero pages; reopening must detect the
// contentless husk and heal, not fail forever on "bad magic".
func TestUnloggedFreshCatalogHuskHeals(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "syscat.dat"), make([]byte, 16384), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := executor.Open(executor.Options{Dir: dir})
	if err != nil {
		t.Fatalf("unlogged open over a zeroed catalog husk failed: %v", err)
	}
	if _, err := db.CreateTable("t", []executor.Column{{Name: "x", Type: catalog.Int}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A zeroed data-file husk alongside the catalog husk heals too (a
	// lazily-synced session crashed before its first fsync leaves this).
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "syscat.dat"), make([]byte, 16384), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "rel1.tbl"), make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := executor.Open(executor.Options{Dir: dir2})
	if err != nil {
		t.Fatalf("zeroed husks not healed: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	// But a *non-zero* data file with no catalog is real stranded data:
	// the loud refusal wins.
	dir3 := t.TempDir()
	realPage := make([]byte, 8192)
	realPage[0] = 0x50
	if err := os.WriteFile(filepath.Join(dir3, "rel1.tbl"), realPage, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := executor.Open(executor.Options{Dir: dir3}); err == nil || !strings.Contains(err.Error(), "no system catalog") {
		t.Fatalf("stranded data file not refused: %v", err)
	}
}
