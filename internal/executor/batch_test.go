package executor_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/heap"
	"repro/internal/wal"
)

// batchTuple builds one (name, id) tuple of the word-table shape the
// batch tests share.
func batchTuple(i int) catalog.Tuple {
	return catalog.Tuple{catalog.NewText(fmt.Sprintf("word%05d", i)), catalog.NewInt(int64(i))}
}

// TestInsertBatchMatchesPerRow: a batched insert must leave exactly the
// state the per-row path leaves — same rows, same index answers across
// every attached access method.
func TestInsertBatchMatchesPerRow(t *testing.T) {
	db := executor.OpenMemory()
	defer db.Close()
	mk := func(name string) *executor.Table {
		tb, err := db.CreateTable(name, []executor.Column{
			{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, oc := range []string{"spgist_trie", "btree_text", "spgist_suffix"} {
			method := "spgist"
			if oc == "btree_text" {
				method = "btree"
			}
			if _, err := db.CreateIndex(fmt.Sprintf("%s_ix%d", name, i), name, "name", method, oc); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	batched, perRow := mk("batched"), mk("perrow")

	const rows = 700
	tups := make([]catalog.Tuple, rows)
	for i := range tups {
		tups[i] = batchTuple(i % 300) // duplicates included
	}
	rids, err := batched.InsertBatch(tups)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != rows {
		t.Fatalf("got %d RIDs for %d rows", len(rids), rows)
	}
	for i, rid := range rids {
		tup, err := batched.Get(rid)
		if err != nil || tup == nil {
			t.Fatalf("rid %d (%v): %v, tup=%v", i, rid, err, tup)
		}
		if tup[1].I != tups[i][1].I || tup[0].S != tups[i][0].S {
			t.Fatalf("rid %d points at %v, want %v", i, tup, tups[i])
		}
	}
	for _, tup := range tups {
		if _, err := perRow.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if b, p := batched.RowCount(), perRow.RowCount(); b != p || b != rows {
		t.Fatalf("row counts diverge: batched=%d perrow=%d want %d", b, p, rows)
	}
	collect := func(tb *executor.Table, ix *executor.IndexInfo, pred *executor.Pred) map[string]int {
		got := map[string]int{}
		var err error
		if ix == nil {
			_, err = tb.Select(pred, func(r executor.Row) bool {
				got[r.Tuple[0].S+"|"+r.Tuple[1].String()]++
				return true
			})
		} else {
			err = tb.SelectIndexed(ix, pred, func(r executor.Row) bool {
				got[r.Tuple[0].S+"|"+r.Tuple[1].String()]++
				return true
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	pred := &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText("word")}
	want := collect(perRow, nil, nil)
	if got := collect(batched, nil, nil); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("heap scans diverge")
	}
	for _, ix := range batched.Indexes {
		if !ix.OpClass.SupportsOp(pred.Op) {
			// The suffix tree answers substring ops, not prefix; its
			// batch maintenance is still exercised by the inserts above.
			continue
		}
		got := collect(batched, ix, pred)
		if len(got) != len(want) {
			t.Fatalf("index %s: %d distinct rows, want %d", ix.Name, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("index %s row %q: count %d, want %d", ix.Name, k, got[k], c)
			}
		}
	}
}

// TestInsertBatchValidatesUpFront: a bad row anywhere in the batch fails
// the whole statement before anything is applied.
func TestInsertBatchValidatesUpFront(t *testing.T) {
	db := executor.OpenMemory()
	defer db.Close()
	tb, err := db.CreateTable("t", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := []catalog.Tuple{
		batchTuple(1),
		{catalog.NewText("x")}, // arity
	}
	if _, err := tb.InsertBatch(bad); err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("arity error not reported: %v", err)
	}
	bad[1] = catalog.Tuple{catalog.NewInt(9), catalog.NewInt(9)} // type
	if _, err := tb.InsertBatch(bad); err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("type error not reported: %v", err)
	}
	if n := tb.RowCount(); n != 0 {
		t.Fatalf("failed batches left %d rows", n)
	}
}

// TestBatchInsertCrashAtomic pins the acceptance criterion: a crash in
// the middle of a multi-row INSERT — before the statement's record
// group and commit marker reach the log (the statement's mutations are
// deferred, so at every point up to the commit the log holds nothing of
// it) — must recover with ZERO rows of that statement visible, while
// previously committed rows survive.
func TestBatchInsertCrashAtomic(t *testing.T) {
	dir := t.TempDir()
	var failNext bool
	errBoom := errors.New("injected crash")
	faults := executor.FaultInjection{BeforeDMLCommit: func(stmt string) error {
		if failNext {
			failNext = false
			return errBoom
		}
		return nil
	}}
	open := func() *executor.DB {
		db, err := executor.Open(executor.Options{Dir: dir, WAL: true, Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	if _, err := db.CreateTable("t", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("ix", "t", "name", "spgist", "spgist_trie"); err != nil {
		t.Fatal(err)
	}
	tb, _ := db.Table("t")
	seed := []catalog.Tuple{batchTuple(90001), batchTuple(90002), batchTuple(90003)}
	if _, err := tb.InsertBatch(seed); err != nil {
		t.Fatal(err)
	}

	// The doomed statement: 1000 rows, crash at the commit point.
	doomed := make([]catalog.Tuple, 1000)
	for i := range doomed {
		doomed[i] = batchTuple(i)
	}
	failNext = true
	if _, err := tb.InsertBatch(doomed); !errors.Is(err, errBoom) {
		t.Fatalf("fault did not fire: %v", err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	db = open()
	defer db.Close()
	tb, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tb.RowCount(); n != int64(len(seed)) {
		t.Fatalf("recovered %d rows, want only the %d committed seeds (all-or-nothing violated)", n, len(seed))
	}
	got := map[string]bool{}
	if _, err := tb.Select(nil, func(r executor.Row) bool {
		got[r.Tuple[0].S] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range doomed {
		if got[tup[0].S] {
			t.Fatalf("row %q of the crashed batch is visible after recovery", tup[0].S)
		}
	}
	// The index answers exactly the surviving rows.
	for _, tup := range seed {
		n := 0
		err := tb.SelectIndexed(tb.Indexes[0], &executor.Pred{Column: 0, Op: "=", Arg: tup[0]}, func(executor.Row) bool {
			n++
			return true
		})
		if err != nil || n != 1 {
			t.Fatalf("seed row %q after recovery: n=%d err=%v", tup[0].S, n, err)
		}
	}

	// And the same batch committed normally survives a crash whole.
	if _, err := tb.InsertBatch(doomed); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	db = open()
	tb, err = db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tb.RowCount(); n != int64(len(seed)+len(doomed)) {
		t.Fatalf("committed batch lost rows across crash: %d, want %d", n, len(seed)+len(doomed))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchInsertFasterThanPerRow is the regression guard behind
// BenchmarkInsertBatch1000: the batched path must beat the per-row path
// by a wide margin on a WAL-backed database (it pays one group append
// and one fsync instead of one per row). The 3x gate is deliberately
// far below the benchmarked speedup so scheduler noise cannot flake it.
func TestBatchInsertFasterThanPerRow(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const rows = 400
	run := func(batched bool) time.Duration {
		dir := t.TempDir()
		db, err := executor.Open(executor.Options{Dir: dir, WAL: true})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		tb, err := db.CreateTable("t", []executor.Column{
			{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateIndex("ix", "t", "name", "spgist", "spgist_trie"); err != nil {
			t.Fatal(err)
		}
		tups := make([]catalog.Tuple, rows)
		for i := range tups {
			tups[i] = batchTuple(i)
		}
		start := time.Now()
		if batched {
			if _, err := tb.InsertBatch(tups); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, tup := range tups {
				if _, err := tb.Insert(tup); err != nil {
					t.Fatal(err)
				}
			}
		}
		return time.Since(start)
	}
	perRow := run(false)
	batch := run(true)
	if batch*3 > perRow {
		t.Fatalf("batched insert of %d rows took %v, per-row %v — less than the 3x floor", rows, batch, perRow)
	}
	t.Logf("%d rows: batched %v, per-row %v (%.1fx)", rows, batch, perRow, float64(perRow)/float64(batch))
}

// TestConcurrentInsertDifferentTables: writers on different tables hold
// different table locks and commit concurrently; every batch must land
// exactly once and survive crash recovery.
func TestConcurrentInsertDifferentTables(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	const nTables, nBatches, batchRows = 3, 8, 50
	tables := make([]*executor.Table, nTables)
	for i := range tables {
		tb, err := db.CreateTable(fmt.Sprintf("t%d", i), []executor.Column{
			{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateIndex(fmt.Sprintf("ix%d", i), tb.Name, "name", "spgist", "spgist_trie"); err != nil {
			t.Fatal(err)
		}
		tables[i] = tb
	}
	var wg sync.WaitGroup
	for g, tb := range tables {
		wg.Add(1)
		go func(g int, tb *executor.Table) {
			defer wg.Done()
			for b := 0; b < nBatches; b++ {
				tups := make([]catalog.Tuple, batchRows)
				for i := range tups {
					tups[i] = batchTuple(g*1000000 + b*1000 + i)
				}
				if _, err := tb.InsertBatch(tups); err != nil {
					t.Errorf("table %d batch %d: %v", g, b, err)
					return
				}
			}
		}(g, tb)
	}
	wg.Wait()
	if t.Failed() {
		db.Crash()
		return
	}
	check := func(db *executor.DB) {
		for i := 0; i < nTables; i++ {
			tb, err := db.Table(fmt.Sprintf("t%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if n := tb.RowCount(); n != nBatches*batchRows {
				t.Fatalf("table %d: %d rows, want %d", i, n, nBatches*batchRows)
			}
			n := 0
			if err := tb.SelectIndexed(tb.Indexes[0], &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText("word")}, func(r executor.Row) bool {
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if n != nBatches*batchRows {
				t.Fatalf("table %d index: %d rows, want %d", i, n, nBatches*batchRows)
			}
		}
	}
	check(db)
	// All commits are durable: recovery after a crash changes nothing.
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	db, err = executor.Open(executor.Options{Dir: dir, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	check(db)
}

// TestHeapInsertBatchFillsPages: the heap batch path packs records onto
// shared pages (one pin, one batch WAL record per page) instead of
// spreading them one page ahead of the meta hint like repeated Insert
// calls would on a torn fast path — RIDs must come back page-clustered.
func TestHeapInsertBatchFillsPages(t *testing.T) {
	db := executor.OpenMemory()
	defer db.Close()
	tb, err := db.CreateTable("t", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	tups := make([]catalog.Tuple, 2000)
	for i := range tups {
		tups[i] = batchTuple(i)
	}
	rids, err := tb.InsertBatch(tups)
	if err != nil {
		t.Fatal(err)
	}
	perPage := map[heap.RID]bool{}
	pages := map[uint32]bool{}
	for _, rid := range rids {
		if perPage[rid] {
			t.Fatalf("duplicate RID %v", rid)
		}
		perPage[rid] = true
		pages[uint32(rid.Page)] = true
	}
	// ~20 byte records on 8KB pages: 2000 rows must pack into well under
	// one page per 50 rows.
	if len(pages) > len(rids)/50 {
		t.Fatalf("%d rows spread over %d pages — batch is not filling pages", len(rids), len(pages))
	}
}

// TestInsertBatchGroupCommit: concurrent committers on different tables
// must share fsyncs — with N sessions committing at once, the log's
// sync count stays well below its commit (statement) count.
func TestInsertBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const nTables = 4
	tables := make([]*executor.Table, nTables)
	for i := range tables {
		tb, err := db.CreateTable(fmt.Sprintf("t%d", i), []executor.Column{
			{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
		})
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tb
	}
	before := db.WAL().Stats()
	const perTable = 40
	var wg sync.WaitGroup
	for g, tb := range tables {
		wg.Add(1)
		go func(g int, tb *executor.Table) {
			defer wg.Done()
			for i := 0; i < perTable; i++ {
				if _, err := tb.Insert(batchTuple(g*100000 + i)); err != nil {
					t.Errorf("table %d: %v", g, err)
					return
				}
			}
		}(g, tb)
	}
	wg.Wait()
	st := db.WAL().Stats()
	commits := int64(nTables * perTable)
	syncs := st.Syncs - before.Syncs
	// Whether commits actually overlap here is scheduling- and
	// disk-latency-dependent (under -race the instrumentation slows the
	// compute phase so much that fsyncs rarely overlap), so this test
	// only pins the plumbing — never more than one fsync per statement —
	// and logs the observed sharing. The deterministic guard for the
	// sharing property itself is wal.TestGroupCommitSharesFsync.
	if syncs > commits {
		t.Fatalf("%d syncs for %d commits — more than one fsync per statement", syncs, commits)
	}
	t.Logf("%d statement commits used %d fsyncs", commits, syncs)
}

// TestOversizedDMLDoesNotExhaustPool: statements bigger than the buffer
// pool must still execute — every dirtied page is unevictable until its
// records append, so unbounded single-marker statements would wedge the
// pool; the pool-proportional chunked commits keep them running on a
// pool a fraction of the table's size, like the per-row path always
// could.
func TestOversizedDMLDoesNotExhaustPool(t *testing.T) {
	dir := t.TempDir()
	open := func() *executor.DB {
		db, err := executor.Open(executor.Options{Dir: dir, WAL: true, PoolPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	tb, err := db.CreateTable("big", []executor.Column{
		{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("bix", "big", "name", "btree", "btree_text"); err != nil {
		t.Fatal(err)
	}
	// ~12k rows over ~170 heap pages — nearly 3x the 64-frame pool.
	const rows = 12000
	tups := make([]catalog.Tuple, rows)
	for i := range tups {
		tups[i] = batchTuple(i)
	}
	if _, err := tb.InsertBatch(tups); err != nil {
		t.Fatalf("oversized batch insert: %v", err)
	}
	if n := tb.RowCount(); n != rows {
		t.Fatalf("inserted %d rows, want %d", n, rows)
	}
	// The oversized DELETE the seed's per-row commits could always run.
	n, err := tb.DeleteWhere(nil)
	if err != nil {
		t.Fatalf("oversized delete: %v", err)
	}
	if n != rows {
		t.Fatalf("deleted %d rows, want %d", n, rows)
	}
	if got := tb.RowCount(); got != 0 {
		t.Fatalf("%d rows survived DELETE", got)
	}
	// The pool is healthy afterwards: more statements run, and the
	// durable state round-trips a crash.
	if _, err := tb.InsertBatch(tups[:100]); err != nil {
		t.Fatalf("insert after oversized delete: %v", err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	db = open()
	defer db.Close()
	tb, err = db.Table("big")
	if err != nil {
		t.Fatal(err)
	}
	if n := tb.RowCount(); n != 100 {
		t.Fatalf("recovered %d rows, want 100", n)
	}
}
