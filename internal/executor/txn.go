package executor

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/storage"
)

// This file is the transaction layer: transaction-ID allocation backed
// by the system catalog, per-statement snapshots, tuple visibility, and
// the BEGIN/COMMIT/ROLLBACK life cycle. The engine runs PostgreSQL-style
// READ COMMITTED multi-version concurrency control:
//
//   - Every row version carries an 18-byte header (heap.TupleHeader)
//     with xmin (the inserting transaction) and xmax (the deleting one).
//     DELETE and UPDATE never remove a version in place — they stamp
//     xmax (UPDATE additionally inserts the successor version), and
//     VACUUM reclaims versions no snapshot can see anymore.
//   - Readers never take the table's logical write lock. A statement
//     acquires a fresh Snapshot, holds the table's physical page lock
//     (Table.phys) shared for its plan+scan window, and filters every
//     version through Snapshot.Visible. Writers exclude each other per
//     table through Table.mu, held by the owning transaction from first
//     touch until COMMIT/ROLLBACK, and take Table.phys exclusively only
//     around actual page mutation — so a reader can scan a table while
//     a writer's transaction on the same table is open, and sees exactly
//     the versions its snapshot allows.
//   - Commit is a WAL record (wal.RecTxnCommit) appended atomically with
//     the transaction's final statement group. Statements inside an open
//     transaction append their records under a plain group marker
//     *without* fsync: the marker releases their no-steal frames, while
//     crash recovery's abort fixup (storage/walapply.go) marks every
//     version of a transaction with no commit record aborted — which is
//     also what makes a multi-chunk statement atomic: all its chunks
//     carry one xid, and no chunk is visible until the commit record.
//   - ROLLBACK walks the transaction's in-memory undo list backwards,
//     marking inserted versions aborted and clearing stamped xmax
//     fields, then appends wal.RecTxnAbort. A crash anywhere during
//     rollback recovers to the same end state through the abort fixup.
//
// Transaction IDs are allocated from a counter whose high-water mark
// persists in the system catalog ('X' record) in strides, so no xid is
// ever reused across restarts — visibility comparisons are plain
// numeric. Frozen rows (xmin 0: system catalog records and rows written
// through the legacy non-transactional heap API) are visible to every
// snapshot.

// xidStride is how many transaction IDs one catalog update leases. The
// high-water mark is appended to the log before the first xid of a
// stride is handed out and becomes durable with (at the latest) the
// first commit fsync that uses the stride, so a crash can only waste
// the unissued remainder, never reissue an xid that mattered.
const xidStride = 4096

// rollbackChunkOps bounds how many undo operations apply between the
// group markers of one ROLLBACK, for the same reason DML chunks: every
// page an undo op dirties is unevictable until its records append.
const rollbackChunkOps = 256

// DefaultLockTimeout bounds how long a DML statement waits for a table
// lock held by another open transaction before failing.
const DefaultLockTimeout = 10 * time.Second

// Snapshot fixes what one statement can see: every transaction that
// committed before the snapshot was taken, plus the owning transaction's
// own writes. Snapshots are registered with the TxnManager while in use
// so VACUUM's horizon never reclaims a version an in-flight statement
// could still return.
type Snapshot struct {
	// xid is the owning transaction's ID; 0 for a plain read statement.
	xid uint64
	// xmax is the first transaction ID not yet assigned when the
	// snapshot was taken: anything >= xmax started after us.
	xmax uint64
	// active holds the transactions in progress at snapshot time
	// (excluding our own): committed later or not, their writes are
	// invisible to this snapshot.
	active map[uint64]bool
}

// Visible reports whether a row version with header h is visible to the
// snapshot: its inserter must have committed before the snapshot (or be
// the snapshot's own transaction), and its deleter — if any — must not
// have.
func (s *Snapshot) Visible(h heap.TupleHeader) bool {
	if h.Flags&heap.FlagXminAborted != 0 {
		return false
	}
	// Frozen versions (xmin 0) are visible to everyone; our own
	// inserts are visible to us regardless of commit state.
	if h.Xmin != 0 && h.Xmin != s.xid {
		if h.Xmin >= s.xmax || s.active[h.Xmin] {
			return false // inserter had not committed at snapshot time
		}
	}
	if h.Xmax == 0 {
		return true
	}
	if s.xid != 0 && h.Xmax == s.xid {
		return false // we deleted it ourselves
	}
	if h.Xmax >= s.xmax || s.active[h.Xmax] {
		return true // deleter had not committed at snapshot time
	}
	return false
}

// undoOp discriminates the in-memory undo records of one transaction.
type undoOp uint8

const (
	// undoInsert compensates an inserted version: mark it aborted.
	undoInsert undoOp = iota
	// undoSetXmax compensates a delete stamp: clear the version's xmax.
	undoSetXmax
)

type undoRec struct {
	t   *Table
	op  undoOp
	rid heap.RID
}

// Txn is one transaction: implicit (a single autocommitted statement)
// or explicit (BEGIN ... COMMIT/ROLLBACK). It owns the write locks of
// every table it has touched until it ends, and records everything it
// must compensate on ROLLBACK. A Txn is not safe for concurrent use by
// multiple goroutines.
type Txn struct {
	db       *DB
	xid      uint64
	implicit bool
	// tables holds the write locks this transaction owns (Table.mu,
	// acquired through TxnManager.lockTable), released when it ends.
	tables map[*Table]struct{}
	undo   []undoRec
	// logged is set once any of the transaction's records reached the
	// write-ahead log; CHECKPOINT refuses to run while such a
	// transaction is open (recycling segments would destroy the
	// evidence recovery's abort fixup needs).
	logged bool
	done   bool
}

// Xid returns the transaction's ID.
func (tx *Txn) Xid() uint64 { return tx.xid }

// TxnManager allocates transaction IDs, tracks the active transaction
// and registered snapshot sets (the VACUUM horizon), and owns the
// table-write-lock bookkeeping that lets DDL refuse to touch a table an
// open transaction holds.
type TxnManager struct {
	db *DB

	mu      sync.Mutex
	nextXid uint64
	// lease is the exclusive upper bound of the persisted stride:
	// allocating nextXid >= lease first commits a new high-water mark.
	lease  uint64
	active map[uint64]*Txn
	snaps  map[*Snapshot]struct{}
	owners map[*Table]*Txn
}

func newTxnManager(db *DB) *TxnManager {
	high := uint64(0)
	if db.cat != nil {
		high = db.cat.XidHigh()
	}
	return &TxnManager{
		db:      db,
		nextXid: high + 1,
		lease:   high + 1,
		active:  make(map[uint64]*Txn),
		snaps:   make(map[*Snapshot]struct{}),
		owners:  make(map[*Table]*Txn),
	}
}

// begin creates and registers a transaction. The xid is allocated and
// the Txn entered into tm.active under ONE tm.mu critical section:
// were the lock dropped in between, a snapshot taken in the gap would
// have xmax past the new xid without listing it active, so Visible
// would read the still-running transaction as committed and leak its
// dirty writes to concurrent readers.
//
// Allocation persists a new stride of the catalog's high-water mark
// when the current lease runs out. Callers hold the shared statement
// lock (so no DDL is mutating the catalog concurrently); the stride
// append stages only the catalog's own pool, never sweeping a
// concurrent DML statement's deferred records under its marker. No
// fsync: the log is sequential, so the first commit fsync of any
// transaction using the stride also makes the stride record durable —
// and if nothing from the stride ever gets an fsync, losing the
// high-water mark loses nothing that mattered.
func (tm *TxnManager) begin(implicit bool) (*Txn, error) {
	tx := &Txn{
		db:       tm.db,
		implicit: implicit,
		tables:   make(map[*Table]struct{}),
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.nextXid >= tm.lease {
		high := tm.nextXid + xidStride - 1
		if err := tm.db.cat.SetXidHigh(high); err != nil {
			return nil, err
		}
		if err := tm.db.appendPools([]*storage.BufferPool{tm.db.catPool}, true); err != nil {
			return nil, err
		}
		tm.lease = high + 1
	}
	tx.xid = tm.nextXid
	tm.nextXid++
	tm.active[tx.xid] = tx
	return tx, nil
}

// snapshot takes a new snapshot for one statement, owned by tx (nil for
// a plain read). Release it with release when the statement ends — the
// VACUUM horizon holds back reclamation while it is registered.
func (tm *TxnManager) snapshot(tx *Txn) *Snapshot {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	s := &Snapshot{xmax: tm.nextXid}
	if tx != nil {
		s.xid = tx.xid
	}
	if len(tm.active) > 0 {
		s.active = make(map[uint64]bool, len(tm.active))
		for xid := range tm.active {
			if xid != s.xid {
				s.active[xid] = true
			}
		}
	}
	tm.snaps[s] = struct{}{}
	return s
}

func (tm *TxnManager) release(s *Snapshot) {
	tm.mu.Lock()
	delete(tm.snaps, s)
	tm.mu.Unlock()
}

// horizon returns the oldest transaction ID that could still matter to
// any active transaction or registered snapshot: every committed-dead
// version whose xmax is older is invisible to everyone and safe to
// reclaim.
func (tm *TxnManager) horizon() uint64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	h := tm.nextXid
	for xid := range tm.active {
		if xid < h {
			h = xid
		}
	}
	for s := range tm.snaps {
		if s.xmax < h {
			h = s.xmax
		}
		for xid := range s.active {
			if xid < h {
				h = xid
			}
		}
	}
	return h
}

// tableLock is the per-table logical write lock: a mutex built on a
// one-slot channel, because the wait must be able to give up after the
// database's lock timeout — the owner may be an idle open transaction
// that never finishes, and an unbounded block here would also stall any
// DDL queued behind the waiter's shared statement lock. A blocked
// acquirer parks on the channel and wakes the instant the holder
// releases, with no polling.
type tableLock struct {
	ch chan struct{}
}

func newTableLock() tableLock { return tableLock{ch: make(chan struct{}, 1)} }

// TryLock acquires the lock iff it is free.
func (l *tableLock) TryLock() bool {
	select {
	case l.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// LockTimeout acquires the lock, giving up after d. Reports whether the
// lock was acquired.
func (l *tableLock) LockTimeout(d time.Duration) bool {
	select {
	case l.ch <- struct{}{}:
		return true
	default:
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case l.ch <- struct{}{}:
		return true
	case <-timer.C:
		return false
	}
}

// Unlock releases the lock. Unlocking a lock that is not held would
// block forever — the ownership bookkeeping in TxnManager prevents it.
func (l *tableLock) Unlock() { <-l.ch }

// lockTable acquires t's write lock for tx (a no-op if tx already owns
// it), waiting at most the database's lock timeout.
func (tm *TxnManager) lockTable(tx *Txn, t *Table) error {
	if _, ok := tx.tables[t]; ok {
		return nil
	}
	if !t.mu.TryLock() {
		m := tm.db.waits.Begin(obs.WaitLockTable)
		ok := t.mu.LockTimeout(tm.db.lockTimeout)
		tm.db.met.lockWaitNs.Add(tm.db.waits.End(m))
		if !ok {
			return fmt.Errorf("executor: timed out waiting for write lock on table %q (held by an open transaction?)", t.Name)
		}
	}
	tm.mu.Lock()
	tm.owners[t] = tx
	tm.mu.Unlock()
	tx.tables[t] = struct{}{}
	return nil
}

// lockedBy reports the transaction owning t's write lock, nil if none.
func (tm *TxnManager) lockedBy(t *Table) *Txn {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.owners[t]
}

// anyLoggedActive reports whether any open transaction has records in
// the write-ahead log.
func (tm *TxnManager) anyLoggedActive() bool {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	for _, tx := range tm.active {
		if tx.logged {
			return true
		}
	}
	return false
}

// activeTxns snapshots the open transaction list (Close rolls each one
// back).
func (tm *TxnManager) activeTxns() []*Txn {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]*Txn, 0, len(tm.active))
	for _, tx := range tm.active {
		out = append(out, tx)
	}
	return out
}

// finish releases everything tx owns and unregisters it. The undo list
// is dropped — callers have either committed or already compensated.
func (tm *TxnManager) finish(tx *Txn) {
	tm.mu.Lock()
	for t := range tx.tables {
		if tm.owners[t] == tx {
			delete(tm.owners, t)
		}
	}
	delete(tm.active, tx.xid)
	tm.mu.Unlock()
	for t := range tx.tables {
		t.mu.Unlock()
	}
	tx.tables = make(map[*Table]struct{})
	tx.undo = nil
	tx.done = true
}

// Begin starts an explicit transaction. Its statements run through the
// *Tx entry points (InsertBatchTx, DeleteWhereTx, UpdateWhereTx,
// SelectTx, ...) and nothing they change is visible to other snapshots
// — or durable — until Commit. The caller owns the Txn: it must end it
// with Commit or Rollback (Close rolls back whatever is left open).
func (db *DB) Begin() (*Txn, error) {
	rlockTimed(&db.stmtMu, db.met.lockWaitNs, db.waits, obs.WaitLockCatalog)
	defer db.stmtMu.RUnlock()
	if err := db.poisoned(); err != nil {
		return nil, err
	}
	tx, err := db.tm.begin(false)
	if err != nil {
		return nil, err
	}
	db.met.txnBegin.Inc()
	return tx, nil
}

// Commit makes every change of the transaction durable and visible: the
// commit record is appended atomically after the transaction's already-
// logged statement groups, and the log is forced per its sync mode. A
// transaction that changed nothing commits without touching the log.
// A COMMIT that fails aborts the transaction (PostgreSQL semantics):
// its versions are compensated and its locks released — leaving it
// open would pin the VACUUM horizon and block CHECKPOINT until Close.
func (tx *Txn) Commit() error {
	if tx.done {
		return fmt.Errorf("executor: transaction %d already ended", tx.xid)
	}
	db := tx.db
	rlockTimed(&db.stmtMu, db.met.lockWaitNs, db.waits, obs.WaitLockCatalog)
	defer db.stmtMu.RUnlock()
	if err := db.commitTxn(tx); err != nil {
		db.met.txnRollback.Inc()
		if rerr := db.rollbackTxn(tx); rerr != nil && db.broken == nil {
			return fmt.Errorf("%w (rollback also failed: %v)", err, rerr)
		}
		return err
	}
	db.tm.finish(tx)
	db.met.txnCommit.Inc()
	return nil
}

// commitTxn appends the transaction's commit record (with any pending
// deferred records of its tables) under one marker and forces the log.
// Caller holds the statement lock (shared or exclusive).
func (db *DB) commitTxn(tx *Txn) error {
	if err := db.poisoned(); err != nil {
		return err
	}
	if db.wal == nil || !tx.logged {
		return nil
	}
	var pools []*storage.BufferPool
	for t := range tx.tables {
		for _, ix := range t.Indexes {
			if err := ix.Idx.SaveMeta(); err != nil {
				return err
			}
		}
		pools = append(pools, tablePools(t)...)
	}
	if err := db.appendPoolsXid(pools, true, tx.xid, 0); err != nil {
		return err
	}
	if tr := obs.Current(); tr != nil {
		sp := tr.StartSpan("commit_wait", "wal")
		err := db.wal.Commit()
		sp.End()
		return err
	}
	return db.wal.Commit()
}

// Rollback undoes the transaction: every version it inserted is marked
// aborted, every xmax it stamped is cleared, and an abort record closes
// its trail in the log. Always releases the transaction's locks, even
// on error. Rolling back a transaction that changed nothing is free.
func (tx *Txn) Rollback() error {
	if tx.done {
		return fmt.Errorf("executor: transaction %d already ended", tx.xid)
	}
	db := tx.db
	rlockTimed(&db.stmtMu, db.met.lockWaitNs, db.waits, obs.WaitLockCatalog)
	defer db.stmtMu.RUnlock()
	err := db.rollbackTxn(tx)
	db.met.txnRollback.Inc()
	return err
}

// rollbackTxn applies tx's undo list backwards and finishes it. Caller
// holds the statement lock (shared or exclusive — Close calls in here
// under its exclusive lock). The undo appends ride under plain group
// markers with no fsync: if a crash interrupts them, recovery's abort
// fixup reaches the same end state from the missing commit record.
func (db *DB) rollbackTxn(tx *Txn) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	pending := 0
	touched := make(map[*Table]struct{})
	flush := func() {
		if db.wal == nil || pending == 0 {
			return
		}
		var pools []*storage.BufferPool
		for t := range touched {
			pools = append(pools, tablePools(t)...)
		}
		keep(db.appendPoolsXid(pools, true, 0, 0))
		pending = 0
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		u.t.phys.Lock()
		var err error
		switch u.op {
		case undoInsert:
			err = u.t.Heap.MarkAborted(u.rid)
		case undoSetXmax:
			err = u.t.Heap.ClearXmax(u.rid)
		}
		u.t.phys.Unlock()
		keep(err)
		touched[u.t] = struct{}{}
		pending++
		if pending >= rollbackChunkOps {
			flush()
		}
	}
	flush()
	if db.wal != nil && tx.logged {
		// Close the transaction's trail with an abort record under its
		// own marker. Informational: recovery treats a missing commit
		// record identically. No fsync — a torn abort recovers the same.
		g := newAbortGroup(tx.xid)
		_, _, err := db.wal.AppendGroupCommit(g)
		keep(err)
	}
	db.tm.finish(tx)
	return firstErr
}
