// Package executor is the miniature query engine of this reproduction:
// heap tables, index maintenance across the access methods of package am,
// a PostgreSQL-style cost-based choice between sequential and index scans
// (planner.go), and incremental nearest-neighbor cursors. It plays the
// role of the PostgreSQL executor and planner that the paper's SP-GiST
// realization plugs into.
package executor

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/syscat"
	"repro/internal/wal"
)

// Column describes one table column.
type Column struct {
	Name string
	Type catalog.Type
}

// IndexInfo is one index over a table column.
type IndexInfo struct {
	Name    string
	Column  int // ordinal in the table schema
	OpClass *catalog.OperatorClass
	Idx     am.Index

	pool *storage.BufferPool
	file string // data file base name, from the system catalog

	// Per-opclass counters, cached here so the scan path pays one
	// atomic add instead of a registry lookup.
	scans        *obs.Counter // index scans through this opclass
	pagesVisited *obs.Counter // distinct pages seen by traced (analyzed) scans
}

// File returns the index's data file base name (catalog introspection).
func (ix *IndexInfo) File() string { return ix.file }

// Table is a heap file plus its schema and indexes.
type Table struct {
	Name    string
	Columns []Column
	Heap    *heap.File
	Indexes []*IndexInfo

	oid  uint64 // catalog OID
	file string // heap file base name, from the system catalog

	// Planner statistics (the shapes live in catalog.ColumnStats; the
	// executor's ANALYZE in analyze.go fills them from a block sample).
	// Persisted statistics are loaded from the system catalog at Open;
	// otherwise ensureStats samples lazily on the first predicate plan.
	// Like PostgreSQL statistics they go stale as rows change — churn
	// counts the inserts+deletes since they were collected so the
	// planner can discount them. statsMu guards all of it: the planner
	// reads on the unlocked query path while ANALYZE / CREATE INDEX
	// (under the statement lock) refresh it.
	statsMu    sync.Mutex
	colStats   []catalog.ColumnStats
	statsRows  int64 // heap row count when colStats was collected
	sampleRows int64 // rows the collecting sample examined
	haveStats  bool
	churn      int64
	// statsOnce gates the lazy sampling run by ensureStats.
	statsOnce sync.Once

	// mu is the per-table *logical* write lock, the second level of the
	// lock hierarchy (below db.stmtMu, which every statement holds at
	// least shared). A transaction — implicit or explicit — acquires it
	// through TxnManager.lockTable on first touch and keeps it until
	// COMMIT/ROLLBACK, so two write transactions on one table never
	// interleave, while writers on *different* tables overlap and meet
	// in the write-ahead log's group-commit fsync. Readers never take
	// it: they hold phys shared and filter versions through a snapshot.
	// DDL needs no table locks either — it takes db.stmtMu exclusive,
	// which excludes every statement at once (and refuses tables whose
	// mu an open transaction owns; see TxnManager.lockedBy).
	mu tableLock

	// phys is the physical page latch, the third level: readers hold it
	// shared for their whole plan+scan window, a writing transaction
	// takes it exclusive only around actual page mutation — so a SELECT
	// proceeds while a write transaction on the same table is open, and
	// a scan never observes a torn page or a half-applied statement's
	// in-flight slot writes. Always acquired after mu, never before.
	phys sync.RWMutex

	db *DB
}

// lockRead takes the locks of a read statement against t: the shared
// catalog/DDL lock plus t's shared physical latch. A writer transaction
// on the same table blocks this only while it is actually mutating
// pages, never for its full transaction. Waits are charged to the
// lock-wait counter; the uncontended path reads no clock.
func (t *Table) lockRead() {
	rlockTimed(&t.db.stmtMu, t.db.met.lockWaitNs, t.db.waits, obs.WaitLockCatalog)
	rlockTimed(&t.phys, t.db.met.lockWaitNs, t.db.waits, obs.WaitLockTable)
}

func (t *Table) unlockRead() {
	t.phys.RUnlock()
	t.db.stmtMu.RUnlock()
}

// ensureStats lazily samples planner statistics the first time a
// predicate is planned against a reattached table that has no persisted
// statistics (running ANALYZE for every table at Open would make
// reopening O(total rows)). The in-memory result is not persisted —
// only the explicit ANALYZE statement writes the catalog — so databases
// that never ANALYZE behave exactly as before statistics persistence.
func (t *Table) ensureStats() {
	t.statsOnce.Do(func() {
		t.statsMu.Lock()
		have := t.haveStats
		t.statsMu.Unlock()
		if !have {
			// Best effort: a failed sample leaves haveStats false, which
			// the planner reads as "unknown".
			t.analyzeInMemory()
		}
	})
}

// OID returns the table's catalog OID.
func (t *Table) OID() uint64 { return t.oid }

// File returns the table's heap file base name (catalog introspection).
func (t *Table) File() string { return t.file }

// bumpChurn counts n rows inserted or deleted since the last ANALYZE.
func (t *Table) bumpChurn(n int) {
	t.statsMu.Lock()
	t.churn += int64(n)
	t.statsMu.Unlock()
}

// catalogFile is the base name of the system catalog's own heap file. It
// deliberately shares no extension with relation files (rel<oid>.tbl,
// rel<oid>.idx) so the orphan sweep can never touch it.
const catalogFile = "syscat.dat"

// DB is a database: a set of tables and indexes over one directory (or
// over memory when dir is empty), described by a persistent system
// catalog stored alongside the data files.
type DB struct {
	mu        sync.Mutex
	dir       string
	pageSize  int
	poolPages int
	tables    map[string]*Table
	pools     []*storage.BufferPool
	wal       *wal.Writer
	recovered storage.RecoveryStats
	crashed   bool

	cat     *syscat.Catalog
	catPool *storage.BufferPool // the catalog heap's own pool
	rebuilt []string            // indexes rebuilt during Open (recorded invalid)
	faults  FaultInjection

	// pf is the shared prefetcher every pool attaches to (nil when
	// readahead is disabled); readahead is the per-pool window. bgw is
	// the background writer (nil when disabled). All are created at Open
	// and immutable afterwards — only teardown stops them.
	pf        *storage.Prefetcher
	readahead int
	bgw       *bgWriter

	// serialColdReads / ioLatency mirror the benchmark Options onto
	// every pool Open creates; immutable after Open.
	serialColdReads  bool
	diskReadLatency  time.Duration
	diskWriteLatency time.Duration

	// tm is the transaction layer (txn.go): xid allocation, snapshots,
	// the active-transaction set, and table-lock ownership. Always
	// non-nil after Open.
	tm *TxnManager
	// lockTimeout bounds how long a DML statement polls for a table
	// lock owned by another open transaction (Options.LockTimeout).
	lockTimeout time.Duration

	// met is the pg_stat layer: always non-nil, created at Open. See
	// metrics.go.
	met *execMetrics

	// waits and activity are the wait-event and live-session layer
	// (pg_stat_activity): both always non-nil, created at Open, shared
	// by every component that can block — the statement locks here, the
	// buffer pools' shard mutexes and miss I/O, the WAL writer's group
	// commit. Immutable after Open.
	waits    *obs.WaitSet
	activity *obs.Activity

	// traceDir, when non-empty, makes every statement emit its span
	// timeline as a Chrome trace-event JSON file there; immutable after
	// Open.
	traceDir string

	// slowQueryThreshold/slowQueryLog configure the slow-query log (see
	// Options); immutable after Open.
	slowQueryThreshold time.Duration
	slowQueryLog       io.Writer

	// broken poisons the database when a DDL compensation fails: the
	// in-memory catalog and its uncommitted heap records have diverged
	// in a way no later action may commit. Guarded by stmtMu.
	broken error

	// degraded, once set, marks the database read-only: the write-ahead
	// log hit ENOSPC or a permanent device error and can accept no more
	// records. See degraded.go. Lock-free: read on every DML prologue.
	degraded degradedPtr

	// diskFaults is the fault-injection wrap applied to every data
	// file's disk manager (Options.DiskFaults); faultDMs retains the
	// FaultDiskManagers it produced so their injection counters can be
	// sampled into SHOW STATS. Both immutable after the pools exist
	// (appends happen under the exclusive statement lock).
	diskFaults func(fileName string, dm storage.DiskManager) storage.DiskManager
	faultDMs   []*storage.FaultDiskManager

	// stmtMu is the catalog/DDL lock, the top of the two-level lock
	// hierarchy (stmtMu, then Table.mu):
	//
	//   - shared (RLock): every table statement — SELECT, EXPLAIN,
	//     nearest-neighbor scans, RID lookups, INSERT, DELETE. Readers
	//     additionally hold the target table's mu shared and writers
	//     hold it exclusive, so reads and writes of one table still
	//     exclude each other (scans work on shared decoded-node caches
	//     and unversioned heap pages — there is no MVCC), while writers
	//     on different tables overlap and commit together through the
	//     write-ahead log's group-commit fsync.
	//   - exclusive (Lock): DDL, ANALYZE, CHECKPOINT, Close, Crash —
	//     anything that changes the schema, the shared catalog state, or
	//     the log's segment structure excludes every statement at once.
	//
	// Concurrent writers are safe for the log because a statement's
	// records are *deferred* during execution and appended as one
	// contiguous group with its commit marker (wal.AppendGroupCommit):
	// a marker can only ever cover whole statements, so recovery keeps
	// its positional everything-before-the-last-marker rule. A
	// checkpoint still excludes writers exclusively — recycling a log
	// segment under an in-flight statement's unflushed pages would lose
	// them. stmtMu is always acquired before Table.mu and db.mu, and no
	// method may take it (shared or exclusive) while already holding it
	// — Go's RWMutex does not support recursive read locking, so
	// internal code paths use the *Locked variants instead.
	stmtMu sync.RWMutex
}

// faultErr marks an error raised through FaultInjection: a simulated
// crash point. DDL error paths skip their catalog compensation for it —
// the test is about to Crash() the database, and healing would destroy
// exactly the state the crash is meant to leave behind.
type faultErr struct{ error }

func (e faultErr) Unwrap() error { return e.error }

func isFault(err error) bool {
	var f faultErr
	return errors.As(err, &f)
}

// FaultInjection provides test-only crash points inside DDL statements.
// When a hook returns an error the statement aborts with its catalog
// records appended but uncommitted — the state an OS crash at that
// instant would leave in the log. The database must then be discarded
// with Crash(); continuing to use it is undefined.
type FaultInjection struct {
	// DuringIndexBuild runs after each row back-filled by CREATE INDEX.
	DuringIndexBuild func(rowsDone int) error
	// BeforeDDLCommit runs immediately before a DDL statement's commit
	// marker would be appended. stmt names the statement, e.g.
	// "CREATE TABLE t".
	BeforeDDLCommit func(stmt string) error
	// BeforeDMLCommit runs inside a DML statement before any of its
	// records reach the log (mutations are deferred, so whatever has
	// been applied exists only in memory), and before its first chunk
	// commit — a crash here must recover with none of the statement
	// visible. stmt names the statement, e.g. "INSERT t 1000".
	BeforeDMLCommit func(stmt string) error
	// BetweenDMLChunks runs inside an oversized DML statement after
	// each pool-bounded chunk's records were appended to the log
	// (under a plain marker, without the statement's transaction
	// commit record). A crash here must recover with *none* of the
	// statement visible — the chunks carry one uncommitted xid, and
	// recovery's abort fixup hides them. stmt names the statement,
	// chunksDone counts the appended chunks.
	BetweenDMLChunks func(stmt string, chunksDone int) error
	// PanicOn makes FaultPanicCheck panic on any statement containing
	// the substring — the hook behind the server's per-session panic
	// recovery test.
	PanicOn string
}

// FaultPanicCheck panics when fault injection arms PanicOn and stmt
// contains it. The SQL session layer calls it at statement start, so a
// deliberately poisoned statement blows up inside a single session's
// execution path — exactly where an unexpected executor bug would.
func (db *DB) FaultPanicCheck(stmt string) {
	if p := db.faults.PanicOn; p != "" && strings.Contains(stmt, p) {
		panic(fmt.Sprintf("executor: injected panic on statement %q", stmt))
	}
}

// Options configure a database.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// PageSize defaults to storage.DefaultPageSize.
	PageSize int
	// PoolPages is the buffer pool size per file; defaults to 1024.
	PoolPages int
	// WAL enables write-ahead logging and crash recovery (requires
	// Dir). On open, any log left by a previous run is replayed into
	// the data files before they are attached.
	WAL bool
	// WALSegmentBytes is the soft segment size limit; defaults to
	// wal.DefaultSegmentBytes.
	WALSegmentBytes int64
	// WALSync controls commit durability; defaults to wal.SyncCommit.
	WALSync wal.SyncMode
	// Faults injects test-only crash points into DDL statements.
	Faults FaultInjection
	// DiskFaults, when set, wraps every data file's disk manager at
	// pool creation — the I/O fault-injection hook. Return
	// storage.WithFaults(dm, seed) (configured with probabilities and
	// schedules) to inject errors into that file's reads and writes, or
	// dm unchanged to leave the file alone. Test and torture-suite use.
	DiskFaults func(fileName string, dm storage.DiskManager) storage.DiskManager
	// LockTimeout bounds how long a DML statement waits for a table
	// write lock held by another open transaction before failing;
	// defaults to DefaultLockTimeout.
	LockTimeout time.Duration
	// SlowQueryThreshold enables the slow-query log: a SQL statement
	// whose execution exceeds it is written to SlowQueryLog with its
	// text, duration, and buffer counters. Zero (the default) disables
	// the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines; defaults to os.Stderr.
	SlowQueryLog io.Writer
	// TraceDir, when non-empty, writes every SQL statement's span
	// timeline (parse, plan, execute, index descents, page reads, WAL
	// waits) as one Chrome trace-event JSON file per statement into the
	// directory — the always-on variant of EXPLAIN (TRACE). Tracing is
	// armed per statement; with TraceDir empty (the default) the
	// instrumentation costs one atomic load per potential span site.
	TraceDir string
	// ReadaheadPages is how many pages ahead sequential heap scans and
	// btree/SP-GiST descents prefetch through the shared background
	// prefetcher. 0 defaults to DefaultReadaheadPages; negative disables
	// prefetch entirely.
	ReadaheadPages int
	// PrefetchWorkers sizes the shared prefetcher goroutine pool;
	// 0 defaults to storage.DefaultPrefetchWorkers. Ignored when
	// readahead is disabled.
	PrefetchWorkers int
	// BGWriterInterval enables the background writer: every interval it
	// writes back up to BGWriterMaxPages committed dirty pages across
	// all pools, so CHECKPOINT finds mostly-clean pools. Zero (the
	// default) disables it.
	BGWriterInterval time.Duration
	// BGWriterMaxPages bounds one background-writer round; defaults to
	// DefaultBGWriterMaxPages.
	BGWriterMaxPages int
	// SerialColdReads restores the pre-PR-9 buffer-pool miss path (the
	// disk read under the shard mutex, serializing same-shard misses).
	// Benchmark baseline only.
	SerialColdReads bool
	// DiskReadLatency/DiskWriteLatency add a simulated device delay to
	// every physical page read/write (storage.WithLatency). Benchmark
	// knobs: they make I/O-overlap effects measurable on fast disks.
	DiskReadLatency  time.Duration
	DiskWriteLatency time.Duration
}

// DefaultReadaheadPages is the scan readahead window when Options leave
// it zero: deep enough to keep a handful of reads in flight ahead of a
// sequential scan, shallow enough that a mispredicted scan wastes only a
// few frames.
const DefaultReadaheadPages = 8

// DefaultBGWriterMaxPages bounds one background-writer round when
// Options leave it zero.
const DefaultBGWriterMaxPages = 128

// Open creates or opens a database. The persistent system catalog is
// bootstrapped first (replaying any write-ahead log into it and the data
// files), then every cataloged table and index is reattached — callers
// never re-declare their schema. An index recorded invalid (its CREATE
// INDEX never committed before a crash) has its partial file removed and
// is rebuilt from the heap before Open returns; see RebuiltIndexes.
func Open(opts Options) (*DB, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 1024
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	if opts.LockTimeout <= 0 {
		opts.LockTimeout = DefaultLockTimeout
	}
	activity := obs.NewActivity()
	db := &DB{
		dir:                opts.Dir,
		pageSize:           opts.PageSize,
		poolPages:          opts.PoolPages,
		tables:             make(map[string]*Table),
		faults:             opts.Faults,
		diskFaults:         opts.DiskFaults,
		lockTimeout:        opts.LockTimeout,
		met:                newExecMetrics(),
		activity:           activity,
		waits:              obs.NewWaitSet(activity),
		slowQueryThreshold: opts.SlowQueryThreshold,
		slowQueryLog:       opts.SlowQueryLog,
		traceDir:           opts.TraceDir,
		serialColdReads:    opts.SerialColdReads,
		diskReadLatency:    opts.DiskReadLatency,
		diskWriteLatency:   opts.DiskWriteLatency,
	}
	db.readahead = opts.ReadaheadPages
	if db.readahead == 0 {
		db.readahead = DefaultReadaheadPages
	}
	if db.readahead < 0 {
		db.readahead = 0
	}
	if db.readahead > 0 {
		// Every pool this database opens shares one prefetcher: readahead
		// demand is bursty per file but bounded overall, and the shared
		// queue caps the background I/O the whole system generates.
		db.pf = storage.NewPrefetcher(opts.PrefetchWorkers, 0)
	}
	if db.slowQueryLog == nil {
		db.slowQueryLog = os.Stderr
	}
	if db.traceDir != "" {
		if err := os.MkdirAll(db.traceDir, 0o755); err != nil {
			return nil, err
		}
	}
	db.met.reg.Sample(db.sampleStorage)
	db.waits.Register(db.met.reg)
	db.met.reg.OnReset(db.resetStorageStats)
	if !opts.WAL && opts.Dir != "" && wal.HasLog(filepath.Join(opts.Dir, "wal")) {
		// Ignoring a leftover log would skip its recovery now and then
		// replay it over newer (unlogged) data if WAL is re-enabled.
		return nil, fmt.Errorf("executor: %s holds a write-ahead log from a previous run; open with Options.WAL or remove its wal/ directory", opts.Dir)
	}
	if opts.WAL {
		if opts.Dir == "" {
			return nil, fmt.Errorf("executor: write-ahead logging requires an on-disk database (Options.Dir)")
		}
		walDir := filepath.Join(opts.Dir, "wal")
		// Redo pass: bring the data files up to the end of the log left
		// by the previous run before anything reattaches them.
		st, err := storage.RecoverDir(opts.Dir, walDir, opts.PageSize)
		if err != nil {
			return nil, err
		}
		db.recovered = st
		w, err := wal.OpenWriter(walDir, wal.Options{
			SegmentBytes: opts.WALSegmentBytes,
			Mode:         opts.WALSync,
		})
		if err != nil {
			return nil, err
		}
		db.wal = w
		w.AttachObs(db.waits)
		if w.CommittedLSN() == 0 {
			// A fresh log (new database, or a previously-unlogged one
			// now opened with WAL) has no commit marker yet, which turns
			// off the buffer pool's no-steal rule and recovery's
			// uncommitted-tail discard for the whole first statement.
			// Plant an initial marker so statement atomicity holds from
			// the very first record.
			if err := db.commitWAL(nil); err != nil {
				db.abandon()
				return nil, err
			}
		}
	}
	if err := db.bootstrapCatalog(); err != nil {
		db.abandon()
		return nil, err
	}
	// The transaction manager seeds its xid counter from the catalog's
	// persisted high-water mark, so it comes up only after the catalog.
	db.tm = newTxnManager(db)
	if err := db.loadSchema(); err != nil {
		db.abandon()
		return nil, err
	}
	if opts.BGWriterInterval > 0 {
		max := opts.BGWriterMaxPages
		if max <= 0 {
			max = DefaultBGWriterMaxPages
		}
		db.bgw = startBGWriter(db, opts.BGWriterInterval, max)
	}
	return db, nil
}

// discardAll tears the database down without flushing anything: the log
// closes first (its appended records become durable for the next open's
// recovery to judge), every pool drops its frames, and the in-memory
// references clear. Discard, never flush: the callers — a failed Open,
// a poisoned Close, Crash — may hold uncommitted dirty frames, and
// writing them in place would break the no-steal discipline; the next
// open must see exactly the last committed state.
func (db *DB) discardAll() error {
	var firstErr error
	if db.wal != nil {
		if err := db.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		db.wal = nil
	}
	for _, bp := range db.pools {
		if err := bp.Crash(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// The pools just waited out their queued prefetch work; now the
	// workers themselves can go.
	if db.pf != nil {
		db.pf.Close()
		db.pf = nil
	}
	db.pools = nil
	db.tables = make(map[string]*Table)
	db.cat = nil
	db.catPool = nil
	return firstErr
}

// abandon releases every resource of a half-opened database (best
// effort; the open error is what the caller reports).
func (db *DB) abandon() {
	db.discardAll()
}

// bootstrapCatalog opens (creating if necessary) the system catalog's
// own heap file and loads its records.
func (db *DB) bootstrapCatalog() error {
	if db.dir != "" {
		// A crash between the catalog file's creation and its first
		// commit (or, unlogged, its first flush) leaves a file of zeroed
		// pages: the pages were allocated eagerly, but their contents
		// lived only in frames the crash discarded — and under WAL, in
		// log records the recovery pass rejected as an uncommitted tail.
		// An entirely-zero catalog file is always such a contentless
		// husk (any committed or flushed catalog has a non-zero meta
		// page), but it is indistinguishable from corruption to
		// heap.Open, so detect and remove it here. The legacy-files
		// check below still refuses the directory if data files exist
		// alongside it.
		path := filepath.Join(db.dir, catalogFile)
		if zeroed, err := fileIsAllZeros(path); err != nil {
			return fmt.Errorf("executor: probe system catalog: %w", err)
		} else if zeroed {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("executor: remove zeroed system catalog: %w", err)
			}
		}
	}
	if db.dir != "" {
		// Bootstrapping a *fresh* catalog over a directory that already
		// holds name-based relation files means the directory predates
		// the persistent catalog (relations used to be named
		// <table>.tbl / <index>.idx and reattached by re-declaration).
		// Silently presenting an empty schema would strand that data, so
		// refuse loudly instead.
		if st, err := os.Stat(filepath.Join(db.dir, catalogFile)); os.IsNotExist(err) || (err == nil && st.Size() == 0) {
			if legacy, err := db.legacyRelationFiles(); err != nil {
				return err
			} else if len(legacy) > 0 {
				return fmt.Errorf("executor: %s holds relation files %v but no system catalog — either it predates the persistent catalog, or an unlogged (Options.WAL off) session crashed before the catalog reached disk; the schema cannot be reconstructed, recreate the database (or load pre-catalog files with the release that wrote them)", db.dir, legacy)
			}
		}
	}
	bp, existed, err := db.newPool(catalogFile)
	if err != nil {
		return err
	}
	var hf *heap.File
	if existed {
		if hf, err = heap.Open(bp); err != nil {
			return fmt.Errorf("executor: system catalog %s is unreadable (%v); was the database crashed without write-ahead logging?", catalogFile, err)
		}
	} else if hf, err = heap.Create(bp); err != nil {
		return err
	}
	cat, err := syscat.New(hf, !existed)
	if err != nil {
		return err
	}
	db.cat = cat
	db.catPool = bp
	if !existed {
		// Commit the catalog's creation so the first DDL statement's
		// marker does not retroactively cover it; unlogged, flush it so
		// a kill before the first DDL leaves a readable (empty) catalog
		// rather than a zeroed husk.
		if err := db.commitWAL(nil); err != nil {
			return err
		}
		return db.flushCatalogIfUnlogged()
	}
	return nil
}

// legacyRelationFiles lists every data file in a directory that has no
// system catalog. Any .tbl/.idx file qualifies — including rel<oid>-
// shaped names, because a pre-catalog table could have been *named*
// "rel5". Under WAL a genuinely catalog-era rel file cannot exist here
// (the catalog's creation commits before the first CREATE TABLE runs);
// without WAL an unlogged crash can leave this state too — in every
// case the schema is unreconstructable and refusing loudly beats
// sweeping or stranding the files.
func (db *DB) legacyRelationFiles() ([]string, error) {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return nil, err
	}
	var legacy []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if !strings.HasSuffix(name, ".tbl") && !strings.HasSuffix(name, ".idx") {
			continue
		}
		// An entirely-zero data file is a contentless husk whatever era
		// wrote it (any real heap or index file has a non-zero meta
		// page) — e.g. a lazily-synced session crashed before its first
		// fsync. Remove it rather than refuse forever over it.
		path := filepath.Join(db.dir, name)
		if zeroed, err := fileIsAllZeros(path); err != nil {
			return nil, err
		} else if zeroed {
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("executor: remove zeroed relation file %s: %w", name, err)
			}
			continue
		}
		legacy = append(legacy, name)
	}
	return legacy, nil
}

// fileIsAllZeros reports whether path exists and contains only zero
// bytes. A missing file reports false with no error.
func fileIsAllZeros(path string) (bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		for _, b := range buf[:n] {
			if b != 0 {
				return false, nil
			}
		}
		if err == io.EOF {
			return true, nil
		}
		if err != nil {
			return false, err
		}
	}
}

// loadSchema reattaches every cataloged relation: orphaned data files
// from DDL that never committed are swept, tables are opened, valid
// indexes are reattached, and invalid indexes (a crash interrupted their
// CREATE INDEX) are rebuilt from their heap.
func (db *DB) loadSchema() error {
	if db.wal != nil {
		if err := db.sweepOrphans(); err != nil {
			return err
		}
	}
	for _, te := range db.cat.Tables() {
		bp, existed, err := db.newPool(te.File)
		if err != nil {
			return err
		}
		if !existed {
			return fmt.Errorf("executor: catalog lists table %q but its file %s is missing", te.Name, te.File)
		}
		hf, err := heap.Open(bp)
		if err != nil {
			return fmt.Errorf("executor: table %q (%s): %w", te.Name, te.File, err)
		}
		cols := make([]Column, len(te.Cols))
		for i, c := range te.Cols {
			cols[i] = Column{Name: c.Name, Type: c.Type}
		}
		t := &Table{
			Name:    te.Name,
			Columns: cols,
			Heap:    hf,
			oid:     te.OID,
			file:    te.File,
			mu:      newTableLock(),
			db:      db,
		}
		// Persisted planner statistics load with the schema — O(catalog),
		// not O(rows) — so the first plan after a reopen never scans the
		// heap. Tables never ANALYZEd keep the lazy sampling path.
		if s, ok := db.cat.GetStats(te.OID); ok && len(s.Cols) == len(cols) {
			t.colStats = s.Cols
			t.statsRows = s.Rows
			t.sampleRows = s.SampleRows
			// Seed the churn counter with the persisted value (folded in
			// by the last clean Close), so staleness discounting keeps
			// counting from where the previous session left off.
			t.churn = s.Churn
			t.haveStats = true
		}
		db.tables[te.Name] = t
	}
	byOID := make(map[uint64]*Table, len(db.tables))
	for _, t := range db.tables {
		byOID[t.oid] = t
	}
	for _, ie := range db.cat.Indexes() {
		t := byOID[ie.TableOID]
		if t == nil {
			return fmt.Errorf("executor: catalog index %q references unknown table OID %d", ie.Name, ie.TableOID)
		}
		oc, err := catalog.ResolveOpClass(ie.Method, ie.OpClass, t.Columns[ie.Column].Type)
		if err != nil {
			return fmt.Errorf("executor: catalog index %q: %w", ie.Name, err)
		}
		if ie.Valid {
			bp, existed, err := db.newPool(ie.File)
			if err != nil {
				return err
			}
			if existed {
				idx, err := am.New(oc.Name, bp, false)
				if err != nil {
					return fmt.Errorf("executor: index %q (%s): %w", ie.Name, ie.File, err)
				}
				db.attachIndex(t, ie.Name, ie.Column, oc, idx, bp, ie.File)
				continue
			}
			// The file vanished under a valid entry (e.g. deleted by
			// hand): the fresh pool newPool just opened serves as the
			// rebuild target. Flip the entry invalid and commit first —
			// the rebuild emits intra-build commit markers, so a crash
			// mid-rebuild would otherwise leave committed partial pages
			// under a still-valid entry, silently reattached next open.
			if err := db.cat.SetIndexValid(ie.Name, false); err != nil {
				return err
			}
			if err := db.commitWAL(nil); err != nil {
				return err
			}
			if err := db.rebuildIndex(t, ie, oc, bp); err != nil {
				return err
			}
			continue
		}
		// Recorded invalid: a crash interrupted its CREATE INDEX after
		// the entry committed but before the build did. The file holds a
		// partial build (whatever prefix the build's batch commits made
		// durable) and must never be reattached as-is.
		if db.dir != "" {
			if err := os.Remove(filepath.Join(db.dir, ie.File)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("executor: remove partial index file %s: %w", ie.File, err)
			}
		}
		bp, _, err := db.newPool(ie.File)
		if err != nil {
			return err
		}
		if err := db.rebuildIndex(t, ie, oc, bp); err != nil {
			return err
		}
	}
	return nil
}

// rebuildIndex builds the index of catalog entry ie from its table's
// heap into the fresh pool bp, marks the entry valid, and commits — the
// recovery path of a crash-interrupted CREATE INDEX.
func (db *DB) rebuildIndex(t *Table, ie syscat.Index, oc *catalog.OperatorClass, bp *storage.BufferPool) error {
	idx, err := am.New(oc.Name, bp, true)
	if err != nil {
		return err
	}
	if _, err := db.buildIndex(t, idx, ie.Column, bp); err != nil {
		return fmt.Errorf("executor: rebuild index %q: %w", ie.Name, err)
	}
	db.attachIndex(t, ie.Name, ie.Column, oc, idx, bp, ie.File)
	if err := db.cat.SetIndexValid(ie.Name, true); err != nil {
		return err
	}
	db.rebuilt = append(db.rebuilt, ie.Name)
	return db.commitWAL(t)
}

// sweepOrphans removes relation files (rel<oid>.tbl / rel<oid>.idx) that
// no catalog entry references. Such files are leftovers of DDL whose
// commit never made it into the log — the file was created eagerly, the
// catalog entry was discarded with the uncommitted log tail — or of a
// DROP that crashed between its commit and its unlink. Only run when
// write-ahead logging is on: without it there is no commit marker making
// "file exists but entry does not" a reliable orphan signal.
func (db *DB) sweepOrphans() error {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return err
	}
	known := map[string]bool{catalogFile: true}
	for _, te := range db.cat.Tables() {
		known[te.File] = true
	}
	for _, ie := range db.cat.Indexes() {
		known[ie.File] = true
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || known[name] || !isRelationFile(name) {
			continue
		}
		if err := os.Remove(filepath.Join(db.dir, name)); err != nil {
			return fmt.Errorf("executor: sweep orphan %s: %w", name, err)
		}
	}
	return nil
}

// isRelationFile reports whether name matches the catalog's relation
// file naming scheme rel<digits>.tbl / rel<digits>.idx. Anything else in
// the directory is not ours to touch.
func isRelationFile(name string) bool {
	rest, ok := strings.CutPrefix(name, "rel")
	if !ok {
		return false
	}
	digits, ok := strings.CutSuffix(rest, ".tbl")
	if !ok {
		if digits, ok = strings.CutSuffix(rest, ".idx"); !ok {
			return false
		}
	}
	if digits == "" {
		return false
	}
	for _, r := range digits {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// WAL returns the attached log writer (nil when logging is off).
func (db *DB) WAL() *wal.Writer { return db.wal }

// ShareLock takes the shared catalog/DDL lock for a multi-call
// read-only statement assembled outside the executor (SHOW TABLES /
// SHOW INDEXES iterating catalog records). Release with ShareUnlock.
// It stabilizes the *catalog* — DDL takes stmtMu exclusively — but NOT
// table contents: a writer on some table holds stmtMu only shared, so
// direct reads like Table.Heap.Count() race it. Read row counts through
// Table.RowCount *outside* the ShareLock window instead (the locked
// accessors re-acquire stmtMu, and Go's RWMutex read lock is not
// recursive).
func (db *DB) ShareLock() { db.stmtMu.RLock() }

// ShareUnlock releases ShareLock.
func (db *DB) ShareUnlock() { db.stmtMu.RUnlock() }

// xlockStmt takes the catalog/DDL lock exclusively — the entry point of
// every DDL/ANALYZE/CHECKPOINT statement — charging any wait to the
// lock-wait counter and the catalog-lock wait event. Paired with a
// plain db.stmtMu.Unlock().
func (db *DB) xlockStmt() {
	lockTimed(&db.stmtMu, db.met.lockWaitNs, db.waits, obs.WaitLockCatalog)
}

// Activity exposes the live session table — who is connected, what each
// session is running, and what it is blocked on (SHOW ACTIVITY, the
// ACTIVITY server verb, the /activity HTTP endpoint).
func (db *DB) Activity() *obs.Activity { return db.activity }

// Waits exposes the cumulative wait-event set shared by every blocking
// point in the engine.
func (db *DB) Waits() *obs.WaitSet { return db.waits }

// TraceDir returns the per-statement trace output directory, empty when
// statement tracing to disk is off.
func (db *DB) TraceDir() string { return db.traceDir }

// Catalog exposes the persistent system catalog (SQL introspection, the
// CLI's describe commands, tests).
func (db *DB) Catalog() *syscat.Catalog { return db.cat }

// RebuiltIndexes lists the indexes Open rebuilt because the catalog
// recorded them invalid — each one a CREATE INDEX a crash interrupted.
func (db *DB) RebuiltIndexes() []string { return append([]string(nil), db.rebuilt...) }

// RecoveryStats reports the redo pass performed when the database was
// opened (all zeros when logging is off or the log was empty).
func (db *DB) RecoveryStats() storage.RecoveryStats { return db.recovered }

// SlowQueryConfig reports the slow-query log settings (threshold zero
// means disabled). The SQL session layer, which owns statement text and
// timing, writes the log lines.
func (db *DB) SlowQueryConfig() (time.Duration, io.Writer) {
	return db.slowQueryThreshold, db.slowQueryLog
}

// OpenMemory opens an in-memory database with default settings.
func OpenMemory() *DB {
	db, _ := Open(Options{})
	return db
}

// Close flushes everything, checkpoints the log, and closes the
// underlying files.
func (db *DB) Close() error {
	// Stop the background writer before taking the exclusive lock: its
	// rounds take the shared lock, and a stopped writer cannot race the
	// teardown below.
	db.stopBGWriter()
	db.xlockStmt()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return nil
	}
	if db.broken != nil {
		// Flushing or checkpointing would persist the diverged state a
		// failed compensation left behind; discard it instead — the
		// durable state is the last commit, which the next open serves.
		db.discardAll()
		return fmt.Errorf("executor: close discarded in-memory state poisoned by a failed DDL compensation: %w", db.broken)
	}
	// Roll back whatever transactions are still open: their versions are
	// compensated in place, their abort records close their trails, and
	// the checkpoint below no longer has live uncommitted xids to fear.
	if db.tm != nil {
		for _, tx := range db.tm.activeTxns() {
			if err := db.rollbackTxn(tx); err != nil {
				return err
			}
			db.met.txnRollback.Inc()
		}
	}
	for _, t := range db.tables {
		for _, ix := range t.Indexes {
			if err := ix.Idx.Flush(); err != nil {
				return err
			}
		}
	}
	if err := db.persistChurnLocked(); err != nil {
		return err
	}
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	for _, bp := range db.pools {
		if err := bp.Close(); err != nil {
			return err
		}
	}
	if db.pf != nil {
		db.pf.Close()
		db.pf = nil
	}
	db.pools = nil
	db.tables = make(map[string]*Table)
	db.cat = nil
	db.catPool = nil
	if db.wal != nil {
		if err := db.wal.Close(); err != nil {
			return err
		}
		db.wal = nil
	}
	return nil
}

// persistChurnLocked folds each table's in-session churn counter into
// its persisted statistics record — the clean-shutdown half of
// staleness accounting (a crash loses the counter; the row-count drift
// proxy still bounds net change, like PostgreSQL's stats collector).
// All rewrites commit under one marker; a crash mid-way discards them,
// leaving the previous records whole.
func (db *DB) persistChurnLocked() error {
	dirty := false
	for _, t := range db.tables {
		t.statsMu.Lock()
		churn := t.churn
		t.statsMu.Unlock()
		s, ok := db.cat.GetStats(t.oid)
		if !ok || churn == s.Churn {
			continue
		}
		s.Churn = churn
		if err := db.cat.SetStats(s); err != nil {
			return err
		}
		dirty = true
	}
	if !dirty {
		return nil
	}
	return db.commitWAL(nil)
}

// Checkpoint flushes every buffer pool, syncs the data files, and (with
// a WAL attached) logs a checkpoint record and recycles old log
// segments — the role of the CHECKPOINT statement.
func (db *DB) Checkpoint() error {
	db.xlockStmt()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if err := db.poisoned(); err != nil {
		return err
	}
	if err := db.checkWritable(); err != nil {
		return err
	}
	// A checkpoint recycles log segments, destroying the records that
	// recovery's abort fixup would need to hide an open transaction's
	// versions after a crash — refuse while any logged transaction is
	// still in flight.
	if db.wal != nil && db.tm != nil && db.tm.anyLoggedActive() {
		return fmt.Errorf("executor: cannot checkpoint with an open transaction that has logged changes")
	}
	for _, t := range db.tables {
		for _, ix := range t.Indexes {
			if err := ix.Idx.SaveMeta(); err != nil {
				return db.noteWALFailure(err)
			}
		}
	}
	// Flush and log-rotation failures go through noteWALFailure: a log
	// that died during CHECKPOINT must flip degraded mode now, not at
	// whatever later DML first trips the sticky writer error.
	for _, bp := range db.pools {
		if err := bp.FlushAll(); err != nil {
			return db.noteWALFailure(err)
		}
		if err := bp.DM().Sync(); err != nil {
			return db.noteWALFailure(err)
		}
	}
	if db.wal != nil {
		if _, err := db.wal.Checkpoint(); err != nil {
			return db.noteWALFailure(err)
		}
	}
	return nil
}

// Crash simulates a process crash for tests and demos: the write-ahead
// log is made durable up to its last appended record (the state an
// OS-level crash would leave after the last commit), every buffer pool
// discards its frames without writing them back, and the files close.
// Data pages keep only what earlier evictions and flushes wrote; a
// subsequent Open with WAL enabled must redo the rest from the log.
func (db *DB) Crash() error {
	db.stopBGWriter()
	db.xlockStmt()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.crashed = true
	return db.discardAll()
}

// poisoned reports the sticky error of a failed DDL compensation.
// commitWAL refuses under it (a commit marker would retroactively
// commit the ghost records left in the log), and the DDL entry points
// check it up front so a poisoned session stops mutating the catalog
// heap at all rather than failing late and relying on yet another
// compensation.
func (db *DB) poisoned() error {
	if db.broken == nil {
		return nil
	}
	return fmt.Errorf("executor: database poisoned by a failed DDL compensation, reopen it: %w", db.broken)
}

// commitPools is the per-statement commit point over an explicit pool
// set: index metadata is saved into (logged) meta pages, the deferred
// logical records and page images of those pools are staged into one
// record group, the group plus a commit marker is appended to the log
// *atomically* (no concurrent statement's records interleave), the
// assigned LSNs are stamped back onto the covered frames, and the log
// is forced according to the sync mode. The final force runs the
// writer's group-commit protocol, so any number of statements
// committing concurrently share one fsync. A no-op when logging is off.
func (db *DB) commitPools(t *Table, pools []*storage.BufferPool) error {
	if err := db.poisoned(); err != nil {
		return err
	}
	if db.wal == nil {
		return nil
	}
	if t != nil {
		for _, ix := range t.Indexes {
			if err := ix.Idx.SaveMeta(); err != nil {
				return err
			}
		}
	}
	if err := db.appendPools(pools, true); err != nil {
		return err
	}
	if tr := obs.Current(); tr != nil {
		sp := tr.StartSpan("commit_wait", "wal")
		err := db.wal.Commit()
		sp.End()
		return db.noteWALFailure(err)
	}
	return db.noteWALFailure(db.wal.Commit())
}

// appendPools stages the deferred records and page images of pools into
// one wal.Group, appends the group (with a commit marker when commit is
// set) atomically, and stamps the assigned LSNs back onto the covered
// frames.
func (db *DB) appendPools(pools []*storage.BufferPool, commit bool) error {
	return db.appendPoolsXid(pools, commit, 0, 0)
}

// appendPoolsXid is appendPools with a transaction-boundary record
// riding in the same atomic group: commitXid != 0 appends the
// transaction's commit record (wal.RecTxnCommit) after the staged
// records, abortXid != 0 its abort record. The boundary record and the
// data records land under one marker, so recovery either sees the
// transaction resolved together with its final records or not at all.
func (db *DB) appendPoolsXid(pools []*storage.BufferPool, commit bool, commitXid, abortXid uint64) error {
	if db.wal == nil {
		return nil
	}
	if tr := obs.Current(); tr != nil {
		sp := tr.StartSpan("wal_append", "wal")
		defer sp.End()
	}
	g := wal.NewGroup()
	staged := make([][]storage.Staged, len(pools))
	for i, bp := range pools {
		staged[i] = bp.StagePending(g)
	}
	if commitXid != 0 {
		g.AddTxnCommit(commitXid)
	}
	if abortXid != 0 {
		g.AddTxnAbort(abortXid)
	}
	var lsns []wal.LSN
	var err error
	if commit {
		lsns, _, err = db.wal.AppendGroupCommit(g)
	} else {
		lsns, err = db.wal.AppendGroup(g)
	}
	if err != nil {
		// An append failure is sticky in the writer (the log is
		// unusable); flip read-only so later statements fail fast
		// instead of each rediscovering the dead log.
		return db.noteWALFailure(err)
	}
	for i, bp := range pools {
		bp.ResolvePending(staged[i], lsns)
	}
	return nil
}

// newAbortGroup builds the single-record group closing an aborted
// transaction's trail in the log.
func newAbortGroup(xid uint64) *wal.Group {
	g := wal.NewGroup()
	g.AddTxnAbort(xid)
	return g
}

// tablePools lists the pools a DML statement against t can touch.
func tablePools(t *Table) []*storage.BufferPool {
	pools := make([]*storage.BufferPool, 0, 1+len(t.Indexes))
	pools = append(pools, t.Heap.Pool())
	for _, ix := range t.Indexes {
		pools = append(pools, ix.pool)
	}
	return pools
}

// commitWAL commits a statement that may have touched any pool — the
// DDL, catalog, and maintenance paths. Every caller holds stmtMu
// exclusively, and db.pools is only mutated under that lock, so the
// slice is read without db.mu (which Close and Checkpoint already hold
// when they commit through here).
func (db *DB) commitWAL(t *Table) error {
	return db.commitPools(t, db.pools)
}

// commitTable commits a DML statement against one table: only the
// table's own heap and index pools are staged, so statements of
// concurrent writers on other tables (which hold stmtMu only shared)
// are never swept into this statement's marker.
func (db *DB) commitTable(t *Table) error {
	return db.commitPools(t, tablePools(t))
}

// insertChunkRows bounds how many rows of one multi-row INSERT apply
// between commit markers. Every page a statement dirties is unevictable
// until its records are appended (no-steal), so an unbounded statement
// could exhaust the buffer pool; like buildIndex's intra-build markers,
// oversized batches commit in pool-proportional chunks (each chunk
// all-or-nothing across a crash). Batched inserts pack ~dozens of rows
// per heap page and their sorted index descents cluster, so poolPages*4
// rows stay well inside a pool even after sharding.
func (db *DB) insertChunkRows() int {
	if n := db.poolPages * 4; n > 64 {
		return n
	}
	return 64
}

// deleteChunkRows is insertChunkRows for DELETE, far smaller because a
// deleted row can touch a heap page all of its own (worst case one page
// per row, against ~dozens of batched inserts per page).
func (db *DB) deleteChunkRows() int {
	if n := db.poolPages / 4; n > 16 {
		return n
	}
	return 16
}

// newPool opens a buffer pool over a fresh or existing file (or memory).
func (db *DB) newPool(fileName string) (*storage.BufferPool, bool, error) {
	var dm storage.DiskManager
	existed := false
	if db.dir == "" {
		dm = storage.NewMem(db.pageSize)
	} else {
		path := filepath.Join(db.dir, fileName)
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			existed = true
		}
		fdm, err := storage.OpenFile(path, db.pageSize)
		if err != nil {
			return nil, false, err
		}
		dm = fdm
	}
	if db.diskReadLatency > 0 || db.diskWriteLatency > 0 {
		dm = storage.WithLatency(dm, db.diskReadLatency, db.diskWriteLatency)
	}
	if db.diskFaults != nil {
		dm = db.diskFaults(fileName, dm)
		if fdm, ok := dm.(*storage.FaultDiskManager); ok {
			db.faultDMs = append(db.faultDMs, fdm)
		}
	}
	bp := storage.NewBufferPool(dm, db.poolPages)
	bp.SetSerialColdReads(db.serialColdReads)
	bp.AttachPrefetcher(db.pf, db.readahead)
	if storage.ChecksummedFile(fileName) {
		// Heap pages (and the heap-backed catalog) carry per-page
		// checksums: stamped on every write-back, verified on every
		// read. Index node layouts own the checksum field's bytes, so
		// .idx pools stay unchecksummed — an index is rebuildable.
		bp.EnableChecksums(fileName)
	}
	// Join the pool to the wait-event layer, classifying its miss I/O by
	// what the file holds (the extension is authoritative: rel<oid>.tbl,
	// rel<oid>.idx, syscat.dat).
	ioEv := obs.WaitIOHeapRead
	switch {
	case fileName == catalogFile:
		ioEv = obs.WaitIOCatalogRead
	case strings.HasSuffix(fileName, ".idx"):
		ioEv = obs.WaitIOIndexRead
	}
	bp.AttachObs(db.waits, ioEv)
	if db.wal != nil {
		if !existed {
			if _, err := db.wal.AppendFileCreate(fileName); err != nil {
				// The pool never joins db.pools, so nothing else will
				// release the descriptor or the just-created empty file.
				dm.Close()
				if db.dir != "" {
					os.Remove(filepath.Join(db.dir, fileName))
				}
				return nil, false, err
			}
		}
		bp.AttachWAL(db.wal, fileName)
	}
	db.pools = append(db.pools, bp)
	return bp, existed, nil
}

// flushUnlogged makes one pool durable on databases with no write-ahead
// log (a no-op otherwise). Unlogged DDL uses it to order durability by
// hand: a new relation's pages before its catalog entry, the catalog's
// deletes before a DROP's unlink. Either ordering violated across a
// crash yields a catalog entry over a missing or all-zero file — a
// database that can never open again.
func (db *DB) flushUnlogged(bp *storage.BufferPool) error {
	if db.wal != nil || db.dir == "" {
		return nil
	}
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.DM().Sync()
}

// flushCatalogIfUnlogged is flushUnlogged of the catalog's own pool.
func (db *DB) flushCatalogIfUnlogged() error {
	if db.catPool == nil {
		return nil
	}
	return db.flushUnlogged(db.catPool)
}

// discardPool forgets bp and drops its frames without writing anything
// back — for pools of a doomed relation (a committed DROP, or a failed
// DDL statement's compensation), whose dirty pages must reach neither
// the log nor the file about to be unlinked.
func (db *DB) discardPool(bp *storage.BufferPool) {
	db.forgetPool(bp)
	bp.Crash()
}

func (db *DB) forgetPool(bp *storage.BufferPool) {
	for i, p := range db.pools {
		if p == bp {
			db.pools = append(db.pools[:i], db.pools[i+1:]...)
			break
		}
	}
}

// CreateTable creates a table: its catalog entry and fresh heap file are
// committed together, so a crash mid-statement leaves neither (the
// orphaned file, if any, is swept at the next open).
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	db.xlockStmt()
	defer db.stmtMu.Unlock()
	if err := db.poisoned(); err != nil {
		return nil, err
	}
	if err := db.checkWritable(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if _, dup := db.tables[name]; dup {
		db.mu.Unlock()
		return nil, fmt.Errorf("executor: table %q already exists", name)
	}
	db.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("executor: table needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("executor: table %q needs at least one column", name)
	}
	scols := make([]syscat.Column, len(cols))
	for i, c := range cols {
		scols[i] = syscat.Column{Name: c.Name, Type: c.Type}
	}
	te, err := db.cat.AddTable(name, scols)
	if err != nil {
		return nil, err
	}
	// Compensate the catalog records on any later failure: they are
	// uncommitted, but left in place the next statement's commit marker
	// would retroactively commit a half-executed CREATE TABLE.
	undo := func(bp *storage.BufferPool, unlink bool) {
		if rerr := db.cat.RemoveTable(name); rerr != nil {
			// The ghost record cannot be taken back; poison the session
			// so no later commit marker can commit it.
			db.broken = rerr
		}
		if bp != nil {
			db.discardPool(bp)
		}
		// Unlinking is only provably safe under WAL, where the no-steal
		// rule keeps the uncommitted catalog entry off disk and the file
		// is therefore an orphan. Unlogged, eviction may already have
		// made the entry durable, and a durable table entry over a
		// missing file bricks every later open — keep the file (at
		// worst it lingers as junk).
		if unlink && db.wal != nil && db.dir != "" {
			os.Remove(filepath.Join(db.dir, te.File))
		}
	}
	bp, existed, err := db.newPool(te.File)
	if err != nil {
		undo(nil, false)
		return nil, err
	}
	if existed {
		// OIDs are never reused, so a pre-existing file under a fresh
		// OID means outside interference.
		undo(bp, false)
		return nil, fmt.Errorf("executor: fresh relation file %s already exists", te.File)
	}
	hf, err := heap.Create(bp)
	if err != nil {
		undo(bp, true)
		return nil, err
	}
	t := &Table{Name: name, Columns: cols, Heap: hf, oid: te.OID, file: te.File, mu: newTableLock(), db: db}
	if f := db.faults.BeforeDDLCommit; f != nil {
		if err := f("CREATE TABLE " + name); err != nil {
			return nil, faultErr{err}
		}
	}
	if err := db.commitWAL(t); err != nil {
		// Keep the file: a failed fsync leaves the commit marker's
		// durability indeterminate, and if it did survive, the entry is
		// committed and unlinking would strand it. If the commit truly
		// failed, the next open sweeps the file as an orphan.
		undo(bp, false)
		return nil, err
	}
	// Unlogged databases have no commit marker ordering durability; do
	// it by hand — the relation's pages first (a durable entry over an
	// all-zero file would brick every later open), then the catalog
	// entry (a relation file with no catalog at all is unreconstructable).
	if err := db.flushUnlogged(bp); err != nil {
		undo(bp, true)
		return nil, err
	}
	if err := db.flushCatalogIfUnlogged(); err != nil {
		undo(bp, true)
		return nil, err
	}
	db.mu.Lock()
	db.tables[name] = t
	db.mu.Unlock()
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("executor: unknown table %q", name)
	}
	return t, nil
}

// Tables lists the known tables.
func (db *DB) Tables() []*Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []*Table
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("executor: table %s has no column %q", t.Name, name)
}

// attachIndex constructs the IndexInfo for an opened or built index and
// appends it to the table (the single construction site for all three
// paths: fresh CREATE INDEX, reattach at open, rebuild at open).
func (db *DB) attachIndex(t *Table, name string, column int, oc *catalog.OperatorClass, idx am.Index, bp *storage.BufferPool, file string) *IndexInfo {
	info := &IndexInfo{
		Name: name, Column: column, OpClass: oc, Idx: idx, pool: bp, file: file,
		scans:        db.met.reg.Counter("am_" + oc.Name + "_scans_total"),
		pagesVisited: db.met.reg.Counter("am_" + oc.Name + "_traced_pages_total"),
	}
	db.mu.Lock()
	t.Indexes = append(t.Indexes, info)
	db.mu.Unlock()
	return info
}

// buildIndex back-fills idx from every live heap row of t (ambuild).
// Under the buffer pool's no-steal rule a build's dirty pages are
// unevictable until a commit marker covers them; marking in batches
// keeps a large backfill from exhausting the pool. Those intra-build
// markers are safe precisely because the index is still recorded invalid
// in the catalog: a crash replays the committed prefix into the file,
// and the invalid flag makes the next open discard and rebuild it.
func (db *DB) buildIndex(t *Table, idx am.Index, ci int, bp *storage.BufferPool) (int, error) {
	rows := 0
	var err error
	serr := t.Heap.ScanVersions(func(rid heap.RID, h heap.TupleHeader, payload []byte) bool {
		if h.Flags&heap.FlagXminAborted != 0 {
			// A rolled-back insert: invisible to every snapshot and about
			// to be vacuumed — indexing it would only leave a dead entry.
			return true
		}
		tup, derr := catalog.DecodeTuple(payload)
		if derr != nil {
			err = derr
			return false
		}
		if ierr := idx.Insert(tup[ci], rid); ierr != nil {
			err = ierr
			return false
		}
		rows++
		if f := db.faults.DuringIndexBuild; f != nil {
			if ferr := f(rows); ferr != nil {
				err = faultErr{ferr}
				return false
			}
		}
		// Batch size 64 keeps the build's uncommitted (unevictable)
		// frame set well inside a single buffer-pool shard even for
		// small pools — the no-steal rule now binds per shard.
		if db.wal != nil && rows%64 == 0 {
			if werr := bp.LogPendingImages(); werr != nil {
				err = werr
				return false
			}
			if _, werr := db.wal.AppendCommit(); werr != nil {
				err = werr
				return false
			}
		}
		return true
	})
	if serr != nil {
		return rows, serr
	}
	return rows, err
}

// CreateIndex creates an index on a column, via CREATE INDEX ... USING
// method (col opclass). When opclassName is empty the default class of
// (method, column type) is used. Existing rows are back-filled (ambuild).
//
// CREATE INDEX is crash-atomic through the system catalog: the index's
// entry is committed *invalid* before the build starts and flipped valid
// only when the build commits. A crash anywhere in between is detected
// at the next Open, which removes the partial index file and rebuilds
// the index from the heap — a partial build is never reattached.
func (db *DB) CreateIndex(idxName, tableName, colName, method, opclassName string) (*IndexInfo, error) {
	db.xlockStmt()
	defer db.stmtMu.Unlock()
	if err := db.poisoned(); err != nil {
		return nil, err
	}
	if err := db.checkWritable(); err != nil {
		return nil, err
	}
	t, err := db.Table(tableName)
	if err != nil {
		return nil, err
	}
	ci, err := t.colIndex(colName)
	if err != nil {
		return nil, err
	}
	oc, err := catalog.ResolveOpClass(method, opclassName, t.Columns[ci].Type)
	if err != nil {
		return nil, err
	}
	if idxName == "" {
		return nil, fmt.Errorf("executor: index needs a name")
	}
	if err := db.refuseLockedByTxn(t, "CREATE INDEX"); err != nil {
		return nil, err
	}
	if _, dup := db.cat.GetIndex(idxName); dup {
		return nil, fmt.Errorf("executor: index %q already exists", idxName)
	}

	// Phase 1: commit the entry as invalid, together with the fresh
	// file's creation, before any build work. From here on a crash
	// leaves a durable "this index is incomplete" record.
	ie, err := db.cat.AddIndex(idxName, t.oid, ci, method, oc.Name, false)
	if err != nil {
		return nil, err
	}
	// undo compensates the catalog entry on failure. Before the phase-1
	// commit the records are simply uncommitted leftovers that must not
	// ride along under the next statement's marker; after it, the
	// compensation itself is committed (commit=true) so a *failed* (not
	// crashed) CREATE INDEX durably leaves nothing — no invalid entry,
	// no rebuild at the next open.
	undo := func(bp *storage.BufferPool, unlink, commit bool) {
		if rerr := db.cat.RemoveIndex(idxName); rerr != nil {
			// The ghost record cannot be taken back; poison the session
			// so no later commit marker can commit it. (After the
			// phase-1 commit the entry is durable anyway and the next
			// open rebuilds or drops it.)
			db.broken = rerr
		} else if commit {
			// Discard the doomed build's frames first, so the
			// compensation commit does not log page images of a file
			// about to be unlinked.
			if bp != nil {
				db.discardPool(bp)
				bp = nil
			}
			if cerr := db.commitWAL(nil); cerr != nil {
				// The compensation never committed; the durable invalid
				// entry survives for the next open. Poison the session
				// so the operator learns the statement's full outcome.
				db.broken = cerr
			}
		}
		if bp != nil {
			db.discardPool(bp)
		}
		if unlink && db.dir != "" {
			os.Remove(filepath.Join(db.dir, ie.File))
		}
	}
	bp, existed, err := db.newPool(ie.File)
	if err != nil {
		undo(nil, false, false)
		return nil, err
	}
	if existed {
		undo(bp, false, false)
		return nil, fmt.Errorf("executor: fresh relation file %s already exists", ie.File)
	}
	idx, err := am.New(oc.Name, bp, true)
	if err != nil {
		undo(bp, true, false)
		return nil, err
	}
	if err := db.commitWAL(nil); err != nil {
		undo(bp, true, false)
		return nil, err
	}

	// Phase 2: ambuild.
	if _, err := db.buildIndex(t, idx, ci, bp); err != nil {
		if isFault(err) {
			return nil, err // simulated crash: leave the state for Crash()
		}
		undo(bp, true, true)
		return nil, err
	}

	// Phase 3: flip the entry valid and commit it with the build's final
	// page images and metadata — the statement's real commit point. The
	// index joins t.Indexes only after the commit succeeds, so a failed
	// statement never leaves a live index behind.
	if err := db.cat.SetIndexValid(idxName, true); err != nil {
		undo(bp, true, true)
		return nil, err
	}
	// Fresh statistics make the planner's selectivity realistic (like
	// the auto-ANALYZE PostgreSQL runs after bulk operations). In-memory
	// only: persisting them here would entangle the index build's commit
	// with a statistics replacement; explicit ANALYZE persists.
	if err := t.analyzeInMemory(); err != nil {
		undo(bp, true, true)
		return nil, err
	}
	if f := db.faults.BeforeDDLCommit; f != nil {
		if err := f("CREATE INDEX " + idxName); err != nil {
			return nil, faultErr{err}
		}
	}
	if err := idx.SaveMeta(); err != nil {
		undo(bp, true, true)
		return nil, err
	}
	if err := db.commitWAL(t); err != nil {
		// Keep the file: the failed fsync leaves the marker's durability
		// indeterminate. If it survived, the entry is committed valid
		// and replay reconstructs the file; if not, the entry is still
		// invalid and the next open removes and rebuilds it.
		undo(bp, false, true)
		return nil, err
	}
	// See CreateTable: unlogged durability by hand, index pages before
	// the (now valid) catalog entry.
	if err := db.flushUnlogged(bp); err != nil {
		undo(bp, true, true)
		return nil, err
	}
	if err := db.flushCatalogIfUnlogged(); err != nil {
		undo(bp, true, true)
		return nil, err
	}
	return db.attachIndex(t, idxName, ci, oc, idx, bp, ie.File), nil
}

// DropIndex removes an index: its catalog entry is deleted and committed
// first, then the file is closed and unlinked. Under WAL a crash between
// the two leaves an orphaned file that the next open sweeps; unlogged
// databases have no sweep, so such a file lingers as junk.
//
// Like every DDL statement, DropIndex serializes against other writers
// under the statement lock, but the engine does not lock readers:
// dropping a relation while another goroutine is still scanning it
// closes that scan's buffer pool underneath it (PostgreSQL would block
// on a relation lock here). Callers must not drop a relation with reads
// of it in flight.
func (db *DB) DropIndex(name string) error {
	db.xlockStmt()
	defer db.stmtMu.Unlock()
	if err := db.poisoned(); err != nil {
		return err
	}
	if err := db.checkWritable(); err != nil {
		return err
	}
	ie, ok := db.cat.GetIndex(name)
	if !ok {
		return fmt.Errorf("executor: unknown index %q", name)
	}
	// An entry may be cataloged without an attached IndexInfo (a failed
	// CREATE INDEX left its invalid entry behind); like PostgreSQL's
	// droppable INVALID indexes, DROP INDEX must remove those too.
	db.mu.Lock()
	var t *Table
	var info *IndexInfo
	var pos int
	for _, cand := range db.tables {
		if cand.oid != ie.TableOID {
			continue
		}
		t = cand
		for i, ix := range cand.Indexes {
			if ix.Name == name {
				info, pos = ix, i
				break
			}
		}
	}
	db.mu.Unlock()
	if err := db.refuseLockedByTxn(t, "DROP INDEX"); err != nil {
		return err
	}
	if err := db.cat.RemoveIndex(name); err != nil {
		return err
	}
	if f := db.faults.BeforeDDLCommit; f != nil {
		if err := f("DROP INDEX " + name); err != nil {
			return faultErr{err}
		}
	}
	if err := db.commitWAL(nil); err != nil {
		// Best-effort compensation: re-insert the entry so the
		// uncommitted delete cannot ride along under a later statement's
		// marker. (WAL append/sync errors are sticky, so this mostly
		// matters for keeping the in-memory catalog consistent with the
		// still-attached index.)
		if rerr := db.cat.RestoreIndex(ie); rerr != nil {
			db.broken = rerr
		}
		return err
	}
	if err := db.flushCatalogIfUnlogged(); err != nil {
		// The delete may not be durable; re-insert the entry so the
		// catalog keeps matching the still-attached index.
		if rerr := db.cat.RestoreIndex(ie); rerr != nil {
			db.broken = rerr
		}
		return err
	}
	// The drop is committed; detach and unlink unconditionally from here
	// on, reporting the first failure only afterwards — aborting early
	// would leave files no later open can reclaim (the orphan sweep only
	// runs under WAL).
	var firstErr error
	if t != nil && info != nil {
		// Copy-on-write removal: an in-place splice would mutate the
		// backing array under any reader still iterating the old slice
		// header.
		db.mu.Lock()
		fresh := make([]*IndexInfo, 0, len(t.Indexes)-1)
		fresh = append(fresh, t.Indexes[:pos]...)
		fresh = append(fresh, t.Indexes[pos+1:]...)
		t.Indexes = fresh
		db.mu.Unlock()
		db.discardPool(info.pool)
	}
	if db.dir != "" {
		if err := os.Remove(filepath.Join(db.dir, ie.File)); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DropTable removes a table and all its indexes: every catalog entry is
// deleted and committed in one statement, then the files are closed and
// unlinked. Under WAL a crash between the two leaves orphaned files that
// the next open sweeps (unlogged databases have no sweep; such files
// linger as junk). As with DropIndex, callers must not drop a table with
// reads of it in flight — readers are not locked out.
func (db *DB) DropTable(name string) error {
	db.xlockStmt()
	defer db.stmtMu.Unlock()
	if err := db.poisoned(); err != nil {
		return err
	}
	if err := db.checkWritable(); err != nil {
		return err
	}
	db.mu.Lock()
	t, ok := db.tables[name]
	db.mu.Unlock()
	if !ok {
		return fmt.Errorf("executor: unknown table %q", name)
	}
	if err := db.refuseLockedByTxn(t, "DROP TABLE"); err != nil {
		return err
	}
	// Remove every *cataloged* index of the table, not just the attached
	// ones: a failed CREATE INDEX can leave a cataloged entry with no
	// IndexInfo, and a dangling index record would make the catalog
	// unloadable at the next open. On any failure before the commit,
	// re-insert whatever was already removed so the uncommitted deletes
	// cannot ride along under a later statement's marker.
	te, _ := db.cat.GetTable(name)
	catIndexes := db.cat.IndexesOf(t.oid)
	var prevStats syscat.Stats
	hadStats := false
	restore := func(upTo int, table bool) {
		for i := 0; i < upTo; i++ {
			if rerr := db.cat.RestoreIndex(catIndexes[i]); rerr != nil {
				db.broken = rerr
			}
		}
		if hadStats {
			if rerr := db.cat.RestoreStats(prevStats); rerr != nil {
				db.broken = rerr
			}
		}
		if table {
			if rerr := db.cat.RestoreTable(te); rerr != nil {
				db.broken = rerr
			}
		}
	}
	for i, ie := range catIndexes {
		if err := db.cat.RemoveIndex(ie.Name); err != nil {
			restore(i, false)
			return err
		}
	}
	// The table's statistics record goes in the same statement, so the
	// drop commits catalog-clean — no ghost statistics for a dead OID.
	var serr error
	if prevStats, hadStats, serr = db.cat.RemoveStats(t.oid); serr != nil {
		restore(len(catIndexes), false)
		return serr
	}
	if err := db.cat.RemoveTable(name); err != nil {
		restore(len(catIndexes), false)
		return err
	}
	if f := db.faults.BeforeDDLCommit; f != nil {
		if err := f("DROP TABLE " + name); err != nil {
			return faultErr{err}
		}
	}
	if err := db.commitWAL(nil); err != nil {
		restore(len(catIndexes), true)
		return err
	}
	if err := db.flushCatalogIfUnlogged(); err != nil {
		// The deletes may not be durable; re-insert the entries so the
		// catalog keeps matching the still-attached table.
		restore(len(catIndexes), true)
		return err
	}
	db.mu.Lock()
	delete(db.tables, name)
	db.mu.Unlock()
	// The drop is committed; detach and unlink everything, reporting the
	// first failure only afterwards — aborting early would leave files
	// no later open can reclaim (the orphan sweep only runs under WAL).
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, ix := range t.Indexes {
		db.discardPool(ix.pool)
	}
	db.discardPool(t.Heap.Pool())
	if db.dir != "" {
		unlink := func(file string) {
			if err := os.Remove(filepath.Join(db.dir, file)); err != nil && !os.IsNotExist(err) {
				keep(err)
			}
		}
		for _, ie := range catIndexes {
			unlink(ie.File)
		}
		unlink(t.file)
	}
	return firstErr
}

// refuseLockedByTxn rejects DDL against a table whose write lock an
// open transaction owns — dropping or rebuilding a relation under a
// transaction that still holds undo references into it would tear the
// rug out from its ROLLBACK. (PostgreSQL would queue on the relation
// lock; this engine refuses immediately instead.)
func (db *DB) refuseLockedByTxn(t *Table, stmt string) error {
	if t == nil || db.tm == nil {
		return nil
	}
	if tx := db.tm.lockedBy(t); tx != nil {
		return fmt.Errorf("executor: %s: table %q is locked by open transaction %d", stmt, t.Name, tx.Xid())
	}
	return nil
}

// validateTuple checks one tuple against the table schema.
func (t *Table) validateTuple(tup catalog.Tuple) error {
	if len(tup) != len(t.Columns) {
		return fmt.Errorf("executor: %s expects %d values, got %d", t.Name, len(t.Columns), len(tup))
	}
	for i, d := range tup {
		if d.Typ != t.Columns[i].Type {
			return fmt.Errorf("executor: column %s expects %v, got %v",
				t.Columns[i].Name, t.Columns[i].Type, d.Typ)
		}
	}
	return nil
}

// checkAttached verifies, under the statement lock, that t is still the
// database's attached table of its name. A caller may have resolved the
// *Table (db.Table, a SQL session's name lookup) before a concurrent
// DROP TABLE committed; its heap and index pools are discarded then, and
// running a scan against them would surface as a confusing storage-level
// error. The statement lock makes this check stable for the statement's
// whole lock window: DROP needs the exclusive lock to detach.
func (t *Table) checkAttached() error {
	t.db.mu.Lock()
	cur := t.db.tables[t.Name]
	t.db.mu.Unlock()
	if cur != t {
		return fmt.Errorf("executor: table %q was dropped", t.Name)
	}
	return nil
}

// Get fetches the row at rid as the latest committed snapshot sees it
// (a shared-latch read); nil for a missing, deleted, or uncommitted
// version.
func (t *Table) Get(rid heap.RID) (catalog.Tuple, error) {
	return t.GetTx(nil, rid)
}

// GetTx is Get inside a transaction: tx's own writes are visible,
// other transactions' uncommitted versions are not. tx may be nil.
func (t *Table) GetTx(tx *Txn, rid heap.RID) (catalog.Tuple, error) {
	t.lockRead()
	defer t.unlockRead()
	if err := t.checkAttached(); err != nil {
		return nil, err
	}
	snap := t.db.tm.snapshot(tx)
	defer t.db.tm.release(snap)
	return t.getVisible(snap, rid)
}

// getVisible fetches the tuple at rid if snap can see its version.
// Callers hold the statement lock and t.phys (shared or exclusive).
func (t *Table) getVisible(snap *Snapshot, rid heap.RID) (catalog.Tuple, error) {
	h, payload, err := t.Heap.GetVersion(rid)
	if err != nil || payload == nil {
		return nil, err
	}
	if !snap.Visible(h) {
		return nil, nil
	}
	return catalog.DecodeTuple(payload)
}

// RowCount returns the table's snapshot-visible live row count under
// the shared latches — dead versions awaiting VACUUM and other
// transactions' uncommitted rows are excluded. (Reaching for
// t.Heap.Count() directly reports raw versions, not live rows.)
func (t *Table) RowCount() int64 {
	t.lockRead()
	defer t.unlockRead()
	if t.checkAttached() != nil {
		return 0
	}
	return t.visibleCountLocked()
}
