// Package executor is the miniature query engine of this reproduction:
// heap tables, index maintenance across the access methods of package am,
// a PostgreSQL-style cost-based choice between sequential and index scans
// (planner.go), and incremental nearest-neighbor cursors. It plays the
// role of the PostgreSQL executor and planner that the paper's SP-GiST
// realization plugs into.
package executor

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/storage"
)

// Column describes one table column.
type Column struct {
	Name string
	Type catalog.Type
}

// IndexInfo is one index over a table column.
type IndexInfo struct {
	Name    string
	Column  int // ordinal in the table schema
	OpClass *catalog.OperatorClass
	Idx     am.Index
}

// Table is a heap file plus its schema and indexes.
type Table struct {
	Name    string
	Columns []Column
	Heap    *heap.File
	Indexes []*IndexInfo

	// ndistinct holds per-column distinct-value counts collected by
	// Analyze (0 = unknown). Like PostgreSQL statistics they go stale as
	// rows change; the planner treats them as estimates.
	ndistinct []int64

	db *DB
}

// Analyze collects per-column statistics (distinct-value counts) for the
// planner's selectivity estimation — the role of PostgreSQL's ANALYZE.
// CreateIndex runs it automatically.
func (t *Table) Analyze() error {
	seen := make([]map[string]struct{}, len(t.Columns))
	for i := range seen {
		seen[i] = make(map[string]struct{})
	}
	err := t.Heap.Scan(func(_ heap.RID, rec []byte) bool {
		tup, err := catalog.DecodeTuple(rec)
		if err != nil {
			return false
		}
		for i, d := range tup {
			seen[i][d.String()] = struct{}{}
		}
		return true
	})
	if err != nil {
		return err
	}
	t.ndistinct = make([]int64, len(t.Columns))
	for i := range seen {
		t.ndistinct[i] = int64(len(seen[i]))
	}
	return nil
}

// DB is a database: a set of tables and indexes over one directory (or
// over memory when dir is empty).
type DB struct {
	mu        sync.Mutex
	dir       string
	pageSize  int
	poolPages int
	tables    map[string]*Table
	pools     []*storage.BufferPool
}

// Options configure a database.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// PageSize defaults to storage.DefaultPageSize.
	PageSize int
	// PoolPages is the buffer pool size per file; defaults to 1024.
	PoolPages int
}

// Open creates or opens a database. Existing on-disk tables are not
// rediscovered automatically (no persistent catalog file): callers
// re-declare their schema, and table/index files are reattached by name.
func Open(opts Options) (*DB, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 1024
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &DB{
		dir:       opts.Dir,
		pageSize:  opts.PageSize,
		poolPages: opts.PoolPages,
		tables:    make(map[string]*Table),
	}, nil
}

// OpenMemory opens an in-memory database with default settings.
func OpenMemory() *DB {
	db, _ := Open(Options{})
	return db
}

// Close flushes everything and closes the underlying files.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.tables {
		for _, ix := range t.Indexes {
			if err := ix.Idx.Flush(); err != nil {
				return err
			}
		}
	}
	for _, bp := range db.pools {
		if err := bp.Close(); err != nil {
			return err
		}
	}
	db.pools = nil
	db.tables = make(map[string]*Table)
	return nil
}

// newPool opens a buffer pool over a fresh or existing file (or memory).
func (db *DB) newPool(fileName string) (*storage.BufferPool, bool, error) {
	var dm storage.DiskManager
	existed := false
	if db.dir == "" {
		dm = storage.NewMem(db.pageSize)
	} else {
		path := filepath.Join(db.dir, fileName)
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			existed = true
		}
		fdm, err := storage.OpenFile(path, db.pageSize)
		if err != nil {
			return nil, false, err
		}
		dm = fdm
	}
	bp := storage.NewBufferPool(dm, db.poolPages)
	db.pools = append(db.pools, bp)
	return bp, existed, nil
}

// CreateTable creates a table (reattaching its heap file if one exists on
// disk from a previous session).
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("executor: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("executor: table %q needs at least one column", name)
	}
	bp, existed, err := db.newPool(name + ".tbl")
	if err != nil {
		return nil, err
	}
	var hf *heap.File
	if existed {
		hf, err = heap.Open(bp)
	} else {
		hf, err = heap.Create(bp)
	}
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Columns: cols, Heap: hf, db: db}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("executor: unknown table %q", name)
	}
	return t, nil
}

// Tables lists the known tables.
func (db *DB) Tables() []*Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []*Table
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("executor: table %s has no column %q", t.Name, name)
}

// CreateIndex creates an index on a column, via CREATE INDEX ... USING
// method (col opclass). When opclassName is empty the default class of
// (method, column type) is used. Existing rows are back-filled (ambuild).
func (db *DB) CreateIndex(idxName, tableName, colName, method, opclassName string) (*IndexInfo, error) {
	t, err := db.Table(tableName)
	if err != nil {
		return nil, err
	}
	ci, err := t.colIndex(colName)
	if err != nil {
		return nil, err
	}
	if _, ok := catalog.LookupAM(method); !ok {
		return nil, fmt.Errorf("executor: unknown access method %q", method)
	}
	var oc *catalog.OperatorClass
	if opclassName == "" {
		oc, err = catalog.DefaultOpClass(method, t.Columns[ci].Type)
		if err != nil {
			return nil, err
		}
	} else {
		var ok bool
		oc, ok = catalog.LookupOpClass(opclassName)
		if !ok {
			return nil, fmt.Errorf("executor: unknown operator class %q", opclassName)
		}
		if oc.AM != method {
			return nil, fmt.Errorf("executor: operator class %s belongs to %s, not %s", oc.Name, oc.AM, method)
		}
		if oc.Type != t.Columns[ci].Type {
			return nil, fmt.Errorf("executor: operator class %s indexes %v, column %s is %v",
				oc.Name, oc.Type, colName, t.Columns[ci].Type)
		}
	}
	db.mu.Lock()
	for _, ix := range t.Indexes {
		if ix.Name == idxName {
			db.mu.Unlock()
			return nil, fmt.Errorf("executor: index %q already exists", idxName)
		}
	}
	db.mu.Unlock()

	bp, existed, err := db.newPool(idxName + ".idx")
	if err != nil {
		return nil, err
	}
	idx, err := am.New(oc.Name, bp, !existed)
	if err != nil {
		return nil, err
	}
	info := &IndexInfo{Name: idxName, Column: ci, OpClass: oc, Idx: idx}
	// ambuild: back-fill from the heap unless the file already held a
	// built index.
	if !existed {
		err = t.Heap.Scan(func(rid heap.RID, rec []byte) bool {
			tup, derr := catalog.DecodeTuple(rec)
			if derr != nil {
				err = derr
				return false
			}
			if ierr := idx.Insert(tup[ci], rid); ierr != nil {
				err = ierr
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	db.mu.Lock()
	t.Indexes = append(t.Indexes, info)
	db.mu.Unlock()
	// Fresh statistics make the planner's selectivity realistic (like
	// the auto-ANALYZE PostgreSQL runs after bulk operations).
	if err := t.Analyze(); err != nil {
		return nil, err
	}
	return info, nil
}

// Insert adds a row, maintaining all indexes, and returns its RID.
func (t *Table) Insert(tup catalog.Tuple) (heap.RID, error) {
	if len(tup) != len(t.Columns) {
		return heap.InvalidRID, fmt.Errorf("executor: %s expects %d values, got %d", t.Name, len(t.Columns), len(tup))
	}
	for i, d := range tup {
		if d.Typ != t.Columns[i].Type {
			return heap.InvalidRID, fmt.Errorf("executor: column %s expects %v, got %v",
				t.Columns[i].Name, t.Columns[i].Type, d.Typ)
		}
	}
	rid, err := t.Heap.Insert(catalog.EncodeTuple(tup))
	if err != nil {
		return heap.InvalidRID, err
	}
	for _, ix := range t.Indexes {
		if err := ix.Idx.Insert(tup[ix.Column], rid); err != nil {
			return heap.InvalidRID, fmt.Errorf("executor: index %s: %w", ix.Name, err)
		}
	}
	return rid, nil
}

// Get fetches a row by RID.
func (t *Table) Get(rid heap.RID) (catalog.Tuple, error) {
	rec, err := t.Heap.Get(rid)
	if err != nil || rec == nil {
		return nil, err
	}
	return catalog.DecodeTuple(rec)
}

// DeleteRow removes one row by RID, maintaining all indexes.
func (t *Table) DeleteRow(rid heap.RID) error {
	tup, err := t.Get(rid)
	if err != nil {
		return err
	}
	if tup == nil {
		return nil
	}
	for _, ix := range t.Indexes {
		if _, err := ix.Idx.Delete(tup[ix.Column], rid); err != nil {
			return fmt.Errorf("executor: index %s: %w", ix.Name, err)
		}
	}
	return t.Heap.Delete(rid)
}
