// Package executor is the miniature query engine of this reproduction:
// heap tables, index maintenance across the access methods of package am,
// a PostgreSQL-style cost-based choice between sequential and index scans
// (planner.go), and incremental nearest-neighbor cursors. It plays the
// role of the PostgreSQL executor and planner that the paper's SP-GiST
// realization plugs into.
package executor

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Column describes one table column.
type Column struct {
	Name string
	Type catalog.Type
}

// IndexInfo is one index over a table column.
type IndexInfo struct {
	Name    string
	Column  int // ordinal in the table schema
	OpClass *catalog.OperatorClass
	Idx     am.Index
}

// Table is a heap file plus its schema and indexes.
type Table struct {
	Name    string
	Columns []Column
	Heap    *heap.File
	Indexes []*IndexInfo

	// ndistinct holds per-column distinct-value counts collected by
	// Analyze (0 = unknown). Like PostgreSQL statistics they go stale as
	// rows change; the planner treats them as estimates.
	ndistinct []int64

	db *DB
}

// Analyze collects per-column statistics (distinct-value counts) for the
// planner's selectivity estimation — the role of PostgreSQL's ANALYZE.
// CreateIndex runs it automatically.
func (t *Table) Analyze() error {
	seen := make([]map[string]struct{}, len(t.Columns))
	for i := range seen {
		seen[i] = make(map[string]struct{})
	}
	err := t.Heap.Scan(func(_ heap.RID, rec []byte) bool {
		tup, err := catalog.DecodeTuple(rec)
		if err != nil {
			return false
		}
		for i, d := range tup {
			seen[i][d.String()] = struct{}{}
		}
		return true
	})
	if err != nil {
		return err
	}
	t.ndistinct = make([]int64, len(t.Columns))
	for i := range seen {
		t.ndistinct[i] = int64(len(seen[i]))
	}
	return nil
}

// DB is a database: a set of tables and indexes over one directory (or
// over memory when dir is empty).
type DB struct {
	mu        sync.Mutex
	dir       string
	pageSize  int
	poolPages int
	tables    map[string]*Table
	pools     []*storage.BufferPool
	wal       *wal.Writer
	recovered storage.RecoveryStats
	crashed   bool

	// stmtMu serializes mutating statements against each other and
	// against Checkpoint/Close/Crash (single-writer, like SQLite).
	// Interleaved writers would let one statement's commit marker cover
	// another statement's half-appended records, and a checkpoint
	// running concurrently with an insert could recycle the log segment
	// holding the insert's records while its dirty pages are still only
	// in memory. Reads are unaffected. stmtMu is always acquired before
	// db.mu.
	stmtMu sync.Mutex
}

// Options configure a database.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// PageSize defaults to storage.DefaultPageSize.
	PageSize int
	// PoolPages is the buffer pool size per file; defaults to 1024.
	PoolPages int
	// WAL enables write-ahead logging and crash recovery (requires
	// Dir). On open, any log left by a previous run is replayed into
	// the data files before they are attached.
	WAL bool
	// WALSegmentBytes is the soft segment size limit; defaults to
	// wal.DefaultSegmentBytes.
	WALSegmentBytes int64
	// WALSync controls commit durability; defaults to wal.SyncCommit.
	WALSync wal.SyncMode
}

// Open creates or opens a database. Existing on-disk tables are not
// rediscovered automatically (no persistent catalog file): callers
// re-declare their schema, and table/index files are reattached by name.
func Open(opts Options) (*DB, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 1024
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	db := &DB{
		dir:       opts.Dir,
		pageSize:  opts.PageSize,
		poolPages: opts.PoolPages,
		tables:    make(map[string]*Table),
	}
	if !opts.WAL && opts.Dir != "" && wal.HasLog(filepath.Join(opts.Dir, "wal")) {
		// Ignoring a leftover log would skip its recovery now and then
		// replay it over newer (unlogged) data if WAL is re-enabled.
		return nil, fmt.Errorf("executor: %s holds a write-ahead log from a previous run; open with Options.WAL or remove its wal/ directory", opts.Dir)
	}
	if opts.WAL {
		if opts.Dir == "" {
			return nil, fmt.Errorf("executor: write-ahead logging requires an on-disk database (Options.Dir)")
		}
		walDir := filepath.Join(opts.Dir, "wal")
		// Redo pass: bring the data files up to the end of the log left
		// by the previous run before anything reattaches them.
		st, err := storage.RecoverDir(opts.Dir, walDir, opts.PageSize)
		if err != nil {
			return nil, err
		}
		db.recovered = st
		w, err := wal.OpenWriter(walDir, wal.Options{
			SegmentBytes: opts.WALSegmentBytes,
			Mode:         opts.WALSync,
		})
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	return db, nil
}

// WAL returns the attached log writer (nil when logging is off).
func (db *DB) WAL() *wal.Writer { return db.wal }

// RecoveryStats reports the redo pass performed when the database was
// opened (all zeros when logging is off or the log was empty).
func (db *DB) RecoveryStats() storage.RecoveryStats { return db.recovered }

// OpenMemory opens an in-memory database with default settings.
func OpenMemory() *DB {
	db, _ := Open(Options{})
	return db
}

// Close flushes everything, checkpoints the log, and closes the
// underlying files.
func (db *DB) Close() error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return nil
	}
	for _, t := range db.tables {
		for _, ix := range t.Indexes {
			if err := ix.Idx.Flush(); err != nil {
				return err
			}
		}
	}
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	for _, bp := range db.pools {
		if err := bp.Close(); err != nil {
			return err
		}
	}
	db.pools = nil
	db.tables = make(map[string]*Table)
	if db.wal != nil {
		if err := db.wal.Close(); err != nil {
			return err
		}
		db.wal = nil
	}
	return nil
}

// Checkpoint flushes every buffer pool, syncs the data files, and (with
// a WAL attached) logs a checkpoint record and recycles old log
// segments — the role of the CHECKPOINT statement.
func (db *DB) Checkpoint() error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	for _, t := range db.tables {
		for _, ix := range t.Indexes {
			if err := ix.Idx.SaveMeta(); err != nil {
				return err
			}
		}
	}
	for _, bp := range db.pools {
		if err := bp.FlushAll(); err != nil {
			return err
		}
		if err := bp.DM().Sync(); err != nil {
			return err
		}
	}
	if db.wal != nil {
		if _, err := db.wal.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Crash simulates a process crash for tests and demos: the write-ahead
// log is made durable up to its last appended record (the state an
// OS-level crash would leave after the last commit), every buffer pool
// discards its frames without writing them back, and the files close.
// Data pages keep only what earlier evictions and flushes wrote; a
// subsequent Open with WAL enabled must redo the rest from the log.
func (db *DB) Crash() error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		if err := db.wal.Close(); err != nil {
			return err
		}
		db.wal = nil
	}
	for _, bp := range db.pools {
		if err := bp.Crash(); err != nil {
			return err
		}
	}
	db.pools = nil
	db.tables = make(map[string]*Table)
	db.crashed = true
	return nil
}

// commitWAL is the per-statement commit point: index metadata is saved
// into (logged) meta pages, a commit marker closes the statement in the
// log, and the log is forced according to the sync mode. A no-op when
// logging is off.
func (db *DB) commitWAL(t *Table) error {
	if db.wal == nil {
		return nil
	}
	if t != nil {
		for _, ix := range t.Indexes {
			if err := ix.Idx.SaveMeta(); err != nil {
				return err
			}
		}
	}
	// Materialize the deferred page images of every pool so the marker
	// covers them. db.pools is only mutated under stmtMu, which every
	// caller of commitWAL holds.
	for _, bp := range db.pools {
		if err := bp.LogPendingImages(); err != nil {
			return err
		}
	}
	if _, err := db.wal.AppendCommit(); err != nil {
		return err
	}
	return db.wal.Commit()
}

// newPool opens a buffer pool over a fresh or existing file (or memory).
func (db *DB) newPool(fileName string) (*storage.BufferPool, bool, error) {
	var dm storage.DiskManager
	existed := false
	if db.dir == "" {
		dm = storage.NewMem(db.pageSize)
	} else {
		path := filepath.Join(db.dir, fileName)
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			existed = true
		}
		fdm, err := storage.OpenFile(path, db.pageSize)
		if err != nil {
			return nil, false, err
		}
		dm = fdm
	}
	bp := storage.NewBufferPool(dm, db.poolPages)
	if db.wal != nil {
		if !existed {
			if _, err := db.wal.AppendFileCreate(fileName); err != nil {
				return nil, false, err
			}
		}
		bp.AttachWAL(db.wal, fileName)
	}
	db.pools = append(db.pools, bp)
	return bp, existed, nil
}

// CreateTable creates a table (reattaching its heap file if one exists on
// disk from a previous session).
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("executor: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("executor: table %q needs at least one column", name)
	}
	bp, existed, err := db.newPool(name + ".tbl")
	if err != nil {
		return nil, err
	}
	var hf *heap.File
	if existed {
		hf, err = heap.Open(bp)
	} else {
		hf, err = heap.Create(bp)
	}
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Columns: cols, Heap: hf, db: db}
	db.tables[name] = t
	if err := db.commitWAL(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("executor: unknown table %q", name)
	}
	return t, nil
}

// Tables lists the known tables.
func (db *DB) Tables() []*Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []*Table
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("executor: table %s has no column %q", t.Name, name)
}

// CreateIndex creates an index on a column, via CREATE INDEX ... USING
// method (col opclass). When opclassName is empty the default class of
// (method, column type) is used. Existing rows are back-filled (ambuild).
//
// CREATE INDEX is not crash-atomic: a crash mid-build leaves a partial
// index file that a later CreateIndex reattaches as-is (there is no
// persistent catalog recording build completion yet). After a crash
// during a build, remove the .idx file so the index is rebuilt.
func (db *DB) CreateIndex(idxName, tableName, colName, method, opclassName string) (*IndexInfo, error) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	t, err := db.Table(tableName)
	if err != nil {
		return nil, err
	}
	ci, err := t.colIndex(colName)
	if err != nil {
		return nil, err
	}
	if _, ok := catalog.LookupAM(method); !ok {
		return nil, fmt.Errorf("executor: unknown access method %q", method)
	}
	var oc *catalog.OperatorClass
	if opclassName == "" {
		oc, err = catalog.DefaultOpClass(method, t.Columns[ci].Type)
		if err != nil {
			return nil, err
		}
	} else {
		var ok bool
		oc, ok = catalog.LookupOpClass(opclassName)
		if !ok {
			return nil, fmt.Errorf("executor: unknown operator class %q", opclassName)
		}
		if oc.AM != method {
			return nil, fmt.Errorf("executor: operator class %s belongs to %s, not %s", oc.Name, oc.AM, method)
		}
		if oc.Type != t.Columns[ci].Type {
			return nil, fmt.Errorf("executor: operator class %s indexes %v, column %s is %v",
				oc.Name, oc.Type, colName, t.Columns[ci].Type)
		}
	}
	db.mu.Lock()
	for _, ix := range t.Indexes {
		if ix.Name == idxName {
			db.mu.Unlock()
			return nil, fmt.Errorf("executor: index %q already exists", idxName)
		}
	}
	db.mu.Unlock()

	bp, existed, err := db.newPool(idxName + ".idx")
	if err != nil {
		return nil, err
	}
	idx, err := am.New(oc.Name, bp, !existed)
	if err != nil {
		return nil, err
	}
	info := &IndexInfo{Name: idxName, Column: ci, OpClass: oc, Idx: idx}
	// ambuild: back-fill from the heap unless the file already held a
	// built index.
	if !existed {
		rows := 0
		err = t.Heap.Scan(func(rid heap.RID, rec []byte) bool {
			tup, derr := catalog.DecodeTuple(rec)
			if derr != nil {
				err = derr
				return false
			}
			if ierr := idx.Insert(tup[ci], rid); ierr != nil {
				err = ierr
				return false
			}
			rows++
			// Under the buffer pool's no-steal rule a build's dirty
			// pages are unevictable until a commit marker covers them;
			// marking in batches keeps a large backfill from exhausting
			// the pool. (CREATE INDEX is not crash-atomic: a crash mid
			// build can leave a partial index file — remove it to
			// rebuild.)
			if db.wal != nil && rows%256 == 0 {
				if werr := bp.LogPendingImages(); werr != nil {
					err = werr
					return false
				}
				if _, werr := db.wal.AppendCommit(); werr != nil {
					err = werr
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	db.mu.Lock()
	t.Indexes = append(t.Indexes, info)
	db.mu.Unlock()
	// Fresh statistics make the planner's selectivity realistic (like
	// the auto-ANALYZE PostgreSQL runs after bulk operations).
	if err := t.Analyze(); err != nil {
		return nil, err
	}
	// The build dirtied many index pages (all logged as page images);
	// persist the index metadata and force the log once for the whole
	// ambuild rather than per row.
	if err := db.commitWAL(t); err != nil {
		return nil, err
	}
	return info, nil
}

// Insert adds a row, maintaining all indexes, and returns its RID.
func (t *Table) Insert(tup catalog.Tuple) (heap.RID, error) {
	t.db.stmtMu.Lock()
	defer t.db.stmtMu.Unlock()
	if len(tup) != len(t.Columns) {
		return heap.InvalidRID, fmt.Errorf("executor: %s expects %d values, got %d", t.Name, len(t.Columns), len(tup))
	}
	for i, d := range tup {
		if d.Typ != t.Columns[i].Type {
			return heap.InvalidRID, fmt.Errorf("executor: column %s expects %v, got %v",
				t.Columns[i].Name, t.Columns[i].Type, d.Typ)
		}
	}
	rid, err := t.Heap.Insert(catalog.EncodeTuple(tup))
	if err != nil {
		return heap.InvalidRID, err
	}
	for _, ix := range t.Indexes {
		if err := ix.Idx.Insert(tup[ix.Column], rid); err != nil {
			return heap.InvalidRID, fmt.Errorf("executor: index %s: %w", ix.Name, err)
		}
	}
	if err := t.db.commitWAL(t); err != nil {
		return heap.InvalidRID, err
	}
	return rid, nil
}

// Get fetches a row by RID.
func (t *Table) Get(rid heap.RID) (catalog.Tuple, error) {
	rec, err := t.Heap.Get(rid)
	if err != nil || rec == nil {
		return nil, err
	}
	return catalog.DecodeTuple(rec)
}

// DeleteRow removes one row by RID, maintaining all indexes.
func (t *Table) DeleteRow(rid heap.RID) error {
	t.db.stmtMu.Lock()
	defer t.db.stmtMu.Unlock()
	tup, err := t.Get(rid)
	if err != nil {
		return err
	}
	if tup == nil {
		return nil
	}
	for _, ix := range t.Indexes {
		if _, err := ix.Idx.Delete(tup[ix.Column], rid); err != nil {
			return fmt.Errorf("executor: index %s: %w", ix.Name, err)
		}
	}
	if err := t.Heap.Delete(rid); err != nil {
		return err
	}
	return t.db.commitWAL(t)
}
