package executor_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestDegradedModeReadOnly: once the write-ahead log dies (here: a
// sticky injected ENOSPC), the database flips read-only. The statement
// that hit the failure reports the real cause; everything after it gets
// a typed *ErrReadOnly; reads keep working; State() reports degraded.
func TestDegradedModeReadOnly(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Crash()
	tb, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText("alive"), catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if state, _ := db.State(); state != "ok" {
		t.Fatalf("healthy database reports %q", state)
	}

	// The log device fills up.
	db.WAL().InjectFault(fmt.Errorf("wal append: %w", storage.ErrNoSpace))

	// The statement that trips over the dead log reports the storage
	// error itself, not ErrReadOnly.
	_, err = tb.Insert(catalog.Tuple{catalog.NewText("doomed"), catalog.NewInt(2)})
	if !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("first insert after log death: %v, want ENOSPC", err)
	}

	if state, detail := db.State(); state != "degraded" || !strings.Contains(detail, "no space") {
		t.Fatalf("State() = %q/%q, want degraded with cause", state, detail)
	}
	if err := db.Degraded(); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("Degraded() = %v", err)
	}

	// Every later write statement fails fast with the typed error, and
	// the cause stays reachable through errors.Is.
	var ro *executor.ErrReadOnly
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText("x"), catalog.NewInt(3)}); !errors.As(err, &ro) {
		t.Fatalf("insert while degraded: %v, want *ErrReadOnly", err)
	} else if !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("ErrReadOnly does not unwrap to the cause: %v", err)
	}
	if _, err := db.CreateTable("t2", tortureCols()); !errors.As(err, &ro) {
		t.Fatalf("CREATE TABLE while degraded: %v", err)
	}
	if _, err := db.CreateIndex("ix", "t", "name", "spgist", "spgist_trie"); !errors.As(err, &ro) {
		t.Fatalf("CREATE INDEX while degraded: %v", err)
	}
	if err := db.DropTable("t"); !errors.As(err, &ro) {
		t.Fatalf("DROP TABLE while degraded: %v", err)
	}
	if _, err := db.Vacuum("t"); !errors.As(err, &ro) {
		t.Fatalf("VACUUM while degraded: %v", err)
	}
	if err := db.Checkpoint(); !errors.As(err, &ro) {
		t.Fatalf("CHECKPOINT while degraded: %v", err)
	}

	// Reads are unaffected: the committed row is still served.
	got := 0
	if _, err := tb.Select(nil, func(r executor.Row) bool { got++; return true }); err != nil {
		t.Fatalf("select while degraded: %v", err)
	}
	if got != 1 {
		t.Fatalf("select while degraded returned %d rows, want 1", got)
	}
}

// TestCheckpointFailureFlipsDegraded: a log that dies during CHECKPOINT
// must flip degraded mode immediately — not at whatever later DML first
// trips the sticky writer error — so health checks see the truth.
func TestCheckpointFailureFlipsDegraded(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Crash()
	tb, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText("row"), catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	db.WAL().InjectFault(fmt.Errorf("wal append: %w", storage.ErrNoSpace))
	if err := db.Checkpoint(); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("checkpoint on dead log: %v, want ENOSPC", err)
	}
	if state, _ := db.State(); state != "degraded" {
		t.Fatalf("state after failed checkpoint = %q, want degraded", state)
	}
}

// TestDegradedRollbackReleasesLocks: a transaction opened before the
// log died must still be able to roll back — its undo appends fail, but
// every table lock is released, so the session (and the next reader)
// is not wedged behind a zombie transaction.
func TestDegradedRollbackReleasesLocks(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Crash()
	tb, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InsertTx(tx, catalog.Tuple{catalog.NewText("w"), catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	db.WAL().InjectFault(fmt.Errorf("wal append: %w", storage.ErrNoSpace))
	// Rollback may report the log failure, but it must finish and
	// release the table's write lock.
	tx.Rollback()
	done := make(chan error, 1)
	go func() {
		_, err := tb.Select(nil, func(executor.Row) bool { return true })
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("select after degraded rollback: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader wedged behind rolled-back transaction")
	}
}

// TestScrubReportsBitFlip: a single flipped bit in a flushed,
// checkpointed heap page is (a) reported by SCRUB with the file and
// page, (b) never served to a query — the scan fails with
// ErrPageCorrupt instead of returning poisoned tuples — and (c) not a
// reason to degrade: read-side corruption is per-page, the database
// stays writable elsewhere.
func TestScrubReportsBitFlip(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := tb.Insert(catalog.Tuple{catalog.NewText(fmt.Sprintf("word%03d", i)), catalog.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	heapFile := tb.File()

	// A clean scrub first: every page verifies.
	res, err := db.Scrub("")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 0 || res.PagesChecked == 0 || res.FilesChecked == 0 {
		t.Fatalf("clean scrub: %+v", res)
	}

	// Checkpoint so the WAL holds nothing replayable (recovery must not
	// quietly repair the flip we are about to make), then close.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit of page 1's payload, behind the checksum's back.
	path := filepath.Join(dir, heapFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := storage.DefaultPageSize + 100
	raw[off] ^= 0x04
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err = executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// SCRUB names the file and the page.
	res, err = db.Scrub("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 1 {
		t.Fatalf("scrub found %d issues, want 1: %+v", len(res.Issues), res.Issues)
	}
	is := res.Issues[0]
	if is.File != heapFile || is.Page != 1 {
		t.Fatalf("scrub reported %s page %d, want %s page 1", is.File, is.Page, heapFile)
	}
	if !storage.IsPageCorrupt(is.Err) {
		t.Fatalf("scrub issue error = %v, want page corrupt", is.Err)
	}

	// The corrupt page is never served: the scan fails, it does not
	// return garbage tuples.
	tb, err = db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = tb.Select(nil, func(executor.Row) bool { return true })
	if !storage.IsPageCorrupt(err) {
		t.Fatalf("scan over corrupt page: %v, want page corrupt", err)
	}

	// Corruption is not degradation: the database is still writable.
	if state, _ := db.State(); state != "ok" {
		t.Fatalf("read-side corruption degraded the database: %q", state)
	}
	if _, err := db.CreateTable("t2", tortureCols()); err != nil {
		t.Fatalf("CREATE TABLE after corruption report: %v", err)
	}
}

// TestTornPageRecovery: a page torn at crash (its tail garbage, its
// header intact — what a power cut mid-write leaves) fails its checksum
// at redo; recovery reinitializes it and rebuilds its contents from the
// log's full record trail. Every committed row survives.
func TestTornPageRecovery(t *testing.T) {
	dir := t.TempDir()
	// A tiny pool forces evictions, so data pages reach disk during the
	// workload while every record since file creation stays in the
	// un-checkpointed log.
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, PoolPages: 8, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	const rows = 4000
	for base := 0; base < rows; base += 200 {
		tups := make([]catalog.Tuple, 0, 200)
		for i := base; i < base+200; i++ {
			tups = append(tups, catalog.Tuple{catalog.NewText(fmt.Sprintf("word%04d", i)), catalog.NewInt(int64(i))})
		}
		if _, err := tb.InsertBatch(tups); err != nil {
			t.Fatal(err)
		}
	}
	heapFile := tb.File()
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// Tear every flushed data page: keep the first half (header and
	// early slots land), trash the second half — the on-disk state of a
	// write the crash interrupted.
	path := filepath.Join(dir, heapFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ps := storage.DefaultPageSize
	torn := 0
	for p := 1; (p+1)*ps <= len(raw); p++ {
		page := raw[p*ps : (p+1)*ps]
		if _, _, ok := storage.VerifyPageChecksum(page); !ok {
			t.Fatalf("page %d already corrupt before tearing", p)
		}
		for i := ps / 2; i < ps; i++ {
			page[i] = 0xEE
		}
		torn++
	}
	if torn == 0 {
		t.Fatal("no data pages reached disk; raise the row count")
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err = executor.Open(executor.Options{Dir: dir, WAL: true, PoolPages: 8, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rs := db.RecoveryStats()
	if rs.TornPages == 0 || rs.TornRepaired != rs.TornPages {
		t.Fatalf("recovery stats: torn=%d repaired=%d, want >0 and equal", rs.TornPages, rs.TornRepaired)
	}

	tb, err = db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	if _, err := tb.Select(nil, func(r executor.Row) bool {
		got[r.Tuple[0].S] = true
		return true
	}); err != nil {
		t.Fatalf("scan after torn-page recovery: %v", err)
	}
	if len(got) != rows {
		t.Fatalf("%d rows after torn-page recovery, want %d", len(got), rows)
	}
	// And the repaired pages verify again.
	res, err := db.Scrub("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 0 {
		t.Fatalf("scrub after repair: %+v", res.Issues)
	}
}

// TestTornPageAfterCheckpointRecovery: a checkpoint recycles the log
// segments holding a page's history, so repairing that page torn means
// replay must have a full image of it. The first post-checkpoint touch
// of a page ships one (Postgres-style full-page write); without it,
// recovery would reinitialize the page and silently restore only the
// post-checkpoint records — here, 1 row instead of 51.
func TestTornPageAfterCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	const oldRows = 50
	for i := 0; i < oldRows; i++ {
		if _, err := tb.Insert(catalog.Tuple{catalog.NewText(fmt.Sprintf("word%03d", i)), catalog.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	heapFile := tb.File()
	// Checkpoint and close: the old rows' insert records are gone from
	// the log; page 1 on disk is their only copy.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (the writer re-derives the checkpoint horizon from the
	// surviving segments) and insert one straggler onto the same page.
	db, err = executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	tb, err = db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText("straggler"), catalog.NewInt(oldRows)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// Tear page 1: header half lands, tail is garbage — the write the
	// crash interrupted.
	path := filepath.Join(dir, heapFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ps := storage.DefaultPageSize
	if len(raw) < 2*ps {
		t.Fatal("page 1 never reached disk")
	}
	for i := ps + ps/2; i < 2*ps; i++ {
		raw[i] = 0xEE
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err = executor.Open(executor.Options{Dir: dir, WAL: true, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rs := db.RecoveryStats()
	if rs.TornPages == 0 || rs.TornRepaired != rs.TornPages {
		t.Fatalf("recovery stats: torn=%d repaired=%d, want >0 and equal", rs.TornPages, rs.TornRepaired)
	}

	// Every row survives — the 50 whose records the checkpoint
	// recycled, and the straggler.
	tb, err = db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	if _, err := tb.Select(nil, func(r executor.Row) bool {
		got[r.Tuple[0].S] = true
		return true
	}); err != nil {
		t.Fatalf("scan after post-checkpoint torn-page recovery: %v", err)
	}
	if len(got) != oldRows+1 {
		t.Fatalf("%d rows after recovery, want %d", len(got), oldRows+1)
	}
	if !got["straggler"] || !got["word000"] {
		t.Fatalf("missing rows after recovery: straggler=%v word000=%v", got["straggler"], got["word000"])
	}
	res, err := db.Scrub("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 0 {
		t.Fatalf("scrub after repair: %+v", res.Issues)
	}
}

// TestIOErrorTorture: the randomized I/O torture suite. A seeded
// workload (inserts, deletes, updates, scans, explicit transactions)
// runs with every data file wrapped in a FaultDiskManager injecting
// transient read errors at p=0.01. Statement errors caused by injection
// are legal — each statement is atomic, so the model simply skips it —
// but anything else fails the run. Periodically the database crashes;
// after the first crash one flushed heap page is torn. Every recovery
// is model-checked, and at the end the process must be free of wedged
// goroutines.
func TestIOErrorTorture(t *testing.T) {
	const seed = 20260808
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	model := &tortureModel{tables: map[string]*modelTable{}}
	baseline := runtime.NumGoroutine()

	var fmu sync.Mutex
	var fdms []*storage.FaultDiskManager
	wrapped := 0
	diskFaults := func(fileName string, dm storage.DiskManager) storage.DiskManager {
		fmu.Lock()
		defer fmu.Unlock()
		wrapped++
		f := storage.WithFaults(dm, seed+int64(wrapped))
		f.SetProb(storage.FaultRead, 0.02)
		fdms = append(fdms, f)
		return f
	}
	open := func() *executor.DB {
		db, err := executor.Open(executor.Options{
			Dir: dir, WAL: true, PoolPages: 16, WALSync: wal.SyncCommit,
			DiskFaults: diskFaults,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	// injected reports whether a statement error is fault fallout —
	// the retries exhausted on an injected error, or a cascade from
	// one — rather than an engine bug.
	injected := func(err error) bool {
		return errors.Is(err, storage.ErrInjectedIO) || errors.Is(err, storage.ErrShortRead)
	}

	db := open()
	defer func() {
		if db != nil {
			db.Crash()
		}
	}()
	if _, err := db.CreateTable("t0", tortureCols()); err != nil {
		t.Fatal(err)
	}
	mt := &modelTable{rows: map[string]int{}, indexes: map[string]string{}, statsRows: -1}
	model.tables["t0"] = mt
	if _, err := db.CreateIndex("ix0", "t0", "name", "spgist", "spgist_trie"); err != nil {
		t.Fatal(err)
	}
	mt.indexes["ix0"] = "spgist_trie"

	toreOnce := false
	steps := 300
	if testing.Short() {
		steps = 120
	}
	for step := 0; step < steps; step++ {
		tb, err := db.Table("t0")
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		switch op := rng.Intn(10); {
		case op < 4: // batch insert
			n := 1 + rng.Intn(40)
			tups := make([]catalog.Tuple, 0, n)
			keys := make([]string, 0, n)
			for i := 0; i < n; i++ {
				word := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
				id := mt.nextID
				mt.nextID++
				tups = append(tups, catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))})
				keys = append(keys, fmt.Sprintf("%s|%d", word, id))
			}
			if _, err := tb.InsertBatch(tups); err != nil {
				if injected(err) {
					continue // atomic statement: nothing applied
				}
				t.Fatalf("step %d: insert batch: %v", step, err)
			}
			for _, k := range keys {
				mt.rows[k]++
			}
		case op == 4: // delete prefix
			prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
			if _, err := tb.DeleteWhere(&executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)}); err != nil {
				if injected(err) {
					continue
				}
				t.Fatalf("step %d: delete: %v", step, err)
			}
			modelDeletePrefix(mt.rows, prefix)
		case op == 5: // update prefix
			prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
			newWord := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
			if _, err := tb.UpdateWhere(&executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)},
				[]executor.ColUpdate{{Column: 0, Value: catalog.NewText(newWord)}}); err != nil {
				if injected(err) {
					continue
				}
				t.Fatalf("step %d: update: %v", step, err)
			}
			modelUpdatePrefix(mt.rows, prefix, newWord)
		case op == 6 || op == 7: // scans, planner and forced-index
			pred := &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(fmt.Sprintf("w%c", 'a'+rng.Intn(6)))}
			if _, err := tb.Select(pred, func(executor.Row) bool { return true }); err != nil && !injected(err) {
				t.Fatalf("step %d: select: %v", step, err)
			}
			for _, ix := range tb.Indexes {
				if err := tb.SelectIndexed(ix, pred, func(executor.Row) bool { return true }); err != nil && !injected(err) {
					t.Fatalf("step %d: index scan: %v", step, err)
				}
			}
		case op == 8: // explicit transaction, commit or rollback
			tx, err := db.Begin()
			if err != nil {
				t.Fatalf("step %d: begin: %v", step, err)
			}
			staged := make(map[string]int, len(mt.rows))
			for k, c := range mt.rows {
				staged[k] = c
			}
			aborted := false
			for s, nStmt := 0, 1+rng.Intn(2); s < nStmt; s++ {
				word := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
				id := mt.nextID
				mt.nextID++
				if _, err := tb.InsertTx(tx, catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))}); err != nil {
					if injected(err) {
						// One failed statement poisons nothing else:
						// roll the block back and move on.
						tx.Rollback()
						aborted = true
						break
					}
					t.Fatalf("step %d: txn insert: %v", step, err)
				}
				staged[fmt.Sprintf("%s|%d", word, id)]++
			}
			if aborted {
				continue
			}
			if rng.Intn(4) == 0 {
				if err := tx.Rollback(); err != nil && !injected(err) {
					t.Fatalf("step %d: rollback: %v", step, err)
				}
			} else {
				if err := tx.Commit(); err != nil {
					if injected(err) {
						continue // commit never reached the log: nothing applied
					}
					t.Fatalf("step %d: commit: %v", step, err)
				}
				mt.rows = staged
			}
		case op == 9 && step > 30 && rng.Intn(3) == 0: // crash, maybe tear, recover, model-check
			heapFile := tb.File()
			if err := db.Crash(); err != nil {
				t.Fatalf("step %d: crash: %v", step, err)
			}
			db = nil
			if !toreOnce {
				// Tear one flushed heap page: its tail is garbage, its
				// records are all still in the never-checkpointed log.
				path := filepath.Join(dir, heapFile)
				if raw, err := os.ReadFile(path); err == nil && len(raw) >= 2*storage.DefaultPageSize {
					ps := storage.DefaultPageSize
					for i := ps + ps/2; i < 2*ps; i++ {
						raw[i] = 0xEE
					}
					if err := os.WriteFile(path, raw, 0o644); err != nil {
						t.Fatal(err)
					}
					toreOnce = true
				}
			}
			verifyTorture(t, dir, model)
			db = open()
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	db = nil
	verifyTorture(t, dir, model)

	// Injection actually happened, or the whole run proved nothing.
	fmu.Lock()
	var total storage.FaultCounters
	for _, f := range fdms {
		c := f.Counters()
		total.Transient += c.Transient
	}
	fmu.Unlock()
	if total.Transient == 0 {
		t.Fatal("torture run injected zero faults")
	}
	if !toreOnce {
		t.Log("no crash cycle flushed a data page; torn-page path exercised by TestTornPageRecovery")
	}

	// No wedged goroutines: everything the engine started must wind
	// down after Close.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines wedged after close: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
