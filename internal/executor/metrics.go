package executor

import (
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/storage"
)

// execMetrics holds the executor's cumulative counters — the pg_stat
// layer of this engine. Every field is registered in one obs.Registry
// at Open and bumped directly (one atomic add) on its path; the
// storage, disk, and WAL counters, which live in their own components,
// join the registry's readout through a cold sampler callback instead
// of a second hot-path increment.
type execMetrics struct {
	reg *obs.Registry

	stmtSelect *obs.Counter
	stmtNN     *obs.Counter
	stmtInsert *obs.Counter
	stmtDelete *obs.Counter
	stmtUpdate *obs.Counter

	txnBegin    *obs.Counter
	txnCommit   *obs.Counter
	txnRollback *obs.Counter

	rowsReturned   *obs.Counter
	tuplesRead     *obs.Counter
	tuplesInserted *obs.Counter
	tuplesDeleted  *obs.Counter
	tuplesUpdated  *obs.Counter
	tuplesVacuumed *obs.Counter

	planSeqScan   *obs.Counter
	planIndexScan *obs.Counter
	planNNScan    *obs.Counter

	lockWaitNs *obs.Counter
}

func newExecMetrics() *execMetrics {
	reg := obs.NewRegistry()
	return &execMetrics{
		reg:            reg,
		stmtSelect:     reg.Counter("exec_select_total"),
		stmtNN:         reg.Counter("exec_select_nn_total"),
		stmtInsert:     reg.Counter("exec_insert_total"),
		stmtDelete:     reg.Counter("exec_delete_total"),
		stmtUpdate:     reg.Counter("exec_update_total"),
		txnBegin:       reg.Counter("exec_txn_begin_total"),
		txnCommit:      reg.Counter("exec_txn_commit_total"),
		txnRollback:    reg.Counter("exec_txn_rollback_total"),
		rowsReturned:   reg.Counter("exec_rows_returned_total"),
		tuplesRead:     reg.Counter("exec_tuples_read_total"),
		tuplesInserted: reg.Counter("exec_tuples_inserted_total"),
		tuplesDeleted:  reg.Counter("exec_tuples_deleted_total"),
		tuplesUpdated:  reg.Counter("exec_tuples_updated_total"),
		tuplesVacuumed: reg.Counter("exec_tuples_vacuumed_total"),
		planSeqScan:    reg.Counter("exec_plan_seqscan_total"),
		planIndexScan:  reg.Counter("exec_plan_indexscan_total"),
		planNNScan:     reg.Counter("exec_plan_nnscan_total"),
		lockWaitNs:     reg.Counter("exec_lock_wait_ns_total"),
	}
}

// Obs exposes the database's metrics registry: the executor's own
// counters plus, via a sampler, the buffer-pool, disk, and WAL counters
// of every open file. SHOW STATS and the server's STATS verb render it.
// Do not call Render/Each while holding ShareLock — the storage sampler
// takes the shared statement lock itself.
func (db *DB) Obs() *obs.Registry { return db.met.reg }

// sampleStorage contributes the storage-layer counters to the registry
// readout: buffer-pool traffic summed over every open pool (catalog
// included), physical disk I/O, and the write-ahead log's activity.
func (db *DB) sampleStorage(emit func(name string, value int64)) {
	db.stmtMu.RLock()
	pools := append([]*storage.BufferPool(nil), db.pools...)
	faultDMs := append([]*storage.FaultDiskManager(nil), db.faultDMs...)
	w := db.wal
	db.stmtMu.RUnlock()

	var ps storage.PoolStats
	var reads, writes, allocs int64
	shards := 0
	for _, bp := range pools {
		s := bp.Stats()
		ps.Accesses += s.Accesses
		ps.Hits += s.Hits
		ps.Misses += s.Misses
		ps.Evictions += s.Evictions
		ps.DirtyWrites += s.DirtyWrites
		ps.InflightJoins += s.InflightJoins
		ps.PrefetchReads += s.PrefetchReads
		ps.PrefetchHits += s.PrefetchHits
		ps.PrefetchWasted += s.PrefetchWasted
		ps.BGWrites += s.BGWrites
		r, wr, al := bp.DM().Stats().Snapshot()
		reads += r
		writes += wr
		allocs += al
		shards += bp.NumShards()
	}
	emit("pool_open", int64(len(pools)))
	emit("pool_shards", int64(shards))
	emit("pool_accesses_total", ps.Accesses)
	emit("pool_hits_total", ps.Hits)
	emit("pool_misses_total", ps.Misses)
	emit("pool_evictions_total", ps.Evictions)
	emit("pool_dirty_writes_total", ps.DirtyWrites)
	emit("pool_inflight_joins_total", ps.InflightJoins)
	emit("pool_prefetch_reads_total", ps.PrefetchReads)
	emit("pool_prefetch_hits_total", ps.PrefetchHits)
	emit("pool_prefetch_wasted_total", ps.PrefetchWasted)
	emit("pool_bgwriter_writes_total", ps.BGWrites)
	if db.bgw != nil {
		rounds, skipped, pages := db.BGWriterStats()
		emit("bgwriter_rounds_total", rounds)
		emit("bgwriter_skipped_total", skipped)
		emit("bgwriter_pages_total", pages)
	}
	emit("disk_reads_total", reads)
	emit("disk_writes_total", writes)
	emit("disk_allocs_total", allocs)
	if len(faultDMs) > 0 {
		var fc storage.FaultCounters
		for _, fdm := range faultDMs {
			c := fdm.Counters()
			fc.Transient += c.Transient
			fc.Permanent += c.Permanent
			fc.NoSpace += c.NoSpace
			fc.ShortReads += c.ShortReads
			fc.TornWrites += c.TornWrites
		}
		emit("faults_transient_total", fc.Transient)
		emit("faults_permanent_total", fc.Permanent)
		emit("faults_nospace_total", fc.NoSpace)
		emit("faults_short_reads_total", fc.ShortReads)
		emit("faults_torn_writes_total", fc.TornWrites)
	}
	if w != nil {
		s := w.Stats()
		emit("wal_appends_total", s.Appends)
		emit("wal_appended_bytes_total", s.AppendedBytes)
		emit("wal_syncs_total", s.Syncs)
		emit("wal_sync_waits_total", s.SyncWaits)
		emit("wal_rotations_total", s.Rotations)
		emit("wal_checkpoints_total", s.Checkpoints)
		emit("wal_group_commits_total", s.GroupCommits)
		emit("wal_group_records_total", s.GroupRecords)
		emit("wal_segment_recycles_total", s.Recycles)
	}
}

// resetStorageStats is the registry's reset hook (SHOW STATS RESET):
// the storage-layer counters reach the readout through sampleStorage's
// component atomics, so resetting the registry's own metrics alone
// would leave them running. Takes the shared statement lock, like the
// sampler — do not call while holding ShareLock.
func (db *DB) resetStorageStats() {
	db.stmtMu.RLock()
	pools := append([]*storage.BufferPool(nil), db.pools...)
	w := db.wal
	db.stmtMu.RUnlock()
	for _, bp := range pools {
		bp.ResetStats()
		bp.DM().Stats().Reset()
	}
	if w != nil {
		w.ResetStats()
	}
	db.waits.Reset()
}

// PoolStats sums the buffer-pool counters over every open pool. The
// slow-query log and tests use it for before/after deltas.
func (db *DB) PoolStats() storage.PoolStats {
	db.stmtMu.RLock()
	pools := append([]*storage.BufferPool(nil), db.pools...)
	db.stmtMu.RUnlock()
	var ps storage.PoolStats
	for _, bp := range pools {
		s := bp.Stats()
		ps.Accesses += s.Accesses
		ps.Hits += s.Hits
		ps.Misses += s.Misses
		ps.Evictions += s.Evictions
		ps.DirtyWrites += s.DirtyWrites
		ps.InflightJoins += s.InflightJoins
		ps.PrefetchReads += s.PrefetchReads
		ps.PrefetchHits += s.PrefetchHits
		ps.PrefetchWasted += s.PrefetchWasted
		ps.BGWrites += s.BGWrites
	}
	return ps
}

// TableStat is one name/value line of the per-table SHOW STATS output.
type TableStat struct {
	Name  string
	Value int64
}

// Stats reads this table's pg_stat-style numbers under the shared
// statement lock: live rows, heap pages, churn since the last ANALYZE,
// and per-index size and scan counters.
func (t *Table) Stats() ([]TableStat, error) {
	t.lockRead()
	defer t.unlockRead()
	if err := t.checkAttached(); err != nil {
		return nil, err
	}
	t.statsMu.Lock()
	churn := t.churn
	analyzed := int64(0)
	if t.haveStats {
		analyzed = 1
	}
	t.statsMu.Unlock()
	out := []TableStat{
		{"rows", t.visibleCountLocked()},
		{"heap_versions", t.Heap.Count()},
		{"heap_pages", int64(t.Heap.NumPages())},
		{"churn_since_analyze", churn},
		{"analyzed", analyzed},
	}
	for _, ix := range t.Indexes {
		out = append(out,
			TableStat{"index_" + ix.Name + "_entries", ix.Idx.Count()},
			TableStat{"index_" + ix.Name + "_pages", int64(ix.Idx.NumPages())},
			TableStat{"index_" + ix.Name + "_size_bytes", ix.Idx.SizeBytes()},
			TableStat{"index_" + ix.Name + "_scans_total", ix.scans.Load()},
		)
	}
	return out, nil
}

// RowCountShared reads the snapshot-visible live row count while the
// caller already holds ShareLock: it takes only this table's physical
// latch, because RowCount would re-enter the shared statement lock,
// which sync.RWMutex forbids while a writer is queued. Unlike the raw
// heap record count, dead versions — committed deletes not yet
// vacuumed, rolled-back inserts, another transaction's uncommitted
// rows — are excluded. Returns 0 for a dropped table.
func (t *Table) RowCountShared() int64 {
	rlockTimed(&t.phys, t.db.met.lockWaitNs, t.db.waits, obs.WaitLockTable)
	defer t.phys.RUnlock()
	if t.checkAttached() != nil {
		return 0
	}
	return t.visibleCountLocked()
}

// visibleCountLocked counts the heap versions visible to a fresh
// snapshot. Caller holds t.phys (shared or exclusive).
func (t *Table) visibleCountLocked() int64 {
	snap := t.db.tm.snapshot(nil)
	defer t.db.tm.release(snap)
	var n int64
	t.Heap.ScanVersions(func(_ heap.RID, h heap.TupleHeader, _ []byte) bool {
		if snap.Visible(h) {
			n++
		}
		return true
	})
	return n
}

// rlockTimed takes mu's read lock, charging any wait to c and recording
// it as a wait event (cumulative counts plus the blocked session's live
// state). The uncontended fast path (TryRLock succeeds) reads no clock.
func rlockTimed(mu *sync.RWMutex, c *obs.Counter, ws *obs.WaitSet, ev obs.WaitEvent) {
	if mu.TryRLock() {
		return
	}
	m := ws.Begin(ev)
	mu.RLock()
	c.Add(ws.End(m))
}

// lockTimed is rlockTimed for the write lock.
func lockTimed(mu *sync.RWMutex, c *obs.Counter, ws *obs.WaitSet, ev obs.WaitEvent) {
	if mu.TryLock() {
		return
	}
	m := ws.Begin(ev)
	mu.Lock()
	c.Add(ws.End(m))
}

// RunStats captures the actual execution counters of one analyzed
// statement — what EXPLAIN ANALYZE reports next to the planner's
// estimates. Buffer counters are deltas over this table's pools (heap
// plus indexes), so concurrent statements on other tables do not
// pollute them; concurrent work on the *same* table is excluded by the
// statement lock the analyzed run holds.
type RunStats struct {
	Rows       int64 // rows emitted after recheck/filter
	Scanned    int64 // tuples read before filtering
	Elapsed    time.Duration
	PoolHits   int64
	PoolMisses int64
	WALBytes   int64
	// IndexPages is the count of distinct index pages the scan visited,
	// from the access method's PageTrace; -1 when the plan did not go
	// through an index.
	IndexPages int
}

// tablePoolStats sums the pool counters of this table's own files.
// Caller holds the statement lock.
func (t *Table) tablePoolStats() (hits, misses int64) {
	s := t.Heap.Pool().Stats()
	hits, misses = s.Hits, s.Misses
	for _, ix := range t.Indexes {
		is := ix.pool.Stats()
		hits += is.Hits
		misses += is.Misses
	}
	return hits, misses
}

// SelectAnalyzed is Select instrumented for EXPLAIN ANALYZE: it plans
// and runs the statement under the normal shared locks while capturing
// wall time, tuple counts, buffer hit/miss deltas, WAL byte deltas, and
// — for index scans — the distinct index pages visited via PageTrace.
func (t *Table) SelectAnalyzed(pred *Pred, emit func(Row) bool) (*Plan, *RunStats, error) {
	t.lockRead()
	defer t.unlockRead()
	if err := t.checkAttached(); err != nil {
		return nil, nil, err
	}
	plan, err := t.planSelect(pred)
	if err != nil {
		return nil, nil, err
	}
	rs := &RunStats{IndexPages: -1}
	hitsBefore, missesBefore := t.tablePoolStats()
	var walBefore int64
	if w := t.db.wal; w != nil {
		walBefore = w.Stats().AppendedBytes
	}
	traced := plan.Kind == IndexScan
	if traced {
		plan.Index.Idx.StartPageTrace()
	}
	snap := t.db.tm.snapshot(nil)
	defer t.db.tm.release(snap)
	start := time.Now()
	scanned, emitted, err := t.run(snap, plan, emit)
	rs.Elapsed = time.Since(start)
	rs.Scanned, rs.Rows = scanned, emitted
	if traced {
		// PageTraceCount also stops the trace, so the per-page tracing
		// cost ends with this statement.
		rs.IndexPages = plan.Index.Idx.PageTraceCount()
		plan.Index.pagesVisited.Add(int64(rs.IndexPages))
	}
	hitsAfter, missesAfter := t.tablePoolStats()
	rs.PoolHits = hitsAfter - hitsBefore
	rs.PoolMisses = missesAfter - missesBefore
	if w := t.db.wal; w != nil {
		rs.WALBytes = w.Stats().AppendedBytes - walBefore
	}
	if err != nil {
		return nil, nil, err
	}
	return plan, rs, nil
}

// SelectNNAnalyzed is SelectNN instrumented the same way. The access
// path is chosen inside SelectNN's lock window, so no index trace is
// armed (IndexPages stays -1); buffer deltas still cover the NN scan.
func (t *Table) SelectNNAnalyzed(colName string, arg catalog.Datum, k int) ([]NNResult, *Plan, *RunStats, error) {
	rs := &RunStats{IndexPages: -1}
	hitsBefore, missesBefore := int64(0), int64(0)
	sampled := false
	// The lock is taken inside SelectNN; sample this table's pools just
	// before and after the call. The table set is stable (DDL takes the
	// exclusive lock), so sampling outside the lock window only risks
	// counting a concurrent same-table statement that slipped between
	// sample and lock — the analyzed numbers remain honest upper bounds.
	if t.checkAttached() == nil {
		hitsBefore, missesBefore = t.tablePoolStats()
		sampled = true
	}
	var walBefore int64
	if w := t.db.wal; w != nil {
		walBefore = w.Stats().AppendedBytes
	}
	start := time.Now()
	out, plan, err := t.SelectNN(colName, arg, k)
	rs.Elapsed = time.Since(start)
	if err != nil {
		return nil, nil, nil, err
	}
	rs.Rows = int64(len(out))
	rs.Scanned = rs.Rows
	if sampled {
		hitsAfter, missesAfter := t.tablePoolStats()
		rs.PoolHits = hitsAfter - hitsBefore
		rs.PoolMisses = missesAfter - missesBefore
	}
	if w := t.db.wal; w != nil {
		rs.WALBytes = w.Stats().AppendedBytes - walBefore
	}
	return out, plan, rs, nil
}
