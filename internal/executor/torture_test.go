package executor_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/heap"
	"repro/internal/wal"
)

// Randomized crash-recovery torture: a seeded random DDL/DML/ANALYZE
// workload runs against a WAL-backed database while a fault arming
// mechanism (Options.Faults) injects a crash at a random upcoming
// statement commit point or index-build step. After every crash the
// database reopens and the full on-disk state — catalog, heap contents,
// index contents, statistics, data files — is checked against an
// in-memory model that applies crash semantics:
//
//   - a statement crashed before its commit marker left nothing behind
//     (CREATE/DROP TABLE, DROP INDEX, ANALYZE);
//   - a crashed CREATE INDEX leaves its committed-invalid entry, so the
//     index exists *rebuilt and valid* after recovery;
//   - statistics are whole: either the pre-crash record or the new one,
//     with exactly the row count the model predicts — never torn;
//   - no ghost records, no partial index files, no orphaned data files;
//   - a statement (INSERT batch, DELETE, UPDATE) that crashed at its
//     commit point — or at a chunk boundary mid-statement — applies
//     NOTHING: recovery's abort fixup hides every version its xid wrote;
//   - an explicit BEGIN...COMMIT block is all-or-nothing across all its
//     statements: a crash or ROLLBACK anywhere inside leaves the state
//     exactly as it was before BEGIN.

var errTortureCrash = errors.New("torture: injected crash")

// tortureArm decides when the next injected fault fires. Guarded by a
// mutex because index-build hooks run inside the engine.
type tortureArm struct {
	mu        sync.Mutex
	countdown int // hook invocations until the fault fires; <0 = disarmed
}

func (a *tortureArm) hook() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.countdown < 0 {
		return nil
	}
	if a.countdown == 0 {
		a.countdown = -1
		return errTortureCrash
	}
	a.countdown--
	return nil
}

type modelTable struct {
	rows      map[string]int    // "name|id" multiset
	indexes   map[string]string // index name -> opclass
	statsRows int64             // expected persisted stats row count; -1 = absent
	nextID    int
}

type tortureModel struct {
	tables map[string]*modelTable
	nextIx int
}

func tortureCols() []executor.Column {
	return []executor.Column{{Name: "name", Type: catalog.Text}, {Name: "id", Type: catalog.Int}}
}

// modelDeletePrefix mirrors DELETE WHERE name #= prefix on a model
// multiset (keys are "name|id", so a name prefix is a key prefix).
func modelDeletePrefix(rows map[string]int, prefix string) {
	for k := range rows {
		if strings.HasPrefix(k, prefix) {
			delete(rows, k)
		}
	}
}

// modelUpdatePrefix mirrors UPDATE SET name = newWord WHERE name #=
// prefix: matching is decided against the statement's snapshot first,
// then every matched key is rewritten — so a newWord that itself bears
// the prefix is not re-matched, same as the engine.
func modelUpdatePrefix(rows map[string]int, prefix, newWord string) {
	var matched []string
	for k := range rows {
		if strings.HasPrefix(k, prefix) {
			matched = append(matched, k)
		}
	}
	for _, k := range matched {
		c := rows[k]
		delete(rows, k)
		rows[newWord+k[strings.LastIndex(k, "|"):]] += c
	}
}

// verifyTorture opens the database cleanly and checks every consistency
// property against the model, then closes it again.
func verifyTorture(t *testing.T, dir string, model *tortureModel) {
	t.Helper()
	db, err := executor.Open(executor.Options{Dir: dir, WAL: true, PoolPages: 16, WALSync: wal.SyncCommit})
	if err != nil {
		t.Fatalf("verify open: %v", err)
	}
	defer db.Close()
	cat := db.Catalog()

	// Catalog table set matches the model.
	var gotTables []string
	for _, te := range cat.Tables() {
		gotTables = append(gotTables, te.Name)
	}
	var wantTables []string
	for name := range model.tables {
		wantTables = append(wantTables, name)
	}
	sort.Strings(gotTables)
	sort.Strings(wantTables)
	if strings.Join(gotTables, ",") != strings.Join(wantTables, ",") {
		t.Fatalf("tables diverged: got %v want %v", gotTables, wantTables)
	}

	// Catalog index set matches, and every surviving index is valid —
	// a partial build must never be visible after recovery.
	wantIx := map[string]bool{}
	for _, mt := range model.tables {
		for ix := range mt.indexes {
			wantIx[ix] = true
		}
	}
	for _, ie := range cat.Indexes() {
		if !wantIx[ie.Name] {
			t.Fatalf("ghost index %q in catalog", ie.Name)
		}
		if !ie.Valid {
			t.Fatalf("index %q is INVALID after recovery (rebuild skipped)", ie.Name)
		}
		delete(wantIx, ie.Name)
	}
	for ix := range wantIx {
		t.Fatalf("index %q lost", ix)
	}

	knownFiles := map[string]bool{}
	for name, mt := range model.tables {
		tb, err := db.Table(name)
		if err != nil {
			t.Fatalf("table %q: %v", name, err)
		}
		knownFiles[tb.File()] = true

		// Heap contents match the model multiset.
		got := map[string]int{}
		if _, err := tb.Select(nil, func(r executor.Row) bool {
			got[r.Tuple[0].S+"|"+r.Tuple[1].String()]++
			return true
		}); err != nil {
			t.Fatalf("scan %q: %v", name, err)
		}
		if len(got) != len(mt.rows) {
			t.Fatalf("table %q: %d distinct rows, want %d", name, len(got), len(mt.rows))
		}
		for k, c := range mt.rows {
			if got[k] != c {
				t.Fatalf("table %q row %q: count %d, want %d", name, k, got[k], c)
			}
		}

		// Every index answers exactly the heap's rows (all names start
		// with "w", so the prefix scan is total).
		for _, ix := range tb.Indexes {
			knownFiles[ix.File()] = true
			if _, want := mt.indexes[ix.Name]; !want {
				t.Fatalf("table %q: ghost attached index %q", name, ix.Name)
			}
			idxGot := map[string]int{}
			err := tb.SelectIndexed(ix, &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText("w")}, func(r executor.Row) bool {
				idxGot[r.Tuple[0].S+"|"+r.Tuple[1].String()]++
				return true
			})
			if err != nil {
				t.Fatalf("index scan %q: %v", ix.Name, err)
			}
			for k, c := range mt.rows {
				if idxGot[k] != c {
					t.Fatalf("index %q row %q: count %d, want %d", ix.Name, k, idxGot[k], c)
				}
			}
			if len(idxGot) != len(mt.rows) {
				t.Fatalf("index %q: %d distinct rows, want %d", ix.Name, len(idxGot), len(mt.rows))
			}
		}
		if na, nc := len(tb.Indexes), len(mt.indexes); na != nc {
			t.Fatalf("table %q: %d attached indexes, want %d", name, na, nc)
		}

		// Statistics: present exactly when the model says, with exactly
		// the committed row count — old or new, never torn.
		st, ok := cat.GetStats(tb.OID())
		if mt.statsRows < 0 {
			if ok {
				t.Fatalf("table %q: ghost statistics record (rows=%d)", name, st.Rows)
			}
		} else {
			if !ok {
				t.Fatalf("table %q: statistics record lost (want rows=%d)", name, mt.statsRows)
			}
			if st.Rows != mt.statsRows {
				t.Fatalf("table %q: stats rows=%d, want %d (torn or stale commit)", name, st.Rows, mt.statsRows)
			}
		}
	}

	// No orphaned relation files survive recovery.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		n := e.Name()
		if !strings.HasSuffix(n, ".tbl") && !strings.HasSuffix(n, ".idx") {
			continue
		}
		if !knownFiles[n] {
			t.Fatalf("orphan relation file %s survived recovery", n)
		}
	}
}

// runTorture drives one seeded workload of `steps` operations.
func runTorture(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	model := &tortureModel{tables: map[string]*modelTable{}}

	arm := &tortureArm{countdown: -1}
	faults := executor.FaultInjection{
		BeforeDDLCommit:  func(string) error { return arm.hook() },
		DuringIndexBuild: func(int) error { return arm.hook() },
		BeforeDMLCommit:  func(string) error { return arm.hook() },
		BetweenDMLChunks: func(string, int) error { return arm.hook() },
	}
	open := func() *executor.DB {
		db, err := executor.Open(executor.Options{Dir: dir, WAL: true, PoolPages: 16, WALSync: wal.SyncCommit, Faults: faults})
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		return db
	}
	db := open()
	defer func() {
		if db != nil {
			db.Crash()
		}
	}()

	// crashed handles an injected fault: crash, verify, reopen.
	crashed := func(step int) {
		if err := db.Crash(); err != nil {
			t.Fatalf("seed %d step %d: crash: %v", seed, step, err)
		}
		verifyTorture(t, dir, model)
		arm.mu.Lock()
		arm.countdown = -1
		arm.mu.Unlock()
		db = open()
	}

	tableNames := []string{"t0", "t1", "t2"}
	opclasses := []string{"spgist_trie", "btree_text"}

	for step := 0; step < steps; step++ {
		// Arm a crash for one of the next few commit points / build steps.
		if rng.Intn(3) != 0 {
			arm.mu.Lock()
			if arm.countdown < 0 {
				arm.countdown = rng.Intn(3)
			}
			arm.mu.Unlock()
		}
		var live []string
		for n := range model.tables {
			live = append(live, n)
		}
		sort.Strings(live)

		switch op := rng.Intn(12); {
		case op == 0 && len(live) < len(tableNames): // CREATE TABLE
			var name string
			for _, n := range tableNames {
				if _, ok := model.tables[n]; !ok {
					name = n
					break
				}
			}
			_, err := db.CreateTable(name, tortureCols())
			if errors.Is(err, errTortureCrash) {
				crashed(step)
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: create table: %v", seed, step, err)
			}
			model.tables[name] = &modelTable{rows: map[string]int{}, indexes: map[string]string{}, statsRows: -1}

		case op == 1 && len(live) > 0: // DROP TABLE
			name := live[rng.Intn(len(live))]
			err := db.DropTable(name)
			if errors.Is(err, errTortureCrash) {
				crashed(step)
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: drop table: %v", seed, step, err)
			}
			delete(model.tables, name)

		case op == 2 && len(live) > 0: // CREATE INDEX
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			if len(mt.indexes) >= 2 {
				continue
			}
			ixName := fmt.Sprintf("ix%d", model.nextIx)
			model.nextIx++
			oc := opclasses[rng.Intn(len(opclasses))]
			method := "spgist"
			if oc == "btree_text" {
				method = "btree"
			}
			_, err := db.CreateIndex(ixName, name, "name", method, oc)
			if errors.Is(err, errTortureCrash) {
				// The invalid entry committed before the build: after
				// recovery the index exists, rebuilt and valid.
				mt.indexes[ixName] = oc
				crashed(step)
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: create index: %v", seed, step, err)
			}
			mt.indexes[ixName] = oc

		case op == 3 && len(live) > 0: // DROP INDEX
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			if len(mt.indexes) == 0 {
				continue
			}
			var ixs []string
			for ix := range mt.indexes {
				ixs = append(ixs, ix)
			}
			sort.Strings(ixs)
			ix := ixs[rng.Intn(len(ixs))]
			err := db.DropIndex(ix)
			if errors.Is(err, errTortureCrash) {
				crashed(step)
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: drop index: %v", seed, step, err)
			}
			delete(mt.indexes, ix)

		case op == 4 && len(live) > 0: // ANALYZE
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			tb, err := db.Table(name)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			err = tb.Analyze()
			if errors.Is(err, errTortureCrash) {
				crashed(step) // stats stay exactly as they were
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: analyze: %v", seed, step, err)
			}
			total := 0
			for _, c := range mt.rows {
				total += c
			}
			mt.statsRows = int64(total)

		case op == 5 && len(live) > 0: // CHECKPOINT
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("seed %d step %d: checkpoint: %v", seed, step, err)
			}

		case op == 6: // clean close + reopen
			if err := db.Close(); err != nil {
				t.Fatalf("seed %d step %d: close: %v", seed, step, err)
			}
			verifyTorture(t, dir, model)
			db = open()

		case op == 7 && len(live) > 0: // per-row INSERTs
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			tb, err := db.Table(name)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			n := 1 + rng.Intn(8)
			hitCrash := false
			for i := 0; i < n; i++ {
				word := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
				id := mt.nextID
				mt.nextID++
				_, err := tb.Insert(catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))})
				if errors.Is(err, errTortureCrash) {
					// Each per-row INSERT is its own implicit transaction:
					// earlier rows of this step committed and stay, the
					// crashed one vanishes.
					crashed(step)
					hitCrash = true
					break
				}
				if err != nil {
					t.Fatalf("seed %d step %d: insert: %v", seed, step, err)
				}
				mt.rows[fmt.Sprintf("%s|%d", word, id)]++
			}
			if hitCrash {
				continue
			}

		case op == 8 && len(live) > 0: // multi-row INSERT (one batched statement)
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			tb, err := db.Table(name)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			n := 1 + rng.Intn(25)
			tups := make([]catalog.Tuple, 0, n)
			keys := make([]string, 0, n)
			for i := 0; i < n; i++ {
				word := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
				id := mt.nextID
				mt.nextID++
				tups = append(tups, catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))})
				keys = append(keys, fmt.Sprintf("%s|%d", word, id))
			}
			_, err = tb.InsertBatch(tups)
			if errors.Is(err, errTortureCrash) {
				// All-or-nothing: a batch crashed before its commit point
				// recovers with ZERO of its rows visible.
				crashed(step)
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: insert batch: %v", seed, step, err)
			}
			for _, k := range keys {
				mt.rows[k]++
			}

		case op == 9 && len(live) > 0: // DELETE WHERE name #= prefix
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			tb, err := db.Table(name)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
			_, err = tb.DeleteWhere(&executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)})
			if errors.Is(err, errTortureCrash) {
				// The whole DELETE commits under one marker now: a crash
				// before it recovers with every row still present.
				crashed(step)
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: delete: %v", seed, step, err)
			}
			modelDeletePrefix(mt.rows, prefix)

		case op == 10 && len(live) > 0: // UPDATE SET name = w... WHERE name #= prefix
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			tb, err := db.Table(name)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
			newWord := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
			_, err = tb.UpdateWhere(&executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)},
				[]executor.ColUpdate{{Column: 0, Value: catalog.NewText(newWord)}})
			if errors.Is(err, errTortureCrash) {
				// One statement, one commit marker: a crash anywhere inside
				// (old-version stamping, successor insert, chunk boundary)
				// recovers with every row at its pre-UPDATE value.
				crashed(step)
				continue
			}
			if err != nil {
				t.Fatalf("seed %d step %d: update: %v", seed, step, err)
			}
			modelUpdatePrefix(mt.rows, prefix, newWord)

		case op == 11 && len(live) > 0: // explicit BEGIN; 1-3 DML; COMMIT or ROLLBACK
			name := live[rng.Intn(len(live))]
			mt := model.tables[name]
			tb, err := db.Table(name)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			tx, err := db.Begin()
			if err != nil {
				t.Fatalf("seed %d step %d: begin: %v", seed, step, err)
			}
			// The transaction's statements see their own prior writes, so
			// stage the model changes on a scratch copy and merge only on
			// COMMIT. IDs are uniqueness tokens: advance mt.nextID even
			// when the transaction never lands.
			staged := make(map[string]int, len(mt.rows))
			for k, c := range mt.rows {
				staged[k] = c
			}
			hitCrash := false
			for s, nStmt := 0, 1+rng.Intn(3); s < nStmt && !hitCrash; s++ {
				switch rng.Intn(3) {
				case 0: // batch insert, sometimes big enough to chunk
					n := 1 + rng.Intn(80)
					tups := make([]catalog.Tuple, 0, n)
					keys := make([]string, 0, n)
					for i := 0; i < n; i++ {
						word := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
						id := mt.nextID
						mt.nextID++
						tups = append(tups, catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))})
						keys = append(keys, fmt.Sprintf("%s|%d", word, id))
					}
					_, err = tb.InsertBatchTx(tx, tups)
					if err == nil {
						for _, k := range keys {
							staged[k]++
						}
					}
				case 1: // delete prefix
					prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
					_, err = tb.DeleteWhereTx(tx, &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)})
					if err == nil {
						modelDeletePrefix(staged, prefix)
					}
				default: // update prefix
					prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
					newWord := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
					_, err = tb.UpdateWhereTx(tx, &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)},
						[]executor.ColUpdate{{Column: 0, Value: catalog.NewText(newWord)}})
					if err == nil {
						modelUpdatePrefix(staged, prefix, newWord)
					}
				}
				if errors.Is(err, errTortureCrash) {
					// Crash mid-transaction: no commit record ever reaches
					// the log, so recovery hides the WHOLE block — earlier
					// statements of this transaction included. The stale
					// tx handle is abandoned with the crashed database.
					crashed(step)
					hitCrash = true
					break
				}
				if err != nil {
					t.Fatalf("seed %d step %d: txn stmt: %v", seed, step, err)
				}
			}
			if hitCrash {
				continue
			}
			if rng.Intn(2) == 0 {
				if err := tx.Commit(); err != nil {
					t.Fatalf("seed %d step %d: commit: %v", seed, step, err)
				}
				mt.rows = staged
			} else {
				if err := tx.Rollback(); err != nil {
					t.Fatalf("seed %d step %d: rollback: %v", seed, step, err)
				}
			}
		}
	}

	if err := db.Close(); err != nil {
		t.Fatalf("seed %d: final close: %v", seed, err)
	}
	db = nil
	verifyTorture(t, dir, model)
}

// concurrentPhase runs the concurrent read/write torture phase: N reader
// goroutines scan a table (planner path, forced index scans, full scans)
// while the calling goroutine mutates it. Readers only assert invariants
// that hold at every instant of the phase: scans never error, and a
// statement-atomic snapshot never shows an index disagreeing with the
// rows it returns. The caller then crashes, recovers, and model-checks
// as usual — proving the concurrent traffic corrupted nothing durable.
func concurrentPhase(t *testing.T, db *executor.DB, name string, mt *modelTable, rng *rand.Rand) {
	t.Helper()
	tb, err := db.Table(name)
	if err != nil {
		t.Fatalf("concurrent phase: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const nReaders = 4
	for g := 0; g < nReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				prefix := fmt.Sprintf("w%c", 'a'+(g+i)%6)
				pred := &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)}
				switch i % 3 {
				case 0: // planner-chosen path
					if _, err := tb.Select(pred, func(executor.Row) bool { return true }); err != nil {
						t.Errorf("concurrent reader %d: select: %v", g, err)
						return
					}
				case 1: // forced index scan through every attached index
					for _, ix := range tb.Indexes {
						if err := tb.SelectIndexed(ix, pred, func(executor.Row) bool { return true }); err != nil {
							t.Errorf("concurrent reader %d: index scan %s: %v", g, ix.Name, err)
							return
						}
					}
				default: // full scan + point lookups of what it returned
					var rids []heap.RID
					if _, err := tb.Select(nil, func(r executor.Row) bool {
						rids = append(rids, r.RID)
						return len(rids) < 32
					}); err != nil {
						t.Errorf("concurrent reader %d: scan: %v", g, err)
						return
					}
					for _, rid := range rids {
						if _, err := tb.Get(rid); err != nil {
							t.Errorf("concurrent reader %d: get: %v", g, err)
							return
						}
					}
				}
			}
		}(g)
	}
	// The writer half: a burst of inserts, prefix deletes, and prefix
	// updates, tracked in the model exactly like the sequential ops.
	// The readers run against live MVCC versions of the same table the
	// whole time — each of their scans is one snapshot over rows the
	// writer is concurrently stamping dead and superseding.
	for i, n := 0, 5+rng.Intn(10); i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
			if _, err := tb.DeleteWhere(&executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)}); err != nil {
				close(stop)
				wg.Wait()
				t.Fatalf("concurrent phase: delete: %v", err)
			}
			modelDeletePrefix(mt.rows, prefix)
			continue
		case 1:
			prefix := fmt.Sprintf("w%c", 'a'+rng.Intn(6))
			newWord := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
			if _, err := tb.UpdateWhere(&executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText(prefix)},
				[]executor.ColUpdate{{Column: 0, Value: catalog.NewText(newWord)}}); err != nil {
				close(stop)
				wg.Wait()
				t.Fatalf("concurrent phase: update: %v", err)
			}
			modelUpdatePrefix(mt.rows, prefix, newWord)
			continue
		}
		word := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
		id := mt.nextID
		mt.nextID++
		if _, err := tb.Insert(catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))}); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("concurrent phase: insert: %v", err)
		}
		mt.rows[fmt.Sprintf("%s|%d", word, id)]++
	}
	close(stop)
	wg.Wait()
}

// TestStaleTableHandleRejected: a *Table resolved before a DROP TABLE
// commits must fail cleanly afterwards — never scan the dropped
// relation's discarded buffer pools.
func TestStaleTableHandleRejected(t *testing.T) {
	db := executor.OpenMemory()
	defer db.Close()
	tb, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText("w"), catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Select(nil, func(executor.Row) bool { return true }); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("select on dropped table: %v", err)
	}
	if _, err := tb.Insert(catalog.Tuple{catalog.NewText("x"), catalog.NewInt(2)}); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("insert on dropped table: %v", err)
	}
	if n := tb.RowCount(); n != 0 {
		t.Fatalf("RowCount on dropped table = %d", n)
	}
	// A recreated table of the same name is a different handle: the old
	// one stays rejected, the new one works.
	tb2, err := db.CreateTable("t", tortureCols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Select(nil, func(executor.Row) bool { return true }); err == nil {
		t.Fatal("old handle accepted after same-name recreate")
	}
	if _, err := tb2.Insert(catalog.Tuple{catalog.NewText("y"), catalog.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadWriteTorture: every iteration seeds two tables,
// runs the concurrent read/write phase on one while a second writer
// streams multi-row INSERT batches into the other — two writers holding
// different per-table locks, committing concurrently through the WAL's
// group-commit path — then crashes, recovers, and model-checks the
// durable state of both. Under -race in CI this is the end-to-end proof
// that the sharded buffer pool, the guarded node caches, the two-level
// catalog/table lock hierarchy, and the atomic group append compose
// into a safe concurrent engine.
func TestConcurrentReadWriteTorture(t *testing.T) {
	seeds := []int64{3, 17}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			model := &tortureModel{tables: map[string]*modelTable{}}
			open := func() *executor.DB {
				db, err := executor.Open(executor.Options{Dir: dir, WAL: true, PoolPages: 64, WALSync: wal.SyncCommit})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				return db
			}
			db := open()
			if _, err := db.CreateTable("t0", tortureCols()); err != nil {
				t.Fatal(err)
			}
			mt := &modelTable{rows: map[string]int{}, indexes: map[string]string{}, statsRows: -1}
			model.tables["t0"] = mt
			if _, err := db.CreateIndex("ix0", "t0", "name", "spgist", "spgist_trie"); err != nil {
				t.Fatal(err)
			}
			mt.indexes["ix0"] = "spgist_trie"
			if _, err := db.CreateIndex("ix1", "t0", "name", "btree", "btree_text"); err != nil {
				t.Fatal(err)
			}
			mt.indexes["ix1"] = "btree_text"
			// The second table: written only by the concurrent batch
			// writer, proving writers on different tables overlap.
			if _, err := db.CreateTable("t1", tortureCols()); err != nil {
				t.Fatal(err)
			}
			mt1 := &modelTable{rows: map[string]int{}, indexes: map[string]string{}, statsRows: -1}
			model.tables["t1"] = mt1
			if _, err := db.CreateIndex("ix2", "t1", "name", "spgist", "spgist_trie"); err != nil {
				t.Fatal(err)
			}
			mt1.indexes["ix2"] = "spgist_trie"

			tb, err := db.Table("t0")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 120; i++ {
				word := fmt.Sprintf("w%c%c%02d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
				id := mt.nextID
				mt.nextID++
				if _, err := tb.Insert(catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))}); err != nil {
					t.Fatal(err)
				}
				mt.rows[fmt.Sprintf("%s|%d", word, id)]++
			}

			for round := 0; round < 6; round++ {
				tb1, err := db.Table("t1")
				if err != nil {
					t.Fatal(err)
				}
				// Concurrent multi-table writer: multi-row INSERT batches
				// into t1 (with interleaved reads of it) while the phase
				// below reads and writes t0. mt1 is touched only by this
				// goroutine until the phase joins.
				t1done := make(chan struct{})
				t1rng := rand.New(rand.NewSource(seed*1000 + int64(round)))
				go func() {
					defer close(t1done)
					for i, rounds := 0, 3+t1rng.Intn(4); i < rounds; i++ {
						n := 5 + t1rng.Intn(20)
						tups := make([]catalog.Tuple, 0, n)
						keys := make([]string, 0, n)
						for j := 0; j < n; j++ {
							word := fmt.Sprintf("w%c%c%02d", 'a'+t1rng.Intn(6), 'a'+t1rng.Intn(6), t1rng.Intn(40))
							id := mt1.nextID
							mt1.nextID++
							tups = append(tups, catalog.Tuple{catalog.NewText(word), catalog.NewInt(int64(id))})
							keys = append(keys, fmt.Sprintf("%s|%d", word, id))
						}
						if _, err := tb1.InsertBatch(tups); err != nil {
							t.Errorf("t1 batch writer: %v", err)
							return
						}
						for _, k := range keys {
							mt1.rows[k]++
						}
						pred := &executor.Pred{Column: 0, Op: "#=", Arg: catalog.NewText("w")}
						got := 0
						if _, err := tb1.Select(pred, func(executor.Row) bool { got++; return true }); err != nil {
							t.Errorf("t1 read-back: %v", err)
							return
						}
					}
				}()
				concurrentPhase(t, db, "t0", mt, rng)
				<-t1done
				if t.Failed() {
					db.Crash()
					return
				}
				// Crash with both writers' committed batches in the log,
				// recover, and model-check the durable state of both
				// tables.
				if err := db.Crash(); err != nil {
					t.Fatalf("round %d: crash: %v", round, err)
				}
				verifyTorture(t, dir, model)
				db = open()
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			verifyTorture(t, dir, model)
		})
	}
}

func TestCrashRecoveryTorture(t *testing.T) {
	seeds := []int64{1, 7, 42, 1337}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runTorture(t, seed, 120)
		})
	}
}

// FuzzCrashRecovery lets the fuzzer explore workload seeds; CI runs it
// briefly (-fuzz=FuzzCrashRecovery -fuzztime=30s) so the recovery
// torture harness cannot rot. Without -fuzz the seed corpus runs as a
// plain regression test.
func FuzzCrashRecovery(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 99, 31337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runTorture(t, seed, 40)
	})
}
